// The process-wide value intern pool backing the 8-byte Value encoding.
//
// Value (src/base/value.h) stores either an inline 63-bit integer or a pool
// id. The pool holds every interned payload: strings, plus the rare
// integers whose magnitude does not fit the inline encoding. Interning
// canonicalizes: equal payloads always receive the same id, so Value
// equality is a single word compare.
//
// Concurrency contract:
//   - Intern* may be called from any thread (sharded mutexes; append-only).
//   - Get() is wait-free and lock-free: entries are immutable once
//     published and live in fixed-size blocks whose pointers never move,
//     so a reference returned by Get() is stable for the process lifetime.
//   - Ids are dense per shard and never reused; the pool never shrinks.
#ifndef EMCALC_BASE_STRING_POOL_H_
#define EMCALC_BASE_STRING_POOL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace emcalc {

class StringPool {
 public:
  // One interned payload. `is_str` selects which of str/num is meaningful;
  // `hash` is the payload hash Value::Hash() returns (precomputed here so
  // hashing an interned value never re-scans the string).
  // `order_prefix` packs a string's first 8 bytes big-endian (zero-padded),
  // so prefix words order exactly like the strings' first 8 bytes and
  // Value::operator< decides most string comparisons in one word compare.
  struct Entry {
    bool is_str = false;
    int64_t num = 0;
    uint64_t hash = 0;
    uint64_t order_prefix = 0;
    std::string str;
  };

  // The process-wide pool. Values carry ids into this instance, so there
  // is exactly one.
  static StringPool& Global();

  // Interns `s` (deduplicating) and returns its id.
  uint64_t InternString(std::string_view s);

  // Interns an integer that does not fit Value's inline encoding.
  uint64_t InternBigInt(int64_t v);

  // The entry for an id previously returned by Intern*. Wait-free.
  const Entry& Get(uint64_t id) const;

  // Total interned entries across all shards (the query-log
  // string_pool_size field). Approximate under concurrent interning.
  uint64_t size() const;

  // Tracked bytes held by the pool: block storage plus out-of-line string
  // payloads. The pool never shrinks, so this is monotone.
  uint64_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

 private:
  StringPool() = default;

  static constexpr int kShardBits = 4;
  static constexpr size_t kNumShards = size_t{1} << kShardBits;
  static constexpr size_t kBlockSize = 1024;  // entries per block
  static constexpr size_t kMaxBlocks = 8192;  // 8M entries per shard

  struct Shard {
    std::mutex mu;
    // Keys view into the stored entries (stable storage), values are
    // per-shard entry indexes.
    std::unordered_map<std::string_view, uint64_t> str_index;
    std::unordered_map<int64_t, uint64_t> int_index;
    std::atomic<uint64_t> count{0};
    // Block pointers are published with release stores and never change
    // afterwards, so readers only need an acquire load.
    std::atomic<Entry*> blocks[kMaxBlocks] = {};
  };

  // Appends an entry to `shard` (mu held) and returns its global id.
  uint64_t Append(Shard& shard, size_t shard_idx, Entry entry);

  Shard shards_[kNumShards];
  std::atomic<uint64_t> bytes_{0};
};

}  // namespace emcalc

#endif  // EMCALC_BASE_STRING_POOL_H_
