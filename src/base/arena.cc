#include "src/base/arena.h"

#include <algorithm>

#include "src/base/check.h"

namespace emcalc {
namespace {

// Rounds `p` up to the next multiple of `align` (align must be a power of 2).
char* AlignUp(char* p, size_t align) {
  auto v = reinterpret_cast<uintptr_t>(p);
  v = (v + align - 1) & ~(align - 1);
  return reinterpret_cast<char*>(v);
}

}  // namespace

void* Arena::Allocate(size_t size, size_t align) {
  EMCALC_CHECK(align != 0 && (align & (align - 1)) == 0);
  char* aligned = AlignUp(ptr_, align);
  if (aligned == nullptr || aligned + size > end_) {
    return AllocateSlow(size, align);
  }
  ptr_ = aligned + size;
  bytes_allocated_ += size;
  return aligned;
}

void* Arena::AllocateSlow(size_t size, size_t align) {
  size_t block_size = std::max(kBlockSize, size + align);
  blocks_.push_back(std::make_unique<char[]>(block_size));
  ptr_ = blocks_.back().get();
  end_ = ptr_ + block_size;
  char* aligned = AlignUp(ptr_, align);
  EMCALC_CHECK(aligned + size <= end_);
  ptr_ = aligned + size;
  bytes_allocated_ += size;
  return aligned;
}

}  // namespace emcalc
