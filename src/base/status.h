// Error reporting without exceptions: Status carries success/failure plus a
// message; StatusOr<T> carries either a value or a Status. Modeled on the
// absl types but self-contained.
#ifndef EMCALC_BASE_STATUS_H_
#define EMCALC_BASE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/base/check.h"

namespace emcalc {

// Error categories surfaced by the public API.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  // malformed input (e.g. parse error)
  kNotSafe,          // query failed the em-allowed safety analysis
  kNotFound,         // unknown relation / function / variable
  kUnsupported,      // feature outside the implemented fragment
  kInternal,         // invariant violation that was recoverable
  kResourceExhausted,  // a per-query resource limit tripped (governor)
};

// Returns a stable, human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeName(StatusCode code);

// A success indicator or an error with a code and message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  // Constructs an error status; `code` must not be kOk unless message empty.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience constructors for common error categories.
Status InvalidArgumentError(std::string message);
Status NotSafeError(std::string message);
Status NotFoundError(std::string message);
Status UnsupportedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);

// Either a value of type T or an error Status. Accessing the value of an
// error StatusOr aborts (see EMCALC_CHECK); call ok() first.
template <typename T>
class StatusOr {
 public:
  // Implicit conversions from both T and Status keep call sites terse,
  // mirroring absl::StatusOr.
  StatusOr(T value) : value_(std::move(value)) {}              // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {       // NOLINT
    EMCALC_CHECK_MSG(!status_.ok(), "StatusOr built from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EMCALC_CHECK_MSG(ok(), "StatusOr::value on error: %s",
                     status_.message().c_str());
    return *value_;
  }
  T& value() & {
    EMCALC_CHECK_MSG(ok(), "StatusOr::value on error: %s",
                     status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    EMCALC_CHECK_MSG(ok(), "StatusOr::value on error: %s",
                     status_.message().c_str());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace emcalc

#endif  // EMCALC_BASE_STATUS_H_
