// Lightweight assertion macros. The library does not use C++ exceptions
// (construction errors are reported through Status/StatusOr); these macros
// guard internal invariants and abort with a readable message on violation.
#ifndef EMCALC_BASE_CHECK_H_
#define EMCALC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Aborts the process when `cond` is false, printing the failing expression
// and source location. Always on, in every build type: the checks guard
// compiler invariants whose violation would silently corrupt query results.
#define EMCALC_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "EMCALC_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// Like EMCALC_CHECK but with a custom printf-style message appended.
#define EMCALC_CHECK_MSG(cond, ...)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "EMCALC_CHECK failed: %s at %s:%d: ", #cond,      \
                   __FILE__, __LINE__);                                      \
      std::fprintf(stderr, __VA_ARGS__);                                     \
      std::fprintf(stderr, "\n");                                            \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // EMCALC_BASE_CHECK_H_
