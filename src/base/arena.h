// Bump-pointer arena for AST nodes.
//
// Calculus and algebra ASTs are built once, traversed many times, and freed
// all at once when the owning context dies. An arena gives (a) fast
// allocation, (b) stable node addresses (nodes can be shared freely between
// rewritten formulas — rewrites are persistent/structure-sharing), and
// (c) a single ownership root, which keeps the "manual memory for the AST"
// that this style of symbolic code needs both cheap and safe.
//
// Only trivially destructible node types may be allocated: destructors are
// never run. Node types enforce this with static_asserts at their
// allocation sites.
#ifndef EMCALC_BASE_ARENA_H_
#define EMCALC_BASE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace emcalc {

// A growable block allocator. Not thread-safe; each compilation context owns
// its own arena.
class Arena {
 public:
  Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `size` bytes aligned to `align`. Never returns nullptr.
  void* Allocate(size_t size, size_t align);

  // Allocates and constructs a T. T must be trivially destructible because
  // the arena never runs destructors.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must be trivially destructible");
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  // Copies `n` elements of trivially-copyable T into the arena and returns
  // the new array (nullptr when n == 0).
  template <typename T>
  T* NewArray(const T* src, size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    if (n == 0) return nullptr;
    T* mem = static_cast<T*>(Allocate(sizeof(T) * n, alignof(T)));
    for (size_t i = 0; i < n; ++i) new (mem + i) T(src[i]);
    return mem;
  }

  // Total bytes handed out so far (for stats/benchmarks).
  size_t bytes_allocated() const { return bytes_allocated_; }

 private:
  static constexpr size_t kBlockSize = 1 << 16;

  // Grabs a fresh block of at least `min_size` bytes and allocates from it.
  void* AllocateSlow(size_t size, size_t align);

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* ptr_ = nullptr;   // next free byte in the current block
  char* end_ = nullptr;   // one past the current block
  size_t bytes_allocated_ = 0;
};

}  // namespace emcalc

#endif  // EMCALC_BASE_ARENA_H_
