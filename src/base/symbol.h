// String interning. Variables, relation names, and function names are
// interned to 32-bit Symbols so that the FinD engine and AST comparisons
// work on integers.
#ifndef EMCALC_BASE_SYMBOL_H_
#define EMCALC_BASE_SYMBOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace emcalc {

// An interned identifier. Only meaningful relative to the SymbolTable that
// produced it. Value-comparable and hashable.
struct Symbol {
  uint32_t id = 0;

  friend bool operator==(Symbol a, Symbol b) { return a.id == b.id; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id != b.id; }
  friend bool operator<(Symbol a, Symbol b) { return a.id < b.id; }
};

// Bidirectional string <-> Symbol map. Not thread-safe.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the symbol for `name`, interning it on first use.
  Symbol Intern(std::string_view name);

  // Returns the name of `sym`; aborts if sym was not produced by this table.
  std::string_view Name(Symbol sym) const;

  // True if `name` has been interned already.
  bool Contains(std::string_view name) const;

  // Number of interned symbols.
  size_t size() const { return names_.size(); }

  // Produces a symbol whose name does not collide with any interned name,
  // derived from `base` (used for quantified-variable renaming). The fresh
  // name is interned.
  Symbol Fresh(std::string_view base);

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace emcalc

// Hash support so Symbol can key unordered containers.
template <>
struct std::hash<emcalc::Symbol> {
  size_t operator()(emcalc::Symbol s) const noexcept { return s.id; }
};

#endif  // EMCALC_BASE_SYMBOL_H_
