#include "src/base/symbol.h"

#include "src/base/check.h"

namespace emcalc {

Symbol SymbolTable::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return Symbol{it->second};
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return Symbol{id};
}

std::string_view SymbolTable::Name(Symbol sym) const {
  EMCALC_CHECK_MSG(sym.id < names_.size(), "unknown symbol id %u", sym.id);
  return names_[sym.id];
}

bool SymbolTable::Contains(std::string_view name) const {
  return ids_.count(std::string(name)) != 0;
}

Symbol SymbolTable::Fresh(std::string_view base) {
  for (;;) {
    std::string candidate =
        std::string(base) + "_" + std::to_string(fresh_counter_++);
    if (!Contains(candidate)) return Intern(candidate);
  }
}

}  // namespace emcalc
