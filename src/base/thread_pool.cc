#include "src/base/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace emcalc {

ThreadPool::ThreadPool(size_t threads) {
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: worker threads must never outlive the pool, and
  // static destruction order cannot guarantee that.
  static ThreadPool* pool = new ThreadPool(
      HardwareThreads() > 0 ? HardwareThreads() - 1 : 0);
  return *pool;
}

size_t ThreadPool::HardwareThreads() {
  // EMCALC_HARDWARE_THREADS overrides detection: it forces real worker
  // threads on single-core boxes (so sanitizer runs exercise genuine
  // concurrency) and caps fan-out on shared machines. Read once; the
  // global pool is sized from this value.
  static const size_t resolved = [] {
    if (const char* env = std::getenv("EMCALC_HARDWARE_THREADS")) {
      char* end = nullptr;
      unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0' && v > 0 && v <= 1024) {
        return static_cast<size_t>(v);
      }
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? size_t{1} : static_cast<size_t>(hw);
  }();
  return resolved;
}

void ThreadPool::Drain(Region& region, size_t worker) {
  const size_t n = region.n;
  const size_t grain = region.grain;
  for (;;) {
    size_t begin = region.cursor.fetch_add(grain, std::memory_order_relaxed);
    if (begin >= n) return;
    size_t end = std::min(begin + grain, n);
    (*region.fn)(worker, begin, end);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t last_seq = 0;
  for (;;) {
    Region* region = nullptr;
    size_t worker = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (region_ != nullptr && region_seq_ != last_seq);
      });
      if (shutdown_) return;
      last_seq = region_seq_;
      // Claim a dense worker id; late joiners beyond the cap sit the
      // region out (and wait for the next one).
      size_t id =
          region_->next_worker.fetch_add(1, std::memory_order_relaxed);
      if (id >= region_->max_workers) continue;
      worker = id;
      region = region_;
      region->active.fetch_add(1, std::memory_order_relaxed);
    }
    {
      obs::MemoryScope adopt(region->scope);
      Drain(*region, worker);
    }
    if (region->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t n, size_t grain, size_t max_workers,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  max_workers = std::min(max_workers, parallelism());
  if (max_workers <= 1 || n <= grain) {
    // Inline: no pool involvement, no synchronization.
    for (size_t begin = 0; begin < n; begin += grain) {
      fn(0, begin, std::min(begin + grain, n));
    }
    return;
  }

  std::lock_guard<std::mutex> serial(region_serial_);
  Region region;
  region.fn = &fn;
  region.n = n;
  region.grain = grain;
  region.scope = obs::MemoryScope::Current();
  region.max_workers = max_workers;
  // The caller is worker 0; pool workers claim ids from 1.
  region.next_worker.store(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    region_ = &region;
    ++region_seq_;
  }
  work_cv_.notify_all();
  Drain(region, 0);
  // Unpublish before waiting: once region_ is null no new worker can
  // join, so active can only fall. Without this a late-waking worker
  // could enter the region while we are destroying it.
  std::unique_lock<std::mutex> lock(mu_);
  region_ = nullptr;
  done_cv_.wait(lock, [&] {
    return region.active.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace emcalc
