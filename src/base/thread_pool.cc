#include "src/base/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace emcalc {

namespace {

// The global pool, observable without forcing construction (telemetry
// reporting must not spin up workers as a side effect).
std::atomic<ThreadPool*> g_global_pool{nullptr};

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  workers_.reserve(threads);
  slots_ = std::make_unique<WorkerSlot[]>(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: worker threads must never outlive the pool, and
  // static destruction order cannot guarantee that.
  static ThreadPool* pool = [] {
    auto* p = new ThreadPool(HardwareThreads() > 0 ? HardwareThreads() - 1 : 0);
    g_global_pool.store(p, std::memory_order_release);
    return p;
  }();
  return *pool;
}

size_t ThreadPool::HardwareThreads() {
  // EMCALC_HARDWARE_THREADS overrides detection: it forces real worker
  // threads on single-core boxes (so sanitizer runs exercise genuine
  // concurrency) and caps fan-out on shared machines. Read once; the
  // global pool is sized from this value.
  static const size_t resolved = [] {
    if (const char* env = std::getenv("EMCALC_HARDWARE_THREADS")) {
      char* end = nullptr;
      unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0' && v > 0 && v <= 1024) {
        return static_cast<size_t>(v);
      }
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? size_t{1} : static_cast<size_t>(hw);
  }();
  return resolved;
}

void ThreadPool::Drain(Region& region, size_t worker, uint64_t* busy_ns,
                       uint64_t* morsels) {
  const size_t n = region.n;
  const size_t grain = region.grain;
  const uint64_t start = obs::NowNs();
  uint64_t claimed = 0;
  for (;;) {
    size_t begin = region.cursor.fetch_add(grain, std::memory_order_relaxed);
    if (begin >= n) break;
    size_t end = std::min(begin + grain, n);
    ++claimed;
    (*region.fn)(worker, begin, end);
  }
  const uint64_t busy = obs::NowNs() - start;
  region.busy_ns.fetch_add(busy, std::memory_order_relaxed);
  region.morsels.fetch_add(claimed, std::memory_order_relaxed);
  if (claimed > 0) region.participants.fetch_add(1, std::memory_order_relaxed);
  *busy_ns = busy;
  *morsels = claimed;
}

void ThreadPool::WorkerLoop(size_t index) {
  static obs::Histogram& queue_wait =
      obs::MetricsRegistry::Instance().GetHistogram("pool.queue_wait_ns");
  WorkerSlot& slot = slots_[index];
  uint64_t last_seq = 0;
  for (;;) {
    Region* region = nullptr;
    size_t worker = 0;
    uint64_t idle_start = obs::NowNs();
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (region_ != nullptr && region_seq_ != last_seq);
      });
      if (shutdown_) return;
      last_seq = region_seq_;
      // Claim a dense worker id; late joiners beyond the cap sit the
      // region out (and wait for the next one).
      size_t id =
          region_->next_worker.fetch_add(1, std::memory_order_relaxed);
      if (id >= region_->max_workers) {
        slot.idle_ns.fetch_add(obs::NowNs() - idle_start,
                               std::memory_order_relaxed);
        continue;
      }
      worker = id;
      region = region_;
      region->active.fetch_add(1, std::memory_order_relaxed);
    }
    // Queue wait: publication of the region to this worker's first claim.
    uint64_t woke = obs::NowNs();
    slot.idle_ns.fetch_add(woke - idle_start, std::memory_order_relaxed);
    if (woke > region->publish_ns) {
      queue_wait.Observe(static_cast<double>(woke - region->publish_ns));
    }
    uint64_t busy = 0;
    uint64_t claimed = 0;
    {
      obs::MemoryScope adopt(region->scope);
      Drain(*region, worker, &busy, &claimed);
    }
    slot.busy_ns.fetch_add(busy, std::memory_order_relaxed);
    slot.morsels.fetch_add(claimed, std::memory_order_relaxed);
    slot.regions.fetch_add(1, std::memory_order_relaxed);
    if (region->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t n, size_t grain, size_t max_workers,
    const std::function<void(size_t, size_t, size_t)>& fn,
    RegionStats* stats) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  max_workers = std::min(max_workers, parallelism());
  if (max_workers <= 1 || n <= grain) {
    // Inline: no pool involvement, no synchronization. Timing only when a
    // caller asked for telemetry.
    if (stats == nullptr) {
      for (size_t begin = 0; begin < n; begin += grain) {
        fn(0, begin, std::min(begin + grain, n));
      }
      return;
    }
    const uint64_t start = obs::NowNs();
    uint64_t morsels = 0;
    for (size_t begin = 0; begin < n; begin += grain) {
      ++morsels;
      fn(0, begin, std::min(begin + grain, n));
    }
    const uint64_t wall = obs::NowNs() - start;
    stats->wall_ns += wall;
    stats->busy_ns += wall;
    stats->morsels += morsels;
    stats->max_workers = std::max<uint32_t>(stats->max_workers, 1);
    return;
  }

  static obs::Counter& regions_total =
      obs::MetricsRegistry::Instance().GetCounter("pool.regions");
  static obs::Counter& morsels_total =
      obs::MetricsRegistry::Instance().GetCounter("pool.morsels");
  static obs::Counter& busy_total =
      obs::MetricsRegistry::Instance().GetCounter("pool.busy_ns");
  static obs::Counter& wall_total =
      obs::MetricsRegistry::Instance().GetCounter("pool.region_wall_ns");

  std::lock_guard<std::mutex> serial(region_serial_);
  Region region;
  region.fn = &fn;
  region.n = n;
  region.grain = grain;
  region.scope = obs::MemoryScope::Current();
  region.max_workers = max_workers;
  // The caller is worker 0; pool workers claim ids from 1.
  region.next_worker.store(1, std::memory_order_relaxed);
  region.publish_ns = obs::NowNs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    region_ = &region;
    ++region_seq_;
  }
  work_cv_.notify_all();
  uint64_t caller_busy = 0;
  uint64_t caller_morsels = 0;
  Drain(region, 0, &caller_busy, &caller_morsels);
  // Unpublish before waiting: once region_ is null no new worker can
  // join, so active can only fall. Without this a late-waking worker
  // could enter the region while we are destroying it.
  {
    std::unique_lock<std::mutex> lock(mu_);
    region_ = nullptr;
    done_cv_.wait(lock, [&] {
      return region.active.load(std::memory_order_acquire) == 0;
    });
  }
  const uint64_t wall = obs::NowNs() - region.publish_ns;
  const uint64_t busy = region.busy_ns.load(std::memory_order_relaxed);
  const uint64_t morsels = region.morsels.load(std::memory_order_relaxed);
  const auto participants = static_cast<uint32_t>(
      region.participants.load(std::memory_order_relaxed));
  regions_total.Add();
  morsels_total.Add(morsels);
  busy_total.Add(busy);
  wall_total.Add(wall);
  if (stats != nullptr) {
    stats->wall_ns += wall;
    stats->busy_ns += busy;
    stats->morsels += morsels;
    stats->max_workers =
        std::max(stats->max_workers, std::max<uint32_t>(participants, 1));
  }
}

std::vector<ThreadPool::WorkerTelemetry> ThreadPool::Telemetry() const {
  std::vector<WorkerTelemetry> out(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    out[i].busy_ns = slots_[i].busy_ns.load(std::memory_order_relaxed);
    out[i].idle_ns = slots_[i].idle_ns.load(std::memory_order_relaxed);
    out[i].morsels = slots_[i].morsels.load(std::memory_order_relaxed);
    out[i].regions = slots_[i].regions.load(std::memory_order_relaxed);
  }
  return out;
}

std::string ThreadPool::TelemetryJson() const {
  std::vector<WorkerTelemetry> workers = Telemetry();
  std::string out = "{\"parallelism\":" + std::to_string(parallelism());
  out += ",\"workers\":[";
  bool first = true;
  for (const WorkerTelemetry& w : workers) {
    if (!first) out += ",";
    first = false;
    out += "{\"busy_ns\":" + std::to_string(w.busy_ns);
    out += ",\"idle_ns\":" + std::to_string(w.idle_ns);
    out += ",\"morsels\":" + std::to_string(w.morsels);
    out += ",\"regions\":" + std::to_string(w.regions) + "}";
  }
  out += "]}";
  return out;
}

std::string ThreadPool::GlobalTelemetryJson() {
  ThreadPool* pool = g_global_pool.load(std::memory_order_acquire);
  if (pool == nullptr) return "{\"parallelism\":0,\"workers\":[]}";
  return pool->TelemetryJson();
}

}  // namespace emcalc
