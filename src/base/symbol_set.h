// A small sorted set of Symbols, used for variable sets throughout the
// safety analysis and the FinD engine. Backed by a sorted vector: variable
// sets in real queries are tiny, and sorted vectors make subset/union
// operations cheap and deterministic.
#ifndef EMCALC_BASE_SYMBOL_SET_H_
#define EMCALC_BASE_SYMBOL_SET_H_

#include <algorithm>
#include <initializer_list>
#include <vector>

#include "src/base/symbol.h"

namespace emcalc {

// An immutable-ish ordered set of symbols with value semantics.
class SymbolSet {
 public:
  SymbolSet() = default;
  SymbolSet(std::initializer_list<Symbol> syms)
      : elems_(syms) {
    Normalize();
  }
  // Takes any vector (unsorted, possibly with duplicates).
  explicit SymbolSet(std::vector<Symbol> syms) : elems_(std::move(syms)) {
    Normalize();
  }

  bool empty() const { return elems_.empty(); }
  size_t size() const { return elems_.size(); }
  const std::vector<Symbol>& elems() const { return elems_; }
  auto begin() const { return elems_.begin(); }
  auto end() const { return elems_.end(); }

  bool Contains(Symbol s) const {
    return std::binary_search(elems_.begin(), elems_.end(), s);
  }

  bool IsSubsetOf(const SymbolSet& other) const {
    return std::includes(other.elems_.begin(), other.elems_.end(),
                         elems_.begin(), elems_.end());
  }

  bool Intersects(const SymbolSet& other) const;

  void Insert(Symbol s) {
    auto it = std::lower_bound(elems_.begin(), elems_.end(), s);
    if (it == elems_.end() || *it != s) elems_.insert(it, s);
  }

  void Remove(Symbol s) {
    auto it = std::lower_bound(elems_.begin(), elems_.end(), s);
    if (it != elems_.end() && *it == s) elems_.erase(it);
  }

  // Set algebra; all return new sets.
  SymbolSet Union(const SymbolSet& other) const;
  SymbolSet Intersect(const SymbolSet& other) const;
  SymbolSet Minus(const SymbolSet& other) const;

  friend bool operator==(const SymbolSet& a, const SymbolSet& b) {
    return a.elems_ == b.elems_;
  }
  friend bool operator!=(const SymbolSet& a, const SymbolSet& b) {
    return !(a == b);
  }
  // Lexicographic; gives FinD sets a canonical order.
  friend bool operator<(const SymbolSet& a, const SymbolSet& b) {
    return a.elems_ < b.elems_;
  }

  // Renders as "{x,y,z}" given the symbol table.
  std::string ToString(const SymbolTable& symbols) const {
    std::string out = "{";
    for (size_t i = 0; i < elems_.size(); ++i) {
      if (i > 0) out += ",";
      out += symbols.Name(elems_[i]);
    }
    out += "}";
    return out;
  }

 private:
  void Normalize() {
    std::sort(elems_.begin(), elems_.end());
    elems_.erase(std::unique(elems_.begin(), elems_.end()), elems_.end());
  }

  std::vector<Symbol> elems_;
};

inline bool SymbolSet::Intersects(const SymbolSet& other) const {
  auto a = elems_.begin();
  auto b = other.elems_.begin();
  while (a != elems_.end() && b != other.elems_.end()) {
    if (*a == *b) return true;
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return false;
}

inline SymbolSet SymbolSet::Union(const SymbolSet& other) const {
  std::vector<Symbol> out;
  out.reserve(elems_.size() + other.elems_.size());
  std::set_union(elems_.begin(), elems_.end(), other.elems_.begin(),
                 other.elems_.end(), std::back_inserter(out));
  SymbolSet result;
  result.elems_ = std::move(out);
  return result;
}

inline SymbolSet SymbolSet::Intersect(const SymbolSet& other) const {
  std::vector<Symbol> out;
  std::set_intersection(elems_.begin(), elems_.end(), other.elems_.begin(),
                        other.elems_.end(), std::back_inserter(out));
  SymbolSet result;
  result.elems_ = std::move(out);
  return result;
}

inline SymbolSet SymbolSet::Minus(const SymbolSet& other) const {
  std::vector<Symbol> out;
  std::set_difference(elems_.begin(), elems_.end(), other.elems_.begin(),
                      other.elems_.end(), std::back_inserter(out));
  SymbolSet result;
  result.elems_ = std::move(out);
  return result;
}

}  // namespace emcalc

#endif  // EMCALC_BASE_SYMBOL_SET_H_
