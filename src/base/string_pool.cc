#include "src/base/string_pool.h"

#include <functional>

#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/resource.h"

namespace emcalc {
namespace {

// Finalizer used for inline ints in Value::Hash; big ints interned here
// must hash identically, so the mix lives in one place per payload kind.
uint64_t MixInt(int64_t v) {
  uint64_t x = static_cast<uint64_t>(v);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

uint64_t MixStr(std::string_view s) {
  return std::hash<std::string_view>()(s) ^ 0x9e3779b97f4a7c15ULL;
}

// Big-endian pack of the first 8 bytes, zero-padded: prefix words compare
// exactly like the strings' leading bytes (a shorter string that is a
// prefix of a longer one packs smaller, since 0 sorts before every byte).
uint64_t OrderPrefix(std::string_view s) {
  uint64_t p = 0;
  size_t n = s.size() < 8 ? s.size() : 8;
  for (size_t i = 0; i < n; ++i) {
    p |= static_cast<uint64_t>(static_cast<unsigned char>(s[i]))
         << (56 - 8 * i);
  }
  return p;
}

}  // namespace

StringPool& StringPool::Global() {
  // Leaked on purpose: Values outlive every static destruction order.
  static StringPool* pool = new StringPool();
  return *pool;
}

uint64_t StringPool::Append(Shard& shard, size_t shard_idx, Entry entry) {
  uint64_t index = shard.count.load(std::memory_order_relaxed);
  size_t block = index / kBlockSize;
  EMCALC_CHECK_MSG(block < kMaxBlocks, "string pool shard overflow");
  Entry* storage = shard.blocks[block].load(std::memory_order_acquire);
  uint64_t delta = 0;
  if (storage == nullptr) {
    storage = new Entry[kBlockSize];
    shard.blocks[block].store(storage, std::memory_order_release);
    delta += kBlockSize * sizeof(Entry);
  }
  // Strings longer than the usual small-string buffer carry a heap
  // payload; shorter ones live inside the Entry already counted above.
  if (entry.str.size() > sizeof(std::string)) delta += entry.str.size();
  if (delta > 0) {
    bytes_.fetch_add(delta, std::memory_order_relaxed);
    obs::ChargeBytes(static_cast<int64_t>(delta));
    static obs::Gauge& pool_bytes =
        obs::MetricsRegistry::Instance().GetGauge("storage.string_pool_bytes");
    pool_bytes.Add(static_cast<int64_t>(delta));
  }
  storage[index % kBlockSize] = std::move(entry);
  // Publish after the entry is fully written: readers that learn the id
  // through any synchronizing channel (including this shard's mutex) see
  // the completed entry.
  shard.count.store(index + 1, std::memory_order_release);
  return (index << kShardBits) | shard_idx;
}

uint64_t StringPool::InternString(std::string_view s) {
  uint64_t hash = MixStr(s);
  size_t shard_idx = hash & (kNumShards - 1);
  Shard& shard = shards_[shard_idx];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.str_index.find(s);
  if (it != shard.str_index.end()) return it->second;
  Entry entry;
  entry.is_str = true;
  entry.hash = hash;
  entry.order_prefix = OrderPrefix(s);
  entry.str = std::string(s);
  uint64_t id = Append(shard, shard_idx, std::move(entry));
  // Key the index by the stored copy (stable storage), not the caller's
  // transient view.
  const Entry& stored = Get(id);
  shard.str_index.emplace(std::string_view(stored.str), id);
  return id;
}

uint64_t StringPool::InternBigInt(int64_t v) {
  uint64_t hash = MixInt(v);
  size_t shard_idx = hash & (kNumShards - 1);
  Shard& shard = shards_[shard_idx];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.int_index.find(v);
  if (it != shard.int_index.end()) return it->second;
  Entry entry;
  entry.is_str = false;
  entry.num = v;
  entry.hash = hash;
  uint64_t id = Append(shard, shard_idx, std::move(entry));
  shard.int_index.emplace(v, id);
  return id;
}

const StringPool::Entry& StringPool::Get(uint64_t id) const {
  const Shard& shard = shards_[id & (kNumShards - 1)];
  uint64_t index = id >> kShardBits;
  const Entry* storage =
      shard.blocks[index / kBlockSize].load(std::memory_order_acquire);
  EMCALC_CHECK_MSG(storage != nullptr, "string pool id out of range");
  return storage[index % kBlockSize];
}

uint64_t StringPool::size() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace emcalc
