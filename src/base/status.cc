#include "src/base/status.h"

namespace emcalc {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotSafe:
      return "NOT_SAFE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotSafeError(std::string message) {
  return Status(StatusCode::kNotSafe, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status UnsupportedError(std::string message) {
  return Status(StatusCode::kUnsupported, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

}  // namespace emcalc
