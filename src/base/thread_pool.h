// A morsel-driven fork-join thread pool for the execution layer.
//
// The pool keeps `threads` persistent workers parked on a condition
// variable. ParallelFor splits [0, n) into fixed-size morsels (grain) and
// lets workers claim morsels from an atomic cursor until the range is
// drained; the calling thread participates as worker 0, so `parallelism`
// includes the caller and a pool constructed with 0 extra threads still
// makes progress. Morsel boundaries depend only on (n, grain), never on
// the number of threads, so per-morsel outputs can be concatenated in
// morsel order for thread-count-independent results.
//
// One parallel region runs at a time (a region mutex serializes callers);
// operators inside a region must not start nested regions.
#ifndef EMCALC_BASE_THREAD_POOL_H_
#define EMCALC_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/resource.h"

namespace emcalc {

class ThreadPool {
 public:
  // A pool with `threads` workers in addition to the caller. `threads`
  // may be 0: ParallelFor then runs entirely on the calling thread.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& Global();

  // Default worker count for `num_threads = 0` knobs. Detection can be
  // overridden with EMCALC_HARDWARE_THREADS (resolved once per process);
  // the global pool is sized from this value.
  static size_t HardwareThreads();

  // Workers available to a region, including the calling thread.
  size_t parallelism() const { return workers_.size() + 1; }

  // Runs fn(worker, begin, end) over disjoint morsels covering [0, n).
  // `worker` is a dense id in [0, max_workers) identifying the executing
  // thread within this region — use it to index per-worker accumulators.
  // `max_workers` caps how many threads participate (clamped to
  // parallelism()); 1 runs inline without touching the pool. fn must not
  // re-enter ParallelFor. Blocks until every morsel has been processed.
  void ParallelFor(size_t n, size_t grain, size_t max_workers,
                   const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  struct Region {
    const std::function<void(size_t, size_t, size_t)>* fn = nullptr;
    size_t n = 0;
    size_t grain = 0;
    // The caller's memory-attribution scope, re-installed on every worker
    // so morsel allocations charge the operator that opened the region.
    obs::MemoryScopeState scope;
    std::atomic<size_t> cursor{0};
    // Dense worker ids, claimed on entry; bounded by max_workers.
    std::atomic<size_t> next_worker{0};
    size_t max_workers = 0;
    std::atomic<size_t> active{0};
  };

  void WorkerLoop();
  // Claims morsels from `region` until the cursor passes n.
  static void Drain(Region& region, size_t worker);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a region
  std::condition_variable done_cv_;   // the caller waits here for drain
  Region* region_ = nullptr;          // guarded by mu_
  uint64_t region_seq_ = 0;           // guarded by mu_; bumps per region
  bool shutdown_ = false;             // guarded by mu_
  std::mutex region_serial_;          // one ParallelFor at a time
};

}  // namespace emcalc

#endif  // EMCALC_BASE_THREAD_POOL_H_
