// A morsel-driven fork-join thread pool for the execution layer.
//
// The pool keeps `threads` persistent workers parked on a condition
// variable. ParallelFor splits [0, n) into fixed-size morsels (grain) and
// lets workers claim morsels from an atomic cursor until the range is
// drained; the calling thread participates as worker 0, so `parallelism`
// includes the caller and a pool constructed with 0 extra threads still
// makes progress. Morsel boundaries depend only on (n, grain), never on
// the number of threads, so per-morsel outputs can be concatenated in
// morsel order for thread-count-independent results.
//
// One parallel region runs at a time (a region mutex serializes callers);
// operators inside a region must not start nested regions.
#ifndef EMCALC_BASE_THREAD_POOL_H_
#define EMCALC_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/resource.h"

namespace emcalc {

class ThreadPool {
 public:
  // A pool with `threads` workers in addition to the caller. `threads`
  // may be 0: ParallelFor then runs entirely on the calling thread.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& Global();

  // Default worker count for `num_threads = 0` knobs. Detection can be
  // overridden with EMCALC_HARDWARE_THREADS (resolved once per process);
  // the global pool is sized from this value.
  static size_t HardwareThreads();

  // Workers available to a region, including the calling thread.
  size_t parallelism() const { return workers_.size() + 1; }

  // Contention telemetry accumulated across the regions a caller passes
  // one of these to (an operator hands the same instance to every
  // ParallelFor it issues, then folds it into its OpStats). Efficiency is
  // busy_ns / (wall_ns * max_workers): 1.0 means every participating
  // thread was claiming morsels for the whole region.
  struct RegionStats {
    uint64_t wall_ns = 0;      // summed region wall time
    uint64_t busy_ns = 0;      // summed per-thread drain time
    uint64_t morsels = 0;      // morsels claimed
    uint32_t max_workers = 0;  // most threads that did work in one region
  };

  // Cumulative per-pool-worker counters since construction. idle_ns is
  // time parked waiting for a region (the caller thread has no slot here:
  // its drain time is accounted in RegionStats and the pool.* metrics).
  struct WorkerTelemetry {
    uint64_t busy_ns = 0;
    uint64_t idle_ns = 0;
    uint64_t morsels = 0;
    uint64_t regions = 0;
  };
  std::vector<WorkerTelemetry> Telemetry() const;
  // {"parallelism":P,"workers":[{"busy_ns":..,..},..]} for postmortem
  // bundles and the repl.
  std::string TelemetryJson() const;
  // Telemetry of the global pool without creating it: spinning up workers
  // just to report they never ran would skew the numbers.
  static std::string GlobalTelemetryJson();

  // Runs fn(worker, begin, end) over disjoint morsels covering [0, n).
  // `worker` is a dense id in [0, max_workers) identifying the executing
  // thread within this region — use it to index per-worker accumulators.
  // `max_workers` caps how many threads participate (clamped to
  // parallelism()); 1 runs inline without touching the pool. fn must not
  // re-enter ParallelFor. Blocks until every morsel has been processed.
  // When `stats` is non-null the region's telemetry is added (+=) into it.
  void ParallelFor(size_t n, size_t grain, size_t max_workers,
                   const std::function<void(size_t, size_t, size_t)>& fn,
                   RegionStats* stats = nullptr);

 private:
  struct Region {
    const std::function<void(size_t, size_t, size_t)>* fn = nullptr;
    size_t n = 0;
    size_t grain = 0;
    // The caller's memory-attribution scope, re-installed on every worker
    // so morsel allocations charge the operator that opened the region.
    obs::MemoryScopeState scope;
    std::atomic<size_t> cursor{0};
    // Dense worker ids, claimed on entry; bounded by max_workers.
    std::atomic<size_t> next_worker{0};
    size_t max_workers = 0;
    std::atomic<size_t> active{0};
    // Telemetry: folded from every draining thread when it finishes.
    std::atomic<uint64_t> busy_ns{0};
    std::atomic<uint64_t> morsels{0};
    std::atomic<size_t> participants{0};  // threads that claimed >=1 morsel
    uint64_t publish_ns = 0;  // written before publication under mu_
  };

  // Cache-line-padded per-worker counter slot (workers update their own
  // slot with relaxed stores; Telemetry() reads across threads).
  struct alignas(64) WorkerSlot {
    std::atomic<uint64_t> busy_ns{0};
    std::atomic<uint64_t> idle_ns{0};
    std::atomic<uint64_t> morsels{0};
    std::atomic<uint64_t> regions{0};
  };

  void WorkerLoop(size_t index);
  // Claims morsels from `region` until the cursor passes n; reports this
  // thread's drain time and morsel count.
  static void Drain(Region& region, size_t worker, uint64_t* busy_ns,
                    uint64_t* morsels);

  std::vector<std::thread> workers_;
  std::unique_ptr<WorkerSlot[]> slots_;  // one per pool worker
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a region
  std::condition_variable done_cv_;   // the caller waits here for drain
  Region* region_ = nullptr;          // guarded by mu_
  uint64_t region_seq_ = 0;           // guarded by mu_; bumps per region
  bool shutdown_ = false;             // guarded by mu_
  std::mutex region_serial_;          // one ParallelFor at a time
};

}  // namespace emcalc

#endif  // EMCALC_BASE_THREAD_POOL_H_
