// The underlying domain of values ("dom" in the paper).
//
// The paper assumes a one-sorted countably infinite domain of uninterpreted
// constants; scalar functions are total functions dom^n -> dom. We model dom
// as the disjoint union of 64-bit integers and strings. Totality of scalar
// functions across the whole (mixed-sort) domain is the responsibility of
// the function implementations in storage/interpretation.h.
#ifndef EMCALC_BASE_VALUE_H_
#define EMCALC_BASE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace emcalc {

// A single domain element: an integer or a string, packed into one
// trivially-copyable 8-byte tagged word so tuples are flat arrays and
// copies are memcpy.
//
// Encoding (low bit is the tag):
//   xxxx...xxx0  inline integer, value = rep >> 1 (arithmetic)
//   xxxx...xxx1  id into the process StringPool, id = rep >> 1; the pool
//                entry is a string, or an integer whose magnitude exceeds
//                the 63-bit inline range (so the full int64 domain stays
//                representable)
//
// Equality is a single word compare: interning canonicalizes pool
// payloads, inline ints are unique by construction, and an integer is
// pooled only when it cannot be inline. The total order (all ints by
// value, then all strings lexicographically) and the hash resolve pooled
// payloads through the pool, so sorted-set Relation semantics and
// user-visible ordering match the pre-interning representation exactly.
class Value {
 public:
  constexpr Value() : rep_(0) {}
  explicit Value(int64_t v) : rep_(EncodeInt(v)) {}
  explicit Value(std::string_view v) : rep_(EncodeStr(v)) {}
  static Value Int(int64_t v) { return Value(v); }
  static Value Str(std::string_view v) { return Value(v); }

  bool is_int() const { return (rep_ & 1) == 0 || !PooledIsStr(); }
  bool is_str() const { return (rep_ & 1) == 1 && PooledIsStr(); }

  // Accessors abort on kind mismatch.
  int64_t AsInt() const;
  const std::string& AsStr() const;

  // Total order: all ints (by value) precede all strings (lexicographic).
  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return !(a == b);
  }
  friend bool operator<(const Value& a, const Value& b);

  // Renders ints as digits and strings single-quoted (e.g. 42, 'bob').
  std::string ToString() const;

  // Hash combining kind and payload. Pooled payloads return the hash
  // precomputed at intern time.
  size_t Hash() const;

  // The raw tagged word (hash-table keys, debugging). Equal iff equal.
  uint64_t raw() const { return rep_; }

 private:
  // Inline so int construction in batch loops is a shift and a branch that
  // only big-int inputs take; the pool fallback stays out of line.
  static uint64_t EncodeInt(int64_t v) {
    uint64_t shifted = static_cast<uint64_t>(v) << 1;
    // Round-trips iff v fits 63 bits; otherwise fall back to the pool so
    // the full int64 range stays representable.
    if ((static_cast<int64_t>(shifted) >> 1) == v) return shifted;
    return EncodeBigInt(v);
  }
  static uint64_t EncodeBigInt(int64_t v);
  static uint64_t EncodeStr(std::string_view v);
  bool PooledIsStr() const;

  uint64_t rep_;
};

static_assert(sizeof(Value) == 8, "Value must stay one machine word");
static_assert(std::is_trivially_copyable_v<Value>,
              "Value must be trivially copyable (flat tuple storage)");

}  // namespace emcalc

template <>
struct std::hash<emcalc::Value> {
  size_t operator()(const emcalc::Value& v) const noexcept { return v.Hash(); }
};

#endif  // EMCALC_BASE_VALUE_H_
