// The underlying domain of values ("dom" in the paper).
//
// The paper assumes a one-sorted countably infinite domain of uninterpreted
// constants; scalar functions are total functions dom^n -> dom. We model dom
// as the disjoint union of 64-bit integers and strings. Totality of scalar
// functions across the whole (mixed-sort) domain is the responsibility of
// the function implementations in storage/interpretation.h.
#ifndef EMCALC_BASE_VALUE_H_
#define EMCALC_BASE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace emcalc {

// A single domain element: an integer or a string. Ordered (ints before
// strings) and hashable so relations can be kept as sorted sets.
class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  static Value Int(int64_t v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_str() const { return std::holds_alternative<std::string>(rep_); }

  // Accessors abort on kind mismatch.
  int64_t AsInt() const;
  const std::string& AsStr() const;

  // Total order: all ints (by value) precede all strings (lexicographic).
  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return !(a == b);
  }
  friend bool operator<(const Value& a, const Value& b);

  // Renders ints as digits and strings single-quoted (e.g. 42, 'bob').
  std::string ToString() const;

  // Hash combining kind and payload.
  size_t Hash() const;

 private:
  std::variant<int64_t, std::string> rep_;
};

}  // namespace emcalc

template <>
struct std::hash<emcalc::Value> {
  size_t operator()(const emcalc::Value& v) const noexcept { return v.Hash(); }
};

#endif  // EMCALC_BASE_VALUE_H_
