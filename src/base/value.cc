#include "src/base/value.h"

#include <functional>

#include "src/base/check.h"

namespace emcalc {

int64_t Value::AsInt() const {
  EMCALC_CHECK_MSG(is_int(), "Value::AsInt on string value");
  return std::get<int64_t>(rep_);
}

const std::string& Value::AsStr() const {
  EMCALC_CHECK_MSG(is_str(), "Value::AsStr on int value");
  return std::get<std::string>(rep_);
}

bool operator<(const Value& a, const Value& b) {
  if (a.rep_.index() != b.rep_.index()) return a.rep_.index() < b.rep_.index();
  if (a.is_int()) return std::get<int64_t>(a.rep_) < std::get<int64_t>(b.rep_);
  return std::get<std::string>(a.rep_) < std::get<std::string>(b.rep_);
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(std::get<int64_t>(rep_));
  return "'" + std::get<std::string>(rep_) + "'";
}

size_t Value::Hash() const {
  if (is_int()) {
    // Mix so that small ints don't collide with the string space trivially.
    uint64_t x = static_cast<uint64_t>(std::get<int64_t>(rep_));
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
  return std::hash<std::string>()(std::get<std::string>(rep_)) ^
         0x9e3779b97f4a7c15ULL;
}

}  // namespace emcalc
