#include "src/base/value.h"

#include "src/base/check.h"
#include "src/base/string_pool.h"

namespace emcalc {

uint64_t Value::EncodeBigInt(int64_t v) {
  return (StringPool::Global().InternBigInt(v) << 1) | 1;
}

uint64_t Value::EncodeStr(std::string_view v) {
  return (StringPool::Global().InternString(v) << 1) | 1;
}

bool Value::PooledIsStr() const {
  return StringPool::Global().Get(rep_ >> 1).is_str;
}

int64_t Value::AsInt() const {
  if ((rep_ & 1) == 0) return static_cast<int64_t>(rep_) >> 1;
  const StringPool::Entry& e = StringPool::Global().Get(rep_ >> 1);
  EMCALC_CHECK_MSG(!e.is_str, "Value::AsInt on string value");
  return e.num;
}

const std::string& Value::AsStr() const {
  EMCALC_CHECK_MSG((rep_ & 1) == 1, "Value::AsStr on int value");
  const StringPool::Entry& e = StringPool::Global().Get(rep_ >> 1);
  EMCALC_CHECK_MSG(e.is_str, "Value::AsStr on int value");
  return e.str;
}

bool operator<(const Value& a, const Value& b) {
  if (a.rep_ == b.rep_) return false;
  // Fast path: two inline ints compare without touching the pool.
  if (((a.rep_ | b.rep_) & 1) == 0) {
    return static_cast<int64_t>(a.rep_) < static_cast<int64_t>(b.rep_);
  }
  // At least one side is pooled; fetch each pooled entry exactly once.
  const StringPool& pool = StringPool::Global();
  const StringPool::Entry* ea =
      (a.rep_ & 1) != 0 ? &pool.Get(a.rep_ >> 1) : nullptr;
  const StringPool::Entry* eb =
      (b.rep_ & 1) != 0 ? &pool.Get(b.rep_ >> 1) : nullptr;
  bool a_str = ea != nullptr && ea->is_str;
  bool b_str = eb != nullptr && eb->is_str;
  if (a_str != b_str) return !a_str;  // ints before strings
  if (!a_str) {
    int64_t na = ea != nullptr ? ea->num : static_cast<int64_t>(a.rep_) >> 1;
    int64_t nb = eb != nullptr ? eb->num : static_cast<int64_t>(b.rep_) >> 1;
    return na < nb;
  }
  // Two distinct interned strings (equal strings share an id and were
  // caught by the rep compare above): the 8-byte order prefix decides
  // unless the strings agree on their first 8 bytes.
  if (ea->order_prefix != eb->order_prefix) {
    return ea->order_prefix < eb->order_prefix;
  }
  return ea->str < eb->str;
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  return "'" + AsStr() + "'";
}

size_t Value::Hash() const {
  if ((rep_ & 1) == 0) {
    // Same finalizer as StringPool::InternBigInt, so inline and pooled
    // integers hash consistently.
    uint64_t x = static_cast<uint64_t>(static_cast<int64_t>(rep_) >> 1);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
  return static_cast<size_t>(StringPool::Global().Get(rep_ >> 1).hash);
}

}  // namespace emcalc
