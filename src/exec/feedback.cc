#include "src/exec/feedback.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/obs/json.h"

namespace emcalc {

double MisestimateFactor(double est_rows, double actual_rows) {
  double hi = std::max(est_rows, actual_rows);
  double lo = std::min(est_rows, actual_rows);
  if (hi <= 0) return 1.0;  // est 0, actual 0: a perfect estimate
  double f = hi / std::max(lo, 1.0);
  // An overflowed estimate (inf) or any other non-finite quotient reports
  // the cap sentinel, never inf/NaN in a ranking or JSON record.
  if (!std::isfinite(f)) return kMisestimateFactorCap;
  if (f < 1.0) return 1.0;
  return std::min(f, kMisestimateFactorCap);
}

namespace {

std::string FormatRows(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

std::string FormatFactor(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

void Collect(const ExecProfile& p, PlanFeedback& fb) {
  if (!p.shared_ref && p.op != PhysOpKind::kMaterialize &&
      p.stats.est_rows >= 0) {
    PlanFeedbackEntry e;
    e.op = PhysOpKindName(p.op);
    if (!p.detail.empty()) e.op += "(" + p.detail + ")";
    e.est_rows = p.stats.est_rows;
    e.actual_rows = p.stats.rows_out;
    auto actual = static_cast<double>(e.actual_rows);
    e.factor = MisestimateFactor(e.est_rows, actual);
    e.underestimate = actual > e.est_rows;
    e.est_history_runs = p.stats.est_history_runs;
    fb.entries.push_back(std::move(e));
  }
  if (!p.shared_ref) {
    for (const ExecProfile& c : p.children) Collect(c, fb);
  }
}

}  // namespace

PlanFeedback BuildPlanFeedback(const ExecProfile& profile) {
  PlanFeedback fb;
  Collect(profile, fb);
  std::stable_sort(fb.entries.begin(), fb.entries.end(),
                   [](const PlanFeedbackEntry& a, const PlanFeedbackEntry& b) {
                     return a.factor > b.factor;
                   });
  if (!fb.entries.empty()) {
    fb.max_factor = fb.entries.front().factor;
    fb.worst_op = fb.entries.front().op;
  }
  return fb;
}

std::string PlanFeedback::ToString() const {
  if (entries.empty()) return "no feedback: no estimated operators ran\n";
  std::string out;
  for (const PlanFeedbackEntry& e : entries) {
    out += e.op + ": est " + FormatRows(e.est_rows) + " actual " +
           std::to_string(e.actual_rows);
    if (e.factor > 1.0) {
      out += " (" + FormatFactor(e.factor) + "x " +
             (e.underestimate ? "under" : "over") + ")";
    } else {
      out += " (exact)";
    }
    if (e.est_history_runs > 0) {
      // Provenance marker only on history-corrected estimates, so
      // heuristic lines render exactly as before.
      out += " [history:" + std::to_string(e.est_history_runs) + "]";
    }
    out += "\n";
  }
  return out;
}

std::string PlanFeedback::ToJson() const {
  std::string out = "{\"max_factor\":" + FormatFactor(max_factor);
  out += ",\"worst_op\":\"" + obs::JsonEscape(worst_op) + "\"";
  out += ",\"entries\":[";
  bool first = true;
  for (const PlanFeedbackEntry& e : entries) {
    if (!first) out += ",";
    first = false;
    out += "{\"op\":\"" + obs::JsonEscape(e.op) + "\"";
    out += ",\"est_rows\":" + FormatRows(e.est_rows);
    out += ",\"actual_rows\":" + std::to_string(e.actual_rows);
    out += ",\"factor\":" + FormatFactor(e.factor);
    out += ",\"underestimate\":";
    out += e.underestimate ? "true" : "false";
    out += ",\"est_source\":\"";
    out += e.est_history_runs > 0
               ? "history:" + std::to_string(e.est_history_runs)
               : "heuristic";
    out += "\"}";
  }
  out += "]}";
  return out;
}

namespace {

// Plan-side DFS mirroring BuildProfile: non-null children in (left, right)
// order, first visit wins for shared (materialized) subplans.
void WalkPlanPaths(const PhysicalOp* op, const std::string& path,
                   std::vector<bool>& visited,
                   std::vector<std::string>& paths) {
  auto id = static_cast<size_t>(op->id);
  if (id >= visited.size() || visited[id]) return;
  visited[id] = true;
  paths[id] = path;
  int child_idx = 0;
  for (const PhysicalOp* child : {op->left, op->right}) {
    if (child == nullptr) continue;
    WalkPlanPaths(child,
                  path + "/" + std::to_string(child_idx) + ":" +
                      PhysOpKindName(child->kind),
                  visited, paths);
    ++child_idx;
  }
}

// Profile-side DFS: children are stored in the same (left, right) order
// and shared re-visits are shared_ref stubs, so paths line up with
// WalkPlanPaths by construction.
void CollectRunOps(const ExecProfile& p, const std::string& path,
                   std::vector<obs::RunObservation::Op>& ops) {
  if (p.shared_ref) return;
  if (p.op != PhysOpKind::kMaterialize && p.stats.est_rows >= 0) {
    obs::RunObservation::Op op;
    op.path = path;
    op.op = PhysOpKindName(p.op);
    if (!p.detail.empty()) op.op += "(" + p.detail + ")";
    op.est_rows = p.stats.est_rows;
    op.actual_rows = p.stats.rows_out;
    op.factor = MisestimateFactor(p.stats.est_rows,
                                  static_cast<double>(p.stats.rows_out));
    ops.push_back(std::move(op));
  }
  for (size_t i = 0; i < p.children.size(); ++i) {
    CollectRunOps(p.children[i],
                  path + "/" + std::to_string(i) + ":" +
                      PhysOpKindName(p.children[i].op),
                  ops);
  }
}

}  // namespace

std::vector<std::string> PlanOpPaths(const PhysicalPlan& plan) {
  std::vector<std::string> paths(static_cast<size_t>(plan.NumOperators()));
  if (plan.root() == nullptr) return paths;
  std::vector<bool> visited(paths.size(), false);
  WalkPlanPaths(plan.root(), PhysOpKindName(plan.root()->kind), visited,
                paths);
  return paths;
}

obs::RunObservation CollectRunObservation(uint64_t query_hash,
                                          const std::string& query_text,
                                          const ExecProfile& profile) {
  obs::RunObservation run;
  run.query_hash = query_hash;
  run.query = query_text;
  run.rows_out = profile.stats.rows_out;
  CollectRunOps(profile, PhysOpKindName(profile.op), run.ops);
  return run;
}

size_t CountHistoryCorrectedOps(const ExecProfile& profile) {
  if (profile.shared_ref) return 0;
  size_t n = profile.stats.est_history_runs > 0 ? 1 : 0;
  for (const ExecProfile& c : profile.children) {
    n += CountHistoryCorrectedOps(c);
  }
  return n;
}

}  // namespace emcalc
