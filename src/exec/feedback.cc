#include "src/exec/feedback.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/json.h"

namespace emcalc {
namespace {

std::string FormatRows(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

std::string FormatFactor(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

void Collect(const ExecProfile& p, PlanFeedback& fb) {
  if (!p.shared_ref && p.op != PhysOpKind::kMaterialize &&
      p.stats.est_rows >= 0) {
    PlanFeedbackEntry e;
    e.op = PhysOpKindName(p.op);
    if (!p.detail.empty()) e.op += "(" + p.detail + ")";
    e.est_rows = p.stats.est_rows;
    e.actual_rows = p.stats.rows_out;
    auto actual = static_cast<double>(e.actual_rows);
    double hi = std::max(e.est_rows, actual);
    double lo = std::min(e.est_rows, actual);
    e.factor = hi / std::max(lo, 1.0);
    e.underestimate = actual > e.est_rows;
    fb.entries.push_back(std::move(e));
  }
  if (!p.shared_ref) {
    for (const ExecProfile& c : p.children) Collect(c, fb);
  }
}

}  // namespace

PlanFeedback BuildPlanFeedback(const ExecProfile& profile) {
  PlanFeedback fb;
  Collect(profile, fb);
  std::stable_sort(fb.entries.begin(), fb.entries.end(),
                   [](const PlanFeedbackEntry& a, const PlanFeedbackEntry& b) {
                     return a.factor > b.factor;
                   });
  if (!fb.entries.empty()) {
    fb.max_factor = fb.entries.front().factor;
    fb.worst_op = fb.entries.front().op;
  }
  return fb;
}

std::string PlanFeedback::ToString() const {
  if (entries.empty()) return "no feedback: no estimated operators ran\n";
  std::string out;
  for (const PlanFeedbackEntry& e : entries) {
    out += e.op + ": est " + FormatRows(e.est_rows) + " actual " +
           std::to_string(e.actual_rows);
    if (e.factor > 1.0) {
      out += " (" + FormatFactor(e.factor) + "x " +
             (e.underestimate ? "under" : "over") + ")";
    } else {
      out += " (exact)";
    }
    out += "\n";
  }
  return out;
}

std::string PlanFeedback::ToJson() const {
  std::string out = "{\"max_factor\":" + FormatFactor(max_factor);
  out += ",\"worst_op\":\"" + obs::JsonEscape(worst_op) + "\"";
  out += ",\"entries\":[";
  bool first = true;
  for (const PlanFeedbackEntry& e : entries) {
    if (!first) out += ",";
    first = false;
    out += "{\"op\":\"" + obs::JsonEscape(e.op) + "\"";
    out += ",\"est_rows\":" + FormatRows(e.est_rows);
    out += ",\"actual_rows\":" + std::to_string(e.actual_rows);
    out += ",\"factor\":" + FormatFactor(e.factor);
    out += ",\"underestimate\":";
    out += e.underestimate ? "true" : "false";
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace emcalc
