#include "src/exec/physical.h"

#include <chrono>
#include <cstdio>
#include <optional>

#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/adom.h"

namespace emcalc {
namespace {

// A tuple logically formed by concatenating `left` and `right` (either may
// be null for a plain single-tuple view).
struct TupleView {
  const Tuple* left;
  const Tuple* right;

  const Value& at(int i) const {
    int ln = left == nullptr ? 0 : static_cast<int>(left->size());
    if (i < ln) return (*left)[static_cast<size_t>(i)];
    return (*right)[static_cast<size_t>(i - ln)];
  }
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string OpDetail(const PhysicalOp* op) {
  switch (op->kind) {
    case PhysOpKind::kScan:
      return op->rel_name;
    case PhysOpKind::kProjectMap:
      return "cols=" + std::to_string(op->exprs.size());
    case PhysOpKind::kFilterSelect:
      return "conds=" + std::to_string(op->conds.size());
    case PhysOpKind::kHashJoin:
      return "keys=" + std::to_string(op->keys.size()) +
             (op->conds.empty()
                  ? std::string()
                  : " residual=" + std::to_string(op->conds.size()));
    case PhysOpKind::kNestedLoopJoin:
      return "conds=" + std::to_string(op->conds.size());
    case PhysOpKind::kAdomScan:
      return "level=" + std::to_string(op->adom_level) +
             " fns=" + std::to_string(op->adom_fns.size());
    case PhysOpKind::kSingleton:
      return op->unit ? "unit" : "empty";
    case PhysOpKind::kMaterialize:
      return "consumers=" + std::to_string(op->consumers);
    case PhysOpKind::kUnionMerge:
    case PhysOpKind::kDiffAnti:
      return "";
  }
  return "";
}

}  // namespace

const char* PhysOpKindName(PhysOpKind kind) {
  switch (kind) {
    case PhysOpKind::kScan: return "Scan";
    case PhysOpKind::kProjectMap: return "ProjectMap";
    case PhysOpKind::kFilterSelect: return "FilterSelect";
    case PhysOpKind::kHashJoin: return "HashJoin";
    case PhysOpKind::kNestedLoopJoin: return "NestedLoopJoin";
    case PhysOpKind::kUnionMerge: return "UnionMerge";
    case PhysOpKind::kDiffAnti: return "DiffAnti";
    case PhysOpKind::kAdomScan: return "AdomScan";
    case PhysOpKind::kSingleton: return "Singleton";
    case PhysOpKind::kMaterialize: return "Materialize";
  }
  return "?";
}

// Per-execution mutable state: one stats slot per operator and one cache
// slot per Materialize. The plan itself stays immutable.
struct ExecContext {
  const PhysicalPlan& plan;
  const Database& db;
  std::vector<OpStats> stats;
  std::vector<std::optional<RelationPtr>> memo;

  ExecContext(const PhysicalPlan& p, const Database& d)
      : plan(p), db(d), stats(p.ops_.size()),
        memo(static_cast<size_t>(p.num_memo_slots_)) {}

  // The value flowing between operators: `rel` is always set; `owned` is
  // set iff this operator freshly built the relation and nothing else
  // holds a reference — the parent may then steal its storage.
  struct Value_ {
    RelationPtr rel;
    std::shared_ptr<Relation> owned;
  };

  StatusOr<Value_> Run(const PhysicalOp* op);

  Value EvalExpr(const ScalarExpr* e, const TupleView& view, OpStats& s);
  bool CondsHold(std::span<const AlgCondition> conds, const TupleView& view,
                 OpStats& s);
};

Value ExecContext::EvalExpr(const ScalarExpr* e, const TupleView& view,
                            OpStats& s) {
  switch (e->kind()) {
    case ScalarExpr::Kind::kCol:
      return view.at(e->col());
    case ScalarExpr::Kind::kConst:
      return plan.ctx_->ConstantAt(e->const_id());
    case ScalarExpr::Kind::kApply: {
      std::vector<Value> args;
      args.reserve(e->args().size());
      for (const ScalarExpr* a : e->args()) {
        args.push_back(EvalExpr(a, view, s));
      }
      ++s.function_calls;
      auto it = plan.fns_.find(e->fn());
      EMCALC_CHECK(it != plan.fns_.end());  // resolved at lowering
      return it->second->fn(args);
    }
  }
  return Value();
}

bool ExecContext::CondsHold(std::span<const AlgCondition> conds,
                            const TupleView& view, OpStats& s) {
  for (const AlgCondition& c : conds) {
    Value l = EvalExpr(c.lhs, view, s);
    Value r = EvalExpr(c.rhs, view, s);
    bool holds = false;
    switch (c.op) {
      case AlgCompareOp::kEq:
        holds = l == r;
        break;
      case AlgCompareOp::kNe:
        holds = l != r;
        break;
      case AlgCompareOp::kLt:
        holds = l < r;
        break;
      case AlgCompareOp::kLe:
        holds = l < r || l == r;
        break;
    }
    if (!holds) return false;
  }
  return true;
}

StatusOr<ExecContext::Value_> ExecContext::Run(const PhysicalOp* op) {
  // One trace span per operator invocation: nested operator spans render
  // as the plan's flame graph next to the compile-phase spans.
  obs::Span span(PhysOpKindName(op->kind));
  if (span.enabled()) span.SetDetail(OpDetail(op));
  OpStats& s = stats[static_cast<size_t>(op->id)];
  ++s.invocations;
  uint64_t start = NowNs();
  // Wrap the per-kind result so every exit path records inclusive time.
  auto done = [&](StatusOr<Value_> v) {
    s.wall_ns += NowNs() - start;
    return v;
  };

  switch (op->kind) {
    case PhysOpKind::kScan: {
      const Relation* rel = db.Find(op->rel_name);
      EMCALC_CHECK(rel != nullptr);  // bindings validated before execution
      s.rows_in += rel->size();
      s.rows_out += rel->size();
      // Borrow the database's storage: non-owning alias, zero copies.
      return done(Value_{RelationPtr(RelationPtr(), rel), nullptr});
    }
    case PhysOpKind::kProjectMap: {
      auto in = Run(op->left);
      if (!in.ok()) return done(in.status());
      auto out = std::make_shared<Relation>(op->arity);
      out->Reserve(in->rel->size());
      for (const Tuple& t : *in->rel) {
        TupleView view{&t, nullptr};
        Tuple row;
        row.reserve(op->exprs.size());
        for (const ScalarExpr* e : op->exprs) {
          row.push_back(EvalExpr(e, view, s));
        }
        out->Insert(std::move(row));
      }
      s.rows_in += in->rel->size();
      s.rows_out += out->size();
      return done(Value_{out, out});
    }
    case PhysOpKind::kFilterSelect: {
      auto in = Run(op->left);
      if (!in.ok()) return done(in.status());
      auto out = std::make_shared<Relation>(op->arity);
      for (const Tuple& t : *in->rel) {
        TupleView view{&t, nullptr};
        if (CondsHold(op->conds, view, s)) {
          out->Insert(t);
          ++s.tuple_copies;
        }
      }
      s.rows_in += in->rel->size();
      s.rows_out += out->size();
      return done(Value_{out, out});
    }
    case PhysOpKind::kHashJoin:
    case PhysOpKind::kNestedLoopJoin: {
      auto l = Run(op->left);
      if (!l.ok()) return done(l.status());
      auto r = Run(op->right);
      if (!r.ok()) return done(r.status());
      auto out = std::make_shared<Relation>(op->arity);
      auto emit = [&](const Tuple& a, const Tuple& b) {
        TupleView joined{&a, &b};
        if (!op->conds.empty() && !CondsHold(op->conds, joined, s)) return;
        Tuple row;
        row.reserve(a.size() + b.size());
        row.insert(row.end(), a.begin(), a.end());
        row.insert(row.end(), b.begin(), b.end());
        out->Insert(std::move(row));
      };
      if (op->kind == PhysOpKind::kNestedLoopJoin) {
        for (const Tuple& a : *l->rel) {
          for (const Tuple& b : *r->rel) emit(a, b);
        }
      } else {
        // Build on the right input. Right-side key expressions are written
        // against the concatenated schema, so evaluate them through a view
        // with an empty left part of width `split`.
        Tuple empty_left(static_cast<size_t>(op->split), Value());
        auto key_hash = [](const std::vector<Value>& key) {
          size_t h = 0xcbf29ce484222325ULL;
          for (const Value& v : key) h = h * 1099511628211ULL ^ v.Hash();
          return h;
        };
        std::unordered_map<
            size_t, std::vector<std::pair<std::vector<Value>, const Tuple*>>>
            buckets;
        buckets.reserve(r->rel->size());
        for (const Tuple& b : *r->rel) {
          TupleView view{&empty_left, &b};
          std::vector<Value> key;
          key.reserve(op->keys.size());
          for (const PhysicalOp::KeyPair& k : op->keys) {
            key.push_back(EvalExpr(k.right_key, view, s));
          }
          buckets[key_hash(key)].emplace_back(std::move(key), &b);
          ++s.build_rows;
        }
        for (const Tuple& a : *l->rel) {
          TupleView view{&a, nullptr};
          std::vector<Value> key;
          key.reserve(op->keys.size());
          for (const PhysicalOp::KeyPair& k : op->keys) {
            key.push_back(EvalExpr(k.left_key, view, s));
          }
          ++s.hash_probes;
          auto it = buckets.find(key_hash(key));
          if (it == buckets.end()) continue;
          for (const auto& [bkey, btuple] : it->second) {
            if (bkey == key) emit(a, *btuple);
          }
        }
      }
      s.rows_in += l->rel->size() + r->rel->size();
      s.rows_out += out->size();
      return done(Value_{out, out});
    }
    case PhysOpKind::kUnionMerge: {
      auto l = Run(op->left);
      if (!l.ok()) return done(l.status());
      auto r = Run(op->right);
      if (!r.ok()) return done(r.status());
      s.rows_in += l->rel->size() + r->rel->size();
      uint64_t copies_before = Relation::TuplesCopied();
      // Reuse an exclusively-owned input's storage when possible (union is
      // symmetric); otherwise merge into fresh storage.
      Relation merged(op->arity);
      if (l->owned != nullptr) {
        merged = std::move(*l->owned).UnionWith(*r->rel);
      } else if (r->owned != nullptr) {
        merged = std::move(*r->owned).UnionWith(*l->rel);
      } else {
        merged = l->rel->UnionWith(*r->rel);
      }
      s.tuple_copies += Relation::TuplesCopied() - copies_before;
      auto out = std::make_shared<Relation>(std::move(merged));
      s.rows_out += out->size();
      return done(Value_{out, out});
    }
    case PhysOpKind::kDiffAnti: {
      auto l = Run(op->left);
      if (!l.ok()) return done(l.status());
      auto r = Run(op->right);
      if (!r.ok()) return done(r.status());
      s.rows_in += l->rel->size() + r->rel->size();
      uint64_t copies_before = Relation::TuplesCopied();
      Relation diff(op->arity);
      if (l->owned != nullptr) {
        diff = std::move(*l->owned).DifferenceWith(*r->rel);
      } else {
        diff = l->rel->DifferenceWith(*r->rel);
      }
      s.tuple_copies += Relation::TuplesCopied() - copies_before;
      auto out = std::make_shared<Relation>(std::move(diff));
      s.rows_out += out->size();
      return done(Value_{out, out});
    }
    case PhysOpKind::kAdomScan: {
      ValueSet base = ActiveDomain(db);
      for (const Value& v : op->adom_consts) base.push_back(v);
      NormalizeValueSet(base);
      auto closed =
          TermClosure(std::move(base), op->adom_fns, *plan.registry_,
                      op->adom_level, plan.options_.adom_budget);
      if (!closed.ok()) return done(closed.status());
      auto out = std::make_shared<Relation>(1);
      out->Reserve(closed->size());
      for (const Value& v : *closed) out->Insert({v});
      s.rows_out += out->size();
      return done(Value_{out, out});
    }
    case PhysOpKind::kSingleton: {
      auto out = std::make_shared<Relation>(op->arity);
      if (op->unit) {
        out->Insert({});
        s.rows_out += 1;
      }
      return done(Value_{out, out});
    }
    case PhysOpKind::kMaterialize: {
      std::optional<RelationPtr>& slot =
          memo[static_cast<size_t>(op->memo_slot)];
      if (slot.has_value()) {
        ++s.cache_hits;
        // Hand out the cached pointer: sharing, not copying.
        return done(Value_{*slot, nullptr});
      }
      auto in = Run(op->left);
      if (!in.ok()) return done(in.status());
      slot = in->rel;
      return done(Value_{in->rel, nullptr});
    }
  }
  return done(InternalError("unhandled physical operator"));
}

namespace {

// Builds the profile tree. Shared Materialize subtrees are expanded once;
// later references become stubs so the tree's totals count work once.
ExecProfile BuildProfile(const PhysicalOp* op,
                         const std::vector<OpStats>& stats,
                         std::vector<bool>& visited) {
  ExecProfile node;
  node.op = op->kind;
  node.detail = OpDetail(op);
  node.arity = op->arity;
  if (visited[static_cast<size_t>(op->id)]) {
    node.shared_ref = true;
    return node;
  }
  visited[static_cast<size_t>(op->id)] = true;
  node.stats = stats[static_cast<size_t>(op->id)];
  if (op->left != nullptr) {
    node.children.push_back(BuildProfile(op->left, stats, visited));
  }
  if (op->right != nullptr) {
    node.children.push_back(BuildProfile(op->right, stats, visited));
  }
  return node;
}

void SumInto(const ExecProfile& p, ExecTotals& totals) {
  if (!p.shared_ref && p.op != PhysOpKind::kMaterialize) {
    totals.rows_in += p.stats.rows_in;
    totals.rows_out += p.stats.rows_out;
  }
  if (!p.shared_ref) {
    totals.function_calls += p.stats.function_calls;
    totals.hash_probes += p.stats.hash_probes;
    totals.tuple_copies += p.stats.tuple_copies;
  }
  for (const ExecProfile& c : p.children) SumInto(c, totals);
}

void RenderProfile(const ExecProfile& p, int depth, std::string& out) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += PhysOpKindName(p.op);
  if (!p.detail.empty()) out += "(" + p.detail + ")";
  if (p.shared_ref) {
    out += " [shared result; stats shown at first reference]\n";
    return;
  }
  out += " arity=" + std::to_string(p.arity);
  out += " rows_in=" + std::to_string(p.stats.rows_in);
  out += " rows_out=" + std::to_string(p.stats.rows_out);
  if (p.op == PhysOpKind::kHashJoin) {
    out += " build=" + std::to_string(p.stats.build_rows);
    out += " probes=" + std::to_string(p.stats.hash_probes);
  }
  if (p.stats.function_calls > 0) {
    out += " fn_calls=" + std::to_string(p.stats.function_calls);
  }
  if (p.stats.tuple_copies > 0) {
    out += " copies=" + std::to_string(p.stats.tuple_copies);
  }
  if (p.op == PhysOpKind::kMaterialize) {
    out += " cache_hits=" + std::to_string(p.stats.cache_hits);
  }
  char time_buf[32];
  std::snprintf(time_buf, sizeof(time_buf), " time=%.3fms",
                static_cast<double>(p.stats.wall_ns) / 1e6);
  out += time_buf;
  out += "\n";
  for (const ExecProfile& c : p.children) RenderProfile(c, depth + 1, out);
}

}  // namespace

ExecTotals SumProfile(const ExecProfile& profile) {
  ExecTotals totals;
  SumInto(profile, totals);
  return totals;
}

std::string ExecProfileToString(const ExecProfile& profile) {
  std::string out;
  RenderProfile(profile, 0, out);
  return out;
}

StatusOr<PhysicalPlan::Result> PhysicalPlan::Execute(
    const Database& db, ExecProfile* profile) const {
  obs::Span span("exec.execute");
  if (span.enabled()) {
    span.SetDetail("ops=" + std::to_string(ops_.size()));
  }
  static obs::Counter& executions =
      obs::MetricsRegistry::Instance().GetCounter("exec.plan_executions");
  executions.Add();
  // Validate every Scan binding up front so a broken plan fails before any
  // operator runs (mirrors the legacy evaluator's Validate pass).
  for (const std::unique_ptr<PhysicalOp>& op : ops_) {
    if (op->kind != PhysOpKind::kScan) continue;
    auto rel = db.Get(op->rel_name);
    if (!rel.ok()) return rel.status();
    if ((*rel)->arity() != op->arity) {
      return InvalidArgumentError(
          "plan expects relation '" + op->rel_name + "' with arity " +
          std::to_string(op->arity) + ", instance has " +
          std::to_string((*rel)->arity()));
    }
  }
  ExecContext exec(*this, db);
  auto result = exec.Run(root_);
  if (!result.ok()) return result.status();
  if (profile != nullptr) {
    std::vector<bool> visited(ops_.size(), false);
    *profile = BuildProfile(root_, exec.stats, visited);
  }
  return Result{result->rel, result->owned};
}

StatusOr<Relation> PhysicalPlan::ExecuteToRelation(
    const Database& db, ExecProfile* profile) const {
  auto result = Execute(db, profile);
  if (!result.ok()) return result.status();
  if (result->owned != nullptr) return std::move(*result->owned);
  return *result->relation;  // borrowed (scan/materialized): copy out
}

}  // namespace emcalc
