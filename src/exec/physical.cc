#include "src/exec/physical.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "src/base/check.h"
#include "src/base/thread_pool.h"
#include "src/exec/join_table.h"
#include "src/exec/scalar_program.h"
#include "src/exec/selection.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/adom.h"

namespace emcalc {
namespace {

// A tuple logically formed by concatenating `left` and `right` (either may
// be empty for a plain single-tuple view). TupleRefs are two-word spans,
// so views are passed by value.
struct TupleView {
  TupleRef left;
  TupleRef right;

  const Value& at(int i) const {
    size_t ln = left.size();
    if (static_cast<size_t>(i) < ln) return left[static_cast<size_t>(i)];
    return right[static_cast<size_t>(i) - ln];
  }
};

// Rows per morsel. Fixed (never derived from the thread count) so morsel
// boundaries — and therefore per-morsel output buffers — are identical for
// every num_threads; buffers concatenated in morsel order plus a final
// Normalize make parallel output bit-identical to sequential output.
constexpr size_t kMorselGrain = 2048;
// Default parallel fan-out floor: inputs smaller than this run on the
// calling thread only. Overridable per query via
// ExecOptions::morsel_threshold or the EMCALC_MORSEL_THRESHOLD env knob.
constexpr size_t kParallelThreshold = 4096;

size_t EffectiveMorselThreshold(const ExecOptions& opt) {
  if (opt.morsel_threshold != 0) return opt.morsel_threshold;
  if (const char* env = std::getenv("EMCALC_MORSEL_THRESHOLD");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
  }
  return kParallelThreshold;
}
// Hash partitions of the parallel join build (top bits of the key hash).
constexpr size_t kJoinPartitionBits = 6;
constexpr size_t kJoinPartitions = size_t{1} << kJoinPartitionBits;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t KeyHash(const Value* key, size_t nk) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < nk; ++i) h = h * 1099511628211ULL ^ key[i].Hash();
  return h;
}

std::string OpDetail(const PhysicalOp* op) {
  switch (op->kind) {
    case PhysOpKind::kScan:
      return op->rel_name;
    case PhysOpKind::kProjectMap:
      return "cols=" + std::to_string(op->exprs.size());
    case PhysOpKind::kFilterSelect:
      return "conds=" + std::to_string(op->conds.size());
    case PhysOpKind::kHashJoin:
      return "keys=" + std::to_string(op->keys.size()) +
             (op->conds.empty()
                  ? std::string()
                  : " residual=" + std::to_string(op->conds.size()));
    case PhysOpKind::kNestedLoopJoin:
      return "conds=" + std::to_string(op->conds.size());
    case PhysOpKind::kAdomScan:
      return "level=" + std::to_string(op->adom_level) +
             " fns=" + std::to_string(op->adom_fns.size());
    case PhysOpKind::kSingleton:
      return op->unit ? "unit" : "empty";
    case PhysOpKind::kMaterialize:
      return "consumers=" + std::to_string(op->consumers);
    case PhysOpKind::kUnionMerge:
    case PhysOpKind::kDiffAnti:
      return "";
  }
  return "";
}

}  // namespace

const char* PhysOpKindName(PhysOpKind kind) {
  static_assert(static_cast<int>(PhysOpKind::kMaterialize) ==
                    kNumPhysOpKinds - 1,
                "PhysOpKindName must cover every PhysOpKind");
  switch (kind) {
    case PhysOpKind::kScan: return "Scan";
    case PhysOpKind::kProjectMap: return "ProjectMap";
    case PhysOpKind::kFilterSelect: return "FilterSelect";
    case PhysOpKind::kHashJoin: return "HashJoin";
    case PhysOpKind::kNestedLoopJoin: return "NestedLoopJoin";
    case PhysOpKind::kUnionMerge: return "UnionMerge";
    case PhysOpKind::kDiffAnti: return "DiffAnti";
    case PhysOpKind::kAdomScan: return "AdomScan";
    case PhysOpKind::kSingleton: return "Singleton";
    case PhysOpKind::kMaterialize: return "Materialize";
  }
  return "?";
}

// Per-execution mutable state: one stats slot per operator and one cache
// slot per Materialize. The plan itself stays immutable.
struct ExecContext {
  const PhysicalPlan& plan;
  const Database& db;
  std::vector<OpStats> stats;
  std::vector<std::optional<RelationPtr>> memo;
  size_t threads;           // effective worker cap, >= 1
  size_t morsel_threshold;  // minimum input rows before fanning out
  // Memory attribution and limits for this execution. The governor is
  // checked at operator entry, morsel boundaries, and closure rounds.
  obs::QueryMemory qmem;
  obs::ResourceGovernor governor;
  std::vector<double> est;  // memoized per-op cardinality estimates

  ExecContext(const PhysicalPlan& p, const Database& d)
      : plan(p), db(d), stats(p.ops_.size()),
        memo(static_cast<size_t>(p.num_memo_slots_)),
        threads(p.options_.num_threads == 0 ? ThreadPool::HardwareThreads()
                                            : p.options_.num_threads),
        morsel_threshold(EffectiveMorselThreshold(p.options_)),
        qmem(p.ops_.size()),
        governor(obs::EffectiveLimits(p.options_.limits), &qmem, NowNs()),
        est(p.ops_.size(), -1.0) {}

  // Pre-execution cardinality estimate of `op`, memoized per operator.
  // Deliberately simple heuristics (sizes are known exactly for scans, a
  // fixed 1/3 selectivity per condition, independence for joins): the
  // point is the estimate-vs-actual feedback report, not a real optimizer.
  double EstimateRows(const PhysicalOp* op);

  // The value flowing between operators: `rel` is always set; `owned` is
  // set iff this operator freshly built the relation and nothing else
  // holds a reference — the parent may then steal its storage.
  struct Value_ {
    RelationPtr rel;
    std::shared_ptr<Relation> owned;
  };

  StatusOr<Value_> Run(const PhysicalOp* op);

  bool Parallel(size_t n) const {
    return threads > 1 && n >= morsel_threshold;
  }

  // Folds worker-sharded counters into the operator's stats slot. Every
  // field is a commutative sum and the shards are visited in worker-id
  // order, so totals are identical for every thread count and schedule.
  static void MergeShards(OpStats& s, const std::vector<OpStats>& shards) {
    for (const OpStats& w : shards) {
      s.function_calls += w.function_calls;
      s.tuple_copies += w.tuple_copies;
      s.build_rows += w.build_rows;
      s.hash_probes += w.hash_probes;
      s.batches += w.batches;
      s.batch_rows += w.batch_rows;
      s.batch_sel_rows += w.batch_sel_rows;
    }
  }

  // Collects ThreadPool::RegionStats across an operator's parallel regions
  // and folds them into its OpStats par_* fields on scope exit — every
  // exit path (including governor aborts) keeps the telemetry.
  struct ParFold {
    explicit ParFold(OpStats& s) : stats(s) {}
    ~ParFold() {
      stats.par_wall_ns += rs.wall_ns;
      stats.par_busy_ns += rs.busy_ns;
      stats.par_morsels += rs.morsels;
      if (rs.max_workers > stats.par_workers) {
        stats.par_workers = rs.max_workers;
      }
    }
    ParFold(const ParFold&) = delete;
    ParFold& operator=(const ParFold&) = delete;
    OpStats& stats;
    ThreadPool::RegionStats rs;
  };

  Value EvalExpr(const ScalarExpr* e, const TupleView& view, OpStats& s);
  bool CondsHold(std::span<const AlgCondition> conds, const TupleView& view,
                 OpStats& s);

  StatusOr<Value_> RunHashJoin(const PhysicalOp* op, const Value_& l,
                               const Value_& r, OpStats& s);

  // Batch kernels (ExecOptions::batch_size > 1): run the compiled scalar
  // programs over column slices of the input's flat buffer. `filter` is
  // non-null when a FilterSelect child is fused into the ProjectMap — its
  // surviving rows flow to the projection as selection indices, never
  // materialized.
  StatusOr<Value_> RunBatchProject(const PhysicalOp* op,
                                   const PhysicalOp* filter, const Value_& in,
                                   OpStats& s);
  StatusOr<Value_> RunBatchFilter(const PhysicalOp* op, const Value_& in,
                                  OpStats& s);
};

Value ExecContext::EvalExpr(const ScalarExpr* e, const TupleView& view,
                            OpStats& s) {
  switch (e->kind()) {
    case ScalarExpr::Kind::kCol:
      return view.at(e->col());
    case ScalarExpr::Kind::kConst:
      return plan.ctx_->ConstantAt(e->const_id());
    case ScalarExpr::Kind::kApply: {
      std::vector<Value> args;
      args.reserve(e->args().size());
      for (const ScalarExpr* a : e->args()) {
        args.push_back(EvalExpr(a, view, s));
      }
      ++s.function_calls;
      auto it = plan.fns_.find(e->fn());
      EMCALC_CHECK(it != plan.fns_.end());  // resolved at lowering
      return it->second->fn(args);
    }
  }
  return Value();
}

double ExecContext::EstimateRows(const PhysicalOp* op) {
  double& slot = est[static_cast<size_t>(op->id)];
  if (slot >= 0) return slot;
  if (op->hist_est_rows >= 0) {
    // History-corrected estimate from past runs of this exact query
    // (installed by Lower() via the history store); trust it over the
    // static heuristic.
    slot = op->hist_est_rows;
    return slot;
  }
  slot = 0;  // break cycles (plans are DAGs, but be safe)
  double e = 0;
  switch (op->kind) {
    case PhysOpKind::kScan: {
      const Relation* rel = db.Find(op->rel_name);
      e = rel != nullptr ? static_cast<double>(rel->size()) : 0;
      break;
    }
    case PhysOpKind::kProjectMap:
    case PhysOpKind::kMaterialize:
      e = EstimateRows(op->left);
      break;
    case PhysOpKind::kFilterSelect: {
      e = EstimateRows(op->left);
      for (size_t i = 0; i < op->conds.size(); ++i) e *= 0.33;
      break;
    }
    case PhysOpKind::kHashJoin: {
      // Independence assumption with the larger side as the key domain.
      double l = EstimateRows(op->left);
      double r = EstimateRows(op->right);
      e = l * r / std::max(std::max(l, r), 1.0);
      break;
    }
    case PhysOpKind::kNestedLoopJoin: {
      e = EstimateRows(op->left) * EstimateRows(op->right);
      for (size_t i = 0; i < op->conds.size(); ++i) e *= 0.33;
      break;
    }
    case PhysOpKind::kUnionMerge:
      e = EstimateRows(op->left) + EstimateRows(op->right);
      break;
    case PhysOpKind::kDiffAnti:
      e = EstimateRows(op->left);
      break;
    case PhysOpKind::kAdomScan: {
      // Domain values in the instance, grown by (1 + #fns) per closure
      // level — a crude upper-bound shape for term^k.
      double dom = 0;
      for (const auto& [name, rel] : db.relations()) {
        dom += static_cast<double>(rel.size()) *
               static_cast<double>(rel.arity());
      }
      dom += static_cast<double>(op->adom_consts.size());
      double growth = 1.0 + static_cast<double>(op->adom_fns.size());
      for (int i = 0; i < op->adom_level && dom < 1e18; ++i) dom *= growth;
      e = std::min(dom, 1e18);
      break;
    }
    case PhysOpKind::kSingleton:
      e = op->unit ? 1 : 0;
      break;
  }
  // Chained join estimates can overflow to inf, which would render as
  // "inf" in the profile JSON (invalid); clamp to the AdomScan ceiling.
  e = std::min(e, 1e18);
  slot = e;
  return e;
}

bool ExecContext::CondsHold(std::span<const AlgCondition> conds,
                            const TupleView& view, OpStats& s) {
  for (const AlgCondition& c : conds) {
    Value l = EvalExpr(c.lhs, view, s);
    Value r = EvalExpr(c.rhs, view, s);
    bool holds = false;
    switch (c.op) {
      case AlgCompareOp::kEq:
        holds = l == r;
        break;
      case AlgCompareOp::kNe:
        holds = l != r;
        break;
      case AlgCompareOp::kLt:
        holds = l < r;
        break;
      case AlgCompareOp::kLe:
        holds = l < r || l == r;
        break;
    }
    if (!holds) return false;
  }
  return true;
}

// Equi-join over the open-addressing JoinTable. Build on the right input,
// probe with the left. Large inputs run the partitioned parallel form:
//   1. morsel-parallel build-key computation,
//   2. per-(morsel, partition) counts + prefix sums (sequential, O(m·P)),
//   3. morsel-parallel scatter of build rows into partition order,
//   4. partition-parallel table builds,
//   5. morsel-parallel probes into per-morsel output buffers.
// Partition contents are ordered by build-row index (the scatter respects
// morsel order) and probe buffers concatenate in morsel order, so the
// result — after the final Normalize — is independent of the thread count.
StatusOr<ExecContext::Value_> ExecContext::RunHashJoin(const PhysicalOp* op,
                                                       const Value_& l,
                                                       const Value_& r,
                                                       OpStats& s) {
  const Relation& probe = *l.rel;
  const Relation& build = *r.rel;
  const size_t pn = probe.size();
  const size_t bn = build.size();  // size() normalizes both inputs
  s.rows_in += pn + bn;
  auto out = std::make_shared<Relation>(op->arity);
  // Empty-input short-circuit: no pairs exist, so skip key computation and
  // table construction entirely.
  if (bn == 0 || pn == 0) return Value_{out, out};
  EMCALC_CHECK_MSG(bn < JoinTable::kEmpty, "join build side too large");

  const size_t nk = op->keys.size();
  Tuple empty_left(static_cast<size_t>(op->split), Value());
  const TupleRef empty_left_ref(empty_left);

  // Phase 1: build-side keys and hashes.
  std::vector<Value> build_keys(bn * nk);
  std::vector<uint64_t> build_hash(bn);
  // Join scratch (keys, hashes, partition maps) is sized manually, so it
  // is charged manually; released when this call returns.
  obs::MemoryCharge scratch(static_cast<int64_t>(
      build_keys.capacity() * sizeof(Value) +
      build_hash.capacity() * sizeof(uint64_t)));
  const bool parallel = Parallel(bn) || Parallel(pn);
  const size_t max_workers = parallel ? threads : 1;
  std::vector<OpStats> shards(max_workers);
  ParFold par(s);
  ThreadPool::Global().ParallelFor(
      bn, kMorselGrain, max_workers,
      [&](size_t worker, size_t begin, size_t end) {
        if (governor.Check()) return;
        OpStats& ws = shards[worker];
        for (size_t i = begin; i < end; ++i) {
          TupleView view{empty_left_ref, build.row(i)};
          Value* key = build_keys.data() + i * nk;
          for (size_t j = 0; j < nk; ++j) {
            key[j] = EvalExpr(op->keys[j].right_key, view, ws);
          }
          build_hash[i] = KeyHash(key, nk);
          ++ws.build_rows;
        }
      },
      &par.rs);

  // Phases 2-4: partition the build rows and build one table per
  // partition. The sequential path uses a single partition.
  const size_t num_partitions = parallel ? kJoinPartitions : 1;
  const size_t shift = 64 - kJoinPartitionBits;
  auto partition_of = [&](uint64_t hash) {
    return num_partitions == 1 ? size_t{0} : hash >> shift;
  };
  if (governor.tripped()) return governor.status();
  std::vector<uint32_t> part_rows(bn);
  std::vector<size_t> part_start(num_partitions + 1, 0);
  std::vector<JoinTable> tables(num_partitions);
  scratch.Update(scratch.charged() +
                 static_cast<int64_t>(part_rows.capacity() *
                                          sizeof(uint32_t) +
                                      part_start.capacity() * sizeof(size_t)));
  if (num_partitions == 1) {
    for (size_t i = 0; i < bn; ++i) part_rows[i] = static_cast<uint32_t>(i);
    part_start[1] = bn;
    tables[0].Build(build_keys.data(), build_hash.data(), nk,
                    part_rows.data(), bn);
  } else {
    const size_t num_morsels = (bn + kMorselGrain - 1) / kMorselGrain;
    // counts[m * P + p]: build rows of morsel m landing in partition p.
    std::vector<size_t> counts(num_morsels * num_partitions, 0);
    ThreadPool::Global().ParallelFor(
        bn, kMorselGrain, max_workers,
        [&](size_t /*worker*/, size_t begin, size_t end) {
          size_t* row = counts.data() + (begin / kMorselGrain) * num_partitions;
          for (size_t i = begin; i < end; ++i) {
            ++row[partition_of(build_hash[i])];
          }
        },
        &par.rs);
    // Prefix sums in (partition, morsel) order: each (m, p) cell becomes
    // the scatter offset for that morsel's slice of that partition.
    size_t running = 0;
    for (size_t p = 0; p < num_partitions; ++p) {
      part_start[p] = running;
      for (size_t m = 0; m < num_morsels; ++m) {
        size_t c = counts[m * num_partitions + p];
        counts[m * num_partitions + p] = running;
        running += c;
      }
    }
    part_start[num_partitions] = running;
    ThreadPool::Global().ParallelFor(
        bn, kMorselGrain, max_workers,
        [&](size_t /*worker*/, size_t begin, size_t end) {
          size_t* offset =
              counts.data() + (begin / kMorselGrain) * num_partitions;
          for (size_t i = begin; i < end; ++i) {
            part_rows[offset[partition_of(build_hash[i])]++] =
                static_cast<uint32_t>(i);
          }
        },
        &par.rs);
    ThreadPool::Global().ParallelFor(
        num_partitions, 1, max_workers,
        [&](size_t /*worker*/, size_t begin, size_t end) {
          if (governor.Check()) return;
          for (size_t p = begin; p < end; ++p) {
            tables[p].Build(build_keys.data(), build_hash.data(), nk,
                            part_rows.data() + part_start[p],
                            part_start[p + 1] - part_start[p]);
          }
        },
        &par.rs);
  }
  if (governor.tripped()) return governor.status();

  // Phase 5: probe. Per-morsel output buffers keep emission order
  // deterministic; everything lands in `out` in morsel order.
  const size_t probe_morsels = (pn + kMorselGrain - 1) / kMorselGrain;
  std::vector<Relation> bufs;
  bufs.reserve(probe_morsels);
  for (size_t i = 0; i < probe_morsels; ++i) bufs.emplace_back(op->arity);
  ThreadPool::Global().ParallelFor(
      pn, kMorselGrain, max_workers,
      [&](size_t worker, size_t begin, size_t end) {
        if (governor.Check()) return;
        OpStats& ws = shards[worker];
        Relation& buf = bufs[begin / kMorselGrain];
        std::vector<Value> key(nk);
        Tuple row;
        for (size_t i = begin; i < end; ++i) {
          TupleRef a = probe.row(i);
          TupleView view{a, TupleRef()};
          for (size_t j = 0; j < nk; ++j) {
            key[j] = EvalExpr(op->keys[j].left_key, view, ws);
          }
          ++ws.hash_probes;
          uint64_t h = KeyHash(key.data(), nk);
          tables[partition_of(h)].ForEachMatch(
              h, key.data(), [&](uint32_t b_row) {
                TupleRef b = build.row(b_row);
                TupleView joined{a, b};
                if (!op->conds.empty() && !CondsHold(op->conds, joined, ws)) {
                  return;
                }
                row.clear();
                row.insert(row.end(), a.begin(), a.end());
                row.insert(row.end(), b.begin(), b.end());
                buf.AppendRow(row.data());
              });
        }
      },
      &par.rs);
  if (governor.tripped()) return governor.status();
  out->Reserve(pn);  // one match per probe row is the common shape here
  for (const Relation& buf : bufs) out->AppendAll(buf);
  out->Normalize();
  MergeShards(s, shards);
  s.rows_out += out->size();
  return Value_{out, out};
}

// Vectorized ProjectMap: the compiled program runs over dense batches of
// the input's flat buffer (batch boundaries clipped to morsel boundaries,
// so sequential and parallel executions count identical batches). With a
// fused FilterSelect child, each batch is first refined to a selection
// vector and the projection evaluates only the surviving lanes — the
// filter's output relation is never materialized.
StatusOr<ExecContext::Value_> ExecContext::RunBatchProject(
    const PhysicalOp* op, const PhysicalOp* filter, const Value_& in,
    OpStats& s) {
  const Relation& in_rel = *in.rel;
  const size_t n = in_rel.size();  // normalizes before slicing
  const int in_arity = in_rel.arity();
  const Value* data = in_rel.data();
  const ScalarProgram& proj = *op->program;
  const ScalarProgram* cond =
      filter != nullptr ? filter->cond_program.get() : nullptr;
  OpStats* fstats =
      filter != nullptr ? &stats[static_cast<size_t>(filter->id)] : nullptr;
  if (fstats != nullptr) ++fstats->invocations;
  const size_t bsz =
      std::min(plan.options_.batch_size, std::max<size_t>(n, 1));
  auto out = std::make_shared<Relation>(op->arity);
  out->Reserve(n);
  uint64_t survivors = 0;
  if (Parallel(n)) {
    const size_t num_morsels = (n + kMorselGrain - 1) / kMorselGrain;
    std::vector<Relation> bufs;
    bufs.reserve(num_morsels);
    for (size_t i = 0; i < num_morsels; ++i) bufs.emplace_back(op->arity);
    std::vector<OpStats> shards(threads);
    std::vector<OpStats> fshards(cond != nullptr ? threads : 0);
    std::vector<BatchScratch> pscratch(threads);
    std::vector<BatchScratch> fscratch(cond != nullptr ? threads : 0);
    ParFold par(s);
    ThreadPool::Global().ParallelFor(
        n, kMorselGrain, threads,
        [&](size_t worker, size_t begin, size_t end) {
          if (governor.Check()) return;
          OpStats& ws = shards[worker];
          Relation& buf = bufs[begin / kMorselGrain];
          BatchScratch& ps = pscratch[worker];
          ps.Prepare(proj, bsz, proj.num_outputs());
          if (cond != nullptr) fscratch[worker].Prepare(*cond, bsz, 0);
          for (size_t b = begin; b < end; b += bsz) {
            const auto count = static_cast<uint32_t>(std::min(bsz, end - b));
            Selection sel =
                Selection::Dense(static_cast<uint32_t>(b), count);
            if (cond != nullptr) {
              OpStats& wf = fshards[worker];
              sel = cond->RunFilter(data, in_arity, sel, fscratch[worker],
                                    &wf.function_calls);
              ++wf.batches;
              wf.batch_rows += count;
              wf.batch_sel_rows += sel.size();
            }
            const Value* rows =
                proj.RunProject(data, in_arity, sel, ps, &ws.function_calls);
            buf.AppendRows(rows, sel.size());
            ++ws.batches;
            ws.batch_rows += count;
            ws.batch_sel_rows += sel.size();
          }
        },
        &par.rs);
    for (const Relation& buf : bufs) out->AppendAll(buf);
    if (fstats != nullptr) {
      for (const OpStats& w : fshards) survivors += w.batch_sel_rows;
      MergeShards(*fstats, fshards);
    }
    MergeShards(s, shards);
  } else {
    BatchScratch ps;
    ps.Prepare(proj, bsz, proj.num_outputs());
    BatchScratch fs;
    if (cond != nullptr) fs.Prepare(*cond, bsz, 0);
    for (size_t m = 0; m < n; m += kMorselGrain) {
      if (governor.Check()) break;
      const size_t end = std::min(n, m + kMorselGrain);
      for (size_t b = m; b < end; b += bsz) {
        const auto count = static_cast<uint32_t>(std::min(bsz, end - b));
        Selection sel = Selection::Dense(static_cast<uint32_t>(b), count);
        if (cond != nullptr) {
          sel = cond->RunFilter(data, in_arity, sel, fs,
                                &fstats->function_calls);
          ++fstats->batches;
          fstats->batch_rows += count;
          fstats->batch_sel_rows += sel.size();
          survivors += sel.size();
        }
        const Value* rows =
            proj.RunProject(data, in_arity, sel, ps, &s.function_calls);
        out->AppendRows(rows, sel.size());
        ++s.batches;
        s.batch_rows += count;
        s.batch_sel_rows += sel.size();
      }
    }
  }
  out->Normalize();
  // In fused form this operator logically consumes the filter's output,
  // so row accounting matches the unfused (and legacy) plans exactly.
  s.rows_in += cond != nullptr ? survivors : n;
  s.rows_out += out->size();
  if (fstats != nullptr) {
    fstats->rows_in += n;
    fstats->rows_out += survivors;
  }
  return Value_{out, out};
}

// Vectorized FilterSelect: staged condition programs refine a selection
// vector per batch, then the surviving rows are gathered into the scratch
// staging area and appended in bulk.
StatusOr<ExecContext::Value_> ExecContext::RunBatchFilter(
    const PhysicalOp* op, const Value_& in, OpStats& s) {
  const Relation& in_rel = *in.rel;
  const size_t n = in_rel.size();
  const int in_arity = in_rel.arity();
  const auto width = static_cast<size_t>(in_arity);
  const Value* data = in_rel.data();
  const ScalarProgram& cond = *op->cond_program;
  const size_t bsz =
      std::min(plan.options_.batch_size, std::max<size_t>(n, 1));
  auto out = std::make_shared<Relation>(op->arity);
  auto gather = [&](Selection sel, BatchScratch& sc, Relation& buf,
                    OpStats& ws) {
    Value* staging = sc.row_staging();
    if (width > 0) {
      for (uint32_t i = 0; i < sel.size(); ++i) {
        std::memcpy(staging + i * width,
                    data + static_cast<size_t>(sel[i]) * width,
                    width * sizeof(Value));
      }
    }
    buf.AppendRows(staging, sel.size());
    ws.tuple_copies += sel.size();
  };
  if (Parallel(n)) {
    const size_t num_morsels = (n + kMorselGrain - 1) / kMorselGrain;
    std::vector<Relation> bufs;
    bufs.reserve(num_morsels);
    for (size_t i = 0; i < num_morsels; ++i) bufs.emplace_back(op->arity);
    std::vector<OpStats> shards(threads);
    std::vector<BatchScratch> scratch(threads);
    ParFold par(s);
    ThreadPool::Global().ParallelFor(
        n, kMorselGrain, threads,
        [&](size_t worker, size_t begin, size_t end) {
          if (governor.Check()) return;
          OpStats& ws = shards[worker];
          Relation& buf = bufs[begin / kMorselGrain];
          BatchScratch& sc = scratch[worker];
          sc.Prepare(cond, bsz, width);
          for (size_t b = begin; b < end; b += bsz) {
            const auto count = static_cast<uint32_t>(std::min(bsz, end - b));
            Selection sel = cond.RunFilter(
                data, in_arity,
                Selection::Dense(static_cast<uint32_t>(b), count), sc,
                &ws.function_calls);
            gather(sel, sc, buf, ws);
            ++ws.batches;
            ws.batch_rows += count;
            ws.batch_sel_rows += sel.size();
          }
        },
        &par.rs);
    for (const Relation& buf : bufs) out->AppendAll(buf);
    MergeShards(s, shards);
  } else {
    BatchScratch sc;
    sc.Prepare(cond, bsz, width);
    for (size_t m = 0; m < n; m += kMorselGrain) {
      if (governor.Check()) break;
      const size_t end = std::min(n, m + kMorselGrain);
      for (size_t b = m; b < end; b += bsz) {
        const auto count = static_cast<uint32_t>(std::min(bsz, end - b));
        Selection sel = cond.RunFilter(
            data, in_arity, Selection::Dense(static_cast<uint32_t>(b), count),
            sc, &s.function_calls);
        gather(sel, sc, *out, s);
        ++s.batches;
        s.batch_rows += count;
        s.batch_sel_rows += sel.size();
      }
    }
  }
  out->Normalize();
  s.rows_in += n;
  s.rows_out += out->size();
  return Value_{out, out};
}

StatusOr<ExecContext::Value_> ExecContext::Run(const PhysicalOp* op) {
  // One trace span per operator invocation: nested operator spans render
  // as the plan's flame graph next to the compile-phase spans.
  obs::Span span(PhysOpKindName(op->kind));
  if (span.enabled()) span.SetDetail(OpDetail(op));
  OpStats& s = stats[static_cast<size_t>(op->id)];
  ++s.invocations;
  // All tracked allocations until this frame returns (including child
  // operators, which install their own scope on entry) charge this op.
  obs::MemoryScope mem_scope(&qmem, op->id);
  uint64_t start = NowNs();
  // Wrap the per-kind result so every exit path records inclusive time.
  auto done = [&](StatusOr<Value_> v) {
    s.wall_ns += NowNs() - start;
    return v;
  };
  // Successful-exit wrapper: counts output rows against max_rows and
  // re-checks the limits so a trip surfaces at the operator that crossed
  // the ceiling.
  auto finish = [&](Value_ v) -> StatusOr<Value_> {
    governor.AddRows(v.rel->size());
    if (governor.Check()) return done(governor.status());
    return done(std::move(v));
  };
  if (governor.Check()) return done(governor.status());

  switch (op->kind) {
    case PhysOpKind::kScan: {
      const Relation* rel = db.Find(op->rel_name);
      EMCALC_CHECK(rel != nullptr);  // bindings validated before execution
      s.rows_in += rel->size();
      s.rows_out += rel->size();
      // Borrow the database's storage: non-owning alias, zero copies.
      return finish(Value_{RelationPtr(RelationPtr(), rel), nullptr});
    }
    case PhysOpKind::kProjectMap: {
      const bool batch =
          plan.options_.batch_size > 1 && op->program != nullptr;
      const PhysicalOp* fused = nullptr;
      const PhysicalOp* source = op->left;
      if (batch && op->left->kind == PhysOpKind::kFilterSelect &&
          op->left->cond_program != nullptr) {
        // Fuse the child FilterSelect: shared subplans always sit behind a
        // Materialize, so this filter has no other consumer and its result
        // can stay a selection vector.
        fused = op->left;
        source = fused->left;
      }
      auto in = Run(source);
      if (!in.ok()) return done(in.status());
      if (batch) {
        auto v = RunBatchProject(op, fused, *in, s);
        if (!v.ok()) return done(v.status());
        return finish(std::move(*v));
      }
      const Relation& in_rel = *in->rel;
      const size_t n = in_rel.size();  // normalizes before the region
      auto out = std::make_shared<Relation>(op->arity);
      out->Reserve(n);
      if (Parallel(n)) {
        const size_t num_morsels = (n + kMorselGrain - 1) / kMorselGrain;
        std::vector<Relation> bufs;
        bufs.reserve(num_morsels);
        for (size_t i = 0; i < num_morsels; ++i) bufs.emplace_back(op->arity);
        std::vector<OpStats> shards(threads);
        ParFold par(s);
        ThreadPool::Global().ParallelFor(
            n, kMorselGrain, threads,
            [&](size_t worker, size_t begin, size_t end) {
              if (governor.Check()) return;
              OpStats& ws = shards[worker];
              Relation& buf = bufs[begin / kMorselGrain];
              Tuple row(op->exprs.size());
              for (size_t i = begin; i < end; ++i) {
                TupleView view{in_rel.row(i), TupleRef()};
                for (size_t j = 0; j < op->exprs.size(); ++j) {
                  row[j] = EvalExpr(op->exprs[j], view, ws);
                }
                buf.AppendRow(row.data());
              }
            },
            &par.rs);
        for (const Relation& buf : bufs) out->AppendAll(buf);
        MergeShards(s, shards);
      } else {
        Tuple row(op->exprs.size());
        size_t i = 0;
        for (TupleRef t : in_rel) {
          if ((i++ & 2047u) == 0 && governor.Check()) break;
          TupleView view{t, TupleRef()};
          for (size_t j = 0; j < op->exprs.size(); ++j) {
            row[j] = EvalExpr(op->exprs[j], view, s);
          }
          out->AppendRow(row.data());
        }
      }
      out->Normalize();
      s.rows_in += n;
      s.rows_out += out->size();
      return finish(Value_{out, out});
    }
    case PhysOpKind::kFilterSelect: {
      auto in = Run(op->left);
      if (!in.ok()) return done(in.status());
      if (plan.options_.batch_size > 1 && op->cond_program != nullptr) {
        auto v = RunBatchFilter(op, *in, s);
        if (!v.ok()) return done(v.status());
        return finish(std::move(*v));
      }
      const Relation& in_rel = *in->rel;
      const size_t n = in_rel.size();
      auto out = std::make_shared<Relation>(op->arity);
      if (Parallel(n)) {
        const size_t num_morsels = (n + kMorselGrain - 1) / kMorselGrain;
        std::vector<Relation> bufs;
        bufs.reserve(num_morsels);
        for (size_t i = 0; i < num_morsels; ++i) bufs.emplace_back(op->arity);
        std::vector<OpStats> shards(threads);
        ParFold par(s);
        ThreadPool::Global().ParallelFor(
            n, kMorselGrain, threads,
            [&](size_t worker, size_t begin, size_t end) {
              if (governor.Check()) return;
              OpStats& ws = shards[worker];
              Relation& buf = bufs[begin / kMorselGrain];
              for (size_t i = begin; i < end; ++i) {
                TupleRef t = in_rel.row(i);
                TupleView view{t, TupleRef()};
                if (CondsHold(op->conds, view, ws)) {
                  buf.AppendRow(t.data());
                  ++ws.tuple_copies;
                }
              }
            },
            &par.rs);
        for (const Relation& buf : bufs) out->AppendAll(buf);
        MergeShards(s, shards);
      } else {
        size_t i = 0;
        for (TupleRef t : in_rel) {
          if ((i++ & 2047u) == 0 && governor.Check()) break;
          TupleView view{t, TupleRef()};
          if (CondsHold(op->conds, view, s)) {
            out->Insert(t);
            ++s.tuple_copies;
          }
        }
      }
      out->Normalize();
      s.rows_in += n;
      s.rows_out += out->size();
      return finish(Value_{out, out});
    }
    case PhysOpKind::kHashJoin:
    case PhysOpKind::kNestedLoopJoin: {
      auto l = Run(op->left);
      if (!l.ok()) return done(l.status());
      auto r = Run(op->right);
      if (!r.ok()) return done(r.status());
      if (op->kind == PhysOpKind::kHashJoin) {
        auto j = RunHashJoin(op, *l, *r, s);
        if (!j.ok()) return done(j.status());
        return finish(std::move(*j));
      }
      auto out = std::make_shared<Relation>(op->arity);
      Tuple row;
      size_t li = 0;
      for (TupleRef a : *l->rel) {
        if ((li++ & 255u) == 0 && governor.Check()) break;
        for (TupleRef b : *r->rel) {
          TupleView joined{a, b};
          if (!op->conds.empty() && !CondsHold(op->conds, joined, s)) {
            continue;
          }
          row.clear();
          row.insert(row.end(), a.begin(), a.end());
          row.insert(row.end(), b.begin(), b.end());
          out->AppendRow(row.data());
        }
      }
      out->Normalize();
      s.rows_in += l->rel->size() + r->rel->size();
      s.rows_out += out->size();
      return finish(Value_{out, out});
    }
    case PhysOpKind::kUnionMerge: {
      auto l = Run(op->left);
      if (!l.ok()) return done(l.status());
      auto r = Run(op->right);
      if (!r.ok()) return done(r.status());
      s.rows_in += l->rel->size() + r->rel->size();
      uint64_t copies_before = Relation::TuplesCopied();
      // Reuse an exclusively-owned input's storage when possible (union is
      // symmetric); otherwise merge into fresh storage (UnionWith reserves
      // the combined input cardinality up front).
      Relation merged(op->arity);
      if (l->owned != nullptr) {
        merged = std::move(*l->owned).UnionWith(*r->rel);
      } else if (r->owned != nullptr) {
        merged = std::move(*r->owned).UnionWith(*l->rel);
      } else {
        merged = l->rel->UnionWith(*r->rel);
      }
      s.tuple_copies += Relation::TuplesCopied() - copies_before;
      auto out = std::make_shared<Relation>(std::move(merged));
      s.rows_out += out->size();
      return finish(Value_{out, out});
    }
    case PhysOpKind::kDiffAnti: {
      auto l = Run(op->left);
      if (!l.ok()) return done(l.status());
      auto r = Run(op->right);
      if (!r.ok()) return done(r.status());
      s.rows_in += l->rel->size() + r->rel->size();
      uint64_t copies_before = Relation::TuplesCopied();
      Relation diff(op->arity);
      if (l->owned != nullptr) {
        diff = std::move(*l->owned).DifferenceWith(*r->rel);
      } else {
        diff = l->rel->DifferenceWith(*r->rel);
      }
      s.tuple_copies += Relation::TuplesCopied() - copies_before;
      auto out = std::make_shared<Relation>(std::move(diff));
      s.rows_out += out->size();
      return finish(Value_{out, out});
    }
    case PhysOpKind::kAdomScan: {
      ValueSet base = ActiveDomain(db);
      for (const Value& v : op->adom_consts) base.push_back(v);
      NormalizeValueSet(base);
      ParFold par(s);
      auto closed = TermClosure(std::move(base), op->adom_fns,
                                *plan.registry_, op->adom_level,
                                plan.options_.adom_budget, threads,
                                governor.enabled() ? &governor : nullptr,
                                &par.rs);
      if (!closed.ok()) return done(closed.status());
      auto out = std::make_shared<Relation>(1);
      out->Reserve(closed->size());
      for (const Value& v : *closed) out->AppendRow(&v);
      s.rows_out += out->size();
      return finish(Value_{out, out});
    }
    case PhysOpKind::kSingleton: {
      auto out = std::make_shared<Relation>(op->arity);
      if (op->unit) {
        out->Insert(Tuple{});
        s.rows_out += 1;
      }
      return finish(Value_{out, out});
    }
    case PhysOpKind::kMaterialize: {
      std::optional<RelationPtr>& slot =
          memo[static_cast<size_t>(op->memo_slot)];
      if (slot.has_value()) {
        ++s.cache_hits;
        // Hand out the cached pointer: sharing, not copying.
        return done(Value_{*slot, nullptr});
      }
      auto in = Run(op->left);
      if (!in.ok()) return done(in.status());
      slot = in->rel;
      return done(Value_{in->rel, nullptr});
    }
  }
  return done(InternalError("unhandled physical operator"));
}

namespace {

// Builds the profile tree. Shared Materialize subtrees are expanded once;
// later references become stubs so the tree's totals count work once.
ExecProfile BuildProfile(const PhysicalOp* op,
                         const std::vector<OpStats>& stats,
                         std::vector<bool>& visited) {
  ExecProfile node;
  node.op = op->kind;
  node.detail = OpDetail(op);
  node.arity = op->arity;
  if (visited[static_cast<size_t>(op->id)]) {
    node.shared_ref = true;
    return node;
  }
  visited[static_cast<size_t>(op->id)] = true;
  node.stats = stats[static_cast<size_t>(op->id)];
  if (op->left != nullptr) {
    node.children.push_back(BuildProfile(op->left, stats, visited));
  }
  if (op->right != nullptr) {
    node.children.push_back(BuildProfile(op->right, stats, visited));
  }
  return node;
}

void SumInto(const ExecProfile& p, ExecTotals& totals) {
  if (!p.shared_ref && p.op != PhysOpKind::kMaterialize) {
    totals.rows_in += p.stats.rows_in;
    totals.rows_out += p.stats.rows_out;
  }
  if (!p.shared_ref) {
    totals.function_calls += p.stats.function_calls;
    totals.hash_probes += p.stats.hash_probes;
    totals.tuple_copies += p.stats.tuple_copies;
  }
  for (const ExecProfile& c : p.children) SumInto(c, totals);
}

void RenderProfile(const ExecProfile& p, int depth, std::string& out) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += PhysOpKindName(p.op);
  if (!p.detail.empty()) out += "(" + p.detail + ")";
  if (p.shared_ref) {
    out += " [shared result; stats shown at first reference]\n";
    return;
  }
  out += " arity=" + std::to_string(p.arity);
  out += " rows_in=" + std::to_string(p.stats.rows_in);
  out += " rows_out=" + std::to_string(p.stats.rows_out);
  if (p.stats.est_rows >= 0) {
    char est_buf[64];
    if (p.stats.est_history_runs > 0) {
      std::snprintf(est_buf, sizeof(est_buf),
                    " est_rows=%.0f [history:%llu]", p.stats.est_rows,
                    static_cast<unsigned long long>(p.stats.est_history_runs));
    } else {
      std::snprintf(est_buf, sizeof(est_buf), " est_rows=%.0f",
                    p.stats.est_rows);
    }
    out += est_buf;
  }
  if (p.op == PhysOpKind::kHashJoin) {
    out += " build=" + std::to_string(p.stats.build_rows);
    out += " probes=" + std::to_string(p.stats.hash_probes);
  }
  if (p.stats.function_calls > 0) {
    out += " fn_calls=" + std::to_string(p.stats.function_calls);
  }
  if (p.stats.tuple_copies > 0) {
    out += " copies=" + std::to_string(p.stats.tuple_copies);
  }
  if (p.stats.batches > 0) {
    // Batch-kernel telemetry: mean rows entering each batch and the share
    // of those rows surviving the batch's selection vector.
    double rows_per_batch = static_cast<double>(p.stats.batch_rows) /
                            static_cast<double>(p.stats.batches);
    double density =
        p.stats.batch_rows > 0
            ? 100.0 * static_cast<double>(p.stats.batch_sel_rows) /
                  static_cast<double>(p.stats.batch_rows)
            : 0;
    char batch_buf[80];
    std::snprintf(batch_buf, sizeof(batch_buf),
                  " batches=%llu rows/batch=%.0f sel_density=%.0f%%",
                  static_cast<unsigned long long>(p.stats.batches),
                  rows_per_batch, density);
    out += batch_buf;
  }
  if (p.op == PhysOpKind::kMaterialize) {
    out += " cache_hits=" + std::to_string(p.stats.cache_hits);
  }
  if (p.stats.bytes_allocated > 0) {
    out += " bytes=" + std::to_string(p.stats.bytes_allocated);
  }
  out += " peak_bytes=" + std::to_string(p.stats.peak_bytes);
  char time_buf[32];
  std::snprintf(time_buf, sizeof(time_buf), " time=%.3fms",
                static_cast<double>(p.stats.wall_ns) / 1e6);
  out += time_buf;
  if (p.stats.par_workers > 1) {
    // Parallel efficiency of this operator's regions: 100% means every
    // participating thread was draining morsels for the whole region.
    double denom = static_cast<double>(p.stats.par_wall_ns) *
                   static_cast<double>(p.stats.par_workers);
    double eff = denom > 0
                     ? static_cast<double>(p.stats.par_busy_ns) / denom
                     : 0;
    if (eff > 1.0) eff = 1.0;
    char par_buf[64];
    std::snprintf(par_buf, sizeof(par_buf),
                  " par_eff=%.0f%% workers=%u morsels=%llu", eff * 100.0,
                  p.stats.par_workers,
                  static_cast<unsigned long long>(p.stats.par_morsels));
    out += par_buf;
  }
  out += "\n";
  for (const ExecProfile& c : p.children) RenderProfile(c, depth + 1, out);
}

void SumParallelInto(const ExecProfile& p, ParallelSummary& sum) {
  if (!p.shared_ref && p.stats.par_workers > 1) {
    sum.busy_ns += p.stats.par_busy_ns;
    sum.weighted_wall_ns += p.stats.par_wall_ns * p.stats.par_workers;
    sum.morsels += p.stats.par_morsels;
    if (p.stats.par_workers > sum.max_workers) {
      sum.max_workers = p.stats.par_workers;
    }
  }
  for (const ExecProfile& c : p.children) SumParallelInto(c, sum);
}

}  // namespace

ExecTotals SumProfile(const ExecProfile& profile) {
  ExecTotals totals;
  SumInto(profile, totals);
  return totals;
}

ParallelSummary SumParallel(const ExecProfile& profile) {
  ParallelSummary sum;
  SumParallelInto(profile, sum);
  return sum;
}

std::string ExecProfileToString(const ExecProfile& profile) {
  std::string out;
  RenderProfile(profile, 0, out);
  return out;
}

namespace {

void ProfileJson(const ExecProfile& p, std::string& out) {
  out += "{\"op\":\"";
  out += PhysOpKindName(p.op);
  out += "\",\"detail\":\"" + obs::JsonEscape(p.detail) + "\"";
  out += ",\"arity\":" + std::to_string(p.arity);
  out += ",\"shared_ref\":";
  out += p.shared_ref ? "true" : "false";
  const OpStats& s = p.stats;
  // Every field is emitted, even when zero: FromJson must reproduce the
  // profile exactly (round-trip tested in resource_test).
  out += ",\"stats\":{";
  out += "\"invocations\":" + std::to_string(s.invocations);
  out += ",\"rows_in\":" + std::to_string(s.rows_in);
  out += ",\"rows_out\":" + std::to_string(s.rows_out);
  out += ",\"build_rows\":" + std::to_string(s.build_rows);
  out += ",\"hash_probes\":" + std::to_string(s.hash_probes);
  out += ",\"function_calls\":" + std::to_string(s.function_calls);
  out += ",\"tuple_copies\":" + std::to_string(s.tuple_copies);
  out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
  out += ",\"wall_ns\":" + std::to_string(s.wall_ns);
  char est_buf[40];
  std::snprintf(est_buf, sizeof(est_buf), "%.17g", s.est_rows);
  out += ",\"est_rows\":";
  out += est_buf;
  out += ",\"est_history_runs\":" + std::to_string(s.est_history_runs);
  out += ",\"bytes_allocated\":" + std::to_string(s.bytes_allocated);
  out += ",\"peak_bytes\":" + std::to_string(s.peak_bytes);
  out += ",\"par_wall_ns\":" + std::to_string(s.par_wall_ns);
  out += ",\"par_busy_ns\":" + std::to_string(s.par_busy_ns);
  out += ",\"par_morsels\":" + std::to_string(s.par_morsels);
  out += ",\"par_workers\":" + std::to_string(s.par_workers);
  out += ",\"batches\":" + std::to_string(s.batches);
  out += ",\"batch_rows\":" + std::to_string(s.batch_rows);
  out += ",\"batch_sel_rows\":" + std::to_string(s.batch_sel_rows);
  out += "}";
  if (p.total_peak_bytes != 0 || p.total_bytes_allocated != 0) {
    out += ",\"total_peak_bytes\":" + std::to_string(p.total_peak_bytes);
    out += ",\"total_bytes_allocated\":" +
           std::to_string(p.total_bytes_allocated);
  }
  out += ",\"children\":[";
  for (size_t i = 0; i < p.children.size(); ++i) {
    if (i > 0) out += ",";
    ProfileJson(p.children[i], out);
  }
  out += "]}";
}

StatusOr<ExecProfile> ProfileFromJsonValue(const obs::JsonValue& v) {
  if (!v.is_object()) {
    return InvalidArgumentError("profile node is not a JSON object");
  }
  ExecProfile p;
  std::string op_name = v.StringOr("op", "");
  bool found = false;
  for (int k = 0; k < kNumPhysOpKinds; ++k) {
    auto kind = static_cast<PhysOpKind>(k);
    if (op_name == PhysOpKindName(kind)) {
      p.op = kind;
      found = true;
      break;
    }
  }
  if (!found) {
    return InvalidArgumentError("unknown physical operator '" + op_name +
                                "'");
  }
  p.detail = v.StringOr("detail", "");
  p.arity = static_cast<int>(v.NumberOr("arity", 0));
  p.shared_ref = v.BoolOr("shared_ref", false);
  if (const obs::JsonValue* st = v.Find("stats");
      st != nullptr && st->is_object()) {
    OpStats& s = p.stats;
    s.invocations = static_cast<uint64_t>(st->NumberOr("invocations", 0));
    s.rows_in = static_cast<uint64_t>(st->NumberOr("rows_in", 0));
    s.rows_out = static_cast<uint64_t>(st->NumberOr("rows_out", 0));
    s.build_rows = static_cast<uint64_t>(st->NumberOr("build_rows", 0));
    s.hash_probes = static_cast<uint64_t>(st->NumberOr("hash_probes", 0));
    s.function_calls =
        static_cast<uint64_t>(st->NumberOr("function_calls", 0));
    s.tuple_copies = static_cast<uint64_t>(st->NumberOr("tuple_copies", 0));
    s.cache_hits = static_cast<uint64_t>(st->NumberOr("cache_hits", 0));
    s.wall_ns = static_cast<uint64_t>(st->NumberOr("wall_ns", 0));
    s.est_rows = st->NumberOr("est_rows", -1);
    s.est_history_runs =
        static_cast<uint64_t>(st->NumberOr("est_history_runs", 0));
    s.bytes_allocated =
        static_cast<uint64_t>(st->NumberOr("bytes_allocated", 0));
    s.peak_bytes = static_cast<int64_t>(st->NumberOr("peak_bytes", 0));
    s.par_wall_ns = static_cast<uint64_t>(st->NumberOr("par_wall_ns", 0));
    s.par_busy_ns = static_cast<uint64_t>(st->NumberOr("par_busy_ns", 0));
    s.par_morsels = static_cast<uint64_t>(st->NumberOr("par_morsels", 0));
    s.par_workers = static_cast<uint32_t>(st->NumberOr("par_workers", 0));
    s.batches = static_cast<uint64_t>(st->NumberOr("batches", 0));
    s.batch_rows = static_cast<uint64_t>(st->NumberOr("batch_rows", 0));
    s.batch_sel_rows =
        static_cast<uint64_t>(st->NumberOr("batch_sel_rows", 0));
  }
  p.total_peak_bytes =
      static_cast<int64_t>(v.NumberOr("total_peak_bytes", 0));
  p.total_bytes_allocated =
      static_cast<uint64_t>(v.NumberOr("total_bytes_allocated", 0));
  if (const obs::JsonValue* ch = v.Find("children");
      ch != nullptr && ch->is_array()) {
    for (const obs::JsonValue& c : ch->array) {
      auto child = ProfileFromJsonValue(c);
      if (!child.ok()) return child.status();
      p.children.push_back(std::move(*child));
    }
  }
  return p;
}

}  // namespace

std::string ExecProfileToJson(const ExecProfile& profile) {
  std::string out;
  ProfileJson(profile, out);
  return out;
}

StatusOr<ExecProfile> ExecProfileFromJson(std::string_view json) {
  auto parsed = obs::ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  return ProfileFromJsonValue(*parsed);
}

StatusOr<PhysicalPlan::Result> PhysicalPlan::Execute(
    const Database& db, ExecProfile* profile) const {
  obs::Span span("exec.execute");
  if (span.enabled()) {
    span.SetDetail("ops=" + std::to_string(ops_.size()));
  }
  static obs::Counter& executions =
      obs::MetricsRegistry::Instance().GetCounter("exec.plan_executions");
  executions.Add();
  // Validate every Scan binding up front so a broken plan fails before any
  // operator runs (mirrors the legacy evaluator's Validate pass).
  for (const std::unique_ptr<PhysicalOp>& op : ops_) {
    if (op->kind != PhysOpKind::kScan) continue;
    auto rel = db.Get(op->rel_name);
    if (!rel.ok()) return rel.status();
    if ((*rel)->arity() != op->arity) {
      return InvalidArgumentError(
          "plan expects relation '" + op->rel_name + "' with arity " +
          std::to_string(op->arity) + ", instance has " +
          std::to_string((*rel)->arity()));
    }
  }
  ExecContext exec(*this, db);
  exec.EstimateRows(root_);  // pre-execution estimates for every op
  auto result = exec.Run(root_);
  // Fold per-op memory slots and estimates into the stats before the
  // profile is built, so the profile is complete even when the run failed
  // (a tripped governor still reports the partial work).
  for (size_t i = 0; i < ops_.size(); ++i) {
    exec.stats[i].est_rows = exec.est[i];
    exec.stats[i].est_history_runs =
        ops_[i]->hist_est_rows >= 0 ? ops_[i]->hist_runs : 0;
    exec.stats[i].bytes_allocated = exec.qmem.OpBytesAllocated(i);
    exec.stats[i].peak_bytes = exec.qmem.OpPeakBytes(i);
  }
  if (profile != nullptr) {
    std::vector<bool> visited(ops_.size(), false);
    *profile = BuildProfile(root_, exec.stats, visited);
    profile->total_peak_bytes = exec.qmem.peak_bytes();
    profile->total_bytes_allocated = exec.qmem.bytes_allocated();
  }
  static obs::Gauge& peak_gauge =
      obs::MetricsRegistry::Instance().GetGauge("exec.peak_query_bytes");
  peak_gauge.UpdateMax(exec.qmem.peak_bytes());
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kResourceExhausted) {
      static obs::Counter& aborted =
          obs::MetricsRegistry::Instance().GetCounter("exec.queries_aborted");
      aborted.Add();
    }
    return result.status();
  }
  return Result{result->rel, result->owned};
}

StatusOr<Relation> PhysicalPlan::ExecuteToRelation(
    const Database& db, ExecProfile* profile) const {
  auto result = Execute(db, profile);
  if (!result.ok()) return result.status();
  if (result->owned != nullptr) return std::move(*result->owned);
  return *result->relation;  // borrowed (scan/materialized): copy out
}

}  // namespace emcalc
