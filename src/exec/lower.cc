#include "src/exec/lower.h"

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/exec/feedback.h"
#include "src/obs/history.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/verify/verify.h"

namespace emcalc {
namespace {

// True if `e` references only left columns (side 0) / right columns
// (side 1) of a join with the given split point.
bool OnSide(const ScalarExpr* e, int split, int side) {
  switch (e->kind()) {
    case ScalarExpr::Kind::kCol:
      return side == 0 ? e->col() < split : e->col() >= split;
    case ScalarExpr::Kind::kConst:
      return true;
    case ScalarExpr::Kind::kApply:
      for (const ScalarExpr* a : e->args()) {
        if (!OnSide(a, split, side)) return false;
      }
      return true;
  }
  return false;
}

}  // namespace

class Lowerer {
 public:
  Lowerer(const AstContext& ctx, const FunctionRegistry& registry,
          const ExecOptions& options)
      : ctx_(ctx), registry_(registry) {
    plan_.ctx_ = &ctx;
    plan_.registry_ = &registry;
    plan_.options_ = options;
  }

  StatusOr<PhysicalPlan> Lower(const AlgExpr* root) {
    CountRefs(root);
    auto op = LowerNode(root);
    if (!op.ok()) return op.status();
    plan_.root_ = *op;
    ApplyHistoryCorrections();
    return std::move(plan_);
  }

 private:
  // Feedback loop: when the history store has actuals for this query hash,
  // install the historical mean actual as each matching operator's
  // estimate (consumed by ExecContext::EstimateRows ahead of the static
  // heuristic). Only the estimate changes — execution semantics and
  // results are untouched.
  void ApplyHistoryCorrections() {
    obs::HistoryStore* store = obs::GetHistoryStore();
    if (store == nullptr || plan_.options_.query_hash == 0) return;
    std::vector<std::string> paths = PlanOpPaths(plan_);
    uint64_t corrected = 0;
    for (auto& op : plan_.ops_) {
      const std::string& path = paths[static_cast<size_t>(op->id)];
      if (path.empty()) continue;
      auto corr = store->LookupEstimate(plan_.options_.query_hash, path);
      if (!corr.has_value()) continue;
      op->hist_est_rows = corr->est_rows;
      op->hist_runs = corr->runs;
      ++corrected;
    }
    if (corrected > 0) {
      static obs::Counter& counter = obs::MetricsRegistry::Instance()
                                         .GetCounter("history.corrected_ops");
      counter.Add(corrected);
    }
  }
  PhysicalOp* NewOp(PhysOpKind kind, int arity) {
    auto op = std::make_unique<PhysicalOp>();
    op->kind = kind;
    op->arity = arity;
    op->id = static_cast<int>(plan_.ops_.size());
    plan_.ops_.push_back(std::move(op));
    return plan_.ops_.back().get();
  }

  // Counts how many parents each logical node has; nodes referenced more
  // than once get a Materialize so shared work runs once.
  void CountRefs(const AlgExpr* node) {
    if (++refs_[node] > 1) return;  // children already counted once
    switch (node->kind()) {
      case AlgKind::kProject:
      case AlgKind::kSelect:
        CountRefs(node->input());
        break;
      case AlgKind::kJoin:
      case AlgKind::kUnion:
      case AlgKind::kDiff:
        CountRefs(node->left());
        CountRefs(node->right());
        break;
      case AlgKind::kRel:
      case AlgKind::kUnit:
      case AlgKind::kEmpty:
      case AlgKind::kAdom:
        break;  // leaves
    }
  }

  // Resolves a scalar expression's function applications, binding them
  // into the plan's function table.
  Status ResolveExpr(const ScalarExpr* e) {
    if (e->kind() == ScalarExpr::Kind::kApply) {
      std::string name(ctx_.symbols().Name(e->fn()));
      auto f = registry_.Get(name, static_cast<int>(e->args().size()));
      if (!f.ok()) return f.status();
      plan_.fns_.emplace(e->fn(), *f);
      for (const ScalarExpr* a : e->args()) {
        if (Status s = ResolveExpr(a); !s.ok()) return s;
      }
    }
    return Status::Ok();
  }

  Status ResolveConds(std::span<const AlgCondition> conds) {
    for (const AlgCondition& c : conds) {
      if (Status s = ResolveExpr(c.lhs); !s.ok()) return s;
      if (Status s = ResolveExpr(c.rhs); !s.ok()) return s;
    }
    return Status::Ok();
  }

  StatusOr<const PhysicalOp*> LowerNode(const AlgExpr* node) {
    auto it = memo_.find(node);
    if (it != memo_.end()) return it->second;
    auto lowered = LowerUnshared(node);
    if (!lowered.ok()) return lowered;
    const PhysicalOp* op = *lowered;
    auto ref = refs_.find(node);
    int consumers = ref == refs_.end() ? 1 : ref->second;
    if (consumers > 1) {
      PhysicalOp* mat = NewOp(PhysOpKind::kMaterialize, node->arity());
      mat->left = op;
      mat->memo_slot = plan_.num_memo_slots_++;
      mat->consumers = consumers;
      op = mat;
    }
    memo_.emplace(node, op);
    return op;
  }

  StatusOr<const PhysicalOp*> LowerUnshared(const AlgExpr* node) {
    switch (node->kind()) {
      case AlgKind::kRel: {
        PhysicalOp* op = NewOp(PhysOpKind::kScan, node->arity());
        op->rel_name = std::string(ctx_.symbols().Name(node->rel()));
        return op;
      }
      case AlgKind::kProject: {
        for (const ScalarExpr* e : node->exprs()) {
          if (Status s = ResolveExpr(e); !s.ok()) return s;
        }
        auto in = LowerNode(node->input());
        if (!in.ok()) return in;
        PhysicalOp* op = NewOp(PhysOpKind::kProjectMap, node->arity());
        op->exprs.assign(node->exprs().begin(), node->exprs().end());
        op->left = *in;
        // Batch form compiled once here: constant folding, per-stage CSE,
        // and function-pointer binding all happen at lowering time.
        op->program = std::make_shared<const ScalarProgram>(
            ScalarProgram::CompileProject(op->exprs, ctx_, plan_.fns_));
        return op;
      }
      case AlgKind::kSelect: {
        if (Status s = ResolveConds(node->conds()); !s.ok()) return s;
        auto in = LowerNode(node->input());
        if (!in.ok()) return in;
        PhysicalOp* op = NewOp(PhysOpKind::kFilterSelect, node->arity());
        op->conds.assign(node->conds().begin(), node->conds().end());
        op->left = *in;
        op->cond_program = std::make_shared<const ScalarProgram>(
            ScalarProgram::CompileFilter(op->conds, ctx_, plan_.fns_));
        return op;
      }
      case AlgKind::kJoin:
        return LowerJoin(node);
      case AlgKind::kUnion:
      case AlgKind::kDiff: {
        auto l = LowerNode(node->left());
        if (!l.ok()) return l;
        auto r = LowerNode(node->right());
        if (!r.ok()) return r;
        PhysicalOp* op = NewOp(node->kind() == AlgKind::kUnion
                                   ? PhysOpKind::kUnionMerge
                                   : PhysOpKind::kDiffAnti,
                               node->arity());
        op->left = *l;
        op->right = *r;
        return op;
      }
      case AlgKind::kUnit: {
        PhysicalOp* op = NewOp(PhysOpKind::kSingleton, 0);
        op->unit = true;
        return op;
      }
      case AlgKind::kEmpty:
        return NewOp(PhysOpKind::kSingleton, node->arity());
      case AlgKind::kAdom: {
        PhysicalOp* op = NewOp(PhysOpKind::kAdomScan, 1);
        op->adom_level = node->adom_level();
        for (Symbol fn : node->adom_fns()) {
          std::string name(ctx_.symbols().Name(fn));
          const ScalarFunction* f = registry_.Find(name);
          if (f == nullptr) {
            return NotFoundError("unknown scalar function '" + name + "'");
          }
          op->adom_fns.emplace_back(std::move(name), f->arity);
        }
        for (uint32_t id : node->adom_consts()) {
          op->adom_consts.push_back(ctx_.ConstantAt(id));
        }
        return op;
      }
    }
    return InternalError("unhandled algebra node kind in lowering");
  }

  // Joins: partition conditions into hashable equi-keys (one side from
  // each input) and residual conditions; a HashJoin is chosen only when at
  // least one key exists.
  StatusOr<const PhysicalOp*> LowerJoin(const AlgExpr* node) {
    if (Status s = ResolveConds(node->conds()); !s.ok()) return s;
    auto l = LowerNode(node->left());
    if (!l.ok()) return l;
    auto r = LowerNode(node->right());
    if (!r.ok()) return r;

    int split = node->left()->arity();
    std::vector<PhysicalOp::KeyPair> keys;
    std::vector<AlgCondition> residual;
    for (const AlgCondition& c : node->conds()) {
      if (c.op == AlgCompareOp::kEq && OnSide(c.lhs, split, 0) &&
          OnSide(c.rhs, split, 1)) {
        keys.push_back({c.lhs, c.rhs});
      } else if (c.op == AlgCompareOp::kEq && OnSide(c.rhs, split, 0) &&
                 OnSide(c.lhs, split, 1)) {
        keys.push_back({c.rhs, c.lhs});
      } else {
        residual.push_back(c);
      }
    }

    bool hash = !keys.empty();
    PhysicalOp* op = NewOp(
        hash ? PhysOpKind::kHashJoin : PhysOpKind::kNestedLoopJoin,
        node->arity());
    op->left = *l;
    op->right = *r;
    op->split = split;
    op->keys = std::move(keys);
    op->conds = std::move(residual);  // == all conditions when not hashing
    return op;
  }

  const AstContext& ctx_;
  const FunctionRegistry& registry_;
  PhysicalPlan plan_;
  std::unordered_map<const AlgExpr*, int> refs_;
  std::unordered_map<const AlgExpr*, const PhysicalOp*> memo_;
};

StatusOr<PhysicalPlan> Lower(const AstContext& ctx, const AlgExpr* plan,
                             const FunctionRegistry& registry,
                             const ExecOptions& options) {
  obs::Span span("exec.lower");
  static obs::Counter& lowered =
      obs::MetricsRegistry::Instance().GetCounter("exec.plans_lowered");
  lowered.Add();
  Lowerer lowerer(ctx, registry, options);
  auto physical = lowerer.Lower(plan);
  // Stage boundary 5: the physical plan must mirror the algebra plan it
  // was lowered from, operator by operator.
  if (physical.ok() && verify::Enabled()) {
    verify::VerifyReport vr = verify::VerifyPhysical(*physical, plan);
    if (!vr.ok()) return vr.ToStatus();
  }
  if (physical.ok() && span.enabled()) {
    span.SetDetail("ops=" + std::to_string(physical->NumOperators()));
  }
  return physical;
}

}  // namespace emcalc
