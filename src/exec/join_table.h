// Open-addressing hash table for equi-joins, keyed on the actual key
// values rather than on key hashes. The build side's key tuples are
// precomputed into a flat nk-strided Value array; the table maps each key
// to the build-row indexes carrying it. Compared with the previous
// unordered_map<hash, vector<(key, tuple*)>> design this removes the
// per-bucket vector allocations, keeps probes on two contiguous arrays
// (slot metadata + flat keys), and makes collision handling explicit:
// duplicates occupy their own slots, and a probe scans forward until it
// hits an empty slot.
//
// Tables are built once and then read-only, so concurrent probing from
// many threads needs no synchronization. The partitioned parallel join in
// physical.cc builds one JoinTable per hash partition.
#ifndef EMCALC_EXEC_JOIN_TABLE_H_
#define EMCALC_EXEC_JOIN_TABLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/value.h"
#include "src/obs/resource.h"

namespace emcalc {

class JoinTable {
 public:
  static constexpr uint32_t kEmpty = UINT32_MAX;

  JoinTable() = default;
  ~JoinTable() { Recharge(0); }

  // The slot array's memory charge follows the table.
  JoinTable(JoinTable&& other) noexcept
      : keys_(other.keys_),
        hashes_(other.hashes_),
        nk_(other.nk_),
        mask_(other.mask_),
        slots_(std::move(other.slots_)),
        charged_(other.charged_) {
    other.charged_ = 0;
  }
  JoinTable& operator=(JoinTable&& other) noexcept {
    if (this == &other) return *this;
    Recharge(0);
    keys_ = other.keys_;
    hashes_ = other.hashes_;
    nk_ = other.nk_;
    mask_ = other.mask_;
    slots_ = std::move(other.slots_);
    charged_ = other.charged_;
    other.charged_ = 0;
    return *this;
  }
  JoinTable(const JoinTable&) = delete;
  JoinTable& operator=(const JoinTable&) = delete;

  // Indexes build rows `rows[0..n)`. `keys` is the row-major, nk-strided
  // array of every build row's key values (indexed by absolute row id);
  // `hashes` holds the matching key hashes. The caller keeps both arrays
  // alive and unchanged for the table's lifetime.
  void Build(const Value* keys, const uint64_t* hashes, size_t nk,
             const uint32_t* rows, size_t n) {
    keys_ = keys;
    hashes_ = hashes;
    nk_ = nk;
    size_t capacity = 16;
    while (capacity < 2 * n) capacity *= 2;
    mask_ = capacity - 1;
    slots_.assign(capacity, Slot{0, kEmpty});
    Recharge(static_cast<int64_t>(slots_.capacity() * sizeof(Slot)));
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = rows[i];
      size_t pos = hashes[row] & mask_;
      while (slots_[pos].row != kEmpty) pos = (pos + 1) & mask_;
      slots_[pos] = Slot{hashes[row], row};
    }
  }

  // Calls fn(row) for every build row whose key tuple equals
  // probe_key[0..nk). Safe to call concurrently once built.
  template <typename Fn>
  void ForEachMatch(uint64_t hash, const Value* probe_key, Fn&& fn) const {
    if (slots_.empty()) return;
    size_t pos = hash & mask_;
    while (slots_[pos].row != kEmpty) {
      if (slots_[pos].hash == hash &&
          KeyEquals(keys_ + size_t{slots_[pos].row} * nk_, probe_key)) {
        fn(slots_[pos].row);
      }
      pos = (pos + 1) & mask_;
    }
  }

 private:
  struct Slot {
    uint64_t hash;
    uint32_t row;  // kEmpty marks a free slot
  };

  bool KeyEquals(const Value* a, const Value* b) const {
    for (size_t i = 0; i < nk_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

  void Recharge(int64_t now) {
    if (now == charged_) return;
    obs::ChargeBytes(now - charged_);
    charged_ = now;
  }

  const Value* keys_ = nullptr;
  const uint64_t* hashes_ = nullptr;
  size_t nk_ = 0;
  size_t mask_ = 0;
  std::vector<Slot> slots_;
  int64_t charged_ = 0;
};

}  // namespace emcalc

#endif  // EMCALC_EXEC_JOIN_TABLE_H_
