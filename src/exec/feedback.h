// Estimate-vs-actual plan feedback: every executed operator carries the
// planner's cardinality estimate (OpStats::est_rows) next to the measured
// rows_out. BuildPlanFeedback flattens a profile tree into a report
// ranking operators by misestimation factor — the quotient of the larger
// and the smaller of (estimate, actual), floored at 1 — so the worst
// planning decisions surface first. Surfaced via EXPLAIN ANALYZE, the
// query log, and the repl's .feedback command.
#ifndef EMCALC_EXEC_FEEDBACK_H_
#define EMCALC_EXEC_FEEDBACK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/exec/physical.h"
#include "src/obs/history.h"

namespace emcalc {

// Ceiling for misestimation factors: a wildly wrong (or overflowed)
// estimate reports this sentinel instead of inf, so rankings and JSON
// stay finite.
inline constexpr double kMisestimateFactorCap = 1e9;

// max(est, actual) / max(min(est, actual), 1), floored at 1 and capped at
// kMisestimateFactorCap. Guarded against est == 0 / actual == 0 (both zero
// is a perfect estimate → 1.0) and non-finite estimates (→ cap): never
// divides by zero, never returns inf or NaN.
double MisestimateFactor(double est_rows, double actual_rows);

// One operator's estimate-vs-actual comparison.
struct PlanFeedbackEntry {
  std::string op;        // "HashJoin(keys=1)" — kind plus detail
  double est_rows = 0;   // planner estimate
  uint64_t actual_rows = 0;
  // MisestimateFactor(est_rows, actual_rows): 1.0 is a perfect estimate,
  // 10.0 is an order of magnitude off in either direction.
  double factor = 1;
  bool underestimate = false;  // actual exceeded the estimate
  // Estimate provenance: 0 = static heuristic, > 0 = history-corrected
  // from this many recorded runs (OpStats::est_history_runs).
  uint64_t est_history_runs = 0;
};

// The report: entries sorted by descending factor (ties keep plan order).
struct PlanFeedback {
  std::vector<PlanFeedbackEntry> entries;
  double max_factor = 1;  // 1 when every estimate was perfect (or no ops)
  std::string worst_op;   // entry with the largest factor, "" if none

  // "HashJoin(keys=1): est 75 actual 4000 (53.3x under)" per line.
  std::string ToString() const;
  // {"max_factor":..,"worst_op":"..","entries":[{..},..]}
  std::string ToJson() const;
};

// Flattens `profile` into a feedback report. Operators without an
// estimate (est_rows < 0), shared-reference stubs, and Materialize nodes
// (pure cache plumbing) are skipped.
PlanFeedback BuildPlanFeedback(const ExecProfile& profile);

// --- History-store keying (src/obs/history.h) ---------------------------
//
// Both the plan (at lowering time) and the profile (at recording time)
// must derive the same stable key for an operator: the path from the root,
// "KindName" for the root and "<parent>/<child-idx>:KindName" below it,
// with child 0 = left input and 1 = right input. A node already visited
// (a shared materialized subplan) is keyed at its first visit only —
// exactly where BuildProfile puts its stats.

// Operator path for every op in `plan`, indexed by PhysicalOp::id.
// Ids never reached from the root (shared re-visits keep their first
// path) map to "".
std::vector<std::string> PlanOpPaths(const PhysicalPlan& plan);

// Flattens one executed profile into a history observation: fills
// query_hash, query, rows_out (root), and per-op path/est/actual/factor
// samples (same skip rules as BuildPlanFeedback). Run-level outcome
// fields (ok, aborted_limit, wall_ns, peak_bytes, parallel efficiency)
// are left for the caller.
obs::RunObservation CollectRunObservation(uint64_t query_hash,
                                          const std::string& query_text,
                                          const ExecProfile& profile);

// Number of operators in `profile` whose estimate was history-corrected
// (est_history_runs > 0; shared-reference stubs excluded).
size_t CountHistoryCorrectedOps(const ExecProfile& profile);

}  // namespace emcalc

#endif  // EMCALC_EXEC_FEEDBACK_H_
