// Estimate-vs-actual plan feedback: every executed operator carries the
// planner's cardinality estimate (OpStats::est_rows) next to the measured
// rows_out. BuildPlanFeedback flattens a profile tree into a report
// ranking operators by misestimation factor — the quotient of the larger
// and the smaller of (estimate, actual), floored at 1 — so the worst
// planning decisions surface first. Surfaced via EXPLAIN ANALYZE, the
// query log, and the repl's .feedback command.
#ifndef EMCALC_EXEC_FEEDBACK_H_
#define EMCALC_EXEC_FEEDBACK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/exec/physical.h"

namespace emcalc {

// One operator's estimate-vs-actual comparison.
struct PlanFeedbackEntry {
  std::string op;        // "HashJoin(keys=1)" — kind plus detail
  double est_rows = 0;   // planner estimate
  uint64_t actual_rows = 0;
  // max(est, actual) / max(min(est, actual), 1): 1.0 is a perfect
  // estimate, 10.0 is an order of magnitude off in either direction.
  double factor = 1;
  bool underestimate = false;  // actual exceeded the estimate
};

// The report: entries sorted by descending factor (ties keep plan order).
struct PlanFeedback {
  std::vector<PlanFeedbackEntry> entries;
  double max_factor = 1;  // 1 when every estimate was perfect (or no ops)
  std::string worst_op;   // entry with the largest factor, "" if none

  // "HashJoin(keys=1): est 75 actual 4000 (53.3x under)" per line.
  std::string ToString() const;
  // {"max_factor":..,"worst_op":"..","entries":[{..},..]}
  std::string ToJson() const;
};

// Flattens `profile` into a feedback report. Operators without an
// estimate (est_rows < 0), shared-reference stubs, and Materialize nodes
// (pure cache plumbing) are skipped.
PlanFeedback BuildPlanFeedback(const ExecProfile& profile);

}  // namespace emcalc

#endif  // EMCALC_EXEC_FEEDBACK_H_
