// The physical execution layer: logical algebra plans (src/algebra/ast.h)
// are lowered (src/exec/lower.h) into trees of physical operators that
// exchange relations by shared ownership (std::shared_ptr<const Relation>)
// instead of by value. Each operator records runtime statistics — rows
// in/out, hash build/probe counts, tuples copied, wall time — into an
// ExecProfile tree that the explain machinery renders EXPLAIN ANALYZE-
// style and that the legacy AlgebraEvalStats counters are aggregated from.
//
// Operator inventory:
//   Scan           base-relation scan (borrows the Database's storage)
//   ProjectMap     extended projection: one scalar program per output column
//   FilterSelect   selection by compiled conditions
//   HashJoin       equi-join: build on the right input, probe with the left
//   NestedLoopJoin fallback join when no equality key exists
//   UnionMerge     set union (storage-reusing when an input is exclusive)
//   DiffAnti       set difference (in-place when the left is exclusive)
//   AdomScan       term^k closure of the active domain (AB88 baseline)
//   Singleton      unit / empty constant relations
//   Materialize    caches a shared subplan's result; plans are DAGs and
//                  every extra consumer gets the cached pointer, not a copy
#ifndef EMCALC_EXEC_PHYSICAL_H_
#define EMCALC_EXEC_PHYSICAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/algebra/ast.h"
#include "src/base/status.h"
#include "src/exec/scalar_program.h"
#include "src/obs/resource.h"
#include "src/storage/database.h"
#include "src/storage/interpretation.h"
#include "src/storage/relation.h"

namespace emcalc {

// Shared-ownership relation handle exchanged between operators. A Scan's
// result borrows the Database's storage (non-owning alias), so handles must
// not outlive the Database they were executed against.
using RelationPtr = std::shared_ptr<const Relation>;

// Physical operator tags.
enum class PhysOpKind : uint8_t {
  kScan,
  kProjectMap,
  kFilterSelect,
  kHashJoin,
  kNestedLoopJoin,
  kUnionMerge,
  kDiffAnti,
  kAdomScan,
  kSingleton,
  kMaterialize,
};

// Number of PhysOpKind tags; static_asserts next to each kind-dispatch
// table keep the tables in sync when a kind is added.
inline constexpr int kNumPhysOpKinds = 10;

// Stable display name, e.g. "HashJoin".
const char* PhysOpKindName(PhysOpKind kind);

// Runtime statistics of one operator over one execution.
struct OpStats {
  uint64_t invocations = 0;    // times the operator was entered
  uint64_t rows_in = 0;        // input tuples consumed
  uint64_t rows_out = 0;       // output tuples produced
  uint64_t build_rows = 0;     // hash-join build-side rows
  uint64_t hash_probes = 0;    // hash-join probe lookups
  uint64_t function_calls = 0; // scalar function applications
  uint64_t tuple_copies = 0;   // existing tuples copied into the output
  uint64_t cache_hits = 0;     // Materialize results served from cache
  uint64_t wall_ns = 0;        // inclusive wall time (children included)
  double est_rows = -1;        // planner cardinality estimate; -1 = none
  // When > 0 the estimate came from the history store (src/obs/history.h)
  // and is the mean actual over this many recorded runs; 0 = heuristic.
  uint64_t est_history_runs = 0;
  uint64_t bytes_allocated = 0;  // tracked bytes allocated under this op
  int64_t peak_bytes = 0;        // high-water tracked bytes under this op
  // Contention telemetry folded from the operator's parallel regions
  // (ThreadPool::RegionStats); all zero when the operator ran inline.
  uint64_t par_wall_ns = 0;    // summed wall time of parallel regions
  uint64_t par_busy_ns = 0;    // summed per-thread drain time
  uint64_t par_morsels = 0;    // morsels claimed
  uint32_t par_workers = 0;    // most threads that did work in one region
  // Batch-kernel telemetry (ProjectMap / FilterSelect with batch_size > 1);
  // all zero on the tuple-at-a-time path.
  uint64_t batches = 0;         // batches executed
  uint64_t batch_rows = 0;      // rows entering batches (rows/batch basis)
  uint64_t batch_sel_rows = 0;  // rows surviving the batch's selection
};

// Parallel-region telemetry aggregated over a whole profile tree, for the
// query log and EXPLAIN ANALYZE footer. Efficiency() is
// busy / sum(wall * workers) over operators that ran in parallel; 0 when
// nothing did.
struct ParallelSummary {
  uint64_t busy_ns = 0;
  uint64_t weighted_wall_ns = 0;  // sum of par_wall_ns * par_workers
  uint64_t morsels = 0;
  uint32_t max_workers = 0;
  double Efficiency() const {
    if (weighted_wall_ns == 0) return 0;
    double eff = static_cast<double>(busy_ns) /
                 static_cast<double>(weighted_wall_ns);
    return eff > 1.0 ? 1.0 : eff;
  }
};

// One node of the per-operator statistics tree. A Materialize that feeds
// several consumers appears once with its subtree; later references render
// as a stub child marked shared.
struct ExecProfile {
  PhysOpKind op = PhysOpKind::kSingleton;
  std::string detail;  // operator-specific: relation name, key count, ...
  int arity = 0;
  bool shared_ref = false;  // repeat reference to a materialized subplan
  OpStats stats;
  std::vector<ExecProfile> children;
  // Query-level memory totals; only set on the root node of a profile.
  int64_t total_peak_bytes = 0;
  uint64_t total_bytes_allocated = 0;
};

// Flat totals over a profile tree (the legacy AlgebraEvalStats view).
// Materialize nodes contribute no row counts: their child already counted
// the work once, matching the legacy evaluator's memoization accounting.
struct ExecTotals {
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t function_calls = 0;
  uint64_t hash_probes = 0;
  uint64_t tuple_copies = 0;
};
ExecTotals SumProfile(const ExecProfile& profile);

// Aggregates par_* stats over a profile tree (operators with
// par_workers > 1 only, so inline timing does not dilute the figure).
ParallelSummary SumParallel(const ExecProfile& profile);

// EXPLAIN ANALYZE-style multi-line rendering:
//   HashJoin(keys=2) arity=5 rows_in=150 rows_out=40 est_rows=75
//   peak_bytes=4096 time=0.12ms
std::string ExecProfileToString(const ExecProfile& profile);

// Canonical JSON encoding of a profile tree. Every stats field is emitted
// unconditionally so ExecProfileFromJson reproduces the profile exactly
// (round-trip tested); the bench harness and query log build on this.
std::string ExecProfileToJson(const ExecProfile& profile);
StatusOr<ExecProfile> ExecProfileFromJson(std::string_view json);

// Execution knobs.
struct ExecOptions {
  // Budget for AdomScan term closures (values). The direct translation
  // never emits kAdom; only the AB88-style baseline does.
  size_t adom_budget = 10'000'000;
  // Worker threads for morsel-parallel operators (FilterSelect,
  // ProjectMap, the partitioned HashJoin, AdomScan closure rounds).
  // 0 means hardware concurrency; 1 disables parallelism entirely.
  // Results are normalized after every parallel region, so output is
  // bit-identical across thread counts. Scalar functions must be pure
  // (thread-safe) — every registry builtin is.
  size_t num_threads = 0;
  // Rows per execution batch for the vectorized ProjectMap / FilterSelect
  // kernels (compiled scalar programs over column slices, see
  // src/exec/scalar_program.h). 1 selects the tuple-at-a-time
  // interpreter, kept as a differential oracle; output is bit-identical
  // across batch sizes.
  size_t batch_size = 1024;
  // Minimum input rows before a morsel-parallel operator fans out to the
  // thread pool. 0 defers to the EMCALC_MORSEL_THRESHOLD env knob, and
  // absent that to the built-in default (4096); an explicit field wins
  // over the env.
  size_t morsel_threshold = 0;
  // Per-query resource ceilings (0 = unlimited), merged with the
  // EMCALC_MAX_QUERY_BYTES / EMCALC_MAX_QUERY_MS env knobs at execution
  // (an explicit field here wins). A tripped limit aborts the execution
  // with kResourceExhausted naming the limit; the partial profile is
  // still filled in.
  obs::ResourceLimits limits;
  // FNV-1a hash of the query text (obs::HashQueryText); keys this plan's
  // runs in the history store so Lower() can correct estimates from past
  // actuals. 0 disables history lookup for this plan.
  uint64_t query_hash = 0;
};

// A physical operator node. Like AlgExpr this is a tagged struct consumed
// by kind-switches; only the fields of the node's kind are meaningful.
// Nodes are owned by their PhysicalPlan and immutable after lowering; all
// per-execution state lives in the execution context, so one plan can be
// executed repeatedly (and concurrently) against different databases.
struct PhysicalOp {
  PhysOpKind kind = PhysOpKind::kSingleton;
  int arity = 0;
  int id = 0;  // index of this op's stats slot
  const PhysicalOp* left = nullptr;   // input / probe side
  const PhysicalOp* right = nullptr;  // build side / second input

  // kScan: relation name (resolved against the Database at execution).
  std::string rel_name;
  // kProjectMap: one expression per output column.
  std::vector<const ScalarExpr*> exprs;
  // kFilterSelect / join residuals: conditions over the (concatenated)
  // schema.
  std::vector<AlgCondition> conds;
  // Batch forms compiled at lowering time (see src/exec/scalar_program.h):
  // `program` for kProjectMap's expression list, `cond_program` for
  // kFilterSelect's conditions. Shared so a fused FilterSelect→ProjectMap
  // pair and the plan can reference them without ownership games; null
  // when the op has no batch form.
  std::shared_ptr<const ScalarProgram> program;
  std::shared_ptr<const ScalarProgram> cond_program;
  // kHashJoin: equi-key pairs; left_key evaluates over the left tuple,
  // right_key over the concatenated schema with an empty left part.
  struct KeyPair {
    const ScalarExpr* left_key = nullptr;
    const ScalarExpr* right_key = nullptr;
  };
  std::vector<KeyPair> keys;
  int split = 0;  // joins: left input arity

  // kAdomScan: closure level, functions (name, arity), extra constants.
  int adom_level = 0;
  std::vector<std::pair<std::string, int>> adom_fns;
  std::vector<Value> adom_consts;

  // kSingleton: whether the relation contains the empty tuple (unit).
  bool unit = false;

  // kMaterialize: index of the cache slot; `consumers` is the number of
  // plan edges that reference this node.
  int memo_slot = -1;
  int consumers = 0;

  // History-corrected cardinality estimate, set by Lower() when the
  // history store has actuals for (options.query_hash, this op's path).
  // ExecContext::EstimateRows prefers it over the static heuristic;
  // hist_runs is the number of runs behind the correction.
  double hist_est_rows = -1;
  uint64_t hist_runs = 0;
};

// An executable physical plan: the lowered operator DAG plus everything
// resolved at lowering time (scalar function bindings, constants). The
// AstContext and FunctionRegistry passed to Lower() must outlive the plan.
class PhysicalPlan {
 public:
  PhysicalPlan() = default;
  PhysicalPlan(PhysicalPlan&&) = default;
  PhysicalPlan& operator=(PhysicalPlan&&) = default;
  PhysicalPlan(const PhysicalPlan&) = delete;
  PhysicalPlan& operator=(const PhysicalPlan&) = delete;

  // The answer of one execution. `relation` is always set on success;
  // `owned` is additionally set when the result is exclusively owned by
  // the caller (not borrowed from the Database or a materialize cache), in
  // which case it may be moved out instead of copied.
  struct Result {
    RelationPtr relation;
    std::shared_ptr<Relation> owned;
  };

  // Executes against `db`. Scan bindings (relation existence and arity)
  // are validated before any operator runs. When `profile` is non-null it
  // is overwritten with this execution's per-operator statistics tree.
  StatusOr<Result> Execute(const Database& db,
                           ExecProfile* profile = nullptr) const;

  // Convenience: execute and return the answer by value (moving when the
  // result is exclusively owned).
  StatusOr<Relation> ExecuteToRelation(const Database& db,
                                       ExecProfile* profile = nullptr) const;

  const PhysicalOp* root() const { return root_; }
  int NumOperators() const { return static_cast<int>(ops_.size()); }
  // Materialize cache slots allocated at lowering time; every Materialize
  // op's memo_slot must be a distinct index in [0, NumMemoSlots()).
  int NumMemoSlots() const { return num_memo_slots_; }
  // The constant pool kConst expressions resolve against (null only on a
  // default-constructed plan).
  const AstContext* ctx() const { return ctx_; }
  const ExecOptions& options() const { return options_; }

 private:
  friend class Lowerer;
  friend struct ExecContext;
  // The mutation harness (src/verify/mutate.h) corrupts lowered plans in
  // place to prove the stage-boundary verifier catches them.
  friend class verify::PlanMutator;

  std::vector<std::unique_ptr<PhysicalOp>> ops_;
  const PhysicalOp* root_ = nullptr;
  const AstContext* ctx_ = nullptr;  // constant pool for kConst expressions
  const FunctionRegistry* registry_ = nullptr;  // AdomScan term closures
  std::unordered_map<Symbol, const ScalarFunction*> fns_;
  int num_memo_slots_ = 0;
  ExecOptions options_;
};

}  // namespace emcalc

#endif  // EMCALC_EXEC_PHYSICAL_H_
