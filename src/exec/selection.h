// Selection vectors: the active-row set of one execution batch.
//
// The batch kernels (src/exec/scalar_program.h) evaluate compiled scalar
// programs over column slices of a FlatRelation's arity-strided buffer. A
// Selection names which rows of that buffer a batch covers: either a dense
// run [first, first+size) — a fresh batch straight off the input — or an
// explicit ascending index array produced by a filter stage. Indexes are
// absolute row numbers into the operator's input relation, so a
// FilterSelect can hand its surviving rows to a consuming ProjectMap as
// indices instead of materializing the intermediate relation.
//
// A Selection is a borrowed view (two words): index storage is owned by
// the BatchScratch that produced it and must outlive the view.
#ifndef EMCALC_EXEC_SELECTION_H_
#define EMCALC_EXEC_SELECTION_H_

#include <cstdint>

namespace emcalc {

class Selection {
 public:
  // The dense run [first, first+count).
  static Selection Dense(uint32_t first, uint32_t count) {
    return Selection(nullptr, first, count);
  }
  // An explicit index array, ascending, no duplicates. `idx` is borrowed.
  static Selection Sparse(const uint32_t* idx, uint32_t count) {
    return Selection(idx, 0, count);
  }

  bool dense() const { return idx_ == nullptr; }
  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // The absolute input row of lane `i`, i < size().
  uint32_t operator[](uint32_t i) const {
    return idx_ == nullptr ? first_ + i : idx_[i];
  }

  // Sparse form only; null when dense.
  const uint32_t* indices() const { return idx_; }
  // Dense form only: the first row of the run.
  uint32_t first() const { return first_; }

 private:
  Selection(const uint32_t* idx, uint32_t first, uint32_t count)
      : idx_(idx), first_(first), size_(count) {}

  const uint32_t* idx_;
  uint32_t first_;
  uint32_t size_;
};

}  // namespace emcalc

#endif  // EMCALC_EXEC_SELECTION_H_
