// Compiled scalar programs: the batch execution form of ScalarExpr trees.
//
// At lowering time every ProjectMap expression list and FilterSelect
// condition list is compiled once into a flat register program. Registers
// are column slices (one Value per active lane of the current batch);
// instructions gather an input column, splat a constant, or apply a bound
// ScalarFunction to argument registers. Compilation performs
//   - constant folding: an application whose arguments are all constants
//     runs once at compile time (registry functions are pure and total),
//   - common-subexpression elimination: structurally equal subtrees within
//     a stage share one register, so an expression repeated across output
//     columns is computed once per batch,
//   - function binding: the ScalarFunction* is resolved at compile time,
//     so the batch loop never touches the registry or the symbol table.
//
// A filter program is staged: each condition gets its own instruction run
// followed by a comparison that refines the batch's Selection, and later
// stages evaluate only the surviving lanes. Per-lane work therefore never
// exceeds the tuple-at-a-time interpreter's short-circuit evaluation.
// Comparisons on all-inline-int columns run a branch-light loop over the
// raw value words (the inline encoding is order-preserving); mixed columns
// first gather per-lane order keys (int value or StringPool order_prefix)
// so the compare loop stays word-sized, falling back to a full string
// compare only on prefix ties.
//
// All per-batch state lives in a BatchScratch the caller owns — one per
// worker thread — whose buffers are charged to the active MemoryScope, so
// governor limits and per-operator attribution stay accurate in batch
// mode. Programs themselves are immutable after compilation and safe to
// run from any number of threads concurrently.
#ifndef EMCALC_EXEC_SCALAR_PROGRAM_H_
#define EMCALC_EXEC_SCALAR_PROGRAM_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/algebra/ast.h"
#include "src/base/symbol.h"
#include "src/base/value.h"
#include "src/exec/selection.h"
#include "src/obs/resource.h"
#include "src/storage/interpretation.h"

namespace emcalc {

class ScalarProgram;

// Per-worker batch buffers: register columns, selection-index storage,
// order-key gather arrays, and a row-major staging area for results. All
// capacity is charged to the calling thread's active obs::MemoryScope (the
// owning operator) and released when the scratch dies.
class BatchScratch {
 public:
  BatchScratch() = default;

  BatchScratch(const BatchScratch&) = delete;
  BatchScratch& operator=(const BatchScratch&) = delete;

  // Sizes every buffer for `prog` at `batch_size` lanes plus a row staging
  // area of `row_width` values per lane, and (re)charges the capacity.
  // Idempotent for equal arguments; callable with different programs (the
  // buffers only grow).
  void Prepare(const ScalarProgram& prog, size_t batch_size,
               size_t row_width);

  // The row-major staging area (batch_size * row_width values).
  Value* row_staging() { return rows_.data(); }

 private:
  friend class ScalarProgram;

  std::vector<Value> regs_;     // num_regs columns of batch_size lanes
  std::vector<Value> rows_;     // row-major result staging
  std::vector<uint32_t> sel_;   // refined selection indexes
  std::vector<uint64_t> keys_;  // order-key gather, lhs then rhs halves
  std::vector<uint8_t> cls_;    // per-lane value class (0 = int, 1 = str)
  size_t batch_size_ = 0;
  obs::MemoryCharge charge_;
};

class ScalarProgram {
 public:
  // Compiles a projection's output expressions. Every kApply symbol must
  // already be bound in `fns` (the Lowerer resolves before compiling).
  static ScalarProgram CompileProject(
      std::span<const ScalarExpr* const> exprs, const AstContext& ctx,
      const std::unordered_map<Symbol, const ScalarFunction*>& fns);

  // Compiles a selection's conditions into one stage per condition.
  static ScalarProgram CompileFilter(
      std::span<const AlgCondition> conds, const AstContext& ctx,
      const std::unordered_map<Symbol, const ScalarFunction*>& fns);

  ScalarProgram() = default;
  ScalarProgram(ScalarProgram&&) = default;
  ScalarProgram& operator=(ScalarProgram&&) = default;
  ScalarProgram(const ScalarProgram&) = delete;
  ScalarProgram& operator=(const ScalarProgram&) = delete;

  int num_regs() const { return num_regs_; }
  size_t num_outputs() const { return outputs_.size(); }
  // Bytes one BatchScratch will charge when prepared for this program.
  size_t ScratchBytes(size_t batch_size, size_t row_width) const;

  // Filter form: runs the staged conditions over the `sel` rows of the
  // arity-strided `input` buffer. The returned Selection (backed by
  // scratch) holds the surviving absolute row indexes, ascending.
  // `fn_calls` accumulates one count per lane per function application,
  // matching the tuple interpreter's accounting.
  Selection RunFilter(const Value* input, int arity, Selection sel,
                      BatchScratch& scratch, uint64_t* fn_calls) const;

  // Projection form: evaluates every output column over the `sel` rows of
  // `input` and transposes the results row-major into the scratch staging
  // area (sel.size() rows of num_outputs() values). Returns the staging
  // pointer, valid until the next use of `scratch`.
  const Value* RunProject(const Value* input, int arity, Selection sel,
                          BatchScratch& scratch, uint64_t* fn_calls) const;

 private:
  friend class BatchScratch;

  struct Insn {
    enum class Op : uint8_t { kLoadCol, kConst, kCall };
    Op op = Op::kLoadCol;
    uint16_t dst = 0;
    int col = 0;                          // kLoadCol
    Value constant;                       // kConst
    const ScalarFunction* fn = nullptr;   // kCall, resolved at compile
    std::vector<uint16_t> args;           // kCall argument registers
  };

  // One condition: the instructions feeding its two sides, then the
  // comparison that refines the selection. A projection is a single stage
  // with no comparison.
  struct Stage {
    std::vector<Insn> insns;
    bool has_cmp = false;
    AlgCompareOp cmp = AlgCompareOp::kEq;
    uint16_t lhs = 0;
    uint16_t rhs = 0;
  };

  class Builder;

  void RunInsns(const Stage& stage, const Value* input, int arity,
                Selection sel, BatchScratch& scratch,
                uint64_t* fn_calls) const;

  std::vector<Stage> stages_;
  std::vector<uint16_t> outputs_;  // projection registers, one per column
  int num_regs_ = 0;
  bool needs_order_keys_ = false;  // any kLt/kLe stage
  bool has_cmp_stage_ = false;     // filter form (needs sel_ storage)
};

}  // namespace emcalc

#endif  // EMCALC_EXEC_SCALAR_PROGRAM_H_
