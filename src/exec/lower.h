// Lowering: logical extended-algebra plans to physical operator trees.
//
// Mapping (see physical.h for the operator inventory):
//   kRel     -> Scan            kUnion -> UnionMerge
//   kProject -> ProjectMap      kDiff  -> DiffAnti
//   kSelect  -> FilterSelect    kUnit  -> Singleton(unit)
//   kJoin    -> HashJoin when at least one condition is an equality with
//               one side per input (remaining conditions become the join's
//               residual filter); NestedLoopJoin otherwise
//   kEmpty   -> Singleton(empty)
//   kAdom    -> AdomScan
//
// Logical plans are DAGs (the translator shares context subplans between a
// difference's two sides and among union branches); every node with more
// than one parent is wrapped in a Materialize so its result is computed
// once and then shared by pointer.
//
// Lowering resolves every scalar function against `registry` (errors are
// reported here, before execution); relation bindings are validated per
// execution, since the same plan may run against many databases.
#ifndef EMCALC_EXEC_LOWER_H_
#define EMCALC_EXEC_LOWER_H_

#include "src/algebra/ast.h"
#include "src/base/status.h"
#include "src/calculus/ast.h"
#include "src/exec/physical.h"
#include "src/storage/interpretation.h"

namespace emcalc {

// Lowers `plan` into an executable physical plan. `ctx` and `registry`
// must outlive the returned plan.
StatusOr<PhysicalPlan> Lower(const AstContext& ctx, const AlgExpr* plan,
                             const FunctionRegistry& registry,
                             const ExecOptions& options = {});

}  // namespace emcalc

#endif  // EMCALC_EXEC_LOWER_H_
