#include "src/exec/scalar_program.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/base/check.h"
#include "src/base/string_pool.h"

namespace emcalc {
namespace {

// Registers per instruction argument list handled without heap traffic;
// wider applications (none among the builtins) fall back to a per-batch
// vector.
constexpr size_t kMaxInlineFnArgs = 8;

// Gathers one input column into a register: a strided sequential loop for
// dense batches, an index gather for filtered ones.
void LoadColumn(const Value* input, size_t arity, size_t col, Selection sel,
                Value* dst) {
  const uint32_t n = sel.size();
  if (sel.dense()) {
    const Value* src = input + static_cast<size_t>(sel.first()) * arity + col;
    for (uint32_t i = 0; i < n; ++i) {
      dst[i] = src[static_cast<size_t>(i) * arity];
    }
  } else {
    const uint32_t* idx = sel.indices();
    for (uint32_t i = 0; i < n; ++i) {
      dst[i] = input[static_cast<size_t>(idx[i]) * arity + col];
    }
  }
}

// Per-lane order keys for kLt/kLe over mixed columns: a class byte (ints
// order before strings) and a word key that orders exactly like Value's
// total order except on string prefix ties. Int keys are sign-flipped so
// unsigned word compares match signed value compares; string keys are the
// pool's big-endian order_prefix. One pool gather per batch side replaces
// per-comparison pool lookups in the tuple path.
void GatherOrderKeys(const Value* v, uint32_t n, uint8_t* cls,
                     uint64_t* key) {
  const StringPool& pool = StringPool::Global();
  constexpr uint64_t kSignFlip = uint64_t{1} << 63;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t raw = v[i].raw();
    if ((raw & 1) == 0) {
      cls[i] = 0;
      key[i] =
          static_cast<uint64_t>(static_cast<int64_t>(raw) >> 1) ^ kSignFlip;
    } else {
      const StringPool::Entry& e = pool.Get(raw >> 1);
      if (e.is_str) {
        cls[i] = 1;
        key[i] = e.order_prefix;
      } else {
        cls[i] = 0;
        key[i] = static_cast<uint64_t>(e.num) ^ kSignFlip;
      }
    }
  }
}

}  // namespace

void BatchScratch::Prepare(const ScalarProgram& prog, size_t batch_size,
                           size_t row_width) {
  batch_size_ = std::max(batch_size_, batch_size);
  const size_t regs =
      static_cast<size_t>(prog.num_regs_) * batch_size_;
  if (regs_.size() < regs) regs_.resize(regs);
  const size_t rows = row_width * batch_size_;
  if (rows_.size() < rows) rows_.resize(rows);
  if (prog.has_cmp_stage_ && sel_.size() < batch_size_) {
    sel_.resize(batch_size_);
  }
  if (prog.needs_order_keys_) {
    if (keys_.size() < 2 * batch_size_) keys_.resize(2 * batch_size_);
    if (cls_.size() < 2 * batch_size_) cls_.resize(2 * batch_size_);
  }
  // Manual sizing, so manual charging: the whole scratch is attributed to
  // the calling thread's active MemoryScope (the owning operator).
  charge_.Update(static_cast<int64_t>(
      regs_.capacity() * sizeof(Value) + rows_.capacity() * sizeof(Value) +
      sel_.capacity() * sizeof(uint32_t) +
      keys_.capacity() * sizeof(uint64_t) +
      cls_.capacity() * sizeof(uint8_t)));
}

size_t ScalarProgram::ScratchBytes(size_t batch_size,
                                   size_t row_width) const {
  size_t bytes =
      (static_cast<size_t>(num_regs_) + row_width) * batch_size *
      sizeof(Value);
  if (has_cmp_stage_) bytes += batch_size * sizeof(uint32_t);
  if (needs_order_keys_) {
    bytes += 2 * batch_size * (sizeof(uint64_t) + sizeof(uint8_t));
  }
  return bytes;
}

// Value-numbering compiler: one register per structurally distinct subtree
// within a stage, all-constant applications folded at compile time.
class ScalarProgram::Builder {
 public:
  Builder(ScalarProgram* prog, const AstContext& ctx,
          const std::unordered_map<Symbol, const ScalarFunction*>& fns)
      : prog_(prog), ctx_(ctx), fns_(fns) {}

  // Registers computed by earlier stages cover lanes the current (smaller)
  // selection may not align with, so value numbers reset per stage; only
  // the constant-ness of a register carries across.
  void BeginStage() {
    prog_->stages_.emplace_back();
    numbers_.clear();
  }

  uint16_t Emit(const ScalarExpr* e) {
    switch (e->kind()) {
      case ScalarExpr::Kind::kCol: {
        std::string key = "c" + std::to_string(e->col());
        if (auto it = numbers_.find(key); it != numbers_.end()) {
          return it->second;
        }
        uint16_t r = NewReg();
        Insn insn;
        insn.op = Insn::Op::kLoadCol;
        insn.dst = r;
        insn.col = e->col();
        stage().insns.push_back(std::move(insn));
        numbers_.emplace(std::move(key), r);
        return r;
      }
      case ScalarExpr::Kind::kConst:
        return EmitConst(ctx_.ConstantAt(e->const_id()));
      case ScalarExpr::Kind::kApply: {
        std::vector<uint16_t> args;
        args.reserve(e->args().size());
        bool all_const = true;
        for (const ScalarExpr* a : e->args()) {
          uint16_t r = Emit(a);
          all_const = all_const && const_regs_.count(r) > 0;
          args.push_back(r);
        }
        auto fit = fns_.find(e->fn());
        EMCALC_CHECK(fit != fns_.end());  // bound before compilation
        const ScalarFunction* fn = fit->second;
        if (all_const) {
          // Registry functions are pure and total, so an all-constant
          // application has one value for every lane: run it once now.
          std::vector<Value> argv;
          argv.reserve(args.size());
          for (uint16_t r : args) argv.push_back(const_regs_.at(r));
          return EmitConst(fn->fn(argv));
        }
        std::string key =
            "a" + std::to_string(reinterpret_cast<uintptr_t>(fn));
        for (uint16_t r : args) key += ":" + std::to_string(r);
        if (auto it = numbers_.find(key); it != numbers_.end()) {
          return it->second;
        }
        uint16_t r = NewReg();
        Insn insn;
        insn.op = Insn::Op::kCall;
        insn.dst = r;
        insn.fn = fn;
        insn.args = std::move(args);
        stage().insns.push_back(std::move(insn));
        numbers_.emplace(std::move(key), r);
        return r;
      }
    }
    return 0;  // unreachable: the switch covers every kind
  }

 private:
  Stage& stage() { return prog_->stages_.back(); }

  uint16_t EmitConst(const Value& v) {
    std::string key = "k" + std::to_string(v.raw());
    if (auto it = numbers_.find(key); it != numbers_.end()) {
      return it->second;
    }
    uint16_t r = NewReg();
    Insn insn;
    insn.op = Insn::Op::kConst;
    insn.dst = r;
    insn.constant = v;
    stage().insns.push_back(std::move(insn));
    numbers_.emplace(std::move(key), r);
    const_regs_.emplace(r, v);
    return r;
  }

  uint16_t NewReg() {
    EMCALC_CHECK_MSG(prog_->num_regs_ < 0xffff,
                     "scalar program exceeds 65534 registers");
    return static_cast<uint16_t>(prog_->num_regs_++);
  }

  ScalarProgram* prog_;
  const AstContext& ctx_;
  const std::unordered_map<Symbol, const ScalarFunction*>& fns_;
  std::unordered_map<std::string, uint16_t> numbers_;  // per-stage CSE
  std::unordered_map<uint16_t, Value> const_regs_;     // for folding
};

ScalarProgram ScalarProgram::CompileProject(
    std::span<const ScalarExpr* const> exprs, const AstContext& ctx,
    const std::unordered_map<Symbol, const ScalarFunction*>& fns) {
  ScalarProgram prog;
  Builder builder(&prog, ctx, fns);
  builder.BeginStage();
  prog.outputs_.reserve(exprs.size());
  for (const ScalarExpr* e : exprs) {
    prog.outputs_.push_back(builder.Emit(e));
  }
  return prog;
}

ScalarProgram ScalarProgram::CompileFilter(
    std::span<const AlgCondition> conds, const AstContext& ctx,
    const std::unordered_map<Symbol, const ScalarFunction*>& fns) {
  ScalarProgram prog;
  Builder builder(&prog, ctx, fns);
  for (const AlgCondition& c : conds) {
    builder.BeginStage();
    uint16_t lhs = builder.Emit(c.lhs);
    uint16_t rhs = builder.Emit(c.rhs);
    Stage& stage = prog.stages_.back();
    stage.has_cmp = true;
    stage.cmp = c.op;
    stage.lhs = lhs;
    stage.rhs = rhs;
    prog.has_cmp_stage_ = true;
    if (c.op == AlgCompareOp::kLt || c.op == AlgCompareOp::kLe) {
      prog.needs_order_keys_ = true;
    }
  }
  return prog;
}

void ScalarProgram::RunInsns(const Stage& stage, const Value* input,
                             int arity, Selection sel, BatchScratch& scratch,
                             uint64_t* fn_calls) const {
  const uint32_t n = sel.size();
  const size_t stride = scratch.batch_size_;
  Value* regs = scratch.regs_.data();
  for (const Insn& insn : stage.insns) {
    Value* dst = regs + static_cast<size_t>(insn.dst) * stride;
    switch (insn.op) {
      case Insn::Op::kLoadCol:
        LoadColumn(input, static_cast<size_t>(arity),
                   static_cast<size_t>(insn.col), sel, dst);
        break;
      case Insn::Op::kConst:
        for (uint32_t i = 0; i < n; ++i) dst[i] = insn.constant;
        break;
      case Insn::Op::kCall: {
        const size_t nargs = insn.args.size();
        *fn_calls += n;  // one application per lane, as the tuple path
        if (insn.fn->batch && nargs <= kMaxInlineFnArgs) {
          std::span<const Value> arg_spans[kMaxInlineFnArgs];
          for (size_t j = 0; j < nargs; ++j) {
            arg_spans[j] = std::span<const Value>(
                regs + static_cast<size_t>(insn.args[j]) * stride, n);
          }
          insn.fn->batch(
              std::span<const std::span<const Value>>(arg_spans, nargs),
              std::span<Value>(dst, n));
          break;
        }
        // Scalar fallback: still no per-row heap traffic — the argument
        // row lives on the stack (or in one per-batch buffer when wide).
        if (nargs <= kMaxInlineFnArgs) {
          Value argv[kMaxInlineFnArgs];
          for (uint32_t i = 0; i < n; ++i) {
            for (size_t j = 0; j < nargs; ++j) {
              argv[j] = regs[static_cast<size_t>(insn.args[j]) * stride + i];
            }
            dst[i] = insn.fn->fn(std::span<const Value>(argv, nargs));
          }
        } else {
          std::vector<Value> argv(nargs);
          for (uint32_t i = 0; i < n; ++i) {
            for (size_t j = 0; j < nargs; ++j) {
              argv[j] = regs[static_cast<size_t>(insn.args[j]) * stride + i];
            }
            dst[i] = insn.fn->fn(argv);
          }
        }
        break;
      }
    }
  }
}

Selection ScalarProgram::RunFilter(const Value* input, int arity,
                                   Selection sel, BatchScratch& scratch,
                                   uint64_t* fn_calls) const {
  const size_t stride = scratch.batch_size_;
  for (const Stage& stage : stages_) {
    if (sel.empty()) break;
    RunInsns(stage, input, arity, sel, scratch, fn_calls);
    if (!stage.has_cmp) continue;
    const Value* l = scratch.regs_.data() +
                     static_cast<size_t>(stage.lhs) * stride;
    const Value* r = scratch.regs_.data() +
                     static_cast<size_t>(stage.rhs) * stride;
    // Survivors compact in place: writes trail reads, so refining an
    // already-sparse selection backed by the same array is safe.
    uint32_t* out = scratch.sel_.data();
    const uint32_t n = sel.size();
    uint32_t kept = 0;
    switch (stage.cmp) {
      case AlgCompareOp::kEq:
        // Value equality is word equality: branchless append.
        for (uint32_t i = 0; i < n; ++i) {
          out[kept] = sel[i];
          kept += static_cast<uint32_t>(l[i].raw() == r[i].raw());
        }
        break;
      case AlgCompareOp::kNe:
        for (uint32_t i = 0; i < n; ++i) {
          out[kept] = sel[i];
          kept += static_cast<uint32_t>(l[i].raw() != r[i].raw());
        }
        break;
      case AlgCompareOp::kLt:
      case AlgCompareOp::kLe: {
        const bool le = stage.cmp == AlgCompareOp::kLe;
        // One OR pass detects the all-inline-int batch; its compare loop
        // works on raw words (the inline encoding is order-preserving).
        uint64_t tag_or = 0;
        for (uint32_t i = 0; i < n; ++i) tag_or |= l[i].raw() | r[i].raw();
        if ((tag_or & 1) == 0) {
          if (le) {
            for (uint32_t i = 0; i < n; ++i) {
              out[kept] = sel[i];
              kept += static_cast<uint32_t>(
                  static_cast<int64_t>(l[i].raw()) <=
                  static_cast<int64_t>(r[i].raw()));
            }
          } else {
            for (uint32_t i = 0; i < n; ++i) {
              out[kept] = sel[i];
              kept += static_cast<uint32_t>(
                  static_cast<int64_t>(l[i].raw()) <
                  static_cast<int64_t>(r[i].raw()));
            }
          }
          break;
        }
        // Mixed batch: gather order keys once per side, then compare
        // words; a full string compare only settles prefix ties.
        uint8_t* lcls = scratch.cls_.data();
        uint8_t* rcls = lcls + scratch.batch_size_;
        uint64_t* lkey = scratch.keys_.data();
        uint64_t* rkey = lkey + scratch.batch_size_;
        GatherOrderKeys(l, n, lcls, lkey);
        GatherOrderKeys(r, n, rcls, rkey);
        for (uint32_t i = 0; i < n; ++i) {
          bool keep;
          if (lcls[i] != rcls[i]) {
            keep = lcls[i] < rcls[i];  // ints before strings
          } else if (lkey[i] != rkey[i]) {
            keep = lkey[i] < rkey[i];
          } else if (l[i].raw() == r[i].raw()) {
            keep = le;  // identical values
          } else if (lcls[i] == 1) {
            // Distinct strings sharing an 8-byte prefix.
            keep = le ? !(r[i] < l[i]) : l[i] < r[i];
          } else {
            keep = le;  // equal ints always share one encoding
          }
          out[kept] = sel[i];
          kept += keep ? 1u : 0u;
        }
        break;
      }
    }
    sel = Selection::Sparse(out, kept);
  }
  return sel;
}

const Value* ScalarProgram::RunProject(const Value* input, int arity,
                                       Selection sel, BatchScratch& scratch,
                                       uint64_t* fn_calls) const {
  if (!stages_.empty()) {
    RunInsns(stages_.front(), input, arity, sel, scratch, fn_calls);
  }
  // Transpose the output registers row-major into the staging area, ready
  // for a bulk append into the arity-strided relation buffer.
  const uint32_t n = sel.size();
  const size_t width = outputs_.size();
  const size_t stride = scratch.batch_size_;
  Value* rows = scratch.rows_.data();
  for (size_t j = 0; j < width; ++j) {
    const Value* col = scratch.regs_.data() +
                       static_cast<size_t>(outputs_[j]) * stride;
    Value* dst = rows + j;
    for (uint32_t i = 0; i < n; ++i) {
      dst[static_cast<size_t>(i) * width] = col[i];
    }
  }
  return rows;
}

}  // namespace emcalc
