// Lightweight span tracing with Chrome trace-event export.
//
// A Span is an RAII guard that records one complete event (name, start,
// duration, thread) into the process-global Tracer when one is installed:
//
//   obs::Tracer tracer;
//   obs::SetTracer(&tracer);
//   { obs::Span span("compile.parse"); ... }       // one event
//   tracer.WriteChromeTrace("trace.json");         // Perfetto-loadable
//
// With no tracer installed (the default), constructing a Span costs one
// relaxed atomic load and destroying it one branch — instrumentation stays
// compiled in on hot paths unconditionally. Span names must be string
// literals (or otherwise outlive the span); the optional detail string is
// only materialized when tracing is enabled.
//
// Events nest by time containment per thread, which is exactly how
// chrome://tracing and Perfetto render "X" (complete) events, so nested
// Spans show up as a flame graph without explicit parent links.
#ifndef EMCALC_OBS_TRACE_H_
#define EMCALC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/obs/flight_recorder.h"

namespace emcalc::obs {

// Monotonic nanoseconds (steady clock); the zero point is arbitrary.
uint64_t NowNs();

// Small dense id for the calling thread (first use assigns the next id).
uint32_t CurrentThreadId();

// One completed span.
struct TraceEvent {
  const char* name = "";   // static string (span names are literals)
  std::string detail;      // exported as args.detail when non-empty
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
};

// A thread-safe append-only buffer of completed spans.
class Tracer {
 public:
  void Record(const char* name, std::string detail, uint64_t start_ns,
              uint64_t dur_ns);

  size_t size() const;
  void Clear();
  std::vector<TraceEvent> Snapshot() const;

  // {"traceEvents":[{"name":...,"ph":"X","ts":us,"dur":us,"pid":1,"tid":n}]}
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// The process-global tracer; null (tracing disabled) by default. The
// pointer is borrowed, never owned: the caller keeps the Tracer alive for
// as long as it is installed.
Tracer* GetTracer();
void SetTracer(Tracer* tracer);

// RAII span guard. Records [construction, destruction) into the tracer
// that was installed at construction time, and mirrors begin/end into the
// always-on flight recorder (FlightRecord is its own cheap fast path when
// the recorder is disabled).
class Span {
 public:
  explicit Span(const char* name) : tracer_(GetTracer()), name_(name) {
    if (tracer_ != nullptr) start_ns_ = NowNs();
    FlightRecord(FlightEventKind::kSpanBegin, name);
  }
  ~Span() {
    FlightRecord(FlightEventKind::kSpanEnd, name_);
    if (tracer_ != nullptr) {
      tracer_->Record(name_, std::move(detail_), start_ns_,
                      NowNs() - start_ns_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // True when this span will be recorded; callers use it to skip building
  // detail strings on the disabled path.
  bool enabled() const { return tracer_ != nullptr; }
  void SetDetail(std::string detail) {
    if (tracer_ != nullptr) detail_ = std::move(detail);
  }

 private:
  Tracer* tracer_;
  const char* name_;
  std::string detail_;
  uint64_t start_ns_ = 0;
};

// EMCALC_TRACE=<path>: installs a process-lifetime tracer whose buffer is
// written to <path> at normal process exit. Returns true when tracing was
// enabled. Idempotent.
bool InitTracingFromEnv();

}  // namespace emcalc::obs

#endif  // EMCALC_OBS_TRACE_H_
