#include "src/obs/flight_recorder.h"

#include <unistd.h>

#include <atomic>
#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "src/obs/json.h"
#include "src/obs/trace.h"

namespace emcalc::obs {

namespace {

// Each slot is four consecutive atomic words: ts_ns, name (as uintptr),
// arg, and (tid << 8 | kind). Words are individually atomic so a reader
// racing the writer sees, per word, some previously stored valid value —
// at worst a mismatched combination, which validation below tolerates.
constexpr size_t kWordsPerSlot = 4;
constexpr size_t kMaxRings = 512;
constexpr size_t kDefaultCapacity = 4096;
constexpr uint8_t kMaxKind = static_cast<uint8_t>(FlightEventKind::kMark);

struct Ring {
  uint32_t tid = 0;
  size_t capacity = 0;  // power of two
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t>* words = nullptr;  // capacity * kWordsPerSlot
};

// Fixed registry of rings so the signal handler can iterate without locks.
// Slots are published with release stores and never reordered; a retired
// ring (test reset) leaves a null slot behind.
std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<size_t> g_ring_count{0};
std::atomic<bool> g_enabled{true};
std::atomic<bool> g_env_checked{false};

thread_local Ring* t_ring = nullptr;
thread_local size_t t_ring_slot = 0;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

size_t DefaultCapacityFromEnv() {
  static const size_t capacity = [] {
    const char* env = std::getenv("EMCALC_FLIGHT_RING_EVENTS");
    if (env != nullptr && *env != '\0') {
      char* end = nullptr;
      unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && v >= 16 && v <= (1ull << 24)) {
        return RoundUpPow2(static_cast<size_t>(v));
      }
    }
    return kDefaultCapacity;
  }();
  return capacity;
}

void CheckEnvOnce() {
  if (g_env_checked.load(std::memory_order_acquire)) return;
  const char* env = std::getenv("EMCALC_FLIGHT_RECORDER");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') {
    g_enabled.store(false, std::memory_order_relaxed);
  }
  g_env_checked.store(true, std::memory_order_release);
}

Ring* CreateRing(size_t capacity) {
  size_t slot = g_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kMaxRings) {
    // Registry full: this thread records nothing rather than blocking.
    g_ring_count.fetch_sub(1, std::memory_order_relaxed);
    return nullptr;
  }
  auto* ring = new Ring();  // lives until process exit
  ring->tid = CurrentThreadId();
  ring->capacity = capacity;
  ring->words = new std::atomic<uint64_t>[capacity * kWordsPerSlot]();
  t_ring_slot = slot;
  g_rings[slot].store(ring, std::memory_order_release);
  return ring;
}

// Reads one slot; returns false if it looks unwritten or torn.
bool ReadSlot(const Ring& ring, uint64_t seq, FlightEvent* out) {
  size_t base = (seq & (ring.capacity - 1)) * kWordsPerSlot;
  uint64_t ts = ring.words[base].load(std::memory_order_relaxed);
  uint64_t name = ring.words[base + 1].load(std::memory_order_relaxed);
  uint64_t arg = ring.words[base + 2].load(std::memory_order_relaxed);
  uint64_t meta = ring.words[base + 3].load(std::memory_order_relaxed);
  uint8_t kind = static_cast<uint8_t>(meta & 0xff);
  if (kind == 0 || kind > kMaxKind) return false;
  out->ts_ns = ts;
  out->arg = arg;
  out->name = name == 0 ? ""
                        : reinterpret_cast<const char*>(
                              static_cast<uintptr_t>(name));
  out->tid = static_cast<uint32_t>(meta >> 8);
  out->kind = static_cast<FlightEventKind>(kind);
  return true;
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kNone: return "none";
    case FlightEventKind::kSpanBegin: return "span_begin";
    case FlightEventKind::kSpanEnd: return "span_end";
    case FlightEventKind::kGovernorTrip: return "governor_trip";
    case FlightEventKind::kMemory: return "memory";
    case FlightEventKind::kQueryStart: return "query_start";
    case FlightEventKind::kQueryEnd: return "query_end";
    case FlightEventKind::kMark: return "mark";
  }
  return "unknown";
}

bool FlightRecorderEnabled() {
  CheckEnvOnce();
  return g_enabled.load(std::memory_order_relaxed);
}

void SetFlightRecorderEnabled(bool enabled) {
  CheckEnvOnce();
  g_enabled.store(enabled, std::memory_order_relaxed);
}

size_t FlightRingCapacity() { return DefaultCapacityFromEnv(); }

void FlightRecord(FlightEventKind kind, const char* name, uint64_t arg) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  Ring* ring = t_ring;
  if (ring == nullptr) {
    CheckEnvOnce();
    if (!g_enabled.load(std::memory_order_relaxed)) return;
    ring = CreateRing(DefaultCapacityFromEnv());
    t_ring = ring;
    if (ring == nullptr) return;
  }
  uint64_t head = ring->head.load(std::memory_order_relaxed);
  size_t base = (head & (ring->capacity - 1)) * kWordsPerSlot;
  ring->words[base].store(NowNs(), std::memory_order_relaxed);
  ring->words[base + 1].store(
      static_cast<uint64_t>(reinterpret_cast<uintptr_t>(name)),
      std::memory_order_relaxed);
  ring->words[base + 2].store(arg, std::memory_order_relaxed);
  ring->words[base + 3].store(
      (static_cast<uint64_t>(ring->tid) << 8) | static_cast<uint64_t>(kind),
      std::memory_order_relaxed);
  ring->head.store(head + 1, std::memory_order_release);
}

std::vector<FlightEvent> DrainFlightRecorder() {
  std::vector<FlightEvent> events;
  size_t count = std::min(g_ring_count.load(std::memory_order_acquire),
                          kMaxRings);
  for (size_t i = 0; i < count; ++i) {
    Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t start = head > ring->capacity ? head - ring->capacity : 0;
    for (uint64_t seq = start; seq < head; ++seq) {
      FlightEvent e;
      if (ReadSlot(*ring, seq, &e)) events.push_back(e);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return events;
}

std::string FlightEventsToJson(const std::vector<FlightEvent>& events) {
  std::string out = "[";
  bool first = true;
  for (const FlightEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"ts_ns\":" + std::to_string(e.ts_ns);
    out += ",\"tid\":" + std::to_string(e.tid);
    out += ",\"kind\":\"";
    out += FlightEventKindName(e.kind);
    out += "\",\"name\":\"" + JsonEscape(e.name);
    out += "\",\"arg\":" + std::to_string(e.arg) + "}";
  }
  out += "]";
  return out;
}

namespace {

// write(2) with EINTR retry; best effort (a signal handler cannot recover
// from a failed dump anyway).
void RawWrite(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
}

void RawWriteStr(int fd, const char* s) { RawWrite(fd, s, std::strlen(s)); }

void RawWriteU64(int fd, uint64_t v) {
  char buf[24];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  RawWrite(fd, p, static_cast<size_t>(buf + sizeof(buf) - p));
}

// Names are string literals (identifiers); anything that would need JSON
// escaping is replaced rather than escaped to stay trivially signal-safe.
void RawWriteName(int fd, const char* s) {
  for (const char* p = s; *p != '\0'; ++p) {
    char c = *p;
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) c = '?';
    RawWrite(fd, &c, 1);
  }
}

}  // namespace

void DumpFlightRingsJson(int fd) {
  RawWriteStr(fd, "[");
  bool first = true;
  size_t count = std::min(g_ring_count.load(std::memory_order_acquire),
                          kMaxRings);
  for (size_t i = 0; i < count; ++i) {
    Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t start = head > ring->capacity ? head - ring->capacity : 0;
    for (uint64_t seq = start; seq < head; ++seq) {
      FlightEvent e;
      if (!ReadSlot(*ring, seq, &e)) continue;
      if (!first) RawWriteStr(fd, ",");
      first = false;
      RawWriteStr(fd, "{\"ts_ns\":");
      RawWriteU64(fd, e.ts_ns);
      RawWriteStr(fd, ",\"tid\":");
      RawWriteU64(fd, e.tid);
      RawWriteStr(fd, ",\"kind\":\"");
      RawWriteStr(fd, FlightEventKindName(e.kind));
      RawWriteStr(fd, "\",\"name\":\"");
      RawWriteName(fd, e.name);
      RawWriteStr(fd, "\",\"arg\":");
      RawWriteU64(fd, e.arg);
      RawWriteStr(fd, "}");
    }
  }
  RawWriteStr(fd, "]");
}

void ResetFlightRingForTesting(size_t capacity_events) {
  if (t_ring != nullptr) {
    // Retire the old ring so drains no longer see its events. The ring
    // itself is leaked: a concurrent drain may still be reading it.
    g_rings[t_ring_slot].store(nullptr, std::memory_order_release);
    t_ring = nullptr;
  }
  if (capacity_events < 2) capacity_events = 2;
  t_ring = CreateRing(RoundUpPow2(capacity_events));
}

}  // namespace emcalc::obs
