// Per-phase compile profiling: a CompilePhase tree mirrors ExecProfile on
// the compile side — one node per pipeline phase (parse, view expansion,
// safety, ENF, RANF, algebra generation, optimization, lowering), each
// with inclusive wall time and a phase-specific detail string.
//
// PhaseTimer is the RAII filler: it appends a child phase to its parent,
// times the enclosing scope into it, and emits a matching tracer span so
// the same phase boundaries appear in captured traces. Phase timing is
// always on (one clock read per phase, independent of whether a tracer is
// installed), which is what lets CompiledQuery::ExplainCompile() report
// real durations unconditionally.
//
// Usage contract: sibling timers on one parent must be sequential (close
// one before opening the next) — the timer holds a pointer into the
// parent's children vector.
#ifndef EMCALC_OBS_COMPILE_PROFILE_H_
#define EMCALC_OBS_COMPILE_PROFILE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/trace.h"

namespace emcalc::obs {

// One pipeline phase with inclusive wall time; children are sub-phases.
struct CompilePhase {
  std::string name;
  std::string detail;
  uint64_t wall_ns = 0;
  std::vector<CompilePhase> children;

  // First direct child named `name`, or nullptr.
  const CompilePhase* Find(std::string_view name) const;
};

// Sum of the direct children's wall times (for coverage checks: the
// children of a well-instrumented phase account for almost all of it).
uint64_t ChildWallNs(const CompilePhase& phase);

// Indented rendering, one line per phase with time and share of the root:
//   compile                      1.234ms
//     parse                      0.100ms   8.1%
//     translate                  0.901ms  73.0%
//       safety                   0.200ms  16.2%  em-allowed finds=3
std::string CompileProfileToString(const CompilePhase& root);

// Flattens to (dotted-path, wall_ns) pairs, excluding the root's own name:
// {"parse", ...}, {"translate.safety", ...}. Query-log records carry this.
std::vector<std::pair<std::string, uint64_t>> FlattenPhases(
    const CompilePhase& root);

// RAII: appends a phase named `name` to `parent->children`, times the
// scope into it, and emits a tracer span named `span_name` (a static
// string, conventionally "compile.<name>").
class PhaseTimer {
 public:
  PhaseTimer(CompilePhase* parent, const char* name, const char* span_name);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  // The phase being timed; valid until the next sibling phase is opened.
  CompilePhase* phase() { return phase_; }
  // Sets the detail on both the phase and the span.
  void SetDetail(std::string detail);

 private:
  CompilePhase* phase_;
  Span span_;
  uint64_t start_ns_;
};

}  // namespace emcalc::obs

#endif  // EMCALC_OBS_COMPILE_PROFILE_H_
