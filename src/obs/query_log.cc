#include "src/obs/query_log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "src/obs/json.h"

namespace emcalc::obs {

uint64_t HashQueryText(std::string_view text) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string QueryLogRecordToJson(const QueryLogRecord& r) {
  std::string out = "{\"event\":\"" + JsonEscape(r.event) + "\"";
  // The hash is a full 64-bit value; a JSON number (double) would lose the
  // low bits, so it travels as a decimal string.
  out += ",\"query_hash\":\"" + std::to_string(r.query_hash) + "\"";
  if (!r.query.empty()) out += ",\"query\":\"" + JsonEscape(r.query) + "\"";
  out += ",\"ok\":";
  out += r.ok ? "true" : "false";
  if (!r.error.empty()) out += ",\"error\":\"" + JsonEscape(r.error) + "\"";
  if (r.event == "compile") {
    out += ",\"em_allowed\":";
    out += r.em_allowed ? "true" : "false";
    out += ",\"level\":" + std::to_string(r.level);
    out += ",\"find_count\":" + std::to_string(r.find_count);
    out += ",\"ranf_size\":" + std::to_string(r.ranf_size);
    out += ",\"plan_nodes\":" + std::to_string(r.plan_nodes);
  }
  if (r.event == "run") {
    out += ",\"rows_out\":" + std::to_string(r.rows_out);
    out += ",\"exec_threads\":" + std::to_string(r.exec_threads);
    out += ",\"peak_bytes\":" + std::to_string(r.peak_bytes);
    out += ",\"bytes_allocated\":" + std::to_string(r.bytes_allocated);
    if (!r.aborted_limit.empty()) {
      out += ",\"aborted_limit\":\"" + JsonEscape(r.aborted_limit) + "\"";
    }
    if (r.misestimate_factor > 0) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.3g", r.misestimate_factor);
      out += ",\"misestimate_factor\":";
      out += buf;
      out += ",\"misestimate_op\":\"" + JsonEscape(r.misestimate_op) + "\"";
    }
  }
  out += ",\"string_pool_size\":" + std::to_string(r.string_pool_size);
  if (!r.diagnostics.empty()) {
    out += ",\"diagnostics\":" + diag::ToJson(r.diagnostics);
  }
  out += ",\"wall_ns\":" + std::to_string(r.wall_ns);
  if (!r.phase_ns.empty()) {
    out += ",\"phases\":{";
    bool first = true;
    for (const auto& [name, ns] : r.phase_ns) {
      if (!first) out += ",";
      first = false;
      out += "\"" + JsonEscape(name) + "\":" + std::to_string(ns);
    }
    out += "}";
  }
  out += "}";
  return out;
}

StatusOr<QueryLogRecord> ParseQueryLogRecord(std::string_view line) {
  auto json = ParseJson(line);
  if (!json.ok()) return json.status();
  if (!json->is_object()) {
    return InvalidArgumentError("query-log line is not a JSON object");
  }
  QueryLogRecord r;
  r.event = json->StringOr("event", "");
  if (r.event.empty()) {
    return InvalidArgumentError("query-log line lacks an event field");
  }
  r.query_hash = std::strtoull(json->StringOr("query_hash", "0").c_str(),
                               nullptr, 10);
  r.query = json->StringOr("query", "");
  r.ok = json->BoolOr("ok", true);
  r.error = json->StringOr("error", "");
  r.em_allowed = json->BoolOr("em_allowed", false);
  r.level = static_cast<int>(json->NumberOr("level", 0));
  r.find_count = static_cast<int>(json->NumberOr("find_count", 0));
  r.ranf_size = static_cast<int>(json->NumberOr("ranf_size", 0));
  r.plan_nodes = static_cast<int>(json->NumberOr("plan_nodes", 0));
  r.rows_out = static_cast<uint64_t>(json->NumberOr("rows_out", 0));
  r.wall_ns = static_cast<uint64_t>(json->NumberOr("wall_ns", 0));
  r.string_pool_size =
      static_cast<uint64_t>(json->NumberOr("string_pool_size", 0));
  r.exec_threads = static_cast<uint64_t>(json->NumberOr("exec_threads", 0));
  r.peak_bytes = static_cast<uint64_t>(json->NumberOr("peak_bytes", 0));
  r.bytes_allocated =
      static_cast<uint64_t>(json->NumberOr("bytes_allocated", 0));
  r.aborted_limit = json->StringOr("aborted_limit", "");
  r.misestimate_factor = json->NumberOr("misestimate_factor", 0);
  r.misestimate_op = json->StringOr("misestimate_op", "");
  if (const JsonValue* diags = json->Find("diagnostics");
      diags != nullptr && diags->is_array()) {
    r.diagnostics = diag::DiagnosticsFromJson(*diags);
  }
  if (const JsonValue* phases = json->Find("phases");
      phases != nullptr && phases->is_object()) {
    for (const auto& [name, v] : phases->object) {
      if (v.is_number()) {
        r.phase_ns.emplace_back(name, static_cast<uint64_t>(v.number));
      }
    }
  }
  return r;
}

StatusOr<std::unique_ptr<QueryLog>> QueryLog::Open(const std::string& path) {
  std::unique_ptr<QueryLog> log(new QueryLog());
  log->file_.open(path, std::ios::app);
  if (!log->file_) {
    return InvalidArgumentError("cannot open query log " + path);
  }
  log->sink_ = &log->file_;
  return log;
}

void QueryLog::Write(const QueryLogRecord& record) {
  std::string line = QueryLogRecordToJson(record);
  std::lock_guard<std::mutex> lock(mu_);
  *sink_ << line << "\n";
  sink_->flush();
}

namespace {
std::atomic<QueryLog*> g_query_log{nullptr};
QueryLog* g_env_query_log = nullptr;
}  // namespace

QueryLog* GetQueryLog() { return g_query_log.load(std::memory_order_acquire); }

void SetQueryLog(QueryLog* log) {
  g_query_log.store(log, std::memory_order_release);
}

bool InitQueryLogFromEnv() {
  if (g_env_query_log != nullptr) return true;
  const char* path = std::getenv("EMCALC_QUERY_LOG");
  if (path == nullptr || *path == '\0') return false;
  auto log = QueryLog::Open(path);
  if (!log.ok()) {
    std::fprintf(stderr, "emcalc: EMCALC_QUERY_LOG: %s\n",
                 log.status().ToString().c_str());
    return false;
  }
  g_env_query_log = log->release();  // lives until process exit
  SetQueryLog(g_env_query_log);
  return true;
}

}  // namespace emcalc::obs
