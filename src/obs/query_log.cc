#include "src/obs/query_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "src/obs/json.h"

namespace emcalc::obs {

uint64_t HashQueryText(std::string_view text) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string QueryLogRecordToJson(const QueryLogRecord& r) {
  std::string out = "{\"event\":\"" + JsonEscape(r.event) + "\"";
  // The hash is a full 64-bit value; a JSON number (double) would lose the
  // low bits, so it travels as a decimal string.
  out += ",\"query_hash\":\"" + std::to_string(r.query_hash) + "\"";
  if (!r.query.empty()) out += ",\"query\":\"" + JsonEscape(r.query) + "\"";
  out += ",\"ok\":";
  out += r.ok ? "true" : "false";
  if (!r.error.empty()) out += ",\"error\":\"" + JsonEscape(r.error) + "\"";
  if (r.event == "compile") {
    out += ",\"em_allowed\":";
    out += r.em_allowed ? "true" : "false";
    out += ",\"level\":" + std::to_string(r.level);
    out += ",\"find_count\":" + std::to_string(r.find_count);
    out += ",\"ranf_size\":" + std::to_string(r.ranf_size);
    out += ",\"plan_nodes\":" + std::to_string(r.plan_nodes);
  }
  if (r.event == "run") {
    out += ",\"rows_out\":" + std::to_string(r.rows_out);
    out += ",\"exec_threads\":" + std::to_string(r.exec_threads);
    out += ",\"peak_bytes\":" + std::to_string(r.peak_bytes);
    out += ",\"bytes_allocated\":" + std::to_string(r.bytes_allocated);
    if (!r.aborted_limit.empty()) {
      out += ",\"aborted_limit\":\"" + JsonEscape(r.aborted_limit) + "\"";
    }
    if (r.misestimate_factor > 0) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.3g", r.misestimate_factor);
      out += ",\"misestimate_factor\":";
      out += buf;
      out += ",\"misestimate_op\":\"" + JsonEscape(r.misestimate_op) + "\"";
    }
    if (r.est_history_ops > 0) {
      out += ",\"est_history_ops\":" + std::to_string(r.est_history_ops);
    }
    if (r.par_workers > 0) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.3f", r.parallel_efficiency);
      out += ",\"parallel_efficiency\":";
      out += buf;
      out += ",\"par_workers\":" + std::to_string(r.par_workers);
    }
  }
  out += ",\"string_pool_size\":" + std::to_string(r.string_pool_size);
  if (!r.diagnostics.empty()) {
    out += ",\"diagnostics\":" + diag::ToJson(r.diagnostics);
  }
  out += ",\"wall_ns\":" + std::to_string(r.wall_ns);
  if (!r.phase_ns.empty()) {
    out += ",\"phases\":{";
    bool first = true;
    for (const auto& [name, ns] : r.phase_ns) {
      if (!first) out += ",";
      first = false;
      out += "\"" + JsonEscape(name) + "\":" + std::to_string(ns);
    }
    out += "}";
  }
  out += "}";
  return out;
}

StatusOr<QueryLogRecord> ParseQueryLogRecord(std::string_view line) {
  auto json = ParseJson(line);
  if (!json.ok()) return json.status();
  if (!json->is_object()) {
    return InvalidArgumentError("query-log line is not a JSON object");
  }
  QueryLogRecord r;
  r.event = json->StringOr("event", "");
  if (r.event.empty()) {
    return InvalidArgumentError("query-log line lacks an event field");
  }
  r.query_hash = std::strtoull(json->StringOr("query_hash", "0").c_str(),
                               nullptr, 10);
  r.query = json->StringOr("query", "");
  r.ok = json->BoolOr("ok", true);
  r.error = json->StringOr("error", "");
  r.em_allowed = json->BoolOr("em_allowed", false);
  r.level = static_cast<int>(json->NumberOr("level", 0));
  r.find_count = static_cast<int>(json->NumberOr("find_count", 0));
  r.ranf_size = static_cast<int>(json->NumberOr("ranf_size", 0));
  r.plan_nodes = static_cast<int>(json->NumberOr("plan_nodes", 0));
  r.rows_out = static_cast<uint64_t>(json->NumberOr("rows_out", 0));
  r.wall_ns = static_cast<uint64_t>(json->NumberOr("wall_ns", 0));
  r.string_pool_size =
      static_cast<uint64_t>(json->NumberOr("string_pool_size", 0));
  r.exec_threads = static_cast<uint64_t>(json->NumberOr("exec_threads", 0));
  r.peak_bytes = static_cast<uint64_t>(json->NumberOr("peak_bytes", 0));
  r.bytes_allocated =
      static_cast<uint64_t>(json->NumberOr("bytes_allocated", 0));
  r.aborted_limit = json->StringOr("aborted_limit", "");
  r.misestimate_factor = json->NumberOr("misestimate_factor", 0);
  r.misestimate_op = json->StringOr("misestimate_op", "");
  r.est_history_ops =
      static_cast<uint64_t>(json->NumberOr("est_history_ops", 0));
  r.parallel_efficiency = json->NumberOr("parallel_efficiency", 0);
  r.par_workers = static_cast<uint64_t>(json->NumberOr("par_workers", 0));
  if (const JsonValue* diags = json->Find("diagnostics");
      diags != nullptr && diags->is_array()) {
    r.diagnostics = diag::DiagnosticsFromJson(*diags);
  }
  if (const JsonValue* phases = json->Find("phases");
      phases != nullptr && phases->is_object()) {
    for (const auto& [name, v] : phases->object) {
      if (v.is_number()) {
        r.phase_ns.emplace_back(name, static_cast<uint64_t>(v.number));
      }
    }
  }
  return r;
}

namespace {

// Raw write with EINTR retry; also usable from the signal-flush path.
bool RawWriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

uint64_t EnvRotationMaxBytes() {
  const char* env = std::getenv("EMCALC_QUERY_LOG_MAX_BYTES");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<uint64_t>(v);
}

constexpr size_t kQueryLogBufferFlushBytes = 16 * 1024;

}  // namespace

StatusOr<std::unique_ptr<QueryLog>> QueryLog::Open(const std::string& path) {
  std::unique_ptr<QueryLog> log(new QueryLog());
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return InvalidArgumentError("cannot open query log " + path);
  }
  struct stat st{};
  log->fd_ = fd;
  log->path_ = path;
  log->file_bytes_ = ::fstat(fd, &st) == 0 && st.st_size > 0
                         ? static_cast<uint64_t>(st.st_size)
                         : 0;
  log->max_bytes_ = EnvRotationMaxBytes();
  return log;
}

QueryLog::~QueryLog() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
  if (fd_ >= 0) ::close(fd_);
}

void QueryLog::Write(const QueryLogRecord& record) {
  std::string line = QueryLogRecordToJson(record);
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) {
    *sink_ << line << "\n";
    sink_->flush();
    return;
  }
  if (fd_ < 0) return;
  buf_ += line;
  buf_ += '\n';
  // Error and abort records must not sit in the buffer: the process may be
  // about to die (fatal signal after a governor trip, operator crash).
  bool urgent = !record.ok || !record.aborted_limit.empty();
  if (urgent || buf_.size() >= kQueryLogBufferFlushBytes) FlushLocked();
}

void QueryLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) {
    sink_->flush();
    return;
  }
  FlushLocked();
}

void QueryLog::FlushLocked() {
  if (fd_ < 0 || buf_.empty()) return;
  if (RawWriteAll(fd_, buf_.data(), buf_.size())) {
    file_bytes_ += buf_.size();
  }
  buf_.clear();
  MaybeRotateLocked();
}

void QueryLog::MaybeRotateLocked() {
  if (max_bytes_ == 0 || file_bytes_ < max_bytes_ || path_.empty()) return;
  ::close(fd_);
  fd_ = -1;
  std::string rotated = path_ + ".1";
  if (::rename(path_.c_str(), rotated.c_str()) != 0) {
    // Rename failed (e.g. cross-device path games); keep appending so no
    // records are lost, but give up on rotation for this file.
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    max_bytes_ = 0;
    return;
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  file_bytes_ = 0;
  ++rotations_;
}

bool QueryLog::TrySignalFlush() {
  if (!mu_.try_lock()) return false;
  bool drained = false;
  if (fd_ >= 0 && !buf_.empty()) {
    drained = RawWriteAll(fd_, buf_.data(), buf_.size());
    if (drained) {
      file_bytes_ += buf_.size();
      buf_.clear();
    }
  } else {
    drained = true;
  }
  mu_.unlock();
  return drained;
}

void QueryLog::SetRotationMaxBytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  max_bytes_ = bytes;
}

uint64_t QueryLog::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

namespace {
std::atomic<QueryLog*> g_query_log{nullptr};
QueryLog* g_env_query_log = nullptr;

void FlushEnvQueryLog() {
  if (g_env_query_log != nullptr) g_env_query_log->Flush();
}
}  // namespace

QueryLog* GetQueryLog() { return g_query_log.load(std::memory_order_acquire); }

void SetQueryLog(QueryLog* log) {
  g_query_log.store(log, std::memory_order_release);
}

bool InitQueryLogFromEnv() {
  if (g_env_query_log != nullptr) return true;
  const char* path = std::getenv("EMCALC_QUERY_LOG");
  if (path == nullptr || *path == '\0') return false;
  auto log = QueryLog::Open(path);
  if (!log.ok()) {
    std::fprintf(stderr, "emcalc: EMCALC_QUERY_LOG: %s\n",
                 log.status().ToString().c_str());
    return false;
  }
  g_env_query_log = log->release();  // lives until process exit
  SetQueryLog(g_env_query_log);
  std::atexit(FlushEnvQueryLog);
  return true;
}

void QueryLogSignalFlush() {
  QueryLog* log = g_query_log.load(std::memory_order_acquire);
  if (log != nullptr) log->TrySignalFlush();
}

}  // namespace emcalc::obs
