// Offline analysis of emcalc's observability artifacts: JSON-Lines query
// logs (src/obs/query_log.h) and postmortem bundles (src/obs/postmortem.h).
// This is the library behind the `emcalc-inspect` CLI (tools/inspect.cc);
// every renderer returns plain text so the CLI stays a thin argv shim and
// tests can golden-match the output.
#ifndef EMCALC_OBS_INSPECT_H_
#define EMCALC_OBS_INSPECT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/obs/history.h"
#include "src/obs/json.h"
#include "src/obs/query_log.h"

namespace emcalc::obs {

// A parsed query log. Unparseable lines are counted, not fatal — a log cut
// off mid-line by a crash must still analyze.
struct QueryLogScan {
  std::vector<QueryLogRecord> records;
  size_t bad_lines = 0;
};

// Parses JSON-Lines text (empty lines skipped).
QueryLogScan ParseQueryLogText(std::string_view text);

// Reads and parses the file at `path`.
StatusOr<QueryLogScan> ReadQueryLog(const std::string& path);

// Like ReadQueryLog, but when a rotated `<path>.1` segment exists its
// records are included first (oldest-first), so rotation does not silently
// halve the analysis window. `path` itself must exist; the rotated
// segment is optional.
StatusOr<QueryLogScan> ReadQueryLogWithRotation(const std::string& path);

// The k slowest "run" records by wall time, slowest first.
std::string RenderTopSlowest(const QueryLogScan& scan, size_t k);

// Failed runs broken down by aborting resource limit (plus plain errors),
// with an example query per limit. Sorted by count, then name.
std::string RenderAborts(const QueryLogScan& scan);

// Plan misestimations aggregated by responsible operator: count, worst and
// mean factor. At most `k` operators, worst first.
std::string RenderMisestimates(const QueryLogScan& scan, size_t k);

// One-screen roll-up: record counts, error/abort totals, wall-time and
// parallel-efficiency aggregates.
std::string RenderLogSummary(const QueryLogScan& scan);

// History-store digest (src/obs/history.h): summary counts, the top `k`
// misestimated hashes (worst pooled factor first), the top `k` slowest by
// mean wall time with p90 and a sparkline of the newest run times, and
// queries whose newest run regressed against their own mean.
std::string RenderHistory(const HistoryScan& scan, size_t k);

// Compares two history stores: hashes present in both whose mean latency
// or mean misestimation factor grew by more than `threshold`x from `a` to
// `b` are flagged (worst ratio first); hashes only in one store are
// counted. threshold <= 1 flags any growth.
std::string RenderHistoryDiff(const HistoryScan& a, const HistoryScan& b,
                              double threshold);

// One flight-recorder event from a bundle's "flight_recorder" array.
struct BundleEvent {
  uint64_t ts_ns = 0;
  uint64_t arg = 0;
  uint32_t tid = 0;
  std::string kind;  // "span_begin", "governor_trip", ...
  std::string name;
};

// A parsed postmortem bundle. `profile` / `metrics` / `pool` hold the
// embedded sub-documents verbatim (kind kNull when absent) so callers can
// drill in without re-reading the file.
struct PostmortemBundle {
  std::string reason;  // "governor_abort" | "run_error" | "signal" | ...
  std::string signal_name;
  std::string query;
  std::string query_hash;
  std::string error;
  std::string aborted_limit;
  JsonValue profile;
  JsonValue metrics;
  JsonValue pool;
  std::vector<BundleEvent> events;
};

StatusOr<PostmortemBundle> ParsePostmortemBundle(std::string_view json);
StatusOr<PostmortemBundle> ReadPostmortemBundle(const std::string& path);

// Human-readable bundle digest: reason, query, tripped limit, event counts
// by kind, and the newest flight events.
std::string RenderBundle(const PostmortemBundle& bundle);

// The bundle's flight events as a Chrome trace (chrome://tracing /
// Perfetto "traceEvents" JSON): span begin/end pairs become "B"/"E"
// duration events, everything else an "i" instant.
std::string BundleToChromeTrace(const PostmortemBundle& bundle);

}  // namespace emcalc::obs

#endif  // EMCALC_OBS_INSPECT_H_
