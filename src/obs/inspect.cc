#include "src/obs/inspect.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace emcalc::obs {

namespace {

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FormatFactor(double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", f);
  return buf;
}

std::string FormatPercent(double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", f * 100.0);
  return buf;
}

// Queries are rendered on one line; clip long ones so tables stay tables.
std::string ClipQuery(const std::string& q, size_t max = 60) {
  std::string out;
  out.reserve(std::min(q.size(), max));
  for (char c : q) {
    out += (c == '\n' || c == '\t') ? ' ' : c;
    if (out.size() >= max) break;
  }
  if (q.size() > max) out += "...";
  return out;
}

}  // namespace

QueryLogScan ParseQueryLogText(std::string_view text) {
  QueryLogScan scan;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() : nl + 1;
    if (line.empty()) continue;
    auto record = ParseQueryLogRecord(line);
    if (record.ok()) {
      scan.records.push_back(std::move(record).value());
    } else {
      ++scan.bad_lines;
    }
  }
  return scan;
}

StatusOr<QueryLogScan> ReadQueryLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return InvalidArgumentError("cannot open query log: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseQueryLogText(buf.str());
}

StatusOr<QueryLogScan> ReadQueryLogWithRotation(const std::string& path) {
  auto current = ReadQueryLog(path);
  if (!current.ok()) return current.status();
  std::ifstream rotated(path + ".1", std::ios::binary);
  if (!rotated) return current;  // no rotated segment: just the live file
  std::ostringstream buf;
  buf << rotated.rdbuf();
  QueryLogScan scan = ParseQueryLogText(buf.str());  // oldest records first
  scan.records.insert(scan.records.end(),
                      std::make_move_iterator(current->records.begin()),
                      std::make_move_iterator(current->records.end()));
  scan.bad_lines += current->bad_lines;
  return scan;
}

std::string RenderTopSlowest(const QueryLogScan& scan, size_t k) {
  std::vector<const QueryLogRecord*> runs;
  for (const QueryLogRecord& r : scan.records) {
    if (r.event == "run") runs.push_back(&r);
  }
  // Ties break on query hash so the listing is stable across qsorts.
  std::sort(runs.begin(), runs.end(),
            [](const QueryLogRecord* a, const QueryLogRecord* b) {
              if (a->wall_ns != b->wall_ns) return a->wall_ns > b->wall_ns;
              return a->query_hash < b->query_hash;
            });
  if (runs.size() > k) runs.resize(k);
  std::string out = "top " + std::to_string(runs.size()) + " slowest runs\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const QueryLogRecord& r = *runs[i];
    out += "  " + std::to_string(i + 1) + ". " + FormatMs(r.wall_ns);
    out += " rows=" + std::to_string(r.rows_out);
    if (!r.ok) {
      out += r.aborted_limit.empty() ? " error"
                                     : " aborted=" + r.aborted_limit;
    }
    if (r.par_workers > 0) {
      out += " eff=" + FormatPercent(r.parallel_efficiency);
    }
    out += "  " + ClipQuery(r.query) + "\n";
  }
  return out;
}

std::string RenderAborts(const QueryLogScan& scan) {
  size_t runs = 0;
  size_t plain_errors = 0;
  // limit -> (count, example query)
  std::map<std::string, std::pair<size_t, std::string>> by_limit;
  for (const QueryLogRecord& r : scan.records) {
    if (r.event != "run") continue;
    ++runs;
    if (r.ok) continue;
    if (r.aborted_limit.empty()) {
      ++plain_errors;
      continue;
    }
    auto& slot = by_limit[r.aborted_limit];
    if (slot.first == 0) slot.second = r.query;
    ++slot.first;
  }
  size_t aborts = 0;
  for (const auto& [limit, slot] : by_limit) aborts += slot.first;
  std::string out = "aborts: " + std::to_string(aborts) + " of " +
                    std::to_string(runs) + " runs\n";
  std::vector<std::pair<std::string, std::pair<size_t, std::string>>> sorted(
      by_limit.begin(), by_limit.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second.first != b.second.first)
      return a.second.first > b.second.first;
    return a.first < b.first;
  });
  for (const auto& [limit, slot] : sorted) {
    out += "  " + limit + ": " + std::to_string(slot.first) + "\n";
    out += "    e.g. " + ClipQuery(slot.second) + "\n";
  }
  if (plain_errors > 0) {
    out += "errors (non-governor): " + std::to_string(plain_errors) + "\n";
  }
  return out;
}

std::string RenderMisestimates(const QueryLogScan& scan, size_t k) {
  struct Agg {
    size_t count = 0;
    double worst = 0;
    double sum = 0;
  };
  std::map<std::string, Agg> by_op;
  for (const QueryLogRecord& r : scan.records) {
    if (r.event != "run" || r.misestimate_factor <= 0) continue;
    Agg& a = by_op[r.misestimate_op];
    ++a.count;
    a.sum += r.misestimate_factor;
    a.worst = std::max(a.worst, r.misestimate_factor);
  }
  std::string out = "misestimates by operator (worst first)\n";
  std::vector<std::pair<std::string, Agg>> sorted(by_op.begin(), by_op.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second.worst != b.second.worst) return a.second.worst > b.second.worst;
    return a.first < b.first;
  });
  if (sorted.size() > k) sorted.resize(k);
  for (const auto& [op, a] : sorted) {
    out += "  " + op + ": count=" + std::to_string(a.count) +
           " worst=" + FormatFactor(a.worst) +
           " mean=" + FormatFactor(a.sum / static_cast<double>(a.count)) +
           "\n";
  }
  return out;
}

std::string RenderLogSummary(const QueryLogScan& scan) {
  size_t compiles = 0;
  size_t runs = 0;
  size_t run_ok = 0;
  size_t run_errors = 0;
  size_t run_aborts = 0;
  size_t parallel_runs = 0;
  uint64_t wall_total = 0;
  uint64_t wall_max = 0;
  uint64_t rows_total = 0;
  double eff_sum = 0;
  for (const QueryLogRecord& r : scan.records) {
    if (r.event == "compile") {
      ++compiles;
      continue;
    }
    if (r.event != "run") continue;
    ++runs;
    wall_total += r.wall_ns;
    wall_max = std::max(wall_max, r.wall_ns);
    rows_total += r.rows_out;
    if (r.ok) {
      ++run_ok;
    } else if (r.aborted_limit.empty()) {
      ++run_errors;
    } else {
      ++run_aborts;
    }
    if (r.par_workers > 0) {
      ++parallel_runs;
      eff_sum += r.parallel_efficiency;
    }
  }
  std::string out = "records: " + std::to_string(scan.records.size()) +
                    " (compile=" + std::to_string(compiles) +
                    " run=" + std::to_string(runs) +
                    ", bad lines=" + std::to_string(scan.bad_lines) + ")\n";
  out += "runs: ok=" + std::to_string(run_ok) +
         " errors=" + std::to_string(run_errors) +
         " aborts=" + std::to_string(run_aborts) + "\n";
  if (runs > 0) {
    out += "wall: total=" + FormatMs(wall_total) + " mean=" +
           FormatMs(wall_total / runs) + " max=" + FormatMs(wall_max) + "\n";
    out += "rows out: " + std::to_string(rows_total) + "\n";
  }
  if (parallel_runs > 0) {
    out += "parallel runs: " + std::to_string(parallel_runs) + " (mean eff=" +
           FormatPercent(eff_sum / static_cast<double>(parallel_runs)) +
           ")\n";
  }
  return out;
}

namespace {

// Eight-level sparkline of the newest wall-time samples, scaled to the
// largest sample in the window (UTF-8 block elements, one cell each).
std::string Sparkline(const std::vector<uint64_t>& samples) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  uint64_t max = 0;
  for (uint64_t s : samples) max = std::max(max, s);
  std::string out;
  for (uint64_t s : samples) {
    size_t level =
        max == 0 ? 0
                 : static_cast<size_t>(
                       (static_cast<double>(s) / static_cast<double>(max)) *
                       7.0);
    out += kLevels[std::min<size_t>(level, 7)];
  }
  return out;
}

// Newest run's wall time vs the query's own mean; > 1 means the newest
// run was slower than typical.
double TrendRegression(const QueryHistory& h) {
  if (h.wall_trend.empty() || h.MeanWallNs() <= 0) return 1.0;
  return static_cast<double>(h.wall_trend.back()) / h.MeanWallNs();
}

std::string HistoryLineLabel(const QueryHistory& h) {
  std::string out = std::to_string(h.query_hash);
  if (!h.query.empty()) out += "  " + ClipQuery(h.query, 48);
  return out;
}

}  // namespace

std::string RenderHistory(const HistoryScan& scan, size_t k) {
  std::string out = "history: " + std::to_string(scan.entries.size()) +
                    " queries, " + std::to_string(scan.total_runs) +
                    " runs (gen=" + std::to_string(scan.generation) +
                    ", bad lines=" + std::to_string(scan.bad_lines) + ")\n";
  std::vector<const QueryHistory*> entries;
  entries.reserve(scan.entries.size());
  uint64_t aborts = 0;
  uint64_t errors = 0;
  for (const QueryHistory& h : scan.entries) {
    entries.push_back(&h);
    aborts += h.aborts;
    errors += h.errors;
  }
  if (aborts > 0 || errors > 0) {
    out += "failures: aborts=" + std::to_string(aborts) +
           " errors=" + std::to_string(errors) + "\n";
  }

  auto misest = entries;
  std::sort(misest.begin(), misest.end(),
            [](const QueryHistory* a, const QueryHistory* b) {
              if (a->factor_worst != b->factor_worst)
                return a->factor_worst > b->factor_worst;
              return a->query_hash < b->query_hash;
            });
  if (misest.size() > k) misest.resize(k);
  out += "top misestimated (worst pooled factor)\n";
  for (const QueryHistory* h : misest) {
    out += "  worst=" + FormatFactor(h->factor_worst) +
           " mean=" + FormatFactor(h->MeanFactor()) +
           " runs=" + std::to_string(h->runs) + "  " + HistoryLineLabel(*h) +
           "\n";
  }

  auto slow = entries;
  std::sort(slow.begin(), slow.end(),
            [](const QueryHistory* a, const QueryHistory* b) {
              if (a->MeanWallNs() != b->MeanWallNs())
                return a->MeanWallNs() > b->MeanWallNs();
              return a->query_hash < b->query_hash;
            });
  if (slow.size() > k) slow.resize(k);
  out += "slowest (mean wall time)\n";
  for (const QueryHistory* h : slow) {
    out += "  mean=" + FormatMs(static_cast<uint64_t>(h->MeanWallNs())) +
           " p90=" +
           FormatMs(static_cast<uint64_t>(HistoryWallPercentile(*h, 90))) +
           " runs=" + std::to_string(h->runs) + " trend=" +
           Sparkline(h->wall_trend) + "  " + HistoryLineLabel(*h) + "\n";
  }

  // Regressions: the newest run was markedly slower than the query's own
  // mean (needs a few runs before the mean is meaningful).
  std::vector<const QueryHistory*> regressed;
  for (const QueryHistory* h : entries) {
    if (h->runs >= 3 && TrendRegression(*h) >= 1.5) regressed.push_back(h);
  }
  std::sort(regressed.begin(), regressed.end(),
            [](const QueryHistory* a, const QueryHistory* b) {
              double ra = TrendRegression(*a);
              double rb = TrendRegression(*b);
              if (ra != rb) return ra > rb;
              return a->query_hash < b->query_hash;
            });
  if (regressed.size() > k) regressed.resize(k);
  if (!regressed.empty()) {
    out += "regressed (newest run vs own mean)\n";
    for (const QueryHistory* h : regressed) {
      out += "  last/mean=" + FormatFactor(TrendRegression(*h)) + " trend=" +
             Sparkline(h->wall_trend) + "  " + HistoryLineLabel(*h) + "\n";
    }
  }
  return out;
}

std::string RenderHistoryDiff(const HistoryScan& a, const HistoryScan& b,
                              double threshold) {
  std::unordered_map<uint64_t, const QueryHistory*> base;
  base.reserve(a.entries.size());
  for (const QueryHistory& h : a.entries) base.emplace(h.query_hash, &h);

  struct Regression {
    const QueryHistory* entry = nullptr;
    double wall_ratio = 1;
    double factor_ratio = 1;
    double WorstRatio() const { return std::max(wall_ratio, factor_ratio); }
  };
  std::vector<Regression> regressions;
  size_t matched = 0;
  size_t added = 0;
  for (const QueryHistory& h : b.entries) {
    auto it = base.find(h.query_hash);
    if (it == base.end()) {
      ++added;
      continue;
    }
    ++matched;
    const QueryHistory& old = *it->second;
    Regression r;
    r.entry = &h;
    // Micro-run noise guard: ratios are computed over means, with a 1us
    // floor on the base so an empty/near-zero baseline cannot explode.
    r.wall_ratio = h.MeanWallNs() / std::max(old.MeanWallNs(), 1e3);
    r.factor_ratio = h.MeanFactor() / std::max(old.MeanFactor(), 1.0);
    if (r.WorstRatio() > threshold) regressions.push_back(r);
  }
  size_t removed = a.entries.size() - matched;

  std::string out = "history diff: " + std::to_string(a.entries.size()) +
                    " -> " + std::to_string(b.entries.size()) + " queries (" +
                    std::to_string(matched) + " matched, " +
                    std::to_string(added) + " new, " +
                    std::to_string(removed) + " gone)\n";
  char thresh_buf[40];
  std::snprintf(thresh_buf, sizeof(thresh_buf), "%.2f", threshold);
  out += "regressions over " + std::string(thresh_buf) + "x: " +
         std::to_string(regressions.size()) + "\n";
  std::sort(regressions.begin(), regressions.end(),
            [](const Regression& x, const Regression& y) {
              if (x.WorstRatio() != y.WorstRatio())
                return x.WorstRatio() > y.WorstRatio();
              return x.entry->query_hash < y.entry->query_hash;
            });
  for (const Regression& r : regressions) {
    out += "  wall=" + FormatFactor(r.wall_ratio) +
           " misest=" + FormatFactor(r.factor_ratio) + "  " +
           HistoryLineLabel(*r.entry) + "\n";
  }
  return out;
}

StatusOr<PostmortemBundle> ParsePostmortemBundle(std::string_view json) {
  auto doc = ParseJson(json);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) {
    return InvalidArgumentError("postmortem bundle is not a JSON object");
  }
  PostmortemBundle bundle;
  bundle.reason = doc->StringOr("reason", "");
  bundle.signal_name = doc->StringOr("signal_name", "");
  bundle.query = doc->StringOr("query", "");
  bundle.query_hash = doc->StringOr("query_hash", "");
  bundle.error = doc->StringOr("error", "");
  bundle.aborted_limit = doc->StringOr("aborted_limit", "");
  if (const JsonValue* v = doc->Find("profile")) bundle.profile = *v;
  if (const JsonValue* v = doc->Find("metrics")) bundle.metrics = *v;
  if (const JsonValue* v = doc->Find("pool")) bundle.pool = *v;
  if (const JsonValue* ring = doc->Find("flight_recorder");
      ring != nullptr && ring->is_array()) {
    bundle.events.reserve(ring->array.size());
    for (const JsonValue& e : ring->array) {
      if (!e.is_object()) continue;
      BundleEvent event;
      event.ts_ns = static_cast<uint64_t>(e.NumberOr("ts_ns", 0));
      event.arg = static_cast<uint64_t>(e.NumberOr("arg", 0));
      event.tid = static_cast<uint32_t>(e.NumberOr("tid", 0));
      event.kind = e.StringOr("kind", "");
      event.name = e.StringOr("name", "");
      bundle.events.push_back(std::move(event));
    }
  }
  return bundle;
}

StatusOr<PostmortemBundle> ReadPostmortemBundle(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return InvalidArgumentError("cannot open bundle: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParsePostmortemBundle(buf.str());
}

std::string RenderBundle(const PostmortemBundle& bundle) {
  std::string out = "reason: " + bundle.reason + "\n";
  if (!bundle.signal_name.empty()) {
    out += "signal: " + bundle.signal_name + "\n";
  }
  if (!bundle.aborted_limit.empty()) {
    out += "aborted_limit: " + bundle.aborted_limit + "\n";
  }
  if (!bundle.error.empty()) out += "error: " + bundle.error + "\n";
  if (!bundle.query_hash.empty()) {
    out += "query_hash: " + bundle.query_hash + "\n";
  }
  if (!bundle.query.empty()) {
    out += "query: " + ClipQuery(bundle.query, 200) + "\n";
  }
  std::map<std::string, size_t> by_kind;
  for (const BundleEvent& e : bundle.events) ++by_kind[e.kind];
  out += "flight events: " + std::to_string(bundle.events.size());
  if (!by_kind.empty()) {
    out += " (";
    bool first = true;
    for (const auto& [kind, count] : by_kind) {
      if (!first) out += ", ";
      first = false;
      out += kind + "=" + std::to_string(count);
    }
    out += ")";
  }
  out += "\n";
  constexpr size_t kTail = 10;
  size_t start = bundle.events.size() > kTail ? bundle.events.size() - kTail : 0;
  if (start < bundle.events.size()) out += "newest events:\n";
  for (size_t i = start; i < bundle.events.size(); ++i) {
    const BundleEvent& e = bundle.events[i];
    out += "  " + std::to_string(e.ts_ns) + " tid=" + std::to_string(e.tid) +
           " " + e.kind + " " + e.name;
    if (e.arg != 0) out += " arg=" + std::to_string(e.arg);
    out += "\n";
  }
  return out;
}

std::string BundleToChromeTrace(const PostmortemBundle& bundle) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const BundleEvent& e : bundle.events) {
    const char* ph = "i";
    if (e.kind == "span_begin") {
      ph = "B";
    } else if (e.kind == "span_end") {
      ph = "E";
    }
    if (!first) out += ",";
    first = false;
    char ts[40];
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(e.ts_ns) / 1e3);  // us
    out += "{\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"" +
           JsonEscape(e.kind) + "\",\"ph\":\"" + ph + "\",\"ts\":" + ts +
           ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    // Instants need a scope; args carry the event payload either way.
    if (ph[0] == 'i') out += ",\"s\":\"t\"";
    if (e.arg != 0) out += ",\"args\":{\"arg\":" + std::to_string(e.arg) + "}";
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace emcalc::obs
