// A process-wide registry of named counters, gauges, and fixed-bucket
// histograms, with text and JSON snapshot export.
//
// Naming convention: dot-separated `<subsystem>.<metric>[_<unit>]`, e.g.
// `compile.queries`, `exec.rows_out`, `compile.wall_ns`. Units are spelled
// in the name (`_ns`, `_bytes`) so snapshots are self-describing.
//
// Instrumentation sites cache the handle in a function-local static — the
// registry lookup (mutex + map) happens once, after which a counter update
// is a single relaxed atomic add:
//
//   static obs::Counter& compiles =
//       obs::MetricsRegistry::Instance().GetCounter("compile.queries");
//   compiles.Add();
//
// Metric objects live for the life of the process; references returned by
// the registry never dangle.
#ifndef EMCALC_OBS_METRICS_H_
#define EMCALC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace emcalc::obs {

// A monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A signed gauge. Concurrent writers must pick the right primitive:
// Set is last-write-wins (fine for single-writer samples), Add is a
// lost-update-free delta (use it for byte totals fed from many threads),
// and UpdateMax is a monotone high-water mark (use it when morsels or
// queries finish concurrently and only the maximum matters — a Set race
// there would let a smaller late value overwrite a larger one).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  // Lifts the gauge to `v` when larger; never lowers it. CAS loop, so a
  // lost race only ever loses to a larger concurrent value.
  void UpdateMax(int64_t v) {
    int64_t prev = value_.load(std::memory_order_relaxed);
    while (v > prev && !value_.compare_exchange_weak(
                           prev, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A histogram over fixed buckets given by strictly increasing upper
// bounds; observations above the last bound land in an overflow bucket.
// Percentiles report the smallest bucket bound whose cumulative count
// reaches the requested rank (exact whenever the observations themselves
// are bucket bounds); the overflow bucket reports the maximum observed
// value.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const;
  double sum() const;
  double min() const;  // +inf when empty
  double max() const;  // -inf when empty
  // p in (0, 100], e.g. Percentile(99). Returns 0 when empty.
  double Percentile(double p) const;

  // A self-consistent copy of the histogram state, taken under one lock
  // acquisition. The individual accessors above each lock separately, so a
  // sequence of calls (count(), then sum(), then Percentile()) can
  // interleave with a concurrent Observe or Reset and report values from
  // different states — snapshot exporters must use this instead.
  // Invariants: counts sums to count; count == 0 implies sum == 0.
  struct Snapshot {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;  // +inf when empty
    double max = 0;  // -inf when empty
    std::vector<uint64_t> counts;  // bounds().size() + 1
  };
  Snapshot TakeSnapshot() const;
  // Percentile computed from a snapshot (no locking; same convention as
  // Percentile()).
  double PercentileOf(const Snapshot& snap, double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> bucket_counts() const;  // bounds().size() + 1
  void Reset();

 private:
  const std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Upper bounds for latency histograms in nanoseconds: 1us … 16s in powers
// of four.
const std::vector<double>& DefaultLatencyBucketsNs();

class MetricsRegistry {
 public:
  // The process-wide instance (never destroyed).
  static MetricsRegistry& Instance();

  // Returns the metric named `name`, creating it on first use. A name
  // identifies one kind of metric; reusing it with a different kind is a
  // programming error (checked).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // `bounds` applies on first use only; empty means DefaultLatencyBucketsNs.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  // One metric per line: `name value` / `name count=N sum=S p50=.. p95=..
  // p99=..` for histograms. Sorted by name.
  std::string TextSnapshot() const;
  // {"counters":{...},"gauges":{...},"histograms":{"n":{"count":..,...}}}
  std::string JsonSnapshot() const;
  // Prometheus text exposition format (version 0.0.4). Metric names are
  // prefixed `emcalc_` and dots become underscores; histograms render as
  // cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
  std::string RenderPrometheus() const;

  // Zeroes every metric (registrations survive). For tests and benches.
  void ResetAll();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace emcalc::obs

#endif  // EMCALC_OBS_METRICS_H_
