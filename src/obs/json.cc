#include "src/obs/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace emcalc::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string : std::move(fallback);
}

bool JsonValue::BoolOr(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kBool ? v->boolean : fallback;
}

namespace {

struct Parser {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos;
  }

  Status Err(const std::string& what) const {
    return InvalidArgumentError("json parse error at offset " +
                                std::to_string(pos) + ": " + what);
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > 64) return Err("nesting too deep");
    SkipSpace();
    if (AtEnd()) return Err("unexpected end of input");
    char c = Peek();
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos;  // '{'
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (!AtEnd() && Peek() == '}') {
      ++pos;
      return out;
    }
    while (true) {
      SkipSpace();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipSpace();
      if (AtEnd() || Peek() != ':') return Err("expected ':'");
      ++pos;
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      out.object.emplace_back(std::move(key->string),
                              std::move(value).value());
      SkipSpace();
      if (AtEnd()) return Err("unterminated object");
      if (Peek() == ',') {
        ++pos;
        continue;
      }
      if (Peek() == '}') {
        ++pos;
        return out;
      }
      return Err("expected ',' or '}'");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos;  // '['
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (!AtEnd() && Peek() == ']') {
      ++pos;
      return out;
    }
    while (true) {
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      out.array.push_back(std::move(value).value());
      SkipSpace();
      if (AtEnd()) return Err("unterminated array");
      if (Peek() == ',') {
        ++pos;
        continue;
      }
      if (Peek() == ']') {
        ++pos;
        return out;
      }
      return Err("expected ',' or ']'");
    }
  }

  StatusOr<JsonValue> ParseString() {
    if (AtEnd() || Peek() != '"') return Err("expected string");
    ++pos;
    JsonValue out;
    out.kind = JsonValue::Kind::kString;
    while (!AtEnd() && Peek() != '"') {
      char c = text[pos++];
      if (c != '\\') {
        out.string += c;
        continue;
      }
      if (AtEnd()) return Err("dangling escape");
      char e = text[pos++];
      switch (e) {
        case '"': out.string += '"'; break;
        case '\\': out.string += '\\'; break;
        case '/': out.string += '/'; break;
        case 'b': out.string += '\b'; break;
        case 'f': out.string += '\f'; break;
        case 'n': out.string += '\n'; break;
        case 'r': out.string += '\r'; break;
        case 't': out.string += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return Err("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Err("bad \\u escape");
          }
          // Our emitters only \u-escape control characters; encode the
          // general case as UTF-8 anyway.
          if (code < 0x80) {
            out.string += static_cast<char>(code);
          } else if (code < 0x800) {
            out.string += static_cast<char>(0xC0 | (code >> 6));
            out.string += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out.string += static_cast<char>(0xE0 | (code >> 12));
            out.string += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out.string += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Err("unknown escape");
      }
    }
    if (AtEnd()) return Err("unterminated string");
    ++pos;  // closing quote
    return out;
  }

  StatusOr<JsonValue> ParseBool() {
    JsonValue out;
    out.kind = JsonValue::Kind::kBool;
    if (text.substr(pos, 4) == "true") {
      pos += 4;
      out.boolean = true;
      return out;
    }
    if (text.substr(pos, 5) == "false") {
      pos += 5;
      out.boolean = false;
      return out;
    }
    return Err("expected 'true' or 'false'");
  }

  StatusOr<JsonValue> ParseNull() {
    if (text.substr(pos, 4) == "null") {
      pos += 4;
      return JsonValue{};
    }
    return Err("expected 'null'");
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos;
    if (!AtEnd() && (Peek() == '-' || Peek() == '+')) ++pos;
    while (!AtEnd() &&
           (std::isdigit(static_cast<unsigned char>(Peek())) || Peek() == '.' ||
            Peek() == 'e' || Peek() == 'E' || Peek() == '-' || Peek() == '+')) {
      ++pos;
    }
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    const char* first = text.data() + start;
    const char* last = text.data() + pos;
    auto [end, ec] = std::from_chars(first, last, out.number);
    if (ec != std::errc() || end != last) {
      pos = start;
      return Err("malformed number");
    }
    return out;
  }
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  Parser parser{text};
  auto value = parser.ParseValue(0);
  if (!value.ok()) return value.status();
  parser.SkipSpace();
  if (!parser.AtEnd()) return parser.Err("trailing content");
  return value;
}

}  // namespace emcalc::obs
