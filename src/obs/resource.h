// Memory accounting and per-query resource governance.
//
// Three layers, cheapest first:
//
//   MemoryAccountant   process-wide relaxed-atomic byte counters. Every
//                      tracked allocation site (FlatRelation buffers,
//                      JoinTable slot arrays, StringPool blocks, term-
//                      closure sets, morsel buffers) reports capacity
//                      deltas here unconditionally.
//   MemoryScope        thread-local RAII attribution: while a scope is
//                      active, the same deltas are additionally charged to
//                      a QueryMemory (one per plan execution) and to one of
//                      its per-operator slots. ThreadPool::ParallelFor
//                      captures the caller's scope and re-installs it on
//                      every worker, so morsel allocations attribute to the
//                      operator that spawned the region no matter which
//                      thread runs the morsel.
//   ResourceGovernor   per-query limits (bytes, rows, term-closure size,
//                      wall deadline) checked at morsel boundaries and
//                      closure rounds. The first limit to trip is recorded
//                      (sticky) and surfaces as a kResourceExhausted Status
//                      naming the limit; workers drain without doing work
//                      once tripped, so the pool is left clean and the
//                      process stays reusable.
//
// Accounting is capacity-based (vector capacity × element size), not
// malloc-exact: it tracks the dominant data-plane buffers, which is what a
// limit needs to bound. Charges follow the owning container: a buffer
// allocated under operator A and freed while operator B's scope is active
// debits B's query-level running sum (the process-wide counter is always
// consistent). Peaks are monotone maxima of the running sums, so the
// per-query peak is exact for allocations made during the query.
#ifndef EMCALC_OBS_RESOURCE_H_
#define EMCALC_OBS_RESOURCE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace emcalc::obs {

namespace internal {
// Relaxed CAS-max: lifts `current` into `peak` when larger. Lost races
// only ever lose to a *larger* concurrent value, so the peak is monotone.
inline void UpdateAtomicMax(std::atomic<int64_t>& peak, int64_t current) {
  int64_t prev = peak.load(std::memory_order_relaxed);
  while (current > prev &&
         !peak.compare_exchange_weak(prev, current,
                                     std::memory_order_relaxed)) {
  }
}
}  // namespace internal

// Process-wide byte counters. All operations are relaxed atomics — the
// counters are monotone instrumentation, never synchronization.
class MemoryAccountant {
 public:
  // The process-wide instance (never destroyed).
  static MemoryAccountant& Instance();

  // Reports a capacity delta (positive = grow, negative = release).
  void Charge(int64_t delta) {
    int64_t now = bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
    internal::UpdateAtomicMax(peak_, now);
    if (delta > 0) {
      allocated_.fetch_add(static_cast<uint64_t>(delta),
                           std::memory_order_relaxed);
    }
  }

  // Bytes currently held by tracked containers.
  int64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  // High-water mark of bytes() over the process lifetime.
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  // Cumulative positive deltas (total bytes ever allocated).
  uint64_t bytes_allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }

  MemoryAccountant(const MemoryAccountant&) = delete;
  MemoryAccountant& operator=(const MemoryAccountant&) = delete;

 private:
  MemoryAccountant() = default;

  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<uint64_t> allocated_{0};
};

// Per-execution memory state: a query-level running sum/peak plus one slot
// per physical operator. Charged from many worker threads concurrently.
class QueryMemory {
 public:
  explicit QueryMemory(size_t num_ops) : ops_(num_ops) {}

  QueryMemory(const QueryMemory&) = delete;
  QueryMemory& operator=(const QueryMemory&) = delete;

  // Charges `delta` to the query totals and, when `op_id` addresses a
  // slot, to that operator.
  void Charge(int64_t delta, int op_id) {
    int64_t now = bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
    internal::UpdateAtomicMax(peak_, now);
    if (delta > 0) {
      allocated_.fetch_add(static_cast<uint64_t>(delta),
                           std::memory_order_relaxed);
    }
    if (op_id >= 0 && static_cast<size_t>(op_id) < ops_.size()) {
      OpSlot& slot = ops_[static_cast<size_t>(op_id)];
      int64_t op_now =
          slot.bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
      internal::UpdateAtomicMax(slot.peak, op_now);
      if (delta > 0) {
        slot.allocated.fetch_add(static_cast<uint64_t>(delta),
                                 std::memory_order_relaxed);
      }
    }
  }

  // Query-level running byte sum (can dip negative when buffers allocated
  // before the query are freed inside it; limits clamp at zero).
  int64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t bytes_allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }

  size_t num_ops() const { return ops_.size(); }
  int64_t OpPeakBytes(size_t op) const {
    return ops_[op].peak.load(std::memory_order_relaxed);
  }
  uint64_t OpBytesAllocated(size_t op) const {
    return ops_[op].allocated.load(std::memory_order_relaxed);
  }

 private:
  struct OpSlot {
    std::atomic<int64_t> bytes{0};
    std::atomic<int64_t> peak{0};
    std::atomic<uint64_t> allocated{0};
  };

  std::vector<OpSlot> ops_;  // sized at construction, never grows
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<uint64_t> allocated_{0};
};

// The attribution target of the calling thread; a null query means only
// the process accountant is charged.
struct MemoryScopeState {
  QueryMemory* query = nullptr;
  int op_id = -1;
};

// RAII installer of a MemoryScopeState into thread-local storage. Scopes
// nest: each constructor saves the previous state and the destructor
// restores it, so an operator's scope shadows its parent's for exactly the
// duration of its Run.
class MemoryScope {
 public:
  MemoryScope(QueryMemory* query, int op_id);
  // Adopts a captured state (thread-pool workers entering a region).
  explicit MemoryScope(const MemoryScopeState& state);
  ~MemoryScope();

  MemoryScope(const MemoryScope&) = delete;
  MemoryScope& operator=(const MemoryScope&) = delete;

  // The calling thread's active state (for capture/propagation).
  static MemoryScopeState Current();

 private:
  MemoryScopeState prev_;
};

// Reports a byte delta to the process accountant and, when the calling
// thread has an active scope, to its query/operator. This is the one
// charge entry point every instrumented container calls.
void ChargeBytes(int64_t delta);

// Tracks the bytes charged for a transient buffer the caller sizes
// manually (join scratch arrays, closure sets). Update(now) charges the
// delta against the last reported size; the destructor releases whatever
// is still charged.
class MemoryCharge {
 public:
  MemoryCharge() = default;
  explicit MemoryCharge(int64_t bytes) { Update(bytes); }
  ~MemoryCharge() { Update(0); }

  MemoryCharge(const MemoryCharge&) = delete;
  MemoryCharge& operator=(const MemoryCharge&) = delete;

  void Update(int64_t now) {
    if (now == charged_) return;
    ChargeBytes(now - charged_);
    charged_ = now;
  }
  int64_t charged() const { return charged_; }

 private:
  int64_t charged_ = 0;
};

// Per-query ceilings; 0 means unlimited.
struct ResourceLimits {
  uint64_t max_bytes = 0;              // live tracked bytes (query scope)
  uint64_t max_rows = 0;               // total operator output rows
  uint64_t max_term_closure_size = 0;  // values in one term closure
  uint64_t max_wall_ms = 0;            // wall-clock deadline
};

// EMCALC_MAX_QUERY_BYTES / EMCALC_MAX_QUERY_MS, parsed per call (the cost
// is two getenv calls per execution). Unset/invalid fields read as 0.
ResourceLimits ResourceLimitsFromEnv();

// `opts` merged with the env knobs: an explicit (non-zero) ExecOptions
// field wins; otherwise the env value applies.
ResourceLimits EffectiveLimits(const ResourceLimits& opts);

// Which ceiling tripped.
enum class ResourceLimitKind : uint8_t {
  kNone = 0,
  kBytes,
  kRows,
  kTermClosure,
  kDeadline,
};

// Stable name matching the ResourceLimits field ("max_bytes", ...).
const char* ResourceLimitKindName(ResourceLimitKind kind);

// Enforces one query's limits. Check() is cheap enough for morsel
// boundaries: with no limits configured it is one branch; with limits it
// is a handful of relaxed loads (the deadline clock is only read when a
// deadline is set). The first trip wins and is sticky — later checks
// return the same verdict without re-deriving it, and in-flight workers
// observing tripped() skip their remaining morsels.
class ResourceGovernor {
 public:
  // `memory` backs the byte limit (may be null → byte limit inert);
  // `start_ns` anchors the deadline (steady clock, obs::NowNs).
  ResourceGovernor(const ResourceLimits& limits, const QueryMemory* memory,
                   uint64_t start_ns);

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  bool enabled() const { return enabled_; }

  // Accumulates operator output rows toward max_rows.
  void AddRows(uint64_t n) {
    if (enabled_) rows_.fetch_add(n, std::memory_order_relaxed);
  }

  // Evaluates the byte/row/deadline limits; returns true when tripped
  // (now or previously).
  bool Check();

  // Check() plus the closure-size limit; returns the governor status
  // directly (Ok when nothing tripped).
  Status CheckClosure(uint64_t closure_size);

  bool tripped() const {
    return enabled_ && tripped_.load(std::memory_order_acquire);
  }
  ResourceLimitKind tripped_limit() const {
    return static_cast<ResourceLimitKind>(
        kind_.load(std::memory_order_acquire));
  }

  // Ok, or kResourceExhausted naming the tripped limit with used/limit
  // values.
  Status status() const;

 private:
  void Trip(ResourceLimitKind kind, uint64_t used, uint64_t limit);

  const ResourceLimits limits_;
  const QueryMemory* memory_;
  const bool enabled_;
  uint64_t deadline_ns_ = 0;  // 0 = no deadline
  std::atomic<uint64_t> rows_{0};
  std::atomic<bool> tripped_{false};
  std::atomic<uint8_t> kind_{0};
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> limit_{0};
};

}  // namespace emcalc::obs

#endif  // EMCALC_OBS_RESOURCE_H_
