#include "src/obs/history.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/obs/json.h"

namespace emcalc::obs {

namespace {

constexpr int kHistoryFormatVersion = 1;
constexpr const char kHistoryFileName[] = "history.jsonl";

struct HistoryMetrics {
  Counter& runs_recorded;
  Counter& compactions;
  Gauge& queries;

  static HistoryMetrics& Get() {
    static HistoryMetrics* m = [] {
      auto& reg = MetricsRegistry::Instance();
      return new HistoryMetrics{reg.GetCounter("history.runs_recorded"),
                                reg.GetCounter("history.compactions"),
                                reg.GetGauge("history.queries")};
    }();
    return *m;
  }
};

bool WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// ---- Digests on the shared metrics bucket layouts ----------------------

void DigestObserve(Histogram::Snapshot& d, const std::vector<double>& bounds,
                   double v) {
  if (d.counts.size() != bounds.size() + 1) {
    d.counts.assign(bounds.size() + 1, 0);
  }
  auto bucket = static_cast<size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
  ++d.counts[bucket];
  if (d.count == 0) {
    d.min = v;
    d.max = v;
  } else {
    d.min = std::min(d.min, v);
    d.max = std::max(d.max, v);
  }
  ++d.count;
  d.sum += v;
}

void DigestMerge(Histogram::Snapshot& into, const Histogram::Snapshot& from,
                 const std::vector<double>& bounds) {
  if (from.count == 0) return;
  if (into.counts.size() != bounds.size() + 1) {
    into.counts.assign(bounds.size() + 1, 0);
  }
  for (size_t i = 0; i < from.counts.size() && i < into.counts.size(); ++i) {
    into.counts[i] += from.counts[i];
  }
  into.min = into.count == 0 ? from.min : std::min(into.min, from.min);
  into.max = into.count == 0 ? from.max : std::max(into.max, from.max);
  into.count += from.count;
  into.sum += from.sum;
}

std::string DigestJson(const Histogram::Snapshot& d) {
  std::string out = "{\"count\":" + std::to_string(d.count);
  if (d.count > 0) {
    out += ",\"sum\":" + FormatDouble(d.sum);
    out += ",\"min\":" + FormatDouble(d.min);
    out += ",\"max\":" + FormatDouble(d.max);
    out += ",\"counts\":[";
    for (size_t i = 0; i < d.counts.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(d.counts[i]);
    }
    out += "]";
  }
  out += "}";
  return out;
}

Histogram::Snapshot DigestFromJson(const JsonValue* v,
                                   const std::vector<double>& bounds) {
  Histogram::Snapshot d;
  if (v == nullptr || !v->is_object()) return d;
  d.count = static_cast<uint64_t>(v->NumberOr("count", 0));
  if (d.count == 0) return Histogram::Snapshot{};
  d.sum = v->NumberOr("sum", 0);
  d.min = v->NumberOr("min", 0);
  d.max = v->NumberOr("max", 0);
  d.counts.assign(bounds.size() + 1, 0);
  if (const JsonValue* counts = v->Find("counts");
      counts != nullptr && counts->is_array()) {
    for (size_t i = 0; i < counts->array.size() && i < d.counts.size(); ++i) {
      if (counts->array[i].is_number()) {
        d.counts[i] = static_cast<uint64_t>(counts->array[i].number);
      }
    }
  }
  return d;
}

// ---- Line serialization ------------------------------------------------

std::string RunLineJson(const RunObservation& run) {
  std::string out = "{\"v\":" + std::to_string(kHistoryFormatVersion);
  out += ",\"type\":\"run\"";
  // 64-bit hash travels as a decimal string (JSON numbers are doubles).
  out += ",\"hash\":\"" + std::to_string(run.query_hash) + "\"";
  if (!run.query.empty()) {
    out += ",\"query\":\"" + JsonEscape(run.query) + "\"";
  }
  out += ",\"ok\":";
  out += run.ok ? "true" : "false";
  if (!run.aborted_limit.empty()) {
    out += ",\"aborted\":\"" + JsonEscape(run.aborted_limit) + "\"";
  }
  out += ",\"wall_ns\":" + std::to_string(run.wall_ns);
  out += ",\"peak_bytes\":" + std::to_string(run.peak_bytes);
  out += ",\"rows_out\":" + std::to_string(run.rows_out);
  if (run.par_workers > 0) {
    out += ",\"par_eff\":" + FormatDouble(run.parallel_efficiency);
    out += ",\"par_workers\":" + std::to_string(run.par_workers);
  }
  out += ",\"ops\":[";
  for (size_t i = 0; i < run.ops.size(); ++i) {
    const RunObservation::Op& op = run.ops[i];
    if (i > 0) out += ",";
    out += "{\"path\":\"" + JsonEscape(op.path) + "\"";
    out += ",\"op\":\"" + JsonEscape(op.op) + "\"";
    out += ",\"est\":" + FormatDouble(op.est_rows);
    out += ",\"actual\":" + std::to_string(op.actual_rows);
    out += ",\"factor\":" + FormatDouble(op.factor);
    out += "}";
  }
  out += "]}";
  return out;
}

RunObservation RunFromJson(const JsonValue& v) {
  RunObservation run;
  run.query_hash =
      std::strtoull(v.StringOr("hash", "0").c_str(), nullptr, 10);
  run.query = v.StringOr("query", "");
  run.ok = v.BoolOr("ok", true);
  run.aborted_limit = v.StringOr("aborted", "");
  run.wall_ns = static_cast<uint64_t>(v.NumberOr("wall_ns", 0));
  run.peak_bytes = static_cast<uint64_t>(v.NumberOr("peak_bytes", 0));
  run.rows_out = static_cast<uint64_t>(v.NumberOr("rows_out", 0));
  run.parallel_efficiency = v.NumberOr("par_eff", 0);
  run.par_workers = static_cast<uint32_t>(v.NumberOr("par_workers", 0));
  if (const JsonValue* ops = v.Find("ops");
      ops != nullptr && ops->is_array()) {
    run.ops.reserve(ops->array.size());
    for (const JsonValue& o : ops->array) {
      if (!o.is_object()) continue;
      RunObservation::Op op;
      op.path = o.StringOr("path", "");
      op.op = o.StringOr("op", "");
      op.est_rows = o.NumberOr("est", -1);
      op.actual_rows = static_cast<uint64_t>(o.NumberOr("actual", 0));
      op.factor = o.NumberOr("factor", 1);
      run.ops.push_back(std::move(op));
    }
  }
  return run;
}

std::string AggLineJson(const QueryHistory& h, uint64_t generation) {
  std::string out = "{\"v\":" + std::to_string(kHistoryFormatVersion);
  out += ",\"type\":\"agg\"";
  out += ",\"gen\":" + std::to_string(generation);
  out += ",\"hash\":\"" + std::to_string(h.query_hash) + "\"";
  if (!h.query.empty()) out += ",\"query\":\"" + JsonEscape(h.query) + "\"";
  out += ",\"runs\":" + std::to_string(h.runs);
  out += ",\"aborts\":" + std::to_string(h.aborts);
  out += ",\"errors\":" + std::to_string(h.errors);
  out += ",\"rows_out_last\":" + std::to_string(h.rows_out_last);
  out += ",\"par_eff_sum\":" + FormatDouble(h.par_eff_sum);
  out += ",\"par_runs\":" + std::to_string(h.par_runs);
  out += ",\"factor_worst\":" + FormatDouble(h.factor_worst);
  out += ",\"factor_sum\":" + FormatDouble(h.factor_sum);
  out += ",\"factor_count\":" + std::to_string(h.factor_count);
  out += ",\"wall\":" + DigestJson(h.wall);
  out += ",\"peak\":" + DigestJson(h.peak);
  out += ",\"trend\":[";
  for (size_t i = 0; i < h.wall_trend.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(h.wall_trend[i]);
  }
  out += "],\"ops\":[";
  bool first = true;
  for (const auto& [path, op] : h.ops) {
    if (!first) out += ",";
    first = false;
    out += "{\"path\":\"" + JsonEscape(path) + "\"";
    out += ",\"op\":\"" + JsonEscape(op.op) + "\"";
    out += ",\"runs\":" + std::to_string(op.runs);
    out += ",\"est_sum\":" + FormatDouble(op.est_sum);
    out += ",\"actual_sum\":" + FormatDouble(op.actual_sum);
    out += ",\"actual_last\":" + std::to_string(op.actual_last);
    out += ",\"factor_sum\":" + FormatDouble(op.factor_sum);
    out += ",\"factor_worst\":" + FormatDouble(op.factor_worst);
    out += "}";
  }
  out += "]}";
  return out;
}

QueryHistory AggFromJson(const JsonValue& v) {
  QueryHistory h;
  h.query_hash = std::strtoull(v.StringOr("hash", "0").c_str(), nullptr, 10);
  h.query = v.StringOr("query", "");
  h.runs = static_cast<uint64_t>(v.NumberOr("runs", 0));
  h.aborts = static_cast<uint64_t>(v.NumberOr("aborts", 0));
  h.errors = static_cast<uint64_t>(v.NumberOr("errors", 0));
  h.rows_out_last = static_cast<uint64_t>(v.NumberOr("rows_out_last", 0));
  h.par_eff_sum = v.NumberOr("par_eff_sum", 0);
  h.par_runs = static_cast<uint64_t>(v.NumberOr("par_runs", 0));
  h.factor_worst = v.NumberOr("factor_worst", 1);
  h.factor_sum = v.NumberOr("factor_sum", 0);
  h.factor_count = static_cast<uint64_t>(v.NumberOr("factor_count", 0));
  h.wall = DigestFromJson(v.Find("wall"), DefaultLatencyBucketsNs());
  h.peak = DigestFromJson(v.Find("peak"), DefaultSizeBucketsBytes());
  if (const JsonValue* trend = v.Find("trend");
      trend != nullptr && trend->is_array()) {
    for (const JsonValue& t : trend->array) {
      if (t.is_number()) {
        h.wall_trend.push_back(static_cast<uint64_t>(t.number));
      }
    }
    if (h.wall_trend.size() > kHistoryTrendLen) {
      h.wall_trend.erase(h.wall_trend.begin(),
                         h.wall_trend.end() -
                             static_cast<long>(kHistoryTrendLen));
    }
  }
  if (const JsonValue* ops = v.Find("ops");
      ops != nullptr && ops->is_array()) {
    for (const JsonValue& o : ops->array) {
      if (!o.is_object()) continue;
      OpHistory op;
      std::string path = o.StringOr("path", "");
      op.op = o.StringOr("op", "");
      op.runs = static_cast<uint64_t>(o.NumberOr("runs", 0));
      op.est_sum = o.NumberOr("est_sum", 0);
      op.actual_sum = o.NumberOr("actual_sum", 0);
      op.actual_last = static_cast<uint64_t>(o.NumberOr("actual_last", 0));
      op.factor_sum = o.NumberOr("factor_sum", 0);
      op.factor_worst = o.NumberOr("factor_worst", 1);
      h.ops.emplace(std::move(path), std::move(op));
    }
  }
  return h;
}

// Merges a loaded aggregate into an entry (normally the entry is fresh; a
// crash between compaction and truncate could leave two agg generations,
// and merging keeps every run counted).
void MergeHistory(QueryHistory& into, QueryHistory&& from) {
  if (into.runs == 0) {
    into = std::move(from);
    return;
  }
  if (!from.query.empty()) into.query = std::move(from.query);
  into.runs += from.runs;
  into.aborts += from.aborts;
  into.errors += from.errors;
  into.rows_out_last = from.rows_out_last;
  into.par_eff_sum += from.par_eff_sum;
  into.par_runs += from.par_runs;
  into.factor_worst = std::max(into.factor_worst, from.factor_worst);
  into.factor_sum += from.factor_sum;
  into.factor_count += from.factor_count;
  DigestMerge(into.wall, from.wall, DefaultLatencyBucketsNs());
  DigestMerge(into.peak, from.peak, DefaultSizeBucketsBytes());
  for (uint64_t t : from.wall_trend) into.wall_trend.push_back(t);
  if (into.wall_trend.size() > kHistoryTrendLen) {
    into.wall_trend.erase(into.wall_trend.begin(),
                          into.wall_trend.end() -
                              static_cast<long>(kHistoryTrendLen));
  }
  for (auto& [path, op] : from.ops) {
    OpHistory& slot = into.ops[path];
    if (slot.runs == 0) {
      slot = std::move(op);
      continue;
    }
    slot.op = std::move(op.op);
    slot.runs += op.runs;
    slot.est_sum += op.est_sum;
    slot.actual_sum += op.actual_sum;
    slot.actual_last = op.actual_last;
    slot.factor_sum += op.factor_sum;
    slot.factor_worst = std::max(slot.factor_worst, op.factor_worst);
  }
}

struct LoadedFile {
  std::unordered_map<uint64_t, QueryHistory> entries;
  size_t bad_lines = 0;
  uint64_t generation = 0;
  uint64_t total_runs = 0;
};

LoadedFile LoadHistoryText(std::string_view text) {
  LoadedFile loaded;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos
                                          : nl - pos);
    pos = nl == std::string_view::npos ? text.size() : nl + 1;
    if (line.empty()) continue;
    auto json = ParseJson(line);
    if (!json.ok() || !json->is_object()) {
      // Crash-safe loading: a tail line truncated mid-write (or any other
      // corruption) is skipped and counted, never fatal.
      ++loaded.bad_lines;
      continue;
    }
    std::string type = json->StringOr("type", "");
    if (type == "agg") {
      QueryHistory h = AggFromJson(*json);
      loaded.generation = std::max(
          loaded.generation,
          static_cast<uint64_t>(json->NumberOr("gen", 0)));
      loaded.total_runs += h.runs;
      MergeHistory(loaded.entries[h.query_hash], std::move(h));
    } else if (type == "run") {
      RunObservation run = RunFromJson(*json);
      FoldRunObservation(loaded.entries[run.query_hash], run);
      ++loaded.total_runs;
    } else {
      ++loaded.bad_lines;
    }
  }
  return loaded;
}

std::vector<QueryHistory> SortedEntries(
    const std::unordered_map<uint64_t, QueryHistory>& entries) {
  std::vector<QueryHistory> out;
  out.reserve(entries.size());
  for (const auto& [hash, h] : entries) out.push_back(h);
  std::sort(out.begin(), out.end(),
            [](const QueryHistory& a, const QueryHistory& b) {
              return a.query_hash < b.query_hash;
            });
  return out;
}

}  // namespace

const std::vector<double>& DefaultSizeBucketsBytes() {
  static const std::vector<double>* bounds = [] {
    auto* b = new std::vector<double>();
    for (double v = 1024; v <= 16e9; v *= 4) b->push_back(v);
    return b;
  }();
  return *bounds;
}

void FoldRunObservation(QueryHistory& agg, const RunObservation& run) {
  agg.query_hash = run.query_hash;
  if (!run.query.empty()) agg.query = run.query;
  ++agg.runs;
  if (!run.ok) {
    if (run.aborted_limit.empty()) {
      ++agg.errors;
    } else {
      ++agg.aborts;
    }
  }
  agg.rows_out_last = run.rows_out;
  DigestObserve(agg.wall, DefaultLatencyBucketsNs(),
                static_cast<double>(run.wall_ns));
  DigestObserve(agg.peak, DefaultSizeBucketsBytes(),
                static_cast<double>(run.peak_bytes));
  if (run.par_workers > 0) {
    agg.par_eff_sum += run.parallel_efficiency;
    ++agg.par_runs;
  }
  agg.wall_trend.push_back(run.wall_ns);
  if (agg.wall_trend.size() > kHistoryTrendLen) {
    agg.wall_trend.erase(agg.wall_trend.begin());
  }
  for (const RunObservation::Op& op : run.ops) {
    OpHistory& slot = agg.ops[op.path];
    slot.op = op.op;
    ++slot.runs;
    slot.est_sum += op.est_rows;
    slot.actual_sum += static_cast<double>(op.actual_rows);
    slot.actual_last = op.actual_rows;
    slot.factor_sum += op.factor;
    slot.factor_worst = std::max(slot.factor_worst, op.factor);
    agg.factor_worst = std::max(agg.factor_worst, op.factor);
    agg.factor_sum += op.factor;
    ++agg.factor_count;
  }
}

std::string ResolveHistoryPath(const std::string& dir_or_file) {
  struct stat st{};
  if (::stat(dir_or_file.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    return dir_or_file + "/" + kHistoryFileName;
  }
  return dir_or_file;
}

StatusOr<HistoryScan> ReadHistoryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return InvalidArgumentError("cannot open history store: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  LoadedFile loaded = LoadHistoryText(buf.str());
  HistoryScan scan;
  scan.entries = SortedEntries(loaded.entries);
  scan.bad_lines = loaded.bad_lines;
  scan.generation = loaded.generation;
  scan.total_runs = loaded.total_runs;
  return scan;
}

double HistoryWallPercentile(const QueryHistory& h, double p) {
  static const Histogram* hist = new Histogram(DefaultLatencyBucketsNs());
  if (h.wall.counts.size() != hist->bounds().size() + 1) return 0;
  return hist->PercentileOf(h.wall, p);
}

StatusOr<std::unique_ptr<HistoryStore>> HistoryStore::Open(
    const std::string& dir, Options options) {
  struct stat st{};
  if (::stat(dir.c_str(), &st) != 0) {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return InvalidArgumentError("cannot create history dir: " + dir + ": " +
                                  std::strerror(errno));
    }
  } else if (!S_ISDIR(st.st_mode)) {
    return InvalidArgumentError("history dir is not a directory: " + dir);
  }
  std::unique_ptr<HistoryStore> store(new HistoryStore());
  store->path_ = dir + "/" + kHistoryFileName;
  store->options_ = options;
  {
    std::ifstream in(store->path_, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      LoadedFile loaded = LoadHistoryText(buf.str());
      store->entries_ = std::move(loaded.entries);
      store->generation_ = loaded.generation;
      store->bad_lines_ = loaded.bad_lines;
      store->total_runs_ = loaded.total_runs;
    }
  }
  int fd = ::open(store->path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return InvalidArgumentError("cannot open history store: " + store->path_ +
                                ": " + std::strerror(errno));
  }
  store->fd_ = fd;
  off_t size = ::lseek(fd, 0, SEEK_END);
  store->file_bytes_ = size > 0 ? static_cast<uint64_t>(size) : 0;
  store->compact_floor_ = store->file_bytes_;
  // Repair a tail torn by a crash mid-write: without the newline the next
  // append would merge into the partial line and corrupt two records.
  if (store->file_bytes_ > 0) {
    std::ifstream tail(store->path_, std::ios::binary);
    tail.seekg(-1, std::ios::end);
    char last = '\n';
    if (tail.get(last) && last != '\n') {
      if (WriteAll(fd, "\n", 1)) ++store->file_bytes_;
    }
  }
  HistoryMetrics::Get().queries.Set(
      static_cast<int64_t>(store->entries_.size()));
  return store;
}

HistoryStore::~HistoryStore() {
  if (fd_ >= 0) ::close(fd_);
}

void HistoryStore::RecordRun(const RunObservation& run) {
  std::string line = RunLineJson(run);
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  FoldRunObservation(entries_[run.query_hash], run);
  ++total_runs_;
  if (fd_ >= 0 && WriteAll(fd_, line.data(), line.size())) {
    file_bytes_ += line.size();
  }
  HistoryMetrics::Get().runs_recorded.Add();
  HistoryMetrics::Get().queries.Set(static_cast<int64_t>(entries_.size()));
  if (options_.max_bytes > 0 && file_bytes_ > options_.max_bytes &&
      file_bytes_ > 2 * compact_floor_) {
    CompactLocked();
  }
}

void HistoryStore::CompactLocked() {
  if (fd_ < 0) return;
  std::string tmp = path_ + ".tmp";
  int tmp_fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) return;
  uint64_t next_gen = generation_ + 1;
  uint64_t written = 0;
  bool ok = true;
  for (const QueryHistory& h : SortedEntries(entries_)) {
    std::string line = AggLineJson(h, next_gen);
    line += '\n';
    if (!WriteAll(tmp_fd, line.data(), line.size())) {
      ok = false;
      break;
    }
    written += line.size();
  }
  ::close(tmp_fd);
  if (!ok || ::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return;
  }
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND, 0644);
  file_bytes_ = written;
  compact_floor_ = written;
  generation_ = next_gen;
  HistoryMetrics::Get().compactions.Add();
}

void HistoryStore::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  CompactLocked();
}

std::optional<HistoryStore::EstimateCorrection> HistoryStore::LookupEstimate(
    uint64_t query_hash, const std::string& op_path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(query_hash);
  if (it == entries_.end()) return std::nullopt;
  auto op = it->second.ops.find(op_path);
  if (op == it->second.ops.end() || op->second.runs == 0) {
    return std::nullopt;
  }
  return EstimateCorrection{op->second.MeanActual(), op->second.runs};
}

HistoryScan HistoryStore::Scan() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistoryScan scan;
  scan.entries = SortedEntries(entries_);
  scan.bad_lines = bad_lines_;
  scan.generation = generation_;
  scan.total_runs = total_runs_;
  return scan;
}

size_t HistoryStore::query_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t HistoryStore::total_runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_runs_;
}

uint64_t HistoryStore::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

size_t HistoryStore::bad_lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bad_lines_;
}

namespace {
std::atomic<HistoryStore*> g_history_store{nullptr};
}  // namespace

HistoryStore* GetHistoryStore() {
  return g_history_store.load(std::memory_order_acquire);
}

void SetHistoryStore(HistoryStore* store) {
  g_history_store.store(store, std::memory_order_release);
}

bool InitHistoryFromEnv() {
  static bool enabled = [] {
    const char* dir = std::getenv("EMCALC_HISTORY_DIR");
    if (dir == nullptr || *dir == '\0') return false;
    auto store = HistoryStore::Open(dir);
    if (!store.ok()) {
      std::fprintf(stderr, "emcalc: EMCALC_HISTORY_DIR: %s\n",
                   store.status().ToString().c_str());
      return false;
    }
    // Process-lifetime sink, intentionally leaked like the env query log.
    SetHistoryStore(store->release());
    return true;
  }();
  return enabled;
}

}  // namespace emcalc::obs
