#include "src/obs/resource.h"

#include <cstdlib>

#include "src/obs/flight_recorder.h"
#include "src/obs/trace.h"

namespace emcalc::obs {

MemoryAccountant& MemoryAccountant::Instance() {
  // Leaked on purpose: instrumented containers may be destroyed after any
  // static destruction order.
  static MemoryAccountant* accountant = new MemoryAccountant();
  return *accountant;
}

namespace {

thread_local MemoryScopeState t_scope;

uint64_t EnvLimit(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<uint64_t>(v);
}

}  // namespace

MemoryScope::MemoryScope(QueryMemory* query, int op_id) : prev_(t_scope) {
  t_scope = MemoryScopeState{query, op_id};
}

MemoryScope::MemoryScope(const MemoryScopeState& state) : prev_(t_scope) {
  t_scope = state;
}

MemoryScope::~MemoryScope() { t_scope = prev_; }

MemoryScopeState MemoryScope::Current() { return t_scope; }

void ChargeBytes(int64_t delta) {
  if (delta == 0) return;
  MemoryAccountant::Instance().Charge(delta);
  if (t_scope.query != nullptr) t_scope.query->Charge(delta, t_scope.op_id);
  // Large allocations/releases are worth a flight-recorder breadcrumb; the
  // threshold keeps per-row churn out of the ring.
  constexpr int64_t kFlightMemoryThreshold = 256 * 1024;
  if (delta >= kFlightMemoryThreshold || delta <= -kFlightMemoryThreshold) {
    FlightRecord(FlightEventKind::kMemory,
                 delta > 0 ? "mem.charge" : "mem.release",
                 static_cast<uint64_t>(delta > 0 ? delta : -delta));
  }
}

ResourceLimits ResourceLimitsFromEnv() {
  ResourceLimits limits;
  limits.max_bytes = EnvLimit("EMCALC_MAX_QUERY_BYTES");
  limits.max_wall_ms = EnvLimit("EMCALC_MAX_QUERY_MS");
  return limits;
}

ResourceLimits EffectiveLimits(const ResourceLimits& opts) {
  ResourceLimits env = ResourceLimitsFromEnv();
  ResourceLimits merged = opts;
  if (merged.max_bytes == 0) merged.max_bytes = env.max_bytes;
  if (merged.max_wall_ms == 0) merged.max_wall_ms = env.max_wall_ms;
  return merged;
}

const char* ResourceLimitKindName(ResourceLimitKind kind) {
  switch (kind) {
    case ResourceLimitKind::kNone: return "none";
    case ResourceLimitKind::kBytes: return "max_bytes";
    case ResourceLimitKind::kRows: return "max_rows";
    case ResourceLimitKind::kTermClosure: return "max_term_closure_size";
    case ResourceLimitKind::kDeadline: return "max_wall_ms";
  }
  return "?";
}

ResourceGovernor::ResourceGovernor(const ResourceLimits& limits,
                                   const QueryMemory* memory,
                                   uint64_t start_ns)
    : limits_(limits),
      memory_(memory),
      enabled_(limits.max_bytes != 0 || limits.max_rows != 0 ||
               limits.max_term_closure_size != 0 || limits.max_wall_ms != 0) {
  if (limits_.max_wall_ms != 0) {
    deadline_ns_ = start_ns + limits_.max_wall_ms * 1'000'000ULL;
  }
}

void ResourceGovernor::Trip(ResourceLimitKind kind, uint64_t used,
                            uint64_t limit) {
  bool expected = false;
  // First trip wins: later (possibly concurrent) trips keep the original
  // blame so the surfaced limit is deterministic per execution.
  if (tripped_.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    kind_.store(static_cast<uint8_t>(kind), std::memory_order_release);
    used_.store(used, std::memory_order_release);
    limit_.store(limit, std::memory_order_release);
    FlightRecord(FlightEventKind::kGovernorTrip, ResourceLimitKindName(kind),
                 used);
  }
}

bool ResourceGovernor::Check() {
  if (!enabled_) return false;
  if (tripped_.load(std::memory_order_acquire)) return true;
  if (limits_.max_bytes != 0 && memory_ != nullptr) {
    int64_t bytes = memory_->bytes();
    if (bytes > 0 && static_cast<uint64_t>(bytes) > limits_.max_bytes) {
      Trip(ResourceLimitKind::kBytes, static_cast<uint64_t>(bytes),
           limits_.max_bytes);
      return true;
    }
  }
  if (limits_.max_rows != 0) {
    uint64_t rows = rows_.load(std::memory_order_relaxed);
    if (rows > limits_.max_rows) {
      Trip(ResourceLimitKind::kRows, rows, limits_.max_rows);
      return true;
    }
  }
  if (deadline_ns_ != 0) {
    uint64_t now = NowNs();
    if (now > deadline_ns_) {
      Trip(ResourceLimitKind::kDeadline,
           (now - (deadline_ns_ - limits_.max_wall_ms * 1'000'000ULL)) /
               1'000'000ULL,
           limits_.max_wall_ms);
      return true;
    }
  }
  return false;
}

Status ResourceGovernor::CheckClosure(uint64_t closure_size) {
  if (enabled_ && limits_.max_term_closure_size != 0 &&
      closure_size > limits_.max_term_closure_size) {
    Trip(ResourceLimitKind::kTermClosure, closure_size,
         limits_.max_term_closure_size);
    return status();
  }
  Check();
  return status();
}

Status ResourceGovernor::status() const {
  if (!tripped()) return Status::Ok();
  ResourceLimitKind kind = tripped_limit();
  std::string unit;
  switch (kind) {
    case ResourceLimitKind::kBytes: unit = " bytes"; break;
    case ResourceLimitKind::kRows: unit = " rows"; break;
    case ResourceLimitKind::kTermClosure: unit = " values"; break;
    case ResourceLimitKind::kDeadline: unit = " ms"; break;
    case ResourceLimitKind::kNone: break;
  }
  return ResourceExhaustedError(
      std::string(ResourceLimitKindName(kind)) + " exceeded: used " +
      std::to_string(used_.load(std::memory_order_acquire)) + unit +
      ", limit " + std::to_string(limit_.load(std::memory_order_acquire)));
}

}  // namespace emcalc::obs
