#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/base/check.h"
#include "src/obs/json.h"

namespace emcalc::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  EMCALC_CHECK(!bounds_.empty());
  EMCALC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  counts_.assign(bounds_.size() + 1, 0);
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

void Histogram::Observe(double v) {
  size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), v) -
                          bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[bucket];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0;
  auto rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      return i < bounds_.size() ? bounds_[i] : max_;
    }
  }
  return max_;
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.counts = counts_;
  return snap;
}

double Histogram::PercentileOf(const Snapshot& snap, double p) const {
  if (snap.count == 0) return 0;
  auto rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(snap.count)));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < snap.counts.size(); ++i) {
    cumulative += snap.counts[i];
    if (cumulative >= rank) {
      return i < bounds_.size() ? bounds_[i] : snap.max;
    }
  }
  return snap.max;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.assign(bounds_.size() + 1, 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

const std::vector<double>& DefaultLatencyBucketsNs() {
  static const std::vector<double>* buckets = [] {
    auto* b = new std::vector<double>();
    for (double bound = 1e3; bound < 2e10; bound *= 4) b->push_back(bound);
    return b;
  }();
  return *buckets;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  EMCALC_CHECK(gauges_.find(name) == gauges_.end() &&
               histograms_.find(name) == histograms_.end());
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  EMCALC_CHECK(counters_.find(name) == counters_.end() &&
               histograms_.find(name) == histograms_.end());
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  EMCALC_CHECK(counters_.find(name) == counters_.end() &&
               gauges_.find(name) == gauges_.end());
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = DefaultLatencyBucketsNs();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

namespace {

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::TextSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += name + " " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    // One snapshot per histogram: count/sum/percentiles come from the same
    // state even while observers run (the per-accessor calls each lock
    // separately and could interleave with a concurrent Observe/Reset).
    Histogram::Snapshot snap = h->TakeSnapshot();
    out += name + " count=" + std::to_string(snap.count);
    if (snap.count > 0) {
      out += " sum=" + FormatDouble(snap.sum);
      out += " p50=" + FormatDouble(h->PercentileOf(snap, 50));
      out += " p95=" + FormatDouble(h->PercentileOf(snap, 95));
      out += " p99=" + FormatDouble(h->PercentileOf(snap, 99));
      out += " max=" + FormatDouble(snap.max);
    }
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    Histogram::Snapshot snap = h->TakeSnapshot();
    out += "\"" + JsonEscape(name) + "\":{\"count\":" +
           std::to_string(snap.count);
    if (snap.count > 0) {
      out += ",\"sum\":" + FormatDouble(snap.sum);
      out += ",\"p50\":" + FormatDouble(h->PercentileOf(snap, 50));
      out += ",\"p95\":" + FormatDouble(h->PercentileOf(snap, 95));
      out += ",\"p99\":" + FormatDouble(h->PercentileOf(snap, 99));
      out += ",\"max\":" + FormatDouble(snap.max);
    }
    out += "}";
  }
  out += "}}";
  return out;
}

namespace {

// `compile.wall_ns` -> `emcalc_compile_wall_ns`; anything outside
// [a-zA-Z0-9_] becomes '_' (Prometheus metric-name charset).
std::string PrometheusName(const std::string& name) {
  std::string out = "emcalc_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    std::string pn = PrometheusName(name);
    out += "# TYPE " + pn + " counter\n";
    out += pn + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    std::string pn = PrometheusName(name);
    out += "# TYPE " + pn + " gauge\n";
    out += pn + " " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    std::string pn = PrometheusName(name);
    Histogram::Snapshot snap = h->TakeSnapshot();
    out += "# TYPE " + pn + " histogram\n";
    uint64_t cumulative = 0;
    const std::vector<double>& bounds = h->bounds();
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      cumulative += snap.counts[i];
      std::string le = i < bounds.size() ? FormatDouble(bounds[i]) : "+Inf";
      out += pn + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative) +
             "\n";
    }
    out += pn + "_sum " + FormatDouble(snap.count > 0 ? snap.sum : 0) + "\n";
    out += pn + "_count " + std::to_string(snap.count) + "\n";
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace emcalc::obs
