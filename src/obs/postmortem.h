// Postmortem bundles: one JSON file per failure, written when a query is
// aborted by the ResourceGovernor, finishes with a non-OK status, or the
// process takes a fatal signal. A bundle contains everything needed to
// reconstruct the last moments of the query offline:
//
//   - the drained flight-recorder rings (recent span/governor/memory events)
//   - the partial ExecProfile (per-operator rows, wall time, and memory
//     attribution), passed in pre-rendered as JSON so obs/ stays below exec/
//   - a metrics-registry snapshot
//   - the query text and its FNV-1a hash, plus the tripped limit name
//
// Bundles land in the directory configured with SetPostmortemDir (or the
// EMCALC_POSTMORTEM_DIR env knob); with no directory configured the writer
// is disabled and costs one atomic load per failure. `emcalc-inspect
// bundle <file>` renders a bundle, `emcalc-inspect trace <file>` converts
// its ring into a Chrome trace.
//
// The fatal-signal path (InstallCrashHandler; SIGSEGV/SIGABRT/SIGBUS/
// SIGFPE) is async-signal-safe: it formats with stack buffers and write(2)
// only, reads the current-query slate from a preallocated buffer, skips
// the metrics snapshot (mutex-guarded), and best-effort-flushes the query
// log before re-raising the signal with default disposition.
#ifndef EMCALC_OBS_POSTMORTEM_H_
#define EMCALC_OBS_POSTMORTEM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/base/status.h"

namespace emcalc::obs {

// Directory for bundles; empty string disables the writer. Thread-safe.
void SetPostmortemDir(const std::string& dir);
std::string PostmortemDir();
bool PostmortemEnabled();

// EMCALC_POSTMORTEM_DIR=<dir>: enables bundle writing. Returns true when
// enabled. Idempotent per process (first call wins).
bool InitPostmortemFromEnv();

// Registers the fatal-signal handler (SIGSEGV, SIGABRT, SIGBUS, SIGFPE).
// Idempotent. Safe to call before a directory is configured; the handler
// re-checks at signal time.
void InstallCrashHandler();

// Publishes the query that is currently executing so the signal handler
// can include it in a crash bundle. Text is truncated to an internal
// fixed-size slate. Prefer the RAII CurrentQueryScope.
void SetCurrentQuery(std::string_view text, uint64_t query_hash);
void ClearCurrentQuery();

class CurrentQueryScope {
 public:
  CurrentQueryScope(std::string_view text, uint64_t query_hash) {
    SetCurrentQuery(text, query_hash);
  }
  ~CurrentQueryScope() { ClearCurrentQuery(); }
  CurrentQueryScope(const CurrentQueryScope&) = delete;
  CurrentQueryScope& operator=(const CurrentQueryScope&) = delete;
};

// Everything the normal-path writer needs. All fields optional except
// `reason`.
struct PostmortemInfo {
  std::string reason;         // "governor_abort" | "run_error" | "manual"
  std::string query;
  uint64_t query_hash = 0;
  std::string error;          // status string of the failed run
  std::string aborted_limit;  // tripped limit name, when governor-aborted
  std::string profile_json;   // pre-rendered ExecProfile JSON (may be empty)
};

// Writes one bundle (drains the flight recorder, snapshots metrics and pool
// telemetry) and returns its path. Fails when no directory is configured or
// the file cannot be created.
StatusOr<std::string> WritePostmortem(const PostmortemInfo& info);

// Total bundles written by this process (normal path only).
uint64_t PostmortemCount();

}  // namespace emcalc::obs

#endif  // EMCALC_OBS_POSTMORTEM_H_
