// Structured per-query logging: one JSON object per line (JSON Lines).
//
// The compiler emits a "compile" record per Compile/CompileParameterized
// call (safety verdict, ||phi|| level proxy, FinD count, RANF size, plan
// node count, per-phase durations, error status) and a "run" record per
// execution (rows out, wall time, error status). Records share the query
// text hash so compile and run lines join.
//
// A process-global sink is installed with SetQueryLog (or EMCALC_QUERY_LOG
// via InitQueryLogFromEnv); with none installed, logging is a single
// atomic load per query.
#ifndef EMCALC_OBS_QUERY_LOG_H_
#define EMCALC_OBS_QUERY_LOG_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/diag/diagnostic.h"

namespace emcalc::obs {

// One query-log line. Field availability depends on `event`:
// "compile" records fill the analysis fields; "run" records fill rows_out.
struct QueryLogRecord {
  std::string event;      // "compile" | "run"
  uint64_t query_hash = 0;
  std::string query;      // raw query text (may be empty if unavailable)
  bool ok = true;
  std::string error;      // status string when !ok
  bool em_allowed = false;
  int level = 0;          // function-application count (||phi|| proxy)
  int find_count = 0;     // |bd(body)| after the safety check
  int ranf_size = 0;      // formula nodes in the RANF form
  int plan_nodes = 0;     // nodes in the optimized plan
  uint64_t rows_out = 0;  // answer rows ("run" records)
  uint64_t wall_ns = 0;   // total compile / run wall time
  // Interned values in the process StringPool when the record was emitted
  // (both events): tracks intern-pool growth across a workload.
  uint64_t string_pool_size = 0;
  // Effective worker-thread cap of the execution ("run" records; 0 until
  // populated). See ExecOptions::num_threads.
  uint64_t exec_threads = 0;
  // Memory accounting of the execution ("run" records): the query-level
  // high-water mark and cumulative allocation of tracked bytes.
  uint64_t peak_bytes = 0;
  uint64_t bytes_allocated = 0;
  // Name of the resource limit that aborted the execution ("max_bytes",
  // "max_rows", ...); empty when the query ran to completion.
  std::string aborted_limit;
  // Plan-feedback summary ("run" records): the plan's worst estimate-vs-
  // actual misestimation factor and the operator responsible. factor 0
  // means no feedback was computed.
  double misestimate_factor = 0;
  std::string misestimate_op;
  // Operators whose estimate was corrected from the history store
  // ("run" records); 0 when every estimate was heuristic.
  uint64_t est_history_ops = 0;
  // Contention telemetry ("run" records): aggregate parallel efficiency
  // busy/(wall*workers) over the plan's parallel regions, in [0,1], and the
  // largest worker count any operator used. 0 when nothing ran in parallel.
  double parallel_efficiency = 0;
  uint64_t par_workers = 0;
  std::vector<std::pair<std::string, uint64_t>> phase_ns;  // per-phase
  // Front-end diagnostics attached to "compile" records (lint findings and,
  // on rejection, the safety blame trace). Populated when the compiler runs
  // with EMCALC_LINT=1; see docs/diagnostics.md for the JSON schema.
  std::vector<diag::Diagnostic> diagnostics;
};

// FNV-1a of the query text; stable across processes.
uint64_t HashQueryText(std::string_view text);

// One line, no trailing newline.
std::string QueryLogRecordToJson(const QueryLogRecord& record);

// Inverse of QueryLogRecordToJson (accepts any JSON object with the
// record's fields; unknown fields are ignored).
StatusOr<QueryLogRecord> ParseQueryLogRecord(std::string_view line);

// A thread-safe JSON-Lines sink.
//
// File mode (Open) buffers lines and flushes on error/abort records, when
// the buffer fills, on Flush(), and at destruction — so a clipped query's
// record is on disk even if the process dies right after. When a rotation
// cap is set (EMCALC_QUERY_LOG_MAX_BYTES, or SetRotationMaxBytes), a file
// that reaches the cap is renamed to `<path>.1` (replacing any previous
// rotation) and a fresh file is started.
//
// Stream mode (borrowed ostream; tests) writes through immediately.
class QueryLog {
 public:
  // Borrow an existing stream (tests); must outlive the log.
  explicit QueryLog(std::ostream* sink) : sink_(sink) {}

  // Appends to `path`. Applies EMCALC_QUERY_LOG_MAX_BYTES when set.
  static StatusOr<std::unique_ptr<QueryLog>> Open(const std::string& path);

  ~QueryLog();

  void Write(const QueryLogRecord& record);

  // Forces buffered lines to disk (file mode; no-op in stream mode).
  void Flush();

  // Best-effort flush for signal handlers: skips if the lock is held,
  // writes with write(2) only. Returns true when the buffer was drained.
  bool TrySignalFlush();

  // 0 disables rotation.
  void SetRotationMaxBytes(uint64_t bytes);
  uint64_t rotations() const;

 private:
  QueryLog() = default;
  void FlushLocked();
  void MaybeRotateLocked();

  mutable std::mutex mu_;
  std::ostream* sink_ = nullptr;  // stream mode only
  int fd_ = -1;                   // file mode only
  std::string path_;
  std::string buf_;
  uint64_t file_bytes_ = 0;
  uint64_t max_bytes_ = 0;
  uint64_t rotations_ = 0;
};

// The process-global query log; null (disabled) by default. Borrowed, not
// owned.
QueryLog* GetQueryLog();
void SetQueryLog(QueryLog* log);

// EMCALC_QUERY_LOG=<path>: installs a process-lifetime query log appending
// to <path>. Returns true when enabled. Idempotent.
bool InitQueryLogFromEnv();

// Async-signal-safe best-effort flush of the global query log (if any).
// Called from the fatal-signal postmortem path.
void QueryLogSignalFlush();

}  // namespace emcalc::obs

#endif  // EMCALC_OBS_QUERY_LOG_H_
