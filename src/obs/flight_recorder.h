// Always-on flight recorder: a per-thread, lock-free ring buffer of recent
// observability events (span begin/end, governor trips, large memory deltas,
// query start/end). Unlike the Tracer, which must be armed up front and
// retains everything, the recorder is on by default and keeps only the last
// few thousand events per thread, so the moments before an abort or crash
// are recoverable after the fact.
//
// Design constraints:
//  - Recording must be cheap enough to leave on in production (<1% of query
//    wall time; gated by bench_obs_overhead). Each event is four relaxed
//    atomic stores plus one release store of the ring head.
//  - Each ring has exactly one writer (its owning thread), so no CAS loops
//    are needed. Readers (drain, postmortem, signal handler) may observe a
//    torn slot while the writer laps them; drained events are validated and
//    rare torn slots dropped.
//  - The ring registry is a fixed-size array of atomic pointers so a fatal-
//    signal handler can walk it without taking locks or allocating.
#ifndef EMCALC_OBS_FLIGHT_RECORDER_H_
#define EMCALC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace emcalc::obs {

enum class FlightEventKind : uint8_t {
  kNone = 0,  // unwritten slot
  kSpanBegin = 1,
  kSpanEnd = 2,
  kGovernorTrip = 3,
  kMemory = 4,
  kQueryStart = 5,
  kQueryEnd = 6,
  kMark = 7,
};

// Stable lower-case name for JSON output ("span_begin", ...).
const char* FlightEventKindName(FlightEventKind kind);

// A drained event. `name` points at a string literal recorded by the writer
// (span names, limit names); it is never freed.
struct FlightEvent {
  uint64_t ts_ns = 0;
  uint64_t arg = 0;
  const char* name = "";
  uint32_t tid = 0;
  FlightEventKind kind = FlightEventKind::kNone;
};

// The recorder is enabled by default; EMCALC_FLIGHT_RECORDER=0 disables it
// and EMCALC_FLIGHT_RING_EVENTS overrides the per-thread capacity (rounded
// up to a power of two, default 4096). Both are read once, lazily.
bool FlightRecorderEnabled();
void SetFlightRecorderEnabled(bool enabled);
size_t FlightRingCapacity();

// Records one event into the calling thread's ring. `name` must be a
// pointer with static storage duration (string literal or interned).
void FlightRecord(FlightEventKind kind, const char* name, uint64_t arg = 0);

// Merges all rings into one timestamp-sorted vector of the most recent
// events (up to capacity per thread). Safe to call while writers run.
std::vector<FlightEvent> DrainFlightRecorder();

// Renders events as a JSON array of objects
// [{"ts_ns":..,"tid":..,"kind":"span_begin","name":"..","arg":..},..].
std::string FlightEventsToJson(const std::vector<FlightEvent>& events);

// Async-signal-safe: walks the ring registry and writes the same JSON array
// directly to `fd` using only write(2) and stack buffers. Used by the fatal
// signal handler; no allocation, locks, or formatted I/O.
void DumpFlightRingsJson(int fd);

// Test hook: drops the calling thread's ring so a fresh capacity takes
// effect and drained output is limited to events recorded afterwards.
void ResetFlightRingForTesting(size_t capacity_events);

}  // namespace emcalc::obs

#endif  // EMCALC_OBS_FLIGHT_RECORDER_H_
