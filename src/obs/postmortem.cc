#include "src/obs/postmortem.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <system_error>

#include "src/base/thread_pool.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/query_log.h"

namespace emcalc::obs {

namespace {

// Directory state. The std::string is for the normal path; the fixed
// buffer mirror is what the signal handler reads (no allocation, no lock).
std::mutex g_dir_mu;
std::string* g_dir = new std::string();  // never freed
constexpr size_t kDirBufSize = 512;
char g_dir_sig[kDirBufSize];
std::atomic<size_t> g_dir_sig_len{0};

// Current-query slate: writers serialize on a spinlock; the crash handler
// reads without it (best effort — a torn read yields mangled text, never
// out-of-bounds access, because the length is loaded once).
constexpr size_t kQuerySlateSize = 2048;
std::atomic_flag g_query_lock = ATOMIC_FLAG_INIT;
char g_query_text[kQuerySlateSize];
std::atomic<size_t> g_query_len{0};
std::atomic<uint64_t> g_query_hash{0};

std::atomic<uint64_t> g_bundle_seq{0};
std::atomic<uint64_t> g_bundles_written{0};

// ---- async-signal-safe writers (write(2) + stack buffers only) ----

void RawWrite(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
}

void RawWriteStr(int fd, const char* s) { RawWrite(fd, s, std::strlen(s)); }

void RawWriteU64(int fd, uint64_t v) {
  char buf[24];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  RawWrite(fd, p, static_cast<size_t>(buf + sizeof(buf) - p));
}

// Characters that would need JSON escaping are replaced, not escaped, to
// keep the handler trivial; postmortem text is for humans and inspect,
// which tolerates the substitution.
void RawWriteSanitized(int fd, const char* s, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    char c = s[i];
    if (c == '"' || c == '\\') c = '\'';
    if (static_cast<unsigned char>(c) < 0x20) c = ' ';
    RawWrite(fd, &c, 1);
  }
}

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    default: return "SIGNAL";
  }
}

void CrashHandler(int sig) {
  // Restore default disposition first: if the dump itself faults, the
  // process still dies instead of recursing.
  ::signal(sig, SIG_DFL);
  size_t dirlen = g_dir_sig_len.load(std::memory_order_acquire);
  if (dirlen > 0) {
    char path[kDirBufSize + 64];
    std::memcpy(path, g_dir_sig, dirlen);
    size_t off = dirlen;
    const char prefix[] = "/postmortem-crash-";
    std::memcpy(path + off, prefix, sizeof(prefix) - 1);
    off += sizeof(prefix) - 1;
    uint64_t pid = static_cast<uint64_t>(::getpid());
    char digits[24];
    char* p = digits + sizeof(digits);
    do {
      *--p = static_cast<char>('0' + pid % 10);
      pid /= 10;
    } while (pid != 0);
    size_t ndigits = static_cast<size_t>(digits + sizeof(digits) - p);
    std::memcpy(path + off, p, ndigits);
    off += ndigits;
    const char suffix[] = ".json";
    std::memcpy(path + off, suffix, sizeof(suffix));  // includes the NUL
    int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      RawWriteStr(fd, "{\"schema\":1,\"reason\":\"signal\",\"signal\":");
      RawWriteU64(fd, static_cast<uint64_t>(sig));
      RawWriteStr(fd, ",\"signal_name\":\"");
      RawWriteStr(fd, SignalName(sig));
      RawWriteStr(fd, "\",\"query_hash\":\"");
      RawWriteU64(fd, g_query_hash.load(std::memory_order_relaxed));
      RawWriteStr(fd, "\"");
      size_t qlen = std::min(g_query_len.load(std::memory_order_acquire),
                             kQuerySlateSize);
      if (qlen > 0) {
        RawWriteStr(fd, ",\"query\":\"");
        RawWriteSanitized(fd, g_query_text, qlen);
        RawWriteStr(fd, "\"");
      }
      RawWriteStr(fd, ",\"flight_recorder\":");
      DumpFlightRingsJson(fd);
      RawWriteStr(fd, "}\n");
      ::close(fd);
    }
  }
  // A clipped query's run record may still be buffered; drain it if the
  // log lock is free.
  QueryLogSignalFlush();
  ::raise(sig);
}

}  // namespace

void SetPostmortemDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(g_dir_mu);
  *g_dir = dir;
  // Strip a trailing slash so path assembly is uniform.
  while (!g_dir->empty() && g_dir->back() == '/') g_dir->pop_back();
  // Create the directory eagerly: the whole point is catching failures
  // nobody predicted, so the first abort must not be lost to a missing
  // directory (and the signal path cannot mkdir). Best effort; a write
  // to a still-missing directory surfaces the error then.
  if (!g_dir->empty()) {
    std::error_code ec;
    std::filesystem::create_directories(*g_dir, ec);
  }
  size_t n = std::min(g_dir->size(), kDirBufSize - 1);
  std::memcpy(g_dir_sig, g_dir->data(), n);
  g_dir_sig[n] = '\0';
  g_dir_sig_len.store(n, std::memory_order_release);
}

std::string PostmortemDir() {
  std::lock_guard<std::mutex> lock(g_dir_mu);
  return *g_dir;
}

bool PostmortemEnabled() {
  return g_dir_sig_len.load(std::memory_order_acquire) > 0;
}

bool InitPostmortemFromEnv() {
  static const bool enabled = [] {
    const char* dir = std::getenv("EMCALC_POSTMORTEM_DIR");
    if (dir == nullptr || *dir == '\0') return false;
    SetPostmortemDir(dir);
    InstallCrashHandler();
    return true;
  }();
  return enabled;
}

void InstallCrashHandler() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa = {};
    sa.sa_handler = CrashHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
      ::sigaction(sig, &sa, nullptr);
    }
  });
}

void SetCurrentQuery(std::string_view text, uint64_t query_hash) {
  while (g_query_lock.test_and_set(std::memory_order_acquire)) {
  }
  size_t n = std::min(text.size(), kQuerySlateSize);
  std::memcpy(g_query_text, text.data(), n);
  g_query_len.store(n, std::memory_order_release);
  g_query_hash.store(query_hash, std::memory_order_relaxed);
  g_query_lock.clear(std::memory_order_release);
}

void ClearCurrentQuery() {
  while (g_query_lock.test_and_set(std::memory_order_acquire)) {
  }
  g_query_len.store(0, std::memory_order_release);
  g_query_hash.store(0, std::memory_order_relaxed);
  g_query_lock.clear(std::memory_order_release);
}

StatusOr<std::string> WritePostmortem(const PostmortemInfo& info) {
  std::string dir = PostmortemDir();
  if (dir.empty()) {
    return InvalidArgumentError(
        "no postmortem directory configured (EMCALC_POSTMORTEM_DIR)");
  }
  uint64_t seq = g_bundle_seq.fetch_add(1, std::memory_order_relaxed);
  std::string path = dir + "/postmortem-" +
                     std::to_string(static_cast<uint64_t>(::getpid())) + "-" +
                     std::to_string(seq) + ".json";

  std::string out = "{\"schema\":1,\"reason\":\"" + JsonEscape(info.reason);
  out += "\",\"query_hash\":\"" + std::to_string(info.query_hash) + "\"";
  if (!info.query.empty()) {
    out += ",\"query\":\"" + JsonEscape(info.query) + "\"";
  }
  if (!info.error.empty()) {
    out += ",\"error\":\"" + JsonEscape(info.error) + "\"";
  }
  if (!info.aborted_limit.empty()) {
    out += ",\"aborted_limit\":\"" + JsonEscape(info.aborted_limit) + "\"";
  }
  if (!info.profile_json.empty()) out += ",\"profile\":" + info.profile_json;
  out += ",\"metrics\":" + MetricsRegistry::Instance().JsonSnapshot();
  out += ",\"pool\":" + ThreadPool::GlobalTelemetryJson();
  out += ",\"flight_recorder\":" + FlightEventsToJson(DrainFlightRecorder());
  out += "}\n";

  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return InvalidArgumentError("cannot create postmortem bundle " + path);
  }
  file << out;
  file.flush();
  if (!file.good()) {
    return InternalError("write to postmortem bundle " + path + " failed");
  }
  g_bundles_written.fetch_add(1, std::memory_order_relaxed);
  static Counter& bundles =
      MetricsRegistry::Instance().GetCounter("obs.postmortems");
  bundles.Add();
  return path;
}

uint64_t PostmortemCount() {
  return g_bundles_written.load(std::memory_order_relaxed);
}

}  // namespace emcalc::obs
