// Durable per-query-hash execution history: an append-mostly JSON-Lines
// feedback store that aggregates actuals from every run — rows out,
// per-operator estimate vs actual (keyed on a stable operator path within
// the plan), wall-time and peak-bytes digests on the metrics histogram
// buckets, parallel efficiency, and abort counts.
//
// The store is the consumer side of the est-vs-actual feedback loop:
// Lower() (src/exec/lower.cc) asks LookupEstimate() for the historical
// mean actual of a previously-seen (query hash, operator path) and uses it
// as that operator's cardinality estimate instead of the static heuristic;
// ObserveRun (src/core/compiler.cc) records every execution back into the
// store. The op-path scheme is owned by src/exec/feedback.h (PlanOpPaths /
// CollectRunOps) so the plan side and the profile side derive identical
// keys.
//
// File format (one object per line, `<dir>/history.jsonl`):
//   {"v":1,"type":"run","hash":"<dec64>","query":"...","ok":true,...}
//   {"v":1,"type":"agg","gen":N,"hash":"<dec64>","runs":...,...}
// Run lines are appended on every recorded execution. When the file
// outgrows its byte bound the store compacts: the in-memory aggregates are
// rewritten as one "agg" line per hash into a temp file that atomically
// replaces the log, and the generation counter increments ("generation
// compaction"). Loading folds agg lines first, then replays run lines;
// unparseable lines (a tail truncated by a crash) are skipped and counted,
// mirroring the query-log inspect policy.
//
// A process-global sink mirrors the query-log pattern: SetHistoryStore for
// tests and the repl, InitHistoryFromEnv for EMCALC_HISTORY_DIR. All
// mutation goes through one mutex, so concurrent Run() recording from the
// thread pool is safe (covered by history_test under TSAN).
#ifndef EMCALC_OBS_HISTORY_H_
#define EMCALC_OBS_HISTORY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/obs/metrics.h"

namespace emcalc::obs {

// Upper bounds for byte-size digests: 1KiB … 16GiB in powers of four.
// Lives here (not metrics.cc) because latency buckets are the registry
// default; size digests are a history-store concern.
const std::vector<double>& DefaultSizeBucketsBytes();

// One recorded execution, flattened to plain data so this layer stays
// independent of src/exec. Built by CollectRunObservation (feedback.h).
struct RunObservation {
  uint64_t query_hash = 0;
  std::string query;          // raw text (stored for display; may be long)
  bool ok = true;
  std::string aborted_limit;  // tripped governor limit; "" if none
  uint64_t wall_ns = 0;
  uint64_t peak_bytes = 0;
  uint64_t rows_out = 0;
  double parallel_efficiency = 0;  // 0 when nothing ran in parallel
  uint32_t par_workers = 0;
  struct Op {
    std::string path;  // stable operator path (feedback.h scheme)
    std::string op;    // display name, "HashJoin(keys=1)"
    double est_rows = -1;
    uint64_t actual_rows = 0;
    double factor = 1;  // capped misestimation factor (feedback.h guard)
  };
  std::vector<Op> ops;
};

// Per-operator aggregate within one query's history.
struct OpHistory {
  std::string op;  // display name from the newest run
  uint64_t runs = 0;
  double est_sum = 0;
  double actual_sum = 0;
  uint64_t actual_last = 0;
  double factor_sum = 0;
  double factor_worst = 1;
  // The historical actual used to correct future estimates.
  double MeanActual() const {
    return runs == 0 ? 0 : actual_sum / static_cast<double>(runs);
  }
};

// Aggregated history of one query hash across all recorded runs.
struct QueryHistory {
  uint64_t query_hash = 0;
  std::string query;  // text from the newest run
  uint64_t runs = 0;
  uint64_t aborts = 0;  // governor aborts (aborted_limit set)
  uint64_t errors = 0;  // other failed runs
  uint64_t rows_out_last = 0;
  // Digests on the shared metrics bucket layouts: wall on
  // DefaultLatencyBucketsNs, peak on DefaultSizeBucketsBytes.
  Histogram::Snapshot wall;
  Histogram::Snapshot peak;
  double par_eff_sum = 0;
  uint64_t par_runs = 0;
  // Misestimation factors pooled over every (run, operator) sample.
  double factor_worst = 1;
  double factor_sum = 0;
  uint64_t factor_count = 0;
  // The newest wall-time samples, oldest first (sparkline trends).
  std::vector<uint64_t> wall_trend;
  std::map<std::string, OpHistory> ops;  // keyed by operator path

  double MeanWallNs() const {
    return wall.count == 0 ? 0 : wall.sum / static_cast<double>(wall.count);
  }
  double MeanFactor() const {
    return factor_count == 0
               ? 1
               : factor_sum / static_cast<double>(factor_count);
  }
};

// Samples kept per query for trend sparklines.
inline constexpr size_t kHistoryTrendLen = 16;

// Folds one observation into an aggregate (shared by recording and load).
void FoldRunObservation(QueryHistory& agg, const RunObservation& run);

// A loaded store file: per-hash aggregates plus load diagnostics.
struct HistoryScan {
  std::vector<QueryHistory> entries;  // sorted by query_hash
  size_t bad_lines = 0;
  uint64_t generation = 0;
  uint64_t total_runs = 0;
};

// `dir_or_file` names either a store directory (its `history.jsonl` is
// used) or a store file directly.
std::string ResolveHistoryPath(const std::string& dir_or_file);

// Read-only load (emcalc-inspect, diffing); does not create the file.
StatusOr<HistoryScan> ReadHistoryFile(const std::string& path);

// Wall-clock percentile of a query's digest (p in (0, 100]).
double HistoryWallPercentile(const QueryHistory& h, double p);

class HistoryStore {
 public:
  struct Options {
    // Compaction trigger: rewrite the log as aggregates once it exceeds
    // this many bytes (and has at least doubled since the last rewrite,
    // so a store whose aggregates alone exceed the bound does not compact
    // on every append). 0 disables compaction.
    uint64_t max_bytes = 4u << 20;
  };

  // Opens (creating if needed) the store under directory `dir`. Loads any
  // existing `history.jsonl`, skipping truncated/corrupt lines.
  static StatusOr<std::unique_ptr<HistoryStore>> Open(const std::string& dir,
                                                      Options options);
  static StatusOr<std::unique_ptr<HistoryStore>> Open(const std::string& dir) {
    return Open(dir, Options());
  }
  ~HistoryStore();

  HistoryStore(const HistoryStore&) = delete;
  HistoryStore& operator=(const HistoryStore&) = delete;

  // Folds `run` into the in-memory aggregates and appends one line to the
  // log (compacting when past the byte bound). Thread-safe.
  void RecordRun(const RunObservation& run);

  // Historical mean actual for (query hash, operator path), with the
  // number of runs it is based on. nullopt when the pair was never seen.
  struct EstimateCorrection {
    double est_rows = 0;
    uint64_t runs = 0;
  };
  std::optional<EstimateCorrection> LookupEstimate(
      uint64_t query_hash, const std::string& op_path) const;

  // A self-consistent copy of the aggregates (sorted by hash).
  HistoryScan Scan() const;

  // Forces a generation compaction now (repl/tests).
  void Compact();

  size_t query_count() const;
  uint64_t total_runs() const;
  uint64_t generation() const;
  size_t bad_lines() const;  // skipped while loading
  const std::string& path() const { return path_; }

 private:
  HistoryStore() = default;
  void CompactLocked();

  std::string path_;
  Options options_;
  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t file_bytes_ = 0;
  uint64_t compact_floor_ = 0;  // file size right after the last compaction
  uint64_t generation_ = 0;
  size_t bad_lines_ = 0;
  uint64_t total_runs_ = 0;
  std::unordered_map<uint64_t, QueryHistory> entries_;
};

// The process-global history store; null (disabled) by default. Borrowed,
// not owned — mirrors SetQueryLog.
HistoryStore* GetHistoryStore();
void SetHistoryStore(HistoryStore* store);

// EMCALC_HISTORY_DIR=<dir>: installs a process-lifetime store recording to
// (and correcting estimates from) <dir>/history.jsonl. Returns true when
// enabled. Idempotent.
bool InitHistoryFromEnv();

}  // namespace emcalc::obs

#endif  // EMCALC_OBS_HISTORY_H_
