#include "src/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/obs/json.h"

namespace emcalc::obs {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {
std::atomic<Tracer*> g_tracer{nullptr};
}  // namespace

Tracer* GetTracer() { return g_tracer.load(std::memory_order_acquire); }

void SetTracer(Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_release);
}

void Tracer::Record(const char* name, std::string detail, uint64_t start_ns,
                    uint64_t dur_ns) {
  uint32_t tid = CurrentThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(TraceEvent{name, std::move(detail), start_ns, dur_ns, tid});
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[64];
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(e.name);
    out += "\",\"cat\":\"emcalc\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    // Trace-event timestamps are microseconds; keep sub-us precision with
    // fractional values (both viewers accept doubles).
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3);
    out += buf;
    if (!e.detail.empty()) {
      out += ",\"args\":{\"detail\":\"" + JsonEscape(e.detail) + "\"}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return InvalidArgumentError("cannot open trace file " + path);
  file << ToChromeTraceJson() << "\n";
  if (!file.good()) return InternalError("write to trace file " + path + " failed");
  return Status::Ok();
}

namespace {

// Process-lifetime tracer driven by EMCALC_TRACE; flushed via atexit.
Tracer* g_env_tracer = nullptr;
std::string* g_env_trace_path = nullptr;

void FlushEnvTrace() {
  if (g_env_tracer == nullptr || g_env_trace_path == nullptr) return;
  Status s = g_env_tracer->WriteChromeTrace(*g_env_trace_path);
  if (!s.ok()) {
    std::fprintf(stderr, "emcalc: EMCALC_TRACE flush failed: %s\n",
                 s.ToString().c_str());
  }
}

}  // namespace

bool InitTracingFromEnv() {
  if (g_env_tracer != nullptr) return true;
  const char* path = std::getenv("EMCALC_TRACE");
  if (path == nullptr || *path == '\0') return false;
  g_env_tracer = new Tracer();           // lives until process exit
  g_env_trace_path = new std::string(path);
  SetTracer(g_env_tracer);
  std::atexit(FlushEnvTrace);
  return true;
}

}  // namespace emcalc::obs
