// Minimal JSON support for the observability subsystem: escaping for the
// emitters (trace, metrics, query log, bench records) and a small parser
// used to validate and round-trip our own output. The parser handles the
// full JSON grammar (objects, arrays, strings, numbers, bools, null) but
// is tuned for machine-generated single-line documents, not arbitrary
// user input.
#ifndef EMCALC_OBS_JSON_H_
#define EMCALC_OBS_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/status.h"

namespace emcalc::obs {

// Escapes `s` for inclusion inside a JSON string literal (quotes not
// included). Control characters become \uXXXX.
std::string JsonEscape(std::string_view s);

// A parsed JSON document. Object member order is preserved.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  // First member named `key`, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;

  // Convenience accessors with defaults for absent/mistyped members.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, std::string fallback) const;
  bool BoolOr(std::string_view key, bool fallback) const;
};

// Parses one JSON document; trailing non-whitespace is an error.
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace emcalc::obs

#endif  // EMCALC_OBS_JSON_H_
