#include "src/obs/compile_profile.h"

#include <cstdio>

namespace emcalc::obs {

const CompilePhase* CompilePhase::Find(std::string_view child_name) const {
  for (const CompilePhase& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

uint64_t ChildWallNs(const CompilePhase& phase) {
  uint64_t sum = 0;
  for (const CompilePhase& c : phase.children) sum += c.wall_ns;
  return sum;
}

namespace {

void Render(const CompilePhase& p, uint64_t root_ns, int depth,
            std::string& out) {
  std::string label(static_cast<size_t>(depth) * 2, ' ');
  label += p.name;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%-28s %9.3fms", label.c_str(),
                static_cast<double>(p.wall_ns) / 1e6);
  out += buf;
  if (depth > 0 && root_ns > 0) {
    std::snprintf(buf, sizeof(buf), " %5.1f%%",
                  100.0 * static_cast<double>(p.wall_ns) /
                      static_cast<double>(root_ns));
    out += buf;
  }
  if (!p.detail.empty()) out += "  " + p.detail;
  out += "\n";
  for (const CompilePhase& c : p.children) Render(c, root_ns, depth + 1, out);
}

void Flatten(const CompilePhase& p, const std::string& prefix,
             std::vector<std::pair<std::string, uint64_t>>& out) {
  for (const CompilePhase& c : p.children) {
    std::string path = prefix.empty() ? c.name : prefix + "." + c.name;
    out.emplace_back(path, c.wall_ns);
    Flatten(c, path, out);
  }
}

}  // namespace

std::string CompileProfileToString(const CompilePhase& root) {
  std::string out;
  Render(root, root.wall_ns, 0, out);
  return out;
}

std::vector<std::pair<std::string, uint64_t>> FlattenPhases(
    const CompilePhase& root) {
  std::vector<std::pair<std::string, uint64_t>> out;
  Flatten(root, "", out);
  return out;
}

PhaseTimer::PhaseTimer(CompilePhase* parent, const char* name,
                       const char* span_name)
    : span_(span_name), start_ns_(NowNs()) {
  parent->children.emplace_back();
  phase_ = &parent->children.back();
  phase_->name = name;
}

PhaseTimer::~PhaseTimer() { phase_->wall_ns = NowNs() - start_ns_; }

void PhaseTimer::SetDetail(std::string detail) {
  span_.SetDetail(detail);
  phase_->detail = std::move(detail);
}

}  // namespace emcalc::obs
