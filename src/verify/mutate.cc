#include "src/verify/mutate.h"

#include <utility>
#include <vector>

#include "src/algebra/expr.h"

namespace emcalc::verify {

namespace {

struct MutationInfo {
  Mutation m;
  const char* name;
  const char* rule;
};

constexpr MutationInfo kMutations[] = {
    {Mutation::kAlgProjectArityUp, "alg-project-arity-up",
     "alg.project-arity"},
    {Mutation::kAlgProjectDropExpr, "alg-project-drop-expr",
     "alg.project-arity"},
    {Mutation::kAlgProjectNullExpr, "alg-project-null-expr", "alg.expr-null"},
    {Mutation::kAlgProjectDanglingCol, "alg-project-dangling-col",
     "alg.col-range"},
    {Mutation::kAlgSelectDanglingCol, "alg-select-dangling-col",
     "alg.col-range"},
    {Mutation::kAlgSelectNullCond, "alg-select-null-cond", "alg.cond-null"},
    {Mutation::kAlgSelectArityUp, "alg-select-arity-up", "alg.select-arity"},
    {Mutation::kAlgJoinDanglingCol, "alg-join-dangling-col", "alg.col-range"},
    {Mutation::kAlgJoinArityDown, "alg-join-arity-down", "alg.join-arity"},
    {Mutation::kAlgUnionArityUp, "alg-union-arity-up", "alg.union-arity"},
    {Mutation::kAlgDiffOperandMismatch, "alg-diff-operand-mismatch",
     "alg.diff-arity"},
    {Mutation::kAlgRelNegativeArity, "alg-rel-negative-arity",
     "alg.rel-arity"},
    {Mutation::kAlgUnitNonZeroArity, "alg-unit-nonzero-arity",
     "alg.unit-arity"},
    {Mutation::kAlgConstOutOfPool, "alg-const-out-of-pool", "alg.const-pool"},
    {Mutation::kAlgDropInputChild, "alg-drop-input-child",
     "alg.child-missing"},
    {Mutation::kAlgLeafExtraChild, "alg-leaf-extra-child", "alg.child-extra"},
    {Mutation::kAlgInjectAdom, "alg-inject-adom", "alg.adom-in-plan"},
    {Mutation::kAlgSelfCycle, "alg-self-cycle", "alg.cycle"},
    {Mutation::kPhysProjectDropExpr, "phys-project-drop-expr",
     "phys.project-arity"},
    {Mutation::kPhysProjectDanglingCol, "phys-project-dangling-col",
     "phys.col-range"},
    {Mutation::kPhysFilterDanglingCol, "phys-filter-dangling-col",
     "phys.col-range"},
    {Mutation::kPhysFilterNullCond, "phys-filter-null-cond",
     "phys.cond-null"},
    {Mutation::kPhysJoinNullKey, "phys-join-null-key", "phys.key-null"},
    {Mutation::kPhysJoinKeyWrongSide, "phys-join-key-wrong-side",
     "phys.key-side"},
    {Mutation::kPhysJoinSplitSkew, "phys-join-split-skew",
     "phys.join-split"},
    {Mutation::kPhysSwapJoinInputs, "phys-swap-join-inputs",
     "phys.join-split"},
    {Mutation::kPhysScanArityUp, "phys-scan-arity-up", "phys.mirror"},
    {Mutation::kPhysUnionArityUp, "phys-union-arity-up", "phys.arity"},
    {Mutation::kPhysMemoDuplicate, "phys-memo-duplicate", "phys.memo-dup"},
    {Mutation::kPhysMemoOutOfRange, "phys-memo-out-of-range", "phys.memo"},
    {Mutation::kPhysConsumersUnderflow, "phys-consumers-underflow",
     "phys.memo"},
    {Mutation::kPhysDuplicateOpId, "phys-duplicate-op-id", "phys.op-id"},
    {Mutation::kPhysDropChild, "phys-drop-child", "phys.children"},
};

const MutationInfo& Info(Mutation m) {
  for (const MutationInfo& info : kMutations) {
    if (info.m == m) return info;
  }
  return kMutations[0];  // unreachable for valid enumerators
}

}  // namespace

const char* MutationName(Mutation m) { return Info(m).name; }

const char* ExpectedRule(Mutation m) { return Info(m).rule; }

bool IsPhysicalMutation(Mutation m) {
  return static_cast<uint8_t>(m) >=
         static_cast<uint8_t>(Mutation::kPhysProjectDropExpr);
}

AlgExpr* PlanMutator::NewLeaf(AlgKind kind, int arity) {
  AlgExpr* e = ctx_.arena().New<AlgExpr>();
  e->kind_ = kind;
  e->arity_ = arity;
  return e;
}

// Deep copy preserving DAG sharing, so the original plan stays intact
// while the clone's private fields can be edited freely.
AlgExpr* PlanMutator::Clone(const AlgExpr* node) {
  auto it = clones_.find(node);
  if (it != clones_.end()) return it->second;
  AlgExpr* copy = ctx_.arena().New<AlgExpr>(*node);
  if (node->left_ != nullptr) copy->left_ = Clone(node->left_);
  if (node->right_ != nullptr) copy->right_ = Clone(node->right_);
  clones_.emplace(node, copy);
  return copy;
}

// The mutable clone of the first node of `kind` in preorder, or nullptr.
AlgExpr* PlanMutator::FindFirst(const AlgExpr* original, AlgKind kind) {
  if (original == nullptr) return nullptr;
  if (original->kind() == kind) return clones_.at(original);
  if (AlgExpr* found = FindFirst(original->left_, kind)) return found;
  return FindFirst(original->right_, kind);
}

const AlgExpr* PlanMutator::Corrupt(const AlgExpr* plan, Mutation m) {
  clones_.clear();
  AlgExpr* root = Clone(plan);
  ExprFactory exprs(ctx_);

  // Replaces a node's condition array (conds live in the arena).
  auto set_conds = [&](AlgExpr* node, std::vector<AlgCondition> conds) {
    node->conds_ =
        ctx_.arena().NewArray<AlgCondition>(conds.data(), conds.size());
    node->num_conds_ = static_cast<uint32_t>(conds.size());
  };
  auto set_exprs = [&](AlgExpr* node, std::vector<const ScalarExpr*> es) {
    node->exprs_ =
        ctx_.arena().NewArray<const ScalarExpr*>(es.data(), es.size());
    node->num_exprs_ = static_cast<uint32_t>(es.size());
  };
  auto project_exprs = [](const AlgExpr* node) {
    return std::vector<const ScalarExpr*>(node->exprs().begin(),
                                          node->exprs().end());
  };

  switch (m) {
    case Mutation::kAlgProjectArityUp: {
      AlgExpr* node = FindFirst(plan, AlgKind::kProject);
      if (node == nullptr) return nullptr;
      node->arity_ += 1;
      return root;
    }
    case Mutation::kAlgProjectDropExpr: {
      AlgExpr* node = FindFirst(plan, AlgKind::kProject);
      if (node == nullptr || node->num_exprs_ == 0) return nullptr;
      node->num_exprs_ -= 1;
      return root;
    }
    case Mutation::kAlgProjectNullExpr: {
      AlgExpr* node = FindFirst(plan, AlgKind::kProject);
      if (node == nullptr || node->num_exprs_ == 0) return nullptr;
      std::vector<const ScalarExpr*> es = project_exprs(node);
      es[0] = nullptr;
      set_exprs(node, std::move(es));
      return root;
    }
    case Mutation::kAlgProjectDanglingCol: {
      AlgExpr* node = FindFirst(plan, AlgKind::kProject);
      if (node == nullptr || node->num_exprs_ == 0) return nullptr;
      std::vector<const ScalarExpr*> es = project_exprs(node);
      es[0] = exprs.Col(node->input()->arity());
      set_exprs(node, std::move(es));
      return root;
    }
    case Mutation::kAlgSelectDanglingCol: {
      AlgExpr* node = FindFirst(plan, AlgKind::kSelect);
      if (node == nullptr) return nullptr;
      std::vector<AlgCondition> conds(node->conds().begin(),
                                      node->conds().end());
      conds.push_back({exprs.Col(node->input()->arity()), AlgCompareOp::kEq,
                       exprs.Col(0)});
      set_conds(node, std::move(conds));
      return root;
    }
    case Mutation::kAlgSelectNullCond: {
      AlgExpr* node = FindFirst(plan, AlgKind::kSelect);
      if (node == nullptr) return nullptr;
      std::vector<AlgCondition> conds(node->conds().begin(),
                                      node->conds().end());
      conds.push_back({nullptr, AlgCompareOp::kEq, nullptr});
      set_conds(node, std::move(conds));
      return root;
    }
    case Mutation::kAlgSelectArityUp: {
      AlgExpr* node = FindFirst(plan, AlgKind::kSelect);
      if (node == nullptr) return nullptr;
      node->arity_ += 1;
      return root;
    }
    case Mutation::kAlgJoinDanglingCol: {
      AlgExpr* node = FindFirst(plan, AlgKind::kJoin);
      if (node == nullptr) return nullptr;
      std::vector<AlgCondition> conds(node->conds().begin(),
                                      node->conds().end());
      conds.push_back({exprs.Col(node->arity()), AlgCompareOp::kEq,
                       exprs.Col(0)});
      set_conds(node, std::move(conds));
      return root;
    }
    case Mutation::kAlgJoinArityDown: {
      AlgExpr* node = FindFirst(plan, AlgKind::kJoin);
      if (node == nullptr) return nullptr;
      node->arity_ -= 1;
      return root;
    }
    case Mutation::kAlgUnionArityUp: {
      AlgExpr* node = FindFirst(plan, AlgKind::kUnion);
      if (node == nullptr) return nullptr;
      node->arity_ += 1;
      return root;
    }
    case Mutation::kAlgDiffOperandMismatch: {
      AlgExpr* node = FindFirst(plan, AlgKind::kDiff);
      if (node == nullptr) return nullptr;
      node->right_ = NewLeaf(AlgKind::kEmpty, node->left()->arity() + 1);
      return root;
    }
    case Mutation::kAlgRelNegativeArity: {
      AlgExpr* node = FindFirst(plan, AlgKind::kRel);
      if (node == nullptr) return nullptr;
      node->arity_ = -1;
      return root;
    }
    case Mutation::kAlgUnitNonZeroArity: {
      AlgExpr* node = FindFirst(plan, AlgKind::kUnit);
      if (node == nullptr) return nullptr;
      node->arity_ = 1;
      return root;
    }
    case Mutation::kAlgConstOutOfPool: {
      AlgExpr* node = FindFirst(plan, AlgKind::kProject);
      if (node == nullptr || node->num_exprs_ == 0) return nullptr;
      std::vector<const ScalarExpr*> es = project_exprs(node);
      es[0] = exprs.Const(
          static_cast<uint32_t>(ctx_.NumConstants()) + 7);
      set_exprs(node, std::move(es));
      return root;
    }
    case Mutation::kAlgDropInputChild: {
      AlgExpr* node = FindFirst(plan, AlgKind::kProject);
      if (node == nullptr) node = FindFirst(plan, AlgKind::kSelect);
      if (node == nullptr) return nullptr;
      node->left_ = nullptr;
      return root;
    }
    case Mutation::kAlgLeafExtraChild: {
      AlgExpr* node = FindFirst(plan, AlgKind::kRel);
      if (node == nullptr) return nullptr;
      node->left_ = NewLeaf(AlgKind::kUnit, 0);
      return root;
    }
    case Mutation::kAlgInjectAdom: {
      AlgExpr* node = FindFirst(plan, AlgKind::kRel);
      if (node == nullptr) return nullptr;
      node->kind_ = AlgKind::kAdom;
      node->arity_ = 1;
      node->adom_level_ = 0;
      return root;
    }
    case Mutation::kAlgSelfCycle: {
      AlgExpr* node = FindFirst(plan, AlgKind::kSelect);
      if (node == nullptr) node = FindFirst(plan, AlgKind::kProject);
      if (node == nullptr) return nullptr;
      node->left_ = node;
      return root;
    }
    default:
      return nullptr;  // physical mutation passed to the algebra overload
  }
}

bool PlanMutator::Corrupt(PhysicalPlan& plan, Mutation m) {
  ExprFactory exprs(ctx_);
  // First operator of a kind, in creation order.
  auto find = [&](PhysOpKind kind) -> PhysicalOp* {
    for (const auto& op : plan.ops_) {
      if (op->kind == kind) return op.get();
    }
    return nullptr;
  };

  switch (m) {
    case Mutation::kPhysProjectDropExpr: {
      PhysicalOp* op = find(PhysOpKind::kProjectMap);
      if (op == nullptr || op->exprs.empty()) return false;
      op->exprs.pop_back();
      return true;
    }
    case Mutation::kPhysProjectDanglingCol: {
      PhysicalOp* op = find(PhysOpKind::kProjectMap);
      if (op == nullptr || op->exprs.empty() || op->left == nullptr) {
        return false;
      }
      op->exprs[0] = exprs.Col(op->left->arity);
      return true;
    }
    case Mutation::kPhysFilterDanglingCol: {
      PhysicalOp* op = find(PhysOpKind::kFilterSelect);
      if (op == nullptr) return false;
      op->conds.push_back(
          {exprs.Col(op->arity), AlgCompareOp::kEq, exprs.Col(0)});
      return true;
    }
    case Mutation::kPhysFilterNullCond: {
      PhysicalOp* op = find(PhysOpKind::kFilterSelect);
      if (op == nullptr) return false;
      op->conds.push_back({nullptr, AlgCompareOp::kEq, nullptr});
      return true;
    }
    case Mutation::kPhysJoinNullKey: {
      PhysicalOp* op = find(PhysOpKind::kHashJoin);
      if (op == nullptr || op->keys.empty()) return false;
      op->keys[0].left_key = nullptr;
      return true;
    }
    case Mutation::kPhysJoinKeyWrongSide: {
      PhysicalOp* op = find(PhysOpKind::kHashJoin);
      if (op == nullptr || op->keys.empty()) return false;
      // A probe key must read only left (probe-side) columns; point it at
      // the first build-side column instead.
      op->keys[0].left_key = exprs.Col(op->split);
      return true;
    }
    case Mutation::kPhysJoinSplitSkew: {
      PhysicalOp* op = find(PhysOpKind::kHashJoin);
      if (op == nullptr) op = find(PhysOpKind::kNestedLoopJoin);
      if (op == nullptr) return false;
      op->split += 1;
      return true;
    }
    case Mutation::kPhysSwapJoinInputs: {
      PhysicalOp* op = find(PhysOpKind::kHashJoin);
      if (op == nullptr) op = find(PhysOpKind::kNestedLoopJoin);
      if (op == nullptr || op->left == nullptr || op->right == nullptr ||
          op->left->arity == op->right->arity) {
        return false;  // equal arities would keep the split consistent
      }
      std::swap(op->left, op->right);
      return true;
    }
    case Mutation::kPhysScanArityUp: {
      PhysicalOp* op = find(PhysOpKind::kScan);
      if (op == nullptr) return false;
      op->arity += 1;
      return true;
    }
    case Mutation::kPhysUnionArityUp: {
      PhysicalOp* op = find(PhysOpKind::kUnionMerge);
      if (op == nullptr) return false;
      op->arity += 1;
      return true;
    }
    case Mutation::kPhysMemoDuplicate: {
      PhysicalOp* first = nullptr;
      for (const auto& op : plan.ops_) {
        if (op->kind != PhysOpKind::kMaterialize) continue;
        if (first == nullptr) {
          first = op.get();
        } else {
          op->memo_slot = first->memo_slot;
          return true;
        }
      }
      return false;
    }
    case Mutation::kPhysMemoOutOfRange: {
      PhysicalOp* op = find(PhysOpKind::kMaterialize);
      if (op == nullptr) return false;
      op->memo_slot = plan.num_memo_slots_ + 3;
      return true;
    }
    case Mutation::kPhysConsumersUnderflow: {
      PhysicalOp* op = find(PhysOpKind::kMaterialize);
      if (op == nullptr) return false;
      op->consumers = 1;
      return true;
    }
    case Mutation::kPhysDuplicateOpId: {
      if (plan.ops_.size() < 2) return false;
      plan.ops_[1]->id = plan.ops_[0]->id;
      return true;
    }
    case Mutation::kPhysDropChild: {
      PhysicalOp* op = find(PhysOpKind::kProjectMap);
      if (op == nullptr) op = find(PhysOpKind::kFilterSelect);
      if (op == nullptr) return false;
      op->left = nullptr;
      return true;
    }
    default:
      return false;  // algebra mutation passed to the physical overload
  }
}

}  // namespace emcalc::verify
