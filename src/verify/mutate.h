// Seeded single-node plan corruptions for the verifier's mutation harness.
//
// Every mutation models one class of compiler bug (an arity off-by-one, a
// dangling column index, a dropped projection expression, swapped join
// inputs, a broken materialization slot, ...). tests/verify_test.cc applies
// each mutation to plans from the paper corpus and random queries and
// asserts the stage-boundary verifier rejects the result with the expected
// rule id — proving the rules have teeth, not just that clean plans pass.
//
// PlanMutator is a friend of AlgExpr and PhysicalPlan: corrupt nodes cannot
// be built through AlgebraFactory (it validates at construction), so the
// mutator clones plans and edits the private fields directly.
#ifndef EMCALC_VERIFY_MUTATE_H_
#define EMCALC_VERIFY_MUTATE_H_

#include <unordered_map>

#include "src/algebra/ast.h"
#include "src/exec/physical.h"

namespace emcalc::verify {

// One corruption. kAlg* mutations clone an algebra plan; kPhys* mutations
// edit a lowered PhysicalPlan in place.
enum class Mutation : uint8_t {
  // Algebra layer.
  kAlgProjectArityUp,      // kProject declared arity + 1
  kAlgProjectDropExpr,     // drop the last output expression
  kAlgProjectNullExpr,     // null out an output expression
  kAlgProjectDanglingCol,  // output expression reads one past the input
  kAlgSelectDanglingCol,   // condition reads one past the input
  kAlgSelectNullCond,      // condition with null sides
  kAlgSelectArityUp,       // kSelect arity != input arity
  kAlgJoinDanglingCol,     // condition reads past the concatenated schema
  kAlgJoinArityDown,       // kJoin arity != left + right
  kAlgUnionArityUp,        // kUnion arity disagrees with its operands
  kAlgDiffOperandMismatch, // kDiff operands of different arity
  kAlgRelNegativeArity,    // kRel arity -1
  kAlgUnitNonZeroArity,    // kUnit with arity 1
  kAlgConstOutOfPool,      // kConst id beyond the constant pool
  kAlgDropInputChild,      // unary node loses its input
  kAlgLeafExtraChild,      // leaf node grows a child
  kAlgInjectAdom,          // kAdom inside a directly-translated plan
  kAlgSelfCycle,           // unary node becomes its own input
  // Physical layer.
  kPhysProjectDropExpr,    // ProjectMap loses an output expression
  kPhysProjectDanglingCol, // ProjectMap expression reads past the input
  kPhysFilterDanglingCol,  // FilterSelect condition reads past the input
  kPhysFilterNullCond,     // FilterSelect condition with null sides
  kPhysJoinNullKey,        // HashJoin key with a null side
  kPhysJoinKeyWrongSide,   // probe key reads a build-side column
  kPhysJoinSplitSkew,      // join split != left input arity
  kPhysSwapJoinInputs,     // swapped join operands (unequal arities)
  kPhysScanArityUp,        // Scan arity disagrees with the algebra
  kPhysUnionArityUp,       // UnionMerge arity disagrees with its inputs
  kPhysMemoDuplicate,      // two Materialize ops share a cache slot
  kPhysMemoOutOfRange,     // Materialize slot outside the slot table
  kPhysConsumersUnderflow, // Materialize with a single consumer
  kPhysDuplicateOpId,      // two operators share a stats/memory slot id
  kPhysDropChild,          // unary operator loses its input
};

// First and last enumerators, for iteration in the harness.
inline constexpr Mutation kFirstMutation = Mutation::kAlgProjectArityUp;
inline constexpr Mutation kLastMutation = Mutation::kPhysDropChild;

// Stable display name, e.g. "alg-project-arity-up".
const char* MutationName(Mutation m);

// The verifier rule id the mutation must trip, e.g. "alg.project-arity".
const char* ExpectedRule(Mutation m);

// True for kPhys* mutations (applied to a lowered plan).
bool IsPhysicalMutation(Mutation m);

// Applies corruptions. Methods return the corrupted plan (or true) when an
// applicable node was found, and nullptr (or false) when the plan has no
// node the mutation applies to.
class PlanMutator {
 public:
  // `ctx` must be the context the plans were built into.
  explicit PlanMutator(AstContext& ctx) : ctx_(ctx) {}

  // Clones `plan` (sharing preserved) and applies `m` to the first
  // applicable node in preorder.
  const AlgExpr* Corrupt(const AlgExpr* plan, Mutation m);

  // Applies `m` in place to the first applicable operator (creation
  // order). The plan must have been lowered from `ctx`.
  bool Corrupt(PhysicalPlan& plan, Mutation m);

 private:
  AlgExpr* Clone(const AlgExpr* node);
  AlgExpr* FindFirst(const AlgExpr* original, AlgKind kind);
  AlgExpr* NewLeaf(AlgKind kind, int arity);

  AstContext& ctx_;
  std::unordered_map<const AlgExpr*, AlgExpr*> clones_;
};

}  // namespace emcalc::verify

#endif  // EMCALC_VERIFY_MUTATE_H_
