#include "src/verify/verify.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>

#include "src/calculus/analysis.h"
#include "src/translate/ranf.h"

namespace emcalc::verify {

namespace {

// -1 = environment/build-type default; 0/1 = forced by ForceEnabled.
std::atomic<int> g_force{-1};

bool EnvEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("EMCALC_VERIFY");
    return v != nullptr && *v != '\0' && std::string_view(v) != "0";
  }();
  return enabled;
}

// Verification runs inside every compile (always in Debug), so the clean
// path must not allocate per node. Node paths are kept as a stack-chained
// list of segments and rendered to a string only when a violation is
// recorded; expression labels ("condition 2 lhs") are likewise deferred.
struct PathNode {
  const PathNode* parent = nullptr;
  const char* label = nullptr;  // static segment (".lhs"); null when indexed
  int index = -1;               // numeric segment when >= 0

  std::string Str() const {
    std::string out;
    Append(out);
    return out;
  }
  void Append(std::string& out) const {
    if (parent != nullptr) parent->Append(out);
    if (label != nullptr) {
      out += label;
    } else if (index >= 0) {
      out += '.';
      out += std::to_string(index);
    }
  }
};

// A deferred "what" label for scalar-expression messages.
struct Label {
  const char* prefix = "";
  int index = -1;           // appended when >= 0
  const char* suffix = "";  // " lhs", " left side", ...

  std::string Str() const {
    std::string out(prefix);
    if (index >= 0) out += std::to_string(index);
    out += suffix;
    return out;
  }
};

// A small flat map over a vector; the verified structures have tens of
// nodes, where a linear scan beats hashing and its allocations.
template <typename K, typename V>
class FlatMap {
 public:
  V* Find(K key) {
    for (auto& e : entries_) {
      if (e.first == key) return &e.second;
    }
    return nullptr;
  }
  // Appends without checking for duplicates; returns the entry's index,
  // stable across later insertions.
  size_t Insert(K key, V value) {
    entries_.emplace_back(key, value);
    return entries_.size() - 1;
  }
  V& At(size_t index) { return entries_[index].second; }

 private:
  std::vector<std::pair<K, V>> entries_;
};

// Pointer-keyed map with the same interface as FlatMap but an
// open-addressed index over the entry vector, so Find stays O(1) on the
// few-hundred-node plans where a linear scan turns quadratic. Entry
// indices returned by Insert stay stable across growth (only the probe
// table is rebuilt).
template <typename K, typename V>
class PtrMap {
 public:
  V* Find(K key) {
    if (index_.empty()) return nullptr;
    for (size_t i = Hash(key) & mask_;; i = (i + 1) & mask_) {
      int32_t e = index_[i];
      if (e < 0) return nullptr;
      if (entries_[static_cast<size_t>(e)].first == key) {
        return &entries_[static_cast<size_t>(e)].second;
      }
    }
  }
  // Appends without checking for duplicates; returns the entry's index,
  // stable across later insertions.
  size_t Insert(K key, V value) {
    if ((entries_.size() + 1) * 4 > index_.size() * 3) Grow();
    size_t slot = entries_.size();
    entries_.emplace_back(key, value);
    Link(key, slot);
    return slot;
  }
  V& At(size_t index) { return entries_[index].second; }

 private:
  static size_t Hash(K key) {
    auto bits = reinterpret_cast<uintptr_t>(key);
    return static_cast<size_t>((bits >> 4) * 0x9E3779B97F4A7C15ull);
  }
  void Link(K key, size_t slot) {
    for (size_t i = Hash(key) & mask_;; i = (i + 1) & mask_) {
      if (index_[i] < 0) {
        index_[i] = static_cast<int32_t>(slot);
        return;
      }
    }
  }
  void Grow() {
    size_t cap = index_.empty() ? 16 : index_.size() * 2;
    index_.assign(cap, -1);
    mask_ = cap - 1;
    for (size_t e = 0; e < entries_.size(); ++e) Link(entries_[e].first, e);
  }

  std::vector<std::pair<K, V>> entries_;
  std::vector<int32_t> index_;
  size_t mask_ = 0;
};

void Add(VerifyReport& report, const char* rule, std::string path,
         std::string message) {
  report.violations.push_back(
      VerifyViolation{rule, std::move(path), std::move(message)});
}

void Add(VerifyReport& report, const char* rule, const PathNode& path,
         std::string message) {
  Add(report, rule, path.Str(), std::move(message));
}

// ---------------------------------------------------------------------------
// Scalar expression scanning (shared by the algebra and physical layers)
// ---------------------------------------------------------------------------

// Accumulated facts about one scalar expression tree.
struct ScalarScan {
  bool has_null = false;       // a null node or application argument
  int min_col = -1;            // smallest column referenced, -1 if none
  int max_col = -1;            // largest column referenced, -1 if none
  uint32_t bad_const = 0;      // an out-of-range constant-pool id
  bool has_bad_const = false;
};

void ScanScalar(const ScalarExpr* e, const AstContext& ctx, ScalarScan& out) {
  if (e == nullptr) {
    out.has_null = true;
    return;
  }
  switch (e->kind()) {
    case ScalarExpr::Kind::kCol:
      if (out.max_col < e->col()) out.max_col = e->col();
      if (out.min_col < 0 || e->col() < out.min_col) out.min_col = e->col();
      break;
    case ScalarExpr::Kind::kConst:
      if (e->const_id() >= ctx.NumConstants()) {
        out.has_bad_const = true;
        out.bad_const = e->const_id();
      }
      break;
    case ScalarExpr::Kind::kApply:
      for (const ScalarExpr* a : e->args()) ScanScalar(a, ctx, out);
      break;
  }
}

// Reports a scanned expression against its input schema width. `what`
// labels the expression in messages ("projection expression 2", "join
// condition 0 lhs", ...). The rule prefix selects alg.* or phys.* ids.
void ReportScalar(VerifyReport& report, const ScalarScan& scan,
                  int input_arity, const PathNode& path, const Label& what,
                  bool physical) {
  if (scan.has_null) {
    Add(report, physical ? "phys.expr-null" : "alg.expr-null", path,
        what.Str() + " is (or contains) a null expression");
  }
  if (scan.has_bad_const) {
    Add(report, physical ? "phys.const-pool" : "alg.const-pool", path,
        what.Str() + " references constant-pool id " +
            std::to_string(scan.bad_const) + " beyond the pool");
  }
  if (scan.max_col >= input_arity) {
    Add(report, physical ? "phys.col-range" : "alg.col-range", path,
        what.Str() + " references column @" +
            std::to_string(scan.max_col + 1) +
            " but the input schema has " + std::to_string(input_arity) +
            " column(s)");
  }
}

// ---------------------------------------------------------------------------
// Formula rules (stages 1 and 2)
// ---------------------------------------------------------------------------

class FormulaChecker {
 public:
  FormulaChecker(const AstContext& ctx, VerifyReport& report,
                 bool require_spans, bool reject_shadowing)
      : ctx_(ctx),
        report_(report),
        require_spans_(require_spans),
        reject_shadowing_(reject_shadowing) {}

  void Check(const Formula* f, const char* root) {
    PathNode path{nullptr, root, -1};
    scope_.clear();
    free_.clear();
    Walk(f, path);
  }

  // Free variables seen during the last Check, collected for free by the
  // scope-tracking walk (saves the callers a second full traversal).
  SymbolSet FreeSeen() const { return SymbolSet(free_); }

 private:
  void WalkTerm(const Term* t, const PathNode& path) {
    if (t == nullptr) {
      Add(report_, "form.null-node", path, "null term");
      return;
    }
    switch (t->kind()) {
      case Term::Kind::kVar:
        if (!InScope(0, scope_.size(), t->symbol()) &&
            std::find(free_.begin(), free_.end(), t->symbol()) ==
                free_.end()) {
          free_.push_back(t->symbol());
        }
        break;
      case Term::Kind::kConst:
        if (t->const_id() >= ctx_.NumConstants()) {
          Add(report_, "form.const-pool", path,
              "term references constant-pool id " +
                  std::to_string(t->const_id()) + " beyond the pool");
        }
        break;
      case Term::Kind::kApply: {
        int arity = static_cast<int>(t->args().size());
        int* prev = fn_arities_.Find(t->symbol());
        if (prev == nullptr) {
          fn_arities_.Insert(t->symbol(), arity);
        } else if (*prev != arity) {
          Add(report_, "form.fn-arity", path,
              "function '" + std::string(ctx_.symbols().Name(t->symbol())) +
                  "' used with arity " + std::to_string(arity) +
                  " after arity " + std::to_string(*prev));
        }
        int i = 0;
        for (const Term* a : t->args()) {
          PathNode child{&path, nullptr, i++};
          WalkTerm(a, child);
        }
        break;
      }
    }
  }

  // True when `v` occurs in scope_[begin, end).
  bool InScope(size_t begin, size_t end, Symbol v) const {
    for (size_t i = begin; i < end; ++i) {
      if (scope_[i] == v) return true;
    }
    return false;
  }

  void Walk(const Formula* f, const PathNode& path) {
    if (f == nullptr) {
      Add(report_, "form.null-node", path, "null formula");
      return;
    }
    if (require_spans_ && f->kind() != FormulaKind::kTrue &&
        f->kind() != FormulaKind::kFalse &&
        ctx_.SpanOf(f) == nullptr) {
      Add(report_, "form.span", path,
          "parsed formula node has no source span recorded");
    }
    switch (f->kind()) {
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
        break;
      case FormulaKind::kRel: {
        int arity = static_cast<int>(f->terms().size());
        int* prev = rel_arities_.Find(f->rel());
        if (prev == nullptr) {
          rel_arities_.Insert(f->rel(), arity);
        } else if (*prev != arity) {
          Add(report_, "form.rel-arity", path,
              "relation '" + std::string(ctx_.symbols().Name(f->rel())) +
                  "' used with arity " + std::to_string(arity) +
                  " after arity " + std::to_string(*prev));
        }
        int i = 0;
        for (const Term* t : f->terms()) {
          PathNode child{&path, nullptr, i++};
          WalkTerm(t, child);
        }
        break;
      }
      case FormulaKind::kEq:
      case FormulaKind::kNeq:
      case FormulaKind::kLess:
      case FormulaKind::kLessEq: {
        PathNode lhs{&path, ".lhs", -1};
        PathNode rhs{&path, ".rhs", -1};
        WalkTerm(f->lhs(), lhs);
        WalkTerm(f->rhs(), rhs);
        break;
      }
      case FormulaKind::kNot: {
        PathNode child{&path, ".0", -1};
        Walk(f->child(), child);
        break;
      }
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        int i = 0;
        for (const Formula* c : f->children()) {
          PathNode child{&path, nullptr, i++};
          Walk(c, child);
        }
        break;
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        if (f->vars().empty()) {
          Add(report_, "form.quantifier-vars", path,
              "quantifier with an empty variable list");
        }
        size_t mark = scope_.size();
        for (Symbol v : f->vars()) {
          if (InScope(mark, scope_.size(), v)) {
            Add(report_, "form.quantifier-vars", path,
                "variable '" + std::string(ctx_.symbols().Name(v)) +
                    "' bound twice by the same quantifier");
          }
          if (reject_shadowing_ && InScope(0, mark, v)) {
            Add(report_, "form.shadow", path,
                "quantifier shadows enclosing binding of '" +
                    std::string(ctx_.symbols().Name(v)) +
                    "' (rectified formulas have distinct bound variables)");
          }
          scope_.push_back(v);
        }
        PathNode child{&path, ".0", -1};
        Walk(f->child(), child);
        scope_.resize(mark);
        break;
      }
    }
  }

  const AstContext& ctx_;
  VerifyReport& report_;
  bool require_spans_;
  bool reject_shadowing_;
  FlatMap<Symbol, int> rel_arities_;
  FlatMap<Symbol, int> fn_arities_;
  std::vector<Symbol> scope_;  // enclosing quantifier bindings, mark/restore
  std::vector<Symbol> free_;   // free variables seen, deduplicated
};

// ---------------------------------------------------------------------------
// Algebra rules (stages 3 and 4)
// ---------------------------------------------------------------------------

class AlgebraChecker {
 public:
  AlgebraChecker(const AstContext& ctx, VerifyReport& report,
                 const AlgebraOptions& options)
      : ctx_(ctx), report_(report), options_(options) {}

  void Check(const AlgExpr* root) {
    if (root == nullptr) {
      Add(report_, "alg.null-node", "root", "null plan root");
      return;
    }
    if (options_.expected_arity >= 0 &&
        root->arity() != options_.expected_arity) {
      Add(report_, "alg.root-arity", "root",
          "plan root has arity " + std::to_string(root->arity()) +
              " but the query head has " +
              std::to_string(options_.expected_arity) + " variable(s)");
    }
    PathNode path{nullptr, "root", -1};
    Walk(root, path);
  }

 private:
  enum class State : uint8_t { kOpen, kDone };

  void CheckExpr(const ScalarExpr* e, int input_arity, const PathNode& path,
                 const Label& what) {
    ScalarScan scan;
    ScanScalar(e, ctx_, scan);
    ReportScalar(report_, scan, input_arity, path, what, /*physical=*/false);
  }

  void CheckConds(const AlgExpr* node, int input_arity,
                  const PathNode& path) {
    int i = 0;
    for (const AlgCondition& c : node->conds()) {
      int idx = i++;
      if (c.lhs == nullptr || c.rhs == nullptr) {
        Add(report_, "alg.cond-null", path,
            Label{"condition ", idx}.Str() + " has a null side");
        continue;
      }
      CheckExpr(c.lhs, input_arity, path, Label{"condition ", idx, " lhs"});
      CheckExpr(c.rhs, input_arity, path, Label{"condition ", idx, " rhs"});
    }
  }

  // One child, reported when absent; returns false to stop kind checks.
  bool RequireChild(const AlgExpr* child, const char* which,
                    const PathNode& path) {
    if (child != nullptr) return true;
    Add(report_, "alg.child-missing", path,
        std::string("missing ") + which + " operand");
    return false;
  }

  void Walk(const AlgExpr* node, const PathNode& path) {
    if (State* seen = state_.Find(node)) {
      if (*seen == State::kOpen) {
        Add(report_, "alg.cycle", path, "plan graph contains a cycle");
      }
      return;  // shared subplan already verified (plans are DAGs)
    }
    size_t slot = state_.Insert(node, State::kOpen);
    const char* kind = AlgKindName(node->kind());
    switch (node->kind()) {
      case AlgKind::kRel:
        if (node->arity() < 0) {
          Add(report_, "alg.rel-arity", path,
              std::string(kind) + " has negative arity " +
                  std::to_string(node->arity()));
        }
        CheckLeaf(node, path);
        break;
      case AlgKind::kProject: {
        if (!RequireChild(node->input(), "input", path)) break;
        CheckUnary(node, path);
        if (static_cast<int>(node->exprs().size()) != node->arity()) {
          Add(report_, "alg.project-arity", path,
              "kProject declares arity " + std::to_string(node->arity()) +
                  " but has " + std::to_string(node->exprs().size()) +
                  " output expression(s)");
        }
        int i = 0;
        for (const ScalarExpr* e : node->exprs()) {
          CheckExpr(e, node->input()->arity(), path,
                    Label{"projection expression ", i++});
        }
        PathNode child{&path, ".input", -1};
        Walk(node->input(), child);
        break;
      }
      case AlgKind::kSelect: {
        if (!RequireChild(node->input(), "input", path)) break;
        CheckUnary(node, path);
        if (node->arity() != node->input()->arity()) {
          Add(report_, "alg.select-arity", path,
              "kSelect has arity " + std::to_string(node->arity()) +
                  " but its input has arity " +
                  std::to_string(node->input()->arity()));
        }
        CheckConds(node, node->input()->arity(), path);
        PathNode child{&path, ".input", -1};
        Walk(node->input(), child);
        break;
      }
      case AlgKind::kJoin: {
        bool l = RequireChild(node->left(), "left", path);
        bool r = RequireChild(node->right(), "right", path);
        if (!l || !r) break;
        int combined = node->left()->arity() + node->right()->arity();
        if (node->arity() != combined) {
          Add(report_, "alg.join-arity", path,
              "kJoin has arity " + std::to_string(node->arity()) +
                  " but its operands concatenate to arity " +
                  std::to_string(combined));
        }
        CheckConds(node, combined, path);
        PathNode left{&path, ".left", -1};
        PathNode right{&path, ".right", -1};
        Walk(node->left(), left);
        Walk(node->right(), right);
        break;
      }
      case AlgKind::kUnion:
      case AlgKind::kDiff: {
        bool l = RequireChild(node->left(), "left", path);
        bool r = RequireChild(node->right(), "right", path);
        if (!l || !r) break;
        const char* rule = node->kind() == AlgKind::kUnion ? "alg.union-arity"
                                                           : "alg.diff-arity";
        if (node->left()->arity() != node->right()->arity() ||
            node->arity() != node->left()->arity()) {
          Add(report_, rule, path,
              std::string(kind) + " has arity " +
                  std::to_string(node->arity()) + " over operands of arity " +
                  std::to_string(node->left()->arity()) + " and " +
                  std::to_string(node->right()->arity()) +
                  " (all three must agree)");
        }
        PathNode left{&path, ".left", -1};
        PathNode right{&path, ".right", -1};
        Walk(node->left(), left);
        Walk(node->right(), right);
        break;
      }
      case AlgKind::kUnit:
        if (node->arity() != 0) {
          Add(report_, "alg.unit-arity", path,
              "kUnit must have arity 0, has " +
                  std::to_string(node->arity()));
        }
        CheckLeaf(node, path);
        break;
      case AlgKind::kEmpty:
        if (node->arity() < 0) {
          Add(report_, "alg.empty-arity", path,
              "kEmpty has negative arity " + std::to_string(node->arity()));
        }
        CheckLeaf(node, path);
        break;
      case AlgKind::kAdom: {
        if (!options_.allow_adom) {
          Add(report_, "alg.adom-in-plan", path,
              "kAdom in a directly-translated plan (only the AB88 baseline "
              "translator emits active-domain scans)");
        }
        if (node->arity() != 1 || node->adom_level() < 0) {
          Add(report_, "alg.adom-shape", path,
              "kAdom must be unary with a non-negative closure level (arity " +
                  std::to_string(node->arity()) + ", level " +
                  std::to_string(node->adom_level()) + ")");
        }
        for (uint32_t id : node->adom_consts()) {
          if (id >= ctx_.NumConstants()) {
            Add(report_, "alg.const-pool", path,
                "kAdom references constant-pool id " + std::to_string(id) +
                    " beyond the pool");
          }
        }
        CheckLeaf(node, path);
        break;
      }
    }
    state_.At(slot) = State::kDone;
  }

  void CheckLeaf(const AlgExpr* node, const PathNode& path) {
    if (node->left() != nullptr || node->right() != nullptr) {
      Add(report_, "alg.child-extra", path,
          std::string(AlgKindName(node->kind())) +
              " is a leaf but has a child operand");
    }
  }

  void CheckUnary(const AlgExpr* node, const PathNode& path) {
    if (node->right() != nullptr) {
      Add(report_, "alg.child-extra", path,
          std::string(AlgKindName(node->kind())) +
              " is unary but has a right operand");
    }
  }

  const AstContext& ctx_;
  VerifyReport& report_;
  AlgebraOptions options_;
  PtrMap<const AlgExpr*, State> state_;
};

// ---------------------------------------------------------------------------
// Physical rules (stage 5)
// ---------------------------------------------------------------------------

class PhysicalChecker {
 public:
  PhysicalChecker(const PhysicalPlan& plan, VerifyReport& report)
      : plan_(plan), report_(report) {}

  void Check(const AlgExpr* algebra) {
    const PhysicalOp* root = plan_.root();
    if (root == nullptr) {
      Add(report_, "phys.root-null", "root", "physical plan has no root");
      return;
    }
    if (plan_.ctx() == nullptr) {
      Add(report_, "phys.root-null", "root",
          "physical plan has no AstContext (constant pool unavailable)");
      return;
    }
    PathNode path{nullptr, "root", -1};
    Walk(root, path);
    if (algebra != nullptr) Mirror(algebra, root, path);
  }

 private:
  enum class State : uint8_t { kOpen, kDone };

  // The AstContext the plan's constant pool resolves against; scalar
  // expressions were built into it at translation time.
  const AstContext& ctx() const { return *plan_.ctx(); }

  void CheckExpr(const ScalarExpr* e, int input_arity, const PathNode& path,
                 const Label& what) {
    ScalarScan scan;
    ScanScalar(e, ctx(), scan);
    ReportScalar(report_, scan, input_arity, path, what, /*physical=*/true);
  }

  void Walk(const PhysicalOp* op, const PathNode& path) {
    if (State* seen = state_.Find(op)) {
      if (*seen == State::kOpen) {
        Add(report_, "phys.cycle", path, "operator graph contains a cycle");
      }
      return;
    }
    size_t slot = state_.Insert(op, State::kOpen);
    const char* kind = PhysOpKindName(op->kind);

    // Scheduling-safety: execution attributes memory to per-operator
    // MemoryScopes indexed by op id, so every operator must carry a
    // distinct id inside the plan's slot table.
    if (op->id < 0 || op->id >= plan_.NumOperators()) {
      Add(report_, "phys.op-id", path,
          std::string(kind) + " has id " + std::to_string(op->id) +
              " outside the plan's " + std::to_string(plan_.NumOperators()) +
              " stats/memory slot(s)");
    } else if (std::find(ids_.begin(), ids_.end(), op->id) != ids_.end()) {
      Add(report_, "phys.op-id", path,
          std::string(kind) + " reuses op id " + std::to_string(op->id) +
              " (memory attribution would merge two operators)");
    } else {
      ids_.push_back(op->id);
    }
    if (op->arity < 0) {
      Add(report_, "phys.arity", path,
          std::string(kind) + " has negative arity " +
              std::to_string(op->arity));
    }

    const bool is_leaf = op->kind == PhysOpKind::kScan ||
                         op->kind == PhysOpKind::kAdomScan ||
                         op->kind == PhysOpKind::kSingleton;
    const bool is_binary = op->kind == PhysOpKind::kHashJoin ||
                           op->kind == PhysOpKind::kNestedLoopJoin ||
                           op->kind == PhysOpKind::kUnionMerge ||
                           op->kind == PhysOpKind::kDiffAnti;
    if (is_leaf) {
      if (op->left != nullptr || op->right != nullptr) {
        Add(report_, "phys.children", path,
            std::string(kind) + " is a leaf but has children");
      }
    } else if (is_binary) {
      if (op->left == nullptr || op->right == nullptr) {
        Add(report_, "phys.children", path,
            std::string(kind) + " needs two children");
        state_.At(slot) = State::kDone;
        return;
      }
    } else {  // unary: ProjectMap, FilterSelect, Materialize
      if (op->left == nullptr) {
        Add(report_, "phys.children", path,
            std::string(kind) + " needs an input");
        state_.At(slot) = State::kDone;
        return;
      }
      if (op->right != nullptr) {
        Add(report_, "phys.children", path,
            std::string(kind) + " is unary but has a right child");
      }
    }

    switch (op->kind) {
      case PhysOpKind::kScan:
        break;
      case PhysOpKind::kProjectMap: {
        if (static_cast<int>(op->exprs.size()) != op->arity) {
          Add(report_, "phys.project-arity", path,
              "ProjectMap declares arity " + std::to_string(op->arity) +
                  " but has " + std::to_string(op->exprs.size()) +
                  " output expression(s)");
        }
        int i = 0;
        for (const ScalarExpr* e : op->exprs) {
          CheckExpr(e, op->left->arity, path,
                    Label{"projection expression ", i++});
        }
        break;
      }
      case PhysOpKind::kFilterSelect: {
        if (op->arity != op->left->arity) {
          Add(report_, "phys.arity", path,
              "FilterSelect arity " + std::to_string(op->arity) +
                  " != input arity " + std::to_string(op->left->arity));
        }
        CheckConds(op, op->left->arity, path);
        break;
      }
      case PhysOpKind::kHashJoin:
      case PhysOpKind::kNestedLoopJoin: {
        int combined = op->left->arity + op->right->arity;
        if (op->arity != combined) {
          Add(report_, "phys.arity", path,
              std::string(kind) + " arity " + std::to_string(op->arity) +
                  " != concatenated input arity " + std::to_string(combined));
        }
        if (op->split != op->left->arity) {
          Add(report_, "phys.join-split", path,
              std::string(kind) + " split " + std::to_string(op->split) +
                  " != left input arity " + std::to_string(op->left->arity));
        }
        CheckConds(op, combined, path);
        if (op->kind == PhysOpKind::kNestedLoopJoin && !op->keys.empty()) {
          Add(report_, "phys.key-null", path,
              "NestedLoopJoin carries equi-keys (should have lowered to a "
              "HashJoin)");
        }
        int i = 0;
        for (const PhysicalOp::KeyPair& k : op->keys) {
          int idx = i++;
          if (k.left_key == nullptr || k.right_key == nullptr) {
            Add(report_, "phys.key-null", path,
                Label{"key ", idx}.Str() + " has a null side");
            continue;
          }
          // left_key evaluates over the left tuple; right_key over the
          // concatenated schema with an empty left part, so its columns
          // must all land on the build side.
          ScalarScan l, r;
          ScanScalar(k.left_key, ctx(), l);
          ScanScalar(k.right_key, ctx(), r);
          ReportScalar(report_, l, op->split, path,
                       Label{"key ", idx, " left side"}, /*physical=*/true);
          ReportScalar(report_, r, combined, path,
                       Label{"key ", idx, " right side"}, /*physical=*/true);
          if (l.max_col >= op->split) {
            Add(report_, "phys.key-side", path,
                Label{"key ", idx}.Str() +
                    " probe expression reads a build-side column");
          }
          if (r.min_col >= 0 && r.min_col < op->split) {
            Add(report_, "phys.key-side", path,
                Label{"key ", idx}.Str() +
                    " build expression reads a probe-side column");
          }
        }
        break;
      }
      case PhysOpKind::kUnionMerge:
      case PhysOpKind::kDiffAnti:
        if (op->left->arity != op->right->arity ||
            op->arity != op->left->arity) {
          Add(report_, "phys.arity", path,
              std::string(kind) + " arity " + std::to_string(op->arity) +
                  " over inputs of arity " + std::to_string(op->left->arity) +
                  " and " + std::to_string(op->right->arity) +
                  " (all three must agree)");
        }
        break;
      case PhysOpKind::kAdomScan:
        if (op->arity != 1 || op->adom_level < 0) {
          Add(report_, "phys.arity", path,
              "AdomScan must be unary with a non-negative level (arity " +
                  std::to_string(op->arity) + ", level " +
                  std::to_string(op->adom_level) + ")");
        }
        break;
      case PhysOpKind::kSingleton:
        if (op->unit && op->arity != 0) {
          Add(report_, "phys.arity", path,
              "unit Singleton must have arity 0, has " +
                  std::to_string(op->arity));
        }
        break;
      case PhysOpKind::kMaterialize: {
        if (op->arity != op->left->arity) {
          Add(report_, "phys.arity", path,
              "Materialize arity " + std::to_string(op->arity) +
                  " != input arity " + std::to_string(op->left->arity));
        }
        if (op->memo_slot < 0 || op->memo_slot >= plan_.NumMemoSlots()) {
          Add(report_, "phys.memo", path,
              "Materialize cache slot " + std::to_string(op->memo_slot) +
                  " outside the plan's " +
                  std::to_string(plan_.NumMemoSlots()) + " slot(s)");
        } else if (std::find(memo_slots_.begin(), memo_slots_.end(),
                             op->memo_slot) != memo_slots_.end()) {
          Add(report_, "phys.memo-dup", path,
              "Materialize cache slot " + std::to_string(op->memo_slot) +
                  " used by two operators (consumers would read the wrong "
                  "cached result)");
        } else {
          memo_slots_.push_back(op->memo_slot);
        }
        if (op->consumers < 2) {
          Add(report_, "phys.memo", path,
              "Materialize with " + std::to_string(op->consumers) +
                  " consumer(s); shared nodes are only materialized for >= "
                  "2");
        }
        break;
      }
    }

    if (op->left != nullptr) {
      PathNode left{&path, ".left", -1};
      Walk(op->left, left);
    }
    if (op->right != nullptr) {
      PathNode right{&path, ".right", -1};
      Walk(op->right, right);
    }
    state_.At(slot) = State::kDone;
  }

  void CheckConds(const PhysicalOp* op, int input_arity,
                  const PathNode& path) {
    int i = 0;
    for (const AlgCondition& c : op->conds) {
      int idx = i++;
      if (c.lhs == nullptr || c.rhs == nullptr) {
        Add(report_, "phys.cond-null", path,
            Label{"condition ", idx}.Str() + " has a null side");
        continue;
      }
      CheckExpr(c.lhs, input_arity, path, Label{"condition ", idx, " lhs"});
      CheckExpr(c.rhs, input_arity, path, Label{"condition ", idx, " rhs"});
    }
  }

  // Lock-step walk: the lowered operator for each algebra node must have
  // the mirroring kind and arity. Lowering memoizes shared algebra nodes,
  // so each AlgExpr must map to exactly one PhysicalOp.
  void Mirror(const AlgExpr* a, const PhysicalOp* p, const PathNode& path) {
    if (a == nullptr || p == nullptr) return;  // reported structurally
    if (const PhysicalOp** prev = mirror_.Find(a)) {
      if (*prev != p) {
        Add(report_, "phys.mirror", path,
            "shared algebra node lowered to two different operators "
            "(materialization memo broken)");
      }
      return;
    }
    mirror_.Insert(a, p);
    // Shared nodes are wrapped in a Materialize; unwrap for kind matching.
    const PhysicalOp* body = p;
    if (body->kind == PhysOpKind::kMaterialize) body = body->left;
    if (body == nullptr) return;
    if (p->arity != a->arity()) {
      Add(report_, "phys.mirror", path,
          std::string(PhysOpKindName(p->kind)) + " arity " +
              std::to_string(p->arity) + " != algebra " +
              AlgKindName(a->kind()) + " arity " +
              std::to_string(a->arity()));
    }
    if (body != p && body->arity != a->arity()) {
      // The operator under a Materialize wrapper must mirror too.
      Add(report_, "phys.mirror", path,
          std::string(PhysOpKindName(body->kind)) + " arity " +
              std::to_string(body->arity) + " != algebra " +
              AlgKindName(a->kind()) + " arity " +
              std::to_string(a->arity()));
    }
    bool kind_ok = false;
    switch (a->kind()) {
      case AlgKind::kRel:
        kind_ok = body->kind == PhysOpKind::kScan;
        break;
      case AlgKind::kProject:
        kind_ok = body->kind == PhysOpKind::kProjectMap;
        break;
      case AlgKind::kSelect:
        kind_ok = body->kind == PhysOpKind::kFilterSelect;
        break;
      case AlgKind::kJoin:
        kind_ok = body->kind == PhysOpKind::kHashJoin ||
                  body->kind == PhysOpKind::kNestedLoopJoin;
        if (kind_ok &&
            body->keys.size() + body->conds.size() != a->conds().size()) {
          Add(report_, "phys.mirror", path,
              "join partitioned " + std::to_string(a->conds().size()) +
                  " algebra condition(s) into " +
                  std::to_string(body->keys.size()) + " key(s) + " +
                  std::to_string(body->conds.size()) + " residual(s)");
        }
        break;
      case AlgKind::kUnion:
        kind_ok = body->kind == PhysOpKind::kUnionMerge;
        break;
      case AlgKind::kDiff:
        kind_ok = body->kind == PhysOpKind::kDiffAnti;
        break;
      case AlgKind::kUnit:
        kind_ok = body->kind == PhysOpKind::kSingleton && body->unit;
        break;
      case AlgKind::kEmpty:
        kind_ok = body->kind == PhysOpKind::kSingleton && !body->unit;
        break;
      case AlgKind::kAdom:
        kind_ok = body->kind == PhysOpKind::kAdomScan;
        break;
    }
    if (!kind_ok) {
      Add(report_, "phys.mirror", path,
          std::string("algebra ") + AlgKindName(a->kind()) +
              " lowered to " + PhysOpKindName(body->kind));
    }
    switch (a->kind()) {
      case AlgKind::kProject:
      case AlgKind::kSelect: {
        PathNode left{&path, ".left", -1};
        Mirror(a->input(), body->left, left);
        break;
      }
      case AlgKind::kJoin:
      case AlgKind::kUnion:
      case AlgKind::kDiff: {
        PathNode left{&path, ".left", -1};
        PathNode right{&path, ".right", -1};
        Mirror(a->left(), body->left, left);
        Mirror(a->right(), body->right, right);
        break;
      }
      case AlgKind::kRel:
      case AlgKind::kUnit:
      case AlgKind::kEmpty:
      case AlgKind::kAdom:
        break;
    }
  }

  const PhysicalPlan& plan_;
  VerifyReport& report_;
  PtrMap<const PhysicalOp*, State> state_;
  PtrMap<const AlgExpr*, const PhysicalOp*> mirror_;
  std::vector<int> ids_;
  std::vector<int> memo_slots_;
};

void WalkProfile(const ExecProfile& node, const PathNode& path,
                 VerifyReport& report) {
  if (node.stats.est_rows < -1) {
    Add(report, "prof.est-rows", path,
        std::string(PhysOpKindName(node.op)) + " carries estimate " +
            std::to_string(node.stats.est_rows) + " (must be >= -1)");
  }
  if (node.arity < 0) {
    Add(report, "prof.arity", path,
        std::string(PhysOpKindName(node.op)) + " has negative arity " +
            std::to_string(node.arity));
  }
  int i = 0;
  for (const ExecProfile& c : node.children) {
    PathNode child{&path, nullptr, i++};
    WalkProfile(c, child, report);
  }
}

constexpr std::string_view kReportHeader = "stage-boundary verification";

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kCalculus: return "calculus";
    case Stage::kSafetyFormula: return "safety-formula";
    case Stage::kRanfAlgebra: return "ranf-algebra";
    case Stage::kOptimizedAlgebra: return "optimized-algebra";
    case Stage::kPhysical: return "physical";
  }
  return "?";
}

bool VerifyReport::Has(std::string_view rule) const {
  for (const VerifyViolation& v : violations) {
    if (v.rule == rule) return true;
  }
  return false;
}

std::string VerifyReport::ToString() const {
  std::string out = std::string(kReportHeader) + " failed [" +
                    StageName(stage) + "]: " +
                    std::to_string(violations.size()) + " violation(s)";
  for (const VerifyViolation& v : violations) {
    out += "\n  [" + v.rule + "] at " + v.path + ": " + v.message;
  }
  return out;
}

Status VerifyReport::ToStatus() const {
  if (ok()) return Status::Ok();
  return InternalError(ToString());
}

std::vector<diag::Diagnostic> VerifyReport::ToDiagnostics() const {
  std::vector<diag::Diagnostic> out;
  out.reserve(violations.size());
  for (const VerifyViolation& v : violations) {
    diag::Diagnostic d("verify." + v.rule, diag::Severity::kError,
                       v.message + " (at " + v.path + ")");
    d.AddNote(std::string("stage: ") + StageName(stage));
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<diag::Diagnostic> DiagnosticsFromStatus(const Status& status) {
  std::vector<diag::Diagnostic> out;
  std::string_view msg = status.message();
  if (status.ok() || msg.substr(0, kReportHeader.size()) != kReportHeader) {
    return out;
  }
  // Each violation renders as "\n  [rule] at path: message".
  size_t pos = 0;
  while ((pos = msg.find("\n  [", pos)) != std::string_view::npos) {
    pos += 4;
    size_t close = msg.find(']', pos);
    if (close == std::string_view::npos) break;
    std::string rule(msg.substr(pos, close - pos));
    size_t eol = msg.find('\n', close);
    if (eol == std::string_view::npos) eol = msg.size();
    std::string_view rest = msg.substr(close + 1, eol - close - 1);
    if (rest.substr(0, 4) == " at ") rest.remove_prefix(4);
    out.emplace_back("verify." + rule, diag::Severity::kError,
                     std::string(rest));
    pos = eol;
  }
  return out;
}

bool Enabled() {
  int force = g_force.load(std::memory_order_relaxed);
  if (force >= 0) return force != 0;
#ifndef NDEBUG
  return true;
#else
  return EnvEnabled();
#endif
}

void ForceEnabled(int mode) {
  g_force.store(mode < 0 ? -1 : (mode != 0 ? 1 : 0),
                std::memory_order_relaxed);
}

VerifyReport VerifyCalculus(const AstContext& ctx, const Query& q,
                            bool require_spans) {
  VerifyReport report;
  report.stage = Stage::kCalculus;
  if (q.body == nullptr) {
    Add(report, "form.null-node", "body", "query has no body");
    return report;
  }
  FormulaChecker checker(ctx, report, require_spans,
                         /*reject_shadowing=*/false);
  checker.Check(q.body, "body");
  SymbolSet seen;
  SymbolSet free = checker.FreeSeen();
  for (Symbol h : q.head) {
    if (seen.Contains(h)) {
      Add(report, "calc.head-dup", "head",
          "head variable '" + std::string(ctx.symbols().Name(h)) +
              "' listed twice");
    }
    seen.Insert(h);
    if (!free.Contains(h)) {
      Add(report, "calc.head-free", "head",
          "head variable '" + std::string(ctx.symbols().Name(h)) +
              "' is not free in the body");
    }
  }
  return report;
}

VerifyReport VerifySafetyFormula(const AstContext& ctx, const Formula* f,
                                 const SymbolSet& allowed_free) {
  VerifyReport report;
  report.stage = Stage::kSafetyFormula;
  FormulaChecker checker(ctx, report, /*require_spans=*/false,
                         /*reject_shadowing=*/true);
  checker.Check(f, "body");
  if (f != nullptr) {
    SymbolSet free = checker.FreeSeen();
    if (!free.IsSubsetOf(allowed_free)) {
      SymbolSet escaped = free.Minus(allowed_free);
      std::string names;
      for (Symbol s : escaped) {
        if (!names.empty()) names += ", ";
        names += std::string(ctx.symbols().Name(s));
      }
      Add(report, "form.free-vars", "body",
          "rewrite introduced free variable(s) {" + names +
              "} not free in the original body");
    }
  }
  return report;
}

VerifyReport VerifyAlgebra(const AstContext& ctx, const AlgExpr* plan,
                           const AlgebraOptions& options) {
  VerifyReport report;
  report.stage = options.stage;
  AlgebraChecker checker(ctx, report, options);
  checker.Check(plan);
  return report;
}

VerifyReport VerifyRanfAlgebra(const AstContext& ctx, const Formula* ranf,
                               const SymbolSet& context,
                               const SymbolSet& invertible,
                               const AlgExpr* plan,
                               const AlgebraOptions& options) {
  AlgebraOptions opts = options;
  opts.stage = Stage::kRanfAlgebra;
  VerifyReport report = VerifyAlgebra(ctx, plan, opts);
  if (ranf == nullptr) {
    Add(report, "form.null-node", "ranf", "null RANF formula");
  } else if (!IsRanf(ranf, context, invertible)) {
    Add(report, "ranf.shape", "ranf",
        "formula fails the RANF conditions for its context (every subformula "
        "must map directly to an algebra operator)");
  }
  return report;
}

VerifyReport VerifyPhysical(const PhysicalPlan& plan, const AlgExpr* algebra) {
  VerifyReport report;
  report.stage = Stage::kPhysical;
  PhysicalChecker checker(plan, report);
  checker.Check(algebra);
  return report;
}

VerifyReport VerifyProfile(const ExecProfile& profile) {
  VerifyReport report;
  report.stage = Stage::kPhysical;
  PathNode root{nullptr, "root", -1};
  WalkProfile(profile, root, report);
  return report;
}

}  // namespace emcalc::verify
