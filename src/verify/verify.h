// Stage-boundary verification of compiler intermediate results.
//
// The pipeline crosses five representation boundaries:
//
//   calculus AST -> safety-annotated (rectified + ENF) formula
//                -> RANF algebra (the raw translated plan)
//                -> optimized algebra
//                -> physical plan
//
// Each boundary gets a static verifier: a battery of named rules that walk
// the artifact and report structural invariant violations (arity
// disagreements, dangling column indices, null operands, out-of-range
// constant-pool ids, broken algebra/physical mirroring). A violation means
// a compiler bug, never a user error — user-facing validation (parse
// errors, well-formedness, safety) happens before translation. The rules
// exist so a miscompilation is caught at the boundary that introduced it,
// with a rule id and node path, instead of surfacing as wrong rows or a
// crash at execution time.
//
// Verification is always on in Debug builds and opt-in elsewhere via
// EMCALC_VERIFY=1 (see Enabled()); the call sites in core/compiler,
// translate/pipeline, and exec/lower are all gated on it. docs/verifier.md
// catalogs the rules.
#ifndef EMCALC_VERIFY_VERIFY_H_
#define EMCALC_VERIFY_VERIFY_H_

#include <string>
#include <vector>

#include "src/algebra/ast.h"
#include "src/base/status.h"
#include "src/base/symbol_set.h"
#include "src/calculus/ast.h"
#include "src/diag/diagnostic.h"
#include "src/exec/physical.h"

namespace emcalc::verify {

// The five verified boundaries.
enum class Stage : uint8_t {
  kCalculus,          // parsed (or programmatically built) query
  kSafetyFormula,     // rectified + safety-checked + ENF formula
  kRanfAlgebra,       // RANF formula and the raw translated plan
  kOptimizedAlgebra,  // plan after the algebraic optimizer
  kPhysical,          // lowered physical operator DAG
};

// Stable display name, e.g. "ranf-algebra".
const char* StageName(Stage stage);

// One broken invariant: a stable rule id (e.g. "alg.project-arity"), the
// path of the offending node from the artifact root (e.g.
// "root.left.right"), and a human-readable message.
struct VerifyViolation {
  std::string rule;
  std::string path;
  std::string message;
};

// The result of verifying one artifact at one stage.
struct VerifyReport {
  Stage stage = Stage::kCalculus;
  std::vector<VerifyViolation> violations;

  bool ok() const { return violations.empty(); }
  bool Has(std::string_view rule) const;

  // Multi-line rendering, one "[rule] at path: message" line per violation.
  std::string ToString() const;
  // kInternal error embedding ToString(); Ok when the report is clean.
  Status ToStatus() const;
  // One diagnostic per violation, code "verify.<rule>" — the shape the
  // query log attaches to compile records (like lint findings).
  std::vector<diag::Diagnostic> ToDiagnostics() const;
};

// Recovers ToDiagnostics() from a failed ToStatus() message. Used by the
// compiler to attach violations found inside TranslateQuery (which only
// returns a Status) to the query-log compile record. Empty when `status`
// does not carry a verification report.
std::vector<diag::Diagnostic> DiagnosticsFromStatus(const Status& status);

// True when stage-boundary verification should run: always in Debug
// builds (!NDEBUG), otherwise when EMCALC_VERIFY is set to a non-zero
// value, unless overridden by ForceEnabled.
bool Enabled();

// Test/bench override: 1 forces verification on, 0 forces it off, -1
// restores the environment/build-type default.
void ForceEnabled(int mode);

// --- Stage 1: calculus -----------------------------------------------------
// Scope/shadowing of bound variables, head coverage, consistent relation
// and function arities, in-range constant-pool ids, and (for parsed
// queries, when `require_spans` is set) span-table coverage of every
// formula node.
VerifyReport VerifyCalculus(const AstContext& ctx, const Query& q,
                            bool require_spans);

// --- Stage 2: safety-annotated formula -------------------------------------
// The rectified + ENF formula: same structural rules as stage 1 plus
// distinct bound variables (rectification invariant) and free-variable
// preservation (free(f) must stay inside `allowed_free`).
VerifyReport VerifySafetyFormula(const AstContext& ctx, const Formula* f,
                                 const SymbolSet& allowed_free);

// --- Stages 3 and 4: algebra ----------------------------------------------
struct AlgebraOptions {
  Stage stage = Stage::kRanfAlgebra;  // or kOptimizedAlgebra
  // Expected root arity (the query head size); -1 skips the check.
  int expected_arity = -1;
  // The direct translation never emits kAdom (only the AB88 baseline
  // translator does), so plan verification rejects it by default.
  bool allow_adom = false;
};

// Per-node arity agreement, column indices in range of the (concatenated,
// for joins) input schema, non-null condition/projection expressions,
// constant-pool ids in range, and acyclicity.
VerifyReport VerifyAlgebra(const AstContext& ctx, const AlgExpr* plan,
                           const AlgebraOptions& options);

// Stage 3 entry point: checks IsRanf(`ranf`) (rule "ranf.shape") and then
// the raw plan under `options`.
VerifyReport VerifyRanfAlgebra(const AstContext& ctx, const Formula* ranf,
                               const SymbolSet& context,
                               const SymbolSet& invertible,
                               const AlgExpr* plan,
                               const AlgebraOptions& options);

// --- Stage 5: physical -----------------------------------------------------
// Kind-appropriate child counts, projection/filter/key expression indices
// valid against input arities, join split points, unique Materialize cache
// slots, unique in-range operator ids (the memory-accounting MemoryScope
// slots are indexed by op id, so this is the scheduling-safety rule that
// every allocating operator is covered by a scope), and — when `algebra`
// is non-null — that the operator DAG mirrors the algebra plan.
VerifyReport VerifyPhysical(const PhysicalPlan& plan, const AlgExpr* algebra);

// Post-execution profile sanity, used by tests: kind-consistent child
// counts and `est_rows >= -1` on every node.
VerifyReport VerifyProfile(const ExecProfile& profile);

}  // namespace emcalc::verify

#endif  // EMCALC_VERIFY_VERIFY_H_
