#include "src/eval/calculus_eval.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/check.h"
#include "src/calculus/analysis.h"

namespace emcalc {
namespace {

// Recursive formula evaluator over a fixed finite domain.
class CalculusEvaluator {
 public:
  CalculusEvaluator(const AstContext& ctx, const Database& db,
                    const FunctionRegistry& registry, ValueSet domain)
      : ctx_(ctx), db_(db), registry_(registry), domain_(std::move(domain)) {}

  // Resolves relations and functions used by `f`.
  Status Validate(const Formula* f) {
    for (const auto& [rel, arity] : CollectRelations(f)) {
      std::string name(ctx_.symbols().Name(rel));
      auto r = db_.Get(name);
      if (!r.ok()) return r.status();
      if ((*r)->arity() != arity) {
        return InvalidArgumentError("relation '" + name + "' used with arity " +
                                    std::to_string(arity) + ", instance has " +
                                    std::to_string((*r)->arity()));
      }
      relations_.emplace(rel, *r);
    }
    for (const auto& [fn, arity] : CollectFunctions(f)) {
      auto sf = registry_.Get(std::string(ctx_.symbols().Name(fn)), arity);
      if (!sf.ok()) return sf.status();
      functions_.emplace(fn, *sf);
    }
    return Status::Ok();
  }

  Value EvalTerm(const Term* t) {
    switch (t->kind()) {
      case Term::Kind::kVar: {
        auto it = valuation_.find(t->symbol());
        EMCALC_CHECK_MSG(it != valuation_.end(), "unbound variable '%s'",
                         std::string(ctx_.symbols().Name(t->symbol())).c_str());
        return it->second;
      }
      case Term::Kind::kConst:
        return ctx_.ConstantAt(t->const_id());
      case Term::Kind::kApply: {
        std::vector<Value> args;
        args.reserve(t->args().size());
        for (const Term* a : t->args()) args.push_back(EvalTerm(a));
        return functions_.at(t->symbol())->fn(args);
      }
    }
    return Value();
  }

  bool Eval(const Formula* f) {
    switch (f->kind()) {
      case FormulaKind::kTrue:
        return true;
      case FormulaKind::kFalse:
        return false;
      case FormulaKind::kRel: {
        Tuple t;
        t.reserve(f->terms().size());
        for (const Term* term : f->terms()) t.push_back(EvalTerm(term));
        return relations_.at(f->rel())->Contains(t);
      }
      case FormulaKind::kEq:
        return EvalTerm(f->lhs()) == EvalTerm(f->rhs());
      case FormulaKind::kNeq:
        return EvalTerm(f->lhs()) != EvalTerm(f->rhs());
      case FormulaKind::kLess:
        return EvalTerm(f->lhs()) < EvalTerm(f->rhs());
      case FormulaKind::kLessEq: {
        Value l = EvalTerm(f->lhs());
        Value r = EvalTerm(f->rhs());
        return l < r || l == r;
      }
      case FormulaKind::kNot:
        return !Eval(f->child());
      case FormulaKind::kAnd: {
        for (const Formula* c : f->children()) {
          if (!Eval(c)) return false;
        }
        return true;
      }
      case FormulaKind::kOr: {
        for (const Formula* c : f->children()) {
          if (Eval(c)) return true;
        }
        return false;
      }
      case FormulaKind::kExists:
        return EvalQuantifier(f, /*is_exists=*/true, 0);
      case FormulaKind::kForall:
        return EvalQuantifier(f, /*is_exists=*/false, 0);
    }
    return false;
  }

  void Bind(Symbol var, const Value& v) { valuation_[var] = v; }
  void Unbind(Symbol var) { valuation_.erase(var); }

 private:
  bool EvalQuantifier(const Formula* f, bool is_exists, size_t index) {
    if (index == f->vars().size()) return Eval(f->child());
    Symbol var = f->vars()[index];
    // Save/restore any shadowed binding (well-formed input has none, but the
    // evaluator stays correct on shadowing anyway).
    auto saved = valuation_.find(var);
    bool had = saved != valuation_.end();
    Value old = had ? saved->second : Value();
    bool result = !is_exists;
    for (const Value& v : domain_) {
      valuation_[var] = v;
      bool sub = EvalQuantifier(f, is_exists, index + 1);
      if (is_exists && sub) {
        result = true;
        break;
      }
      if (!is_exists && !sub) {
        result = false;
        break;
      }
    }
    if (had) {
      valuation_[var] = old;
    } else {
      valuation_.erase(var);
    }
    return result;
  }

  const AstContext& ctx_;
  const Database& db_;
  const FunctionRegistry& registry_;
  ValueSet domain_;
  std::unordered_map<Symbol, Value> valuation_;
  std::unordered_map<Symbol, const Relation*> relations_;
  std::unordered_map<Symbol, const ScalarFunction*> functions_;
};

// Builds the evaluation domain term^level(adom(q, I) + extras).
StatusOr<ValueSet> EvaluationDomain(const AstContext& ctx, const Formula* f,
                                    const Database& db,
                                    const FunctionRegistry& registry,
                                    const CalculusEvalOptions& options) {
  ValueSet base = ActiveDomain(ctx, f, db);
  base.insert(base.end(), options.extra_domain.begin(),
              options.extra_domain.end());
  NormalizeValueSet(base);
  std::vector<std::pair<std::string, int>> fns;
  for (const auto& [fn, arity] : CollectFunctions(f)) {
    fns.emplace_back(std::string(ctx.symbols().Name(fn)), arity);
  }
  fns.insert(fns.end(), options.extra_closure_fns.begin(),
             options.extra_closure_fns.end());
  int level = options.level >= 0 ? options.level : CountApplications(f);
  return TermClosure(std::move(base), fns, registry, level,
                     options.domain_budget);
}

}  // namespace

StatusOr<Relation> EvaluateCalculus(const AstContext& ctx, const Query& q,
                                    const Database& db,
                                    const FunctionRegistry& registry,
                                    const CalculusEvalOptions& options) {
  auto domain = EvaluationDomain(ctx, q.body, db, registry, options);
  if (!domain.ok()) return domain.status();

  CalculusEvaluator evaluator(ctx, db, registry, *domain);
  if (Status s = evaluator.Validate(q.body); !s.ok()) return s;

  // Enumerate valuations of the head variables over the domain.
  Relation out(static_cast<int>(q.head.size()));
  std::vector<size_t> cursor(q.head.size(), 0);
  if (!q.head.empty() && domain->empty()) return out;
  for (;;) {
    Tuple t;
    t.reserve(q.head.size());
    for (size_t i = 0; i < q.head.size(); ++i) {
      const Value& v = (*domain)[cursor[i]];
      evaluator.Bind(q.head[i], v);
      t.push_back(v);
    }
    if (evaluator.Eval(q.body)) out.Insert(std::move(t));
    // Advance mixed-radix cursor.
    int pos = static_cast<int>(q.head.size()) - 1;
    for (; pos >= 0; --pos) {
      size_t p = static_cast<size_t>(pos);
      if (++cursor[p] < domain->size()) break;
      cursor[p] = 0;
    }
    if (pos < 0) break;
  }
  return out;
}

StatusOr<bool> EvaluateFormulaAt(const AstContext& ctx, const Formula* f,
                                 const std::vector<Symbol>& vars,
                                 const Tuple& valuation, const Database& db,
                                 const FunctionRegistry& registry,
                                 const CalculusEvalOptions& options) {
  EMCALC_CHECK(vars.size() == valuation.size());
  auto domain = EvaluationDomain(ctx, f, db, registry, options);
  if (!domain.ok()) return domain.status();
  CalculusEvaluator evaluator(ctx, db, registry, *domain);
  if (Status s = evaluator.Validate(f); !s.ok()) return s;
  for (size_t i = 0; i < vars.size(); ++i) evaluator.Bind(vars[i], valuation[i]);
  return evaluator.Eval(f);
}

}  // namespace emcalc
