// Reference evaluator: evaluates calculus queries directly under the
// paper's *embedded* semantics — every variable ranges over a finite
// neighborhood term^k(adom(q, I)) of the active domain (Section 4). This is
// the ground-truth oracle the translation is tested against: for an
// em-allowed query q, Theorem 6.6 guarantees the answer is independent of k
// once k >= ||q|| - 1, and the translated algebra plan must produce exactly
// this answer.
//
// Complexity is O(|domain|^#vars); this evaluator exists for correctness
// checking and the baseline experiments, not production use.
#ifndef EMCALC_EVAL_CALCULUS_EVAL_H_
#define EMCALC_EVAL_CALCULUS_EVAL_H_

#include "src/base/status.h"
#include "src/calculus/ast.h"
#include "src/storage/adom.h"
#include "src/storage/database.h"
#include "src/storage/interpretation.h"

namespace emcalc {

// Evaluation knobs.
struct CalculusEvalOptions {
  // Closure level k; -1 means CountApplications(body) (a sound level for
  // any query, see calculus/analysis.h).
  int level = -1;
  // Abort if the evaluation domain exceeds this many values.
  size_t domain_budget = 20'000;
  // Extra values to throw into the evaluation domain before closing it
  // (used by the domain-independence property tests: the answer of an
  // em-allowed query must not change).
  ValueSet extra_domain;
  // Additional (name, arity) functions to close the domain under, beyond
  // those appearing in the query. Needed to evaluate queries accepted via
  // declared function inverses ([BM92a]-style): their answers live in the
  // closure under the *inverses*, which the query text does not mention.
  std::vector<std::pair<std::string, int>> extra_closure_fns;
};

// Evaluates `q` against (db, registry) under embedded semantics.
StatusOr<Relation> EvaluateCalculus(const AstContext& ctx, const Query& q,
                                    const Database& db,
                                    const FunctionRegistry& registry,
                                    const CalculusEvalOptions& options = {});

// Evaluates a closed formula (all free variables bound by `valuation`,
// a parallel vector to `vars`). Exposed for tests.
StatusOr<bool> EvaluateFormulaAt(const AstContext& ctx, const Formula* f,
                                 const std::vector<Symbol>& vars,
                                 const Tuple& valuation, const Database& db,
                                 const FunctionRegistry& registry,
                                 const CalculusEvalOptions& options = {});

}  // namespace emcalc

#endif  // EMCALC_EVAL_CALCULUS_EVAL_H_
