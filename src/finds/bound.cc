#include "src/finds/bound.h"

#include "src/calculus/analysis.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/safety/pushnot.h"

namespace emcalc {
namespace {

// bd for an equality atom t1 = t2 (rule B3). An equality bounds a variable
// side by the variables of the other side: knowing x1..xn confines
// f(x1..xn) to a single value. Function inverses are not used by default —
// knowing f(x) = c does not bound x (Section 1 of the paper) — unless the
// function was declared invertible (BoundOptions::invertible_fns).
FinDSet EqualityBound(const Formula* f, const SymbolSet& invertible) {
  FinDSet out;
  const Term* l = f->lhs();
  const Term* r = f->rhs();
  if (l->is_var()) out.Add(FinD{TermVars(r), SymbolSet{l->symbol()}});
  if (r->is_var()) out.Add(FinD{TermVars(l), SymbolSet{r->symbol()}});
  // Declared inverses: g(x) = t bounds x from vars(t).
  auto inverse_bound = [&out, &invertible](const Term* app, const Term* other) {
    if (app->is_apply() && invertible.Contains(app->symbol()) &&
        app->args().size() == 1 && app->args()[0]->is_var()) {
      out.Add(FinD{TermVars(other), SymbolSet{app->args()[0]->symbol()}});
    }
  };
  inverse_bound(l, r);
  inverse_bound(r, l);
  return out;
}

}  // namespace

const FinDSet& BoundAnalyzer::Bound(const Formula* f) {
  auto it = cache_.find(f);
  if (it != cache_.end()) return it->second;
  ++computations_;
  static obs::Counter& computations =
      obs::MetricsRegistry::Instance().GetCounter("finds.bd_computations");
  computations.Add();
  // Cache misses only: nested bd spans trace the FinD closure recursion.
  obs::Span span("finds.bd");
  FinDSet result = Compute(f);
  if (span.enabled()) {
    span.SetDetail("finds=" + std::to_string(result.size()));
  }
  return cache_.emplace(f, std::move(result)).first->second;
}

FinDSet BoundAnalyzer::Compute(const Formula* f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return FinDSet();  // B1
    case FormulaKind::kRel: {  // B2
      SymbolSet direct = DirectVars(f->terms());
      FinDSet out;
      if (!direct.empty()) out.Add(FinD{SymbolSet{}, direct});
      return out;
    }
    case FormulaKind::kEq:  // B3
      return EqualityBound(f, options_.invertible_fns);
    case FormulaKind::kNeq:   // B4
    case FormulaKind::kLess:  // Section 9(d): external predicates give no
    case FormulaKind::kLessEq:  // bounding information
      return FinDSet();
    case FormulaKind::kNot: {  // B5 / B6
      const Formula* pushed = PushNotStep(ctx_, f);
      if (pushed == f) return FinDSet();  // negated relation atom
      return Bound(pushed);
    }
    case FormulaKind::kAnd: {  // B7
      FinDSet out;
      for (const Formula* c : f->children()) out.AddAll(Bound(c));
      return options_.use_reduced_covers ? out.Reduce() : out;
    }
    case FormulaKind::kOr: {  // B8
      SymbolSet vars = FreeVars(f);
      bool exact = options_.exact_max_vars > 0 &&
                   static_cast<int>(vars.size()) <= options_.exact_max_vars;
      FinDSet acc = Bound(f->children()[0]);
      for (size_t i = 1; i < f->children().size(); ++i) {
        const FinDSet& next = Bound(f->children()[i]);
        acc = exact ? acc.MeetExact(next, vars)
                    : acc.Meet(next, vars, options_.use_reduced_covers);
      }
      // Meet results are already reduced; restrict to the free variables
      // (quantified-away variables of the disjuncts cannot escape anyway
      // since Meet was taken over `vars`).
      return acc;
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {  // B9 / B10
      SymbolSet remaining = FreeVars(f);
      const FinDSet& inner = Bound(f->child());
      bool exact = options_.exact_max_vars > 0 &&
                   static_cast<int>(remaining.size()) + 0 <=
                       options_.exact_max_vars &&
                   static_cast<int>(inner.Vars().size()) <= 16;
      FinDSet projected =
          exact ? inner.RestrictExact(remaining) : inner.Restrict(remaining);
      return projected;
    }
  }
  return FinDSet();
}

bool BoundAnalyzer::Bounds(const Formula* f, const SymbolSet& context,
                           const SymbolSet& targets) {
  return Bound(f).Entails(context, targets);
}

FinDSet BoundingFinDs(AstContext& ctx, const Formula* f,
                      BoundOptions options) {
  BoundAnalyzer analyzer(ctx, options);
  return analyzer.Bound(f);
}

}  // namespace emcalc
