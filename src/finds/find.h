// Finiteness dependencies (FinDs), adopted from [RBS87] and generalized by
// the paper (Section 5). A FinD X -> Y over the variables of a formula
// means: in any satisfying valuation set, once the variables of X are
// confined to finite sets, the variables of Y are confined to finite sets.
// FinDs satisfy Armstrong's axioms, so functional-dependency machinery
// (closures, covers) applies directly [BB79, Ull88].
#ifndef EMCALC_FINDS_FIND_H_
#define EMCALC_FINDS_FIND_H_

#include <string>

#include "src/base/symbol_set.h"

namespace emcalc {

// A single finiteness dependency lhs -> rhs.
struct FinD {
  SymbolSet lhs;
  SymbolSet rhs;

  // Trivial dependencies (rhs subset of lhs) carry no information.
  bool IsTrivial() const { return rhs.IsSubsetOf(lhs); }

  friend bool operator==(const FinD& a, const FinD& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
  // Canonical order (by lhs, then rhs) for deterministic covers.
  friend bool operator<(const FinD& a, const FinD& b) {
    if (a.lhs != b.lhs) return a.lhs < b.lhs;
    return a.rhs < b.rhs;
  }

  // "{x,y}->{z}" rendering.
  std::string ToString(const SymbolTable& symbols) const;
};

// The paper's refinement partial order: W -> U refines X -> Y (written
// W->U <= X->Y) iff W is a subset of X and U is a superset of Y. A refining
// FinD is at least as strong: it needs less to conclude more.
bool Refines(const FinD& a, const FinD& b);

}  // namespace emcalc

#endif  // EMCALC_FINDS_FIND_H_
