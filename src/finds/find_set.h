// Sets of finiteness dependencies: closure, entailment, reduced covers,
// projection, and the disjunction meet (Section 5 of the paper).
#ifndef EMCALC_FINDS_FIND_SET_H_
#define EMCALC_FINDS_FIND_SET_H_

#include <string>
#include <vector>

#include "src/finds/find.h"

namespace emcalc {

// A finite set of FinDs with value semantics.
class FinDSet {
 public:
  FinDSet() = default;
  explicit FinDSet(std::vector<FinD> finds) : finds_(std::move(finds)) {}

  bool empty() const { return finds_.empty(); }
  size_t size() const { return finds_.size(); }
  const std::vector<FinD>& finds() const { return finds_; }
  auto begin() const { return finds_.begin(); }
  auto end() const { return finds_.end(); }

  // Adds a FinD (drops trivial ones).
  void Add(FinD f);
  // Adds all FinDs of `other`.
  void AddAll(const FinDSet& other);

  // The attribute-set closure X+ under this set: the largest Y with
  // X -> Y entailed. Straightforward fixpoint; O(|finds| * passes).
  SymbolSet Closure(const SymbolSet& x) const;

  // Same result via the linear-time counter algorithm of Beeri–Bernstein
  // [BB79]. Exposed separately so the benchmark can compare both.
  SymbolSet LinearClosure(const SymbolSet& x) const;

  // One derivation step of a traced closure: FinD `find_index` fired and
  // confined `added` (the rhs variables not already in the closure).
  struct ClosureStep {
    size_t find_index;
    SymbolSet added;
  };
  // A closure computation with its full derivation, for diagnostics. Runs
  // the same fixpoint as Closure, recording which FinDs fired in order and
  // which never became applicable (some lhs variable never confined).
  struct ClosureTrace {
    SymbolSet closure;                // == Closure(x)
    std::vector<ClosureStep> steps;   // fired FinDs, in firing order
    std::vector<size_t> blocked;      // indices of FinDs that never fired
  };
  ClosureTrace TraceClosure(const SymbolSet& x) const;

  // True if this set entails X -> Y.
  bool Entails(const SymbolSet& x, const SymbolSet& y) const {
    return y.IsSubsetOf(LinearClosure(x));
  }
  bool Entails(const FinD& f) const { return Entails(f.lhs, f.rhs); }
  // True if this set entails every FinD of `other`.
  bool EntailsAll(const FinDSet& other) const;
  // Mutual entailment (same closure operator).
  bool EquivalentTo(const FinDSet& other) const {
    return EntailsAll(other) && other.EntailsAll(*this);
  }

  // Syntactic equality as sets of FinDs (order-insensitive). Stronger than
  // EquivalentTo; used by the Top91-safe reconstruction, which compares the
  // *derivation structure* of bounding information, not just its closure.
  bool SameAs(const FinDSet& other) const;

  // The paper's *reduced cover*: an equivalent set in which (a) every FinD
  // is left-reduced (no lhs variable can be dropped), (b) no FinD is
  // entailed by the others, (c) no FinD refines another (see Refines), and
  // (d) FinDs with identical lhs are merged. Deterministic canonical order.
  FinDSet Reduce() const;

  // A sound cover of the FinDs entailed over the variable set `vars`
  // (FD projection). Heuristic — complete when the reduced cover's
  // left-hand sides already lie inside `vars`, which is the common case in
  // bd() computations; RestrictExact is the exponential exact version used
  // by tests (requires vars.size() <= max_exact_vars).
  FinDSet Restrict(const SymbolSet& vars) const;
  FinDSet RestrictExact(const SymbolSet& vars) const;

  // A sound cover of the FinDs over `vars` entailed by BOTH this set and
  // `other` — the bd() rule for disjunction: a disjunction bounds what all
  // of its disjuncts bound. Pairwise heuristic (the paper's Section 8
  // "heuristic to simplify the computations involving FinDs"); MeetExact is
  // the exponential exact version. With reduce = false, the inputs and the
  // result are left unreduced — candidate generation then works over the
  // raw FinD sets and the output accumulates redundant dependencies, which
  // is exactly the cost the paper's reduced covers avoid (experiment E3).
  FinDSet Meet(const FinDSet& other, const SymbolSet& vars,
               bool reduce = true) const;
  FinDSet MeetExact(const FinDSet& other, const SymbolSet& vars) const;

  // All variables mentioned by any FinD.
  SymbolSet Vars() const;

  // "{ {x}->{y}, {}->{z} }" rendering.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  std::vector<FinD> finds_;
};

}  // namespace emcalc

#endif  // EMCALC_FINDS_FIND_SET_H_
