#include "src/finds/find.h"

namespace emcalc {

std::string FinD::ToString(const SymbolTable& symbols) const {
  return lhs.ToString(symbols) + "->" + rhs.ToString(symbols);
}

bool Refines(const FinD& a, const FinD& b) {
  return a.lhs.IsSubsetOf(b.lhs) && b.rhs.IsSubsetOf(a.rhs);
}

}  // namespace emcalc
