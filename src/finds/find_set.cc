#include "src/finds/find_set.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "src/base/check.h"

namespace emcalc {

void FinDSet::Add(FinD f) {
  if (f.IsTrivial()) return;
  for (const FinD& existing : finds_) {
    if (existing == f) return;
  }
  finds_.push_back(std::move(f));
}

void FinDSet::AddAll(const FinDSet& other) {
  for (const FinD& f : other.finds_) Add(f);
}

SymbolSet FinDSet::Closure(const SymbolSet& x) const {
  SymbolSet result = x;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FinD& f : finds_) {
      if (f.lhs.IsSubsetOf(result) && !f.rhs.IsSubsetOf(result)) {
        result = result.Union(f.rhs);
        changed = true;
      }
    }
  }
  return result;
}

FinDSet::ClosureTrace FinDSet::TraceClosure(const SymbolSet& x) const {
  ClosureTrace trace;
  trace.closure = x;
  std::vector<bool> fired(finds_.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < finds_.size(); ++i) {
      if (fired[i]) continue;
      const FinD& f = finds_[i];
      if (!f.lhs.IsSubsetOf(trace.closure)) continue;
      fired[i] = true;  // applicable: consumed even if it adds nothing
      SymbolSet added = f.rhs.Minus(trace.closure);
      if (added.empty()) continue;
      trace.closure = trace.closure.Union(added);
      trace.steps.push_back({i, std::move(added)});
      changed = true;
    }
  }
  for (size_t i = 0; i < finds_.size(); ++i) {
    if (!fired[i]) trace.blocked.push_back(i);
  }
  return trace;
}

SymbolSet FinDSet::LinearClosure(const SymbolSet& x) const {
  // Beeri–Bernstein: one counter per FinD of outstanding lhs variables and
  // an index from variable to the FinDs whose lhs mentions it. Each FinD
  // fires exactly once, when its counter reaches zero.
  std::vector<size_t> pending(finds_.size());
  std::unordered_map<Symbol, std::vector<size_t>> uses;
  std::vector<Symbol> queue(x.begin(), x.end());
  SymbolSet result = x;

  for (size_t i = 0; i < finds_.size(); ++i) {
    pending[i] = finds_[i].lhs.size();
    for (Symbol v : finds_[i].lhs) uses[v].push_back(i);
    if (pending[i] == 0) {
      for (Symbol v : finds_[i].rhs) {
        if (!result.Contains(v)) {
          result.Insert(v);
          queue.push_back(v);
        }
      }
    }
  }

  while (!queue.empty()) {
    Symbol v = queue.back();
    queue.pop_back();
    auto it = uses.find(v);
    if (it == uses.end()) continue;
    for (size_t i : it->second) {
      EMCALC_CHECK(pending[i] > 0);
      if (--pending[i] == 0) {
        for (Symbol w : finds_[i].rhs) {
          if (!result.Contains(w)) {
            result.Insert(w);
            queue.push_back(w);
          }
        }
      }
    }
    it->second.clear();  // each (var, FinD) edge is consumed once
  }
  return result;
}

bool FinDSet::SameAs(const FinDSet& other) const {
  if (finds_.size() != other.finds_.size()) return false;
  std::vector<FinD> a = finds_;
  std::vector<FinD> b = other.finds_;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

bool FinDSet::EntailsAll(const FinDSet& other) const {
  for (const FinD& f : other.finds_) {
    if (!Entails(f)) return false;
  }
  return true;
}

FinDSet FinDSet::Reduce() const {
  // 1. Expand right-hand sides to singletons and drop trivial FinDs.
  std::vector<FinD> work;
  for (const FinD& f : finds_) {
    for (Symbol y : f.rhs) {
      if (!f.lhs.Contains(y)) work.push_back(FinD{f.lhs, SymbolSet{y}});
    }
  }

  // 2. Left-reduce each FinD against the full original set.
  for (FinD& f : work) {
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      for (Symbol z : f.lhs.elems()) {
        SymbolSet smaller = f.lhs;
        smaller.Remove(z);
        if (Closure(smaller).Contains(f.rhs.elems()[0])) {
          f.lhs = smaller;
          shrunk = true;
          break;
        }
      }
    }
  }

  // Canonical order and dedup before the redundancy pass so the result is
  // deterministic regardless of input order.
  std::sort(work.begin(), work.end());
  work.erase(std::unique(work.begin(), work.end()), work.end());

  // 3. Drop FinDs entailed by the remaining ones.
  std::vector<bool> keep(work.size(), true);
  for (size_t i = 0; i < work.size(); ++i) {
    FinDSet rest;
    for (size_t j = 0; j < work.size(); ++j) {
      if (j != i && keep[j]) rest.finds_.push_back(work[j]);
    }
    if (rest.Entails(work[i])) keep[i] = false;
  }

  // 4. Merge FinDs with identical left-hand sides.
  std::map<SymbolSet, SymbolSet> by_lhs;
  for (size_t i = 0; i < work.size(); ++i) {
    if (!keep[i]) continue;
    by_lhs[work[i].lhs] = by_lhs[work[i].lhs].Union(work[i].rhs);
  }
  FinDSet out;
  for (auto& [lhs, rhs] : by_lhs) out.finds_.push_back(FinD{lhs, rhs});
  return out;
}

FinDSet FinDSet::Restrict(const SymbolSet& vars) const {
  FinDSet reduced = Reduce();
  FinDSet out;
  for (const FinD& f : reduced) {
    if (!f.lhs.IsSubsetOf(vars)) continue;
    SymbolSet rhs = Closure(f.lhs).Intersect(vars).Minus(f.lhs);
    if (!rhs.empty()) out.Add(FinD{f.lhs, rhs});
  }
  return out.Reduce();
}

FinDSet FinDSet::RestrictExact(const SymbolSet& vars) const {
  EMCALC_CHECK_MSG(vars.size() <= 16, "RestrictExact limited to 16 vars");
  std::vector<Symbol> v(vars.begin(), vars.end());
  FinDSet out;
  for (uint32_t mask = 0; mask < (1u << v.size()); ++mask) {
    SymbolSet x;
    for (size_t i = 0; i < v.size(); ++i) {
      if (mask & (1u << i)) x.Insert(v[i]);
    }
    SymbolSet rhs = Closure(x).Intersect(vars).Minus(x);
    if (!rhs.empty()) out.Add(FinD{x, rhs});
  }
  return out.Reduce();
}

FinDSet FinDSet::Meet(const FinDSet& other, const SymbolSet& vars,
                      bool reduce) const {
  FinDSet left_reduced, right_reduced;
  if (reduce) {
    left_reduced = Reduce();
    right_reduced = other.Reduce();
  }
  const FinDSet& left = reduce ? left_reduced : *this;
  const FinDSet& right = reduce ? right_reduced : other;

  // Candidate left-hand sides: the empty set, each reduced lhs from either
  // side, and all pairwise unions. Every candidate's joint bound is sound
  // (it uses both closures); the candidate family is the heuristic part.
  std::vector<SymbolSet> candidates;
  candidates.push_back(SymbolSet{});
  for (const FinD& f : left) candidates.push_back(f.lhs);
  for (const FinD& g : right) candidates.push_back(g.lhs);
  for (const FinD& f : left) {
    for (const FinD& g : right) {
      candidates.push_back(f.lhs.Union(g.lhs));
    }
  }

  FinDSet out;
  for (const SymbolSet& x : candidates) {
    if (!x.IsSubsetOf(vars)) continue;
    SymbolSet rhs =
        Closure(x).Intersect(other.Closure(x)).Intersect(vars).Minus(x);
    if (!rhs.empty()) out.Add(FinD{x, rhs});
  }
  return reduce ? out.Reduce() : out;
}

FinDSet FinDSet::MeetExact(const FinDSet& other, const SymbolSet& vars) const {
  EMCALC_CHECK_MSG(vars.size() <= 16, "MeetExact limited to 16 vars");
  std::vector<Symbol> v(vars.begin(), vars.end());
  FinDSet out;
  for (uint32_t mask = 0; mask < (1u << v.size()); ++mask) {
    SymbolSet x;
    for (size_t i = 0; i < v.size(); ++i) {
      if (mask & (1u << i)) x.Insert(v[i]);
    }
    SymbolSet rhs =
        Closure(x).Intersect(other.Closure(x)).Intersect(vars).Minus(x);
    if (!rhs.empty()) out.Add(FinD{x, rhs});
  }
  return out.Reduce();
}

SymbolSet FinDSet::Vars() const {
  SymbolSet out;
  for (const FinD& f : finds_) out = out.Union(f.lhs).Union(f.rhs);
  return out;
}

std::string FinDSet::ToString(const SymbolTable& symbols) const {
  std::vector<FinD> sorted = finds_;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{ ";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ", ";
    out += sorted[i].ToString(symbols);
  }
  out += " }";
  return out;
}

}  // namespace emcalc
