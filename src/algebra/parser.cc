#include "src/algebra/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace emcalc {
namespace {

// Character-level recursive-descent parser; the grammar is small enough
// that a separate lexer buys little.
class PlanParser {
 public:
  PlanParser(AstContext& ctx, std::string_view text,
             const std::map<std::string, int>& rel_arities)
      : ctx_(ctx), factory_(ctx), text_(text), rels_(rel_arities) {}

  StatusOr<const AlgExpr*> Parse() {
    auto plan = Plan();
    if (!plan.ok()) return plan;
    SkipSpace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("trailing input at " +
                                  std::to_string(pos_));
    }
    return plan;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Eat(c)) {
      return InvalidArgumentError(std::string("expected '") + c + "' at " +
                                  std::to_string(pos_));
    }
    return Status::Ok();
  }

  bool EatWord(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_).starts_with(word)) {
      size_t after = pos_ + word.size();
      // Must not continue as an identifier.
      if (after >= text_.size() ||
          (!std::isalnum(static_cast<unsigned char>(text_[after])) &&
           text_[after] != '_')) {
        pos_ = after;
        return true;
      }
    }
    return false;
  }

  StatusOr<std::string> Ident() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return InvalidArgumentError("expected identifier at " +
                                  std::to_string(start));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  // plan := primary (('+'|'-') primary)*
  StatusOr<const AlgExpr*> Plan() {
    auto left = Primary();
    if (!left.ok()) return left;
    const AlgExpr* acc = *left;
    for (;;) {
      SkipSpace();
      if (Eat('+')) {
        auto right = Primary();
        if (!right.ok()) return right;
        if (acc->arity() != (*right)->arity()) {
          return InvalidArgumentError("union arity mismatch");
        }
        acc = factory_.Union(acc, *right);
      } else if (Eat('-')) {
        auto right = Primary();
        if (!right.ok()) return right;
        if (acc->arity() != (*right)->arity()) {
          return InvalidArgumentError("difference arity mismatch");
        }
        acc = factory_.Diff(acc, *right);
      } else {
        return acc;
      }
    }
  }

  StatusOr<const AlgExpr*> Primary() {
    SkipSpace();
    if (Eat('(')) {
      auto inner = Plan();
      if (!inner.ok()) return inner;
      if (Status s = Expect(')'); !s.ok()) return s;
      return inner;
    }
    if (EatWord("project")) return Project();
    if (EatWord("select")) return Select();
    if (EatWord("join")) return Join();
    if (EatWord("unit")) return factory_.Unit();
    if (EatWord("adom")) {
      return UnsupportedError("adom nodes do not round-trip through text");
    }
    auto name = Ident();
    if (!name.ok()) return name.status();
    if (name->rfind("empty_", 0) == 0) {
      return factory_.Empty(std::atoi(name->c_str() + 6));
    }
    auto it = rels_.find(*name);
    if (it == rels_.end()) {
      return NotFoundError("relation '" + *name + "' not in catalog");
    }
    return factory_.Rel(*name, it->second);
  }

  StatusOr<const AlgExpr*> Project() {
    if (Status s = Expect('('); !s.ok()) return s;
    if (Status s = Expect('['); !s.ok()) return s;
    std::vector<const ScalarExpr*> exprs;
    SkipSpace();
    if (!Eat(']')) {
      for (;;) {
        auto e = Expr();
        if (!e.ok()) return e.status();
        exprs.push_back(*e);
        if (!Eat(',')) break;
      }
      if (Status s = Expect(']'); !s.ok()) return s;
    }
    if (Status s = Expect(','); !s.ok()) return s;
    auto input = Plan();
    if (!input.ok()) return input;
    if (Status s = Expect(')'); !s.ok()) return s;
    for (const ScalarExpr* e : exprs) {
      if (ExprFactory::MaxColumn(e) >= (*input)->arity()) {
        return InvalidArgumentError("projection column out of range");
      }
    }
    return factory_.Project(std::move(exprs), *input);
  }

  StatusOr<const AlgExpr*> Select() {
    if (Status s = Expect('('); !s.ok()) return s;
    auto conds = Conds();
    if (!conds.ok()) return conds.status();
    if (Status s = Expect(','); !s.ok()) return s;
    auto input = Plan();
    if (!input.ok()) return input;
    if (Status s = Expect(')'); !s.ok()) return s;
    if (Status s = CheckConds(*conds, (*input)->arity()); !s.ok()) return s;
    return factory_.Select(std::move(conds).value(), *input);
  }

  StatusOr<const AlgExpr*> Join() {
    if (Status s = Expect('('); !s.ok()) return s;
    auto conds = Conds();
    if (!conds.ok()) return conds.status();
    if (Status s = Expect(','); !s.ok()) return s;
    auto left = Plan();
    if (!left.ok()) return left;
    if (Status s = Expect(','); !s.ok()) return s;
    auto right = Plan();
    if (!right.ok()) return right;
    if (Status s = Expect(')'); !s.ok()) return s;
    if (Status s = CheckConds(*conds, (*left)->arity() + (*right)->arity());
        !s.ok()) {
      return s;
    }
    return factory_.Join(std::move(conds).value(), *left, *right);
  }

  Status CheckConds(const std::vector<AlgCondition>& conds, int arity) {
    for (const AlgCondition& c : conds) {
      if (ExprFactory::MaxColumn(c.lhs) >= arity ||
          ExprFactory::MaxColumn(c.rhs) >= arity) {
        return InvalidArgumentError("condition column out of range");
      }
    }
    return Status::Ok();
  }

  StatusOr<std::vector<AlgCondition>> Conds() {
    if (Status s = Expect('{'); !s.ok()) return s;
    std::vector<AlgCondition> out;
    SkipSpace();
    if (Eat('}')) return out;
    for (;;) {
      auto lhs = Expr();
      if (!lhs.ok()) return lhs.status();
      SkipSpace();
      AlgCompareOp op;
      if (text_.substr(pos_).starts_with("==")) {
        op = AlgCompareOp::kEq;
        pos_ += 2;
      } else if (text_.substr(pos_).starts_with("!=")) {
        op = AlgCompareOp::kNe;
        pos_ += 2;
      } else if (text_.substr(pos_).starts_with("<=")) {
        op = AlgCompareOp::kLe;
        pos_ += 2;
      } else if (text_.substr(pos_).starts_with("<")) {
        op = AlgCompareOp::kLt;
        pos_ += 1;
      } else {
        return InvalidArgumentError("expected comparison at " +
                                    std::to_string(pos_));
      }
      auto rhs = Expr();
      if (!rhs.ok()) return rhs.status();
      out.push_back({*lhs, op, *rhs});
      if (!Eat(',')) break;
    }
    if (Status s = Expect('}'); !s.ok()) return s;
    return out;
  }

  StatusOr<const ScalarExpr*> Expr() {
    SkipSpace();
    if (Eat('@')) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == start) {
        return InvalidArgumentError("expected column number at " +
                                    std::to_string(start));
      }
      int col = std::atoi(std::string(text_.substr(start, pos_ - start))
                              .c_str());
      if (col < 1) return InvalidArgumentError("columns are 1-based");
      return factory_.exprs().Col(col - 1);
    }
    if (pos_ < text_.size() && text_[pos_] == '\'') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
      if (pos_ == text_.size()) {
        return InvalidArgumentError("unterminated string literal");
      }
      std::string body(text_.substr(start, pos_ - start));
      ++pos_;
      return factory_.exprs().ConstValue(Value::Str(std::move(body)));
    }
    if (pos_ < text_.size() &&
        (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
         (text_[pos_] == '-' && pos_ + 1 < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))))) {
      size_t start = pos_;
      if (text_[pos_] == '-') ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      int64_t v = std::strtoll(
          std::string(text_.substr(start, pos_ - start)).c_str(), nullptr,
          10);
      return factory_.exprs().ConstValue(Value::Int(v));
    }
    auto name = Ident();
    if (!name.ok()) return name.status();
    if (Status s = Expect('('); !s.ok()) return s;
    std::vector<const ScalarExpr*> args;
    SkipSpace();
    if (!Eat(')')) {
      for (;;) {
        auto a = Expr();
        if (!a.ok()) return a;
        args.push_back(*a);
        if (!Eat(',')) break;
      }
      if (Status s = Expect(')'); !s.ok()) return s;
    }
    return factory_.exprs().Apply(ctx_.symbols().Intern(*name), args);
  }

  AstContext& ctx_;
  AlgebraFactory factory_;
  std::string_view text_;
  const std::map<std::string, int>& rels_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<const AlgExpr*> ParseAlgebra(
    AstContext& ctx, std::string_view text,
    const std::map<std::string, int>& rel_arities) {
  return PlanParser(ctx, text, rel_arities).Parse();
}

}  // namespace emcalc
