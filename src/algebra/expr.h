// Scalar expressions over positional tuple columns, used by the extended
// algebra's project/select/join operators. The paper's extended projection
// project([@1, f(@1)], R) evaluates these point-wise per input tuple
// (analogous to the apply-append operator of the OOAlgebra [Day89]).
#ifndef EMCALC_ALGEBRA_EXPR_H_
#define EMCALC_ALGEBRA_EXPR_H_

#include <cstdint>
#include <span>

#include "src/base/symbol.h"
#include "src/calculus/ast.h"

namespace emcalc {

// A column reference (@i), constant, or scalar function application.
// Arena-allocated in the same AstContext as the query being translated
// (expressions reference the context's constant pool and symbol table).
class ScalarExpr {
 public:
  enum class Kind : uint8_t { kCol, kConst, kApply };

  Kind kind() const { return kind_; }
  bool is_col() const { return kind_ == Kind::kCol; }

  // kCol: 0-based column index (printed 1-based as @i).
  int col() const { return col_; }
  // kConst: constant-pool id.
  uint32_t const_id() const { return const_id_; }
  // kApply: function symbol and arguments.
  Symbol fn() const { return fn_; }
  std::span<const ScalarExpr* const> args() const {
    return std::span<const ScalarExpr* const>(args_, num_args_);
  }

  // Nodes are built through ExprFactory; public constructor only for
  // placement-new by the arena.
  ScalarExpr() = default;

 private:
  friend class ExprFactory;
  Kind kind_ = Kind::kCol;
  int col_ = 0;
  uint32_t const_id_ = 0;
  uint32_t num_args_ = 0;
  Symbol fn_;
  const ScalarExpr* const* args_ = nullptr;
};

// Factory allocating ScalarExprs into an AstContext's arena.
class ExprFactory {
 public:
  explicit ExprFactory(AstContext& ctx) : ctx_(ctx) {}

  const ScalarExpr* Col(int index);
  const ScalarExpr* Const(uint32_t const_id);
  const ScalarExpr* ConstValue(const Value& v);
  const ScalarExpr* Apply(Symbol fn, std::span<const ScalarExpr* const> args);

  // Rewrites column indices: @i becomes @map[i]. Used when an operator's
  // input schema is permuted or widened.
  const ScalarExpr* RemapColumns(const ScalarExpr* e,
                                 std::span<const int> map);

  // Largest column index referenced, or -1 if none.
  static int MaxColumn(const ScalarExpr* e);

  AstContext& ctx() { return ctx_; }

 private:
  AstContext& ctx_;
};

// Structural equality.
bool ScalarExprsEqual(const ScalarExpr* a, const ScalarExpr* b);

}  // namespace emcalc

#endif  // EMCALC_ALGEBRA_EXPR_H_
