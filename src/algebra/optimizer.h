// A small plan simplifier. The translator emits structurally regular plans
// (lots of unit joins and chained projections); these rewrites remove the
// noise so the worked-example plans match the paper's concise forms. All
// rewrites are semantics-preserving (verified by differential tests).
#ifndef EMCALC_ALGEBRA_OPTIMIZER_H_
#define EMCALC_ALGEBRA_OPTIMIZER_H_

#include "src/algebra/ast.h"

namespace emcalc {

// Rewrites applied until fixpoint:
//  - project with the identity column list     -> input
//  - project over project                      -> composed project
//  - select with no conditions                 -> input
//  - select over select                        -> merged select
//  - join with unit                            -> select over the other side
//  - join/select/project over empty            -> empty
//  - union/difference with empty               -> other side / left
const AlgExpr* OptimizePlan(AlgebraFactory& factory, const AlgExpr* plan);

}  // namespace emcalc

#endif  // EMCALC_ALGEBRA_OPTIMIZER_H_
