// The extended relational algebra (Section 4 of the paper; a subset of the
// Heraclitus[Alg,C] algebra [GHJ92, GHJ93]). Positional, with an extended
// projection that applies scalar functions point-wise:
//
//   project([@1, f(@1)], R)    — one output tuple per input tuple
//   select({@1 == g(@2)}, E)   — filter by scalar conditions
//   join({@2 == @4}, E1, E2)   — conditions over the concatenated schema
//   E1 + E2, E1 - E2           — union / difference (set semantics)
//   unit                       — the arity-0 relation containing ()
//   empty_k                    — the empty relation of arity k
//   adom^k                     — unary: term^k of the active domain (used
//                                only by the AB88-style baseline translator)
#ifndef EMCALC_ALGEBRA_AST_H_
#define EMCALC_ALGEBRA_AST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/algebra/expr.h"
#include "src/base/symbol.h"
#include "src/calculus/ast.h"

namespace emcalc {

namespace verify {
class PlanMutator;
}  // namespace verify

// Operator tags for AlgExpr.
enum class AlgKind : uint8_t {
  kRel,        // base relation scan
  kProject,    // extended projection
  kSelect,     // selection by conditions
  kJoin,       // conditional join (empty condition set = product)
  kUnion,      // set union
  kDiff,       // set difference
  kUnit,       // arity-0 relation containing the empty tuple
  kEmpty,      // empty relation of given arity
  kAdom,       // term^level(active domain + listed constants)
};

// Number of AlgKind tags; static_asserts next to each kind-dispatch table
// keep the tables in sync when a kind is added.
inline constexpr int kNumAlgKinds = 9;

// Stable display name, e.g. "kJoin".
const char* AlgKindName(AlgKind kind);

// Comparison operators available in select/join conditions. kLt/kLe use
// the total order on Values (ints before strings).
enum class AlgCompareOp : uint8_t { kEq, kNe, kLt, kLe };

// A comparison between two scalar expressions. In kJoin conditions, column
// indices refer to the concatenated (left ++ right) schema.
struct AlgCondition {
  const ScalarExpr* lhs = nullptr;
  AlgCompareOp op = AlgCompareOp::kEq;
  const ScalarExpr* rhs = nullptr;
};

// An immutable algebra plan node with a fixed output arity.
class AlgExpr {
 public:
  AlgKind kind() const { return kind_; }
  int arity() const { return arity_; }

  // kRel: relation name.
  Symbol rel() const { return rel_; }

  // kProject: output expressions (one per output column).
  std::span<const ScalarExpr* const> exprs() const {
    return std::span<const ScalarExpr* const>(exprs_, num_exprs_);
  }

  // kSelect / kJoin: conditions.
  std::span<const AlgCondition> conds() const {
    return std::span<const AlgCondition>(conds_, num_conds_);
  }

  // Children: kProject/kSelect have one, kJoin/kUnion/kDiff have two.
  const AlgExpr* left() const { return left_; }
  const AlgExpr* right() const { return right_; }
  const AlgExpr* input() const { return left_; }

  // kAdom: closure level and the functions/constants to close under.
  int adom_level() const { return adom_level_; }
  std::span<const Symbol> adom_fns() const {
    return std::span<const Symbol>(adom_fns_, num_adom_fns_);
  }
  std::span<const uint32_t> adom_consts() const {
    return std::span<const uint32_t>(adom_consts_, num_adom_consts_);
  }

  // Number of plan nodes (plan-size metric for the experiments).
  int NodeCount() const;

  AlgExpr() = default;  // for arena placement-new; build via AlgebraFactory

 private:
  friend class AlgebraFactory;
  // The mutation harness (src/verify/mutate.h) builds deliberately corrupt
  // clones to prove the stage-boundary verifier catches them; it must
  // bypass the factory's construction-time checks.
  friend class verify::PlanMutator;

  AlgKind kind_ = AlgKind::kUnit;
  int arity_ = 0;
  Symbol rel_;
  const AlgExpr* left_ = nullptr;
  const AlgExpr* right_ = nullptr;
  const ScalarExpr* const* exprs_ = nullptr;
  uint32_t num_exprs_ = 0;
  const AlgCondition* conds_ = nullptr;
  uint32_t num_conds_ = 0;
  int adom_level_ = 0;
  const Symbol* adom_fns_ = nullptr;
  uint32_t num_adom_fns_ = 0;
  const uint32_t* adom_consts_ = nullptr;
  uint32_t num_adom_consts_ = 0;
};

// Builds algebra nodes into an AstContext's arena, validating arities and
// column references at construction time.
class AlgebraFactory {
 public:
  explicit AlgebraFactory(AstContext& ctx) : ctx_(ctx), exprs_(ctx) {}

  const AlgExpr* Rel(Symbol name, int arity);
  const AlgExpr* Rel(std::string_view name, int arity);
  const AlgExpr* Project(std::vector<const ScalarExpr*> exprs,
                         const AlgExpr* input);
  const AlgExpr* Select(std::vector<AlgCondition> conds, const AlgExpr* input);
  const AlgExpr* Join(std::vector<AlgCondition> conds, const AlgExpr* left,
                      const AlgExpr* right);
  const AlgExpr* Union(const AlgExpr* left, const AlgExpr* right);
  const AlgExpr* Diff(const AlgExpr* left, const AlgExpr* right);
  const AlgExpr* Unit();
  const AlgExpr* Empty(int arity);
  const AlgExpr* Adom(int level, std::vector<Symbol> fns,
                      std::vector<uint32_t> consts);

  ExprFactory& exprs() { return exprs_; }
  AstContext& ctx() { return ctx_; }

 private:
  AlgExpr* NewNode(AlgKind kind, int arity);

  AstContext& ctx_;
  ExprFactory exprs_;
};

// Structural equality of plans.
bool AlgExprsEqual(const AlgExpr* a, const AlgExpr* b);

}  // namespace emcalc

#endif  // EMCALC_ALGEBRA_AST_H_
