// Rendering of algebra plans in the paper's concrete syntax, e.g.
// "R - project([@1,@2,@3], join({@2==@4,@3==@5}, R, S))".
#ifndef EMCALC_ALGEBRA_PRINTER_H_
#define EMCALC_ALGEBRA_PRINTER_H_

#include <string>

#include "src/algebra/ast.h"

namespace emcalc {

// Renders a scalar expression (columns are printed 1-based: @1, @2, ...).
std::string ScalarExprToString(const AstContext& ctx, const ScalarExpr* e);

// Renders a plan on one line.
std::string AlgExprToString(const AstContext& ctx, const AlgExpr* e);

// Renders a plan as an indented tree (one operator per line), for plans too
// large to read inline.
std::string AlgExprToTreeString(const AstContext& ctx, const AlgExpr* e);

}  // namespace emcalc

#endif  // EMCALC_ALGEBRA_PRINTER_H_
