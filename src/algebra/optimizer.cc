#include "src/algebra/optimizer.h"

#include <unordered_map>
#include <vector>

#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace emcalc {
namespace {

// Rewrites are memoized per pass so that shared subplans (plans are DAGs)
// stay shared — the evaluator memoizes multiply-referenced nodes, and
// rebuilding a shared node into two distinct copies would forfeit that.
using RewriteCache = std::unordered_map<const AlgExpr*, const AlgExpr*>;

const AlgExpr* RewriteImpl(AlgebraFactory& f, RewriteCache& cache,
                           const AlgExpr* plan);

bool IsIdentityProject(const AlgExpr* plan) {
  if (plan->kind() != AlgKind::kProject) return false;
  if (plan->arity() != plan->input()->arity()) return false;
  int i = 0;
  for (const ScalarExpr* e : plan->exprs()) {
    if (!e->is_col() || e->col() != i) return false;
    ++i;
  }
  return true;
}

// Substitutes inner projection outputs into an outer expression: column @i
// of the outer expression denotes inner.exprs()[i].
const ScalarExpr* Compose(ExprFactory& exprs, const ScalarExpr* outer,
                          std::span<const ScalarExpr* const> inner) {
  switch (outer->kind()) {
    case ScalarExpr::Kind::kCol:
      EMCALC_CHECK(outer->col() < static_cast<int>(inner.size()));
      return inner[static_cast<size_t>(outer->col())];
    case ScalarExpr::Kind::kConst:
      return outer;
    case ScalarExpr::Kind::kApply: {
      std::vector<const ScalarExpr*> args;
      args.reserve(outer->args().size());
      for (const ScalarExpr* a : outer->args()) {
        args.push_back(Compose(exprs, a, inner));
      }
      return exprs.Apply(outer->fn(), args);
    }
  }
  return outer;
}

const AlgExpr* Rewrite(AlgebraFactory& f, RewriteCache& cache,
                       const AlgExpr* plan) {
  auto it = cache.find(plan);
  if (it != cache.end()) return it->second;
  const AlgExpr* out = RewriteImpl(f, cache, plan);
  cache.emplace(plan, out);
  return out;
}

const AlgExpr* RewriteImpl(AlgebraFactory& f, RewriteCache& cache,
                           const AlgExpr* plan) {
  switch (plan->kind()) {
    case AlgKind::kRel:
    case AlgKind::kUnit:
    case AlgKind::kEmpty:
    case AlgKind::kAdom:
      return plan;
    case AlgKind::kProject: {
      const AlgExpr* in = Rewrite(f, cache, plan->input());
      if (in->kind() == AlgKind::kEmpty) return f.Empty(plan->arity());
      if (in->kind() == AlgKind::kProject) {
        std::vector<const ScalarExpr*> composed;
        composed.reserve(plan->exprs().size());
        for (const ScalarExpr* e : plan->exprs()) {
          composed.push_back(Compose(f.exprs(), e, in->exprs()));
        }
        return Rewrite(f, cache, f.Project(std::move(composed), in->input()));
      }
      const AlgExpr* out =
          in == plan->input()
              ? plan
              : f.Project(std::vector<const ScalarExpr*>(
                              plan->exprs().begin(), plan->exprs().end()),
                          in);
      return IsIdentityProject(out) ? out->input() : out;
    }
    case AlgKind::kSelect: {
      const AlgExpr* in = Rewrite(f, cache, plan->input());
      if (plan->conds().empty()) return in;
      if (in->kind() == AlgKind::kEmpty) return f.Empty(plan->arity());
      if (in->kind() == AlgKind::kSelect) {
        std::vector<AlgCondition> merged(in->conds().begin(),
                                         in->conds().end());
        merged.insert(merged.end(), plan->conds().begin(),
                      plan->conds().end());
        return f.Select(std::move(merged), in->input());
      }
      if (in->kind() == AlgKind::kJoin) {
        // Fold the selection into the join's condition set (both evaluate
        // over the same concatenated schema). This is what makes the
        // physical lowering pass (src/exec/lower.cc) see the equality
        // conditions and choose a HashJoin instead of a NestedLoopJoin
        // followed by a filter.
        std::vector<AlgCondition> merged(in->conds().begin(),
                                         in->conds().end());
        merged.insert(merged.end(), plan->conds().begin(),
                      plan->conds().end());
        return Rewrite(f, cache,
                       f.Join(std::move(merged), in->left(), in->right()));
      }
      if (in->kind() == AlgKind::kProject) {
        // Push the selection under the projection by composing its
        // condition expressions with the projection outputs.
        std::vector<AlgCondition> pushed;
        pushed.reserve(plan->conds().size());
        for (const AlgCondition& c : plan->conds()) {
          pushed.push_back({Compose(f.exprs(), c.lhs, in->exprs()), c.op,
                            Compose(f.exprs(), c.rhs, in->exprs())});
        }
        std::vector<const ScalarExpr*> exprs(in->exprs().begin(),
                                             in->exprs().end());
        return Rewrite(
            f, cache,
            f.Project(std::move(exprs),
                      f.Select(std::move(pushed), in->input())));
      }
      if (in == plan->input()) return plan;
      return f.Select(
          std::vector<AlgCondition>(plan->conds().begin(),
                                    plan->conds().end()),
          in);
    }
    case AlgKind::kJoin: {
      const AlgExpr* l = Rewrite(f, cache, plan->left());
      const AlgExpr* r = Rewrite(f, cache, plan->right());
      if (l->kind() == AlgKind::kEmpty || r->kind() == AlgKind::kEmpty) {
        return f.Empty(plan->arity());
      }
      std::vector<AlgCondition> conds(plan->conds().begin(),
                                      plan->conds().end());
      // join({..}, unit, E) and join({..}, E, unit): the concatenated
      // schema equals E's schema, so the join degenerates to a selection.
      if (l->kind() == AlgKind::kUnit) {
        return Rewrite(f, cache, f.Select(std::move(conds), r));
      }
      if (r->kind() == AlgKind::kUnit) {
        return Rewrite(f, cache, f.Select(std::move(conds), l));
      }
      if (l == plan->left() && r == plan->right()) return plan;
      return f.Join(std::move(conds), l, r);
    }
    case AlgKind::kUnion: {
      const AlgExpr* l = Rewrite(f, cache, plan->left());
      const AlgExpr* r = Rewrite(f, cache, plan->right());
      if (l->kind() == AlgKind::kEmpty) return r;
      if (r->kind() == AlgKind::kEmpty) return l;
      if (l == plan->left() && r == plan->right()) return plan;
      return f.Union(l, r);
    }
    case AlgKind::kDiff: {
      const AlgExpr* l = Rewrite(f, cache, plan->left());
      const AlgExpr* r = Rewrite(f, cache, plan->right());
      if (l->kind() == AlgKind::kEmpty) return f.Empty(plan->arity());
      if (r->kind() == AlgKind::kEmpty) return l;
      if (l == plan->left() && r == plan->right()) return plan;
      return f.Diff(l, r);
    }
  }
  return plan;
}

}  // namespace

const AlgExpr* OptimizePlan(AlgebraFactory& factory, const AlgExpr* plan) {
  obs::Span span("algebra.optimize");
  static obs::Counter& runs =
      obs::MetricsRegistry::Instance().GetCounter("optimizer.runs");
  static obs::Counter& passes =
      obs::MetricsRegistry::Instance().GetCounter("optimizer.passes");
  runs.Add();
  const AlgExpr* original = plan;
  // Rewrite() is single-pass bottom-up with local re-runs; iterate to a
  // fixpoint (plans are small, a handful of passes suffices).
  for (int i = 0; i < 8; ++i) {
    passes.Add();
    RewriteCache cache;
    const AlgExpr* next = Rewrite(factory, cache, plan);
    if (next == plan) break;
    plan = next;
  }
  if (span.enabled()) {
    span.SetDetail("nodes " + std::to_string(original->NodeCount()) + "->" +
                   std::to_string(plan->NodeCount()));
  }
  return plan;
}

}  // namespace emcalc
