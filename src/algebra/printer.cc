#include "src/algebra/printer.h"

namespace emcalc {
namespace {

void PrintExpr(const AstContext& ctx, const ScalarExpr* e, std::string& out) {
  switch (e->kind()) {
    case ScalarExpr::Kind::kCol:
      out += "@" + std::to_string(e->col() + 1);
      break;
    case ScalarExpr::Kind::kConst:
      out += ctx.ConstantAt(e->const_id()).ToString();
      break;
    case ScalarExpr::Kind::kApply: {
      out += ctx.symbols().Name(e->fn());
      out += "(";
      bool first = true;
      for (const ScalarExpr* a : e->args()) {
        if (!first) out += ",";
        first = false;
        PrintExpr(ctx, a, out);
      }
      out += ")";
      break;
    }
  }
}

void PrintConds(const AstContext& ctx, std::span<const AlgCondition> conds,
                std::string& out) {
  out += "{";
  bool first = true;
  for (const AlgCondition& c : conds) {
    if (!first) out += ",";
    first = false;
    PrintExpr(ctx, c.lhs, out);
    switch (c.op) {
      case AlgCompareOp::kEq:
        out += "==";
        break;
      case AlgCompareOp::kNe:
        out += "!=";
        break;
      case AlgCompareOp::kLt:
        out += "<";
        break;
      case AlgCompareOp::kLe:
        out += "<=";
        break;
    }
    PrintExpr(ctx, c.rhs, out);
  }
  out += "}";
}

void PrintPlan(const AstContext& ctx, const AlgExpr* e, std::string& out) {
  switch (e->kind()) {
    case AlgKind::kRel:
      out += ctx.symbols().Name(e->rel());
      break;
    case AlgKind::kProject: {
      out += "project([";
      bool first = true;
      for (const ScalarExpr* x : e->exprs()) {
        if (!first) out += ",";
        first = false;
        PrintExpr(ctx, x, out);
      }
      out += "], ";
      PrintPlan(ctx, e->input(), out);
      out += ")";
      break;
    }
    case AlgKind::kSelect:
      out += "select(";
      PrintConds(ctx, e->conds(), out);
      out += ", ";
      PrintPlan(ctx, e->input(), out);
      out += ")";
      break;
    case AlgKind::kJoin:
      out += "join(";
      PrintConds(ctx, e->conds(), out);
      out += ", ";
      PrintPlan(ctx, e->left(), out);
      out += ", ";
      PrintPlan(ctx, e->right(), out);
      out += ")";
      break;
    case AlgKind::kUnion:
      out += "(";
      PrintPlan(ctx, e->left(), out);
      out += " + ";
      PrintPlan(ctx, e->right(), out);
      out += ")";
      break;
    case AlgKind::kDiff:
      out += "(";
      PrintPlan(ctx, e->left(), out);
      out += " - ";
      PrintPlan(ctx, e->right(), out);
      out += ")";
      break;
    case AlgKind::kUnit:
      out += "unit";
      break;
    case AlgKind::kEmpty:
      out += "empty_" + std::to_string(e->arity());
      break;
    case AlgKind::kAdom:
      out += "adom^" + std::to_string(e->adom_level());
      break;
  }
}

void PrintTree(const AstContext& ctx, const AlgExpr* e, int indent,
               std::string& out) {
  out.append(static_cast<size_t>(indent) * 2, ' ');
  switch (e->kind()) {
    case AlgKind::kRel:
    case AlgKind::kUnit:
    case AlgKind::kEmpty:
    case AlgKind::kAdom:
      PrintPlan(ctx, e, out);
      out += "\n";
      return;
    case AlgKind::kProject: {
      out += "project([";
      bool first = true;
      for (const ScalarExpr* x : e->exprs()) {
        if (!first) out += ",";
        first = false;
        PrintExpr(ctx, x, out);
      }
      out += "])\n";
      PrintTree(ctx, e->input(), indent + 1, out);
      return;
    }
    case AlgKind::kSelect:
      out += "select(";
      PrintConds(ctx, e->conds(), out);
      out += ")\n";
      PrintTree(ctx, e->input(), indent + 1, out);
      return;
    case AlgKind::kJoin:
      out += "join(";
      PrintConds(ctx, e->conds(), out);
      out += ")\n";
      PrintTree(ctx, e->left(), indent + 1, out);
      PrintTree(ctx, e->right(), indent + 1, out);
      return;
    case AlgKind::kUnion:
      out += "union\n";
      PrintTree(ctx, e->left(), indent + 1, out);
      PrintTree(ctx, e->right(), indent + 1, out);
      return;
    case AlgKind::kDiff:
      out += "difference\n";
      PrintTree(ctx, e->left(), indent + 1, out);
      PrintTree(ctx, e->right(), indent + 1, out);
      return;
  }
}

}  // namespace

std::string ScalarExprToString(const AstContext& ctx, const ScalarExpr* e) {
  std::string out;
  PrintExpr(ctx, e, out);
  return out;
}

std::string AlgExprToString(const AstContext& ctx, const AlgExpr* e) {
  std::string out;
  PrintPlan(ctx, e, out);
  return out;
}

std::string AlgExprToTreeString(const AstContext& ctx, const AlgExpr* e) {
  std::string out;
  PrintTree(ctx, e, 0, out);
  return out;
}

}  // namespace emcalc
