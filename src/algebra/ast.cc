#include "src/algebra/ast.h"

#include "src/base/check.h"

namespace emcalc {

const char* AlgKindName(AlgKind kind) {
  static_assert(static_cast<int>(AlgKind::kAdom) == kNumAlgKinds - 1,
                "AlgKindName must cover every AlgKind");
  switch (kind) {
    case AlgKind::kRel: return "kRel";
    case AlgKind::kProject: return "kProject";
    case AlgKind::kSelect: return "kSelect";
    case AlgKind::kJoin: return "kJoin";
    case AlgKind::kUnion: return "kUnion";
    case AlgKind::kDiff: return "kDiff";
    case AlgKind::kUnit: return "kUnit";
    case AlgKind::kEmpty: return "kEmpty";
    case AlgKind::kAdom: return "kAdom";
  }
  return "?";
}

int AlgExpr::NodeCount() const {
  int n = 1;
  if (left_ != nullptr) n += left_->NodeCount();
  if (right_ != nullptr) n += right_->NodeCount();
  return n;
}

AlgExpr* AlgebraFactory::NewNode(AlgKind kind, int arity) {
  AlgExpr* e = ctx_.arena().New<AlgExpr>();
  e->kind_ = kind;
  e->arity_ = arity;
  return e;
}

const AlgExpr* AlgebraFactory::Rel(Symbol name, int arity) {
  EMCALC_CHECK(arity >= 0);
  AlgExpr* e = NewNode(AlgKind::kRel, arity);
  e->rel_ = name;
  return e;
}

const AlgExpr* AlgebraFactory::Rel(std::string_view name, int arity) {
  return Rel(ctx_.symbols().Intern(name), arity);
}

const AlgExpr* AlgebraFactory::Project(std::vector<const ScalarExpr*> exprs,
                                       const AlgExpr* input) {
  for (const ScalarExpr* e : exprs) {
    EMCALC_CHECK_MSG(ExprFactory::MaxColumn(e) < input->arity(),
                     "projection expression references column beyond input "
                     "arity %d",
                     input->arity());
  }
  AlgExpr* node = NewNode(AlgKind::kProject, static_cast<int>(exprs.size()));
  node->left_ = input;
  node->exprs_ =
      ctx_.arena().NewArray<const ScalarExpr*>(exprs.data(), exprs.size());
  node->num_exprs_ = static_cast<uint32_t>(exprs.size());
  return node;
}

const AlgExpr* AlgebraFactory::Select(std::vector<AlgCondition> conds,
                                      const AlgExpr* input) {
  for (const AlgCondition& c : conds) {
    EMCALC_CHECK(ExprFactory::MaxColumn(c.lhs) < input->arity());
    EMCALC_CHECK(ExprFactory::MaxColumn(c.rhs) < input->arity());
  }
  AlgExpr* node = NewNode(AlgKind::kSelect, input->arity());
  node->left_ = input;
  node->conds_ =
      ctx_.arena().NewArray<AlgCondition>(conds.data(), conds.size());
  node->num_conds_ = static_cast<uint32_t>(conds.size());
  return node;
}

const AlgExpr* AlgebraFactory::Join(std::vector<AlgCondition> conds,
                                    const AlgExpr* left,
                                    const AlgExpr* right) {
  int combined = left->arity() + right->arity();
  for (const AlgCondition& c : conds) {
    EMCALC_CHECK(ExprFactory::MaxColumn(c.lhs) < combined);
    EMCALC_CHECK(ExprFactory::MaxColumn(c.rhs) < combined);
  }
  AlgExpr* node = NewNode(AlgKind::kJoin, combined);
  node->left_ = left;
  node->right_ = right;
  node->conds_ =
      ctx_.arena().NewArray<AlgCondition>(conds.data(), conds.size());
  node->num_conds_ = static_cast<uint32_t>(conds.size());
  return node;
}

const AlgExpr* AlgebraFactory::Union(const AlgExpr* left,
                                     const AlgExpr* right) {
  EMCALC_CHECK_MSG(left->arity() == right->arity(),
                   "union arity mismatch %d vs %d", left->arity(),
                   right->arity());
  AlgExpr* node = NewNode(AlgKind::kUnion, left->arity());
  node->left_ = left;
  node->right_ = right;
  return node;
}

const AlgExpr* AlgebraFactory::Diff(const AlgExpr* left,
                                    const AlgExpr* right) {
  EMCALC_CHECK_MSG(left->arity() == right->arity(),
                   "difference arity mismatch %d vs %d", left->arity(),
                   right->arity());
  AlgExpr* node = NewNode(AlgKind::kDiff, left->arity());
  node->left_ = left;
  node->right_ = right;
  return node;
}

const AlgExpr* AlgebraFactory::Unit() { return NewNode(AlgKind::kUnit, 0); }

const AlgExpr* AlgebraFactory::Empty(int arity) {
  return NewNode(AlgKind::kEmpty, arity);
}

const AlgExpr* AlgebraFactory::Adom(int level, std::vector<Symbol> fns,
                                    std::vector<uint32_t> consts) {
  AlgExpr* node = NewNode(AlgKind::kAdom, 1);
  node->adom_level_ = level;
  node->adom_fns_ = ctx_.arena().NewArray<Symbol>(fns.data(), fns.size());
  node->num_adom_fns_ = static_cast<uint32_t>(fns.size());
  node->adom_consts_ =
      ctx_.arena().NewArray<uint32_t>(consts.data(), consts.size());
  node->num_adom_consts_ = static_cast<uint32_t>(consts.size());
  return node;
}

namespace {

bool CondsEqual(std::span<const AlgCondition> a,
                std::span<const AlgCondition> b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].op != b[i].op || !ScalarExprsEqual(a[i].lhs, b[i].lhs) ||
        !ScalarExprsEqual(a[i].rhs, b[i].rhs)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool AlgExprsEqual(const AlgExpr* a, const AlgExpr* b) {
  if (a == b) return true;
  if (a->kind() != b->kind() || a->arity() != b->arity()) return false;
  switch (a->kind()) {
    case AlgKind::kRel:
      return a->rel() == b->rel();
    case AlgKind::kProject: {
      if (a->exprs().size() != b->exprs().size()) return false;
      for (size_t i = 0; i < a->exprs().size(); ++i) {
        if (!ScalarExprsEqual(a->exprs()[i], b->exprs()[i])) return false;
      }
      return AlgExprsEqual(a->input(), b->input());
    }
    case AlgKind::kSelect:
      return CondsEqual(a->conds(), b->conds()) &&
             AlgExprsEqual(a->input(), b->input());
    case AlgKind::kJoin:
      return CondsEqual(a->conds(), b->conds()) &&
             AlgExprsEqual(a->left(), b->left()) &&
             AlgExprsEqual(a->right(), b->right());
    case AlgKind::kUnion:
    case AlgKind::kDiff:
      return AlgExprsEqual(a->left(), b->left()) &&
             AlgExprsEqual(a->right(), b->right());
    case AlgKind::kUnit:
    case AlgKind::kEmpty:
      return true;
    case AlgKind::kAdom: {
      if (a->adom_level() != b->adom_level()) return false;
      if (a->adom_fns().size() != b->adom_fns().size()) return false;
      for (size_t i = 0; i < a->adom_fns().size(); ++i) {
        if (a->adom_fns()[i] != b->adom_fns()[i]) return false;
      }
      if (a->adom_consts().size() != b->adom_consts().size()) return false;
      for (size_t i = 0; i < a->adom_consts().size(); ++i) {
        if (a->adom_consts()[i] != b->adom_consts()[i]) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace emcalc
