// Parser for the algebra printer's concrete syntax, enabling plan
// round-trips in tests and hand-written plans in tools:
//
//   (R - project([@1,@2,@3], join({@2==@4,@3==@5}, R, S)))
//
// Base relations print as bare names, so their arities come from the
// caller-supplied catalog. kAdom nodes do not round-trip (their function
// lists are not part of the printed form) and are rejected.
#ifndef EMCALC_ALGEBRA_PARSER_H_
#define EMCALC_ALGEBRA_PARSER_H_

#include <map>
#include <string>
#include <string_view>

#include "src/algebra/ast.h"
#include "src/base/status.h"

namespace emcalc {

// Parses `text` into a plan allocated in `ctx`. `rel_arities` maps base
// relation names to arities.
StatusOr<const AlgExpr*> ParseAlgebra(
    AstContext& ctx, std::string_view text,
    const std::map<std::string, int>& rel_arities);

}  // namespace emcalc

#endif  // EMCALC_ALGEBRA_PARSER_H_
