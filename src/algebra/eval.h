// Evaluator for extended-algebra plans against a database instance and a
// scalar-function interpretation. Joins with column-equality conditions use
// hash joins; everything else falls back to nested loops. The evaluator
// records simple cost counters so the experiments can report work done, not
// just wall time.
#ifndef EMCALC_ALGEBRA_EVAL_H_
#define EMCALC_ALGEBRA_EVAL_H_

#include "src/algebra/ast.h"
#include "src/base/status.h"
#include "src/storage/adom.h"
#include "src/storage/database.h"
#include "src/storage/interpretation.h"

namespace emcalc {

// Cost counters accumulated over one evaluation.
struct AlgebraEvalStats {
  uint64_t tuples_produced = 0;   // summed over every operator's output
  uint64_t tuples_scanned = 0;    // summed over every operator's inputs
  uint64_t function_calls = 0;    // scalar function applications
};

// Evaluation knobs.
struct AlgebraEvalOptions {
  // Budget for kAdom term closures (values). The direct translation never
  // emits kAdom; only the AB88-style baseline does.
  size_t adom_budget = 10'000'000;
};

// Evaluates `plan`. Fails (without evaluating) if the plan references
// unknown relations/functions or uses them with the wrong arity, and at
// runtime only if an adom closure exceeds its budget.
StatusOr<Relation> EvaluateAlgebra(const AstContext& ctx, const AlgExpr* plan,
                                   const Database& db,
                                   const FunctionRegistry& registry,
                                   AlgebraEvalStats* stats = nullptr,
                                   const AlgebraEvalOptions& options = {});

}  // namespace emcalc

#endif  // EMCALC_ALGEBRA_EVAL_H_
