// Evaluation of extended-algebra plans against a database instance and a
// scalar-function interpretation.
//
// EvaluateAlgebra is a thin compatibility wrapper over the physical
// execution layer (src/exec/): the plan is lowered to physical operators
// (hash joins for equality conditions, Materialize nodes for DAG-shared
// subplans) and executed with shared-ownership results; the flat
// AlgebraEvalStats counters are aggregated from the per-operator
// ExecProfile. Callers that want the per-operator breakdown should use
// Lower() + PhysicalPlan::Execute directly (see src/exec/lower.h).
//
// EvaluateAlgebraLegacy is the original one-shot recursive interpreter,
// kept as a differential-testing oracle for the execution layer (it
// deep-copies materialized relations at every node — correct, slow, and
// structurally independent of the physical operators).
#ifndef EMCALC_ALGEBRA_EVAL_H_
#define EMCALC_ALGEBRA_EVAL_H_

#include "src/algebra/ast.h"
#include "src/base/status.h"
#include "src/storage/adom.h"
#include "src/storage/database.h"
#include "src/storage/interpretation.h"

namespace emcalc {

// Flat cost counters accumulated over one evaluation. Aggregated from the
// execution layer's per-operator ExecProfile; kept for callers that only
// need totals.
struct AlgebraEvalStats {
  uint64_t tuples_produced = 0;   // summed over every operator's output
  uint64_t tuples_scanned = 0;    // summed over every operator's inputs
  uint64_t function_calls = 0;    // scalar function applications
  uint64_t tuple_copies = 0;      // existing tuples copied between buffers
};

// Evaluation knobs.
struct AlgebraEvalOptions {
  // Budget for kAdom term closures (values). The direct translation never
  // emits kAdom; only the AB88-style baseline does.
  size_t adom_budget = 10'000'000;
  // Worker threads for the physical layer's morsel-parallel operators
  // (forwarded to ExecOptions::num_threads). 0 means hardware
  // concurrency; 1 disables parallelism. Results are identical for every
  // value. Ignored by EvaluateAlgebraLegacy, which is always sequential.
  size_t num_threads = 0;
  // Rows per execution batch for the vectorized ProjectMap/FilterSelect
  // kernels (forwarded to ExecOptions::batch_size). 1 selects the
  // tuple-at-a-time path; results are identical for every value. Ignored
  // by EvaluateAlgebraLegacy.
  size_t batch_size = 1024;
};

// Evaluates `plan` through the physical execution layer. Fails (without
// evaluating) if the plan references unknown relations/functions or uses
// them with the wrong arity, and at runtime only if an adom closure
// exceeds its budget.
StatusOr<Relation> EvaluateAlgebra(const AstContext& ctx, const AlgExpr* plan,
                                   const Database& db,
                                   const FunctionRegistry& registry,
                                   AlgebraEvalStats* stats = nullptr,
                                   const AlgebraEvalOptions& options = {});

// The pre-physical-layer recursive interpreter, kept as a differential
// oracle (tests/exec_test.cc). Same contract as EvaluateAlgebra; does not
// fill tuple_copies.
StatusOr<Relation> EvaluateAlgebraLegacy(
    const AstContext& ctx, const AlgExpr* plan, const Database& db,
    const FunctionRegistry& registry, AlgebraEvalStats* stats = nullptr,
    const AlgebraEvalOptions& options = {});

}  // namespace emcalc

#endif  // EMCALC_ALGEBRA_EVAL_H_
