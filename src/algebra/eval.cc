#include "src/algebra/eval.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/check.h"
#include "src/calculus/analysis.h"
#include "src/exec/lower.h"
#include "src/exec/physical.h"

namespace emcalc {
namespace {

// A tuple logically formed by concatenating `left` and `right` (either may
// be empty for a plain single-tuple view). TupleRefs are two-word spans,
// so views are passed by value.
struct TupleView {
  TupleRef left;
  TupleRef right;

  const Value& at(int i) const {
    size_t ln = left.size();
    if (static_cast<size_t>(i) < ln) return left[static_cast<size_t>(i)];
    return right[static_cast<size_t>(i) - ln];
  }
};

class Evaluator {
 public:
  Evaluator(const AstContext& ctx, const Database& db,
            const FunctionRegistry& registry, AlgebraEvalStats* stats,
            const AlgebraEvalOptions& options)
      : ctx_(ctx), db_(db), registry_(registry), stats_(stats),
        options_(options) {}

  // Counts how many parents each node has. Plans are DAGs (the translator
  // shares the context subplan between a difference's two sides and among
  // union branches); nodes referenced more than once get their results
  // memoized so shared work is done once.
  void CountRefs(const AlgExpr* plan) {
    if (++refs_[plan] > 1) return;  // children already counted once
    switch (plan->kind()) {
      case AlgKind::kProject:
      case AlgKind::kSelect:
        CountRefs(plan->input());
        break;
      case AlgKind::kJoin:
      case AlgKind::kUnion:
      case AlgKind::kDiff:
        CountRefs(plan->left());
        CountRefs(plan->right());
        break;
      case AlgKind::kRel:
      case AlgKind::kUnit:
      case AlgKind::kEmpty:
      case AlgKind::kAdom:
        break;  // leaves
    }
  }

  // Resolves every relation and function referenced by `plan`.
  Status Validate(const AlgExpr* plan) {
    switch (plan->kind()) {
      case AlgKind::kRel: {
        std::string name(ctx_.symbols().Name(plan->rel()));
        auto rel = db_.Get(name);
        if (!rel.ok()) return rel.status();
        if ((*rel)->arity() != plan->arity()) {
          return InvalidArgumentError(
              "plan expects relation '" + name + "' with arity " +
              std::to_string(plan->arity()) + ", instance has " +
              std::to_string((*rel)->arity()));
        }
        return Status::Ok();
      }
      case AlgKind::kProject: {
        for (const ScalarExpr* e : plan->exprs()) {
          if (Status s = ValidateExpr(e); !s.ok()) return s;
        }
        return Validate(plan->input());
      }
      case AlgKind::kSelect: {
        if (Status s = ValidateConds(plan->conds()); !s.ok()) return s;
        return Validate(plan->input());
      }
      case AlgKind::kJoin: {
        if (Status s = ValidateConds(plan->conds()); !s.ok()) return s;
        if (Status s = Validate(plan->left()); !s.ok()) return s;
        return Validate(plan->right());
      }
      case AlgKind::kUnion:
      case AlgKind::kDiff: {
        if (Status s = Validate(plan->left()); !s.ok()) return s;
        return Validate(plan->right());
      }
      case AlgKind::kUnit:
      case AlgKind::kEmpty:
        return Status::Ok();
      case AlgKind::kAdom: {
        for (Symbol fn : plan->adom_fns()) {
          std::string name(ctx_.symbols().Name(fn));
          const ScalarFunction* f = registry_.Find(name);
          if (f == nullptr) {
            return NotFoundError("unknown scalar function '" + name + "'");
          }
          fn_cache_.emplace(fn, f);
        }
        return Status::Ok();
      }
    }
    return Status::Ok();
  }

  StatusOr<Relation> Eval(const AlgExpr* plan) {
    auto it = memo_.find(plan);
    if (it != memo_.end()) return it->second;
    auto result = EvalUncached(plan);
    if (result.ok()) {
      auto ref = refs_.find(plan);
      if (ref != refs_.end() && ref->second > 1) {
        memo_.emplace(plan, *result);
      }
    }
    return result;
  }

  StatusOr<Relation> EvalUncached(const AlgExpr* plan) {
    switch (plan->kind()) {
      case AlgKind::kRel: {
        const Relation* rel =
            db_.Find(std::string(ctx_.symbols().Name(plan->rel())));
        EMCALC_CHECK(rel != nullptr);  // Validate ran
        Count(rel->size(), rel->size());
        return *rel;
      }
      case AlgKind::kProject: {
        auto in = Eval(plan->input());
        if (!in.ok()) return in;
        Relation out(plan->arity());
        for (TupleRef t : *in) {
          TupleView view{t, TupleRef()};
          Tuple row;
          row.reserve(plan->exprs().size());
          for (const ScalarExpr* e : plan->exprs()) {
            row.push_back(EvalExpr(e, view));
          }
          out.Insert(row);
        }
        Count(in->size(), out.size());
        return out;
      }
      case AlgKind::kSelect: {
        auto in = Eval(plan->input());
        if (!in.ok()) return in;
        Relation out(plan->arity());
        for (TupleRef t : *in) {
          TupleView view{t, TupleRef()};
          if (CondsHold(plan->conds(), view)) out.Insert(t);
        }
        Count(in->size(), out.size());
        return out;
      }
      case AlgKind::kJoin:
        return EvalJoin(plan);
      case AlgKind::kUnion: {
        auto l = Eval(plan->left());
        if (!l.ok()) return l;
        auto r = Eval(plan->right());
        if (!r.ok()) return r;
        Relation out = l->UnionWith(*r);
        Count(l->size() + r->size(), out.size());
        return out;
      }
      case AlgKind::kDiff: {
        auto l = Eval(plan->left());
        if (!l.ok()) return l;
        auto r = Eval(plan->right());
        if (!r.ok()) return r;
        Relation out = l->DifferenceWith(*r);
        Count(l->size() + r->size(), out.size());
        return out;
      }
      case AlgKind::kUnit: {
        Relation out(0);
        out.Insert(Tuple{});
        Count(0, 1);
        return out;
      }
      case AlgKind::kEmpty:
        return Relation(plan->arity());
      case AlgKind::kAdom:
        return EvalAdom(plan);
    }
    return InternalError("unhandled algebra node");
  }

 private:
  void Count(uint64_t scanned, uint64_t produced) {
    if (stats_ == nullptr) return;
    stats_->tuples_scanned += scanned;
    stats_->tuples_produced += produced;
  }

  Status ValidateExpr(const ScalarExpr* e) {
    if (e->kind() == ScalarExpr::Kind::kApply) {
      std::string name(ctx_.symbols().Name(e->fn()));
      auto f = registry_.Get(name, static_cast<int>(e->args().size()));
      if (!f.ok()) return f.status();
      fn_cache_.emplace(e->fn(), *f);
      for (const ScalarExpr* a : e->args()) {
        if (Status s = ValidateExpr(a); !s.ok()) return s;
      }
    }
    return Status::Ok();
  }

  Status ValidateConds(std::span<const AlgCondition> conds) {
    for (const AlgCondition& c : conds) {
      if (Status s = ValidateExpr(c.lhs); !s.ok()) return s;
      if (Status s = ValidateExpr(c.rhs); !s.ok()) return s;
    }
    return Status::Ok();
  }

  Value EvalExpr(const ScalarExpr* e, const TupleView& view) {
    switch (e->kind()) {
      case ScalarExpr::Kind::kCol:
        return view.at(e->col());
      case ScalarExpr::Kind::kConst:
        return ctx_.ConstantAt(e->const_id());
      case ScalarExpr::Kind::kApply: {
        std::vector<Value> args;
        args.reserve(e->args().size());
        for (const ScalarExpr* a : e->args()) {
          args.push_back(EvalExpr(a, view));
        }
        if (stats_ != nullptr) ++stats_->function_calls;
        auto it = fn_cache_.find(e->fn());
        EMCALC_CHECK(it != fn_cache_.end());  // Validate ran
        return it->second->fn(args);
      }
    }
    return Value();
  }

  bool CondsHold(std::span<const AlgCondition> conds, const TupleView& view) {
    for (const AlgCondition& c : conds) {
      Value l = EvalExpr(c.lhs, view);
      Value r = EvalExpr(c.rhs, view);
      bool holds = false;
      switch (c.op) {
        case AlgCompareOp::kEq:
          holds = l == r;
          break;
        case AlgCompareOp::kNe:
          holds = l != r;
          break;
        case AlgCompareOp::kLt:
          holds = l < r;
          break;
        case AlgCompareOp::kLe:
          holds = l < r || l == r;
          break;
      }
      if (!holds) return false;
    }
    return true;
  }

  // True if `e` references only left columns (side 0) / right columns
  // (side 1) of a join with the given split point.
  static bool OnSide(const ScalarExpr* e, int split, int side) {
    switch (e->kind()) {
      case ScalarExpr::Kind::kCol:
        return side == 0 ? e->col() < split : e->col() >= split;
      case ScalarExpr::Kind::kConst:
        return true;
      case ScalarExpr::Kind::kApply:
        for (const ScalarExpr* a : e->args()) {
          if (!OnSide(a, split, side)) return false;
        }
        return true;
    }
    return false;
  }

  StatusOr<Relation> EvalJoin(const AlgExpr* plan) {
    auto l = Eval(plan->left());
    if (!l.ok()) return l;
    auto r = Eval(plan->right());
    if (!r.ok()) return r;
    int split = plan->left()->arity();

    // Partition conditions into hashable equi-conditions (one side from
    // each input) and residual conditions.
    struct KeyPair {
      const ScalarExpr* left_key;
      const ScalarExpr* right_key;
    };
    std::vector<KeyPair> keys;
    std::vector<AlgCondition> residual;
    for (const AlgCondition& c : plan->conds()) {
      if (c.op == AlgCompareOp::kEq && OnSide(c.lhs, split, 0) &&
          OnSide(c.rhs, split, 1)) {
        keys.push_back({c.lhs, c.rhs});
      } else if (c.op == AlgCompareOp::kEq && OnSide(c.rhs, split, 0) &&
                 OnSide(c.lhs, split, 1)) {
        keys.push_back({c.rhs, c.lhs});
      } else {
        residual.push_back(c);
      }
    }

    Relation out(plan->arity());
    auto emit = [&](TupleRef a, TupleRef b) {
      TupleView joined{a, b};
      if (!residual.empty() && !CondsHold(residual, joined)) return;
      Tuple row;
      row.reserve(a.size() + b.size());
      row.insert(row.end(), a.begin(), a.end());
      row.insert(row.end(), b.begin(), b.end());
      out.Insert(row);
    };

    if (keys.empty()) {
      for (TupleRef a : *l) {
        for (TupleRef b : *r) emit(a, b);
      }
    } else {
      // Hash the right side on its key expressions. Right-side column
      // indices must be shifted down by `split` to evaluate against the
      // bare right tuple; we evaluate via a TupleView with an empty left
      // part of width `split` instead.
      Tuple empty_left(static_cast<size_t>(split), Value());
      auto key_hash = [](const std::vector<Value>& key) {
        size_t h = 0xcbf29ce484222325ULL;
        for (const Value& v : key) h = h * 1099511628211ULL ^ v.Hash();
        return h;
      };
      std::unordered_map<size_t,
                         std::vector<std::pair<std::vector<Value>, TupleRef>>>
          buckets;
      for (TupleRef b : *r) {
        TupleView view{TupleRef(empty_left), b};
        std::vector<Value> key;
        key.reserve(keys.size());
        for (const KeyPair& k : keys) key.push_back(EvalExpr(k.right_key, view));
        buckets[key_hash(key)].emplace_back(std::move(key), b);
      }
      for (TupleRef a : *l) {
        TupleView view{a, TupleRef()};
        std::vector<Value> key;
        key.reserve(keys.size());
        for (const KeyPair& k : keys) key.push_back(EvalExpr(k.left_key, view));
        auto it = buckets.find(key_hash(key));
        if (it == buckets.end()) continue;
        for (const auto& [bkey, btuple] : it->second) {
          if (bkey == key) emit(a, btuple);
        }
      }
    }
    Count(l->size() + r->size(), out.size());
    return out;
  }

  StatusOr<Relation> EvalAdom(const AlgExpr* plan) {
    ValueSet base = ActiveDomain(db_);
    for (uint32_t id : plan->adom_consts()) {
      base.push_back(ctx_.ConstantAt(id));
    }
    NormalizeValueSet(base);
    std::vector<std::pair<std::string, int>> fns;
    for (Symbol f : plan->adom_fns()) {
      auto it = fn_cache_.find(f);
      EMCALC_CHECK(it != fn_cache_.end());
      fns.emplace_back(std::string(ctx_.symbols().Name(f)),
                       it->second->arity);
    }
    auto closed = TermClosure(std::move(base), fns, registry_,
                              plan->adom_level(), options_.adom_budget);
    if (!closed.ok()) return closed.status();
    Relation out(1);
    for (const Value& v : *closed) out.Insert({v});
    Count(0, out.size());
    return out;
  }

  const AstContext& ctx_;
  const Database& db_;
  const FunctionRegistry& registry_;
  AlgebraEvalStats* stats_;
  AlgebraEvalOptions options_;
  std::unordered_map<Symbol, const ScalarFunction*> fn_cache_;
  std::unordered_map<const AlgExpr*, int> refs_;
  std::unordered_map<const AlgExpr*, Relation> memo_;
};

}  // namespace

StatusOr<Relation> EvaluateAlgebraLegacy(
    const AstContext& ctx, const AlgExpr* plan, const Database& db,
    const FunctionRegistry& registry, AlgebraEvalStats* stats,
    const AlgebraEvalOptions& options) {
  Evaluator evaluator(ctx, db, registry, stats, options);
  if (Status s = evaluator.Validate(plan); !s.ok()) return s;
  evaluator.CountRefs(plan);
  return evaluator.Eval(plan);
}

StatusOr<Relation> EvaluateAlgebra(const AstContext& ctx, const AlgExpr* plan,
                                   const Database& db,
                                   const FunctionRegistry& registry,
                                   AlgebraEvalStats* stats,
                                   const AlgebraEvalOptions& options) {
  ExecOptions exec_options;
  exec_options.adom_budget = options.adom_budget;
  exec_options.num_threads = options.num_threads;
  exec_options.batch_size = options.batch_size;
  auto physical = Lower(ctx, plan, registry, exec_options);
  if (!physical.ok()) return physical.status();
  ExecProfile profile;
  auto result =
      physical->ExecuteToRelation(db, stats != nullptr ? &profile : nullptr);
  if (!result.ok()) return result;
  if (stats != nullptr) {
    ExecTotals totals = SumProfile(profile);
    stats->tuples_scanned += totals.rows_in;
    stats->tuples_produced += totals.rows_out;
    stats->function_calls += totals.function_calls;
    stats->tuple_copies += totals.tuple_copies;
  }
  return result;
}

}  // namespace emcalc
