#include "src/algebra/expr.h"

#include <algorithm>
#include <vector>

#include "src/base/check.h"

namespace emcalc {

const ScalarExpr* ExprFactory::Col(int index) {
  EMCALC_CHECK(index >= 0);
  ScalarExpr* e = ctx_.arena().New<ScalarExpr>();
  e->kind_ = ScalarExpr::Kind::kCol;
  e->col_ = index;
  return e;
}

const ScalarExpr* ExprFactory::Const(uint32_t const_id) {
  ScalarExpr* e = ctx_.arena().New<ScalarExpr>();
  e->kind_ = ScalarExpr::Kind::kConst;
  e->const_id_ = const_id;
  return e;
}

const ScalarExpr* ExprFactory::ConstValue(const Value& v) {
  return Const(ctx_.InternConstant(v));
}

const ScalarExpr* ExprFactory::Apply(Symbol fn,
                                     std::span<const ScalarExpr* const> args) {
  ScalarExpr* e = ctx_.arena().New<ScalarExpr>();
  e->kind_ = ScalarExpr::Kind::kApply;
  e->fn_ = fn;
  e->args_ = ctx_.arena().NewArray<const ScalarExpr*>(args.data(), args.size());
  e->num_args_ = static_cast<uint32_t>(args.size());
  return e;
}

const ScalarExpr* ExprFactory::RemapColumns(const ScalarExpr* e,
                                            std::span<const int> map) {
  switch (e->kind()) {
    case ScalarExpr::Kind::kCol: {
      EMCALC_CHECK_MSG(e->col() < static_cast<int>(map.size()),
                       "column @%d outside remap of size %zu", e->col() + 1,
                       map.size());
      int target = map[static_cast<size_t>(e->col())];
      EMCALC_CHECK(target >= 0);
      return target == e->col() ? e : Col(target);
    }
    case ScalarExpr::Kind::kConst:
      return e;
    case ScalarExpr::Kind::kApply: {
      std::vector<const ScalarExpr*> args;
      args.reserve(e->args().size());
      bool changed = false;
      for (const ScalarExpr* a : e->args()) {
        const ScalarExpr* na = RemapColumns(a, map);
        changed |= (na != a);
        args.push_back(na);
      }
      return changed ? Apply(e->fn(), args) : e;
    }
  }
  return e;
}

int ExprFactory::MaxColumn(const ScalarExpr* e) {
  switch (e->kind()) {
    case ScalarExpr::Kind::kCol:
      return e->col();
    case ScalarExpr::Kind::kConst:
      return -1;
    case ScalarExpr::Kind::kApply: {
      int max = -1;
      for (const ScalarExpr* a : e->args()) {
        max = std::max(max, MaxColumn(a));
      }
      return max;
    }
  }
  return -1;
}

bool ScalarExprsEqual(const ScalarExpr* a, const ScalarExpr* b) {
  if (a == b) return true;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case ScalarExpr::Kind::kCol:
      return a->col() == b->col();
    case ScalarExpr::Kind::kConst:
      return a->const_id() == b->const_id();
    case ScalarExpr::Kind::kApply: {
      if (a->fn() != b->fn() || a->args().size() != b->args().size()) {
        return false;
      }
      for (size_t i = 0; i < a->args().size(); ++i) {
        if (!ScalarExprsEqual(a->args()[i], b->args()[i])) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace emcalc
