#include "src/core/workload.h"

#include <random>

#include "src/base/check.h"

namespace emcalc {

void AddRandomTuples(Database& db, const std::string& name, int arity,
                     size_t rows, int value_pool, uint64_t seed,
                     double string_share) {
  EMCALC_CHECK(value_pool > 0);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, value_pool - 1);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  EMCALC_CHECK(db.AddRelation(name, arity).ok());
  for (size_t i = 0; i < rows; ++i) {
    Tuple t;
    t.reserve(static_cast<size_t>(arity));
    for (int c = 0; c < arity; ++c) {
      int v = pick(rng);
      if (unit(rng) < string_share) {
        t.push_back(Value::Str("s" + std::to_string(v)));
      } else {
        t.push_back(Value::Int(v));
      }
    }
    EMCALC_CHECK(db.Insert(name, std::move(t)).ok());
  }
}

Database RandomDatabase(
    const std::vector<std::pair<std::string, int>>& schema, size_t rows,
    int value_pool, uint64_t seed) {
  Database db;
  uint64_t salt = 0;
  for (const auto& [name, arity] : schema) {
    AddRandomTuples(db, name, arity, rows, value_pool, seed + (salt++) * 7919);
  }
  return db;
}

Database MakeQ6Instance(size_t r_rows, size_t s_rows, int value_pool,
                        uint64_t seed) {
  Database db;
  AddRandomTuples(db, "R", 3, r_rows, value_pool, seed);
  AddRandomTuples(db, "S", 2, s_rows, value_pool, seed + 1);
  return db;
}

Database MakePayrollInstance(size_t employees, size_t departments,
                             uint64_t seed) {
  Database db;
  std::mt19937_64 rng(seed);
  EMCALC_CHECK(db.AddRelation("EMP", 3).ok());
  EMCALC_CHECK(db.AddRelation("DEPT", 2).ok());
  EMCALC_CHECK(db.AddRelation("BONUS", 2).ok());
  size_t ndept = departments == 0 ? 1 : departments;
  for (size_t d = 0; d < ndept; ++d) {
    int64_t budget = 50'000 + static_cast<int64_t>(rng() % 100) * 1'000;
    EMCALC_CHECK(db.Insert("DEPT", {Value::Int(static_cast<int64_t>(d)),
                                    Value::Int(budget)})
                     .ok());
  }
  for (size_t e = 0; e < employees; ++e) {
    int64_t dept = static_cast<int64_t>(rng() % ndept);
    int64_t salary = 30'000 + static_cast<int64_t>(rng() % 700) * 100;
    EMCALC_CHECK(db.Insert("EMP", {Value::Int(static_cast<int64_t>(e)),
                                   Value::Int(dept), Value::Int(salary)})
                     .ok());
    if (rng() % 3 == 0) {
      EMCALC_CHECK(db.Insert("BONUS", {Value::Int(static_cast<int64_t>(e)),
                                       Value::Int(static_cast<int64_t>(
                                           rng() % 5000))})
                       .ok());
    }
  }
  return db;
}

}  // namespace emcalc
