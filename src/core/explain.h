// Human-readable explanation of the full analysis + translation of a
// query: the bd finiteness dependencies, how each safety criterion
// classifies it, the ENF/RANF intermediate forms, and the generated plan
// (with sizes). Powers the safety_lint tool and the library's
// "explain this query" API.
#ifndef EMCALC_CORE_EXPLAIN_H_
#define EMCALC_CORE_EXPLAIN_H_

#include <string>

#include "src/base/status.h"
#include "src/calculus/ast.h"
#include "src/exec/physical.h"
#include "src/translate/pipeline.h"

namespace emcalc {

// A structured account of one query's analysis.
struct Explanation {
  std::string query_text;
  std::string bd_text;            // reduced cover of bd(body)
  bool em_allowed = false;
  std::string rejection_reason;   // set when not em-allowed
  bool gt91_allowed = false;
  bool range_restricted = false;
  bool top91_safe = false;
  int application_count = 0;      // closure-level bound (||phi|| proxy)
  int max_function_depth = 0;
  // Only populated when em-allowed:
  std::string enf_text;
  std::string ranf_text;
  std::string plan_text;
  std::string plan_tree;
  int plan_nodes = 0;
  int raw_plan_nodes = 0;
  // Only populated by ExplainAnalyzeQuery (EXPLAIN ANALYZE): the physical
  // plan's per-operator runtime statistics for one execution.
  ExecProfile exec_profile;
  std::string exec_profile_text;
  size_t answer_rows = 0;

  // Renders the whole explanation as an indented multi-line report.
  std::string ToString() const;
};

// Analyzes `q` (parsed against `ctx`). Never fails for well-formed
// queries: unsafe queries produce an Explanation with em_allowed == false
// and the reason filled in.
StatusOr<Explanation> ExplainQuery(AstContext& ctx, const Query& q,
                                   const TranslateOptions& options = {});

// Parses and analyzes query text.
StatusOr<Explanation> ExplainQuery(AstContext& ctx, std::string_view text,
                                   const TranslateOptions& options = {});

// EXPLAIN ANALYZE: analyzes `text` and, when it is em-allowed, lowers the
// plan to the physical execution layer, runs it against `db`, and fills
// the per-operator statistics (rows in/out, hash build/probes, timing).
StatusOr<Explanation> ExplainAnalyzeQuery(
    AstContext& ctx, std::string_view text, const Database& db,
    const FunctionRegistry& registry, const TranslateOptions& options = {});

}  // namespace emcalc

#endif  // EMCALC_CORE_EXPLAIN_H_
