// Synthetic instance generators for tests, benchmarks, and examples.
#ifndef EMCALC_CORE_WORKLOAD_H_
#define EMCALC_CORE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/storage/database.h"

namespace emcalc {

// Appends `rows` random tuples to `name` (created with `arity` on first
// use). Values are drawn uniformly from the integers [0, value_pool); with
// string_share > 0, that share of columns draws from a pool of short
// strings instead.
void AddRandomTuples(Database& db, const std::string& name, int arity,
                     size_t rows, int value_pool, uint64_t seed,
                     double string_share = 0.0);

// A database for a schema [(name, arity), ...] with `rows` tuples each.
Database RandomDatabase(
    const std::vector<std::pair<std::string, int>>& schema, size_t rows,
    int value_pool, uint64_t seed);

// The instance family of experiment E2 (paper query q6
// {x,y,z | R(x,y,z) and not S(y,z)}): R/3 with `r_rows` tuples and S/2 with
// `s_rows` tuples, value pool shared so the difference is selective.
Database MakeQ6Instance(size_t r_rows, size_t s_rows, int value_pool,
                        uint64_t seed);

// The payroll instance used by the payroll example and experiment E9:
//   EMP(id, dept, salary), DEPT(dept, budget), BONUS(id, amount).
Database MakePayrollInstance(size_t employees, size_t departments,
                             uint64_t seed);

}  // namespace emcalc

#endif  // EMCALC_CORE_WORKLOAD_H_
