#include "src/core/random_query.h"

#include <algorithm>
#include <string>

#include "src/base/check.h"
#include "src/calculus/analysis.h"
#include "src/calculus/builder.h"
#include "src/safety/em_allowed.h"

namespace emcalc {

RandomQueryGen::RandomQueryGen(AstContext& ctx, uint64_t seed,
                               RandomQueryOptions options)
    : ctx_(ctx), options_(options), rng_(seed) {
  EMCALC_CHECK(options_.num_relations > 0);
  EMCALC_CHECK(options_.max_vars > 0);
  for (int i = 0; i < options_.num_relations; ++i) {
    rel_names_.push_back(ctx_.symbols().Intern("R" + std::to_string(i)));
    rel_arities_.push_back(1 + (i % options_.max_rel_arity));
  }
  for (int i = 0; i < options_.num_functions; ++i) {
    fn_names_.push_back(ctx_.symbols().Intern("rf" + std::to_string(i)));
    fn_arities_.push_back(1 + (i % 2));
  }
}

const Term* RandomQueryGen::RandomTerm(const std::vector<Symbol>& vars,
                                       bool allow_fn) {
  int roll = Pick(10);
  if (roll < 6 || vars.empty()) {
    if (!vars.empty()) return ctx_.MakeVar(vars[PickIndex(vars.size())]);
    return ctx_.MakeConst(Value::Int(Pick(5)));
  }
  if (roll < 8 || !allow_fn || fn_names_.empty()) {
    return ctx_.MakeConst(Value::Int(Pick(5)));
  }
  size_t f = PickIndex(fn_names_.size());
  std::vector<const Term*> args;
  for (int i = 0; i < fn_arities_[f]; ++i) {
    args.push_back(
        ctx_.MakeVar(vars[PickIndex(vars.size())]));
  }
  return ctx_.MakeApply(fn_names_[f], args);
}

const Formula* RandomQueryGen::RelAtom(const std::vector<Symbol>& vars) {
  size_t r = PickIndex(rel_names_.size());
  std::vector<const Term*> args;
  for (int i = 0; i < rel_arities_[r]; ++i) {
    args.push_back(RandomTerm(vars, /*allow_fn=*/Flip(0.2)));
  }
  return ctx_.MakeRel(rel_names_[r], args);
}

const Formula* RandomQueryGen::Conjunction(const std::vector<Symbol>& vars,
                                           int depth) {
  std::vector<const Formula*> cs;
  int n_atoms = 1 + Pick(options_.max_conjuncts);
  for (int i = 0; i < n_atoms; ++i) cs.push_back(RelAtom(vars));

  if (!vars.empty() && !fn_names_.empty() && Flip(options_.p_function_eq)) {
    size_t f = PickIndex(fn_names_.size());
    std::vector<const Term*> args;
    for (int i = 0; i < fn_arities_[f]; ++i) {
      args.push_back(ctx_.MakeVar(vars[PickIndex(vars.size())]));
    }
    const Term* target =
        ctx_.MakeVar(vars[PickIndex(vars.size())]);
    cs.push_back(ctx_.MakeEq(ctx_.MakeApply(fn_names_[f], args), target));
  }

  if (!vars.empty() && Flip(options_.p_inequality)) {
    const Term* a = ctx_.MakeVar(vars[PickIndex(vars.size())]);
    const Term* b = RandomTerm(vars, /*allow_fn=*/true);
    switch (Pick(3)) {
      case 0:
        cs.push_back(ctx_.MakeNeq(a, b));
        break;
      case 1:
        cs.push_back(ctx_.MakeLess(a, b));
        break;
      default:
        cs.push_back(ctx_.MakeLessEq(a, b));
        break;
    }
  }

  if (depth > 0 && Flip(options_.p_negation)) {
    cs.push_back(builder::Not(
        ctx_, Flip(0.5) ? RelAtom(vars) : Block(vars, depth - 1)));
  }

  if (depth > 0 && Flip(options_.p_exists)) {
    int nq = 1 + Pick(2);
    std::vector<Symbol> qvars;
    std::vector<Symbol> inner = vars;
    for (int i = 0; i < nq; ++i) {
      Symbol q = ctx_.symbols().Intern("q" + std::to_string(fresh_++));
      qvars.push_back(q);
      inner.push_back(q);
    }
    const Formula* body = Conjunction(inner, depth - 1);
    cs.push_back(builder::Exists(ctx_, std::move(qvars), body));
  }

  std::shuffle(cs.begin(), cs.end(), rng_);
  return builder::And(ctx_, std::move(cs));
}

const Formula* RandomQueryGen::Block(const std::vector<Symbol>& outer_vars,
                                     int depth) {
  if (depth > 0 && Flip(options_.p_disjunction)) {
    const Formula* a = Conjunction(outer_vars, depth - 1);
    const Formula* b = Conjunction(outer_vars, depth - 1);
    return builder::Or(ctx_, {a, b});
  }
  return Conjunction(outer_vars, depth);
}

Query RandomQueryGen::Next() {
  int nv = 1 + Pick(options_.max_vars);
  std::vector<Symbol> vars;
  for (int i = 0; i < nv; ++i) {
    vars.push_back(ctx_.symbols().Intern("x" + std::to_string(i)));
  }
  const Formula* body = Block(vars, options_.max_depth);
  SymbolSet free = FreeVars(body);
  return Query{{free.begin(), free.end()}, body};
}

std::optional<Query> RandomQueryGen::NextEmAllowed(int max_attempts) {
  for (int i = 0; i < max_attempts; ++i) {
    Query q = Next();
    if (CheckEmAllowed(ctx_, q).em_allowed) return q;
  }
  return std::nullopt;
}

}  // namespace emcalc
