#include "src/core/explain.h"

#include "src/algebra/printer.h"
#include "src/calculus/analysis.h"
#include "src/calculus/parser.h"
#include "src/exec/lower.h"
#include "src/calculus/printer.h"
#include "src/finds/bound.h"
#include "src/safety/allowed.h"

namespace emcalc {
namespace {

// Indents every line of `text` four extra spaces.
std::string Indent(const std::string& text) {
  std::string out;
  std::string line;
  for (char c : text) {
    if (c == '\n') {
      out += "    " + line + "\n";
      line.clear();
    } else {
      line += c;
    }
  }
  return out;
}

}  // namespace

std::string Explanation::ToString() const {
  std::string out;
  out += "query: " + query_text + "\n";
  out += "  bd (reduced cover): " + bd_text + "\n";
  out += "  function applications: " + std::to_string(application_count) +
         " (max nesting " + std::to_string(max_function_depth) + ")\n";
  out += std::string("  em-allowed:        ") + (em_allowed ? "yes" : "no");
  if (!em_allowed) out += " — " + rejection_reason;
  out += "\n";
  out += std::string("  GT91 allowed:      ") +
         (gt91_allowed ? "yes" : "no") + "\n";
  out += std::string("  AB88 range-restr.: ") +
         (range_restricted ? "yes" : "no") + "\n";
  out += std::string("  Top91 safe:        ") + (top91_safe ? "yes" : "no") +
         "\n";
  if (!em_allowed) return out;
  out += "  ENF:  " + enf_text + "\n";
  out += "  RANF: " + ranf_text + "\n";
  out += "  plan: " + plan_text + "\n";
  out += "  plan nodes: " + std::to_string(plan_nodes) + " (raw " +
         std::to_string(raw_plan_nodes) + ")\n";
  out += "  plan tree:\n";
  out += Indent(plan_tree);
  if (!exec_profile_text.empty()) {
    out += "  answer rows: " + std::to_string(answer_rows) + "\n";
    out += "  execution profile:\n";
    out += Indent(exec_profile_text);
  }
  return out;
}

StatusOr<Explanation> ExplainQuery(AstContext& ctx, const Query& q,
                                   const TranslateOptions& options) {
  if (Status s = CheckWellFormed(q, ctx.symbols()); !s.ok()) return s;

  Explanation out;
  out.query_text = QueryToString(ctx, q);
  out.bd_text = BoundingFinDs(ctx, q.body, options.bound)
                    .ToString(ctx.symbols());
  out.application_count = CountApplications(q.body);
  out.max_function_depth = MaxFunctionDepth(q.body);
  out.gt91_allowed = IsAllowedGT91(ctx, q.body);
  out.range_restricted = IsRangeRestricted(ctx, q.body);
  out.top91_safe = IsTop91Safe(ctx, q.body);

  auto t = TranslateQuery(ctx, q, options);
  if (!t.ok()) {
    if (t.status().code() != StatusCode::kNotSafe) return t.status();
    out.em_allowed = false;
    out.rejection_reason = t.status().message();
    return out;
  }
  out.em_allowed = true;
  out.enf_text = FormulaToString(ctx, t->enf);
  out.ranf_text = FormulaToString(ctx, t->ranf);
  out.plan_text = AlgExprToString(ctx, t->plan);
  out.plan_tree = AlgExprToTreeString(ctx, t->plan);
  out.plan_nodes = t->plan->NodeCount();
  out.raw_plan_nodes = t->raw_plan->NodeCount();
  return out;
}

StatusOr<Explanation> ExplainQuery(AstContext& ctx, std::string_view text,
                                   const TranslateOptions& options) {
  auto q = ParseQuery(ctx, text);
  if (!q.ok()) return q.status();
  return ExplainQuery(ctx, *q, options);
}

StatusOr<Explanation> ExplainAnalyzeQuery(AstContext& ctx,
                                          std::string_view text,
                                          const Database& db,
                                          const FunctionRegistry& registry,
                                          const TranslateOptions& options) {
  auto q = ParseQuery(ctx, text);
  if (!q.ok()) return q.status();
  auto explanation = ExplainQuery(ctx, *q, options);
  if (!explanation.ok() || !explanation->em_allowed) return explanation;
  // Re-translate (cheap) to get the plan: ExplainQuery only keeps text.
  auto t = TranslateQuery(ctx, *q, options);
  if (!t.ok()) return t.status();
  auto physical = Lower(ctx, t->plan, registry);
  if (!physical.ok()) return physical.status();
  auto answer = physical->ExecuteToRelation(db, &explanation->exec_profile);
  if (!answer.ok()) return answer.status();
  explanation->answer_rows = answer->size();
  explanation->exec_profile_text =
      ExecProfileToString(explanation->exec_profile);
  return explanation;
}

}  // namespace emcalc
