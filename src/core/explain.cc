#include "src/core/explain.h"

#include "src/algebra/printer.h"
#include "src/calculus/analysis.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/finds/bound.h"
#include "src/safety/allowed.h"

namespace emcalc {

std::string Explanation::ToString() const {
  std::string out;
  out += "query: " + query_text + "\n";
  out += "  bd (reduced cover): " + bd_text + "\n";
  out += "  function applications: " + std::to_string(application_count) +
         " (max nesting " + std::to_string(max_function_depth) + ")\n";
  out += std::string("  em-allowed:        ") + (em_allowed ? "yes" : "no");
  if (!em_allowed) out += " — " + rejection_reason;
  out += "\n";
  out += std::string("  GT91 allowed:      ") +
         (gt91_allowed ? "yes" : "no") + "\n";
  out += std::string("  AB88 range-restr.: ") +
         (range_restricted ? "yes" : "no") + "\n";
  out += std::string("  Top91 safe:        ") + (top91_safe ? "yes" : "no") +
         "\n";
  if (!em_allowed) return out;
  out += "  ENF:  " + enf_text + "\n";
  out += "  RANF: " + ranf_text + "\n";
  out += "  plan: " + plan_text + "\n";
  out += "  plan nodes: " + std::to_string(plan_nodes) + " (raw " +
         std::to_string(raw_plan_nodes) + ")\n";
  out += "  plan tree:\n";
  // Indent the tree two extra spaces per line.
  std::string line;
  for (char c : plan_tree) {
    if (c == '\n') {
      out += "    " + line + "\n";
      line.clear();
    } else {
      line += c;
    }
  }
  return out;
}

StatusOr<Explanation> ExplainQuery(AstContext& ctx, const Query& q,
                                   const TranslateOptions& options) {
  if (Status s = CheckWellFormed(q, ctx.symbols()); !s.ok()) return s;

  Explanation out;
  out.query_text = QueryToString(ctx, q);
  out.bd_text = BoundingFinDs(ctx, q.body, options.bound)
                    .ToString(ctx.symbols());
  out.application_count = CountApplications(q.body);
  out.max_function_depth = MaxFunctionDepth(q.body);
  out.gt91_allowed = IsAllowedGT91(ctx, q.body);
  out.range_restricted = IsRangeRestricted(ctx, q.body);
  out.top91_safe = IsTop91Safe(ctx, q.body);

  auto t = TranslateQuery(ctx, q, options);
  if (!t.ok()) {
    if (t.status().code() != StatusCode::kNotSafe) return t.status();
    out.em_allowed = false;
    out.rejection_reason = t.status().message();
    return out;
  }
  out.em_allowed = true;
  out.enf_text = FormulaToString(ctx, t->enf);
  out.ranf_text = FormulaToString(ctx, t->ranf);
  out.plan_text = AlgExprToString(ctx, t->plan);
  out.plan_tree = AlgExprToTreeString(ctx, t->plan);
  out.plan_nodes = t->plan->NodeCount();
  out.raw_plan_nodes = t->raw_plan->NodeCount();
  return out;
}

StatusOr<Explanation> ExplainQuery(AstContext& ctx, std::string_view text,
                                   const TranslateOptions& options) {
  auto q = ParseQuery(ctx, text);
  if (!q.ok()) return q.status();
  return ExplainQuery(ctx, *q, options);
}

}  // namespace emcalc
