// Public entry point: compile calculus query text into an executable
// extended-algebra plan and run it against database instances.
//
//   emcalc::Compiler compiler;                       // builtin functions
//   auto q = compiler.Compile(
//       "{y | exists x (R(x) and y = succ(x))}");
//   if (!q.ok()) { ... q.status().message() ... }
//   auto answer = q->Run(db);
//
// One Compiler owns one AstContext; every CompiledQuery it produces remains
// valid for the compiler's lifetime.
#ifndef EMCALC_CORE_COMPILER_H_
#define EMCALC_CORE_COMPILER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/algebra/eval.h"
#include "src/base/status.h"
#include "src/calculus/ast.h"
#include "src/calculus/views.h"
#include "src/diag/diagnostic.h"
#include "src/exec/physical.h"
#include "src/obs/compile_profile.h"
#include "src/storage/database.h"
#include "src/storage/interpretation.h"
#include "src/translate/pipeline.h"

namespace emcalc {

class Compiler;

// Result of Compiler::Analyze — every front-end diagnostic for a query
// (parse errors, lint findings, well-formedness errors, the safety blame
// trace) without generating a plan or executing anything. Lint warnings
// are reported even for accepted queries.
struct QueryAnalysis {
  std::string text;     // the analyzed source, for rendering
  bool parsed = false;  // text parsed into a query
  bool safe = false;    // parsed, well-formed, and em-allowed
  // Structured safety outcome (meaningful once `parsed`); on rejection its
  // blame fields identify the failing condition and variables.
  SafetyResult safety;
  // Ordered report: lint errors, then parse/well-formedness/safety
  // diagnostics, then lint warnings.
  std::vector<diag::Diagnostic> diagnostics;

  bool HasErrors() const { return diag::CountErrors(diagnostics) > 0; }

  // Human-readable report with caret snippets against `text`.
  std::string Render() const;
  // JSON array (diagnostics schema of docs/diagnostics.md), with spans
  // resolved to line/col.
  std::string ToJson() const;
};

// A safety-checked, translated query ready to execute.
class CompiledQuery {
 public:
  const Query& query() const { return query_; }
  const Translation& translation() const { return translation_; }
  const AlgExpr* plan() const { return translation_.plan; }

  // Pretty forms for display.
  std::string QueryString() const;
  std::string PlanString() const;
  std::string PlanTreeString() const;

  // Executes the plan against `db` using the owning compiler's functions.
  // The plan is lowered to the physical execution layer (src/exec/) and
  // run there; `stats` receives the flat totals of the execution profile.
  StatusOr<Relation> Run(const Database& db,
                         AlgebraEvalStats* stats = nullptr) const;

  // Executes and additionally fills `profile` with the per-operator
  // statistics tree (rows in/out, hash build/probe counts, wall time).
  StatusOr<Relation> RunWithProfile(const Database& db,
                                    ExecProfile* profile) const;

  // EXPLAIN ANALYZE: executes against `db` and renders the per-operator
  // profile as a multi-line report.
  StatusOr<std::string> ExplainAnalyze(const Database& db) const;

  // The per-phase compile timing tree (parse, view expansion, safety, ENF,
  // RANF, algebra generation, optimization, lowering), mirroring the
  // run-time ExecProfile. Always populated.
  const obs::CompilePhase& compile_profile() const { return profile_; }

  // EXPLAIN COMPILE: renders compile_profile() as an indented per-phase
  // timing report with phase details (FinD counts, form sizes, node
  // counts).
  std::string ExplainCompile() const;

 private:
  friend class Compiler;
  CompiledQuery(const Compiler* owner, Query query, Translation translation,
                obs::CompilePhase profile, std::string text,
                std::shared_ptr<const PhysicalPlan> physical)
      : owner_(owner), query_(std::move(query)),
        translation_(std::move(translation)), profile_(std::move(profile)),
        text_(std::move(text)), physical_(std::move(physical)) {}

  const Compiler* owner_;
  Query query_;
  Translation translation_;
  obs::CompilePhase profile_;
  std::string text_;  // original query text (compile/run log correlation)
  // Lowered once at compile time and shared by every Run; null when
  // lowering failed (RunWithProfile then re-lowers to surface the error).
  std::shared_ptr<const PhysicalPlan> physical_;
};

// A query with host-program parameters — the paper's "em-allowed for X"
// (Section 9): the parameter variables are free in the body but bound by
// the embedding program, so the safety analysis treats them as already
// confined to finite sets. Example:
//
//   auto q = compiler.CompileParameterized(
//       "{e | EMP(e, d, s) and with_raise(s) <= cap}", {"d", "cap"});
//   auto answer = q->Run(db, {Value::Int(3), Value::Int(90000)});
//
// Each Run substitutes the argument values as constants into the stored
// RANF form (constant substitution preserves RANF relative to the empty
// context) and generates a fresh plan; generation is microsecond-scale.
class ParameterizedQuery {
 public:
  const std::vector<Symbol>& parameters() const { return params_; }
  const Query& query() const { return query_; }

  // Executes with `args` bound to parameters() position-wise.
  StatusOr<Relation> Run(const Database& db, const std::vector<Value>& args,
                         AlgebraEvalStats* stats = nullptr) const;

  // Executes through the physical layer and fills `profile` with the
  // per-operator statistics tree — the parameterized counterpart of
  // CompiledQuery::RunWithProfile.
  StatusOr<Relation> RunWithProfile(const Database& db,
                                    const std::vector<Value>& args,
                                    ExecProfile* profile) const;

  // EXPLAIN ANALYZE for one argument binding: executes against `db` and
  // renders the generated plan plus the per-operator profile.
  StatusOr<std::string> ExplainAnalyze(const Database& db,
                                       const std::vector<Value>& args) const;

  // The plan for given argument values (for inspection).
  StatusOr<const AlgExpr*> PlanFor(const std::vector<Value>& args) const;

 private:
  friend class Compiler;
  ParameterizedQuery(Compiler* owner, Query query, std::vector<Symbol> params,
                     const Formula* ranf, std::map<Symbol, Symbol> inverses)
      : owner_(owner), query_(std::move(query)), params_(std::move(params)),
        ranf_(ranf), inverses_(std::move(inverses)) {}

  Compiler* owner_;
  Query query_;  // head = output variables; body free vars = head + params
  std::vector<Symbol> params_;
  const Formula* ranf_;  // RANF for the context `params_`
  std::map<Symbol, Symbol> inverses_;  // declared function inverses
};

// Parses, safety-checks, and translates queries. Not copyable or movable:
// CompiledQuery objects hold a pointer back to their compiler.
class Compiler {
 public:
  // Uses the builtin scalar functions (see storage/interpretation.h).
  Compiler();
  explicit Compiler(FunctionRegistry functions);

  Compiler(const Compiler&) = delete;
  Compiler& operator=(const Compiler&) = delete;

  // Parses and translates `text` ("{x | ...}" or a bare formula).
  StatusOr<CompiledQuery> Compile(std::string_view text,
                                  const TranslateOptions& options = {});

  // Static analysis only: parses `text` and reports every front-end
  // diagnostic — lint findings, well-formedness errors, and on safety
  // rejection the full blame trace (failing subformula with source span,
  // unbounded variables, attempted FinD derivation). Never translates,
  // never executes. The repl's .lint/.why commands are thin wrappers.
  QueryAnalysis Analyze(std::string_view text,
                        const TranslateOptions& options = {});

  // Translates an already-built query (for programmatic construction).
  StatusOr<CompiledQuery> CompileQuery(const Query& q,
                                       const TranslateOptions& options = {});

  // Compiles a parameterized query: the body's free variables must be
  // exactly the head variables plus `params`, and the body must be
  // em-allowed *for* the parameter set.
  StatusOr<ParameterizedQuery> CompileParameterized(
      std::string_view text, const std::vector<std::string>& params,
      const TranslateOptions& options = {});

  // Defines a view: a named query usable as a relation atom in later
  // queries (and view definitions). Views are expanded inline before the
  // safety analysis, so a query over views is safe iff its expansion is.
  // The view itself must be well-formed but need not be em-allowed on its
  // own (e.g. {x, y | f(x) = y} is a fine view when every use bounds x).
  Status DefineView(std::string_view name, std::string_view query_text);

  AstContext& ctx() { return *ctx_; }
  const AstContext& ctx() const { return *ctx_; }
  FunctionRegistry& functions() { return functions_; }
  const FunctionRegistry& functions() const { return functions_; }

 private:
  // Shared tail of Compile/CompileQuery: view expansion, translation,
  // lowering, profile assembly, metrics, and query-log emission. `profile`
  // carries phases already timed by the caller (parse); `start_ns` is when
  // the whole compilation began; `text` is the raw query text when known.
  StatusOr<CompiledQuery> CompileImpl(const Query& q,
                                      const TranslateOptions& options,
                                      obs::CompilePhase profile,
                                      uint64_t start_ns, std::string text);

  std::unique_ptr<AstContext> ctx_;
  FunctionRegistry functions_;
  ViewMap views_;
};

}  // namespace emcalc

#endif  // EMCALC_CORE_COMPILER_H_
