#include "src/core/compiler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/base/string_pool.h"
#include "src/base/thread_pool.h"
#include "src/diag/blame.h"
#include "src/diag/lint.h"

#include "src/algebra/optimizer.h"
#include "src/algebra/printer.h"
#include "src/calculus/analysis.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/calculus/rewrite.h"
#include "src/exec/feedback.h"
#include "src/exec/lower.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/postmortem.h"
#include "src/obs/query_log.h"
#include "src/obs/trace.h"
#include "src/translate/algebra_gen.h"
#include "src/translate/ranf.h"
#include "src/verify/verify.h"

namespace emcalc {

namespace {

// Compile-side metrics; handles resolved once.
struct CompileMetrics {
  obs::Counter& queries;
  obs::Counter& errors;
  obs::Histogram& wall_ns;

  static CompileMetrics& Get() {
    static CompileMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Instance();
      return new CompileMetrics{reg.GetCounter("compile.queries"),
                                reg.GetCounter("compile.errors"),
                                reg.GetHistogram("compile.wall_ns")};
    }();
    return *m;
  }
};

// Run-side metrics shared by CompiledQuery / ParameterizedQuery.
struct RunMetrics {
  obs::Counter& runs;
  obs::Counter& errors;
  obs::Counter& rows_out;
  obs::Histogram& wall_ns;

  static RunMetrics& Get() {
    static RunMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Instance();
      return new RunMetrics{reg.GetCounter("exec.runs"),
                            reg.GetCounter("exec.errors"),
                            reg.GetCounter("exec.rows_out"),
                            reg.GetHistogram("exec.wall_ns")};
    }();
    return *m;
  }
};

// EMCALC_LINT=1: Compile attaches lint findings (and, on rejection, the
// safety blame trace) to its query-log records.
bool LintToLogEnabled() {
  const char* v = std::getenv("EMCALC_LINT");
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

// Effective bd options: fold declared inverses into the FinD analysis
// (mirrors TranslateQuery).
BoundOptions EffectiveBound(const TranslateOptions& options) {
  BoundOptions bound = options.bound;
  for (const auto& [fn, inv] : options.inverse_fns) {
    bound.invertible_fns.Insert(fn);
  }
  return bound;
}

// Effective worker count of an execution: ExecOptions::num_threads with
// the "0 = hardware concurrency" default resolved.
uint64_t EffectiveExecThreads(size_t num_threads) {
  return num_threads == 0 ? ThreadPool::HardwareThreads() : num_threads;
}

// A located diagnostic for a parse failure.
diag::Diagnostic MakeParseDiagnostic(const ParseErrorInfo& e) {
  diag::Diagnostic d("parse.error", diag::Severity::kError, e.message);
  d.WithSpan(diag::SourceSpan{static_cast<uint32_t>(e.offset),
                              static_cast<uint32_t>(e.offset + 1)});
  return d;
}

// Emits one "compile" query-log record (no-op without an installed log).
void LogCompile(const std::string& text, const Status& status,
                const obs::CompilePhase& profile, const Translation* t,
                const Query* query,
                std::vector<diag::Diagnostic> diagnostics = {}) {
  obs::QueryLog* log = obs::GetQueryLog();
  if (log == nullptr) return;
  obs::QueryLogRecord r;
  r.event = "compile";
  r.query = text;
  r.query_hash = obs::HashQueryText(text);
  r.ok = status.ok();
  if (!status.ok()) r.error = status.ToString();
  r.wall_ns = profile.wall_ns;
  r.phase_ns = obs::FlattenPhases(profile);
  if (t != nullptr) {
    r.em_allowed = t->safety.em_allowed;
    r.find_count = static_cast<int>(t->find_count);
    if (t->ranf != nullptr) r.ranf_size = FormulaSize(t->ranf);
    if (t->plan != nullptr) r.plan_nodes = t->plan->NodeCount();
  }
  if (query != nullptr) r.level = CountApplications(query->body);
  r.string_pool_size = StringPool::Global().size();
  r.diagnostics = std::move(diagnostics);
  log->Write(r);
}

void LogRunRecord(const std::string& text, bool ok, const std::string& error,
                  uint64_t rows_out, uint64_t wall_ns, uint64_t exec_threads,
                  const ExecProfile* profile, std::string aborted_limit) {
  obs::QueryLog* log = obs::GetQueryLog();
  if (log == nullptr) return;
  obs::QueryLogRecord r;
  r.event = "run";
  r.query = text;
  r.query_hash = obs::HashQueryText(text);
  r.ok = ok;
  r.error = error;
  r.rows_out = rows_out;
  r.wall_ns = wall_ns;
  r.string_pool_size = StringPool::Global().size();
  r.exec_threads = exec_threads;
  r.aborted_limit = std::move(aborted_limit);
  if (profile != nullptr) {
    r.peak_bytes = static_cast<uint64_t>(
        std::max<int64_t>(profile->total_peak_bytes, 0));
    r.bytes_allocated = profile->total_bytes_allocated;
    PlanFeedback feedback = BuildPlanFeedback(*profile);
    if (!feedback.entries.empty()) {
      r.misestimate_factor = feedback.max_factor;
      r.misestimate_op = feedback.worst_op;
    }
    r.est_history_ops = CountHistoryCorrectedOps(*profile);
    ParallelSummary par = SumParallel(*profile);
    if (par.max_workers > 1) {
      r.parallel_efficiency = par.Efficiency();
      r.par_workers = par.max_workers;
    }
  }
  log->Write(r);
}

// RAII around one execution: publishes the query text for crash bundles
// and brackets the run with flight-recorder events so a drained ring shows
// where each query started and ended.
class QueryObsScope {
 public:
  explicit QueryObsScope(const std::string& text)
      : hash_(obs::HashQueryText(text)) {
    obs::SetCurrentQuery(text, hash_);
    obs::FlightRecord(obs::FlightEventKind::kQueryStart, "query", hash_);
  }
  ~QueryObsScope() {
    obs::FlightRecord(obs::FlightEventKind::kQueryEnd, "query", hash_);
    obs::ClearCurrentQuery();
  }
  QueryObsScope(const QueryObsScope&) = delete;
  QueryObsScope& operator=(const QueryObsScope&) = delete;

 private:
  uint64_t hash_;
};

// Updates run metrics + query log for one execution attempt. `profile`
// (optional) contributes memory accounting, the aborting resource limit,
// and the worst plan misestimate to the "run" record.
template <typename ResultT>
void ObserveRun(const std::string& text, const StatusOr<ResultT>& result,
                uint64_t start_ns, uint64_t exec_threads,
                const ExecProfile* profile = nullptr) {
  uint64_t wall = obs::NowNs() - start_ns;
  RunMetrics& m = RunMetrics::Get();
  m.runs.Add();
  m.wall_ns.Observe(static_cast<double>(wall));
  // The governor phrases resource errors "<limit_name> exceeded: ..."; the
  // first token names the tripped limit.
  std::string aborted_limit;
  if (!result.ok() &&
      result.status().code() == StatusCode::kResourceExhausted) {
    const std::string& msg = result.status().message();
    aborted_limit = msg.substr(0, msg.find(' '));
  }
  if (obs::HistoryStore* store = obs::GetHistoryStore();
      store != nullptr && profile != nullptr) {
    obs::RunObservation run =
        CollectRunObservation(obs::HashQueryText(text), text, *profile);
    run.ok = result.ok();
    run.aborted_limit = aborted_limit;
    run.wall_ns = wall;
    run.peak_bytes =
        static_cast<uint64_t>(std::max<int64_t>(profile->total_peak_bytes, 0));
    if (result.ok()) run.rows_out = result->size();
    ParallelSummary par = SumParallel(*profile);
    if (par.max_workers > 1) {
      run.parallel_efficiency = par.Efficiency();
      run.par_workers = par.max_workers;
    }
    store->RecordRun(run);
  }
  if (result.ok()) {
    m.rows_out.Add(result->size());
    LogRunRecord(text, true, "", result->size(), wall, exec_threads, profile,
                 "");
  } else {
    m.errors.Add();
    if (obs::PostmortemEnabled()) {
      // Best-effort bundle: failure to write must not mask the run error.
      obs::PostmortemInfo info;
      info.reason = aborted_limit.empty() ? "run_error" : "governor_abort";
      info.query = text;
      info.query_hash = obs::HashQueryText(text);
      info.error = result.status().ToString();
      info.aborted_limit = aborted_limit;
      if (profile != nullptr) info.profile_json = ExecProfileToJson(*profile);
      (void)obs::WritePostmortem(info);
    }
    LogRunRecord(text, false, result.status().ToString(), 0, wall,
                 exec_threads, profile, std::move(aborted_limit));
  }
}

}  // namespace

std::string CompiledQuery::QueryString() const {
  return QueryToString(owner_->ctx(), query_);
}

std::string CompiledQuery::PlanString() const {
  return AlgExprToString(owner_->ctx(), translation_.plan);
}

std::string CompiledQuery::PlanTreeString() const {
  return AlgExprToTreeString(owner_->ctx(), translation_.plan);
}

std::string CompiledQuery::ExplainCompile() const {
  return obs::CompileProfileToString(profile_);
}

StatusOr<Relation> CompiledQuery::Run(const Database& db,
                                      AlgebraEvalStats* stats) const {
  obs::Span span("exec.run");
  QueryObsScope obs_scope(text_);
  uint64_t start_ns = obs::NowNs();
  ExecProfile profile;
  bool profiled = false;
  auto execute = [&]() -> StatusOr<Relation> {
    if (physical_ == nullptr) {
      // Lowering failed at compile time; EvaluateAlgebra re-lowers and
      // surfaces the error.
      return EvaluateAlgebra(owner_->ctx(), translation_.plan, db,
                             owner_->functions(), stats);
    }
    // Profile whenever a consumer exists: the caller's stats, an installed
    // query log (memory + misestimate fields per run record), a history
    // store that records actuals, or an abort bundle that would want the
    // partial profile.
    profiled = stats != nullptr || obs::GetQueryLog() != nullptr ||
               obs::GetHistoryStore() != nullptr || obs::PostmortemEnabled();
    auto result =
        physical_->ExecuteToRelation(db, profiled ? &profile : nullptr);
    if (result.ok() && stats != nullptr) {
      ExecTotals totals = SumProfile(profile);
      stats->tuples_scanned += totals.rows_in;
      stats->tuples_produced += totals.rows_out;
      stats->function_calls += totals.function_calls;
      stats->tuple_copies += totals.tuple_copies;
    }
    return result;
  };
  auto answer = execute();
  ObserveRun(text_, answer, start_ns,
             EffectiveExecThreads(
                 physical_ != nullptr ? physical_->options().num_threads : 0),
             profiled ? &profile : nullptr);
  return answer;
}

StatusOr<Relation> CompiledQuery::RunWithProfile(const Database& db,
                                                 ExecProfile* profile) const {
  obs::Span span("exec.run");
  QueryObsScope obs_scope(text_);
  uint64_t start_ns = obs::NowNs();
  auto execute = [&]() -> StatusOr<Relation> {
    if (physical_ != nullptr) {
      return physical_->ExecuteToRelation(db, profile);
    }
    // Lowering failed at compile time; redo it here to surface the error.
    ExecOptions exec_options;
    exec_options.query_hash = obs::HashQueryText(text_);
    auto physical = Lower(owner_->ctx(), translation_.plan,
                          owner_->functions(), exec_options);
    if (!physical.ok()) return physical.status();
    return physical->ExecuteToRelation(db, profile);
  };
  auto answer = execute();
  ObserveRun(text_, answer, start_ns,
             EffectiveExecThreads(
                 physical_ != nullptr ? physical_->options().num_threads : 0),
             profile);
  return answer;
}

StatusOr<std::string> CompiledQuery::ExplainAnalyze(const Database& db) const {
  ExecProfile profile;
  auto answer = RunWithProfile(db, &profile);
  if (!answer.ok()) return answer.status();
  std::string out = "plan: " + PlanString() + "\n";
  out += "answer rows: " + std::to_string(answer->size()) + "\n";
  out += ExecProfileToString(profile);
  out += "memory: peak " + std::to_string(profile.total_peak_bytes) +
         " bytes, allocated " +
         std::to_string(profile.total_bytes_allocated) + " bytes\n";
  ParallelSummary par = SumParallel(profile);
  if (par.max_workers > 1) {
    char line[128];
    std::snprintf(line, sizeof(line),
                  "parallelism: eff=%.0f%% workers=%u morsels=%llu\n",
                  par.Efficiency() * 100.0, par.max_workers,
                  static_cast<unsigned long long>(par.morsels));
    out += line;
  }
  out += "feedback (est vs actual, worst first):\n";
  out += BuildPlanFeedback(profile).ToString();
  return out;
}

Compiler::Compiler() : Compiler(BuiltinFunctions()) {}

Compiler::Compiler(FunctionRegistry functions)
    : ctx_(std::make_unique<AstContext>()), functions_(std::move(functions)) {}

StatusOr<CompiledQuery> Compiler::Compile(std::string_view text,
                                          const TranslateOptions& options) {
  obs::Span span("compile");
  uint64_t start_ns = obs::NowNs();
  obs::CompilePhase profile;
  profile.name = "compile";
  ParseErrorInfo parse_error;
  StatusOr<Query> q = [&] {
    obs::PhaseTimer timer(&profile, "parse", "compile.parse");
    return ParseQuery(*ctx_, text, &parse_error);
  }();
  if (!q.ok()) {
    CompileMetrics::Get().queries.Add();
    CompileMetrics::Get().errors.Add();
    profile.wall_ns = obs::NowNs() - start_ns;
    std::vector<diag::Diagnostic> diags;
    if (LintToLogEnabled()) {
      diags.push_back(MakeParseDiagnostic(parse_error));
    }
    LogCompile(std::string(text), q.status(), profile, nullptr, nullptr,
               std::move(diags));
    return q.status();
  }
  // Stage boundary 1: the parsed tree. Parsed (as opposed to
  // programmatically built) queries must carry source spans throughout.
  if (verify::Enabled()) {
    verify::VerifyReport vr =
        verify::VerifyCalculus(*ctx_, *q, /*require_spans=*/true);
    if (!vr.ok()) {
      CompileMetrics::Get().queries.Add();
      CompileMetrics::Get().errors.Add();
      profile.wall_ns = obs::NowNs() - start_ns;
      Status status = vr.ToStatus();
      LogCompile(std::string(text), status, profile, nullptr, &*q,
                 LintToLogEnabled() ? vr.ToDiagnostics()
                                    : std::vector<diag::Diagnostic>{});
      return status;
    }
  }
  return CompileImpl(*q, options, std::move(profile), start_ns,
                     std::string(text));
}

Status Compiler::DefineView(std::string_view name,
                            std::string_view query_text) {
  Symbol sym = ctx_->symbols().Intern(name);
  auto q = ParseQuery(*ctx_, query_text);
  if (!q.ok()) return q.status();
  if (Status s = CheckWellFormed(*q, ctx_->symbols()); !s.ok()) return s;
  // Reject definitions whose own expansion would be cyclic right away.
  ViewMap candidate = views_;
  candidate[sym] = *q;
  auto expanded = ExpandViews(*ctx_, q->body, candidate);
  if (!expanded.ok()) return expanded.status();
  views_[sym] = std::move(q).value();
  return Status::Ok();
}

StatusOr<CompiledQuery> Compiler::CompileQuery(
    const Query& q, const TranslateOptions& options) {
  obs::Span span("compile");
  uint64_t start_ns = obs::NowNs();
  obs::CompilePhase profile;
  profile.name = "compile";
  // Stage boundary 1 for programmatically built queries; these carry no
  // source text, so spans are not required.
  if (verify::Enabled()) {
    verify::VerifyReport vr =
        verify::VerifyCalculus(*ctx_, q, /*require_spans=*/false);
    if (!vr.ok()) {
      CompileMetrics::Get().queries.Add();
      CompileMetrics::Get().errors.Add();
      return vr.ToStatus();
    }
  }
  return CompileImpl(q, options, std::move(profile), start_ns,
                     QueryToString(*ctx_, q));
}

StatusOr<CompiledQuery> Compiler::CompileImpl(const Query& q,
                                              const TranslateOptions& options,
                                              obs::CompilePhase profile,
                                              uint64_t start_ns,
                                              std::string text) {
  CompileMetrics::Get().queries.Add();
  // With EMCALC_LINT=1 every compile record carries the lint findings for
  // the query as written (pre-expansion, so spans point at the source).
  std::vector<diag::Diagnostic> log_diags;
  const bool lint_to_log = LintToLogEnabled() && obs::GetQueryLog() != nullptr;
  if (lint_to_log) log_diags = diag::LintQuery(*ctx_, q);
  auto fail = [&](const Status& status,
                  const Translation* t) -> StatusOr<CompiledQuery> {
    CompileMetrics::Get().errors.Add();
    profile.wall_ns = obs::NowNs() - start_ns;
    LogCompile(text, status, profile, t, &q, std::move(log_diags));
    return status;
  };

  Query expanded = q;
  {
    obs::PhaseTimer timer(&profile, "expand_views", "compile.expand_views");
    auto body = ExpandViews(*ctx_, q.body, views_);
    if (!body.ok()) return fail(body.status(), nullptr);
    expanded.body = *body;
  }

  // TranslateQuery emits its own "compile.translate" span; time the phase
  // here without a second span and graft the translation's phase tree
  // (safety, ENF, RANF, algebra_gen, optimize) under this node.
  uint64_t translate_start = obs::NowNs();
  StatusOr<Translation> translation = TranslateQuery(*ctx_, expanded, options);
  {
    profile.children.emplace_back();
    obs::CompilePhase& phase = profile.children.back();
    phase.name = "translate";
    phase.wall_ns = obs::NowNs() - translate_start;
    if (translation.ok()) {
      phase.children = std::move(translation->profile.children);
    }
  }
  if (!translation.ok()) {
    if (lint_to_log) {
      // Stage-boundary verification failures inside the translator surface
      // as structured diagnostics on the compile record, like lint findings.
      std::vector<diag::Diagnostic> vd =
          verify::DiagnosticsFromStatus(translation.status());
      for (diag::Diagnostic& d : vd) log_diags.push_back(std::move(d));
    }
    if (lint_to_log && translation.status().code() == StatusCode::kNotSafe) {
      // Re-run the safety check to attach the structured blame trace; the
      // bd sets are memoized per formula, so this costs one extra closure.
      Query rectified{expanded.head, Rectify(*ctx_, expanded.body)};
      EmAllowedChecker checker(*ctx_, EffectiveBound(options));
      SafetyResult safety = checker.Check(rectified);
      if (!safety.em_allowed) {
        log_diags.push_back(
            diag::BuildSafetyBlame(*ctx_, checker.bound(), safety));
      }
    }
    return fail(translation.status(), nullptr);
  }

  std::shared_ptr<const PhysicalPlan> physical;
  {
    obs::PhaseTimer timer(&profile, "lower", "compile.lower");
    ExecOptions exec_options;
    exec_options.query_hash = obs::HashQueryText(text);
    auto lowered = Lower(*ctx_, translation->plan, functions_, exec_options);
    if (lowered.ok()) {
      timer.SetDetail("ops=" + std::to_string(lowered->NumOperators()));
      physical = std::make_shared<const PhysicalPlan>(
          std::move(lowered).value());
    } else {
      // A stage-boundary verification failure means the lowered plan is
      // structurally wrong — fail the compile rather than hand out a query
      // that would re-lower into the same broken plan at execution.
      std::vector<diag::Diagnostic> vd =
          verify::DiagnosticsFromStatus(lowered.status());
      if (!vd.empty()) {
        if (lint_to_log) {
          for (diag::Diagnostic& d : vd) log_diags.push_back(std::move(d));
        }
        return fail(lowered.status(), &*translation);
      }
      // Keep the query usable for inspection; executions will re-lower and
      // report this error.
      timer.SetDetail("failed: " + lowered.status().ToString());
    }
  }

  profile.wall_ns = obs::NowNs() - start_ns;
  CompileMetrics::Get().wall_ns.Observe(static_cast<double>(profile.wall_ns));
  LogCompile(text, Status::Ok(), profile, &*translation, &expanded,
             std::move(log_diags));
  return CompiledQuery(this, expanded, std::move(translation).value(),
                       std::move(profile), std::move(text),
                       std::move(physical));
}

std::string QueryAnalysis::Render() const {
  return diag::Render(diagnostics, text);
}

std::string QueryAnalysis::ToJson() const {
  return diag::ToJson(diagnostics, text);
}

QueryAnalysis Compiler::Analyze(std::string_view text,
                                const TranslateOptions& options) {
  obs::Span span("compile.analyze");
  QueryAnalysis out;
  out.text = std::string(text);

  ParseErrorInfo parse_error;
  StatusOr<Query> parsed = ParseQuery(*ctx_, text, &parse_error);
  if (!parsed.ok()) {
    out.diagnostics.push_back(MakeParseDiagnostic(parse_error));
    return out;
  }
  out.parsed = true;

  // Lint the freshly parsed tree — before view expansion and
  // rectification, so findings (shadowing included) point at the source.
  std::vector<diag::Diagnostic> lint = diag::LintQuery(*ctx_, *parsed);

  // Parse/well-formedness/safety diagnostics go between lint errors and
  // lint warnings.
  std::vector<diag::Diagnostic> blame;
  auto body = ExpandViews(*ctx_, parsed->body, views_);
  if (!body.ok()) {
    blame.emplace_back("views.error", diag::Severity::kError,
                       body.status().message());
  } else {
    Query rectified{parsed->head, Rectify(*ctx_, *body)};
    if (Status wf = CheckWellFormed(rectified, ctx_->symbols()); !wf.ok()) {
      blame.emplace_back("query.malformed", diag::Severity::kError,
                         wf.message());
    } else {
      EmAllowedChecker checker(*ctx_, EffectiveBound(options));
      out.safety = checker.Check(rectified);
      if (out.safety.em_allowed) {
        out.safe = true;
      } else {
        blame.push_back(
            diag::BuildSafetyBlame(*ctx_, checker.bound(), out.safety));
      }
    }
  }

  for (diag::Diagnostic& d : lint) {
    if (d.severity == diag::Severity::kError) {
      out.diagnostics.push_back(std::move(d));
    }
  }
  for (diag::Diagnostic& d : blame) out.diagnostics.push_back(std::move(d));
  for (diag::Diagnostic& d : lint) {
    if (d.severity != diag::Severity::kError) {
      out.diagnostics.push_back(std::move(d));
    }
  }
  return out;
}

StatusOr<ParameterizedQuery> Compiler::CompileParameterized(
    std::string_view text, const std::vector<std::string>& params,
    const TranslateOptions& options) {
  obs::Span span("compile.parameterized");
  uint64_t start_ns = obs::NowNs();
  obs::CompilePhase profile;
  profile.name = "compile";
  CompileMetrics::Get().queries.Add();
  auto fail = [&](const Status& status) -> StatusOr<ParameterizedQuery> {
    CompileMetrics::Get().errors.Add();
    profile.wall_ns = obs::NowNs() - start_ns;
    LogCompile(std::string(text), status, profile, nullptr, nullptr);
    return status;
  };

  StatusOr<Query> parsed = [&] {
    obs::PhaseTimer timer(&profile, "parse", "compile.parse");
    return ParseQuery(*ctx_, text);
  }();
  if (!parsed.ok()) return fail(parsed.status());
  Query q = std::move(parsed).value();
  {
    obs::PhaseTimer timer(&profile, "expand_views", "compile.expand_views");
    auto expanded_body = ExpandViews(*ctx_, q.body, views_);
    if (!expanded_body.ok()) return fail(expanded_body.status());
    q.body = *expanded_body;
  }

  std::vector<Symbol> param_syms;
  for (const std::string& p : params) {
    param_syms.push_back(ctx_->symbols().Intern(p));
  }
  SymbolSet param_set(param_syms);
  if (param_set.size() != param_syms.size()) {
    return fail(InvalidArgumentError("duplicate parameter name"));
  }
  // The bare-formula query form puts every free variable in the head;
  // parameters are outputs of neither form.
  q.head.erase(std::remove_if(q.head.begin(), q.head.end(),
                              [&](Symbol v) { return param_set.Contains(v); }),
               q.head.end());

  if (Status s = CheckWellFormed(q.body, ctx_->symbols()); !s.ok()) {
    return fail(s);
  }
  SymbolSet expected = SymbolSet(q.head).Union(param_set);
  if (FreeVars(q.body) != expected) {
    return fail(InvalidArgumentError(
        "body's free variables must be exactly head + parameters"));
  }
  for (Symbol h : q.head) {
    if (param_set.Contains(h)) {
      return fail(InvalidArgumentError("head variable is also a parameter"));
    }
  }

  // Safety relative to the parameter context ("em-allowed for X").
  BoundOptions bound = options.bound;
  for (const auto& [fn, inv] : options.inverse_fns) {
    bound.invertible_fns.Insert(fn);
  }
  int find_count = 0;
  size_t bd_computations = 0;
  {
    obs::PhaseTimer timer(&profile, "safety", "compile.safety");
    EmAllowedChecker checker(*ctx_, bound);
    SafetyResult safety = checker.CheckFormula(q.body, param_set);
    bd_computations = checker.bound().computations();
    if (safety.em_allowed) {
      find_count = static_cast<int>(checker.bound().Bound(q.body).size());
    }
    timer.SetDetail(
        (safety.em_allowed ? std::string("em-allowed") :
                             std::string("rejected")) +
        " bd_computations=" + std::to_string(bd_computations) +
        " finds=" + std::to_string(find_count));
    if (!safety.em_allowed) {
      return fail(NotSafeError(
          "query is not em-allowed for its parameters: " + safety.reason));
    }
  }

  const Formula* enf = nullptr;
  {
    obs::PhaseTimer timer(&profile, "enf", "compile.enf");
    EnfOptions enf_options;
    enf_options.enable_t10 = options.enable_t10;
    enf_options.bound = bound;
    enf = ToEnf(*ctx_, q.body, enf_options);
    timer.SetDetail("size=" + std::to_string(FormulaSize(enf)));
  }
  const Formula* ranf = nullptr;
  {
    obs::PhaseTimer timer(&profile, "ranf", "compile.ranf");
    auto ranf_or = ToRanf(*ctx_, enf, param_set, bound.invertible_fns);
    if (!ranf_or.ok()) return fail(ranf_or.status());
    ranf = *ranf_or;
    timer.SetDetail("size=" + std::to_string(FormulaSize(ranf)));
  }

  profile.wall_ns = obs::NowNs() - start_ns;
  CompileMetrics::Get().wall_ns.Observe(static_cast<double>(profile.wall_ns));
  if (obs::GetQueryLog() != nullptr) {
    obs::QueryLogRecord r;
    r.event = "compile";
    r.query = std::string(text);
    r.query_hash = obs::HashQueryText(text);
    r.ok = true;
    r.em_allowed = true;
    r.level = CountApplications(q.body);
    r.find_count = find_count;
    r.ranf_size = FormulaSize(ranf);
    r.wall_ns = profile.wall_ns;
    r.phase_ns = obs::FlattenPhases(profile);
    r.string_pool_size = StringPool::Global().size();
    obs::GetQueryLog()->Write(r);
  }
  return ParameterizedQuery(this, std::move(q), std::move(param_syms), ranf,
                            options.inverse_fns);
}

StatusOr<const AlgExpr*> ParameterizedQuery::PlanFor(
    const std::vector<Value>& args) const {
  obs::Span span("compile.plan_for");
  if (args.size() != params_.size()) {
    return InvalidArgumentError(
        "expected " + std::to_string(params_.size()) + " arguments, got " +
        std::to_string(args.size()));
  }
  AstContext& ctx = owner_->ctx();
  Substitution sub;
  for (size_t i = 0; i < params_.size(); ++i) {
    sub.emplace(params_[i], ctx.MakeConst(args[i]));
  }
  // Constant substitution turns "RANF for params" into "RANF for {}".
  const Formula* grounded = SubstituteFormula(ctx, ranf_, sub);
  AlgebraGenerator generator(ctx, inverses_);
  auto plan = generator.Translate(grounded, query_.head);
  if (!plan.ok()) return plan.status();
  AlgebraFactory factory(ctx);
  return OptimizePlan(factory, *plan);
}

StatusOr<Relation> ParameterizedQuery::Run(const Database& db,
                                           const std::vector<Value>& args,
                                           AlgebraEvalStats* stats) const {
  obs::Span span("exec.run");
  std::string text = QueryToString(owner_->ctx(), query_);
  QueryObsScope obs_scope(text);
  uint64_t start_ns = obs::NowNs();
  auto answer = [&]() -> StatusOr<Relation> {
    auto plan = PlanFor(args);
    if (!plan.ok()) return plan.status();
    return EvaluateAlgebra(owner_->ctx(), *plan, db, owner_->functions(),
                           stats);
  }();
  ObserveRun(text, answer, start_ns, EffectiveExecThreads(0));
  return answer;
}

StatusOr<Relation> ParameterizedQuery::RunWithProfile(
    const Database& db, const std::vector<Value>& args,
    ExecProfile* profile) const {
  obs::Span span("exec.run");
  std::string text = QueryToString(owner_->ctx(), query_);
  QueryObsScope obs_scope(text);
  uint64_t start_ns = obs::NowNs();
  auto answer = [&]() -> StatusOr<Relation> {
    auto plan = PlanFor(args);
    if (!plan.ok()) return plan.status();
    // History keyed on the parameterized text: runs with different
    // arguments pool into one hash, so corrections are the mean actual
    // over the argument mix seen so far.
    ExecOptions exec_options;
    exec_options.query_hash = obs::HashQueryText(text);
    auto physical =
        Lower(owner_->ctx(), *plan, owner_->functions(), exec_options);
    if (!physical.ok()) return physical.status();
    return physical->ExecuteToRelation(db, profile);
  }();
  ObserveRun(text, answer, start_ns, EffectiveExecThreads(0), profile);
  return answer;
}

StatusOr<std::string> ParameterizedQuery::ExplainAnalyze(
    const Database& db, const std::vector<Value>& args) const {
  auto plan = PlanFor(args);
  if (!plan.ok()) return plan.status();
  ExecProfile profile;
  auto answer = RunWithProfile(db, args, &profile);
  if (!answer.ok()) return answer.status();
  std::string out =
      "plan: " + AlgExprToString(owner_->ctx(), *plan) + "\n";
  out += "answer rows: " + std::to_string(answer->size()) + "\n";
  out += ExecProfileToString(profile);
  out += "memory: peak " + std::to_string(profile.total_peak_bytes) +
         " bytes, allocated " +
         std::to_string(profile.total_bytes_allocated) + " bytes\n";
  ParallelSummary par = SumParallel(profile);
  if (par.max_workers > 1) {
    char line[128];
    std::snprintf(line, sizeof(line),
                  "parallelism: eff=%.0f%% workers=%u morsels=%llu\n",
                  par.Efficiency() * 100.0, par.max_workers,
                  static_cast<unsigned long long>(par.morsels));
    out += line;
  }
  out += "feedback (est vs actual, worst first):\n";
  out += BuildPlanFeedback(profile).ToString();
  return out;
}

}  // namespace emcalc
