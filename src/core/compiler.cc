#include "src/core/compiler.h"

#include <algorithm>

#include "src/algebra/optimizer.h"
#include "src/algebra/printer.h"
#include "src/exec/lower.h"
#include "src/calculus/analysis.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/calculus/rewrite.h"
#include "src/translate/algebra_gen.h"
#include "src/translate/ranf.h"

namespace emcalc {

std::string CompiledQuery::QueryString() const {
  return QueryToString(owner_->ctx(), query_);
}

std::string CompiledQuery::PlanString() const {
  return AlgExprToString(owner_->ctx(), translation_.plan);
}

std::string CompiledQuery::PlanTreeString() const {
  return AlgExprToTreeString(owner_->ctx(), translation_.plan);
}

StatusOr<Relation> CompiledQuery::Run(const Database& db,
                                      AlgebraEvalStats* stats) const {
  return EvaluateAlgebra(owner_->ctx(), translation_.plan, db,
                         owner_->functions(), stats);
}

StatusOr<Relation> CompiledQuery::RunWithProfile(const Database& db,
                                                 ExecProfile* profile) const {
  auto physical = Lower(owner_->ctx(), translation_.plan, owner_->functions());
  if (!physical.ok()) return physical.status();
  return physical->ExecuteToRelation(db, profile);
}

StatusOr<std::string> CompiledQuery::ExplainAnalyze(const Database& db) const {
  ExecProfile profile;
  auto answer = RunWithProfile(db, &profile);
  if (!answer.ok()) return answer.status();
  std::string out = "plan: " + PlanString() + "\n";
  out += "answer rows: " + std::to_string(answer->size()) + "\n";
  out += ExecProfileToString(profile);
  return out;
}

Compiler::Compiler() : Compiler(BuiltinFunctions()) {}

Compiler::Compiler(FunctionRegistry functions)
    : ctx_(std::make_unique<AstContext>()), functions_(std::move(functions)) {}

StatusOr<CompiledQuery> Compiler::Compile(std::string_view text,
                                          const TranslateOptions& options) {
  auto q = ParseQuery(*ctx_, text);
  if (!q.ok()) return q.status();
  return CompileQuery(*q, options);
}

Status Compiler::DefineView(std::string_view name,
                            std::string_view query_text) {
  Symbol sym = ctx_->symbols().Intern(name);
  auto q = ParseQuery(*ctx_, query_text);
  if (!q.ok()) return q.status();
  if (Status s = CheckWellFormed(*q, ctx_->symbols()); !s.ok()) return s;
  // Reject definitions whose own expansion would be cyclic right away.
  ViewMap candidate = views_;
  candidate[sym] = *q;
  auto expanded = ExpandViews(*ctx_, q->body, candidate);
  if (!expanded.ok()) return expanded.status();
  views_[sym] = std::move(q).value();
  return Status::Ok();
}

StatusOr<CompiledQuery> Compiler::CompileQuery(
    const Query& q, const TranslateOptions& options) {
  Query expanded = q;
  auto body = ExpandViews(*ctx_, q.body, views_);
  if (!body.ok()) return body.status();
  expanded.body = *body;
  auto translation = TranslateQuery(*ctx_, expanded, options);
  if (!translation.ok()) return translation.status();
  return CompiledQuery(this, expanded, std::move(translation).value());
}

StatusOr<ParameterizedQuery> Compiler::CompileParameterized(
    std::string_view text, const std::vector<std::string>& params,
    const TranslateOptions& options) {
  auto parsed = ParseQuery(*ctx_, text);
  if (!parsed.ok()) return parsed.status();
  Query q = std::move(parsed).value();
  auto expanded_body = ExpandViews(*ctx_, q.body, views_);
  if (!expanded_body.ok()) return expanded_body.status();
  q.body = *expanded_body;

  std::vector<Symbol> param_syms;
  for (const std::string& p : params) {
    param_syms.push_back(ctx_->symbols().Intern(p));
  }
  SymbolSet param_set(param_syms);
  if (param_set.size() != param_syms.size()) {
    return InvalidArgumentError("duplicate parameter name");
  }
  // The bare-formula query form puts every free variable in the head;
  // parameters are outputs of neither form.
  q.head.erase(std::remove_if(q.head.begin(), q.head.end(),
                              [&](Symbol v) { return param_set.Contains(v); }),
               q.head.end());

  if (Status s = CheckWellFormed(q.body, ctx_->symbols()); !s.ok()) return s;
  SymbolSet expected = SymbolSet(q.head).Union(param_set);
  if (FreeVars(q.body) != expected) {
    return InvalidArgumentError(
        "body's free variables must be exactly head + parameters");
  }
  for (Symbol h : q.head) {
    if (param_set.Contains(h)) {
      return InvalidArgumentError("head variable is also a parameter");
    }
  }

  // Safety relative to the parameter context ("em-allowed for X").
  BoundOptions bound = options.bound;
  for (const auto& [fn, inv] : options.inverse_fns) {
    bound.invertible_fns.Insert(fn);
  }
  EmAllowedChecker checker(*ctx_, bound);
  SafetyResult safety = checker.CheckFormula(q.body, param_set);
  if (!safety.em_allowed) {
    return NotSafeError("query is not em-allowed for its parameters: " +
                        safety.reason);
  }

  EnfOptions enf_options;
  enf_options.enable_t10 = options.enable_t10;
  enf_options.bound = bound;
  const Formula* enf = ToEnf(*ctx_, q.body, enf_options);
  auto ranf = ToRanf(*ctx_, enf, param_set, bound.invertible_fns);
  if (!ranf.ok()) return ranf.status();
  return ParameterizedQuery(this, std::move(q), std::move(param_syms),
                            *ranf, options.inverse_fns);
}

StatusOr<const AlgExpr*> ParameterizedQuery::PlanFor(
    const std::vector<Value>& args) const {
  if (args.size() != params_.size()) {
    return InvalidArgumentError(
        "expected " + std::to_string(params_.size()) + " arguments, got " +
        std::to_string(args.size()));
  }
  AstContext& ctx = owner_->ctx();
  Substitution sub;
  for (size_t i = 0; i < params_.size(); ++i) {
    sub.emplace(params_[i], ctx.MakeConst(args[i]));
  }
  // Constant substitution turns "RANF for params" into "RANF for {}".
  const Formula* grounded = SubstituteFormula(ctx, ranf_, sub);
  AlgebraGenerator generator(ctx, inverses_);
  auto plan = generator.Translate(grounded, query_.head);
  if (!plan.ok()) return plan.status();
  AlgebraFactory factory(ctx);
  return OptimizePlan(factory, *plan);
}

StatusOr<Relation> ParameterizedQuery::Run(const Database& db,
                                           const std::vector<Value>& args,
                                           AlgebraEvalStats* stats) const {
  auto plan = PlanFor(args);
  if (!plan.ok()) return plan.status();
  return EvaluateAlgebra(owner_->ctx(), *plan, db, owner_->functions(),
                         stats);
}

}  // namespace emcalc
