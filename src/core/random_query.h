// Seeded random query generation for the property-based tests (soundness of
// the translation against the reference evaluator) and the safety-check
// benchmarks. The generator is structured to produce a healthy mix of
// em-allowed and rejected formulas: conjunctive cores over relation atoms,
// function-equality bindings, negations, union-compatible disjunctions, and
// existential closures.
#ifndef EMCALC_CORE_RANDOM_QUERY_H_
#define EMCALC_CORE_RANDOM_QUERY_H_

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "src/calculus/ast.h"

namespace emcalc {

// Shape knobs for the generator.
struct RandomQueryOptions {
  int num_relations = 3;    // R0..R{n-1}
  int max_rel_arity = 3;
  int num_functions = 2;    // f0 (unary) .. ; arity alternates 1,2
  int max_vars = 4;         // variable pool x0..x{n-1}
  int max_conjuncts = 4;
  int max_depth = 3;        // nesting of or / exists / not blocks
  double p_function_eq = 0.5;   // chance of adding an f(x)=y binding
  double p_negation = 0.4;      // chance of adding a negated conjunct
  double p_disjunction = 0.35;  // chance a block is a 2-way disjunction
  double p_exists = 0.5;        // chance of existentially closing some vars
  double p_inequality = 0.25;   // chance of adding a != filter
};

// Deterministic for a given (seed, options).
class RandomQueryGen {
 public:
  RandomQueryGen(AstContext& ctx, uint64_t seed,
                 RandomQueryOptions options = {});

  // An arbitrary well-formed query (may or may not be em-allowed).
  Query Next();

  // Rejection-samples an em-allowed query; nullopt after max_attempts.
  std::optional<Query> NextEmAllowed(int max_attempts = 50);

  // The relation schema the generator draws from (name index -> arity),
  // for building matching random instances.
  const std::vector<int>& relation_arities() const { return rel_arities_; }

 private:
  const Formula* Block(const std::vector<Symbol>& outer_vars, int depth);
  const Formula* Conjunction(const std::vector<Symbol>& vars, int depth);
  const Formula* RelAtom(const std::vector<Symbol>& vars);
  const Term* RandomTerm(const std::vector<Symbol>& vars, bool allow_fn);

  bool Flip(double p) { return dist_(rng_) < p; }
  int Pick(int n) { return static_cast<int>(rng_() % static_cast<uint64_t>(n)); }
  size_t PickIndex(size_t n) { return static_cast<size_t>(rng_() % n); }

  AstContext& ctx_;
  RandomQueryOptions options_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> dist_{0.0, 1.0};
  std::vector<int> rel_arities_;
  std::vector<Symbol> rel_names_;
  std::vector<Symbol> fn_names_;
  std::vector<int> fn_arities_;
  uint64_t fresh_ = 0;
};

}  // namespace emcalc

#endif  // EMCALC_CORE_RANDOM_QUERY_H_
