#include "src/diag/diagnostic.h"

#include "src/obs/json.h"

namespace emcalc::diag {

std::string_view SeverityName(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "note";
}

Severity SeverityFromName(std::string_view name) {
  if (name == "error") return Severity::kError;
  if (name == "warning") return Severity::kWarning;
  return Severity::kNote;
}

Diagnostic& Diagnostic::AddNote(std::string message, std::string code) {
  notes.emplace_back(std::move(code), Severity::kNote, std::move(message));
  return *this;
}

namespace {

void RenderNotes(const Diagnostic& d, std::string& out) {
  for (const Diagnostic& n : d.notes) {
    out += "  = ";
    out += SeverityName(n.severity);
    out += ": ";
    out += n.message;
    out += "\n";
    RenderNotes(n, out);
  }
}

}  // namespace

std::string Render(const Diagnostic& d, std::string_view source) {
  std::string out;
  out += SeverityName(d.severity);
  out += "[";
  out += d.code;
  out += "]: ";
  out += d.message;
  out += "\n";
  if (d.span.has_value() && !source.empty()) {
    out += " --> " + DescribePosition(source, d.span->begin) + "\n";
    out += CaretSnippet(source, *d.span);
  }
  RenderNotes(d, out);
  return out;
}

std::string Render(const std::vector<Diagnostic>& ds,
                   std::string_view source) {
  std::string out;
  for (const Diagnostic& d : ds) out += Render(d, source);
  return out;
}

std::string ToJson(const Diagnostic& d, std::string_view source) {
  std::string out = "{\"code\":\"" + obs::JsonEscape(d.code) + "\"";
  out += ",\"severity\":\"";
  out += SeverityName(d.severity);
  out += "\",\"message\":\"" + obs::JsonEscape(d.message) + "\"";
  if (d.span.has_value()) {
    out += ",\"span\":{\"begin\":" + std::to_string(d.span->begin) +
           ",\"end\":" + std::to_string(d.span->end);
    if (!source.empty()) {
      LineCol lc = ResolveLineCol(source, d.span->begin);
      out += ",\"line\":" + std::to_string(lc.line) +
             ",\"col\":" + std::to_string(lc.column);
    }
    out += "}";
  }
  if (!d.notes.empty()) {
    out += ",\"notes\":" + ToJson(d.notes, source);
  }
  out += "}";
  return out;
}

std::string ToJson(const std::vector<Diagnostic>& ds,
                   std::string_view source) {
  std::string out = "[";
  for (size_t i = 0; i < ds.size(); ++i) {
    if (i > 0) out += ",";
    out += ToJson(ds[i], source);
  }
  out += "]";
  return out;
}

Diagnostic DiagnosticFromJson(const obs::JsonValue& v) {
  Diagnostic d;
  if (!v.is_object()) return d;
  d.code = v.StringOr("code", "");
  d.severity = SeverityFromName(v.StringOr("severity", "note"));
  d.message = v.StringOr("message", "");
  if (const obs::JsonValue* span = v.Find("span");
      span != nullptr && span->is_object()) {
    d.span = SourceSpan{
        static_cast<uint32_t>(span->NumberOr("begin", 0)),
        static_cast<uint32_t>(span->NumberOr("end", 0))};
  }
  if (const obs::JsonValue* notes = v.Find("notes");
      notes != nullptr && notes->is_array()) {
    for (const obs::JsonValue& n : notes->array) {
      d.notes.push_back(DiagnosticFromJson(n));
    }
  }
  return d;
}

std::vector<Diagnostic> DiagnosticsFromJson(const obs::JsonValue& v) {
  std::vector<Diagnostic> out;
  if (!v.is_array()) return out;
  out.reserve(v.array.size());
  for (const obs::JsonValue& e : v.array) out.push_back(DiagnosticFromJson(e));
  return out;
}

size_t CountErrors(const std::vector<Diagnostic>& ds) {
  size_t n = 0;
  for (const Diagnostic& d : ds) n += (d.severity == Severity::kError) ? 1 : 0;
  return n;
}

size_t CountWarnings(const std::vector<Diagnostic>& ds) {
  size_t n = 0;
  for (const Diagnostic& d : ds) {
    n += (d.severity == Severity::kWarning) ? 1 : 0;
  }
  return n;
}

}  // namespace emcalc::diag
