// The structured diagnostic model: every front-end analysis (parse errors,
// the em-allowed safety blame, the lint pass) reports Diagnostic trees
// instead of flat strings. A diagnostic carries a stable machine-readable
// code, a severity, a message, an optional source span, and child notes
// that explain the finding (e.g. the FinD derivation a safety rejection
// attempted). docs/diagnostics.md catalogs the codes.
#ifndef EMCALC_DIAG_DIAGNOSTIC_H_
#define EMCALC_DIAG_DIAGNOSTIC_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/diag/source.h"

namespace emcalc::obs {
struct JsonValue;
}

namespace emcalc::diag {

enum class Severity : uint8_t { kError, kWarning, kNote };

// "error" | "warning" | "note".
std::string_view SeverityName(Severity s);
// Inverse of SeverityName; kNote for unknown names.
Severity SeverityFromName(std::string_view name);

// One finding, with explanatory child notes.
struct Diagnostic {
  std::string code;       // stable identifier, e.g. "safety.unbounded-free"
  Severity severity = Severity::kError;
  std::string message;
  std::optional<SourceSpan> span;  // into the query text, when known
  std::vector<Diagnostic> notes;

  Diagnostic() = default;
  Diagnostic(std::string code, Severity severity, std::string message)
      : code(std::move(code)), severity(severity),
        message(std::move(message)) {}

  Diagnostic& WithSpan(SourceSpan s) {
    span = s;
    return *this;
  }

  // Appends a child note (severity kNote unless overridden).
  Diagnostic& AddNote(std::string message, std::string code = "note");
};

// Human-readable rendering:
//
//   error[safety.unbounded-free]: free variable {x} is not bounded
//    --> line 1, column 6
//     | {x | not R(x)}
//     |      ^~~~~~~~
//     = note: ...
//
// When `source` is empty or the diagnostic has no span, the position block
// is omitted. Notes render flattened, one "= note:" line each.
std::string Render(const Diagnostic& d, std::string_view source);
std::string Render(const std::vector<Diagnostic>& ds, std::string_view source);

// Single-line JSON object / array. When `source` is non-empty, spans gain
// resolved 1-based "line"/"col" members next to the byte offsets.
std::string ToJson(const Diagnostic& d, std::string_view source = {});
std::string ToJson(const std::vector<Diagnostic>& ds,
                   std::string_view source = {});

// Inverse of ToJson over an already-parsed document (obs::ParseJson):
// rebuilds the diagnostic from a JSON object / array of objects. Derived
// "line"/"col" span members are ignored. Mistyped members fall back to
// defaults — round-trips our own output, not a validator.
Diagnostic DiagnosticFromJson(const obs::JsonValue& v);
std::vector<Diagnostic> DiagnosticsFromJson(const obs::JsonValue& v);

// Counts by severity (notes inside other diagnostics are not counted).
size_t CountErrors(const std::vector<Diagnostic>& ds);
size_t CountWarnings(const std::vector<Diagnostic>& ds);

}  // namespace emcalc::diag

#endif  // EMCALC_DIAG_DIAGNOSTIC_H_
