#include "src/diag/source.h"

namespace emcalc::diag {

LineCol ResolveLineCol(std::string_view source, size_t offset) {
  if (offset > source.size()) offset = source.size();
  LineCol out;
  for (size_t i = 0; i < offset; ++i) {
    if (source[i] == '\n') {
      ++out.line;
      out.column = 1;
    } else {
      ++out.column;
    }
  }
  return out;
}

std::string_view LineAt(std::string_view source, size_t offset) {
  if (offset > source.size()) offset = source.size();
  size_t begin = offset == 0 ? std::string_view::npos
                             : source.rfind('\n', offset - 1);
  begin = (begin == std::string_view::npos) ? 0 : begin + 1;
  size_t end = source.find('\n', offset);
  if (end == std::string_view::npos) end = source.size();
  return source.substr(begin, end - begin);
}

std::string CaretSnippet(std::string_view source, SourceSpan span,
                         std::string_view prefix) {
  size_t begin = span.begin;
  if (begin > source.size()) begin = source.size();
  std::string_view line = LineAt(source, begin);
  size_t line_start = static_cast<size_t>(line.data() - source.data());
  size_t col = begin - line_start;

  std::string out;
  out += prefix;
  out += line;
  out += "\n";
  out += prefix;
  out.append(col, ' ');
  // Clip the underline to the line; always show at least the caret.
  size_t underline_end = span.end > begin ? span.end : begin + 1;
  size_t line_end = line_start + line.size();
  if (underline_end > line_end) underline_end = line_end;
  size_t len = underline_end > begin ? underline_end - begin : 1;
  out += "^";
  if (len > 1) out.append(len - 1, '~');
  out += "\n";
  return out;
}

std::string DescribePosition(std::string_view source, size_t offset) {
  LineCol lc = ResolveLineCol(source, offset);
  return "line " + std::to_string(lc.line) + ", column " +
         std::to_string(lc.column);
}

}  // namespace emcalc::diag
