#include "src/diag/blame.h"

#include "src/base/check.h"
#include "src/calculus/printer.h"

namespace emcalc::diag {

namespace {

// Condition number for the rendered message, matching the header comment
// of em_allowed.h (and Theorem 6.6's statement).
int ConditionNumber(SafetyViolation v) {
  switch (v) {
    case SafetyViolation::kUnboundedFree:
      return 1;
    case SafetyViolation::kUnboundedQuantified:
      return 2;
    case SafetyViolation::kUnboundedNegated:
      return 3;
    case SafetyViolation::kNone:
      break;
  }
  return 0;
}

}  // namespace

Diagnostic BuildSafetyBlame(AstContext& ctx, BoundAnalyzer& bound,
                            const SafetyResult& r) {
  EMCALC_CHECK_MSG(!r.em_allowed, "BuildSafetyBlame needs a rejection");
  const SymbolTable& syms = ctx.symbols();

  Diagnostic d(std::string(SafetyViolationCode(r.violation)),
               Severity::kError,
               "variables " + r.unbounded.ToString(syms) +
                   " cannot be confined to a finite set");
  if (r.blamed != nullptr) {
    if (const SourceSpan* span = ctx.SpanOf(r.blamed)) d.WithSpan(*span);
  }

  d.AddNote("em-allowed condition (" +
            std::to_string(ConditionNumber(r.violation)) + ") failed" +
            (r.blamed != nullptr
                 ? " at subformula: " + FormulaToString(ctx, r.blamed)
                 : std::string()));
  if (r.checked != nullptr && r.checked != r.blamed) {
    d.AddNote("checked (after rewriting): " +
              FormulaToString(ctx, r.checked));
  }
  d.AddNote("needed: " + r.blame_context.ToString(syms) + " -> " +
            r.blame_targets.ToString(syms));

  if (r.checked == nullptr) return d;

  // Replay the closure derivation over bd(checked) from the context.
  const FinDSet& bd = bound.Bound(r.checked);
  d.AddNote("bd = " + bd.ToString(syms));
  FinDSet::ClosureTrace trace = bd.TraceClosure(r.blame_context);
  if (trace.steps.empty()) {
    d.AddNote("no finiteness dependency was applicable from context " +
              r.blame_context.ToString(syms));
  }
  for (const FinDSet::ClosureStep& step : trace.steps) {
    d.AddNote("fired " + bd.finds()[step.find_index].ToString(syms) +
              ", confining " + step.added.ToString(syms));
  }
  for (size_t i : trace.blocked) {
    const FinD& f = bd.finds()[i];
    d.AddNote("blocked " + f.ToString(syms) + ": needs " +
              f.lhs.Minus(trace.closure).ToString(syms) +
              ", never confined");
  }
  d.AddNote("closure reached " + trace.closure.ToString(syms) +
            "; never confined: " + r.unbounded.ToString(syms));
  return d;
}

}  // namespace emcalc::diag
