// The lint pass: located style/correctness findings over a parsed query,
// reported even when the query is accepted by the safety analysis. Rules
// (docs/diagnostics.md has the catalog with examples):
//
//   lint.rel-arity-conflict    error    relation used with two arities
//   lint.fn-arity-conflict     error    function used with two arities
//   lint.unused-quantified-var warning  quantified var unused in body
//   lint.shadowed-var          warning  quantifier rebinds an outer name
//   lint.unsat-equality        warning  x = c1 and x = c2 (c1 != c2)
//   lint.function-depth        warning  deep function nesting (the closure
//                                       level of Theorem 6.6 grows with it)
//   lint.cross-product         warning  conjunct shares no variables with
//                                       the rest of its conjunction
//
// Lint runs on the freshly parsed tree — before view expansion and
// rectification — so findings point at what the user actually wrote.
#ifndef EMCALC_DIAG_LINT_H_
#define EMCALC_DIAG_LINT_H_

#include <vector>

#include "src/calculus/ast.h"
#include "src/diag/diagnostic.h"

namespace emcalc::diag {

struct LintOptions {
  // Warn when the maximum scalar-function nesting depth reaches this many
  // applications. 0 disables the rule.
  int function_depth_threshold = 4;
};

// Lints `f` (free variables are treated as the outermost scope). Findings
// come back in source order of the traversal, errors and warnings mixed.
std::vector<Diagnostic> LintFormula(const AstContext& ctx, const Formula* f,
                                    const LintOptions& options = {});

// Query form: lints the body.
std::vector<Diagnostic> LintQuery(const AstContext& ctx, const Query& q,
                                  const LintOptions& options = {});

}  // namespace emcalc::diag

#endif  // EMCALC_DIAG_LINT_H_
