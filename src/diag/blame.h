// Turns a rejected safety check into a located, explainable diagnostic:
// which em-allowed condition failed, at which subformula (with source
// span), for which variables — plus the FinD closure derivation that was
// attempted, so the user can see exactly which finiteness dependencies
// fired and why the rejected variables were never confined.
#ifndef EMCALC_DIAG_BLAME_H_
#define EMCALC_DIAG_BLAME_H_

#include "src/diag/diagnostic.h"
#include "src/finds/bound.h"
#include "src/safety/em_allowed.h"

namespace emcalc::diag {

// Builds the blame-trace diagnostic for a safety rejection. `bound` must be
// the analyzer (or at least share the AstContext) the check ran against so
// bd(r.checked) reproduces the failing entailment. Requires !r.em_allowed.
//
// The result's code is SafetyViolationCode(r.violation), its span (if any)
// is the blamed subformula's, and its notes walk the FinD derivation:
// the em-allowed condition that failed, the context, bd(checked), each
// dependency that fired (in order, with the variables it confined), each
// dependency blocked on never-confined variables, and the variables the
// closure never reached.
Diagnostic BuildSafetyBlame(AstContext& ctx, BoundAnalyzer& bound,
                            const SafetyResult& r);

}  // namespace emcalc::diag

#endif  // EMCALC_DIAG_BLAME_H_
