#include "src/diag/lint.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/base/symbol_set.h"
#include "src/calculus/analysis.h"
#include "src/calculus/printer.h"

namespace emcalc::diag {

namespace {

class Linter {
 public:
  Linter(const AstContext& ctx, const LintOptions& options)
      : ctx_(ctx), options_(options) {}

  std::vector<Diagnostic> Run(const Formula* f) {
    // Free variables form the outermost scope for shadowing purposes.
    scope_ = FreeVars(f);
    Visit(f);
    if (options_.function_depth_threshold > 0) {
      int depth = MaxFunctionDepth(f);
      if (depth >= options_.function_depth_threshold) {
        Report(f, "lint.function-depth",
               "function applications nest " + std::to_string(depth) +
                   " deep; evaluation needs a term closure of level " +
                   std::to_string(depth) + " (Theorem 6.6)");
      }
    }
    return std::move(findings_);
  }

 private:
  void Report(const void* node, std::string code, std::string message,
              Severity severity = Severity::kWarning) {
    Diagnostic d(std::move(code), severity, std::move(message));
    if (const SourceSpan* span = ctx_.SpanOf(node)) d.WithSpan(*span);
    findings_.push_back(std::move(d));
  }

  std::string Name(Symbol s) const {
    return std::string(ctx_.symbols().Name(s));
  }

  void CheckRelArity(const Formula* f) {
    auto [it, inserted] =
        rel_arity_.emplace(f->rel(), static_cast<int>(f->terms().size()));
    if (!inserted && it->second != static_cast<int>(f->terms().size())) {
      Report(f, "lint.rel-arity-conflict",
             "relation '" + Name(f->rel()) + "' used with arity " +
                 std::to_string(f->terms().size()) + " but previously with " +
                 std::to_string(it->second),
             Severity::kError);
    }
  }

  void VisitTerm(const Term* t) {
    if (!t->is_apply()) return;
    auto [it, inserted] =
        fn_arity_.emplace(t->symbol(), static_cast<int>(t->args().size()));
    if (!inserted && it->second != static_cast<int>(t->args().size())) {
      Report(t, "lint.fn-arity-conflict",
             "function '" + Name(t->symbol()) + "' used with arity " +
                 std::to_string(t->args().size()) + " but previously with " +
                 std::to_string(it->second),
             Severity::kError);
    }
    for (const Term* a : t->args()) VisitTerm(a);
  }

  // x = c1 and x = c2 with c1 != c2 (or two unequal constants compared)
  // makes the whole conjunction empty.
  void CheckUnsatEqualities(const Formula* conj) {
    std::map<Symbol, std::pair<uint32_t, const Formula*>> pinned;
    for (const Formula* c : conj->children()) {
      if (!c->is(FormulaKind::kEq)) continue;
      const Term* l = c->lhs();
      const Term* r = c->rhs();
      if (l->is_const() && r->is_const()) {
        if (l->const_id() != r->const_id()) {
          Report(c, "lint.unsat-equality",
                 "equality between distinct constants is always false");
        }
        continue;
      }
      if (r->is_var() && l->is_const()) std::swap(l, r);
      if (!(l->is_var() && r->is_const())) continue;
      auto [it, inserted] =
          pinned.emplace(l->symbol(), std::make_pair(r->const_id(), c));
      if (!inserted && it->second.first != r->const_id()) {
        Report(c, "lint.unsat-equality",
               "'" + Name(l->symbol()) + "' is already pinned to " +
                   ctx_.ConstantAt(it->second.first).ToString() +
                   " in this conjunction; the conjunction is always false");
      }
    }
  }

  void CheckCrossProduct(const Formula* conj) {
    std::vector<SymbolSet> free;
    free.reserve(conj->children().size());
    for (const Formula* c : conj->children()) free.push_back(FreeVars(c));
    size_t with_vars = 0;
    for (const SymbolSet& s : free) with_vars += s.empty() ? 0u : 1u;
    if (with_vars < 2) return;
    for (size_t i = 0; i < free.size(); ++i) {
      if (free[i].empty()) continue;
      SymbolSet others;
      for (size_t j = 0; j < free.size(); ++j) {
        if (j != i) others = others.Union(free[j]);
      }
      if (free[i].Intersect(others).empty()) {
        Report(conj->children()[i], "lint.cross-product",
               "conjunct shares no variables with the rest of the "
               "conjunction; the result is a cross product");
        // One finding per conjunction: in a two-way cross product both
        // sides are disjoint from each other, and flagging each would just
        // repeat the same fact.
        return;
      }
    }
  }

  void Visit(const Formula* f) {
    switch (f->kind()) {
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
        return;
      case FormulaKind::kRel:
        CheckRelArity(f);
        for (const Term* t : f->terms()) VisitTerm(t);
        return;
      case FormulaKind::kEq:
      case FormulaKind::kNeq:
      case FormulaKind::kLess:
      case FormulaKind::kLessEq:
        VisitTerm(f->lhs());
        VisitTerm(f->rhs());
        return;
      case FormulaKind::kNot:
        Visit(f->child());
        return;
      case FormulaKind::kAnd:
        CheckUnsatEqualities(f);
        CheckCrossProduct(f);
        [[fallthrough]];
      case FormulaKind::kOr:
        for (const Formula* c : f->children()) Visit(c);
        return;
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        SymbolSet body_free = FreeVars(f->child());
        std::vector<Symbol> entered;
        for (Symbol v : f->vars()) {
          if (scope_.Contains(v)) {
            Report(f, "lint.shadowed-var",
                   "quantifier rebinds '" + Name(v) +
                       "', which is already bound (or free) in an "
                       "enclosing scope");
          } else {
            scope_.Insert(v);
            entered.push_back(v);
          }
          if (!body_free.Contains(v)) {
            Report(f, "lint.unused-quantified-var",
                   "quantified variable '" + Name(v) +
                       "' is not used in the body");
          }
        }
        Visit(f->child());
        for (Symbol v : entered) scope_.Remove(v);
        return;
      }
    }
  }

  const AstContext& ctx_;
  const LintOptions& options_;
  SymbolSet scope_;
  std::map<Symbol, int> rel_arity_;
  std::map<Symbol, int> fn_arity_;
  std::vector<Diagnostic> findings_;
};

}  // namespace

std::vector<Diagnostic> LintFormula(const AstContext& ctx, const Formula* f,
                                    const LintOptions& options) {
  return Linter(ctx, options).Run(f);
}

std::vector<Diagnostic> LintQuery(const AstContext& ctx, const Query& q,
                                  const LintOptions& options) {
  return LintFormula(ctx, q.body, options);
}

}  // namespace emcalc::diag
