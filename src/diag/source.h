// Source positions for the diagnostics engine: byte-offset spans recorded
// by the calculus lexer/parser, line/column resolution against the original
// query text, and caret-snippet rendering for terminal output.
//
// Spans are half-open byte ranges [begin, end) into the query string that
// was parsed. They are kept out of the AST nodes themselves — AstContext
// owns a side table keyed by node pointer — so rewrites and programmatic
// construction pay nothing and existing consumers are untouched.
#ifndef EMCALC_DIAG_SOURCE_H_
#define EMCALC_DIAG_SOURCE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace emcalc::diag {

// A half-open byte range [begin, end) into a source string.
struct SourceSpan {
  uint32_t begin = 0;
  uint32_t end = 0;

  uint32_t size() const { return end > begin ? end - begin : 0; }

  friend bool operator==(const SourceSpan& a, const SourceSpan& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

// A 1-based line/column position.
struct LineCol {
  int line = 1;
  int column = 1;
};

// Resolves a byte offset against `source` (offsets past the end clamp to
// one past the last character).
LineCol ResolveLineCol(std::string_view source, size_t offset);

// The full line of `source` containing `offset` (without the newline).
std::string_view LineAt(std::string_view source, size_t offset);

// Renders the line containing span.begin with a caret underline:
//
//   | {x | not R(x)}
//   |      ^~~~~~~~
//
// The underline covers the span clipped to that line; `prefix` is prepended
// to both lines (indentation / gutter).
std::string CaretSnippet(std::string_view source, SourceSpan span,
                         std::string_view prefix = "  | ");

// "line L, column C" rendering used by parse errors.
std::string DescribePosition(std::string_view source, size_t offset);

}  // namespace emcalc::diag

#endif  // EMCALC_DIAG_SOURCE_H_
