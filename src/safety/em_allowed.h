// The em-allowed safety criterion (Section 6 of the paper), generalizing
// "allowed" [Top87, GT91] to scalar functions.
//
// A formula phi is em-allowed for a context X (a set of externally bounded
// variables — the paper's "em-allowed for X", used for queries embedded in
// a host program whose variables are already bound) iff:
//   (1) bd(phi), together with {} -> x for x in X, entails {} -> free(phi);
//   (2) recursively, every quantified subformula binds bounded variables:
//       for `exists Y (psi)`, bd(psi) |= (free(psi) \ Y) -> Y, i.e. the
//       quantified variables are bounded relative to the subformula's
//       context (reconstruction R2 in DESIGN.md, forced by the paper's
//       example R(x) and exists y (f(x) = y and not R(y)));
//       `forall Y (psi)` is checked as `not exists Y (not psi)`;
//   (3) conditions (2) apply under negations in pushed (pushnot) form.
//
// Theorem 6.6 of the paper: em-allowed queries are embedded domain
// independent at level ||phi|| - 1. Our pipeline demonstrates this
// constructively by translating every em-allowed query to the algebra.
#ifndef EMCALC_SAFETY_EM_ALLOWED_H_
#define EMCALC_SAFETY_EM_ALLOWED_H_

#include <string>

#include "src/calculus/ast.h"
#include "src/finds/bound.h"

namespace emcalc {

// Outcome of a safety check, with a human-readable reason on rejection.
struct SafetyResult {
  bool em_allowed = false;
  std::string reason;  // empty iff em_allowed

  explicit operator bool() const { return em_allowed; }
};

// Checks em-allowedness. One checker per AstContext; shares the bd cache
// across checks.
class EmAllowedChecker {
 public:
  explicit EmAllowedChecker(AstContext& ctx, BoundOptions options = {})
      : bound_(ctx, options) {}

  // Query form: context is empty, targets are the head variables.
  SafetyResult Check(const Query& q) {
    return CheckFormula(q.body, SymbolSet{});
  }

  // "em-allowed for X": `context` lists externally bounded variables.
  SafetyResult CheckFormula(const Formula* f, const SymbolSet& context);

  BoundAnalyzer& bound() { return bound_; }

 private:
  // CheckFormula minus the instrumentation (span + check/reject counters).
  SafetyResult CheckImpl(const Formula* f, const SymbolSet& context);

  // Condition (2)/(3) recursion; does not include the top-level condition.
  SafetyResult CheckSubformulas(const Formula* f);

  BoundAnalyzer bound_;
};

// One-off convenience wrappers.
SafetyResult CheckEmAllowed(AstContext& ctx, const Query& q,
                            BoundOptions options = {});
SafetyResult CheckEmAllowed(AstContext& ctx, const Formula* f,
                            BoundOptions options = {});

}  // namespace emcalc

#endif  // EMCALC_SAFETY_EM_ALLOWED_H_
