// The em-allowed safety criterion (Section 6 of the paper), generalizing
// "allowed" [Top87, GT91] to scalar functions.
//
// A formula phi is em-allowed for a context X (a set of externally bounded
// variables — the paper's "em-allowed for X", used for queries embedded in
// a host program whose variables are already bound) iff:
//   (1) bd(phi), together with {} -> x for x in X, entails {} -> free(phi);
//   (2) recursively, every quantified subformula binds bounded variables:
//       for `exists Y (psi)`, bd(psi) |= (free(psi) \ Y) -> Y, i.e. the
//       quantified variables are bounded relative to the subformula's
//       context (reconstruction R2 in DESIGN.md, forced by the paper's
//       example R(x) and exists y (f(x) = y and not R(y)));
//       `forall Y (psi)` is checked as `not exists Y (not psi)`;
//   (3) conditions (2) apply under negations in pushed (pushnot) form.
//
// Theorem 6.6 of the paper: em-allowed queries are embedded domain
// independent at level ||phi|| - 1. Our pipeline demonstrates this
// constructively by translating every em-allowed query to the algebra.
#ifndef EMCALC_SAFETY_EM_ALLOWED_H_
#define EMCALC_SAFETY_EM_ALLOWED_H_

#include <string>
#include <string_view>

#include "src/calculus/ast.h"
#include "src/finds/bound.h"

namespace emcalc {

// Which em-allowed condition a rejection violated. Consumers should branch
// on this (or on SafetyViolationCode), never on the reason text.
enum class SafetyViolation : uint8_t {
  kNone = 0,            // accepted
  kUnboundedFree,       // condition (1): a free variable is not bounded
  kUnboundedQuantified, // condition (2): quantified vars not bounded
  kUnboundedNegated,    // condition (3): (2) failed under a pushed negation
};

// Stable machine-readable code ("safety.unbounded-free", ...); empty for
// kNone. These are the diagnostic codes used by diag::BuildSafetyBlame.
std::string_view SafetyViolationCode(SafetyViolation v);

// Outcome of a safety check. On rejection the structured fields identify
// the violated condition, the variables that could not be confined to a
// finite set, and the subformula to blame; `reason` remains a one-line
// human-readable rendering for backward compatibility.
struct SafetyResult {
  bool em_allowed = false;
  std::string reason;  // empty iff em_allowed

  // --- structured blame (meaningful only when !em_allowed) ---
  SafetyViolation violation = SafetyViolation::kNone;
  // Variables genuinely outside the FinD closure of `blame_context` under
  // bd(checked); never empty on rejection.
  SymbolSet unbounded;
  // The context X of the failing bd entailment check.
  SymbolSet blame_context;
  // The variables the failing check needed bounded (superset of
  // `unbounded`): free(phi) \ X for condition (1), the quantified
  // variables for (2)/(3).
  SymbolSet blame_targets;
  // Subformula to point at in the source (nearest node with a recorded
  // span; see AstContext::SpanOf).
  const Formula* blamed = nullptr;
  // The formula whose bd() failed the entailment — what a consumer should
  // recompute bd over to reproduce the derivation (may be a rewritten node
  // distinct from `blamed`, e.g. a pushed negation or quantifier body).
  const Formula* checked = nullptr;

  explicit operator bool() const { return em_allowed; }

  static SafetyResult Accept() {
    SafetyResult r;
    r.em_allowed = true;
    return r;
  }
};

// Checks em-allowedness. One checker per AstContext; shares the bd cache
// across checks.
class EmAllowedChecker {
 public:
  explicit EmAllowedChecker(AstContext& ctx, BoundOptions options = {})
      : bound_(ctx, options) {}

  // Query form: context is empty, targets are the head variables.
  SafetyResult Check(const Query& q) {
    return CheckFormula(q.body, SymbolSet{});
  }

  // "em-allowed for X": `context` lists externally bounded variables.
  SafetyResult CheckFormula(const Formula* f, const SymbolSet& context);

  BoundAnalyzer& bound() { return bound_; }

 private:
  // CheckFormula minus the instrumentation (span + check/reject counters).
  SafetyResult CheckImpl(const Formula* f, const SymbolSet& context);

  // Condition (2)/(3) recursion; does not include the top-level condition.
  // `anchor` is the nearest enclosing node with a source span (rewritten
  // nodes fall back to it for blame); `under_negation` distinguishes
  // condition (3) from (2).
  SafetyResult CheckSubformulas(const Formula* f, const Formula* anchor,
                                bool under_negation);

  // Builds a rejection with all structured fields populated.
  SafetyResult MakeViolation(SafetyViolation v, const Formula* blamed,
                             const Formula* checked, const SymbolSet& context,
                             const SymbolSet& targets,
                             std::string_view what);

  BoundAnalyzer bound_;
};

// One-off convenience wrappers.
SafetyResult CheckEmAllowed(AstContext& ctx, const Query& q,
                            BoundOptions options = {});
SafetyResult CheckEmAllowed(AstContext& ctx, const Formula* f,
                            BoundOptions options = {});

}  // namespace emcalc

#endif  // EMCALC_SAFETY_EM_ALLOWED_H_
