// Comparison safety criteria used by the containment experiment (E8):
//
//  - IsAllowedGT91: the classical function-free "allowed" criterion
//    [Top87, GT91]. The paper states that em-allowed restricted to
//    function-free formulas coincides with allowed, and we define it that
//    way (DESIGN.md, reconstruction R2); it rejects every formula that
//    mentions a scalar function.
//
//  - IsRangeRestricted: the AB88-style range-restriction. Purely local:
//    a variable is restricted only by positive relation atoms, equalities
//    with constants, equalities with already-restricted variables, and
//    function applications of already-restricted variables, computed per
//    subformula without help from the enclosing context. The paper's q2
//    (R(x) and exists y (f(x) = y and not R(y))) is em-allowed but not
//    range-restricted.
//
//  - IsTop91Safe: the safety criterion of [Top91]. Reconstructed
//    (DESIGN.md R7) as em-allowed strengthened at disjunctions: all
//    disjuncts must carry *syntactically identical* raw FinD sets — i.e.
//    derive their bounding information the same way — rather than merely a
//    non-empty meet. The paper's q5
//    ((R(x) and f(x)=y) or (S(y) and g(y)=x)) is em-allowed but not safe:
//    its disjuncts bound {x,y} in opposite derivation orders.
#ifndef EMCALC_SAFETY_ALLOWED_H_
#define EMCALC_SAFETY_ALLOWED_H_

#include "src/calculus/ast.h"
#include "src/safety/em_allowed.h"

namespace emcalc {

// Function-free classical allowed.
bool IsAllowedGT91(AstContext& ctx, const Formula* f);

// AB88-style local range restriction.
bool IsRangeRestricted(AstContext& ctx, const Formula* f);

// Top91-style safe (reconstruction; see header comment).
bool IsTop91Safe(AstContext& ctx, const Formula* f);

}  // namespace emcalc

#endif  // EMCALC_SAFETY_ALLOWED_H_
