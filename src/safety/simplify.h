// The "simplified form" used by the translation (the T1–T9 family of GT91
// as generalized by the paper): constant folding, flattening of nested
// conjunctions/disjunctions, double-negation elimination, coalescing and
// pruning of quantifiers, and folding of syntactically trivial
// (in)equalities. All rewrites preserve embedded semantics.
#ifndef EMCALC_SAFETY_SIMPLIFY_H_
#define EMCALC_SAFETY_SIMPLIFY_H_

#include "src/calculus/ast.h"

namespace emcalc {

// Bottom-up simplification; idempotent. Guarantees on the result:
//  - no kTrue/kFalse below the root,
//  - kAnd/kOr children are neither kTrue/kFalse nor same-kind juncts,
//  - no kNot directly over kNot/kTrue/kFalse,
//  - no quantifier binding a variable that is not free in its body,
//  - adjacent same-kind quantifiers are merged,
//  - no t = t or t != t atoms for syntactically identical t.
const Formula* Simplify(AstContext& ctx, const Formula* f);

// True if `f` satisfies the guarantees above (used by tests and by the ENF
// pass to assert its precondition).
bool IsSimplified(const Formula* f);

}  // namespace emcalc

#endif  // EMCALC_SAFETY_SIMPLIFY_H_
