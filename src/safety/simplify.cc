#include "src/safety/simplify.h"

#include <vector>

#include "src/base/symbol_set.h"
#include "src/calculus/analysis.h"
#include "src/calculus/builder.h"

namespace emcalc {

const Formula* Simplify(AstContext& ctx, const Formula* f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kRel:
      return f;
    case FormulaKind::kEq:
      if (TermsEqual(f->lhs(), f->rhs())) return ctx.True();
      return f;
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
      if (TermsEqual(f->lhs(), f->rhs())) return ctx.False();
      return f;
    case FormulaKind::kLessEq:
      if (TermsEqual(f->lhs(), f->rhs())) return ctx.True();
      return f;
    case FormulaKind::kNot: {
      const Formula* child = Simplify(ctx, f->child());
      FormulaKind ck = child->kind();
      if (child == f->child() && ck != FormulaKind::kNot &&
          ck != FormulaKind::kTrue && ck != FormulaKind::kFalse) {
        return f;  // already simplified: keep the node (structure sharing)
      }
      return builder::Not(ctx, child);
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<const Formula*> children;
      children.reserve(f->children().size());
      bool changed = false;
      for (const Formula* c : f->children()) {
        const Formula* nc = Simplify(ctx, c);
        changed |= (nc != c);
        // A same-kind, kTrue, or kFalse child means the builder must fold.
        changed |= nc->kind() == f->kind() ||
                   nc->kind() == FormulaKind::kTrue ||
                   nc->kind() == FormulaKind::kFalse;
        children.push_back(nc);
      }
      if (!changed) return f;
      return f->kind() == FormulaKind::kAnd
                 ? builder::And(ctx, std::move(children))
                 : builder::Or(ctx, std::move(children));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      const Formula* body = Simplify(ctx, f->child());
      SymbolSet free = FreeVars(body);
      std::vector<Symbol> vars;
      for (Symbol v : f->vars()) {
        if (free.Contains(v)) vars.push_back(v);
      }
      if (body == f->child() && vars.size() == f->vars().size() &&
          body->kind() != f->kind()) {
        return f;
      }
      return f->kind() == FormulaKind::kExists
                 ? builder::Exists(ctx, std::move(vars), body)
                 : builder::Forall(ctx, std::move(vars), body);
    }
  }
  return f;
}

bool IsSimplified(const Formula* f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kRel:
      return true;
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      return !TermsEqual(f->lhs(), f->rhs());
    case FormulaKind::kNot: {
      FormulaKind ck = f->child()->kind();
      if (ck == FormulaKind::kNot || ck == FormulaKind::kTrue ||
          ck == FormulaKind::kFalse) {
        return false;
      }
      return IsSimplified(f->child());
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      for (const Formula* c : f->children()) {
        if (c->kind() == f->kind() || c->kind() == FormulaKind::kTrue ||
            c->kind() == FormulaKind::kFalse) {
          return false;
        }
        if (!IsSimplified(c)) return false;
      }
      return true;
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      if (f->child()->kind() == f->kind()) return false;
      SymbolSet free = FreeVars(f->child());
      for (Symbol v : f->vars()) {
        if (!free.Contains(v)) return false;
      }
      return IsSimplified(f->child());
    }
  }
  return true;
}

}  // namespace emcalc
