#include "src/safety/em_allowed.h"

#include "src/calculus/analysis.h"
#include "src/calculus/printer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/safety/pushnot.h"

namespace emcalc {

std::string_view SafetyViolationCode(SafetyViolation v) {
  switch (v) {
    case SafetyViolation::kNone:
      return "";
    case SafetyViolation::kUnboundedFree:
      return "safety.unbounded-free";
    case SafetyViolation::kUnboundedQuantified:
      return "safety.unbounded-quantified";
    case SafetyViolation::kUnboundedNegated:
      return "safety.unbounded-negated";
  }
  return "";
}

SafetyResult EmAllowedChecker::CheckFormula(const Formula* f,
                                            const SymbolSet& context) {
  obs::Span span("safety.em_allowed");
  static obs::Counter& checks =
      obs::MetricsRegistry::Instance().GetCounter("safety.checks");
  static obs::Counter& rejections =
      obs::MetricsRegistry::Instance().GetCounter("safety.rejections");
  checks.Add();
  SafetyResult result = CheckImpl(f, context);
  if (!result.em_allowed) {
    rejections.Add();
    span.SetDetail("rejected: " + result.reason);
  }
  return result;
}

SafetyResult EmAllowedChecker::MakeViolation(
    SafetyViolation v, const Formula* blamed, const Formula* checked,
    const SymbolSet& context, const SymbolSet& targets,
    std::string_view what) {
  AstContext& ctx = bound_.ctx();
  const FinDSet& bd = bound_.Bound(checked);
  SafetyResult r;
  r.em_allowed = false;
  r.violation = v;
  r.blamed = blamed;
  r.checked = checked;
  r.blame_context = context;
  r.blame_targets = targets;
  r.unbounded = targets.Minus(bd.LinearClosure(context));
  r.reason = std::string(what) + " " + targets.ToString(ctx.symbols()) +
             " not bounded in " + FormulaToString(ctx, blamed) +
             " (bd = " + bd.ToString(ctx.symbols()) + ")";
  return r;
}

SafetyResult EmAllowedChecker::CheckImpl(const Formula* f,
                                         const SymbolSet& context) {
  SafetyResult inner = CheckSubformulas(f, f, /*under_negation=*/false);
  if (!inner.em_allowed) return inner;
  SymbolSet free = FreeVars(f);
  SymbolSet targets = free.Minus(context);
  if (!bound_.Bounds(f, context, targets)) {
    return MakeViolation(SafetyViolation::kUnboundedFree, f, f, context,
                         targets, "free variables");
  }
  return SafetyResult::Accept();
}

SafetyResult EmAllowedChecker::CheckSubformulas(const Formula* f,
                                                const Formula* anchor,
                                                bool under_negation) {
  AstContext& ctx = bound_.ctx();
  // Rewritten nodes (pushed negations, quantifier duals) have inherited
  // spans where possible; fall back to the nearest spanned ancestor.
  const Formula* here = ctx.SpanOf(f) != nullptr ? f : anchor;
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kRel:
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      return SafetyResult::Accept();
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      for (const Formula* c : f->children()) {
        SafetyResult r = CheckSubformulas(c, here, under_negation);
        if (!r.em_allowed) return r;
      }
      return SafetyResult::Accept();
    }
    case FormulaKind::kNot: {
      const Formula* pushed = PushNotStep(ctx, f);
      if (pushed == f) return SafetyResult::Accept();  // negated rel atom
      return CheckSubformulas(pushed, here, /*under_negation=*/true);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      // forall Y (psi) is checked as its dual not exists Y (not psi).
      const Formula* body = f->child();
      if (f->kind() == FormulaKind::kForall) {
        const Formula* negated = ctx.MakeNot(body);
        ctx.InheritSpan(negated, body);
        const Formula* pushed = PushNotStep(ctx, negated);
        body = pushed;  // PushNotStep returns `negated` itself for rel atoms
      }
      SafetyResult r = CheckSubformulas(body, here, under_negation);
      if (!r.em_allowed) return r;
      SymbolSet qvars(std::vector<Symbol>(f->vars().begin(), f->vars().end()));
      SymbolSet subcontext = FreeVars(body).Minus(qvars);
      if (!bound_.Bounds(body, subcontext, qvars)) {
        return MakeViolation(under_negation
                                 ? SafetyViolation::kUnboundedNegated
                                 : SafetyViolation::kUnboundedQuantified,
                             here, body, subcontext, qvars,
                             "quantified variables");
      }
      return SafetyResult::Accept();
    }
  }
  return SafetyResult::Accept();
}

SafetyResult CheckEmAllowed(AstContext& ctx, const Query& q,
                            BoundOptions options) {
  EmAllowedChecker checker(ctx, options);
  return checker.Check(q);
}

SafetyResult CheckEmAllowed(AstContext& ctx, const Formula* f,
                            BoundOptions options) {
  EmAllowedChecker checker(ctx, options);
  return checker.CheckFormula(f, SymbolSet{});
}

}  // namespace emcalc
