#include "src/safety/em_allowed.h"

#include "src/calculus/analysis.h"
#include "src/calculus/printer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/safety/pushnot.h"

namespace emcalc {

SafetyResult EmAllowedChecker::CheckFormula(const Formula* f,
                                            const SymbolSet& context) {
  obs::Span span("safety.em_allowed");
  static obs::Counter& checks =
      obs::MetricsRegistry::Instance().GetCounter("safety.checks");
  static obs::Counter& rejections =
      obs::MetricsRegistry::Instance().GetCounter("safety.rejections");
  checks.Add();
  SafetyResult result = CheckImpl(f, context);
  if (!result.em_allowed) {
    rejections.Add();
    span.SetDetail("rejected: " + result.reason);
  }
  return result;
}

SafetyResult EmAllowedChecker::CheckImpl(const Formula* f,
                                         const SymbolSet& context) {
  SafetyResult inner = CheckSubformulas(f);
  if (!inner.em_allowed) return inner;
  SymbolSet free = FreeVars(f);
  SymbolSet targets = free.Minus(context);
  if (!bound_.Bounds(f, context, targets)) {
    AstContext& ctx = bound_.ctx();
    return SafetyResult{
        false, "free variables " + targets.ToString(ctx.symbols()) +
                   " not bounded in " + FormulaToString(ctx, f) +
                   " (bd = " +
                   bound_.Bound(f).ToString(ctx.symbols()) + ")"};
  }
  return SafetyResult{true, ""};
}

SafetyResult EmAllowedChecker::CheckSubformulas(const Formula* f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kRel:
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      return SafetyResult{true, ""};
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      for (const Formula* c : f->children()) {
        SafetyResult r = CheckSubformulas(c);
        if (!r.em_allowed) return r;
      }
      return SafetyResult{true, ""};
    }
    case FormulaKind::kNot: {
      const Formula* pushed = PushNotStep(bound_.ctx(), f);
      if (pushed == f) return SafetyResult{true, ""};  // negated rel atom
      return CheckSubformulas(pushed);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      // forall Y (psi) is checked as its dual not exists Y (not psi).
      const Formula* body = f->child();
      if (f->kind() == FormulaKind::kForall) {
        const Formula* negated = bound_.ctx().MakeNot(body);
        const Formula* pushed = PushNotStep(bound_.ctx(), negated);
        body = pushed;  // PushNotStep returns `negated` itself for rel atoms
      }
      SafetyResult r = CheckSubformulas(body);
      if (!r.em_allowed) return r;
      SymbolSet qvars(std::vector<Symbol>(f->vars().begin(), f->vars().end()));
      SymbolSet subcontext = FreeVars(body).Minus(qvars);
      if (!bound_.Bounds(body, subcontext, qvars)) {
        AstContext& ctx = bound_.ctx();
        return SafetyResult{
            false, "quantified variables " + qvars.ToString(ctx.symbols()) +
                       " not bounded in " + FormulaToString(ctx, f) +
                       " (bd = " +
                       bound_.Bound(body).ToString(ctx.symbols()) + ")"};
      }
      return SafetyResult{true, ""};
    }
  }
  return SafetyResult{true, ""};
}

SafetyResult CheckEmAllowed(AstContext& ctx, const Query& q,
                            BoundOptions options) {
  EmAllowedChecker checker(ctx, options);
  return checker.Check(q);
}

SafetyResult CheckEmAllowed(AstContext& ctx, const Formula* f,
                            BoundOptions options) {
  EmAllowedChecker checker(ctx, options);
  return checker.CheckFormula(f, SymbolSet{});
}

}  // namespace emcalc
