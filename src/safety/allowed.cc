#include "src/safety/allowed.h"

#include <vector>

#include "src/base/symbol_set.h"
#include "src/calculus/analysis.h"
#include "src/finds/bound.h"
#include "src/safety/pushnot.h"

namespace emcalc {

bool IsAllowedGT91(AstContext& ctx, const Formula* f) {
  if (HasFunctions(f)) return false;
  return static_cast<bool>(CheckEmAllowed(ctx, f));
}

namespace {

// Computes the set of range-restricted variables of `f` and records
// quantifier violations. Purely local per subformula.
class RangeRestriction {
 public:
  explicit RangeRestriction(AstContext& ctx) : ctx_(ctx) {}

  SymbolSet Restricted(const Formula* f) {
    switch (f->kind()) {
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
      case FormulaKind::kNeq:
      case FormulaKind::kLess:
      case FormulaKind::kLessEq:
        return SymbolSet{};
      case FormulaKind::kRel:
        return DirectVars(f->terms());
      case FormulaKind::kEq:
        // Only ground right-hand sides restrict on their own; equalities
        // between variables or with function terms contribute during the
        // conjunction fixpoint below.
        return EqRestricted(f, SymbolSet{});
      case FormulaKind::kNot: {
        const Formula* pushed = PushNotStep(ctx_, f);
        if (pushed == f) return SymbolSet{};
        return Restricted(pushed);
      }
      case FormulaKind::kAnd: {
        SymbolSet acc;
        for (const Formula* c : f->children()) {
          acc = acc.Union(Restricted(c));
        }
        // Fixpoint: equalities propagate restriction within a conjunction.
        bool changed = true;
        while (changed) {
          changed = false;
          for (const Formula* c : f->children()) {
            if (c->kind() != FormulaKind::kEq) continue;
            SymbolSet more = EqRestricted(c, acc);
            if (!more.IsSubsetOf(acc)) {
              acc = acc.Union(more);
              changed = true;
            }
          }
        }
        return acc;
      }
      case FormulaKind::kOr: {
        SymbolSet acc = Restricted(f->children()[0]);
        for (size_t i = 1; i < f->children().size(); ++i) {
          acc = acc.Intersect(Restricted(f->children()[i]));
        }
        return acc;
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        const Formula* body = f->child();
        if (f->kind() == FormulaKind::kForall) {
          body = PushNotStep(ctx_, ctx_.MakeNot(body));
        }
        SymbolSet inner = Restricted(body);
        for (Symbol v : f->vars()) {
          if (!inner.Contains(v)) ok_ = false;
          inner.Remove(v);
        }
        return inner;
      }
    }
    return SymbolSet{};
  }

  bool ok() const { return ok_; }

 private:
  // Variables restricted by equality atom `f` given already-restricted
  // `known`: t = x restricts x when all of t's variables are restricted
  // (constants trivially, function terms when their arguments are).
  SymbolSet EqRestricted(const Formula* f, const SymbolSet& known) {
    SymbolSet out;
    const Term* l = f->lhs();
    const Term* r = f->rhs();
    if (l->is_var() && TermVars(r).IsSubsetOf(known)) {
      out.Insert(l->symbol());
    }
    if (r->is_var() && TermVars(l).IsSubsetOf(known)) {
      out.Insert(r->symbol());
    }
    return out;
  }

  AstContext& ctx_;
  bool ok_ = true;
};

// Top91-safe checker: em-allowed plus uniform bounding across disjuncts.
// Disjuncts must carry *syntactically identical* raw bd sets — the same
// derivation structure for their bounding information — not merely
// equivalent closures (q5's disjuncts are closure-equivalent but derive
// their bounds in opposite directions; see safety/allowed.h).
class Top91Checker {
 public:
  explicit Top91Checker(AstContext& ctx)
      : ctx_(ctx), bound_(ctx, RawBoundOptions()) {}

  static BoundOptions RawBoundOptions() {
    BoundOptions o;
    o.use_reduced_covers = false;
    return o;
  }

  bool UniformDisjunctions(const Formula* f) {
    switch (f->kind()) {
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
      case FormulaKind::kRel:
      case FormulaKind::kEq:
      case FormulaKind::kNeq:
      case FormulaKind::kLess:
      case FormulaKind::kLessEq:
        return true;
      case FormulaKind::kNot: {
        const Formula* pushed = PushNotStep(ctx_, f);
        if (pushed == f) return true;
        return UniformDisjunctions(pushed);
      }
      case FormulaKind::kAnd: {
        for (const Formula* c : f->children()) {
          if (!UniformDisjunctions(c)) return false;
        }
        return true;
      }
      case FormulaKind::kOr: {
        const FinDSet& first = bound_.Bound(f->children()[0]);
        for (size_t i = 1; i < f->children().size(); ++i) {
          if (!bound_.Bound(f->children()[i]).SameAs(first)) {
            return false;
          }
        }
        for (const Formula* c : f->children()) {
          if (!UniformDisjunctions(c)) return false;
        }
        return true;
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        const Formula* body = f->child();
        if (f->kind() == FormulaKind::kForall) {
          body = PushNotStep(ctx_, ctx_.MakeNot(body));
        }
        return UniformDisjunctions(body);
      }
    }
    return true;
  }

 private:
  AstContext& ctx_;
  BoundAnalyzer bound_;
};

}  // namespace

bool IsRangeRestricted(AstContext& ctx, const Formula* f) {
  RangeRestriction rr(ctx);
  SymbolSet restricted = rr.Restricted(f);
  if (!rr.ok()) return false;
  return FreeVars(f).IsSubsetOf(restricted);
}

bool IsTop91Safe(AstContext& ctx, const Formula* f) {
  if (!CheckEmAllowed(ctx, f)) return false;
  Top91Checker checker(ctx);
  return checker.UniformDisjunctions(f);
}

}  // namespace emcalc
