// The pushnot operator (Section 6 of the paper, following GT91): pushes a
// negation one step toward the atoms. Note the paper's polarity convention:
// not (t1 = t2) becomes the *negative* atom t1 != t2 and vice versa, and
// negations of relation atoms stay put.
#ifndef EMCALC_SAFETY_PUSHNOT_H_
#define EMCALC_SAFETY_PUSHNOT_H_

#include "src/calculus/ast.h"

namespace emcalc {

// One-step push of the outermost negation of `f` (which must be a kNot
// node). Returns `f` itself when the child is a relation atom (nothing to
// push). not not phi collapses to phi.
const Formula* PushNotStep(AstContext& ctx, const Formula* f);

// Full negation normal form: negations remain only directly on relation
// atoms; equalities/inequalities swap kinds. Quantifiers flip under
// negation (not exists -> forall not ...).
const Formula* NegationNormalForm(AstContext& ctx, const Formula* f);

}  // namespace emcalc

#endif  // EMCALC_SAFETY_PUSHNOT_H_
