#include "src/safety/pushnot.h"

#include <vector>

#include "src/base/check.h"
#include "src/calculus/builder.h"

namespace emcalc {
namespace {

// Negation-pushing builds replacement nodes; carry the source span of the
// formula being rewritten so safety blame can still locate them.
const Formula* Spanned(AstContext& ctx, const Formula* built,
                       const Formula* from) {
  ctx.InheritSpan(built, from);
  return built;
}

}  // namespace

const Formula* PushNotStep(AstContext& ctx, const Formula* f) {
  EMCALC_CHECK(f->kind() == FormulaKind::kNot);
  const Formula* g = f->child();
  switch (g->kind()) {
    case FormulaKind::kTrue:
      return ctx.False();
    case FormulaKind::kFalse:
      return ctx.True();
    case FormulaKind::kRel:
      return f;  // negated finite-relation atom: nothing to push
    case FormulaKind::kEq:
      return Spanned(ctx, ctx.MakeNeq(g->lhs(), g->rhs()), f);
    case FormulaKind::kNeq:
      return Spanned(ctx, ctx.MakeEq(g->lhs(), g->rhs()), f);
    case FormulaKind::kLess:
      return Spanned(ctx, ctx.MakeLessEq(g->rhs(), g->lhs()), f);
    case FormulaKind::kLessEq:
      return Spanned(ctx, ctx.MakeLess(g->rhs(), g->lhs()), f);
    case FormulaKind::kNot:
      return g->child();
    case FormulaKind::kAnd: {
      std::vector<const Formula*> parts;
      parts.reserve(g->children().size());
      for (const Formula* c : g->children()) {
        parts.push_back(Spanned(ctx, builder::Not(ctx, c), c));
      }
      return Spanned(ctx, builder::Or(ctx, std::move(parts)), f);
    }
    case FormulaKind::kOr: {
      std::vector<const Formula*> parts;
      parts.reserve(g->children().size());
      for (const Formula* c : g->children()) {
        parts.push_back(Spanned(ctx, builder::Not(ctx, c), c));
      }
      return Spanned(ctx, builder::And(ctx, std::move(parts)), f);
    }
    case FormulaKind::kExists: {
      std::vector<Symbol> vars(g->vars().begin(), g->vars().end());
      return Spanned(ctx,
                     builder::Forall(ctx, std::move(vars),
                                     Spanned(ctx, builder::Not(ctx, g->child()),
                                             g->child())),
                     f);
    }
    case FormulaKind::kForall: {
      std::vector<Symbol> vars(g->vars().begin(), g->vars().end());
      return Spanned(ctx,
                     builder::Exists(ctx, std::move(vars),
                                     Spanned(ctx, builder::Not(ctx, g->child()),
                                             g->child())),
                     f);
    }
  }
  return f;
}

const Formula* NegationNormalForm(AstContext& ctx, const Formula* f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kRel:
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      return f;
    case FormulaKind::kNot: {
      const Formula* pushed = PushNotStep(ctx, f);
      if (pushed == f) return f;  // negated relation atom
      return NegationNormalForm(ctx, pushed);
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<const Formula*> children;
      bool changed = false;
      for (const Formula* c : f->children()) {
        const Formula* nc = NegationNormalForm(ctx, c);
        changed |= (nc != c);
        children.push_back(nc);
      }
      if (!changed) return f;
      return Spanned(ctx,
                     f->kind() == FormulaKind::kAnd
                         ? builder::And(ctx, std::move(children))
                         : builder::Or(ctx, std::move(children)),
                     f);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      const Formula* body = NegationNormalForm(ctx, f->child());
      if (body == f->child()) return f;
      std::vector<Symbol> vars(f->vars().begin(), f->vars().end());
      return Spanned(ctx,
                     f->kind() == FormulaKind::kExists
                         ? builder::Exists(ctx, std::move(vars), body)
                         : builder::Forall(ctx, std::move(vars), body),
                     f);
    }
  }
  return f;
}

}  // namespace emcalc
