#include "src/safety/pushnot.h"

#include <vector>

#include "src/base/check.h"
#include "src/calculus/builder.h"

namespace emcalc {

const Formula* PushNotStep(AstContext& ctx, const Formula* f) {
  EMCALC_CHECK(f->kind() == FormulaKind::kNot);
  const Formula* g = f->child();
  switch (g->kind()) {
    case FormulaKind::kTrue:
      return ctx.False();
    case FormulaKind::kFalse:
      return ctx.True();
    case FormulaKind::kRel:
      return f;  // negated finite-relation atom: nothing to push
    case FormulaKind::kEq:
      return ctx.MakeNeq(g->lhs(), g->rhs());
    case FormulaKind::kNeq:
      return ctx.MakeEq(g->lhs(), g->rhs());
    case FormulaKind::kLess:
      return ctx.MakeLessEq(g->rhs(), g->lhs());
    case FormulaKind::kLessEq:
      return ctx.MakeLess(g->rhs(), g->lhs());
    case FormulaKind::kNot:
      return g->child();
    case FormulaKind::kAnd: {
      std::vector<const Formula*> parts;
      parts.reserve(g->children().size());
      for (const Formula* c : g->children()) {
        parts.push_back(builder::Not(ctx, c));
      }
      return builder::Or(ctx, std::move(parts));
    }
    case FormulaKind::kOr: {
      std::vector<const Formula*> parts;
      parts.reserve(g->children().size());
      for (const Formula* c : g->children()) {
        parts.push_back(builder::Not(ctx, c));
      }
      return builder::And(ctx, std::move(parts));
    }
    case FormulaKind::kExists: {
      std::vector<Symbol> vars(g->vars().begin(), g->vars().end());
      return builder::Forall(ctx, std::move(vars),
                             builder::Not(ctx, g->child()));
    }
    case FormulaKind::kForall: {
      std::vector<Symbol> vars(g->vars().begin(), g->vars().end());
      return builder::Exists(ctx, std::move(vars),
                             builder::Not(ctx, g->child()));
    }
  }
  return f;
}

const Formula* NegationNormalForm(AstContext& ctx, const Formula* f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kRel:
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      return f;
    case FormulaKind::kNot: {
      const Formula* pushed = PushNotStep(ctx, f);
      if (pushed == f) return f;  // negated relation atom
      return NegationNormalForm(ctx, pushed);
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<const Formula*> children;
      bool changed = false;
      for (const Formula* c : f->children()) {
        const Formula* nc = NegationNormalForm(ctx, c);
        changed |= (nc != c);
        children.push_back(nc);
      }
      if (!changed) return f;
      return f->kind() == FormulaKind::kAnd
                 ? builder::And(ctx, std::move(children))
                 : builder::Or(ctx, std::move(children));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      const Formula* body = NegationNormalForm(ctx, f->child());
      if (body == f->child()) return f;
      std::vector<Symbol> vars(f->vars().begin(), f->vars().end());
      return f->kind() == FormulaKind::kExists
                 ? builder::Exists(ctx, std::move(vars), body)
                 : builder::Forall(ctx, std::move(vars), body);
    }
  }
  return f;
}

}  // namespace emcalc
