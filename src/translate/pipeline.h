// The end-to-end translation pipeline (Section 7 of the paper):
//
//   (1) eliminate universal quantifiers,
//   (2) transform to ENF (with T10),
//   (3) transform to RANF (FinD-driven ordering; T13–T16),
//   (4) generate an extended-algebra plan,
//   plus a final plan-simplification pass.
//
// Safety is checked first: only em-allowed queries are translated, and the
// pipeline is total on them — an em-allowed query that fails to translate
// is a bug (kInternal), which the test suite treats as such.
#ifndef EMCALC_TRANSLATE_PIPELINE_H_
#define EMCALC_TRANSLATE_PIPELINE_H_

#include <map>

#include "src/algebra/ast.h"
#include "src/base/status.h"
#include "src/calculus/ast.h"
#include "src/obs/compile_profile.h"
#include "src/safety/em_allowed.h"
#include "src/translate/enf.h"

namespace emcalc {

// Pipeline knobs (the ablation experiments toggle these).
struct TranslateOptions {
  // Transformation T10 (ENF): disable to reproduce GT91's transformation
  // set; translation then fails on queries like q4 (experiment E6).
  bool enable_t10 = true;
  // FinD engine configuration (reduced covers on/off: experiment E3).
  BoundOptions bound;
  // Invertible functions: maps a function symbol to its inverse's symbol.
  // Extends bd/em-allowed/translation per the [BM92a] comparison (see
  // finds/bound.h); empty by default — the paper's own setting.
  std::map<Symbol, Symbol> inverse_fns;
  // Apply literal T13/T14 disjunction distribution before RANF instead of
  // relying on context-threading in the generator (experiment E10 measures
  // the plan-size cost of the syntactic strategy).
  bool distribute_disjunctions = false;
  // Run the plan simplifier after generation.
  bool optimize = true;
  // Verify em-allowedness before translating (when false, unsafe queries
  // produce whatever failure the later passes hit; used by tests).
  bool check_safety = true;
};

// All artifacts of one translation, for inspection and experiments.
struct Translation {
  SafetyResult safety;
  const Formula* enf = nullptr;   // after steps (1)–(2)
  const Formula* ranf = nullptr;  // after step (3)
  const AlgExpr* raw_plan = nullptr;  // after step (4)
  const AlgExpr* plan = nullptr;      // after simplification
  // Per-phase wall times of this translation (the "translate" subtree of
  // the compile profile; see src/obs/compile_profile.h). Always filled.
  obs::CompilePhase profile;
  // Safety-check statistics: bd cache misses and the size of bd(body)'s
  // cover (both 0 when check_safety is off).
  size_t bd_computations = 0;
  size_t find_count = 0;
};

// Translates an em-allowed query into an equivalent extended-algebra plan.
// Errors: kNotSafe (em-allowed check or RANF ordering failed),
// kInvalidArgument (ill-formed query), kInternal (pipeline bug).
StatusOr<Translation> TranslateQuery(AstContext& ctx, const Query& q,
                                     const TranslateOptions& options = {});

}  // namespace emcalc

#endif  // EMCALC_TRANSLATE_PIPELINE_H_
