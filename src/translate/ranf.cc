#include "src/translate/ranf.h"

#include <vector>

#include "src/calculus/analysis.h"
#include "src/calculus/builder.h"
#include "src/calculus/printer.h"

namespace emcalc {
namespace {

// True if `t` is an application of an invertible function to a single
// bare variable (the shape the inverse rules support).
bool InvertibleApp(const Term* t, const SymbolSet& invertible) {
  return t->is_apply() && invertible.Contains(t->symbol()) &&
         t->args().size() == 1 && t->args()[0]->is_var();
}

// Constructive-atom checks (see header).
bool AtomOk(const Formula* f, const SymbolSet& x,
            const SymbolSet& invertible) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return true;
    case FormulaKind::kRel: {
      // A non-variable argument may use the outer context *or* variables
      // the atom itself binds through its bare-variable positions (the
      // full T16 condition): join conditions can reference the scanned
      // relation's own columns.
      SymbolSet self_bound = x.Union(DirectVars(f->terms()));
      for (const Term* t : f->terms()) {
        if (t->is_var()) continue;
        if (!TermVars(t).IsSubsetOf(self_bound)) return false;
      }
      return true;
    }
    case FormulaKind::kEq: {
      bool l_over = TermVars(f->lhs()).IsSubsetOf(x);
      bool r_over = TermVars(f->rhs()).IsSubsetOf(x);
      bool l_ok = l_over || f->lhs()->is_var() ||
                  (r_over && InvertibleApp(f->lhs(), invertible));
      bool r_ok = r_over || f->rhs()->is_var() ||
                  (l_over && InvertibleApp(f->rhs(), invertible));
      return l_ok && r_ok && (l_over || r_over);
    }
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      return TermVars(f->lhs()).IsSubsetOf(x) &&
             TermVars(f->rhs()).IsSubsetOf(x);
    default:
      return false;
  }
}

// Bottom-up worker for IsRanf. Checks RANF-ness of `f` under context `x`
// and, when it returns true, leaves f's free variables in `fv` so
// connectives reuse their children's sets. The naive formulation calls
// FreeVars on every kNot/kAnd/kOr child, re-traversing each subtree once
// per ancestor — quadratic in formula depth; this keeps the check linear,
// which matters because the stage-boundary verifier runs it on every
// compiled query.
bool IsRanfFv(const Formula* f, const SymbolSet& x,
              const SymbolSet& invertible, SymbolSet& fv) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kRel:
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      fv = FreeVars(f);
      return AtomOk(f, x, invertible);
    case FormulaKind::kNot:
      return IsRanfFv(f->child(), x, invertible, fv) && fv.IsSubsetOf(x);
    case FormulaKind::kAnd: {
      SymbolSet avail = x;
      SymbolSet acc;
      for (const Formula* c : f->children()) {
        SymbolSet cfv;
        if (!IsRanfFv(c, avail, invertible, cfv)) return false;
        avail = avail.Union(cfv);
        acc = acc.Union(cfv);
      }
      fv = std::move(acc);
      return true;
    }
    case FormulaKind::kOr: {
      SymbolSet acc;
      SymbolSet expected;
      bool first = true;
      for (const Formula* c : f->children()) {
        SymbolSet cfv;
        if (!IsRanfFv(c, x, invertible, cfv)) return false;
        SymbolSet introduced = cfv.Minus(x);
        if (first) {
          expected = std::move(introduced);
          first = false;
        } else if (introduced != expected) {
          return false;
        }
        acc = acc.Union(cfv);
      }
      fv = std::move(acc);
      return true;
    }
    case FormulaKind::kExists: {
      if (!IsRanfFv(f->child(), x, invertible, fv)) return false;
      std::vector<Symbol> bound(f->vars().begin(), f->vars().end());
      fv = fv.Minus(SymbolSet(std::move(bound)));
      return true;
    }
    case FormulaKind::kForall:
      return false;
  }
  return false;
}

}  // namespace

bool IsRanf(const Formula* f, const SymbolSet& x,
            const SymbolSet& invertible) {
  SymbolSet fv;
  return IsRanfFv(f, x, invertible, fv);
}

StatusOr<const Formula*> ToRanf(AstContext& ctx, const Formula* f,
                                const SymbolSet& x,
                                const SymbolSet& invertible) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kRel:
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq: {
      if (!AtomOk(f, x, invertible)) {
        return NotSafeError("atom not constructive under context " +
                            x.ToString(ctx.symbols()) + ": " +
                            FormulaToString(ctx, f));
      }
      return f;
    }
    case FormulaKind::kNot: {
      if (!FreeVars(f->child()).IsSubsetOf(x)) {
        return NotSafeError(
            "negation's free variables not bounded by context " +
            x.ToString(ctx.symbols()) + ": " + FormulaToString(ctx, f) +
            " (T10/T15 inapplicable)");
      }
      auto inner = ToRanf(ctx, f->child(), x, invertible);
      if (!inner.ok()) return inner;
      return builder::Not(ctx, *inner);
    }
    case FormulaKind::kAnd: {
      // Greedy FinD-driven ordering (subsumes T15 grouping): pick, in
      // input order for determinism, any remaining conjunct that is
      // translatable under the variables accumulated so far. Greedy is
      // complete here because translatability is monotone in the context.
      auto try_order = [&ctx, &x,
                        &invertible](std::vector<const Formula*> remaining)
          -> StatusOr<const Formula*> {
        std::vector<const Formula*> ordered;
        SymbolSet avail = x;
        while (!remaining.empty()) {
          bool progress = false;
          for (size_t i = 0; i < remaining.size(); ++i) {
            auto attempt = ToRanf(ctx, remaining[i], avail, invertible);
            if (!attempt.ok()) continue;
            avail = avail.Union(FreeVars(remaining[i]));
            ordered.push_back(*attempt);
            remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(i));
            progress = true;
            break;
          }
          if (!progress) {
            std::string stuck;
            for (const Formula* r : remaining) {
              if (!stuck.empty()) stuck += " ; ";
              stuck += FormulaToString(ctx, r);
            }
            return NotSafeError("cannot order conjunction under context " +
                                avail.ToString(ctx.symbols()) +
                                "; stuck on: " + stuck);
          }
        }
        return builder::And(ctx, std::move(ordered));
      };

      std::vector<const Formula*> children(f->children().begin(),
                                           f->children().end());
      auto direct = try_order(children);
      if (direct.ok()) return direct;

      // T16: a constructive atom whose function arguments and variable
      // bindings are mutually dependent with sibling conjuncts (e.g.
      // R(x, f(y)) alongside g(x) = y) cannot be ordered as-is. Flatten
      // function arguments into fresh existential variables — R(x, w) and
      // f(y) = w — which decouples the atom's bindings from its
      // conditions, and order again.
      std::vector<const Formula*> flattened;
      std::vector<Symbol> fresh;
      for (const Formula* c : children) {
        if (c->kind() != FormulaKind::kRel) {
          flattened.push_back(c);
          continue;
        }
        std::vector<const Term*> args(c->terms().begin(), c->terms().end());
        std::vector<const Formula*> extracted;
        for (const Term*& arg : args) {
          if (arg->kind() != Term::Kind::kApply) continue;
          Symbol w = ctx.symbols().Fresh("w");
          extracted.push_back(ctx.MakeEq(arg, ctx.MakeVar(w)));
          arg = ctx.MakeVar(w);
          fresh.push_back(w);
        }
        if (extracted.empty()) {
          flattened.push_back(c);
        } else {
          flattened.push_back(ctx.MakeRel(c->rel(), args));
          flattened.insert(flattened.end(), extracted.begin(),
                           extracted.end());
        }
      }
      if (fresh.empty()) return direct.status();
      auto retry = try_order(std::move(flattened));
      if (!retry.ok()) return direct.status();
      return builder::Exists(ctx, std::move(fresh), *retry);
    }
    case FormulaKind::kOr: {
      SymbolSet expected = FreeVars(f->children()[0]).Minus(x);
      std::vector<const Formula*> children;
      for (const Formula* c : f->children()) {
        if (FreeVars(c).Minus(x) != expected) {
          return NotSafeError(
              "disjuncts bind different new variables in " +
              FormulaToString(ctx, f));
        }
        auto nc = ToRanf(ctx, c, x, invertible);
        if (!nc.ok()) return nc;
        children.push_back(*nc);
      }
      return builder::Or(ctx, std::move(children));
    }
    case FormulaKind::kExists: {
      auto body = ToRanf(ctx, f->child(), x, invertible);
      if (!body.ok()) return body;
      std::vector<Symbol> vars(f->vars().begin(), f->vars().end());
      return builder::Exists(ctx, std::move(vars), *body);
    }
    case FormulaKind::kForall:
      return NotSafeError("forall survived ENF: " + FormulaToString(ctx, f));
  }
  return NotSafeError("unhandled formula kind");
}

}  // namespace emcalc
