#include "src/translate/enf.h"

#include <vector>

#include "src/calculus/builder.h"
#include "src/calculus/rewrite.h"
#include "src/safety/pushnot.h"
#include "src/safety/simplify.h"

namespace emcalc {

const Formula* EliminateForall(AstContext& ctx, const Formula* f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kRel:
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      return f;
    case FormulaKind::kNot: {
      const Formula* c = EliminateForall(ctx, f->child());
      return c == f->child() ? f : builder::Not(ctx, c);
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<const Formula*> children;
      bool changed = false;
      for (const Formula* c : f->children()) {
        const Formula* nc = EliminateForall(ctx, c);
        changed |= (nc != c);
        children.push_back(nc);
      }
      if (!changed) return f;
      return f->kind() == FormulaKind::kAnd
                 ? builder::And(ctx, std::move(children))
                 : builder::Or(ctx, std::move(children));
    }
    case FormulaKind::kExists: {
      const Formula* body = EliminateForall(ctx, f->child());
      if (body == f->child()) return f;
      std::vector<Symbol> vars(f->vars().begin(), f->vars().end());
      return builder::Exists(ctx, std::move(vars), body);
    }
    case FormulaKind::kForall: {
      const Formula* body = EliminateForall(ctx, f->child());
      std::vector<Symbol> vars(f->vars().begin(), f->vars().end());
      return builder::Not(
          ctx, builder::Exists(ctx, std::move(vars),
                               builder::Not(ctx, body)));
    }
  }
  return f;
}

namespace {

// Bottom-up negation normalization implementing the ENF policy.
class EnfRewriter {
 public:
  EnfRewriter(AstContext& ctx, const EnfOptions& options)
      : ctx_(ctx), options_(options), bound_(ctx, options.bound) {}

  const Formula* Rewrite(const Formula* f) {
    switch (f->kind()) {
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
      case FormulaKind::kRel:
      case FormulaKind::kEq:
      case FormulaKind::kNeq:
      case FormulaKind::kLess:
      case FormulaKind::kLessEq:
        return f;
      case FormulaKind::kNot:
        return RewriteNot(f);
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        std::vector<const Formula*> children;
        for (const Formula* c : f->children()) {
          children.push_back(Rewrite(c));
        }
        return f->kind() == FormulaKind::kAnd
                   ? builder::And(ctx_, std::move(children))
                   : builder::Or(ctx_, std::move(children));
      }
      case FormulaKind::kExists: {
        const Formula* body = Rewrite(f->child());
        std::vector<Symbol> vars(f->vars().begin(), f->vars().end());
        return builder::Exists(ctx_, std::move(vars), body);
      }
      case FormulaKind::kForall:
        // EliminateForall runs first; nothing should remain.
        return Rewrite(EliminateForall(ctx_, f));
    }
    return f;
  }

 private:
  const Formula* RewriteNot(const Formula* f) {
    const Formula* child = Rewrite(f->child());
    const Formula* nf =
        child == f->child() ? f : builder::Not(ctx_, child);
    if (nf->kind() != FormulaKind::kNot) return Rewrite(nf);
    child = nf->child();
    switch (child->kind()) {
      case FormulaKind::kRel:
      case FormulaKind::kExists:
        return nf;  // handled by the difference operator (T15)
      case FormulaKind::kEq:
      case FormulaKind::kNeq:
      case FormulaKind::kLess:
      case FormulaKind::kLessEq:
      case FormulaKind::kNot:
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
        return Rewrite(PushNotStep(ctx_, nf));
      case FormulaKind::kOr:
        // GT91 move: not (a or b) -> not a and not b, always.
        return Rewrite(PushNotStep(ctx_, nf));
      case FormulaKind::kAnd: {
        // T10: push not over a conjunction only when doing so exposes
        // bounding information (the pushed form has a non-empty bd).
        if (!options_.enable_t10) return nf;
        const Formula* pushed = PushNotStep(ctx_, nf);
        if (!bound_.Bound(pushed).empty()) return Rewrite(pushed);
        return nf;
      }
      case FormulaKind::kForall:
        return Rewrite(PushNotStep(ctx_, nf));
    }
    return nf;
  }

  AstContext& ctx_;
  EnfOptions options_;
  BoundAnalyzer bound_;
};

}  // namespace

const Formula* ToEnf(AstContext& ctx, const Formula* f,
                     const EnfOptions& options) {
  const Formula* g = Rectify(ctx, f);
  g = Simplify(ctx, g);
  g = EliminateForall(ctx, g);
  g = Simplify(ctx, g);
  EnfRewriter rewriter(ctx, options);
  g = rewriter.Rewrite(g);
  return Simplify(ctx, g);
}

bool IsEnf(const Formula* f) {
  if (!IsSimplified(f)) return false;
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kRel:
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      return true;
    case FormulaKind::kForall:
      return false;
    case FormulaKind::kNot: {
      FormulaKind ck = f->child()->kind();
      if (ck != FormulaKind::kRel && ck != FormulaKind::kExists &&
          ck != FormulaKind::kAnd) {
        return false;
      }
      return IsEnf(f->child());
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      for (const Formula* c : f->children()) {
        if (!IsEnf(c)) return false;
      }
      return true;
    }
    case FormulaKind::kExists:
      return IsEnf(f->child());
  }
  return true;
}

}  // namespace emcalc
