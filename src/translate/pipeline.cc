#include "src/translate/pipeline.h"

#include "src/algebra/optimizer.h"
#include "src/calculus/analysis.h"
#include "src/calculus/rewrite.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/translate/algebra_gen.h"
#include "src/translate/distribute.h"
#include "src/translate/ranf.h"
#include "src/verify/verify.h"

namespace emcalc {

StatusOr<Translation> TranslateQuery(AstContext& ctx, const Query& q,
                                     const TranslateOptions& options) {
  obs::Span span("compile.translate");
  uint64_t start_ns = obs::NowNs();
  Translation out;
  out.profile.name = "translate";

  // Shadowed quantifiers are legal calculus; rename them apart so the
  // remaining passes (and the well-formedness check) can assume distinct
  // bound variables.
  Query query = q;
  {
    obs::PhaseTimer timer(&out.profile, "rectify", "compile.rectify");
    query.body = Rectify(ctx, q.body);
    if (Status s = CheckWellFormed(query, ctx.symbols()); !s.ok()) return s;
  }

  // Effective bd options: fold declared inverses into the FinD analysis.
  BoundOptions bound = options.bound;
  for (const auto& [fn, inv] : options.inverse_fns) {
    bound.invertible_fns.Insert(fn);
  }

  {
    obs::PhaseTimer timer(&out.profile, "safety", "compile.safety");
    if (options.check_safety) {
      EmAllowedChecker checker(ctx, bound);
      out.safety = checker.Check(query);
      out.bd_computations = checker.bound().computations();
      if (out.safety.em_allowed) {
        out.find_count = checker.bound().Bound(query.body).size();
      }
      timer.SetDetail(
          (out.safety.em_allowed ? std::string("em-allowed")
                                 : std::string("rejected")) +
          " bd_computations=" + std::to_string(out.bd_computations) +
          " finds=" + std::to_string(out.find_count));
      if (!out.safety.em_allowed) {
        return NotSafeError("query is not em-allowed: " + out.safety.reason);
      }
    } else {
      out.safety = SafetyResult::Accept();
      out.safety.reason = "(safety check skipped)";
      timer.SetDetail("skipped");
    }
  }

  {
    obs::PhaseTimer timer(&out.profile, "enf", "compile.enf");
    EnfOptions enf_options;
    enf_options.enable_t10 = options.enable_t10;
    enf_options.bound = bound;
    out.enf = ToEnf(ctx, query.body, enf_options);
    timer.SetDetail("size=" + std::to_string(FormulaSize(out.enf)));
  }

  // Stage boundary 2: the rectified + safety-checked formula in ENF.
  if (verify::Enabled()) {
    verify::VerifyReport vr =
        verify::VerifySafetyFormula(ctx, out.enf, FreeVars(query.body));
    if (!vr.ok()) return vr.ToStatus();
  }

  const Formula* pre_ranf = out.enf;
  if (options.distribute_disjunctions) {
    obs::PhaseTimer timer(&out.profile, "distribute", "compile.distribute");
    pre_ranf = DistributeDisjunctions(ctx, pre_ranf);
    timer.SetDetail("size=" + std::to_string(FormulaSize(pre_ranf)));
  }

  {
    obs::PhaseTimer timer(&out.profile, "ranf", "compile.ranf");
    auto ranf = ToRanf(ctx, pre_ranf, SymbolSet{}, bound.invertible_fns);
    if (!ranf.ok()) return ranf.status();
    out.ranf = *ranf;
    timer.SetDetail("size=" + std::to_string(FormulaSize(out.ranf)));
  }

  {
    obs::PhaseTimer timer(&out.profile, "algebra_gen", "compile.algebra_gen");
    AlgebraGenerator generator(ctx, options.inverse_fns);
    auto plan = generator.Translate(out.ranf, query.head);
    if (!plan.ok()) return plan.status();
    out.raw_plan = *plan;
    timer.SetDetail("nodes=" + std::to_string(out.raw_plan->NodeCount()));
  }

  // Stage boundary 3: the RANF formula and the raw translated plan.
  if (verify::Enabled()) {
    verify::AlgebraOptions opts;
    opts.expected_arity = static_cast<int>(query.head.size());
    verify::VerifyReport vr =
        verify::VerifyRanfAlgebra(ctx, out.ranf, SymbolSet{},
                                  bound.invertible_fns, out.raw_plan, opts);
    if (!vr.ok()) return vr.ToStatus();
  }

  if (options.optimize) {
    obs::PhaseTimer timer(&out.profile, "optimize", "compile.optimize");
    AlgebraFactory factory(ctx);
    out.plan = OptimizePlan(factory, out.raw_plan);
    timer.SetDetail("nodes " + std::to_string(out.raw_plan->NodeCount()) +
                    "->" + std::to_string(out.plan->NodeCount()));
  } else {
    out.plan = out.raw_plan;
  }

  // Stage boundary 4: the optimized plan (the optimizer must preserve
  // every structural invariant the raw plan had).
  if (options.optimize && verify::Enabled()) {
    verify::AlgebraOptions opts;
    opts.stage = verify::Stage::kOptimizedAlgebra;
    opts.expected_arity = static_cast<int>(query.head.size());
    verify::VerifyReport vr = verify::VerifyAlgebra(ctx, out.plan, opts);
    if (!vr.ok()) return vr.ToStatus();
  }

  out.profile.wall_ns = obs::NowNs() - start_ns;

  static obs::Counter& translations =
      obs::MetricsRegistry::Instance().GetCounter("translate.queries");
  translations.Add();
  return out;
}

}  // namespace emcalc
