#include "src/translate/pipeline.h"

#include "src/algebra/optimizer.h"
#include "src/calculus/rewrite.h"
#include "src/calculus/analysis.h"
#include "src/translate/algebra_gen.h"
#include "src/translate/distribute.h"
#include "src/translate/ranf.h"

namespace emcalc {

StatusOr<Translation> TranslateQuery(AstContext& ctx, const Query& q,
                                     const TranslateOptions& options) {
  // Shadowed quantifiers are legal calculus; rename them apart so the
  // remaining passes (and the well-formedness check) can assume distinct
  // bound variables.
  Query query = q;
  query.body = Rectify(ctx, q.body);
  if (Status s = CheckWellFormed(query, ctx.symbols()); !s.ok()) return s;

  // Effective bd options: fold declared inverses into the FinD analysis.
  BoundOptions bound = options.bound;
  for (const auto& [fn, inv] : options.inverse_fns) {
    bound.invertible_fns.Insert(fn);
  }

  Translation out;
  if (options.check_safety) {
    out.safety = CheckEmAllowed(ctx, query, bound);
    if (!out.safety.em_allowed) {
      return NotSafeError("query is not em-allowed: " + out.safety.reason);
    }
  } else {
    out.safety = SafetyResult{true, "(safety check skipped)"};
  }

  EnfOptions enf_options;
  enf_options.enable_t10 = options.enable_t10;
  enf_options.bound = bound;
  out.enf = ToEnf(ctx, query.body, enf_options);

  const Formula* pre_ranf = out.enf;
  if (options.distribute_disjunctions) {
    pre_ranf = DistributeDisjunctions(ctx, pre_ranf);
  }
  auto ranf = ToRanf(ctx, pre_ranf, SymbolSet{}, bound.invertible_fns);
  if (!ranf.ok()) return ranf.status();
  out.ranf = *ranf;

  AlgebraGenerator generator(ctx, options.inverse_fns);
  auto plan = generator.Translate(out.ranf, query.head);
  if (!plan.ok()) return plan.status();
  out.raw_plan = *plan;

  if (options.optimize) {
    AlgebraFactory factory(ctx);
    out.plan = OptimizePlan(factory, out.raw_plan);
  } else {
    out.plan = out.raw_plan;
  }
  return out;
}

}  // namespace emcalc
