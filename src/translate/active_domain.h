// The active-domain baseline translation in the style of [AB88] / [BM92a]
// (Section 2 of the paper). Every variable ranges over the unary relation
// adom^k = term^k(adom(q, I)); subformulas translate compositionally into
// products with adom^k, selections, joins on shared variables, unions, and
// differences against adom^k-cubes.
//
// This computes the correct embedded semantics for *any* query once k is
// large enough (k = CountApplications is always sufficient), em-allowed or
// not — but at the cost the paper criticizes: e.g. it translates
// {x,y,z | R(x,y,z) and not S(y,z)} through an adom construction where the
// direct translation produces R - project(..., join(..., R, S)).
// Experiment E2 measures the difference.
//
// Evaluation: the emitted kAdom nodes lower to AdomScan operators in the
// physical execution layer (src/exec/lower.h), which computes the term
// closure under the plan's adom budget at run time.
#ifndef EMCALC_TRANSLATE_ACTIVE_DOMAIN_H_
#define EMCALC_TRANSLATE_ACTIVE_DOMAIN_H_

#include "src/algebra/ast.h"
#include "src/base/status.h"
#include "src/calculus/ast.h"

namespace emcalc {

// Baseline-translation knobs.
struct ActiveDomainOptions {
  // Closure level for the adom relation; -1 = CountApplications(body).
  int level = -1;
  // Run the plan simplifier on the result.
  bool optimize = true;
};

// Translates `q` into a plan built over adom^k. Requires only
// well-formedness, not em-allowedness (answers for non-em-DI queries are
// the level-k embedded semantics).
StatusOr<const AlgExpr*> TranslateActiveDomain(
    AstContext& ctx, const Query& q, const ActiveDomainOptions& options = {});

}  // namespace emcalc

#endif  // EMCALC_TRANSLATE_ACTIVE_DOMAIN_H_
