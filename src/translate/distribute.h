// Literal T13/T14 distribution (GT91's syntactic strategy): pull
// disjunctions out of conjunctions and push existentials into disjuncts,
//
//   C and (a or b)   ->  (C and a) or (C and b)          (T13)
//   exists X (a or b) -> exists X (a) or exists X (b)    (T14 companion)
//
// until no disjunction sits under a conjunction or quantifier. The default
// pipeline instead *threads* the context plan into disjunction branches,
// which is semantically equivalent but shares the context subplan; this
// pass exists to measure that trade-off (experiment E10) and to mirror the
// paper's presentation, where T13 duplicates the bounding conjuncts into
// each branch.
#ifndef EMCALC_TRANSLATE_DISTRIBUTE_H_
#define EMCALC_TRANSLATE_DISTRIBUTE_H_

#include "src/calculus/ast.h"

namespace emcalc {

// Distributes disjunctions upward through conjunctions and existentials.
// Input should be in ENF; the result is equivalent under embedded
// semantics. Worst case is exponential in the number of nested
// disjunctions (the cost T13 pays and context-threading avoids).
const Formula* DistributeDisjunctions(AstContext& ctx, const Formula* f);

}  // namespace emcalc

#endif  // EMCALC_TRANSLATE_DISTRIBUTE_H_
