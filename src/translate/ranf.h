// Step (3) of the translation: RANF (Relational Algebra Normal Form).
//
// A formula is RANF for a context X (the variables already bound to finite
// column sets by the time the subformula is evaluated) when every part can
// be mapped directly to an algebra operator:
//
//   - relation atoms are *constructive*: argument terms are either bare
//     variables (which the atom binds from the relation's columns) or terms
//     entirely over X (compiled to join conditions). Transformation T16
//     ensures atoms like R(f(x), y) are ordered after conjuncts binding x;
//   - equalities have at least one side over X, the other side over X
//     (selection) or a bare variable (binding via extended projection);
//   - inequalities are entirely over X (selection) — t1 != t2 is negative;
//   - `not psi` has free(psi) inside X (difference) — transformation T15
//     groups/orders the bounding conjuncts before the negation;
//   - disjuncts of an `or` all bind exactly the same new variables (union
//     of union-compatible branches);
//   - conjunctions are *ordered*: each conjunct is RANF for X extended
//     with the free variables of the conjuncts before it.
//
// ToRanf reorders conjunctions greedily, choosing at each step a conjunct
// that is RANF for the variables accumulated so far — this is the paper's
// FinD-driven ordering (the fd-closure sorting of [BB79] it cites) and
// subsumes the grouping transformations T15/T16. Context is threaded into
// disjunctions and existentials by the generator rather than by literal
// syntactic distribution (T13/T14), which is semantically equivalent and
// avoids duplicating the context subplan.
#ifndef EMCALC_TRANSLATE_RANF_H_
#define EMCALC_TRANSLATE_RANF_H_

#include "src/base/status.h"
#include "src/base/symbol_set.h"
#include "src/calculus/ast.h"

namespace emcalc {

// Reorders `f` (which should be in ENF) into RANF for context X.
// Fails with kNotSafe when no ordering exists (e.g. ENF ran with T10
// disabled on a query that needs it). `invertible` lists function symbols
// with registered inverses: for those, g(x) = t may *bind* x from t (the
// [BM92a]-style extension; see finds/bound.h).
StatusOr<const Formula*> ToRanf(AstContext& ctx, const Formula* f,
                                const SymbolSet& context,
                                const SymbolSet& invertible = SymbolSet{});

// Checks the RANF conditions for `f` under context X.
bool IsRanf(const Formula* f, const SymbolSet& context,
            const SymbolSet& invertible = SymbolSet{});

}  // namespace emcalc

#endif  // EMCALC_TRANSLATE_RANF_H_
