#include "src/translate/algebra_gen.h"

#include <algorithm>
#include <string>

#include "src/base/symbol_set.h"
#include "src/calculus/analysis.h"
#include "src/calculus/printer.h"

namespace emcalc {
namespace {

// Index of `v` in `cols`, or -1.
int ColumnOf(const std::vector<Symbol>& cols, Symbol v) {
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == v) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

StatusOr<const ScalarExpr*> AlgebraGenerator::CompileTerm(
    const Term* t, const std::vector<Symbol>& cols) {
  ExprFactory& ef = factory_.exprs();
  switch (t->kind()) {
    case Term::Kind::kVar: {
      int col = ColumnOf(cols, t->symbol());
      if (col < 0) {
        return InternalError("unbound variable in term compilation: " +
                             std::string(factory_.ctx().symbols().Name(
                                 t->symbol())));
      }
      return ef.Col(col);
    }
    case Term::Kind::kConst:
      return ef.Const(t->const_id());
    case Term::Kind::kApply: {
      std::vector<const ScalarExpr*> args;
      args.reserve(t->args().size());
      for (const Term* a : t->args()) {
        auto e = CompileTerm(a, cols);
        if (!e.ok()) return e;
        args.push_back(*e);
      }
      return ef.Apply(t->symbol(), args);
    }
  }
  return InternalError("unhandled term kind");
}

StatusOr<BoundPlan> AlgebraGenerator::ApplyRel(const BoundPlan& input,
                                               const Formula* f) {
  ExprFactory& ef = factory_.exprs();
  int split = static_cast<int>(input.cols.size());
  int rel_arity = static_cast<int>(f->terms().size());
  const AlgExpr* rel = factory_.Rel(f->rel(), rel_arity);

  // Walk the atom's arguments over the concatenated schema
  // (input.cols ++ relation columns). Pass 1 handles bare-variable
  // positions, collecting join conditions and the first binding column of
  // each new variable; pass 2 compiles constant/function arguments, which
  // may reference both the context columns and the variables this very
  // atom binds (the full T16 condition — e.g. R(f(x), x) compiles the
  // condition f(@2') == @1' over R's own columns).
  std::vector<AlgCondition> conds;
  std::vector<Symbol> new_vars;
  std::vector<int> new_var_col;  // column (in combined schema) binding it
  std::vector<Symbol> ext_cols = input.cols;  // combined-schema var map
  // Non-binding positions get a sentinel no real variable can equal.
  ext_cols.resize(static_cast<size_t>(split + rel_arity),
                  Symbol{0xffffffffu});
  for (int i = 0; i < rel_arity; ++i) {
    const Term* t = f->terms()[static_cast<size_t>(i)];
    if (!t->is_var()) continue;
    int here = split + i;
    Symbol v = t->symbol();
    int bound = ColumnOf(input.cols, v);
    if (bound >= 0) {
      conds.push_back({ef.Col(bound), AlgCompareOp::kEq, ef.Col(here)});
      continue;
    }
    int first = -1;
    for (size_t j = 0; j < new_vars.size(); ++j) {
      if (new_vars[j] == v) first = new_var_col[j];
    }
    if (first >= 0) {
      conds.push_back({ef.Col(first), AlgCompareOp::kEq, ef.Col(here)});
    } else {
      new_vars.push_back(v);
      new_var_col.push_back(here);
      ext_cols[static_cast<size_t>(here)] = v;
    }
  }
  for (int i = 0; i < rel_arity; ++i) {
    const Term* t = f->terms()[static_cast<size_t>(i)];
    if (t->is_var()) continue;
    auto e = CompileTerm(t, ext_cols);
    if (!e.ok()) return e.status();
    conds.push_back({*e, AlgCompareOp::kEq, ef.Col(split + i)});
  }

  const AlgExpr* joined = factory_.Join(std::move(conds), input.plan, rel);

  // Keep the input columns and one column per new variable.
  std::vector<const ScalarExpr*> outputs;
  std::vector<Symbol> out_cols = input.cols;
  for (int i = 0; i < split; ++i) outputs.push_back(ef.Col(i));
  for (size_t j = 0; j < new_vars.size(); ++j) {
    outputs.push_back(ef.Col(new_var_col[j]));
    out_cols.push_back(new_vars[j]);
  }
  return BoundPlan{factory_.Project(std::move(outputs), joined),
                   std::move(out_cols)};
}

StatusOr<BoundPlan> AlgebraGenerator::ApplyEq(const BoundPlan& input,
                                              const Formula* f) {
  ExprFactory& ef = factory_.exprs();
  SymbolSet bound(input.cols);
  bool l_over = TermVars(f->lhs()).IsSubsetOf(bound);
  bool r_over = TermVars(f->rhs()).IsSubsetOf(bound);
  if (l_over && r_over) {
    auto l = CompileTerm(f->lhs(), input.cols);
    if (!l.ok()) return l.status();
    auto r = CompileTerm(f->rhs(), input.cols);
    if (!r.ok()) return r.status();
    return BoundPlan{factory_.Select({{*l, AlgCompareOp::kEq, *r}}, input.plan),
                     input.cols};
  }
  // One side binds a fresh variable via extended projection.
  const Term* var_side = nullptr;
  const Term* expr_side = nullptr;
  if (r_over && f->lhs()->is_var()) {
    var_side = f->lhs();
    expr_side = f->rhs();
  } else if (l_over && f->rhs()->is_var()) {
    var_side = f->rhs();
    expr_side = f->lhs();
  } else {
    // Declared inverse: g(x) = t binds x := ginv(t), checked by g(x) == t.
    auto invertible = [this](const Term* t) {
      return t->is_apply() && inverses_.count(t->symbol()) > 0 &&
             t->args().size() == 1 && t->args()[0]->is_var();
    };
    const Term* app = nullptr;
    const Term* other = nullptr;
    if (r_over && invertible(f->lhs())) {
      app = f->lhs();
      other = f->rhs();
    } else if (l_over && invertible(f->rhs())) {
      app = f->rhs();
      other = f->lhs();
    }
    if (app != nullptr) {
      auto t_expr = CompileTerm(other, input.cols);
      if (!t_expr.ok()) return t_expr.status();
      std::vector<const ScalarExpr*> outputs;
      for (size_t i = 0; i < input.cols.size(); ++i) {
        outputs.push_back(ef.Col(static_cast<int>(i)));
      }
      Symbol inv = inverses_.at(app->symbol());
      outputs.push_back(ef.Apply(inv, std::vector<const ScalarExpr*>{
                                          *t_expr}));
      std::vector<Symbol> out_cols = input.cols;
      Symbol x = app->args()[0]->symbol();
      out_cols.push_back(x);
      const AlgExpr* bound_plan =
          factory_.Project(std::move(outputs), input.plan);
      // Membership check g(x) == t (g may not be surjective): the term t
      // keeps its column indices, x is the appended last column.
      int x_col = static_cast<int>(out_cols.size()) - 1;
      const ScalarExpr* gx = ef.Apply(
          app->symbol(), std::vector<const ScalarExpr*>{ef.Col(x_col)});
      auto t_again = CompileTerm(other, input.cols);
      if (!t_again.ok()) return t_again.status();
      return BoundPlan{
          factory_.Select({{gx, AlgCompareOp::kEq, *t_again}}, bound_plan),
          std::move(out_cols)};
    }
    return InternalError("equality not in RANF: " +
                         FormulaToString(factory_.ctx(), f));
  }
  auto e = CompileTerm(expr_side, input.cols);
  if (!e.ok()) return e.status();
  std::vector<const ScalarExpr*> outputs;
  for (size_t i = 0; i < input.cols.size(); ++i) {
    outputs.push_back(ef.Col(static_cast<int>(i)));
  }
  outputs.push_back(*e);
  std::vector<Symbol> out_cols = input.cols;
  out_cols.push_back(var_side->symbol());
  return BoundPlan{factory_.Project(std::move(outputs), input.plan),
                   std::move(out_cols)};
}

StatusOr<BoundPlan> AlgebraGenerator::ApplyOr(const BoundPlan& input,
                                              const Formula* f) {
  ExprFactory& ef = factory_.exprs();
  // Fix a common output column order: the input columns followed by the
  // new variables (sorted for determinism).
  SymbolSet bound(input.cols);
  SymbolSet new_vars = FreeVars(f).Minus(bound);
  std::vector<Symbol> out_cols = input.cols;
  out_cols.insert(out_cols.end(), new_vars.begin(), new_vars.end());

  const AlgExpr* acc = nullptr;
  for (const Formula* d : f->children()) {
    auto branch = Apply(input, d);
    if (!branch.ok()) return branch;
    // Project the branch to the common order. Every new variable must be
    // bound by the branch (RANF's union-compatibility condition).
    std::vector<const ScalarExpr*> outputs;
    for (Symbol v : out_cols) {
      int col = ColumnOf(branch->cols, v);
      if (col < 0) {
        return InternalError("disjunct does not bind " +
                             std::string(factory_.ctx().symbols().Name(v)) +
                             ": " + FormulaToString(factory_.ctx(), d));
      }
      outputs.push_back(ef.Col(col));
    }
    const AlgExpr* projected = factory_.Project(std::move(outputs),
                                                branch->plan);
    acc = acc == nullptr ? projected : factory_.Union(acc, projected);
  }
  return BoundPlan{acc, std::move(out_cols)};
}

StatusOr<BoundPlan> AlgebraGenerator::Apply(const BoundPlan& input,
                                            const Formula* f) {
  ExprFactory& ef = factory_.exprs();
  switch (f->kind()) {
    case FormulaKind::kTrue:
      return input;
    case FormulaKind::kFalse:
      return BoundPlan{
          factory_.Empty(static_cast<int>(input.cols.size())), input.cols};
    case FormulaKind::kRel:
      return ApplyRel(input, f);
    case FormulaKind::kEq:
      return ApplyEq(input, f);
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq: {
      auto l = CompileTerm(f->lhs(), input.cols);
      if (!l.ok()) return l.status();
      auto r = CompileTerm(f->rhs(), input.cols);
      if (!r.ok()) return r.status();
      AlgCompareOp op = f->kind() == FormulaKind::kNeq ? AlgCompareOp::kNe
                        : f->kind() == FormulaKind::kLess
                            ? AlgCompareOp::kLt
                            : AlgCompareOp::kLe;
      return BoundPlan{factory_.Select({{*l, op, *r}}, input.plan),
                       input.cols};
    }
    case FormulaKind::kNot: {
      auto pos = Apply(input, f->child());
      if (!pos.ok()) return pos;
      if (pos->cols != input.cols) {
        return InternalError("negated subformula bound new variables: " +
                             FormulaToString(factory_.ctx(), f));
      }
      return BoundPlan{factory_.Diff(input.plan, pos->plan), input.cols};
    }
    case FormulaKind::kAnd: {
      BoundPlan acc = input;
      for (const Formula* c : f->children()) {
        auto next = Apply(acc, c);
        if (!next.ok()) return next;
        acc = std::move(next).value();
      }
      return acc;
    }
    case FormulaKind::kOr:
      return ApplyOr(input, f);
    case FormulaKind::kExists: {
      auto inner = Apply(input, f->child());
      if (!inner.ok()) return inner;
      SymbolSet drop(std::vector<Symbol>(f->vars().begin(), f->vars().end()));
      std::vector<const ScalarExpr*> outputs;
      std::vector<Symbol> out_cols;
      for (size_t i = 0; i < inner->cols.size(); ++i) {
        if (drop.Contains(inner->cols[i])) continue;
        outputs.push_back(ef.Col(static_cast<int>(i)));
        out_cols.push_back(inner->cols[i]);
      }
      return BoundPlan{factory_.Project(std::move(outputs), inner->plan),
                       std::move(out_cols)};
    }
    case FormulaKind::kForall:
      return InternalError("forall reached the algebra generator");
  }
  return InternalError("unhandled formula kind in generator");
}

StatusOr<const AlgExpr*> AlgebraGenerator::Translate(
    const Formula* body, const std::vector<Symbol>& head) {
  // A body that simplified to a constant cannot bind any head variable;
  // the only sound constant plans are the empty relation (false) and, for
  // boolean queries, unit (true).
  if (body->kind() == FormulaKind::kFalse) {
    return factory_.Empty(static_cast<int>(head.size()));
  }
  if (body->kind() == FormulaKind::kTrue && !head.empty()) {
    return InternalError("constant-true body with a non-empty head");
  }
  BoundPlan start{factory_.Unit(), {}};
  auto result = Apply(start, body);
  if (!result.ok()) return result.status();
  std::vector<const ScalarExpr*> outputs;
  for (Symbol v : head) {
    int col = ColumnOf(result->cols, v);
    if (col < 0) {
      return InternalError(
          "head variable not bound by body: " +
          std::string(factory_.ctx().symbols().Name(v)));
    }
    outputs.push_back(factory_.exprs().Col(col));
  }
  return factory_.Project(std::move(outputs), result->plan);
}

}  // namespace emcalc
