#include "src/translate/active_domain.h"

#include <vector>

#include "src/algebra/optimizer.h"
#include "src/base/symbol_set.h"
#include "src/calculus/analysis.h"
#include "src/calculus/printer.h"
#include "src/calculus/rewrite.h"
#include "src/safety/simplify.h"
#include "src/translate/enf.h"

namespace emcalc {
namespace {

// Compositional translator: every subformula yields a plan whose columns
// are exactly its free variables, in SymbolSet (sorted) order.
class AdomTranslator {
 public:
  AdomTranslator(AstContext& ctx, const AlgExpr* adom)
      : ctx_(ctx), factory_(ctx), adom_(adom) {}

  AlgebraFactory& factory() { return factory_; }

  // The adom^k cube over `vars` (in sorted order). Arity 0 => unit.
  const AlgExpr* Cube(const SymbolSet& vars) {
    const AlgExpr* acc = factory_.Unit();
    for (size_t i = 0; i < vars.size(); ++i) {
      acc = factory_.Join({}, acc, adom_);
    }
    return acc;
  }

  StatusOr<const ScalarExpr*> CompileTerm(const Term* t,
                                          const SymbolSet& vars) {
    ExprFactory& ef = factory_.exprs();
    switch (t->kind()) {
      case Term::Kind::kVar: {
        auto it = std::lower_bound(vars.begin(), vars.end(), t->symbol());
        if (it == vars.end() || *it != t->symbol()) {
          return InternalError("variable outside column set");
        }
        return ef.Col(static_cast<int>(it - vars.begin()));
      }
      case Term::Kind::kConst:
        return ef.Const(t->const_id());
      case Term::Kind::kApply: {
        std::vector<const ScalarExpr*> args;
        for (const Term* a : t->args()) {
          auto e = CompileTerm(a, vars);
          if (!e.ok()) return e;
          args.push_back(*e);
        }
        return ef.Apply(t->symbol(), args);
      }
    }
    return InternalError("unhandled term kind");
  }

  // Plan whose columns are FreeVars(f) in sorted order.
  StatusOr<const AlgExpr*> Translate(const Formula* f) {
    SymbolSet vars = FreeVars(f);
    ExprFactory& ef = factory_.exprs();
    switch (f->kind()) {
      case FormulaKind::kTrue:
        return factory_.Unit();
      case FormulaKind::kFalse:
        return factory_.Empty(0);
      case FormulaKind::kRel: {
        const AlgExpr* rel =
            factory_.Rel(f->rel(), static_cast<int>(f->terms().size()));
        // Positive atoms whose arguments are distinct variables translate
        // to a plain projection of the relation — this mirrors the paper's
        // rendition of the [AB88] translation, where the adom construction
        // appears only under negation (and, in our extension, wherever a
        // scalar function forces a value enumeration).
        bool simple = true;
        {
          SymbolSet seen;
          for (const Term* t : f->terms()) {
            if (!t->is_var() || seen.Contains(t->symbol())) {
              simple = false;
              break;
            }
            seen.Insert(t->symbol());
          }
        }
        if (simple) {
          std::vector<const ScalarExpr*> outputs;
          for (Symbol v : vars) {
            for (size_t i = 0; i < f->terms().size(); ++i) {
              if (f->terms()[i]->symbol() == v) {
                outputs.push_back(ef.Col(static_cast<int>(i)));
                break;
              }
            }
          }
          return factory_.Project(std::move(outputs), rel);
        }
        // General case (repeated variables or function arguments):
        // join(conds, adom^n, R) and project the variable columns.
        const AlgExpr* cube = Cube(vars);
        int split = static_cast<int>(vars.size());
        std::vector<AlgCondition> conds;
        for (size_t i = 0; i < f->terms().size(); ++i) {
          auto e = CompileTerm(f->terms()[i], vars);
          if (!e.ok()) return e.status();
          conds.push_back(
              {*e, AlgCompareOp::kEq, ef.Col(split + static_cast<int>(i))});
        }
        const AlgExpr* joined = factory_.Join(std::move(conds), cube, rel);
        std::vector<const ScalarExpr*> outputs;
        for (int i = 0; i < split; ++i) outputs.push_back(ef.Col(i));
        return factory_.Project(std::move(outputs), joined);
      }
      case FormulaKind::kEq:
      case FormulaKind::kNeq:
      case FormulaKind::kLess:
      case FormulaKind::kLessEq: {
        const AlgExpr* cube = Cube(vars);
        auto l = CompileTerm(f->lhs(), vars);
        if (!l.ok()) return l.status();
        auto r = CompileTerm(f->rhs(), vars);
        if (!r.ok()) return r.status();
        AlgCompareOp op = AlgCompareOp::kEq;
        switch (f->kind()) {
          case FormulaKind::kNeq:
            op = AlgCompareOp::kNe;
            break;
          case FormulaKind::kLess:
            op = AlgCompareOp::kLt;
            break;
          case FormulaKind::kLessEq:
            op = AlgCompareOp::kLe;
            break;
          default:
            break;
        }
        return factory_.Select({{*l, op, *r}}, cube);
      }
      case FormulaKind::kNot: {
        auto inner = Translate(f->child());
        if (!inner.ok()) return inner;
        return factory_.Diff(Cube(vars), *inner);
      }
      case FormulaKind::kAnd: {
        const AlgExpr* acc = nullptr;
        SymbolSet acc_vars;
        for (const Formula* c : f->children()) {
          auto next = Translate(c);
          if (!next.ok()) return next;
          if (acc == nullptr) {
            acc = *next;
            acc_vars = FreeVars(c);
            continue;
          }
          auto joined = NaturalJoin(acc, acc_vars, *next, FreeVars(c));
          acc = joined.first;
          acc_vars = joined.second;
        }
        return acc;
      }
      case FormulaKind::kOr: {
        // Pad each disjunct to the union variable set with adom columns.
        const AlgExpr* acc = nullptr;
        for (const Formula* c : f->children()) {
          auto branch = Translate(c);
          if (!branch.ok()) return branch;
          const AlgExpr* padded = Pad(*branch, FreeVars(c), vars);
          acc = acc == nullptr ? padded : factory_.Union(acc, padded);
        }
        return acc;
      }
      case FormulaKind::kExists: {
        auto inner = Translate(f->child());
        if (!inner.ok()) return inner;
        SymbolSet inner_vars = FreeVars(f->child());
        std::vector<const ScalarExpr*> outputs;
        int i = 0;
        SymbolSet drop(std::vector<Symbol>(f->vars().begin(),
                                           f->vars().end()));
        for (Symbol v : inner_vars) {
          if (!drop.Contains(v)) outputs.push_back(ef.Col(i));
          ++i;
        }
        return factory_.Project(std::move(outputs), *inner);
      }
      case FormulaKind::kForall:
        return InternalError("forall must be eliminated before baseline "
                             "translation");
    }
    return InternalError("unhandled formula kind");
  }

  // Public padding entry (used for the final head projection).
  const AlgExpr* PadTo(const AlgExpr* plan, const SymbolSet& have,
                       const SymbolSet& want) {
    if (have == want) return plan;
    return Pad(plan, have, want);
  }

 private:
  // Natural join of plans with sorted variable columns; returns the joined
  // plan projected to the sorted union of variables.
  std::pair<const AlgExpr*, SymbolSet> NaturalJoin(const AlgExpr* left,
                                                   const SymbolSet& lvars,
                                                   const AlgExpr* right,
                                                   const SymbolSet& rvars) {
    ExprFactory& ef = factory_.exprs();
    std::vector<AlgCondition> conds;
    int lsize = static_cast<int>(lvars.size());
    {
      int ri = 0;
      for (Symbol v : rvars) {
        auto it = std::lower_bound(lvars.begin(), lvars.end(), v);
        if (it != lvars.end() && *it == v) {
          conds.push_back({ef.Col(static_cast<int>(it - lvars.begin())),
                           AlgCompareOp::kEq, ef.Col(lsize + ri)});
        }
        ++ri;
      }
    }
    const AlgExpr* joined = factory_.Join(std::move(conds), left, right);
    SymbolSet all = lvars.Union(rvars);
    std::vector<const ScalarExpr*> outputs;
    for (Symbol v : all) {
      auto it = std::lower_bound(lvars.begin(), lvars.end(), v);
      if (it != lvars.end() && *it == v) {
        outputs.push_back(ef.Col(static_cast<int>(it - lvars.begin())));
      } else {
        auto rit = std::lower_bound(rvars.begin(), rvars.end(), v);
        outputs.push_back(
            ef.Col(lsize + static_cast<int>(rit - rvars.begin())));
      }
    }
    return {factory_.Project(std::move(outputs), joined), all};
  }

  // Pads `plan` (columns = `have`, sorted) to the sorted column set `want`
  // by crossing with adom for each missing variable.
  const AlgExpr* Pad(const AlgExpr* plan, const SymbolSet& have,
                     const SymbolSet& want) {
    ExprFactory& ef = factory_.exprs();
    SymbolSet missing = want.Minus(have);
    const AlgExpr* crossed = plan;
    for (size_t i = 0; i < missing.size(); ++i) {
      crossed = factory_.Join({}, crossed, adom_);
    }
    // Reorder columns to sorted `want` order.
    std::vector<const ScalarExpr*> outputs;
    for (Symbol v : want) {
      auto it = std::lower_bound(have.begin(), have.end(), v);
      if (it != have.end() && *it == v) {
        outputs.push_back(ef.Col(static_cast<int>(it - have.begin())));
      } else {
        auto mit = std::lower_bound(missing.begin(), missing.end(), v);
        outputs.push_back(ef.Col(static_cast<int>(have.size()) +
                                 static_cast<int>(mit - missing.begin())));
      }
    }
    return factory_.Project(std::move(outputs), crossed);
  }

  AstContext& ctx_;
  AlgebraFactory factory_;
  const AlgExpr* adom_;
};

}  // namespace

StatusOr<const AlgExpr*> TranslateActiveDomain(
    AstContext& ctx, const Query& q, const ActiveDomainOptions& options) {
  if (Status s = CheckWellFormed(q, ctx.symbols()); !s.ok()) return s;

  // Normalize: rectify, simplify, drop foralls (the baseline handles not
  // exists directly).
  const Formula* body = Rectify(ctx, q.body);
  body = Simplify(ctx, body);
  body = EliminateForall(ctx, body);
  body = Simplify(ctx, body);

  int level = options.level >= 0 ? options.level : CountApplications(body);
  std::vector<Symbol> fns;
  for (const auto& [fn, arity] : CollectFunctions(body)) fns.push_back(fn);
  std::vector<uint32_t> consts = CollectConstants(body);

  AlgebraFactory bootstrap(ctx);
  const AlgExpr* adom = bootstrap.Adom(level, std::move(fns),
                                       std::move(consts));
  AdomTranslator translator(ctx, adom);
  auto plan = translator.Translate(body);
  if (!plan.ok()) return plan;

  // Simplification may have dropped head variables from the body (e.g. a
  // body that folded to false); pad the plan back to the full head
  // variable set with adom columns, then project into head order.
  SymbolSet vars = FreeVars(body);
  SymbolSet head_vars(q.head);
  SymbolSet all = vars.Union(head_vars);
  const AlgExpr* padded = translator.PadTo(*plan, vars, all);
  vars = all;
  std::vector<const ScalarExpr*> outputs;
  for (Symbol v : q.head) {
    auto it = std::lower_bound(vars.begin(), vars.end(), v);
    if (it == vars.end() || *it != v) {
      return InternalError("head variable not free in body");
    }
    outputs.push_back(translator.factory().exprs().Col(
        static_cast<int>(it - vars.begin())));
  }
  const AlgExpr* final_plan =
      translator.factory().Project(std::move(outputs), padded);
  if (options.optimize) {
    final_plan = OptimizePlan(translator.factory(), final_plan);
  }
  return final_plan;
}

}  // namespace emcalc
