// Steps (1) and (2) of the translation (Section 7 of the paper):
// universal-quantifier elimination and transformation into Existential
// Normal Form (ENF).
//
// ENF guarantees: the formula is simplified (see safety/simplify.h),
// contains no kForall, and every negation sits over a relation atom, an
// existential quantifier, or a conjunction that the difference operator can
// handle. Negations over disjunctions are always pushed inward (the GT91
// moves); negations over conjunctions are pushed *only when pushing exposes
// bounding information* — that is transformation T10, the move absent from
// GT91 that the paper introduces so that queries like q4 (whose only
// bounding for y hides inside negated inequality atoms: not (f(x) != y and
// g(x) != y) == (f(x) = y or g(x) = y)) become translatable. With
// enable_t10 = false the pass reproduces GT91's behavior, and the pipeline
// fails on exactly those queries (experiment E6).
#ifndef EMCALC_TRANSLATE_ENF_H_
#define EMCALC_TRANSLATE_ENF_H_

#include "src/calculus/ast.h"
#include "src/finds/bound.h"

namespace emcalc {

// Options for the ENF pass.
struct EnfOptions {
  bool enable_t10 = true;
  BoundOptions bound;
};

// Rewrites `f` into ENF. Assumes nothing; internally rectifies and
// simplifies. Equivalence is preserved under embedded semantics.
const Formula* ToEnf(AstContext& ctx, const Formula* f,
                     const EnfOptions& options = {});

// Structural ENF predicate: simplified, forall-free, and negations only
// over relation atoms, existentials, or conjunctions.
bool IsEnf(const Formula* f);

// Replaces every forall X (psi) with not exists X (not psi) (step 1).
const Formula* EliminateForall(AstContext& ctx, const Formula* f);

}  // namespace emcalc

#endif  // EMCALC_TRANSLATE_ENF_H_
