#include "src/translate/distribute.h"

#include <vector>

#include "src/calculus/builder.h"

namespace emcalc {
namespace {

const Formula* Distribute(AstContext& ctx, const Formula* f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kRel:
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      return f;
    case FormulaKind::kNot:
      // Negations are difference-translated as a unit; leave their insides
      // alone (distributing under a negation would not reduce the work the
      // difference performs).
      return f;
    case FormulaKind::kOr: {
      std::vector<const Formula*> children;
      for (const Formula* c : f->children()) {
        children.push_back(Distribute(ctx, c));
      }
      return builder::Or(ctx, std::move(children));
    }
    case FormulaKind::kAnd: {
      // Distribute children first, then cross-multiply: the conjunction of
      // k disjunctions with n_i branches becomes one disjunction with
      // prod(n_i) conjunctive branches.
      std::vector<std::vector<const Formula*>> branch_sets;
      size_t total = 1;
      for (const Formula* c : f->children()) {
        const Formula* d = Distribute(ctx, c);
        if (d->kind() == FormulaKind::kOr) {
          branch_sets.emplace_back(d->children().begin(),
                                   d->children().end());
        } else {
          branch_sets.push_back({d});
        }
        total *= branch_sets.back().size();
      }
      if (total == 1) {
        std::vector<const Formula*> flat;
        for (const auto& set : branch_sets) flat.push_back(set[0]);
        return builder::And(ctx, std::move(flat));
      }
      std::vector<const Formula*> disjuncts;
      std::vector<size_t> cursor(branch_sets.size(), 0);
      for (;;) {
        std::vector<const Formula*> conj;
        for (size_t i = 0; i < branch_sets.size(); ++i) {
          conj.push_back(branch_sets[i][cursor[i]]);
        }
        disjuncts.push_back(builder::And(ctx, std::move(conj)));
        int pos = static_cast<int>(branch_sets.size()) - 1;
        for (; pos >= 0; --pos) {
          size_t p = static_cast<size_t>(pos);
          if (++cursor[p] < branch_sets[p].size()) break;
          cursor[p] = 0;
        }
        if (pos < 0) break;
      }
      return builder::Or(ctx, std::move(disjuncts));
    }
    case FormulaKind::kExists: {
      const Formula* body = Distribute(ctx, f->child());
      std::vector<Symbol> vars(f->vars().begin(), f->vars().end());
      if (body->kind() != FormulaKind::kOr) {
        return builder::Exists(ctx, std::move(vars), body);
      }
      std::vector<const Formula*> disjuncts;
      for (const Formula* d : body->children()) {
        disjuncts.push_back(builder::Exists(ctx, vars, d));
      }
      return builder::Or(ctx, std::move(disjuncts));
    }
    case FormulaKind::kForall:
      return f;  // ENF has removed these
  }
  return f;
}

}  // namespace

const Formula* DistributeDisjunctions(AstContext& ctx, const Formula* f) {
  return Distribute(ctx, f);
}

}  // namespace emcalc
