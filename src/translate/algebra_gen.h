// Step (4) of the translation: syntax-directed mapping from RANF formulas
// to extended-algebra plans.
//
// The generator threads a context plan E whose columns are bound to a list
// of variables `cols`. Applying a subformula phi to (E, cols) yields a plan
// whose columns are cols plus the variables newly bound by phi:
//
//   R(t...)    -> join(conds, E, R) + projection   (binds variable args)
//   t1 = x     -> project([*cols, expr(t1)], E)    (extended projection)
//   t1 = t2    -> select({expr1 == expr2}, E)      (both sides over cols)
//   t1 != t2   -> select({expr1 != expr2}, E)
//   not psi    -> E - apply(E, psi)                (difference)
//   and        -> left-to-right composition
//   or         -> union of branches projected to a common column order
//   exists X   -> projection dropping X's columns
//
// The translation starts from E = unit (the arity-0 relation holding the
// empty tuple) and finishes by projecting to the query head.
#ifndef EMCALC_TRANSLATE_ALGEBRA_GEN_H_
#define EMCALC_TRANSLATE_ALGEBRA_GEN_H_

#include <map>
#include <vector>

#include "src/algebra/ast.h"
#include "src/base/status.h"
#include "src/base/symbol_set.h"
#include "src/calculus/ast.h"

namespace emcalc {

// A plan plus the variable each of its columns is bound to.
struct BoundPlan {
  const AlgExpr* plan = nullptr;
  std::vector<Symbol> cols;
};

// Generates a plan for a RANF formula. `rel_arities` is consulted for base
// relation arities (from calculus/analysis.h CollectRelations).
class AlgebraGenerator {
 public:
  // `inverses` maps invertible function symbols to their inverse function
  // symbols: g(x) = t with g invertible compiles to binding x := ginv(t)
  // followed by the membership check g(x) == t (g need not be surjective).
  explicit AlgebraGenerator(AstContext& ctx,
                            std::map<Symbol, Symbol> inverses = {})
      : factory_(ctx), inverses_(std::move(inverses)) {}

  // Applies `f` to the context plan. `f` must be in RANF for the variable
  // set of `input.cols`; violations produce kInternal errors (the RANF pass
  // is responsible for establishing the form).
  StatusOr<BoundPlan> Apply(const BoundPlan& input, const Formula* f);

  // Translates a whole RANF body and projects to `head` order.
  StatusOr<const AlgExpr*> Translate(const Formula* body,
                                     const std::vector<Symbol>& head);

  AlgebraFactory& factory() { return factory_; }

 private:
  // Compiles a term over bound columns into a scalar expression; kInternal
  // if the term mentions an unbound variable.
  StatusOr<const ScalarExpr*> CompileTerm(const Term* t,
                                          const std::vector<Symbol>& cols);

  StatusOr<BoundPlan> ApplyRel(const BoundPlan& input, const Formula* f);
  StatusOr<BoundPlan> ApplyEq(const BoundPlan& input, const Formula* f);
  StatusOr<BoundPlan> ApplyOr(const BoundPlan& input, const Formula* f);

  AlgebraFactory factory_;
  std::map<Symbol, Symbol> inverses_;
};

}  // namespace emcalc

#endif  // EMCALC_TRANSLATE_ALGEBRA_GEN_H_
