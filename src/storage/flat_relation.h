// Flat relation storage: all tuples of a relation live in one
// arity-strided contiguous Value array, so inserting a tuple is a bump
// append, copying a relation is one memcpy-able vector copy, and scans are
// cache-linear — no per-tuple heap allocation anywhere. Values are 8-byte
// interned words (src/base/value.h), so a TupleRef is just a span into the
// backing array.
//
// Set semantics match the original vector-of-tuples Relation exactly:
// tuples are kept sorted and duplicate-free (normalized lazily on first
// read), union/difference/equality/ordering are defined on the normalized
// form, and the move-aware set operations reuse this relation's storage.
// tests/storage_test.cc checks agreement against the retained
// LegacyRelation oracle on random inputs.
#ifndef EMCALC_STORAGE_FLAT_RELATION_H_
#define EMCALC_STORAGE_FLAT_RELATION_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/value.h"

namespace emcalc {

// A materialized database tuple (parser/loader boundary type; the storage
// and execution layers pass TupleRef spans instead).
using Tuple = std::vector<Value>;

// A borrowed view of one tuple inside a FlatRelation (or any contiguous
// Value run). Valid only while the owning storage is alive and unmodified.
class TupleRef {
 public:
  TupleRef() = default;
  TupleRef(const Value* data, size_t size) : data_(data), size_(size) {}
  explicit TupleRef(const Tuple& t) : data_(t.data()), size_(t.size()) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Value& operator[](size_t i) const { return data_[i]; }
  const Value* data() const { return data_; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + size_; }

  Tuple ToTuple() const { return Tuple(begin(), end()); }

  // Element-wise; Value equality is a word compare.
  friend bool operator==(TupleRef a, TupleRef b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(TupleRef a, TupleRef b) { return !(a == b); }
  // Lexicographic, resolving interned strings through the pool.
  friend bool operator<(TupleRef a, TupleRef b);

 private:
  const Value* data_ = nullptr;
  size_t size_ = 0;
};

// A finite relation of fixed arity over flat storage. Arity 0 is legal:
// such a relation is either empty ("false") or contains the single empty
// tuple ("true").
class FlatRelation {
 public:
  explicit FlatRelation(int arity) : arity_(arity) {}

  // Copies are instrumented (see CopiesMade/TuplesCopied); moves are free.
  // Moves transfer the memory-accounting charge along with the storage, so
  // the bytes stay attributed to whichever container currently owns them.
  FlatRelation(const FlatRelation& other);
  FlatRelation& operator=(const FlatRelation& other);
  FlatRelation(FlatRelation&& other) noexcept
      : arity_(other.arity_),
        dirty_(other.dirty_),
        rows_(other.rows_),
        data_(std::move(other.data_)),
        charged_bytes_(other.charged_bytes_) {
    other.dirty_ = false;
    other.rows_ = 0;
    other.charged_bytes_ = 0;
    other.SyncCharge();  // moved-from capacity is unspecified; reconcile
  }
  FlatRelation& operator=(FlatRelation&& other) noexcept {
    if (this == &other) return *this;
    RechargeTo(0);  // our buffer is about to be freed by the vector move
    arity_ = other.arity_;
    dirty_ = other.dirty_;
    rows_ = other.rows_;
    data_ = std::move(other.data_);
    charged_bytes_ = other.charged_bytes_;
    other.dirty_ = false;
    other.rows_ = 0;
    other.charged_bytes_ = 0;
    other.SyncCharge();
    SyncCharge();
    return *this;
  }
  ~FlatRelation() {
    if (charged_bytes_ != 0) RechargeTo(0);
  }

  int arity() const { return arity_; }
  size_t size() const {
    Normalize();
    return rows_;
  }
  bool empty() const {
    Normalize();
    return rows_ == 0;
  }

  // Iteration yields TupleRef views over the normalized storage.
  class const_iterator {
   public:
    const_iterator(const Value* data, size_t arity, size_t row)
        : data_(data), arity_(arity), row_(row) {}
    TupleRef operator*() const {
      return TupleRef(data_ + row_ * arity_, arity_);
    }
    const_iterator& operator++() {
      ++row_;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.row_ == b.row_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.row_ != b.row_;
    }

   private:
    const Value* data_;
    size_t arity_;
    size_t row_;
  };
  const_iterator begin() const {
    Normalize();
    return const_iterator(data_.data(), static_cast<size_t>(arity_), 0);
  }
  const_iterator end() const {
    Normalize();
    return const_iterator(data_.data(), static_cast<size_t>(arity_), rows_);
  }

  // Row access over the normalized form.
  TupleRef row(size_t i) const {
    Normalize();
    return TupleRef(data_.data() + i * static_cast<size_t>(arity_),
                    static_cast<size_t>(arity_));
  }

  // Capacity hint for bulk inserts, in tuples.
  void Reserve(size_t n) {
    data_.reserve(n * static_cast<size_t>(arity_));
    SyncCharge();
  }

  // Inserts a tuple; error on arity mismatch. Amortized: tuples are
  // appended and normalized lazily on first read.
  Status TryInsert(const Tuple& t);

  // Inserts a tuple whose arity the caller has already validated; aborts
  // on mismatch (internal evaluator paths where a mismatch is a bug, not
  // bad input — external data goes through TryInsert).
  void Insert(const Tuple& t) { Insert(TupleRef(t)); }
  void Insert(TupleRef t);
  // Braced-list convenience: r.Insert({Value::Int(1), Value::Str("a")}).
  void Insert(std::initializer_list<Value> t) {
    Insert(TupleRef(t.begin(), t.size()));
  }

  // Unchecked append of one row of `arity()` values (hot evaluator loops;
  // the caller guarantees the width).
  void AppendRow(const Value* values) {
    data_.insert(data_.end(), values, values + arity_);
    ++rows_;
    dirty_ = true;
    SyncCharge();
  }

  // Unchecked bulk append of `n` rows stored contiguously row-major at
  // `values` (n * arity() cells). One insert, one charge sync — the batch
  // kernels stage a whole batch and land it here.
  void AppendRows(const Value* values, size_t n) {
    if (n == 0) return;
    if (arity_ > 0) {
      data_.insert(data_.end(), values,
                   values + n * static_cast<size_t>(arity_));
    }
    rows_ += n;
    dirty_ = true;
    SyncCharge();
  }

  // Appends every row of `other` (same arity) without normalizing.
  void AppendAll(const FlatRelation& other);

  // The normalized arity-strided backing buffer (size() * arity() cells).
  // Valid until the next mutation; the batch kernels slice columns out of
  // it directly.
  const Value* data() const {
    Normalize();
    return data_.data();
  }

  // Membership test.
  bool Contains(const Tuple& t) const { return Contains(TupleRef(t)); }
  bool Contains(TupleRef t) const;
  bool Contains(std::initializer_list<Value> t) const {
    return Contains(TupleRef(t.begin(), t.size()));
  }

  // Set algebra; arities must match. The rvalue overloads reuse this
  // relation's storage instead of copying both sides into a fresh vector —
  // the execution layer uses them to make union/difference chains
  // copy-light.
  FlatRelation UnionWith(const FlatRelation& other) const&;
  FlatRelation UnionWith(const FlatRelation& other) &&;
  FlatRelation DifferenceWith(const FlatRelation& other) const&;
  FlatRelation DifferenceWith(const FlatRelation& other) &&;

  friend bool operator==(const FlatRelation& a, const FlatRelation& b);

  // Multi-line "(1, 'a')\n(2, 'b')" rendering, for tests and examples.
  std::string ToString() const;

  // Sorts and dedupes now (no-op when already normalized). Execution
  // calls this before sharing a relation across worker threads: the lazy
  // normalization mutates, so it must happen-before the parallel region.
  void Normalize() const;

  // Process-wide copy instrumentation: whole-relation copies and tuples
  // copied into new storage by relation copies and the lvalue set
  // operations. The execution layer samples deltas around each operator to
  // expose copy costs per operator; tests compare evaluator strategies.
  static uint64_t CopiesMade();
  static uint64_t TuplesCopied();

 private:
  // Memory accounting (obs::ChargeBytes): charged_bytes_ is the capacity
  // this relation has reported to the accountant. SyncCharge is a single
  // compare when the capacity is unchanged — the common case on appends
  // that do not grow — and only the rare recharge goes out of line.
  void SyncCharge() const {
    auto now = static_cast<int64_t>(data_.capacity() * sizeof(Value));
    if (now != charged_bytes_) RechargeTo(now);
  }
  void RechargeTo(int64_t now) const;

  int arity_;
  mutable bool dirty_ = false;
  mutable size_t rows_ = 0;
  mutable std::vector<Value> data_;  // arity-strided, rows_ * arity_ cells
  mutable int64_t charged_bytes_ = 0;
};

}  // namespace emcalc

#endif  // EMCALC_STORAGE_FLAT_RELATION_H_
