// A database instance: a catalog of named finite relations.
#ifndef EMCALC_STORAGE_DATABASE_H_
#define EMCALC_STORAGE_DATABASE_H_

#include <map>
#include <string>

#include "src/base/status.h"
#include "src/storage/relation.h"

namespace emcalc {

// Relations are keyed by name (strings, so a Database is independent of any
// AstContext's symbol table).
class Database {
 public:
  Database() = default;

  // Creates an empty relation; error if the name exists with another arity.
  Status AddRelation(const std::string& name, int arity);

  // Inserts a tuple, creating the relation on first use.
  Status Insert(const std::string& name, Tuple t);

  // Lookup; nullptr when absent.
  const Relation* Find(const std::string& name) const;

  // Lookup that treats a missing relation as an error.
  StatusOr<const Relation*> Get(const std::string& name) const;

  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  // Total number of tuples across all relations.
  size_t TotalTuples() const;

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace emcalc

#endif  // EMCALC_STORAGE_DATABASE_H_
