#include "src/storage/database.h"

namespace emcalc {

Status Database::AddRelation(const std::string& name, int arity) {
  auto it = relations_.find(name);
  if (it != relations_.end()) {
    if (it->second.arity() != arity) {
      return InvalidArgumentError("relation '" + name +
                                  "' already exists with arity " +
                                  std::to_string(it->second.arity()));
    }
    return Status::Ok();
  }
  relations_.emplace(name, Relation(arity));
  return Status::Ok();
}

Status Database::Insert(const std::string& name, Tuple t) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    it = relations_.emplace(name, Relation(static_cast<int>(t.size()))).first;
  }
  if (Status s = it->second.TryInsert(std::move(t)); !s.ok()) {
    return InvalidArgumentError(s.message() + " ('" + name + "')");
  }
  return Status::Ok();
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

StatusOr<const Relation*> Database::Get(const std::string& name) const {
  const Relation* r = Find(name);
  if (r == nullptr) return NotFoundError("unknown relation '" + name + "'");
  return r;
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel.size();
  return n;
}

}  // namespace emcalc
