#include "src/storage/flat_relation.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>

#include "src/base/check.h"
#include "src/obs/resource.h"

namespace emcalc {
namespace {

// Relaxed atomics: the counters are monotone instrumentation, never used
// for synchronization.
std::atomic<uint64_t> g_relation_copies{0};
std::atomic<uint64_t> g_tuple_copies{0};

void CountCopy(size_t tuples) {
  g_relation_copies.fetch_add(1, std::memory_order_relaxed);
  g_tuple_copies.fetch_add(tuples, std::memory_order_relaxed);
}

// Contiguous row sorting for small arities: reinterpret the arity-strided
// buffer as an array of fixed-size rows, so std::sort moves whole rows
// (A 8-byte words each) and comparisons walk sequential memory instead of
// chasing an index permutation. Wide rows fall back to the permutation
// path below (moving them during the sort would cost more than the
// indirection saves).
constexpr int kMaxContiguousSortArity = 8;

template <int A>
struct RowN {
  Value v[A];
};

template <int A>
bool RowLess(const RowN<A>& x, const RowN<A>& y) {
  for (int i = 0; i < A; ++i) {
    if (x.v[i] < y.v[i]) return true;
    if (y.v[i] < x.v[i]) return false;
  }
  return false;
}

template <int A>
bool RowEq(const RowN<A>& x, const RowN<A>& y) {
  for (int i = 0; i < A; ++i) {
    if (x.v[i] != y.v[i]) return false;
  }
  return true;
}

template <int A>
size_t SortDedupeRows(Value* data, size_t rows) {
  static_assert(sizeof(RowN<A>) == A * sizeof(Value));
  RowN<A>* base = reinterpret_cast<RowN<A>*>(data);
  std::sort(base, base + rows, RowLess<A>);
  return static_cast<size_t>(std::unique(base, base + rows, RowEq<A>) - base);
}

// Merges the sorted runs [0, mid) and [mid, rows) in place, then dedupes.
template <int A>
size_t MergeDedupeRows(Value* data, size_t mid, size_t rows) {
  RowN<A>* base = reinterpret_cast<RowN<A>*>(data);
  std::inplace_merge(base, base + mid, base + rows, RowLess<A>);
  return static_cast<size_t>(std::unique(base, base + rows, RowEq<A>) - base);
}

// Returns the deduped row count, or SIZE_MAX when `a` is too wide for the
// contiguous path.
size_t SortDedupeDispatch(size_t a, Value* data, size_t rows) {
  switch (a) {
    case 1: return SortDedupeRows<1>(data, rows);
    case 2: return SortDedupeRows<2>(data, rows);
    case 3: return SortDedupeRows<3>(data, rows);
    case 4: return SortDedupeRows<4>(data, rows);
    case 5: return SortDedupeRows<5>(data, rows);
    case 6: return SortDedupeRows<6>(data, rows);
    case 7: return SortDedupeRows<7>(data, rows);
    case 8: return SortDedupeRows<8>(data, rows);
    default: return SIZE_MAX;
  }
}

size_t MergeDedupeDispatch(size_t a, Value* data, size_t mid, size_t rows) {
  switch (a) {
    case 1: return MergeDedupeRows<1>(data, mid, rows);
    case 2: return MergeDedupeRows<2>(data, mid, rows);
    case 3: return MergeDedupeRows<3>(data, mid, rows);
    case 4: return MergeDedupeRows<4>(data, mid, rows);
    case 5: return MergeDedupeRows<5>(data, mid, rows);
    case 6: return MergeDedupeRows<6>(data, mid, rows);
    case 7: return MergeDedupeRows<7>(data, mid, rows);
    case 8: return MergeDedupeRows<8>(data, mid, rows);
    default: return SIZE_MAX;
  }
}

}  // namespace

bool operator<(TupleRef a, TupleRef b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

uint64_t FlatRelation::CopiesMade() {
  return g_relation_copies.load(std::memory_order_relaxed);
}

uint64_t FlatRelation::TuplesCopied() {
  return g_tuple_copies.load(std::memory_order_relaxed);
}

void FlatRelation::RechargeTo(int64_t now) const {
  obs::ChargeBytes(now - charged_bytes_);
  charged_bytes_ = now;
}

FlatRelation::FlatRelation(const FlatRelation& other)
    : arity_(other.arity_),
      dirty_(other.dirty_),
      rows_(other.rows_),
      data_(other.data_) {
  CountCopy(rows_);
  SyncCharge();
}

FlatRelation& FlatRelation::operator=(const FlatRelation& other) {
  if (this == &other) return *this;
  arity_ = other.arity_;
  dirty_ = other.dirty_;
  rows_ = other.rows_;
  data_ = other.data_;
  CountCopy(rows_);
  SyncCharge();
  return *this;
}

Status FlatRelation::TryInsert(const Tuple& t) {
  if (static_cast<int>(t.size()) != arity_) {
    return InvalidArgumentError("tuple arity " + std::to_string(t.size()) +
                                " does not match relation arity " +
                                std::to_string(arity_));
  }
  data_.insert(data_.end(), t.begin(), t.end());
  ++rows_;
  dirty_ = true;
  SyncCharge();
  return Status::Ok();
}

void FlatRelation::Insert(TupleRef t) {
  EMCALC_CHECK_MSG(static_cast<int>(t.size()) == arity_,
                   "tuple arity %zu != relation arity %d", t.size(), arity_);
  data_.insert(data_.end(), t.begin(), t.end());
  ++rows_;
  dirty_ = true;
  SyncCharge();
}

void FlatRelation::AppendAll(const FlatRelation& other) {
  EMCALC_CHECK(arity_ == other.arity_);
  if (other.rows_ == 0) return;
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
  dirty_ = true;
  SyncCharge();
}

void FlatRelation::Normalize() const {
  if (!dirty_) return;
  dirty_ = false;
  const size_t a = static_cast<size_t>(arity_);
  if (a == 0) {
    // The only tuple is the empty tuple; dedupe to at most one row.
    rows_ = rows_ > 0 ? 1 : 0;
    return;
  }
  if (rows_ <= 1) return;
  size_t sorted_rows = SortDedupeDispatch(a, data_.data(), rows_);
  if (sorted_rows != SIZE_MAX) {
    data_.resize(sorted_rows * a);
    rows_ = sorted_rows;
    SyncCharge();
    return;
  }
  // Permutation sort for wide rows: order row indices, then gather into
  // fresh storage, dropping duplicates. One pass of row moves instead of
  // O(n log n) row-sized swaps.
  std::vector<size_t> order(rows_);
  std::iota(order.begin(), order.end(), size_t{0});
  const Value* base = data_.data();
  std::sort(order.begin(), order.end(), [base, a](size_t i, size_t j) {
    return TupleRef(base + i * a, a) < TupleRef(base + j * a, a);
  });
  std::vector<Value> sorted;
  sorted.reserve(data_.size());
  size_t kept = 0;
  for (size_t i = 0; i < rows_; ++i) {
    const Value* row = base + order[i] * a;
    if (kept > 0 &&
        TupleRef(row, a) == TupleRef(sorted.data() + (kept - 1) * a, a)) {
      continue;
    }
    sorted.insert(sorted.end(), row, row + a);
    ++kept;
  }
  data_ = std::move(sorted);
  rows_ = kept;
  SyncCharge();
}

bool FlatRelation::Contains(TupleRef t) const {
  Normalize();
  const size_t a = static_cast<size_t>(arity_);
  if (t.size() != a) return false;
  if (a == 0) return rows_ > 0;
  const Value* base = data_.data();
  size_t lo = 0;
  size_t hi = rows_;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    TupleRef row(base + mid * a, a);
    if (row < t) {
      lo = mid + 1;
    } else if (t < row) {
      hi = mid;
    } else {
      return true;
    }
  }
  return false;
}

FlatRelation FlatRelation::UnionWith(const FlatRelation& other) const& {
  EMCALC_CHECK(arity_ == other.arity_);
  Normalize();
  other.Normalize();
  const size_t a = static_cast<size_t>(arity_);
  FlatRelation out(arity_);
  if (a == 0) {
    out.rows_ = (rows_ > 0 || other.rows_ > 0) ? 1 : 0;
    g_tuple_copies.fetch_add(out.rows_, std::memory_order_relaxed);
    return out;
  }
  out.data_.reserve(data_.size() + other.data_.size());
  const Value* lb = data_.data();
  const Value* rb = other.data_.data();
  size_t li = 0;
  size_t ri = 0;
  size_t n = 0;
  while (li < rows_ && ri < other.rows_) {
    TupleRef l(lb + li * a, a);
    TupleRef r(rb + ri * a, a);
    if (l < r) {
      out.data_.insert(out.data_.end(), l.begin(), l.end());
      ++li;
    } else if (r < l) {
      out.data_.insert(out.data_.end(), r.begin(), r.end());
      ++ri;
    } else {
      out.data_.insert(out.data_.end(), l.begin(), l.end());
      ++li;
      ++ri;
    }
    ++n;
  }
  for (; li < rows_; ++li, ++n) {
    out.data_.insert(out.data_.end(), lb + li * a, lb + (li + 1) * a);
  }
  for (; ri < other.rows_; ++ri, ++n) {
    out.data_.insert(out.data_.end(), rb + ri * a, rb + (ri + 1) * a);
  }
  out.rows_ = n;
  g_tuple_copies.fetch_add(n, std::memory_order_relaxed);
  out.SyncCharge();
  return out;
}

FlatRelation FlatRelation::UnionWith(const FlatRelation& other) && {
  EMCALC_CHECK(arity_ == other.arity_);
  Normalize();
  other.Normalize();
  // Keep this side's storage: append the other side's rows and merge in
  // place. Only |other| tuples are copied (vs |this| + |other| above).
  FlatRelation out(arity_);
  out.data_ = std::move(data_);
  out.rows_ = rows_;
  out.charged_bytes_ = charged_bytes_;  // the charge follows the storage
  rows_ = 0;
  charged_bytes_ = 0;
  data_.clear();
  SyncCharge();
  const size_t a = static_cast<size_t>(arity_);
  if (a == 0) {
    out.rows_ = (out.rows_ > 0 || other.rows_ > 0) ? 1 : 0;
    g_tuple_copies.fetch_add(other.rows_, std::memory_order_relaxed);
    return out;
  }
  size_t mid = out.rows_;
  out.data_.insert(out.data_.end(), other.data_.begin(), other.data_.end());
  out.rows_ += other.rows_;
  out.SyncCharge();
  size_t merged_rows = MergeDedupeDispatch(a, out.data_.data(), mid, out.rows_);
  if (merged_rows != SIZE_MAX) {
    out.data_.resize(merged_rows * a);
    out.rows_ = merged_rows;
    g_tuple_copies.fetch_add(other.rows_, std::memory_order_relaxed);
    return out;
  }
  // Wide rows: the two sorted runs meet at row `mid`; merging rows via an
  // index permutation keeps the merge stable and row-granular.
  std::vector<size_t> order(out.rows_);
  std::iota(order.begin(), order.end(), size_t{0});
  const Value* base = out.data_.data();
  std::inplace_merge(order.begin(),
                     order.begin() + static_cast<ptrdiff_t>(mid), order.end(),
                     [base, a](size_t i, size_t j) {
                       return TupleRef(base + i * a, a) <
                              TupleRef(base + j * a, a);
                     });
  std::vector<Value> merged;
  merged.reserve(out.data_.size());
  size_t kept = 0;
  for (size_t i = 0; i < out.rows_; ++i) {
    const Value* row = base + order[i] * a;
    if (kept > 0 &&
        TupleRef(row, a) == TupleRef(merged.data() + (kept - 1) * a, a)) {
      continue;
    }
    merged.insert(merged.end(), row, row + a);
    ++kept;
  }
  out.data_ = std::move(merged);
  out.rows_ = kept;
  out.SyncCharge();
  g_tuple_copies.fetch_add(other.rows_, std::memory_order_relaxed);
  return out;
}

FlatRelation FlatRelation::DifferenceWith(const FlatRelation& other) const& {
  EMCALC_CHECK(arity_ == other.arity_);
  Normalize();
  other.Normalize();
  const size_t a = static_cast<size_t>(arity_);
  FlatRelation out(arity_);
  if (a == 0) {
    out.rows_ = (rows_ > 0 && other.rows_ == 0) ? 1 : 0;
    g_tuple_copies.fetch_add(out.rows_, std::memory_order_relaxed);
    return out;
  }
  const Value* lb = data_.data();
  const Value* rb = other.data_.data();
  size_t li = 0;
  size_t ri = 0;
  size_t n = 0;
  while (li < rows_) {
    TupleRef l(lb + li * a, a);
    if (ri >= other.rows_) {
      out.data_.insert(out.data_.end(), l.begin(), l.end());
      ++li;
      ++n;
      continue;
    }
    TupleRef r(rb + ri * a, a);
    if (l < r) {
      out.data_.insert(out.data_.end(), l.begin(), l.end());
      ++li;
      ++n;
    } else if (r < l) {
      ++ri;
    } else {
      ++li;
      ++ri;
    }
  }
  out.rows_ = n;
  g_tuple_copies.fetch_add(n, std::memory_order_relaxed);
  out.SyncCharge();
  return out;
}

FlatRelation FlatRelation::DifferenceWith(const FlatRelation& other) && {
  EMCALC_CHECK(arity_ == other.arity_);
  Normalize();
  other.Normalize();
  // Filter in place: no tuples are copied, survivors shift by move.
  FlatRelation out(arity_);
  out.data_ = std::move(data_);
  out.rows_ = rows_;
  out.charged_bytes_ = charged_bytes_;
  rows_ = 0;
  charged_bytes_ = 0;
  data_.clear();
  SyncCharge();
  const size_t a = static_cast<size_t>(arity_);
  if (a == 0) {
    out.rows_ = (out.rows_ > 0 && other.rows_ == 0) ? 1 : 0;
    return out;
  }
  Value* base = out.data_.data();
  size_t kept = 0;
  for (size_t i = 0; i < out.rows_; ++i) {
    const Value* row = base + i * a;
    if (other.Contains(TupleRef(row, a))) continue;
    if (kept != i) {
      std::memmove(base + kept * a, row, a * sizeof(Value));
    }
    ++kept;
  }
  out.data_.resize(kept * a);
  out.rows_ = kept;
  return out;
}

bool operator==(const FlatRelation& a, const FlatRelation& b) {
  if (a.arity_ != b.arity_) return false;
  a.Normalize();
  b.Normalize();
  if (a.rows_ != b.rows_) return false;
  return a.data_ == b.data_;
}

std::string FlatRelation::ToString() const {
  Normalize();
  std::string out;
  for (TupleRef t : *this) {
    out += "(";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ", ";
      out += t[i].ToString();
    }
    out += ")\n";
  }
  return out;
}

}  // namespace emcalc
