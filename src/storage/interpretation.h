// Scalar-function interpretations. The paper assumes an interpretation F
// assigning to each function symbol a *total* function dom^n -> dom; query
// answers are defined relative to (I, F). This module provides the function
// registry and a built-in library of total functions over our mixed
// int/string domain.
#ifndef EMCALC_STORAGE_INTERPRETATION_H_
#define EMCALC_STORAGE_INTERPRETATION_H_

#include <functional>
#include <map>
#include <span>
#include <string>

#include "src/base/status.h"
#include "src/base/value.h"

namespace emcalc {

// A total scalar function of fixed arity.
struct ScalarFunction {
  int arity = 0;
  std::function<Value(std::span<const Value>)> fn;
  // Optional vectorized form used by the batch kernels
  // (src/exec/scalar_program.h): args[j] is the j-th argument column, each
  // out.size() lanes; must write fn({args[0][i], ...}) to out[i] for every
  // lane. Absent => the kernels loop the scalar form per lane.
  std::function<void(std::span<const std::span<const Value>>,
                     std::span<Value>)>
      batch;
};

// Maps function names to implementations. Keyed by name strings so a
// registry is independent of any AstContext.
class FunctionRegistry {
 public:
  FunctionRegistry() = default;

  // Registers (or replaces) `name`.
  void Register(const std::string& name, int arity,
                std::function<Value(std::span<const Value>)> fn);

  // Registers (or replaces) `name` with both scalar and vectorized forms.
  void Register(const std::string& name, int arity,
                std::function<Value(std::span<const Value>)> fn,
                std::function<void(std::span<const std::span<const Value>>,
                                   std::span<Value>)>
                    batch);

  // Lookup; nullptr when absent.
  const ScalarFunction* Find(const std::string& name) const;

  // Lookup that checks existence and arity.
  StatusOr<const ScalarFunction*> Get(const std::string& name,
                                      int arity) const;

  const std::map<std::string, ScalarFunction>& functions() const {
    return functions_;
  }

 private:
  std::map<std::string, ScalarFunction> functions_;
};

// A registry preloaded with total builtins. Functions must be total on the
// whole mixed domain; string arguments to numeric functions are coerced to
// their length (documented convention, keeps every builtin total):
//   succ/1, pred/1, double/1, half/1, abs/1, neg/1,
//   plus/2, minus/2, times/2, min2/2, max2/2,
//   len/1 (string length; ints pass through),
//   concat/2 (string concatenation; ints are rendered as digits),
//   first_char/1, mix/2 (a cheap injective-ish hash combiner).
FunctionRegistry BuiltinFunctions();

}  // namespace emcalc

#endif  // EMCALC_STORAGE_INTERPRETATION_H_
