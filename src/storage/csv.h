// Minimal CSV import/export for relation instances, so examples and tools
// can load data from files. Format: one tuple per line, comma-separated;
// fields that parse as integers become int values, everything else becomes
// a string value (surrounding whitespace trimmed; a field wrapped in
// single quotes is always a string). Blank lines and lines starting with
// '#' are skipped.
#ifndef EMCALC_STORAGE_CSV_H_
#define EMCALC_STORAGE_CSV_H_

#include <iosfwd>
#include <string>

#include "src/base/status.h"
#include "src/storage/database.h"

namespace emcalc {

// Parses rows from `in` into relation `name` (created on first row; all
// rows must have the same arity).
Status LoadCsv(Database& db, const std::string& name, std::istream& in);

// Convenience: parse from a string.
Status LoadCsvText(Database& db, const std::string& name,
                   const std::string& text);

// Loads from a file path.
Status LoadCsvFile(Database& db, const std::string& name,
                   const std::string& path);

// Writes `rel` in the same format (ints bare, strings single-quoted).
void WriteCsv(const Relation& rel, std::ostream& out);

// Convenience: render to a string.
std::string WriteCsvText(const Relation& rel);

}  // namespace emcalc

#endif  // EMCALC_STORAGE_CSV_H_
