#include "src/storage/interpretation.h"

#include <algorithm>

namespace emcalc {

void FunctionRegistry::Register(
    const std::string& name, int arity,
    std::function<Value(std::span<const Value>)> fn) {
  functions_[name] = ScalarFunction{arity, std::move(fn)};
}

const ScalarFunction* FunctionRegistry::Find(const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

StatusOr<const ScalarFunction*> FunctionRegistry::Get(const std::string& name,
                                                      int arity) const {
  const ScalarFunction* f = Find(name);
  if (f == nullptr) {
    return NotFoundError("unknown scalar function '" + name + "'");
  }
  if (f->arity != arity) {
    return InvalidArgumentError("function '" + name + "' has arity " +
                                std::to_string(f->arity) + ", called with " +
                                std::to_string(arity));
  }
  return f;
}

namespace {

// Totality coercion: numeric view of any Value (strings map to length).
int64_t AsNum(const Value& v) {
  return v.is_int() ? v.AsInt() : static_cast<int64_t>(v.AsStr().size());
}

// String view of any Value (ints render as digits).
std::string AsText(const Value& v) {
  return v.is_int() ? std::to_string(v.AsInt()) : v.AsStr();
}

}  // namespace

FunctionRegistry BuiltinFunctions() {
  FunctionRegistry reg;
  auto unary = [&reg](const std::string& name, auto op) {
    reg.Register(name, 1, [op](std::span<const Value> a) { return op(a[0]); });
  };
  auto binary = [&reg](const std::string& name, auto op) {
    reg.Register(name, 2,
                 [op](std::span<const Value> a) { return op(a[0], a[1]); });
  };

  unary("succ", [](const Value& v) { return Value::Int(AsNum(v) + 1); });
  unary("pred", [](const Value& v) { return Value::Int(AsNum(v) - 1); });
  unary("double", [](const Value& v) { return Value::Int(AsNum(v) * 2); });
  unary("half", [](const Value& v) { return Value::Int(AsNum(v) / 2); });
  unary("abs", [](const Value& v) {
    int64_t n = AsNum(v);
    return Value::Int(n < 0 ? -n : n);
  });
  unary("neg", [](const Value& v) { return Value::Int(-AsNum(v)); });
  unary("len", [](const Value& v) { return Value::Int(AsNum(v)); });
  unary("first_char", [](const Value& v) {
    std::string s = AsText(v);
    return Value::Str(s.empty() ? "" : s.substr(0, 1));
  });

  binary("plus", [](const Value& a, const Value& b) {
    return Value::Int(AsNum(a) + AsNum(b));
  });
  binary("minus", [](const Value& a, const Value& b) {
    return Value::Int(AsNum(a) - AsNum(b));
  });
  binary("times", [](const Value& a, const Value& b) {
    return Value::Int(AsNum(a) * AsNum(b));
  });
  binary("min2", [](const Value& a, const Value& b) {
    return Value::Int(std::min(AsNum(a), AsNum(b)));
  });
  binary("max2", [](const Value& a, const Value& b) {
    return Value::Int(std::max(AsNum(a), AsNum(b)));
  });
  binary("concat", [](const Value& a, const Value& b) {
    return Value::Str(AsText(a) + AsText(b));
  });
  binary("mix", [](const Value& a, const Value& b) {
    uint64_t x = static_cast<uint64_t>(AsNum(a)) * 0x9e3779b97f4a7c15ULL +
                 static_cast<uint64_t>(AsNum(b));
    x ^= x >> 29;
    return Value::Int(static_cast<int64_t>(x & 0x7fffffff));
  });
  return reg;
}

}  // namespace emcalc
