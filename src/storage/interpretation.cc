#include "src/storage/interpretation.h"

#include <algorithm>

namespace emcalc {

void FunctionRegistry::Register(
    const std::string& name, int arity,
    std::function<Value(std::span<const Value>)> fn) {
  functions_[name] = ScalarFunction{arity, std::move(fn), nullptr};
}

void FunctionRegistry::Register(
    const std::string& name, int arity,
    std::function<Value(std::span<const Value>)> fn,
    std::function<void(std::span<const std::span<const Value>>,
                       std::span<Value>)>
        batch) {
  functions_[name] = ScalarFunction{arity, std::move(fn), std::move(batch)};
}

const ScalarFunction* FunctionRegistry::Find(const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

StatusOr<const ScalarFunction*> FunctionRegistry::Get(const std::string& name,
                                                      int arity) const {
  const ScalarFunction* f = Find(name);
  if (f == nullptr) {
    return NotFoundError("unknown scalar function '" + name + "'");
  }
  if (f->arity != arity) {
    return InvalidArgumentError("function '" + name + "' has arity " +
                                std::to_string(f->arity) + ", called with " +
                                std::to_string(arity));
  }
  return f;
}

namespace {

// Totality coercion: numeric view of any Value (strings map to length).
int64_t AsNum(const Value& v) {
  return v.is_int() ? v.AsInt() : static_cast<int64_t>(v.AsStr().size());
}

// String view of any Value (ints render as digits).
std::string AsText(const Value& v) {
  return v.is_int() ? std::to_string(v.AsInt()) : v.AsStr();
}

// AsNum with the inline-int decode kept in the loop body; pooled values
// (strings and big ints) take the out-of-line path.
int64_t FastNum(const Value& v) {
  uint64_t raw = v.raw();
  if ((raw & 1) == 0) return static_cast<int64_t>(raw) >> 1;
  return AsNum(v);
}

}  // namespace

FunctionRegistry BuiltinFunctions() {
  FunctionRegistry reg;
  // Numeric builtins register both forms from one int64 op, so the scalar
  // and batch paths cannot drift. The batch form is a tight column loop:
  // no per-row std::function dispatch, inline-int decode in the body.
  auto unary_num = [&reg](const std::string& name, auto op) {
    reg.Register(
        name, 1,
        [op](std::span<const Value> a) { return Value::Int(op(AsNum(a[0]))); },
        [op](std::span<const std::span<const Value>> args,
             std::span<Value> out) {
          const Value* a = args[0].data();
          for (size_t i = 0; i < out.size(); ++i) {
            out[i] = Value::Int(op(FastNum(a[i])));
          }
        });
  };
  auto binary_num = [&reg](const std::string& name, auto op) {
    reg.Register(
        name, 2,
        [op](std::span<const Value> a) {
          return Value::Int(op(AsNum(a[0]), AsNum(a[1])));
        },
        [op](std::span<const std::span<const Value>> args,
             std::span<Value> out) {
          const Value* a = args[0].data();
          const Value* b = args[1].data();
          for (size_t i = 0; i < out.size(); ++i) {
            out[i] = Value::Int(op(FastNum(a[i]), FastNum(b[i])));
          }
        });
  };
  // String-producing builtins keep the scalar form only (the batch kernels
  // loop it per lane; pool interning dominates either way).
  auto unary_str = [&reg](const std::string& name, auto op) {
    reg.Register(name, 1, [op](std::span<const Value> a) { return op(a[0]); });
  };
  auto binary_str = [&reg](const std::string& name, auto op) {
    reg.Register(name, 2,
                 [op](std::span<const Value> a) { return op(a[0], a[1]); });
  };

  unary_num("succ", [](int64_t n) { return n + 1; });
  unary_num("pred", [](int64_t n) { return n - 1; });
  unary_num("double", [](int64_t n) { return n * 2; });
  unary_num("half", [](int64_t n) { return n / 2; });
  unary_num("abs", [](int64_t n) { return n < 0 ? -n : n; });
  unary_num("neg", [](int64_t n) { return -n; });
  unary_num("len", [](int64_t n) { return n; });
  unary_str("first_char", [](const Value& v) {
    std::string s = AsText(v);
    return Value::Str(s.empty() ? "" : s.substr(0, 1));
  });

  binary_num("plus", [](int64_t a, int64_t b) { return a + b; });
  binary_num("minus", [](int64_t a, int64_t b) { return a - b; });
  binary_num("times", [](int64_t a, int64_t b) { return a * b; });
  binary_num("min2", [](int64_t a, int64_t b) { return std::min(a, b); });
  binary_num("max2", [](int64_t a, int64_t b) { return std::max(a, b); });
  binary_str("concat", [](const Value& a, const Value& b) {
    return Value::Str(AsText(a) + AsText(b));
  });
  binary_num("mix", [](int64_t a, int64_t b) {
    uint64_t x = static_cast<uint64_t>(a) * 0x9e3779b97f4a7c15ULL +
                 static_cast<uint64_t>(b);
    x ^= x >> 29;
    return static_cast<int64_t>(x & 0x7fffffff);
  });
  return reg;
}

}  // namespace emcalc
