#include "src/storage/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace emcalc {
namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// int when the whole trimmed field is an optionally-signed integer;
// quoted or anything else -> string.
Value ParseField(const std::string& raw) {
  std::string field = Trim(raw);
  if (field.size() >= 2 && field.front() == '\'' && field.back() == '\'') {
    return Value::Str(field.substr(1, field.size() - 2));
  }
  if (!field.empty()) {
    char* end = nullptr;
    long long v = std::strtoll(field.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && end != field.c_str() &&
        !(field.size() == 1 && field[0] == '-')) {
      return Value::Int(v);
    }
  }
  return Value::Str(field);
}

}  // namespace

Status LoadCsv(Database& db, const std::string& name, std::istream& in) {
  std::string line;
  int line_no = 0;
  int arity = -1;
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    Tuple tuple;
    std::string field;
    std::stringstream row(trimmed);
    while (std::getline(row, field, ',')) {
      tuple.push_back(ParseField(field));
    }
    if (arity == -1) {
      arity = static_cast<int>(tuple.size());
      if (Status s = db.AddRelation(name, arity); !s.ok()) return s;
    } else if (static_cast<int>(tuple.size()) != arity) {
      return InvalidArgumentError(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(arity) + " fields, got " +
          std::to_string(tuple.size()));
    }
    if (Status s = db.Insert(name, std::move(tuple)); !s.ok()) {
      // Insert validates tuple arity via Relation::TryInsert; surface the
      // offending line instead of crashing on malformed input.
      return InvalidArgumentError("line " + std::to_string(line_no) + ": " +
                                  s.message());
    }
  }
  return Status::Ok();
}

Status LoadCsvText(Database& db, const std::string& name,
                   const std::string& text) {
  std::istringstream in(text);
  return LoadCsv(db, name, in);
}

Status LoadCsvFile(Database& db, const std::string& name,
                   const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  return LoadCsv(db, name, in);
}

void WriteCsv(const Relation& rel, std::ostream& out) {
  for (TupleRef t : rel) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out << ",";
      out << t[i].ToString();
    }
    out << "\n";
  }
}

std::string WriteCsvText(const Relation& rel) {
  std::ostringstream out;
  WriteCsv(rel, out);
  return out.str();
}

}  // namespace emcalc
