#include "src/storage/relation.h"

#include <algorithm>

#include "src/base/check.h"

namespace emcalc {

void Relation::Insert(Tuple t) {
  EMCALC_CHECK_MSG(static_cast<int>(t.size()) == arity_,
                   "tuple arity %zu != relation arity %d", t.size(), arity_);
  tuples_.push_back(std::move(t));
  dirty_ = true;
}

void Relation::Normalize() const {
  if (!dirty_) return;
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
  dirty_ = false;
}

bool Relation::Contains(const Tuple& t) const {
  Normalize();
  return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

Relation Relation::UnionWith(const Relation& other) const {
  EMCALC_CHECK(arity_ == other.arity_);
  Normalize();
  other.Normalize();
  Relation out(arity_);
  std::set_union(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                 other.tuples_.end(), std::back_inserter(out.tuples_));
  return out;
}

Relation Relation::DifferenceWith(const Relation& other) const {
  EMCALC_CHECK(arity_ == other.arity_);
  Normalize();
  other.Normalize();
  Relation out(arity_);
  std::set_difference(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                      other.tuples_.end(), std::back_inserter(out.tuples_));
  return out;
}

bool operator==(const Relation& a, const Relation& b) {
  if (a.arity_ != b.arity_) return false;
  a.Normalize();
  b.Normalize();
  return a.tuples_ == b.tuples_;
}

std::string Relation::ToString() const {
  Normalize();
  std::string out;
  for (const Tuple& t : tuples_) {
    out += "(";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ", ";
      out += t[i].ToString();
    }
    out += ")\n";
  }
  return out;
}

}  // namespace emcalc
