#include "src/storage/relation.h"

#include <algorithm>
#include <atomic>

#include "src/base/check.h"

namespace emcalc {
namespace {

// Relaxed atomics: the counters are monotone instrumentation, never used
// for synchronization.
std::atomic<uint64_t> g_relation_copies{0};
std::atomic<uint64_t> g_tuple_copies{0};

void CountCopy(size_t tuples) {
  g_relation_copies.fetch_add(1, std::memory_order_relaxed);
  g_tuple_copies.fetch_add(tuples, std::memory_order_relaxed);
}

}  // namespace

uint64_t LegacyRelation::CopiesMade() {
  return g_relation_copies.load(std::memory_order_relaxed);
}

uint64_t LegacyRelation::TuplesCopied() {
  return g_tuple_copies.load(std::memory_order_relaxed);
}

LegacyRelation::LegacyRelation(const LegacyRelation& other)
    : arity_(other.arity_), dirty_(other.dirty_), tuples_(other.tuples_) {
  CountCopy(tuples_.size());
}

LegacyRelation& LegacyRelation::operator=(const LegacyRelation& other) {
  if (this == &other) return *this;
  arity_ = other.arity_;
  dirty_ = other.dirty_;
  tuples_ = other.tuples_;
  CountCopy(tuples_.size());
  return *this;
}

Status LegacyRelation::TryInsert(Tuple t) {
  if (static_cast<int>(t.size()) != arity_) {
    return InvalidArgumentError("tuple arity " + std::to_string(t.size()) +
                                " does not match relation arity " +
                                std::to_string(arity_));
  }
  tuples_.push_back(std::move(t));
  dirty_ = true;
  return Status::Ok();
}

void LegacyRelation::Insert(Tuple t) {
  EMCALC_CHECK_MSG(static_cast<int>(t.size()) == arity_,
                   "tuple arity %zu != relation arity %d", t.size(), arity_);
  tuples_.push_back(std::move(t));
  dirty_ = true;
}

void LegacyRelation::Normalize() const {
  if (!dirty_) return;
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
  dirty_ = false;
}

bool LegacyRelation::Contains(const Tuple& t) const {
  Normalize();
  return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

LegacyRelation LegacyRelation::UnionWith(const LegacyRelation& other) const& {
  EMCALC_CHECK(arity_ == other.arity_);
  Normalize();
  other.Normalize();
  LegacyRelation out(arity_);
  std::set_union(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                 other.tuples_.end(), std::back_inserter(out.tuples_));
  g_tuple_copies.fetch_add(out.tuples_.size(), std::memory_order_relaxed);
  return out;
}

LegacyRelation LegacyRelation::UnionWith(const LegacyRelation& other) && {
  EMCALC_CHECK(arity_ == other.arity_);
  Normalize();
  other.Normalize();
  // Keep this side's storage: append the other side's tuples and merge in
  // place. Only |other| tuples are copied (vs |this| + |other| above).
  LegacyRelation out(arity_);
  out.tuples_ = std::move(tuples_);
  size_t mid = out.tuples_.size();
  out.tuples_.insert(out.tuples_.end(), other.tuples_.begin(),
                     other.tuples_.end());
  std::inplace_merge(out.tuples_.begin(), out.tuples_.begin() + static_cast<ptrdiff_t>(mid),
                     out.tuples_.end());
  out.tuples_.erase(std::unique(out.tuples_.begin(), out.tuples_.end()),
                    out.tuples_.end());
  g_tuple_copies.fetch_add(other.tuples_.size(), std::memory_order_relaxed);
  return out;
}

LegacyRelation LegacyRelation::DifferenceWith(const LegacyRelation& other) const& {
  EMCALC_CHECK(arity_ == other.arity_);
  Normalize();
  other.Normalize();
  LegacyRelation out(arity_);
  std::set_difference(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                      other.tuples_.end(), std::back_inserter(out.tuples_));
  g_tuple_copies.fetch_add(out.tuples_.size(), std::memory_order_relaxed);
  return out;
}

LegacyRelation LegacyRelation::DifferenceWith(const LegacyRelation& other) && {
  EMCALC_CHECK(arity_ == other.arity_);
  Normalize();
  other.Normalize();
  // Filter in place: no tuples are copied, survivors shift by move.
  LegacyRelation out(arity_);
  out.tuples_ = std::move(tuples_);
  out.tuples_.erase(
      std::remove_if(out.tuples_.begin(), out.tuples_.end(),
                     [&other](const Tuple& t) {
                       return std::binary_search(other.tuples_.begin(),
                                                 other.tuples_.end(), t);
                     }),
      out.tuples_.end());
  return out;
}

bool operator==(const LegacyRelation& a, const LegacyRelation& b) {
  if (a.arity_ != b.arity_) return false;
  a.Normalize();
  b.Normalize();
  return a.tuples_ == b.tuples_;
}

std::string LegacyRelation::ToString() const {
  Normalize();
  std::string out;
  for (const Tuple& t : tuples_) {
    out += "(";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ", ";
      out += t[i].ToString();
    }
    out += ")\n";
  }
  return out;
}

}  // namespace emcalc
