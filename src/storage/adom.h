// Active domains and the term closure term^k(C) (Section 4 of the paper).
//
// adom(q, I) is the set of values occurring in the instance I or as
// constants of the query q. term^k(C) closes C under k rounds of
// application of the query's scalar functions — functions only, never
// inverses; these are the "neighborhoods" that embedded domain independence
// quantifies over (specialized k-closures of the DB-windows of [BM92a]).
#ifndef EMCALC_STORAGE_ADOM_H_
#define EMCALC_STORAGE_ADOM_H_

#include <string>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/base/thread_pool.h"
#include "src/calculus/ast.h"
#include "src/obs/resource.h"
#include "src/storage/database.h"
#include "src/storage/interpretation.h"

namespace emcalc {

// A sorted duplicate-free set of domain values.
using ValueSet = std::vector<Value>;

// Sorts + dedupes in place.
void NormalizeValueSet(ValueSet& values);

// All values occurring in any relation of `db`.
ValueSet ActiveDomain(const Database& db);

// The constants of `f`, as values.
ValueSet QueryConstants(const AstContext& ctx, const Formula* f);

// adom(q, I): instance values plus query constants.
ValueSet ActiveDomain(const AstContext& ctx, const Formula* f,
                      const Database& db);

// term^level(base) under the functions `fns` (name/arity pairs, resolved in
// `registry`). Fails with kUnsupported when the closure would exceed
// `max_size` values (arity-2 functions grow the closure quadratically per
// level; callers choose their budget).
//
// Membership is tracked in a hash set, so each round costs O(applications
// + fresh) instead of re-sorting the whole closure. `num_threads` > 1
// splits each round's argument-tuple enumeration into morsels on the
// global thread pool (0 means hardware concurrency); the result is
// identical for every thread count. Functions must be pure.
//
// When `governor` is non-null its per-query limits are checked at every
// closure round: a tripped limit (including max_term_closure_size, checked
// against the closure's member count) aborts with kResourceExhausted.
// When `par_stats` is non-null, contention telemetry of the closure's
// parallel rounds is accumulated into it (see ThreadPool::RegionStats).
StatusOr<ValueSet> TermClosure(
    ValueSet base, const std::vector<std::pair<std::string, int>>& fns,
    const FunctionRegistry& registry, int level, size_t max_size,
    size_t num_threads = 1, obs::ResourceGovernor* governor = nullptr,
    ThreadPool::RegionStats* par_stats = nullptr);

}  // namespace emcalc

#endif  // EMCALC_STORAGE_ADOM_H_
