#include "src/storage/adom.h"

#include <algorithm>

#include "src/calculus/analysis.h"

namespace emcalc {

void NormalizeValueSet(ValueSet& values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
}

ValueSet ActiveDomain(const Database& db) {
  ValueSet out;
  for (const auto& [name, rel] : db.relations()) {
    for (const Tuple& t : rel) {
      out.insert(out.end(), t.begin(), t.end());
    }
  }
  NormalizeValueSet(out);
  return out;
}

ValueSet QueryConstants(const AstContext& ctx, const Formula* f) {
  ValueSet out;
  for (uint32_t id : CollectConstants(f)) {
    out.push_back(ctx.ConstantAt(id));
  }
  NormalizeValueSet(out);
  return out;
}

ValueSet ActiveDomain(const AstContext& ctx, const Formula* f,
                      const Database& db) {
  ValueSet out = ActiveDomain(db);
  ValueSet consts = QueryConstants(ctx, f);
  out.insert(out.end(), consts.begin(), consts.end());
  NormalizeValueSet(out);
  return out;
}

StatusOr<ValueSet> TermClosure(
    ValueSet base, const std::vector<std::pair<std::string, int>>& fns,
    const FunctionRegistry& registry, int level, size_t max_size) {
  NormalizeValueSet(base);

  // Resolve all functions up front.
  std::vector<const ScalarFunction*> resolved;
  for (const auto& [name, arity] : fns) {
    auto f = registry.Get(name, arity);
    if (!f.ok()) return f.status();
    resolved.push_back(*f);
  }

  ValueSet frontier = base;  // values new in the previous round
  for (int round = 0; round < level; ++round) {
    if (frontier.empty()) break;
    ValueSet fresh;
    for (const ScalarFunction* fn : resolved) {
      // Enumerate argument tuples with at least one frontier component
      // (tuples entirely over older values were already applied).
      const size_t arity = static_cast<size_t>(fn->arity);
      std::vector<Value> args(arity);
      // For simplicity enumerate over base^arity and skip all-old tuples;
      // `base` here is the closure so far.
      std::vector<const ValueSet*> domains(arity, &base);
      std::vector<size_t> cursor(arity, 0);
      bool done = fn->arity > 0 && base.empty();
      while (!done) {
        bool touches_frontier = round == 0;
        for (size_t i = 0; i < arity; ++i) {
          args[i] = (*domains[i])[cursor[i]];
          if (!touches_frontier &&
              std::binary_search(frontier.begin(), frontier.end(), args[i])) {
            touches_frontier = true;
          }
        }
        if (touches_frontier) {
          Value v = fn->fn(args);
          if (!std::binary_search(base.begin(), base.end(), v)) {
            fresh.push_back(v);
          }
        }
        // Advance the mixed-radix cursor.
        int pos = fn->arity - 1;
        for (; pos >= 0; --pos) {
          size_t p = static_cast<size_t>(pos);
          if (++cursor[p] < domains[p]->size()) break;
          cursor[p] = 0;
        }
        if (pos < 0) done = true;
        if (fn->arity == 0) done = true;
      }
      if (fn->arity == 0) {
        Value v = fn->fn({});
        if (!std::binary_search(base.begin(), base.end(), v)) {
          fresh.push_back(v);
        }
      }
    }
    NormalizeValueSet(fresh);
    ValueSet next;
    next.reserve(base.size() + fresh.size());
    std::set_union(base.begin(), base.end(), fresh.begin(), fresh.end(),
                   std::back_inserter(next));
    if (next.size() > max_size) {
      return UnsupportedError(
          "term closure exceeded budget of " + std::to_string(max_size) +
          " values at level " + std::to_string(round + 1));
    }
    frontier = std::move(fresh);
    base = std::move(next);
  }
  return base;
}

}  // namespace emcalc
