#include "src/storage/adom.h"

#include <algorithm>
#include <unordered_set>

#include "src/base/thread_pool.h"
#include "src/calculus/analysis.h"

namespace emcalc {

void NormalizeValueSet(ValueSet& values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
}

ValueSet ActiveDomain(const Database& db) {
  ValueSet out;
  for (const auto& [name, rel] : db.relations()) {
    for (TupleRef t : rel) {
      out.insert(out.end(), t.begin(), t.end());
    }
  }
  NormalizeValueSet(out);
  return out;
}

ValueSet QueryConstants(const AstContext& ctx, const Formula* f) {
  ValueSet out;
  for (uint32_t id : CollectConstants(f)) {
    out.push_back(ctx.ConstantAt(id));
  }
  NormalizeValueSet(out);
  return out;
}

ValueSet ActiveDomain(const AstContext& ctx, const Formula* f,
                      const Database& db) {
  ValueSet out = ActiveDomain(db);
  ValueSet consts = QueryConstants(ctx, f);
  out.insert(out.end(), consts.begin(), consts.end());
  NormalizeValueSet(out);
  return out;
}

StatusOr<ValueSet> TermClosure(
    ValueSet base, const std::vector<std::pair<std::string, int>>& fns,
    const FunctionRegistry& registry, int level, size_t max_size,
    size_t num_threads, obs::ResourceGovernor* governor,
    ThreadPool::RegionStats* par_stats) {
  NormalizeValueSet(base);

  // Resolve all functions up front.
  std::vector<const ScalarFunction*> resolved;
  for (const auto& [name, arity] : fns) {
    auto f = registry.Get(name, arity);
    if (!f.ok()) return f.status();
    resolved.push_back(*f);
  }

  size_t threads =
      num_threads == 0 ? ThreadPool::HardwareThreads() : num_threads;
  constexpr size_t kGrain = 4096;  // fn applications per morsel

  // The closure so far, twice: `members` answers membership in O(1), `all`
  // keeps an indexable enumeration order. Each round costs O(applications
  // + fresh values) — the closure is never re-sorted; one final sort
  // restores the ValueSet contract.
  std::unordered_set<Value> members(base.begin(), base.end());
  std::unordered_set<Value> frontier(members);
  ValueSet all = std::move(base);  // sorted + deduped above

  // Approximate the closure's working set for memory accounting: the
  // enumeration vector's capacity plus ~3 words per hash-set element
  // (node + bucket share). Updated once per round; released on return.
  obs::MemoryCharge memory;
  auto charge_round = [&] {
    memory.Update(static_cast<int64_t>(
        (all.capacity() + 3 * members.size() + 3 * frontier.size()) *
        sizeof(Value)));
  };
  charge_round();

  for (int round = 0; round < level; ++round) {
    if (frontier.empty()) break;
    if (governor != nullptr) {
      if (Status s = governor->CheckClosure(members.size()); !s.ok()) {
        return s;
      }
    }
    ValueSet fresh;  // values first seen this round
    for (const ScalarFunction* fn : resolved) {
      const size_t arity = static_cast<size_t>(fn->arity);
      if (arity == 0) {
        // A constant: only ever new in the first round.
        if (round > 0) continue;
        Value v = fn->fn({});
        if (members.insert(v).second) fresh.push_back(v);
        continue;
      }
      const size_t n = all.size();
      if (n == 0) continue;
      // Enumerate all^arity as a flat index space, skipping tuples with no
      // frontier component (already applied in an earlier round).
      size_t total = 1;
      for (size_t i = 0; i < arity; ++i) {
        // A size_t overflow here means an astronomically large argument
        // space; the closure itself would blow the value budget long
        // before such an enumeration finished.
        if (total > SIZE_MAX / n) {
          return UnsupportedError(
              "term closure exceeded budget of " + std::to_string(max_size) +
              " values at level " + std::to_string(round + 1));
        }
        total *= n;
      }
      const bool all_touch = round == 0;
      // Each morsel collects candidate values privately; candidates are
      // only checked against the pre-round membership set (read-only in
      // the region), so workers never write shared state. Morsel
      // boundaries depend on (total, kGrain) alone, and the sequential
      // merge below visits buffers in morsel order, making the outcome
      // independent of the thread count.
      size_t num_morsels = (total + kGrain - 1) / kGrain;
      std::vector<std::vector<Value>> candidates(num_morsels);
      ThreadPool::Global().ParallelFor(
          total, kGrain, threads,
          [&](size_t /*worker*/, size_t begin, size_t end) {
            std::vector<Value> args(arity);
            std::vector<Value>& out = candidates[begin / kGrain];
            for (size_t t = begin; t < end; ++t) {
              size_t rest = t;
              bool touches = all_touch;
              for (size_t i = 0; i < arity; ++i) {
                const Value& v = all[rest % n];
                rest /= n;
                args[i] = v;
                if (!touches && frontier.count(v) > 0) touches = true;
              }
              if (!touches) continue;
              Value v = fn->fn(args);
              if (members.count(v) == 0) out.push_back(v);
            }
          },
          par_stats);
      for (const std::vector<Value>& morsel : candidates) {
        for (const Value& v : morsel) {
          if (members.insert(v).second) fresh.push_back(v);
        }
      }
    }
    if (members.size() > max_size) {
      return UnsupportedError(
          "term closure exceeded budget of " + std::to_string(max_size) +
          " values at level " + std::to_string(round + 1));
    }
    all.insert(all.end(), fresh.begin(), fresh.end());
    frontier.clear();
    frontier.insert(fresh.begin(), fresh.end());
    charge_round();
  }
  if (governor != nullptr) {
    if (Status s = governor->CheckClosure(members.size()); !s.ok()) {
      return s;
    }
  }
  NormalizeValueSet(all);
  return all;
}

}  // namespace emcalc
