// The canonical Relation is the flat, arity-strided FlatRelation
// (src/storage/flat_relation.h). This header keeps the original
// vector-of-tuples implementation alive as LegacyRelation: it is the
// differential-testing oracle (tests/storage_test.cc checks FlatRelation's
// set operations against it on random inputs) and the baseline side of
// bench/bench_flat_exec.cc's old-vs-new layout comparison.
#ifndef EMCALC_STORAGE_RELATION_H_
#define EMCALC_STORAGE_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/value.h"
#include "src/storage/flat_relation.h"

namespace emcalc {

// The relation type the rest of the codebase uses.
using Relation = FlatRelation;

// The original representation: a sorted, duplicate-free vector of
// individually heap-allocated tuples. Same observable set semantics as
// FlatRelation; kept only as an oracle and benchmark baseline.
class LegacyRelation {
 public:
  explicit LegacyRelation(int arity) : arity_(arity) {}

  // Copies are instrumented (see CopiesMade/TuplesCopied); moves are free.
  LegacyRelation(const LegacyRelation& other);
  LegacyRelation& operator=(const LegacyRelation& other);
  LegacyRelation(LegacyRelation&&) = default;
  LegacyRelation& operator=(LegacyRelation&&) = default;

  int arity() const { return arity_; }
  size_t size() const {
    Normalize();
    return tuples_.size();
  }
  bool empty() const {
    Normalize();
    return tuples_.empty();
  }
  const std::vector<Tuple>& tuples() const {
    Normalize();
    return tuples_;
  }
  auto begin() const {
    Normalize();
    return tuples_.begin();
  }
  auto end() const {
    Normalize();
    return tuples_.end();
  }

  // Capacity hint for bulk inserts.
  void Reserve(size_t n) { tuples_.reserve(n); }

  // Inserts a tuple; error on arity mismatch. Amortized: tuples are
  // appended and normalized lazily on first read.
  Status TryInsert(Tuple t);

  // Inserts a tuple whose arity the caller has already validated; aborts
  // on mismatch.
  void Insert(Tuple t);

  // Membership test.
  bool Contains(const Tuple& t) const;

  // Set algebra; arities must match. The rvalue overloads reuse this
  // relation's tuple storage instead of copying both sides into a fresh
  // vector.
  LegacyRelation UnionWith(const LegacyRelation& other) const&;
  LegacyRelation UnionWith(const LegacyRelation& other) &&;
  LegacyRelation DifferenceWith(const LegacyRelation& other) const&;
  LegacyRelation DifferenceWith(const LegacyRelation& other) &&;

  friend bool operator==(const LegacyRelation& a, const LegacyRelation& b);

  // Multi-line "(1, 'a')\n(2, 'b')" rendering, for tests and examples.
  std::string ToString() const;

  // Process-wide copy instrumentation over legacy-relation operations
  // (separate counters from FlatRelation's).
  static uint64_t CopiesMade();
  static uint64_t TuplesCopied();

 private:
  void Normalize() const;

  int arity_;
  mutable bool dirty_ = false;
  mutable std::vector<Tuple> tuples_;
};

}  // namespace emcalc

#endif  // EMCALC_STORAGE_RELATION_H_
