// Finite relation instances with set semantics. Tuples are kept as a
// sorted, duplicate-free vector, which makes evaluation deterministic and
// set operations (union/difference/comparison) cheap.
#ifndef EMCALC_STORAGE_RELATION_H_
#define EMCALC_STORAGE_RELATION_H_

#include <string>
#include <vector>

#include "src/base/value.h"

namespace emcalc {

// A database tuple.
using Tuple = std::vector<Value>;

// A finite relation of fixed arity. Arity 0 is legal: such a relation is
// either empty ("false") or contains the single empty tuple ("true").
class Relation {
 public:
  explicit Relation(int arity) : arity_(arity) {}

  int arity() const { return arity_; }
  size_t size() const {
    Normalize();
    return tuples_.size();
  }
  bool empty() const {
    Normalize();
    return tuples_.empty();
  }
  const std::vector<Tuple>& tuples() const {
    Normalize();
    return tuples_;
  }
  auto begin() const {
    Normalize();
    return tuples_.begin();
  }
  auto end() const {
    Normalize();
    return tuples_.end();
  }

  // Inserts a tuple; aborts on arity mismatch. Amortized: tuples are
  // appended and normalized lazily on first read.
  void Insert(Tuple t);

  // Membership test.
  bool Contains(const Tuple& t) const;

  // Set algebra; arities must match.
  Relation UnionWith(const Relation& other) const;
  Relation DifferenceWith(const Relation& other) const;

  friend bool operator==(const Relation& a, const Relation& b);

  // Multi-line "(1, 'a')\n(2, 'b')" rendering, for tests and examples.
  std::string ToString() const;

 private:
  void Normalize() const;

  int arity_;
  mutable bool dirty_ = false;
  mutable std::vector<Tuple> tuples_;
};

}  // namespace emcalc

#endif  // EMCALC_STORAGE_RELATION_H_
