// Finite relation instances with set semantics. Tuples are kept as a
// sorted, duplicate-free vector, which makes evaluation deterministic and
// set operations (union/difference/comparison) cheap.
#ifndef EMCALC_STORAGE_RELATION_H_
#define EMCALC_STORAGE_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/value.h"

namespace emcalc {

// A database tuple.
using Tuple = std::vector<Value>;

// A finite relation of fixed arity. Arity 0 is legal: such a relation is
// either empty ("false") or contains the single empty tuple ("true").
class Relation {
 public:
  explicit Relation(int arity) : arity_(arity) {}

  // Copies are instrumented (see CopiesMade/TuplesCopied); moves are free.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  int arity() const { return arity_; }
  size_t size() const {
    Normalize();
    return tuples_.size();
  }
  bool empty() const {
    Normalize();
    return tuples_.empty();
  }
  const std::vector<Tuple>& tuples() const {
    Normalize();
    return tuples_;
  }
  auto begin() const {
    Normalize();
    return tuples_.begin();
  }
  auto end() const {
    Normalize();
    return tuples_.end();
  }

  // Capacity hint for bulk inserts.
  void Reserve(size_t n) { tuples_.reserve(n); }

  // Inserts a tuple; error on arity mismatch. Amortized: tuples are
  // appended and normalized lazily on first read.
  Status TryInsert(Tuple t);

  // Inserts a tuple whose arity the caller has already validated; aborts
  // on mismatch (internal evaluator paths where a mismatch is a bug, not
  // bad input — external data goes through TryInsert).
  void Insert(Tuple t);

  // Membership test.
  bool Contains(const Tuple& t) const;

  // Set algebra; arities must match. The rvalue overloads reuse this
  // relation's tuple storage instead of copying both sides into a fresh
  // vector — the execution layer uses them to make union/difference chains
  // copy-light.
  Relation UnionWith(const Relation& other) const&;
  Relation UnionWith(const Relation& other) &&;
  Relation DifferenceWith(const Relation& other) const&;
  Relation DifferenceWith(const Relation& other) &&;

  friend bool operator==(const Relation& a, const Relation& b);

  // Multi-line "(1, 'a')\n(2, 'b')" rendering, for tests and examples.
  std::string ToString() const;

  // Process-wide copy instrumentation: whole-relation copies and tuples
  // copied into new storage by relation copies and the lvalue set
  // operations. The execution layer samples deltas around each operator to
  // expose copy costs per operator; tests compare evaluator strategies.
  static uint64_t CopiesMade();
  static uint64_t TuplesCopied();

 private:
  void Normalize() const;

  int arity_;
  mutable bool dirty_ = false;
  mutable std::vector<Tuple> tuples_;
};

}  // namespace emcalc

#endif  // EMCALC_STORAGE_RELATION_H_
