// View expansion: named queries usable as relation atoms inside other
// queries. A view V = {h1,...,hn | phi} makes an atom V(t1,...,tn) stand
// for phi with hi replaced by ti (bound variables freshly renamed), i.e.
// views are macros over the calculus — after expansion the safety analysis
// and translation see plain formulas, so safety composes automatically.
#ifndef EMCALC_CALCULUS_VIEWS_H_
#define EMCALC_CALCULUS_VIEWS_H_

#include <map>

#include "src/base/status.h"
#include "src/calculus/ast.h"

namespace emcalc {

// View name -> definition.
using ViewMap = std::map<Symbol, Query>;

// Replaces every atom whose relation symbol names a view with the view's
// expanded body (recursively; views may reference other views). Errors on
// arity mismatches and cyclic view references.
StatusOr<const Formula*> ExpandViews(AstContext& ctx, const Formula* f,
                                     const ViewMap& views);

}  // namespace emcalc

#endif  // EMCALC_CALCULUS_VIEWS_H_
