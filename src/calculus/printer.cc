#include "src/calculus/printer.h"

namespace emcalc {
namespace {

// Binding strength used to decide parenthesization. Higher binds tighter.
enum Level { kLevelOr = 0, kLevelAnd = 1, kLevelUnary = 2 };

void PrintTerm(const AstContext& ctx, const Term* t, std::string& out) {
  switch (t->kind()) {
    case Term::Kind::kVar:
      out += ctx.symbols().Name(t->symbol());
      break;
    case Term::Kind::kConst:
      out += ctx.ConstantAt(t->const_id()).ToString();
      break;
    case Term::Kind::kApply: {
      out += ctx.symbols().Name(t->symbol());
      out += "(";
      bool first = true;
      for (const Term* a : t->args()) {
        if (!first) out += ", ";
        first = false;
        PrintTerm(ctx, a, out);
      }
      out += ")";
      break;
    }
  }
}

void PrintFormula(const AstContext& ctx, const Formula* f, Level parent,
                  std::string& out) {
  auto parenthesize = [&](Level mine, auto&& body) {
    bool need = mine < parent;
    if (need) out += "(";
    body();
    if (need) out += ")";
  };

  switch (f->kind()) {
    case FormulaKind::kTrue:
      out += "true";
      break;
    case FormulaKind::kFalse:
      out += "false";
      break;
    case FormulaKind::kRel: {
      out += ctx.symbols().Name(f->rel());
      out += "(";
      bool first = true;
      for (const Term* t : f->terms()) {
        if (!first) out += ", ";
        first = false;
        PrintTerm(ctx, t, out);
      }
      out += ")";
      break;
    }
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      PrintTerm(ctx, f->lhs(), out);
      switch (f->kind()) {
        case FormulaKind::kEq:
          out += " = ";
          break;
        case FormulaKind::kNeq:
          out += " != ";
          break;
        case FormulaKind::kLess:
          out += " < ";
          break;
        default:
          out += " <= ";
          break;
      }
      PrintTerm(ctx, f->rhs(), out);
      break;
    case FormulaKind::kNot:
      out += "not ";
      PrintFormula(ctx, f->child(), kLevelUnary, out);
      break;
    case FormulaKind::kAnd:
      parenthesize(kLevelAnd, [&] {
        bool first = true;
        for (const Formula* c : f->children()) {
          if (!first) out += " and ";
          first = false;
          PrintFormula(ctx, c, kLevelAnd, out);
        }
      });
      break;
    case FormulaKind::kOr:
      parenthesize(kLevelOr, [&] {
        bool first = true;
        for (const Formula* c : f->children()) {
          if (!first) out += " or ";
          first = false;
          PrintFormula(ctx, c, kLevelAnd, out);
        }
      });
      break;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      out += f->kind() == FormulaKind::kExists ? "exists " : "forall ";
      bool first = true;
      for (Symbol v : f->vars()) {
        if (!first) out += ", ";
        first = false;
        out += ctx.symbols().Name(v);
      }
      out += " (";
      PrintFormula(ctx, f->child(), kLevelOr, out);
      out += ")";
      break;
    }
  }
}

}  // namespace

std::string TermToString(const AstContext& ctx, const Term* t) {
  std::string out;
  PrintTerm(ctx, t, out);
  return out;
}

std::string FormulaToString(const AstContext& ctx, const Formula* f) {
  std::string out;
  PrintFormula(ctx, f, kLevelOr, out);
  return out;
}

std::string QueryToString(const AstContext& ctx, const Query& q) {
  std::string out = "{";
  bool first = true;
  for (Symbol v : q.head) {
    if (!first) out += ", ";
    first = false;
    out += ctx.symbols().Name(v);
  }
  out += " | ";
  out += FormulaToString(ctx, q.body);
  out += "}";
  return out;
}

}  // namespace emcalc
