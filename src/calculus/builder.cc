#include "src/calculus/builder.h"

namespace emcalc::builder {
namespace {

// Shared flatten-and-fold body for And/Or. `unit` is the identity element
// (True for And) and `zero` the absorbing element (False for And).
const Formula* Junct(AstContext& ctx, std::vector<const Formula*> children,
                     FormulaKind kind, const Formula* unit,
                     const Formula* zero) {
  std::vector<const Formula*> flat;
  flat.reserve(children.size());
  for (const Formula* c : children) {
    if (c->kind() == unit->kind()) continue;
    if (c->kind() == zero->kind()) return zero;
    if (c->kind() == kind) {
      for (const Formula* g : c->children()) flat.push_back(g);
    } else {
      flat.push_back(c);
    }
  }
  if (flat.empty()) return unit;
  if (flat.size() == 1) return flat[0];
  return kind == FormulaKind::kAnd ? ctx.MakeAnd(flat) : ctx.MakeOr(flat);
}

}  // namespace

const Formula* And(AstContext& ctx, std::vector<const Formula*> children) {
  return Junct(ctx, std::move(children), FormulaKind::kAnd, ctx.True(),
               ctx.False());
}

const Formula* Or(AstContext& ctx, std::vector<const Formula*> children) {
  return Junct(ctx, std::move(children), FormulaKind::kOr, ctx.False(),
               ctx.True());
}

const Formula* Not(AstContext& ctx, const Formula* f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
      return ctx.False();
    case FormulaKind::kFalse:
      return ctx.True();
    case FormulaKind::kNot:
      return f->child();
    default:
      return ctx.MakeNot(f);
  }
}

const Formula* Exists(AstContext& ctx, std::vector<Symbol> vars,
                      const Formula* body) {
  if (vars.empty()) return body;
  if (body->kind() == FormulaKind::kExists) {
    std::vector<Symbol> merged = vars;
    for (Symbol v : body->vars()) merged.push_back(v);
    return ctx.MakeExists(merged, body->child());
  }
  return ctx.MakeExists(vars, body);
}

const Formula* Forall(AstContext& ctx, std::vector<Symbol> vars,
                      const Formula* body) {
  if (vars.empty()) return body;
  if (body->kind() == FormulaKind::kForall) {
    std::vector<Symbol> merged = vars;
    for (Symbol v : body->vars()) merged.push_back(v);
    return ctx.MakeForall(merged, body->child());
  }
  return ctx.MakeForall(vars, body);
}

const Formula* Rel(AstContext& ctx, std::string_view name,
                   std::vector<const Term*> args) {
  return ctx.MakeRel(ctx.symbols().Intern(name), args);
}

const Term* Var(AstContext& ctx, std::string_view name) {
  return ctx.MakeVar(name);
}

const Term* IntConst(AstContext& ctx, int64_t v) {
  return ctx.MakeConst(Value::Int(v));
}

const Term* StrConst(AstContext& ctx, std::string_view v) {
  return ctx.MakeConst(Value::Str(std::string(v)));
}

const Term* Apply(AstContext& ctx, std::string_view fn,
                  std::vector<const Term*> args) {
  return ctx.MakeApply(ctx.symbols().Intern(fn), args);
}

}  // namespace emcalc::builder
