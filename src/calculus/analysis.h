// Static analyses over terms and formulas: variable sets, signatures,
// function-depth measures, and well-formedness checks.
#ifndef EMCALC_CALCULUS_ANALYSIS_H_
#define EMCALC_CALCULUS_ANALYSIS_H_

#include <map>
#include <vector>

#include "src/base/status.h"
#include "src/base/symbol_set.h"
#include "src/calculus/ast.h"

namespace emcalc {

// Variables occurring in `t` (at any nesting depth).
SymbolSet TermVars(const Term* t);

// Variables occurring at the *top level* of a term list, i.e. the arguments
// that are themselves variables. Used by bd(): a relation atom bounds only
// these (knowing f(x) is in a finite set does not bound x, since function
// inverses are unavailable — Section 1 of the paper).
SymbolSet DirectVars(std::span<const Term* const> terms);

// Free variables of `f`.
SymbolSet FreeVars(const Formula* f);

// All variables (free and bound) mentioned in `f`.
SymbolSet AllVars(const Formula* f);

// True if any term in `f` applies a scalar function.
bool HasFunctions(const Formula* f);

// Number of function-application nodes in `f`. This is a sound upper bound
// for the closure level of Theorem 6.6 (any chain of function applications
// through quantifiers has length at most the total application count); the
// reference evaluator uses it as its default evaluation level.
int CountApplications(const Formula* f);

// Maximum syntactic nesting depth of function applications in `f`
// (g(f(x)) has depth 2). Reported alongside CountApplications in the
// experiment output.
int MaxFunctionDepth(const Formula* f);

// Total number of formula nodes (size measure for benchmarks).
int FormulaSize(const Formula* f);

// Number of quantifier nodes.
int QuantifierCount(const Formula* f);

// The relation symbols used in `f` with their arities.
std::map<Symbol, int> CollectRelations(const Formula* f);

// The function symbols used in `f` with their arities.
std::map<Symbol, int> CollectFunctions(const Formula* f);

// The constant-pool ids of constants appearing in `f`.
std::vector<uint32_t> CollectConstants(const Formula* f);

// Structural sanity: every relation symbol used with one arity, every
// function symbol used with one arity, quantified variable lists are
// duplicate-free, and no quantifier shadows a variable that is still free
// in an enclosing scope of the same formula (shadowing is legal calculus
// but rejected here to keep the rewrite passes simple; the parser and the
// rectifier both establish this form).
Status CheckWellFormed(const Formula* f, const SymbolTable& symbols);

// Query-level check: head variables are exactly distinct and free in body.
Status CheckWellFormed(const Query& q, const SymbolTable& symbols);

}  // namespace emcalc

#endif  // EMCALC_CALCULUS_ANALYSIS_H_
