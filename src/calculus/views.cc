#include "src/calculus/views.h"

#include <string>
#include <vector>

#include "src/base/symbol_set.h"
#include "src/calculus/builder.h"
#include "src/calculus/rewrite.h"

namespace emcalc {
namespace {

class Expander {
 public:
  Expander(AstContext& ctx, const ViewMap& views)
      : ctx_(ctx), views_(views) {}

  StatusOr<const Formula*> Expand(const Formula* f) {
    switch (f->kind()) {
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
      case FormulaKind::kEq:
      case FormulaKind::kNeq:
      case FormulaKind::kLess:
      case FormulaKind::kLessEq:
        return f;
      case FormulaKind::kRel: {
        auto it = views_.find(f->rel());
        if (it == views_.end()) return f;
        return ExpandAtom(f, it->second);
      }
      case FormulaKind::kNot: {
        auto c = Expand(f->child());
        if (!c.ok()) return c;
        return *c == f->child() ? f : builder::Not(ctx_, *c);
      }
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        std::vector<const Formula*> children;
        bool changed = false;
        for (const Formula* c : f->children()) {
          auto nc = Expand(c);
          if (!nc.ok()) return nc;
          changed |= (*nc != c);
          children.push_back(*nc);
        }
        if (!changed) return f;
        return f->kind() == FormulaKind::kAnd
                   ? builder::And(ctx_, std::move(children))
                   : builder::Or(ctx_, std::move(children));
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        auto body = Expand(f->child());
        if (!body.ok()) return body;
        if (*body == f->child()) return f;
        std::vector<Symbol> vars(f->vars().begin(), f->vars().end());
        return f->kind() == FormulaKind::kExists
                   ? builder::Exists(ctx_, std::move(vars), *body)
                   : builder::Forall(ctx_, std::move(vars), *body);
      }
    }
    return f;
  }

 private:
  StatusOr<const Formula*> ExpandAtom(const Formula* atom, const Query& view) {
    if (atom->terms().size() != view.head.size()) {
      return InvalidArgumentError(
          "view '" + std::string(ctx_.symbols().Name(atom->rel())) +
          "' has arity " + std::to_string(view.head.size()) + ", used with " +
          std::to_string(atom->terms().size()));
    }
    if (in_progress_.Contains(atom->rel())) {
      return InvalidArgumentError(
          "cyclic view reference through '" +
          std::string(ctx_.symbols().Name(atom->rel())) + "'");
    }
    in_progress_.Insert(atom->rel());
    // Expand views inside the definition first (recursion), then rename its
    // bound variables apart and substitute the argument terms for the head.
    auto body = Expand(view.body);
    if (!body.ok()) {
      in_progress_.Remove(atom->rel());
      return body;
    }
    in_progress_.Remove(atom->rel());
    const Formula* fresh = Rectify(ctx_, *body);
    Substitution sub;
    for (size_t i = 0; i < view.head.size(); ++i) {
      sub.emplace(view.head[i], atom->terms()[i]);
    }
    return SubstituteFormula(ctx_, fresh, sub);
  }

  AstContext& ctx_;
  const ViewMap& views_;
  SymbolSet in_progress_;
};

}  // namespace

StatusOr<const Formula*> ExpandViews(AstContext& ctx, const Formula* f,
                                     const ViewMap& views) {
  if (views.empty()) return f;
  return Expander(ctx, views).Expand(f);
}

}  // namespace emcalc
