#include "src/calculus/analysis.h"

#include <string>

namespace emcalc {
namespace {

void CollectTermVars(const Term* t, std::vector<Symbol>& out) {
  switch (t->kind()) {
    case Term::Kind::kVar:
      out.push_back(t->symbol());
      break;
    case Term::Kind::kConst:
      break;
    case Term::Kind::kApply:
      for (const Term* a : t->args()) CollectTermVars(a, out);
      break;
  }
}

// Walks every term of `f`, invoking `fn` on each top-level term.
template <typename Fn>
void ForEachTerm(const Formula* f, Fn&& fn) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      break;
    case FormulaKind::kRel:
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      for (const Term* t : f->terms()) fn(t);
      break;
    case FormulaKind::kNot:
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      ForEachTerm(f->child(), fn);
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const Formula* c : f->children()) ForEachTerm(c, fn);
      break;
  }
}

void FreeVarsInto(const Formula* f, std::vector<Symbol>& out,
                  std::vector<Symbol>& bound) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      break;
    case FormulaKind::kRel:
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq: {
      std::vector<Symbol> vars;
      for (const Term* t : f->terms()) CollectTermVars(t, vars);
      for (Symbol v : vars) {
        bool is_bound = false;
        for (Symbol b : bound) {
          if (b == v) {
            is_bound = true;
            break;
          }
        }
        if (!is_bound) out.push_back(v);
      }
      break;
    }
    case FormulaKind::kNot:
      FreeVarsInto(f->child(), out, bound);
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const Formula* c : f->children()) FreeVarsInto(c, out, bound);
      break;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      size_t mark = bound.size();
      for (Symbol v : f->vars()) bound.push_back(v);
      FreeVarsInto(f->child(), out, bound);
      bound.resize(mark);
      break;
    }
  }
}

}  // namespace

SymbolSet TermVars(const Term* t) {
  std::vector<Symbol> vars;
  CollectTermVars(t, vars);
  return SymbolSet(std::move(vars));
}

SymbolSet DirectVars(std::span<const Term* const> terms) {
  std::vector<Symbol> vars;
  for (const Term* t : terms) {
    if (t->is_var()) vars.push_back(t->symbol());
  }
  return SymbolSet(std::move(vars));
}

SymbolSet FreeVars(const Formula* f) {
  std::vector<Symbol> out;
  std::vector<Symbol> bound;
  FreeVarsInto(f, out, bound);
  return SymbolSet(std::move(out));
}

SymbolSet AllVars(const Formula* f) {
  std::vector<Symbol> out;
  ForEachTerm(f, [&out](const Term* t) { CollectTermVars(t, out); });
  // Quantified variables may not occur in any term (vacuous quantification);
  // include them too.
  struct Walker {
    std::vector<Symbol>& out;
    void Walk(const Formula* g) {
      switch (g->kind()) {
        case FormulaKind::kExists:
        case FormulaKind::kForall:
          for (Symbol v : g->vars()) out.push_back(v);
          Walk(g->child());
          break;
        case FormulaKind::kNot:
          Walk(g->child());
          break;
        case FormulaKind::kAnd:
        case FormulaKind::kOr:
          for (const Formula* c : g->children()) Walk(c);
          break;
        default:
          break;
      }
    }
  };
  Walker{out}.Walk(f);
  return SymbolSet(std::move(out));
}

namespace {

int TermApplications(const Term* t) {
  if (t->kind() != Term::Kind::kApply) return 0;
  int n = 1;
  for (const Term* a : t->args()) n += TermApplications(a);
  return n;
}

int TermDepth(const Term* t) {
  if (t->kind() != Term::Kind::kApply) return 0;
  int deepest = 0;
  for (const Term* a : t->args()) deepest = std::max(deepest, TermDepth(a));
  return 1 + deepest;
}

}  // namespace

bool HasFunctions(const Formula* f) { return CountApplications(f) > 0; }

int CountApplications(const Formula* f) {
  int n = 0;
  ForEachTerm(f, [&n](const Term* t) { n += TermApplications(t); });
  return n;
}

int MaxFunctionDepth(const Formula* f) {
  int d = 0;
  ForEachTerm(f, [&d](const Term* t) { d = std::max(d, TermDepth(t)); });
  return d;
}

int FormulaSize(const Formula* f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kRel:
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      return 1;
    case FormulaKind::kNot:
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return 1 + FormulaSize(f->child());
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      int n = 1;
      for (const Formula* c : f->children()) n += FormulaSize(c);
      return n;
    }
  }
  return 1;
}

int QuantifierCount(const Formula* f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kRel:
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      return 0;
    case FormulaKind::kNot:
      return QuantifierCount(f->child());
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return 1 + QuantifierCount(f->child());
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      int n = 0;
      for (const Formula* c : f->children()) n += QuantifierCount(c);
      return n;
    }
  }
  return 0;
}

namespace {

void CollectTermFunctions(const Term* t, std::map<Symbol, int>& out) {
  if (t->kind() == Term::Kind::kApply) {
    out.emplace(t->symbol(), static_cast<int>(t->args().size()));
    for (const Term* a : t->args()) CollectTermFunctions(a, out);
  }
}

void CollectRelationsInto(const Formula* f, std::map<Symbol, int>& out) {
  switch (f->kind()) {
    case FormulaKind::kRel:
      out.emplace(f->rel(), static_cast<int>(f->terms().size()));
      break;
    case FormulaKind::kNot:
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      CollectRelationsInto(f->child(), out);
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const Formula* c : f->children()) CollectRelationsInto(c, out);
      break;
    default:
      break;
  }
}

void CollectTermConstants(const Term* t, std::vector<uint32_t>& out) {
  switch (t->kind()) {
    case Term::Kind::kConst:
      out.push_back(t->const_id());
      break;
    case Term::Kind::kApply:
      for (const Term* a : t->args()) CollectTermConstants(a, out);
      break;
    default:
      break;
  }
}

}  // namespace

std::map<Symbol, int> CollectRelations(const Formula* f) {
  std::map<Symbol, int> out;
  CollectRelationsInto(f, out);
  return out;
}

std::map<Symbol, int> CollectFunctions(const Formula* f) {
  std::map<Symbol, int> out;
  ForEachTerm(f, [&out](const Term* t) { CollectTermFunctions(t, out); });
  return out;
}

std::vector<uint32_t> CollectConstants(const Formula* f) {
  std::vector<uint32_t> out;
  ForEachTerm(f, [&out](const Term* t) { CollectTermConstants(t, out); });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

Status CheckNode(const Formula* f, const SymbolTable& symbols,
                 std::map<Symbol, int>& rel_arity,
                 std::map<Symbol, int>& fn_arity,
                 std::vector<Symbol>& in_scope) {
  auto check_term = [&](const Term* t, auto&& self) -> Status {
    if (t->kind() == Term::Kind::kApply) {
      int arity = static_cast<int>(t->args().size());
      auto [it, inserted] = fn_arity.emplace(t->symbol(), arity);
      if (!inserted && it->second != arity) {
        return InvalidArgumentError(
            "function '" + std::string(symbols.Name(t->symbol())) +
            "' used with arities " + std::to_string(it->second) + " and " +
            std::to_string(arity));
      }
      for (const Term* a : t->args()) {
        Status s = self(a, self);
        if (!s.ok()) return s;
      }
    }
    return Status::Ok();
  };

  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return Status::Ok();
    case FormulaKind::kRel: {
      int arity = static_cast<int>(f->terms().size());
      auto [it, inserted] = rel_arity.emplace(f->rel(), arity);
      if (!inserted && it->second != arity) {
        return InvalidArgumentError(
            "relation '" + std::string(symbols.Name(f->rel())) +
            "' used with arities " + std::to_string(it->second) + " and " +
            std::to_string(arity));
      }
      for (const Term* t : f->terms()) {
        Status s = check_term(t, check_term);
        if (!s.ok()) return s;
      }
      return Status::Ok();
    }
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq: {
      for (const Term* t : f->terms()) {
        Status s = check_term(t, check_term);
        if (!s.ok()) return s;
      }
      return Status::Ok();
    }
    case FormulaKind::kNot:
      return CheckNode(f->child(), symbols, rel_arity, fn_arity, in_scope);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      for (const Formula* c : f->children()) {
        Status s = CheckNode(c, symbols, rel_arity, fn_arity, in_scope);
        if (!s.ok()) return s;
      }
      return Status::Ok();
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      for (size_t i = 0; i < f->vars().size(); ++i) {
        for (size_t j = i + 1; j < f->vars().size(); ++j) {
          if (f->vars()[i] == f->vars()[j]) {
            return InvalidArgumentError(
                "duplicate quantified variable '" +
                std::string(symbols.Name(f->vars()[i])) + "'");
          }
        }
        for (Symbol outer : in_scope) {
          if (outer == f->vars()[i]) {
            return InvalidArgumentError(
                "quantifier shadows variable '" +
                std::string(symbols.Name(f->vars()[i])) + "'");
          }
        }
      }
      size_t mark = in_scope.size();
      for (Symbol v : f->vars()) in_scope.push_back(v);
      Status s = CheckNode(f->child(), symbols, rel_arity, fn_arity, in_scope);
      in_scope.resize(mark);
      return s;
    }
  }
  return Status::Ok();
}

}  // namespace

Status CheckWellFormed(const Formula* f, const SymbolTable& symbols) {
  std::map<Symbol, int> rel_arity;
  std::map<Symbol, int> fn_arity;
  SymbolSet free = FreeVars(f);
  std::vector<Symbol> in_scope(free.begin(), free.end());
  return CheckNode(f, symbols, rel_arity, fn_arity, in_scope);
}

Status CheckWellFormed(const Query& q, const SymbolTable& symbols) {
  Status s = CheckWellFormed(q.body, symbols);
  if (!s.ok()) return s;
  SymbolSet free = FreeVars(q.body);
  SymbolSet head(q.head);
  if (head.size() != q.head.size()) {
    return InvalidArgumentError("duplicate variable in query head");
  }
  if (free != head) {
    return InvalidArgumentError(
        "query head must list exactly the free variables of the body; head " +
        head.ToString(symbols) + " vs free " + free.ToString(symbols));
  }
  return Status::Ok();
}

}  // namespace emcalc
