// Abstract syntax for the relational calculus with scalar functions
// (Section 4 of the paper).
//
// Terms are variables, constants, and applications f(t1,...,tn) of scalar
// function symbols. Formulas are relation atoms R(t1,...,tn), equalities
// t1 = t2, inequalities t1 != t2, boolean connectives, and quantifiers.
// A query is {x1,...,xn | phi}.
//
// Nodes are immutable and arena-allocated; rewrites build new nodes that
// share unchanged subtrees. All nodes are trivially destructible (constants
// are interned in a pool owned by the AstContext).
#ifndef EMCALC_CALCULUS_AST_H_
#define EMCALC_CALCULUS_AST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/arena.h"
#include "src/base/symbol.h"
#include "src/base/value.h"
#include "src/diag/source.h"

namespace emcalc {

class AstContext;

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

// A term over variables, interned constants, and scalar function symbols.
class Term {
 public:
  enum class Kind : uint8_t { kVar, kConst, kApply };

  Kind kind() const { return kind_; }
  bool is_var() const { return kind_ == Kind::kVar; }
  bool is_const() const { return kind_ == Kind::kConst; }
  bool is_apply() const { return kind_ == Kind::kApply; }

  // kVar: the variable symbol. kApply: the function symbol.
  Symbol symbol() const { return symbol_; }

  // kConst: index into the owning AstContext's constant pool.
  uint32_t const_id() const { return const_id_; }

  // kApply: argument terms.
  std::span<const Term* const> args() const {
    return std::span<const Term* const>(args_, num_args_);
  }

 private:
  friend class AstContext;
  Term(Kind kind, Symbol symbol, uint32_t const_id, const Term* const* args,
       uint32_t num_args)
      : kind_(kind),
        symbol_(symbol),
        const_id_(const_id),
        num_args_(num_args),
        args_(args) {}

  Kind kind_;
  Symbol symbol_;
  uint32_t const_id_;
  uint32_t num_args_;
  const Term* const* args_;
};

// ---------------------------------------------------------------------------
// Formulas
// ---------------------------------------------------------------------------

// Formula node kinds. kEq atoms are "positive" (they can carry bounding
// information via FinDs); kNeq and kLess/kLessEq atoms are "negative" — a
// deliberate departure from GT91, taken from the paper (Section 7). The
// order comparisons are the paper's Section 9(d) extension: externally
// defined predicates like '<' that give no bounding information.
enum class FormulaKind : uint8_t {
  kTrue,    // the empty conjunction
  kFalse,   // the empty disjunction
  kRel,     // R(t1,...,tn)
  kEq,      // t1 = t2
  kNeq,     // t1 != t2
  kLess,    // t1 < t2   (over the Value order: ints, then strings)
  kLessEq,  // t1 <= t2
  kNot,     // not phi
  kAnd,     // phi1 and ... and phin  (n >= 2)
  kOr,      // phi1 or ... or phin    (n >= 2)
  kExists,  // exists x1,...,xk (phi)
  kForall,  // forall x1,...,xk (phi)
};

// An immutable formula node.
class Formula {
 public:
  FormulaKind kind() const { return kind_; }

  bool is(FormulaKind k) const { return kind_ == k; }

  // kRel: the relation symbol.
  Symbol rel() const { return symbol_; }

  // kRel: argument terms.
  std::span<const Term* const> terms() const {
    return std::span<const Term* const>(terms_, num_terms_);
  }

  // kEq / kNeq: the two sides.
  const Term* lhs() const { return terms_[0]; }
  const Term* rhs() const { return terms_[1]; }

  // kNot: the negated formula. kExists/kForall: the body.
  const Formula* child() const { return children_[0]; }

  // kAnd / kOr: the juncts.
  std::span<const Formula* const> children() const {
    return std::span<const Formula* const>(children_, num_children_);
  }

  // kExists / kForall: the quantified variables (non-empty, distinct).
  std::span<const Symbol> vars() const {
    return std::span<const Symbol>(vars_, num_vars_);
  }

  // Nodes are created through AstContext; the public default constructor
  // exists only so the arena can placement-new them.
  Formula() = default;

 private:
  friend class AstContext;

  FormulaKind kind_ = FormulaKind::kTrue;
  Symbol symbol_;
  uint32_t num_terms_ = 0;
  uint32_t num_children_ = 0;
  uint32_t num_vars_ = 0;
  const Term* const* terms_ = nullptr;
  const Formula* const* children_ = nullptr;
  const Symbol* vars_ = nullptr;
};

// A calculus query {head | body}. `head` lists the output variables, which
// must all occur free in `body` (checked by the safety analysis, not here).
struct Query {
  std::vector<Symbol> head;
  const Formula* body = nullptr;
};

// ---------------------------------------------------------------------------
// AstContext
// ---------------------------------------------------------------------------

// Owns the arena, the symbol table, and the constant pool for a set of
// formulas. Every node-producing pass takes the context it should build
// into; nodes from the same context may be mixed freely.
class AstContext {
 public:
  AstContext() = default;
  AstContext(const AstContext&) = delete;
  AstContext& operator=(const AstContext&) = delete;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  // Interns `v` and returns its pool index.
  uint32_t InternConstant(const Value& v);
  // The value for a pool index.
  const Value& ConstantAt(uint32_t id) const;
  // Number of interned constants; valid pool ids are [0, NumConstants()).
  // The stage-boundary verifier range-checks every kConst against this.
  size_t NumConstants() const { return constants_.size(); }

  // --- term constructors ---
  const Term* MakeVar(Symbol v);
  const Term* MakeVar(std::string_view name);
  const Term* MakeConst(const Value& v);
  const Term* MakeApply(Symbol fn, std::span<const Term* const> args);
  const Term* MakeApply(std::string_view fn,
                        std::initializer_list<const Term*> args);

  // --- formula constructors (raw; see builder.h for normalizing helpers) ---
  const Formula* True();
  const Formula* False();
  const Formula* MakeRel(Symbol rel, std::span<const Term* const> args);
  const Formula* MakeEq(const Term* lhs, const Term* rhs);
  const Formula* MakeNeq(const Term* lhs, const Term* rhs);
  const Formula* MakeLess(const Term* lhs, const Term* rhs);
  const Formula* MakeLessEq(const Term* lhs, const Term* rhs);
  const Formula* MakeNot(const Formula* f);
  // n-ary; requires children.size() >= 2 (use builder::And/Or for the
  // normalizing versions that accept any arity).
  const Formula* MakeAnd(std::span<const Formula* const> children);
  const Formula* MakeOr(std::span<const Formula* const> children);
  const Formula* MakeExists(std::span<const Symbol> vars, const Formula* body);
  const Formula* MakeForall(std::span<const Symbol> vars, const Formula* body);

  Arena& arena() { return arena_; }

  // --- source-span side table (src/diag/) ---
  //
  // The parser records the byte range of the query text each node was read
  // from; rewrites copy spans onto replacement nodes with InheritSpan.
  // Programmatically built nodes simply have no entry, so every consumer
  // must treat SpanOf as optional. The shared kTrue/kFalse singletons never
  // get spans (one node serves many parses).

  // Records `span` for `node` (a Formula* or Term*); later calls overwrite.
  void NoteSpan(const void* node, diag::SourceSpan span);
  // Copies `from`'s span onto `to` if `from` has one and `to` does not.
  void InheritSpan(const void* to, const void* from);
  // The recorded span, or nullptr.
  const diag::SourceSpan* SpanOf(const void* node) const;

 private:
  Arena arena_;
  SymbolTable symbols_;
  std::vector<Value> constants_;
  std::unordered_map<Value, uint32_t> constant_ids_;
  std::unordered_map<const void*, diag::SourceSpan> spans_;
  const Formula* true_ = nullptr;
  const Formula* false_ = nullptr;
};

// Structural equality of terms/formulas (same context assumed; bound
// variables are compared by name, i.e. no alpha-equivalence).
bool TermsEqual(const Term* a, const Term* b);
bool FormulasEqual(const Formula* a, const Formula* b);

}  // namespace emcalc

#endif  // EMCALC_CALCULUS_AST_H_
