#include "src/calculus/rewrite.h"

#include <vector>

#include "src/base/symbol_set.h"
#include "src/calculus/analysis.h"

namespace emcalc {
namespace {

// Rewrites carry the original node's source span onto its replacement so
// diagnostics on rewritten trees still point into the query text.
template <typename NodeT>
const NodeT* Spanned(AstContext& ctx, const NodeT* built, const void* from) {
  ctx.InheritSpan(built, from);
  return built;
}

}  // namespace

const Term* SubstituteTerm(AstContext& ctx, const Term* t,
                           const Substitution& sub) {
  switch (t->kind()) {
    case Term::Kind::kVar: {
      auto it = sub.find(t->symbol());
      return it == sub.end() ? t : it->second;
    }
    case Term::Kind::kConst:
      return t;
    case Term::Kind::kApply: {
      std::vector<const Term*> args;
      args.reserve(t->args().size());
      bool changed = false;
      for (const Term* a : t->args()) {
        const Term* na = SubstituteTerm(ctx, a, sub);
        changed |= (na != a);
        args.push_back(na);
      }
      return changed ? Spanned(ctx, ctx.MakeApply(t->symbol(), args), t) : t;
    }
  }
  return t;
}

namespace {

// Variables occurring in the terms of `sub` (its "range variables") plus its
// domain — the set a quantifier must avoid to prevent capture.
SymbolSet SubstitutionVars(const Substitution& sub) {
  std::vector<Symbol> vars;
  for (const auto& [from, to] : sub) {
    vars.push_back(from);
    SymbolSet tv = TermVars(to);
    vars.insert(vars.end(), tv.begin(), tv.end());
  }
  return SymbolSet(std::move(vars));
}

}  // namespace

const Formula* SubstituteFormula(AstContext& ctx, const Formula* f,
                                 const Substitution& sub) {
  if (sub.empty()) return f;
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return f;
    case FormulaKind::kRel: {
      std::vector<const Term*> args;
      args.reserve(f->terms().size());
      bool changed = false;
      for (const Term* t : f->terms()) {
        const Term* nt = SubstituteTerm(ctx, t, sub);
        changed |= (nt != t);
        args.push_back(nt);
      }
      return changed ? Spanned(ctx, ctx.MakeRel(f->rel(), args), f) : f;
    }
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq: {
      const Term* l = SubstituteTerm(ctx, f->lhs(), sub);
      const Term* r = SubstituteTerm(ctx, f->rhs(), sub);
      if (l == f->lhs() && r == f->rhs()) return f;
      switch (f->kind()) {
        case FormulaKind::kEq:
          return Spanned(ctx, ctx.MakeEq(l, r), f);
        case FormulaKind::kNeq:
          return Spanned(ctx, ctx.MakeNeq(l, r), f);
        case FormulaKind::kLess:
          return Spanned(ctx, ctx.MakeLess(l, r), f);
        default:
          return Spanned(ctx, ctx.MakeLessEq(l, r), f);
      }
    }
    case FormulaKind::kNot: {
      const Formula* c = SubstituteFormula(ctx, f->child(), sub);
      return c == f->child() ? f : Spanned(ctx, ctx.MakeNot(c), f);
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<const Formula*> children;
      children.reserve(f->children().size());
      bool changed = false;
      for (const Formula* c : f->children()) {
        const Formula* nc = SubstituteFormula(ctx, c, sub);
        changed |= (nc != c);
        children.push_back(nc);
      }
      if (!changed) return f;
      return Spanned(ctx,
                     f->kind() == FormulaKind::kAnd ? ctx.MakeAnd(children)
                                                    : ctx.MakeOr(children),
                     f);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      // Drop substitutions shadowed by the quantifier; rename quantified
      // variables that would capture range variables.
      Substitution inner = sub;
      for (Symbol v : f->vars()) inner.erase(v);
      if (inner.empty()) return f;
      SymbolSet avoid = SubstitutionVars(inner);
      std::vector<Symbol> vars(f->vars().begin(), f->vars().end());
      Substitution renames;
      for (Symbol& v : vars) {
        if (avoid.Contains(v)) {
          Symbol fresh = ctx.symbols().Fresh(ctx.symbols().Name(v));
          renames.emplace(v, ctx.MakeVar(fresh));
          v = fresh;
        }
      }
      const Formula* body = f->child();
      if (!renames.empty()) body = SubstituteFormula(ctx, body, renames);
      const Formula* new_body = SubstituteFormula(ctx, body, inner);
      if (new_body == f->child() && renames.empty()) return f;
      return Spanned(ctx,
                     f->kind() == FormulaKind::kExists
                         ? ctx.MakeExists(vars, new_body)
                         : ctx.MakeForall(vars, new_body),
                     f);
    }
  }
  return f;
}

namespace {

const Formula* RectifyRec(AstContext& ctx, const Formula* f,
                          SymbolSet& used) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kRel:
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      return f;
    case FormulaKind::kNot: {
      const Formula* c = RectifyRec(ctx, f->child(), used);
      return c == f->child() ? f : Spanned(ctx, ctx.MakeNot(c), f);
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<const Formula*> children;
      bool changed = false;
      for (const Formula* c : f->children()) {
        const Formula* nc = RectifyRec(ctx, c, used);
        changed |= (nc != c);
        children.push_back(nc);
      }
      if (!changed) return f;
      return Spanned(ctx,
                     f->kind() == FormulaKind::kAnd ? ctx.MakeAnd(children)
                                                    : ctx.MakeOr(children),
                     f);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      std::vector<Symbol> vars(f->vars().begin(), f->vars().end());
      Substitution renames;
      for (Symbol& v : vars) {
        if (used.Contains(v)) {
          Symbol fresh = ctx.symbols().Fresh(ctx.symbols().Name(v));
          renames.emplace(v, ctx.MakeVar(fresh));
          v = fresh;
        }
        used.Insert(v);
      }
      const Formula* body = f->child();
      if (!renames.empty()) body = SubstituteFormula(ctx, body, renames);
      const Formula* new_body = RectifyRec(ctx, body, used);
      if (new_body == f->child() && renames.empty()) return f;
      return Spanned(ctx,
                     f->kind() == FormulaKind::kExists
                         ? ctx.MakeExists(vars, new_body)
                         : ctx.MakeForall(vars, new_body),
                     f);
    }
  }
  return f;
}

}  // namespace

const Formula* Rectify(AstContext& ctx, const Formula* f) {
  SymbolSet used = FreeVars(f);
  return RectifyRec(ctx, f, used);
}

}  // namespace emcalc
