#include "src/calculus/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/symbol_set.h"
#include "src/calculus/analysis.h"
#include "src/calculus/builder.h"
#include "src/diag/source.h"

namespace emcalc {
namespace {

enum class TokKind {
  kIdent,
  kInt,
  kString,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kBar,
  kEq,
  kNeq,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string_view text;  // for idents / literals
  int64_t int_value = 0;
  size_t pos = 0;  // byte offset of the first character
  size_t end = 0;  // one past the last character
};

// Renders a parse error with line/column and a caret snippet, and fills the
// structured out-param when provided.
Status MakeParseError(std::string_view text, size_t offset,
                      std::string message, ParseErrorInfo* error) {
  if (error != nullptr) {
    error->offset = offset;
    error->message = message;
  }
  std::string rendered = "parse error at " +
                         diag::DescribePosition(text, offset) + ": " +
                         message;
  if (!text.empty()) {
    rendered += "\n" + diag::CaretSnippet(
                           text, diag::SourceSpan{
                                     static_cast<uint32_t>(offset),
                                     static_cast<uint32_t>(offset + 1)});
  }
  return InvalidArgumentError(std::move(rendered));
}

// Single-pass lexer over the input string_view.
class Lexer {
 public:
  explicit Lexer(std::string_view text, ParseErrorInfo* error)
      : text_(text), error_(error) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      size_t start = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_')) {
          ++i;
        }
        out.push_back({TokKind::kIdent, text_.substr(start, i - start), 0,
                       start, i});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        ++i;
        while (i < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[i]))) {
          ++i;
        }
        Token t{TokKind::kInt, text_.substr(start, i - start), 0, start, i};
        t.int_value = std::strtoll(std::string(t.text).c_str(), nullptr, 10);
        out.push_back(t);
        continue;
      }
      switch (c) {
        case '\'': {
          ++i;
          size_t body = i;
          while (i < text_.size() && text_[i] != '\'') ++i;
          if (i == text_.size()) {
            return MakeParseError(text_, start, "unterminated string literal",
                                  error_);
          }
          ++i;  // closing quote
          out.push_back({TokKind::kString,
                         text_.substr(body, i - 1 - body), 0, start, i});
          break;
        }
        case '(':
          out.push_back({TokKind::kLParen, {}, 0, start, start + 1});
          ++i;
          break;
        case ')':
          out.push_back({TokKind::kRParen, {}, 0, start, start + 1});
          ++i;
          break;
        case '{':
          out.push_back({TokKind::kLBrace, {}, 0, start, start + 1});
          ++i;
          break;
        case '}':
          out.push_back({TokKind::kRBrace, {}, 0, start, start + 1});
          ++i;
          break;
        case ',':
          out.push_back({TokKind::kComma, {}, 0, start, start + 1});
          ++i;
          break;
        case '|':
          out.push_back({TokKind::kBar, {}, 0, start, start + 1});
          ++i;
          break;
        case '=':
          out.push_back({TokKind::kEq, {}, 0, start, start + 1});
          ++i;
          break;
        case '<':
          if (i + 1 < text_.size() && text_[i + 1] == '=') {
            out.push_back({TokKind::kLessEq, {}, 0, start, start + 2});
            i += 2;
          } else {
            out.push_back({TokKind::kLess, {}, 0, start, start + 1});
            ++i;
          }
          break;
        case '>':
          if (i + 1 < text_.size() && text_[i + 1] == '=') {
            out.push_back({TokKind::kGreaterEq, {}, 0, start, start + 2});
            i += 2;
          } else {
            out.push_back({TokKind::kGreater, {}, 0, start, start + 1});
            ++i;
          }
          break;
        case '!':
          if (i + 1 < text_.size() && text_[i + 1] == '=') {
            out.push_back({TokKind::kNeq, {}, 0, start, start + 2});
            i += 2;
            break;
          }
          return MakeParseError(text_, start, "unexpected '!'", error_);
        default:
          return MakeParseError(
              text_, start,
              std::string("unexpected character '") + c + "'", error_);
      }
    }
    out.push_back({TokKind::kEnd, {}, 0, text_.size(), text_.size()});
    return out;
  }

 private:
  std::string_view text_;
  ParseErrorInfo* error_;
};

bool IsKeyword(const Token& t, std::string_view kw) {
  return t.kind == TokKind::kIdent && t.text == kw;
}

bool IsReserved(std::string_view word) {
  return word == "and" || word == "or" || word == "not" || word == "exists" ||
         word == "forall" || word == "true" || word == "false";
}

// The parser proper. Holds the token stream and a cursor, and records a
// source span for every node it builds.
class Parser {
 public:
  Parser(AstContext& ctx, std::string_view text, std::vector<Token> tokens,
         ParseErrorInfo* error)
      : ctx_(ctx), text_(text), tokens_(std::move(tokens)), error_(error) {}

  StatusOr<emcalc::Query> Query() {
    if (Peek().kind == TokKind::kLBrace) {
      Advance();
      std::vector<Symbol> head;
      if (Peek().kind != TokKind::kBar) {
        auto vars = VarList();
        if (!vars.ok()) return vars.status();
        head = std::move(vars).value();
      }
      if (Status s = Expect(TokKind::kBar, "'|'"); !s.ok()) return s;
      auto body = Formula();
      if (!body.ok()) return body.status();
      if (Status s = Expect(TokKind::kRBrace, "'}'"); !s.ok()) return s;
      if (Status s = ExpectEnd(); !s.ok()) return s;
      return emcalc::Query{std::move(head), *body};
    }
    auto body = Formula();
    if (!body.ok()) return body.status();
    if (Status s = ExpectEnd(); !s.ok()) return s;
    SymbolSet free = FreeVars(*body);
    return emcalc::Query{{free.begin(), free.end()}, *body};
  }

  StatusOr<const emcalc::Formula*> WholeFormula() {
    auto f = Formula();
    if (!f.ok()) return f;
    if (Status s = ExpectEnd(); !s.ok()) return s;
    return f;
  }

  StatusOr<const emcalc::Term*> WholeTerm() {
    auto t = Term();
    if (!t.ok()) return t;
    if (Status s = ExpectEnd(); !s.ok()) return s;
    return t;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  // Byte offset just past the most recently consumed token.
  size_t LastEnd() const {
    return pos_ == 0 ? 0 : tokens_[pos_ - 1].end;
  }

  // Records [from, LastEnd()) as `node`'s source span.
  template <typename NodeT>
  const NodeT* Note(const NodeT* node, size_t from) {
    ctx_.NoteSpan(node, diag::SourceSpan{static_cast<uint32_t>(from),
                                         static_cast<uint32_t>(LastEnd())});
    return node;
  }

  Status Error(size_t offset, std::string message) {
    return MakeParseError(text_, offset, std::move(message), error_);
  }

  Status Expect(TokKind kind, std::string_view what) {
    if (Peek().kind != kind) {
      return Error(Peek().pos, "expected " + std::string(what));
    }
    Advance();
    return Status::Ok();
  }

  Status ExpectEnd() {
    if (Peek().kind != TokKind::kEnd) {
      return Error(Peek().pos, "trailing input");
    }
    return Status::Ok();
  }

  StatusOr<std::vector<Symbol>> VarList() {
    std::vector<Symbol> out;
    for (;;) {
      if (Peek().kind != TokKind::kIdent || IsReserved(Peek().text)) {
        return Error(Peek().pos, "expected variable name");
      }
      out.push_back(ctx_.symbols().Intern(Advance().text));
      if (Peek().kind != TokKind::kComma) break;
      Advance();
    }
    return out;
  }

  StatusOr<const emcalc::Formula*> Formula() { return OrFormula(); }

  StatusOr<const emcalc::Formula*> OrFormula() {
    size_t start = Peek().pos;
    auto first = AndFormula();
    if (!first.ok()) return first;
    std::vector<const emcalc::Formula*> parts = {*first};
    while (IsKeyword(Peek(), "or")) {
      Advance();
      auto next = AndFormula();
      if (!next.ok()) return next;
      parts.push_back(*next);
    }
    if (parts.size() == 1) return parts[0];
    return Note(builder::Or(ctx_, std::move(parts)), start);
  }

  StatusOr<const emcalc::Formula*> AndFormula() {
    size_t start = Peek().pos;
    auto first = Unary();
    if (!first.ok()) return first;
    std::vector<const emcalc::Formula*> parts = {*first};
    while (IsKeyword(Peek(), "and")) {
      Advance();
      auto next = Unary();
      if (!next.ok()) return next;
      parts.push_back(*next);
    }
    if (parts.size() == 1) return parts[0];
    return Note(builder::And(ctx_, std::move(parts)), start);
  }

  StatusOr<const emcalc::Formula*> Unary() {
    size_t start = Peek().pos;
    if (IsKeyword(Peek(), "not")) {
      Advance();
      auto inner = Unary();
      if (!inner.ok()) return inner;
      return Note(ctx_.MakeNot(*inner), start);
    }
    if (IsKeyword(Peek(), "exists") || IsKeyword(Peek(), "forall")) {
      bool is_exists = Peek().text == "exists";
      Advance();
      auto vars = VarList();
      if (!vars.ok()) return vars.status();
      if (Status s = Expect(TokKind::kLParen, "'('"); !s.ok()) return s;
      auto body = Formula();
      if (!body.ok()) return body;
      if (Status s = Expect(TokKind::kRParen, "')'"); !s.ok()) return s;
      return Note(is_exists ? ctx_.MakeExists(*vars, *body)
                            : ctx_.MakeForall(*vars, *body),
                  start);
    }
    if (IsKeyword(Peek(), "true")) {
      Advance();
      return ctx_.True();
    }
    if (IsKeyword(Peek(), "false")) {
      Advance();
      return ctx_.False();
    }
    if (Peek().kind == TokKind::kLParen) {
      // Could be a parenthesized formula; terms never start with '('.
      Advance();
      auto inner = Formula();
      if (!inner.ok()) return inner;
      if (Status s = Expect(TokKind::kRParen, "')'"); !s.ok()) return s;
      return inner;
    }
    return Atom();
  }

  // Parses `term (=|!=) term` or a relation atom. We first parse a term;
  // if a comparator follows, it really was a term. Otherwise it must have
  // the shape of a relation atom (identifier with argument list).
  StatusOr<const emcalc::Formula*> Atom() {
    size_t mark = pos_;
    size_t start = Peek().pos;
    auto lhs = Term();
    if (!lhs.ok()) return lhs.status();
    TokKind comparator = Peek().kind;
    if (comparator == TokKind::kEq || comparator == TokKind::kNeq ||
        comparator == TokKind::kLess || comparator == TokKind::kLessEq ||
        comparator == TokKind::kGreater ||
        comparator == TokKind::kGreaterEq) {
      Advance();
      auto rhs = Term();
      if (!rhs.ok()) return rhs.status();
      switch (comparator) {
        case TokKind::kEq:
          return Note(ctx_.MakeEq(*lhs, *rhs), start);
        case TokKind::kNeq:
          return Note(ctx_.MakeNeq(*lhs, *rhs), start);
        case TokKind::kLess:
          return Note(ctx_.MakeLess(*lhs, *rhs), start);
        case TokKind::kLessEq:
          return Note(ctx_.MakeLessEq(*lhs, *rhs), start);
        // t1 > t2 and t1 >= t2 normalize to swapped kLess / kLessEq.
        case TokKind::kGreater:
          return Note(ctx_.MakeLess(*rhs, *lhs), start);
        default:
          return Note(ctx_.MakeLessEq(*rhs, *lhs), start);
      }
    }
    const emcalc::Term* t = *lhs;
    if (t->is_apply()) {
      // Reinterpret the application as a relation atom.
      std::vector<const emcalc::Term*> args(t->args().begin(),
                                            t->args().end());
      return Note(ctx_.MakeRel(t->symbol(), args), start);
    }
    if (t->is_var() && Peek(0).kind == TokKind::kLParen) {
      // Identifier followed by "()" (empty argument list): Term() parsed
      // just the identifier because there were no arguments. Treat as a
      // 0-ary relation atom.
      Advance();
      if (Status s = Expect(TokKind::kRParen, "')'"); !s.ok()) return s;
      return Note(ctx_.MakeRel(t->symbol(), {}), start);
    }
    return Error(tokens_[mark].pos, "expected a relation atom or comparison");
  }

  StatusOr<const emcalc::Term*> Term() {
    const Token& t = Peek();
    size_t start = t.pos;
    switch (t.kind) {
      case TokKind::kInt:
        Advance();
        return Note(ctx_.MakeConst(Value::Int(t.int_value)), start);
      case TokKind::kString:
        Advance();
        return Note(ctx_.MakeConst(Value::Str(std::string(t.text))), start);
      case TokKind::kIdent: {
        if (IsReserved(t.text)) {
          return Error(t.pos,
                       "unexpected keyword '" + std::string(t.text) + "'");
        }
        Symbol name = ctx_.symbols().Intern(t.text);
        Advance();
        // `ident(args...)` with a non-empty argument list is an
        // application; `ident()` is left for Atom() to turn into a 0-ary
        // relation atom.
        if (Peek().kind == TokKind::kLParen &&
            Peek(1).kind != TokKind::kRParen) {
          Advance();
          std::vector<const emcalc::Term*> args;
          for (;;) {
            auto a = Term();
            if (!a.ok()) return a;
            args.push_back(*a);
            if (Peek().kind != TokKind::kComma) break;
            Advance();
          }
          if (Status s = Expect(TokKind::kRParen, "')'"); !s.ok()) return s;
          return Note(ctx_.MakeApply(name, args), start);
        }
        return Note(ctx_.MakeVar(name), start);
      }
      default:
        return Error(t.pos, "expected a term");
    }
  }

  AstContext& ctx_;
  std::string_view text_;
  std::vector<Token> tokens_;
  ParseErrorInfo* error_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Query> ParseQuery(AstContext& ctx, std::string_view text,
                           ParseErrorInfo* error) {
  auto tokens = Lexer(text, error).Tokenize();
  if (!tokens.ok()) return tokens.status();
  return Parser(ctx, text, std::move(tokens).value(), error).Query();
}

StatusOr<const Formula*> ParseFormula(AstContext& ctx, std::string_view text,
                                      ParseErrorInfo* error) {
  auto tokens = Lexer(text, error).Tokenize();
  if (!tokens.ok()) return tokens.status();
  return Parser(ctx, text, std::move(tokens).value(), error).WholeFormula();
}

StatusOr<const Term*> ParseTerm(AstContext& ctx, std::string_view text,
                                ParseErrorInfo* error) {
  auto tokens = Lexer(text, error).Tokenize();
  if (!tokens.ok()) return tokens.status();
  return Parser(ctx, text, std::move(tokens).value(), error).WholeTerm();
}

}  // namespace emcalc
