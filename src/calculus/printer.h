// Pretty-printing of terms, formulas, and queries in the concrete syntax
// accepted by the parser (round-trip safe):
//
//   {x, y | R(x, y) and exists z (S(z) and f(x) = z)}
#ifndef EMCALC_CALCULUS_PRINTER_H_
#define EMCALC_CALCULUS_PRINTER_H_

#include <string>

#include "src/calculus/ast.h"

namespace emcalc {

// Renders `t` (e.g. "g(f(x))", "42", "'bob'").
std::string TermToString(const AstContext& ctx, const Term* t);

// Renders `f` with minimal parentheses.
std::string FormulaToString(const AstContext& ctx, const Formula* f);

// Renders "{x, y | body}".
std::string QueryToString(const AstContext& ctx, const Query& q);

}  // namespace emcalc

#endif  // EMCALC_CALCULUS_PRINTER_H_
