#include "src/calculus/ast.h"

#include "src/base/check.h"

namespace emcalc {

uint32_t AstContext::InternConstant(const Value& v) {
  auto it = constant_ids_.find(v);
  if (it != constant_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(constants_.size());
  constants_.push_back(v);
  constant_ids_.emplace(v, id);
  return id;
}

const Value& AstContext::ConstantAt(uint32_t id) const {
  EMCALC_CHECK_MSG(id < constants_.size(), "bad constant id %u", id);
  return constants_[id];
}

const Term* AstContext::MakeVar(Symbol v) {
  return arena_.New<Term>(Term(Term::Kind::kVar, v, 0, nullptr, 0));
}

const Term* AstContext::MakeVar(std::string_view name) {
  return MakeVar(symbols_.Intern(name));
}

const Term* AstContext::MakeConst(const Value& v) {
  return arena_.New<Term>(
      Term(Term::Kind::kConst, Symbol{}, InternConstant(v), nullptr, 0));
}

const Term* AstContext::MakeApply(Symbol fn,
                                  std::span<const Term* const> args) {
  const Term** copy = const_cast<const Term**>(
      arena_.NewArray<const Term*>(args.data(), args.size()));
  return arena_.New<Term>(Term(Term::Kind::kApply, fn, 0, copy,
                               static_cast<uint32_t>(args.size())));
}

const Term* AstContext::MakeApply(std::string_view fn,
                                  std::initializer_list<const Term*> args) {
  std::vector<const Term*> v(args);
  return MakeApply(symbols_.Intern(fn), v);
}

const Formula* AstContext::True() {
  if (true_ == nullptr) {
    Formula* f = arena_.New<Formula>();
    f->kind_ = FormulaKind::kTrue;
    true_ = f;
  }
  return true_;
}

const Formula* AstContext::False() {
  if (false_ == nullptr) {
    Formula* f = arena_.New<Formula>();
    f->kind_ = FormulaKind::kFalse;
    false_ = f;
  }
  return false_;
}

const Formula* AstContext::MakeRel(Symbol rel,
                                   std::span<const Term* const> args) {
  Formula* f = arena_.New<Formula>();
  f->kind_ = FormulaKind::kRel;
  f->symbol_ = rel;
  f->terms_ = arena_.NewArray<const Term*>(args.data(), args.size());
  f->num_terms_ = static_cast<uint32_t>(args.size());
  return f;
}

const Formula* AstContext::MakeEq(const Term* lhs, const Term* rhs) {
  Formula* f = arena_.New<Formula>();
  f->kind_ = FormulaKind::kEq;
  const Term* pair[2] = {lhs, rhs};
  f->terms_ = arena_.NewArray<const Term*>(pair, 2);
  f->num_terms_ = 2;
  return f;
}

const Formula* AstContext::MakeNeq(const Term* lhs, const Term* rhs) {
  Formula* f = arena_.New<Formula>();
  f->kind_ = FormulaKind::kNeq;
  const Term* pair[2] = {lhs, rhs};
  f->terms_ = arena_.NewArray<const Term*>(pair, 2);
  f->num_terms_ = 2;
  return f;
}

const Formula* AstContext::MakeLess(const Term* lhs, const Term* rhs) {
  Formula* f = arena_.New<Formula>();
  f->kind_ = FormulaKind::kLess;
  const Term* pair[2] = {lhs, rhs};
  f->terms_ = arena_.NewArray<const Term*>(pair, 2);
  f->num_terms_ = 2;
  return f;
}

const Formula* AstContext::MakeLessEq(const Term* lhs, const Term* rhs) {
  Formula* f = arena_.New<Formula>();
  f->kind_ = FormulaKind::kLessEq;
  const Term* pair[2] = {lhs, rhs};
  f->terms_ = arena_.NewArray<const Term*>(pair, 2);
  f->num_terms_ = 2;
  return f;
}

const Formula* AstContext::MakeNot(const Formula* g) {
  Formula* f = arena_.New<Formula>();
  f->kind_ = FormulaKind::kNot;
  const Formula* one[1] = {g};
  f->children_ = arena_.NewArray<const Formula*>(one, 1);
  f->num_children_ = 1;
  return f;
}

const Formula* AstContext::MakeAnd(std::span<const Formula* const> children) {
  EMCALC_CHECK_MSG(children.size() >= 2, "MakeAnd needs >= 2 children");
  Formula* f = arena_.New<Formula>();
  f->kind_ = FormulaKind::kAnd;
  f->children_ =
      arena_.NewArray<const Formula*>(children.data(), children.size());
  f->num_children_ = static_cast<uint32_t>(children.size());
  return f;
}

const Formula* AstContext::MakeOr(std::span<const Formula* const> children) {
  EMCALC_CHECK_MSG(children.size() >= 2, "MakeOr needs >= 2 children");
  Formula* f = arena_.New<Formula>();
  f->kind_ = FormulaKind::kOr;
  f->children_ =
      arena_.NewArray<const Formula*>(children.data(), children.size());
  f->num_children_ = static_cast<uint32_t>(children.size());
  return f;
}

const Formula* AstContext::MakeExists(std::span<const Symbol> vars,
                                      const Formula* body) {
  EMCALC_CHECK_MSG(!vars.empty(), "quantifier needs variables");
  Formula* f = arena_.New<Formula>();
  f->kind_ = FormulaKind::kExists;
  f->vars_ = arena_.NewArray<Symbol>(vars.data(), vars.size());
  f->num_vars_ = static_cast<uint32_t>(vars.size());
  const Formula* one[1] = {body};
  f->children_ = arena_.NewArray<const Formula*>(one, 1);
  f->num_children_ = 1;
  return f;
}

const Formula* AstContext::MakeForall(std::span<const Symbol> vars,
                                      const Formula* body) {
  EMCALC_CHECK_MSG(!vars.empty(), "quantifier needs variables");
  Formula* f = arena_.New<Formula>();
  f->kind_ = FormulaKind::kForall;
  f->vars_ = arena_.NewArray<Symbol>(vars.data(), vars.size());
  f->num_vars_ = static_cast<uint32_t>(vars.size());
  const Formula* one[1] = {body};
  f->children_ = arena_.NewArray<const Formula*>(one, 1);
  f->num_children_ = 1;
  return f;
}

void AstContext::NoteSpan(const void* node, diag::SourceSpan span) {
  if (node == nullptr || node == true_ || node == false_) return;
  spans_[node] = span;
}

void AstContext::InheritSpan(const void* to, const void* from) {
  if (to == nullptr || to == from || to == true_ || to == false_) return;
  auto src = spans_.find(from);
  if (src == spans_.end()) return;
  spans_.emplace(to, src->second);  // keep an existing span on `to`
}

const diag::SourceSpan* AstContext::SpanOf(const void* node) const {
  auto it = spans_.find(node);
  return it == spans_.end() ? nullptr : &it->second;
}

bool TermsEqual(const Term* a, const Term* b) {
  if (a == b) return true;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case Term::Kind::kVar:
      return a->symbol() == b->symbol();
    case Term::Kind::kConst:
      return a->const_id() == b->const_id();
    case Term::Kind::kApply: {
      if (a->symbol() != b->symbol()) return false;
      if (a->args().size() != b->args().size()) return false;
      for (size_t i = 0; i < a->args().size(); ++i) {
        if (!TermsEqual(a->args()[i], b->args()[i])) return false;
      }
      return true;
    }
  }
  return false;
}

bool FormulasEqual(const Formula* a, const Formula* b) {
  if (a == b) return true;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return true;
    case FormulaKind::kRel: {
      if (a->rel() != b->rel()) return false;
      if (a->terms().size() != b->terms().size()) return false;
      for (size_t i = 0; i < a->terms().size(); ++i) {
        if (!TermsEqual(a->terms()[i], b->terms()[i])) return false;
      }
      return true;
    }
    case FormulaKind::kEq:
    case FormulaKind::kNeq:
    case FormulaKind::kLess:
    case FormulaKind::kLessEq:
      return TermsEqual(a->lhs(), b->lhs()) && TermsEqual(a->rhs(), b->rhs());
    case FormulaKind::kNot:
      return FormulasEqual(a->child(), b->child());
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      if (a->children().size() != b->children().size()) return false;
      for (size_t i = 0; i < a->children().size(); ++i) {
        if (!FormulasEqual(a->children()[i], b->children()[i])) return false;
      }
      return true;
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      if (a->vars().size() != b->vars().size()) return false;
      for (size_t i = 0; i < a->vars().size(); ++i) {
        if (a->vars()[i] != b->vars()[i]) return false;
      }
      return FormulasEqual(a->child(), b->child());
    }
  }
  return false;
}

}  // namespace emcalc
