// Recursive-descent parser for the calculus query language.
//
// Grammar (keywords are case-sensitive; 'or' binds loosest):
//
//   query    := '{' varlist? '|' formula '}' | formula
//   formula  := orf
//   orf      := andf ( 'or' andf )*
//   andf     := unary ( 'and' unary )*
//   unary    := 'not' unary
//             | ('exists' | 'forall') varlist '(' formula ')'
//             | '(' formula ')'
//             | 'true' | 'false'
//             | atom
//   atom     := term ('=' | '!=') term      -- equality / inequality
//             | ident '(' termlist? ')'     -- relation atom
//   term     := ident '(' termlist ')'      -- scalar function application
//             | ident                       -- variable
//             | int-literal | string-literal
//   varlist  := ident (',' ident)*
//
// An identifier applied to arguments is a relation atom in formula position
// and a function application in term position; `R(x)` followed by '=' is
// therefore the term R(x) compared for equality, otherwise the atom R(x).
// A bare formula (no braces) parses to a query whose head is the formula's
// free variables in sorted order.
#ifndef EMCALC_CALCULUS_PARSER_H_
#define EMCALC_CALCULUS_PARSER_H_

#include <string_view>

#include "src/base/status.h"
#include "src/calculus/ast.h"

namespace emcalc {

// Parses a query, interning names into `ctx`.
StatusOr<Query> ParseQuery(AstContext& ctx, std::string_view text);

// Parses a formula (no braces form).
StatusOr<const Formula*> ParseFormula(AstContext& ctx, std::string_view text);

// Parses a term (used by tests and the examples' REPL).
StatusOr<const Term*> ParseTerm(AstContext& ctx, std::string_view text);

}  // namespace emcalc

#endif  // EMCALC_CALCULUS_PARSER_H_
