// Recursive-descent parser for the calculus query language.
//
// Grammar (keywords are case-sensitive; 'or' binds loosest):
//
//   query    := '{' varlist? '|' formula '}' | formula
//   formula  := orf
//   orf      := andf ( 'or' andf )*
//   andf     := unary ( 'and' unary )*
//   unary    := 'not' unary
//             | ('exists' | 'forall') varlist '(' formula ')'
//             | '(' formula ')'
//             | 'true' | 'false'
//             | atom
//   atom     := term ('=' | '!=') term      -- equality / inequality
//             | ident '(' termlist? ')'     -- relation atom
//   term     := ident '(' termlist ')'      -- scalar function application
//             | ident                       -- variable
//             | int-literal | string-literal
//   varlist  := ident (',' ident)*
//
// An identifier applied to arguments is a relation atom in formula position
// and a function application in term position; `R(x)` followed by '=' is
// therefore the term R(x) compared for equality, otherwise the atom R(x).
// A bare formula (no braces) parses to a query whose head is the formula's
// free variables in sorted order.
#ifndef EMCALC_CALCULUS_PARSER_H_
#define EMCALC_CALCULUS_PARSER_H_

#include <string_view>

#include "src/base/status.h"
#include "src/calculus/ast.h"

namespace emcalc {

// Structured description of a parse failure, for diagnostics consumers
// (Compiler::Analyze turns it into a located diag::Diagnostic). The Status
// message already embeds line/column and a caret snippet; this carries the
// raw pieces.
struct ParseErrorInfo {
  size_t offset = 0;       // byte offset of the offending token
  std::string message;     // bare message, without position or snippet
};

// Parses a query, interning names into `ctx`. Every formula and term node
// built from the text gets a byte-offset source span recorded in the
// context's span side table (see AstContext::SpanOf). On failure, `error`
// (when non-null) receives the offset and bare message.
StatusOr<Query> ParseQuery(AstContext& ctx, std::string_view text,
                           ParseErrorInfo* error = nullptr);

// Parses a formula (no braces form).
StatusOr<const Formula*> ParseFormula(AstContext& ctx, std::string_view text,
                                      ParseErrorInfo* error = nullptr);

// Parses a term (used by tests and the examples' REPL).
StatusOr<const Term*> ParseTerm(AstContext& ctx, std::string_view text,
                                ParseErrorInfo* error = nullptr);

}  // namespace emcalc

#endif  // EMCALC_CALCULUS_PARSER_H_
