// Structure-sharing rewrites: variable substitution and rectification
// (renaming bound variables apart). These are the workhorses of the
// translation pipeline.
#ifndef EMCALC_CALCULUS_REWRITE_H_
#define EMCALC_CALCULUS_REWRITE_H_

#include <unordered_map>

#include "src/calculus/ast.h"

namespace emcalc {

// Variable -> replacement term map.
using Substitution = std::unordered_map<Symbol, const Term*>;

// Applies `sub` to every free occurrence in `t`.
const Term* SubstituteTerm(AstContext& ctx, const Term* t,
                           const Substitution& sub);

// Applies `sub` to every free occurrence in `f`, capture-avoiding:
// quantifiers whose variables appear in the substituting terms are renamed
// to fresh variables first.
const Formula* SubstituteFormula(AstContext& ctx, const Formula* f,
                                 const Substitution& sub);

// Renames bound variables so that (a) no two quantifiers bind the same
// symbol and (b) no bound symbol collides with a free variable of `f`.
// Leaves already-rectified formulas structurally unchanged (pointer-equal
// subtrees are reused).
const Formula* Rectify(AstContext& ctx, const Formula* f);

}  // namespace emcalc

#endif  // EMCALC_CALCULUS_REWRITE_H_
