// Normalizing convenience constructors for formulas. These keep rewrite
// passes terse: n-ary And/Or accept any arity (including 0 and 1) and fold
// constant children; Exists/Forall accept empty variable lists.
#ifndef EMCALC_CALCULUS_BUILDER_H_
#define EMCALC_CALCULUS_BUILDER_H_

#include <string_view>
#include <vector>

#include "src/calculus/ast.h"

namespace emcalc::builder {

// Conjunction: drops kTrue children, returns kFalse if any child is kFalse,
// flattens nested kAnd children; 0 children -> True, 1 child -> that child.
const Formula* And(AstContext& ctx, std::vector<const Formula*> children);

// Disjunction, dually.
const Formula* Or(AstContext& ctx, std::vector<const Formula*> children);

// Negation with constant folding (not True -> False, not False -> True,
// not not phi -> phi).
const Formula* Not(AstContext& ctx, const Formula* f);

// Quantifiers; an empty variable list returns the body unchanged, and
// adjacent same-kind quantifiers are merged (exists x (exists y phi) ->
// exists x,y phi).
const Formula* Exists(AstContext& ctx, std::vector<Symbol> vars,
                      const Formula* body);
const Formula* Forall(AstContext& ctx, std::vector<Symbol> vars,
                      const Formula* body);

// Relation atom with string names: Rel(ctx, "R", {x, y}).
const Formula* Rel(AstContext& ctx, std::string_view name,
                   std::vector<const Term*> args);

// Term helpers.
const Term* Var(AstContext& ctx, std::string_view name);
const Term* IntConst(AstContext& ctx, int64_t v);
const Term* StrConst(AstContext& ctx, std::string_view v);
const Term* Apply(AstContext& ctx, std::string_view fn,
                  std::vector<const Term*> args);

}  // namespace emcalc::builder

#endif  // EMCALC_CALCULUS_BUILDER_H_
