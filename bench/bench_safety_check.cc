// Experiment E7 — the em-allowed analysis as a practical compile-time
// check: throughput over random formulas of growing size, with reduced
// covers on and off.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/calculus/analysis.h"
#include "src/core/random_query.h"
#include "src/safety/em_allowed.h"

namespace {

// Pre-generates a batch of random queries of roughly the requested size.
std::vector<emcalc::Query> Corpus(emcalc::AstContext& ctx, int depth,
                                  int conjuncts, uint64_t seed, int count) {
  emcalc::RandomQueryOptions options;
  options.max_depth = depth;
  options.max_conjuncts = conjuncts;
  options.max_vars = 5;
  emcalc::RandomQueryGen gen(ctx, seed, options);
  std::vector<emcalc::Query> out;
  for (int i = 0; i < count; ++i) out.push_back(gen.Next());
  return out;
}

void Report() {
  emcalc::bench::Banner(
      "E7: em-allowed checking is a cheap static analysis",
      "safety checking of realistic formulas costs microseconds and scales "
      "with formula size; reduced covers keep the FinD sets small");
  for (int depth : {2, 3, 4}) {
    emcalc::AstContext ctx;
    std::vector<emcalc::Query> corpus = Corpus(ctx, depth, 4, 99, 200);
    int total_size = 0;
    int accepted = 0;
    for (const emcalc::Query& q : corpus) {
      total_size += emcalc::FormulaSize(q.body);
      if (emcalc::CheckEmAllowed(ctx, q).em_allowed) ++accepted;
    }
    std::printf(
        "depth %d: %zu formulas, avg size %.1f nodes, %d/%zu em-allowed\n",
        depth, corpus.size(),
        static_cast<double>(total_size) / corpus.size(), accepted,
        corpus.size());
  }
  std::printf("\n");
}

void BM_EmAllowedCheck(benchmark::State& state, bool reduced) {
  emcalc::AstContext ctx;
  int depth = static_cast<int>(state.range(0));
  std::vector<emcalc::Query> corpus = Corpus(ctx, depth, 4, 99, 64);
  emcalc::BoundOptions options;
  options.use_reduced_covers = reduced;
  size_t i = 0;
  for (auto _ : state) {
    const emcalc::Query& q = corpus[i++ % corpus.size()];
    auto r = emcalc::CheckEmAllowed(ctx, q, options);
    benchmark::DoNotOptimize(r.em_allowed);
  }
}
void BM_EmAllowedReduced(benchmark::State& state) {
  BM_EmAllowedCheck(state, true);
}
void BM_EmAllowedNaive(benchmark::State& state) {
  BM_EmAllowedCheck(state, false);
}
BENCHMARK(BM_EmAllowedReduced)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_EmAllowedNaive)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

EMCALC_BENCH_MAIN(Report)
