// Experiment E2 — direct (GT91-style) translation vs the active-domain
// translation of [AB88]/[BM92a] (Section 2 of the paper).
//
// Workload: the paper's q6 {x,y,z | R(x,y,z) and not S(y,z)} and a scalar-
// function variant, over synthetic instances of growing size. The paper's
// claim: "a direct execution of the [GT91-style] query will be
// considerably cheaper than one of the [adom-based] query."
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/algebra/eval.h"
#include "src/calculus/parser.h"
#include "src/core/workload.h"
#include "src/exec/lower.h"
#include "src/translate/active_domain.h"
#include "src/translate/pipeline.h"

namespace {

constexpr const char* kQ6 = "{x, y, z | R(x, y, z) and not S(y, z)}";
constexpr const char* kQ6Fn =
    "{x, y, z | R(x, y, z) and exists w (succ(z) = w and not S(y, w))}";

// Fixed value pool: the adom baseline's cost is driven by the active
// domain (|adom|^2 cubes for the negation), the direct plan's cost by the
// relation sizes — exactly the contrast the paper describes.
emcalc::Database Instance(int64_t rows) {
  return emcalc::MakeQ6Instance(static_cast<size_t>(rows),
                                static_cast<size_t>(rows) / 2,
                                /*value_pool=*/200, 7);
}

void Report() {
  emcalc::bench::Banner(
      "E2: direct translation vs active-domain baseline",
      "direct plans avoid the adom construction and are considerably "
      "cheaper to execute; the gap widens with instance size and explodes "
      "once scalar functions force term-closure levels > 0");
  emcalc::FunctionRegistry registry = emcalc::BuiltinFunctions();
  auto run_row = [&registry](const char* text, const char* label,
                             emcalc::Database db, int64_t rows) {
    emcalc::AstContext ctx;
    auto q = emcalc::ParseQuery(ctx, text);
    auto direct = emcalc::TranslateQuery(ctx, *q);
    auto adom = emcalc::TranslateActiveDomain(ctx, *q);
    if (!direct.ok() || !adom.ok()) return;
    auto direct_plan = emcalc::Lower(ctx, direct->plan, registry);
    auto adom_plan = emcalc::Lower(ctx, *adom, registry);
    if (!direct_plan.ok() || !adom_plan.ok()) return;
    emcalc::ExecProfile dp, ap;
    auto r1 = direct_plan->ExecuteToRelation(db, &dp);
    auto r2 = adom_plan->ExecuteToRelation(db, &ap);
    if (!r1.ok() || !r2.ok()) return;
    if (!(*r1 == *r2)) {
      std::printf("MISMATCH on %s at %lld rows!\n", text,
                  static_cast<long long>(rows));
      return;
    }
    emcalc::ExecTotals dt = emcalc::SumProfile(dp);
    emcalc::ExecTotals at = emcalc::SumProfile(ap);
    std::printf("%-8s %-6lld %14llu %14llu %9.1fx\n", label,
                static_cast<long long>(rows),
                static_cast<unsigned long long>(dt.rows_out),
                static_cast<unsigned long long>(at.rows_out),
                static_cast<double>(at.rows_out) /
                    static_cast<double>(dt.rows_out));
    emcalc::bench::AppendExecRecord("vs_active_domain", text, "direct",
                                    static_cast<size_t>(rows), r1->size(), dp);
    emcalc::bench::AppendExecRecord("vs_active_domain", text, "adom",
                                    static_cast<size_t>(rows), r2->size(), ap);
  };

  std::printf("fixed value pool (200):\n");
  std::printf("%-8s %-6s %14s %14s %10s\n", "query", "|R|", "direct tuples",
              "adom tuples", "ratio");
  for (const char* text : {kQ6, kQ6Fn}) {
    for (int64_t rows : {100, 1000, 10000}) {
      run_row(text, text == kQ6 ? "q6" : "q6+succ", Instance(rows), rows);
    }
  }

  std::printf("\nvalue pool scaling with |R| (gap widens with the domain):\n");
  std::printf("%-8s %-6s %14s %14s %10s\n", "query", "|R|", "direct tuples",
              "adom tuples", "ratio");
  for (int64_t rows : {100, 400, 1600}) {
    emcalc::Database db = emcalc::MakeQ6Instance(
        static_cast<size_t>(rows), static_cast<size_t>(rows) / 2,
        /*value_pool=*/static_cast<int>(rows), 7);
    run_row(kQ6, "q6", std::move(db), rows);
  }
  std::printf("\n");
}

void RunPlan(benchmark::State& state, const char* text, bool use_adom) {
  emcalc::AstContext ctx;
  auto q = emcalc::ParseQuery(ctx, text);
  const emcalc::AlgExpr* plan = nullptr;
  if (use_adom) {
    auto t = emcalc::TranslateActiveDomain(ctx, *q);
    if (!t.ok()) {
      state.SkipWithError(t.status().ToString().c_str());
      return;
    }
    plan = *t;
  } else {
    auto t = emcalc::TranslateQuery(ctx, *q);
    if (!t.ok()) {
      state.SkipWithError(t.status().ToString().c_str());
      return;
    }
    plan = t->plan;
  }
  emcalc::Database db = Instance(state.range(0));
  emcalc::FunctionRegistry registry = emcalc::BuiltinFunctions();
  uint64_t produced = 0;
  for (auto _ : state) {
    emcalc::AlgebraEvalStats stats;
    auto r = emcalc::EvaluateAlgebra(ctx, plan, db, registry, &stats);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    produced = stats.tuples_produced;
    benchmark::DoNotOptimize(r->size());
  }
  state.counters["tuples"] = static_cast<double>(produced);
}

void BM_Q6_Direct(benchmark::State& state) { RunPlan(state, kQ6, false); }
void BM_Q6_Adom(benchmark::State& state) { RunPlan(state, kQ6, true); }
void BM_Q6Fn_Direct(benchmark::State& state) { RunPlan(state, kQ6Fn, false); }
void BM_Q6Fn_Adom(benchmark::State& state) { RunPlan(state, kQ6Fn, true); }

BENCHMARK(BM_Q6_Direct)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Q6_Adom)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Q6Fn_Direct)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Q6Fn_Adom)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

EMCALC_BENCH_MAIN(Report)
