// Experiment E8 — the containment picture among safety criteria
// (Section 2 of the paper):
//
//   GT91-allowed  (function-free)      subset of  em-allowed
//   AB88 range-restricted              subset of  em-allowed (claimed
//                                      "strictly weaker")
//   Top91 safe                         subset of  em-allowed ("strictly
//                                      weaker")
//
// We measure acceptance counts over a large random corpus, verify zero
// containment violations, and exhibit the paper's strictness witnesses.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/calculus/analysis.h"
#include "src/calculus/parser.h"
#include "src/core/random_query.h"
#include "src/safety/allowed.h"
#include "src/safety/em_allowed.h"

namespace {

void Report() {
  emcalc::bench::Banner(
      "E8: safety-criteria containment",
      "em-allowed strictly contains GT91 allowed, AB88 range-restriction, "
      "and Top91 safe; witnesses: q2 (em, not rr), q5 (em, not safe)");

  emcalc::AstContext ctx;
  emcalc::RandomQueryOptions options;
  options.max_depth = 3;
  emcalc::RandomQueryGen gen(ctx, 4242, options);
  int n = 1500;
  int em = 0, gt = 0, rr = 0, safe = 0;
  int gt_not_em = 0, rr_not_em = 0, safe_not_em = 0;
  int em_not_rr = 0, em_not_safe = 0;
  for (int i = 0; i < n; ++i) {
    emcalc::Query q = gen.Next();
    bool is_em = emcalc::CheckEmAllowed(ctx, q).em_allowed;
    bool is_gt = emcalc::IsAllowedGT91(ctx, q.body);
    bool is_rr = emcalc::IsRangeRestricted(ctx, q.body);
    bool is_safe = emcalc::IsTop91Safe(ctx, q.body);
    em += is_em;
    gt += is_gt;
    rr += is_rr;
    safe += is_safe;
    gt_not_em += is_gt && !is_em;
    rr_not_em += is_rr && !is_em;
    safe_not_em += is_safe && !is_em;
    em_not_rr += is_em && !is_rr;
    em_not_safe += is_em && !is_safe;
  }
  std::printf("random corpus (n=%d):\n", n);
  std::printf("  em-allowed        : %4d\n", em);
  std::printf("  GT91 allowed      : %4d   (accepted but not em: %d)\n", gt,
              gt_not_em);
  std::printf("  AB88 range-restr. : %4d   (accepted but not em: %d)\n", rr,
              rr_not_em);
  std::printf("  Top91 safe        : %4d   (accepted but not em: %d)\n",
              safe, safe_not_em);
  std::printf("  strictness        : em-but-not-rr %d, em-but-not-safe %d\n",
              em_not_rr, em_not_safe);
  std::printf("  containment violations: %d (must be 0; rr is incomparable "
              "in general)\n",
              gt_not_em + safe_not_em);

  std::printf("\npaper witnesses:\n");
  struct Witness {
    const char* label;
    const char* text;
  };
  const Witness ws[] = {
      {"q2 em-allowed, not range-restricted",
       "R(x) and exists y (f(x) = y and not R(y))"},
      {"q5 em-allowed, not Top91-safe",
       "(R(x) and f(x) = y) or (S(y) and g(y) = x)"},
  };
  for (const Witness& w : ws) {
    auto f = emcalc::ParseFormula(ctx, w.text);
    if (!f.ok()) continue;
    std::printf("  %-40s em=%d gt91=%d rr=%d safe=%d\n", w.label,
                emcalc::CheckEmAllowed(ctx, *f).em_allowed,
                emcalc::IsAllowedGT91(ctx, *f),
                emcalc::IsRangeRestricted(ctx, *f),
                emcalc::IsTop91Safe(ctx, *f));
  }
  std::printf("\n");
}

// Relative costs of the four checkers over the same corpus.
template <typename Fn>
void RunChecker(benchmark::State& state, Fn&& fn) {
  emcalc::AstContext ctx;
  emcalc::RandomQueryGen gen(ctx, 4242);
  std::vector<emcalc::Query> corpus;
  for (int i = 0; i < 64; ++i) corpus.push_back(gen.Next());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn(ctx, corpus[i++ % corpus.size()]));
  }
}

void BM_CheckEmAllowed(benchmark::State& state) {
  RunChecker(state, [](emcalc::AstContext& ctx, const emcalc::Query& q) {
    return emcalc::CheckEmAllowed(ctx, q).em_allowed;
  });
}
void BM_CheckGT91(benchmark::State& state) {
  RunChecker(state, [](emcalc::AstContext& ctx, const emcalc::Query& q) {
    return emcalc::IsAllowedGT91(ctx, q.body);
  });
}
void BM_CheckRangeRestricted(benchmark::State& state) {
  RunChecker(state, [](emcalc::AstContext& ctx, const emcalc::Query& q) {
    return emcalc::IsRangeRestricted(ctx, q.body);
  });
}
void BM_CheckTop91Safe(benchmark::State& state) {
  RunChecker(state, [](emcalc::AstContext& ctx, const emcalc::Query& q) {
    return emcalc::IsTop91Safe(ctx, q.body);
  });
}
BENCHMARK(BM_CheckEmAllowed);
BENCHMARK(BM_CheckGT91);
BENCHMARK(BM_CheckRangeRestricted);
BENCHMARK(BM_CheckTop91Safe);

}  // namespace

EMCALC_BENCH_MAIN(Report)
