// Shared helpers for the experiment binaries: a tiny report printer used
// to emit the paper-claim vs measured tables before the google-benchmark
// timing runs.
#ifndef EMCALC_BENCH_BENCH_UTIL_H_
#define EMCALC_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>

namespace emcalc::bench {

// Prints the experiment banner; every bench binary calls this first so the
// combined bench_output.txt is self-describing.
inline void Banner(const char* experiment, const char* claim) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==========================================================\n");
}

// Standard main: print the report, then run the registered benchmarks.
#define EMCALC_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                        \
    report_fn();                                           \
    ::benchmark::Initialize(&argc, argv);                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                 \
    ::benchmark::Shutdown();                               \
    return 0;                                              \
  }

}  // namespace emcalc::bench

#endif  // EMCALC_BENCH_BENCH_UTIL_H_
