// Shared helpers for the experiment binaries: a tiny report printer used
// to emit the paper-claim vs measured tables before the google-benchmark
// timing runs, plus machine-readable emission of execution profiles.
#ifndef EMCALC_BENCH_BENCH_UTIL_H_
#define EMCALC_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/exec/physical.h"

namespace emcalc::bench {

// Prints the experiment banner; every bench binary calls this first so the
// combined bench_output.txt is self-describing.
inline void Banner(const char* experiment, const char* claim) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==========================================================\n");
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// Renders an ExecProfile subtree as a JSON object (nested children).
inline void ProfileToJson(const ExecProfile& p, std::string& out) {
  out += "{\"op\":\"";
  out += PhysOpKindName(p.op);
  out += "\"";
  if (!p.detail.empty()) out += ",\"detail\":\"" + JsonEscape(p.detail) + "\"";
  out += ",\"arity\":" + std::to_string(p.arity);
  if (p.shared_ref) {
    out += ",\"shared_ref\":true}";
    return;
  }
  out += ",\"rows_in\":" + std::to_string(p.stats.rows_in);
  out += ",\"rows_out\":" + std::to_string(p.stats.rows_out);
  if (p.stats.build_rows > 0) {
    out += ",\"build_rows\":" + std::to_string(p.stats.build_rows);
  }
  if (p.stats.hash_probes > 0) {
    out += ",\"hash_probes\":" + std::to_string(p.stats.hash_probes);
  }
  if (p.stats.function_calls > 0) {
    out += ",\"function_calls\":" + std::to_string(p.stats.function_calls);
  }
  if (p.stats.tuple_copies > 0) {
    out += ",\"tuple_copies\":" + std::to_string(p.stats.tuple_copies);
  }
  if (p.stats.cache_hits > 0) {
    out += ",\"cache_hits\":" + std::to_string(p.stats.cache_hits);
  }
  out += ",\"wall_ns\":" + std::to_string(p.stats.wall_ns);
  if (!p.children.empty()) {
    out += ",\"children\":[";
    for (size_t i = 0; i < p.children.size(); ++i) {
      if (i > 0) out += ",";
      ProfileToJson(p.children[i], out);
    }
    out += "]";
  }
  out += "}";
}

// Appends one record to BENCH_exec.json in the working directory. The file
// is JSON Lines (one object per line) because several bench binaries
// contribute records to the same file; re-runs append.
inline void AppendExecRecord(const std::string& bench,
                             const std::string& query,
                             const std::string& variant, size_t instance_rows,
                             size_t answer_rows, const ExecProfile& profile) {
  ExecTotals totals = SumProfile(profile);
  std::string line = "{\"bench\":\"" + JsonEscape(bench) + "\"";
  line += ",\"query\":\"" + JsonEscape(query) + "\"";
  line += ",\"variant\":\"" + JsonEscape(variant) + "\"";
  line += ",\"instance_rows\":" + std::to_string(instance_rows);
  line += ",\"answer_rows\":" + std::to_string(answer_rows);
  line += ",\"tuples_scanned\":" + std::to_string(totals.rows_in);
  line += ",\"tuples_produced\":" + std::to_string(totals.rows_out);
  line += ",\"function_calls\":" + std::to_string(totals.function_calls);
  line += ",\"tuple_copies\":" + std::to_string(totals.tuple_copies);
  line += ",\"profile\":";
  ProfileToJson(profile, line);
  line += "}\n";
  std::ofstream out("BENCH_exec.json", std::ios::app);
  out << line;
}

// Standard main: print the report, then run the registered benchmarks.
#define EMCALC_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                        \
    report_fn();                                           \
    ::benchmark::Initialize(&argc, argv);                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                 \
    ::benchmark::Shutdown();                               \
    return 0;                                              \
  }

}  // namespace emcalc::bench

#endif  // EMCALC_BENCH_BENCH_UTIL_H_
