// Shared helpers for the experiment binaries: a tiny report printer used
// to emit the paper-claim vs measured tables before the google-benchmark
// timing runs, plus machine-readable emission of execution profiles.
//
// Record files (BENCH_exec.json, BENCH_obs.json, ...) are JSON Lines —
// one object per line, appended within a run; a re-run truncates each
// file it writes so records never accumulate across runs. Every record
// carries `schema` (kBenchSchemaVersion, bumped on layout changes) and a
// `metrics` block (the process metrics-registry snapshot at emission
// time), so records from different PRs stay machine-comparable.
#ifndef EMCALC_BENCH_BENCH_UTIL_H_
#define EMCALC_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "src/exec/physical.h"
#include "src/obs/history.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/query_log.h"
#include "src/obs/trace.h"

namespace emcalc::bench {

// Version of the JSON-Lines record layout shared by all BENCH_*.json
// files. v1: bare exec records; v2: adds schema + metrics snapshot;
// v3: profiles use the canonical ExecProfileToJson layout (est_rows +
// memory accounting per operator, round-trippable via ExecProfileFromJson).
inline constexpr int kBenchSchemaVersion = 3;

// Prints the experiment banner; every bench binary calls this first so the
// combined bench_output.txt is self-describing.
inline void Banner(const char* experiment, const char* claim) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==========================================================\n");
}

inline std::string JsonEscape(const std::string& s) {
  return obs::JsonEscape(s);
}

// Renders an ExecProfile subtree as a JSON object (nested children) in
// the canonical ExecProfileToJson layout, so bench records round-trip
// through ExecProfileFromJson like any other serialized profile.
inline void ProfileToJson(const ExecProfile& p, std::string& out) {
  out += ExecProfileToJson(p);
}

// Appends one JSON-Lines record to `file`, completing `fields` (the
// record's own "key":value pairs, comma-separated, no braces) with the
// shared schema-version field and the current metrics snapshot.
//
// The first write to a given file in this process truncates it, so
// re-running a bench binary in the same directory replaces its records
// instead of accumulating duplicates; later writes (same process) append.
inline void AppendRecordLine(const std::string& file,
                             const std::string& fields) {
  static std::set<std::string>* truncated = new std::set<std::string>();
  std::string line = "{\"schema\":" + std::to_string(kBenchSchemaVersion);
  line += "," + fields;
  line += ",\"metrics\":" + obs::MetricsRegistry::Instance().JsonSnapshot();
  line += "}\n";
  const bool fresh = truncated->insert(file).second;
  std::ofstream out(file, fresh ? std::ios::trunc : std::ios::app);
  out << line;
}

// Appends one execution record to BENCH_exec.json in the working
// directory.
inline void AppendExecRecord(const std::string& bench,
                             const std::string& query,
                             const std::string& variant, size_t instance_rows,
                             size_t answer_rows, const ExecProfile& profile) {
  ExecTotals totals = SumProfile(profile);
  std::string fields = "\"bench\":\"" + JsonEscape(bench) + "\"";
  fields += ",\"query\":\"" + JsonEscape(query) + "\"";
  fields += ",\"variant\":\"" + JsonEscape(variant) + "\"";
  fields += ",\"instance_rows\":" + std::to_string(instance_rows);
  fields += ",\"answer_rows\":" + std::to_string(answer_rows);
  fields += ",\"tuples_scanned\":" + std::to_string(totals.rows_in);
  fields += ",\"tuples_produced\":" + std::to_string(totals.rows_out);
  fields += ",\"function_calls\":" + std::to_string(totals.function_calls);
  fields += ",\"tuple_copies\":" + std::to_string(totals.tuple_copies);
  fields += ",\"profile\":";
  ProfileToJson(profile, fields);
  AppendRecordLine("BENCH_exec.json", fields);
}

// Standard main: honor the observability env vars (EMCALC_TRACE,
// EMCALC_QUERY_LOG, EMCALC_HISTORY_DIR), print the report, then run the
// registered benchmarks.
#define EMCALC_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                        \
    ::emcalc::obs::InitTracingFromEnv();                   \
    ::emcalc::obs::InitQueryLogFromEnv();                  \
    ::emcalc::obs::InitHistoryFromEnv();                   \
    report_fn();                                           \
    ::benchmark::Initialize(&argc, argv);                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                 \
    ::benchmark::Shutdown();                               \
    return 0;                                              \
  }

}  // namespace emcalc::bench

#endif  // EMCALC_BENCH_BENCH_UTIL_H_
