// Experiment E10 — plan-quality ablations.
//
// (a) Context-threading vs literal T13/T14 distribution: GT91's syntactic
//     strategy duplicates the bounding conjuncts into every disjunction
//     branch; our generator threads the context plan instead. Same answers,
//     different plan sizes and evaluation costs.
// (b) The plan simplifier: raw generated plans vs simplified plans.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/algebra/eval.h"
#include "src/calculus/parser.h"
#include "src/core/workload.h"
#include "src/translate/pipeline.h"

namespace {

// k stacked 2-way disjunctions over a shared bounding core: the worst case
// for distribution (2^k branches).
std::string StackedDisjunctions(int k) {
  std::string body = "R(x, y, z)";
  for (int i = 0; i < k; ++i) {
    body += " and (S" + std::to_string(i) + "(x) or T" + std::to_string(i) +
            "(y))";
  }
  return "{x, y, z | " + body + "}";
}

emcalc::Database Instance(int k) {
  emcalc::Database db;
  emcalc::AddRandomTuples(db, "R", 3, 2000, 50, 3);
  for (int i = 0; i < k; ++i) {
    emcalc::AddRandomTuples(db, "S" + std::to_string(i), 1, 25, 50, 11 + i);
    emcalc::AddRandomTuples(db, "T" + std::to_string(i), 1, 25, 50, 37 + i);
  }
  return db;
}

void Report() {
  emcalc::bench::Banner(
      "E10: plan quality — context threading vs T13 distribution, and the "
      "plan simplifier",
      "literal distribution duplicates the context into every branch "
      "(plans grow ~2^k); context threading keeps plans linear in k with "
      "identical answers");
  emcalc::FunctionRegistry registry = emcalc::BuiltinFunctions();
  std::printf("%-12s %10s %12s %14s %16s\n", "disjunctions",
              "plan nodes", "plan (T13)", "tuples", "tuples (T13)");
  for (int k : {1, 2, 3, 4, 5}) {
    emcalc::AstContext ctx;
    auto q = emcalc::ParseQuery(ctx, StackedDisjunctions(k));
    if (!q.ok()) continue;
    auto threaded = emcalc::TranslateQuery(ctx, *q);
    emcalc::TranslateOptions dist_options;
    dist_options.distribute_disjunctions = true;
    auto distributed = emcalc::TranslateQuery(ctx, *q, dist_options);
    if (!threaded.ok() || !distributed.ok()) continue;
    emcalc::Database db = Instance(k);
    emcalc::AlgebraEvalStats ts, ds;
    auto a = emcalc::EvaluateAlgebra(ctx, threaded->plan, db, registry, &ts);
    auto b =
        emcalc::EvaluateAlgebra(ctx, distributed->plan, db, registry, &ds);
    if (!a.ok() || !b.ok()) continue;
    if (!(*a == *b)) {
      std::printf("MISMATCH at k=%d!\n", k);
      continue;
    }
    std::printf("%-12d %10d %12d %14llu %16llu\n", k,
                threaded->plan->NodeCount(), distributed->plan->NodeCount(),
                static_cast<unsigned long long>(ts.tuples_produced),
                static_cast<unsigned long long>(ds.tuples_produced));
  }

  std::printf("\nplan simplifier (raw generated vs optimized):\n");
  std::printf("%-12s %10s %12s %14s %16s\n", "disjunctions", "raw nodes",
              "opt nodes", "raw tuples", "opt tuples");
  for (int k : {1, 3, 5}) {
    emcalc::AstContext ctx;
    auto q = emcalc::ParseQuery(ctx, StackedDisjunctions(k));
    auto t = emcalc::TranslateQuery(ctx, *q);
    if (!t.ok()) continue;
    emcalc::Database db = Instance(k);
    emcalc::AlgebraEvalStats rs, os;
    auto a = emcalc::EvaluateAlgebra(ctx, t->raw_plan, db, registry, &rs);
    auto b = emcalc::EvaluateAlgebra(ctx, t->plan, db, registry, &os);
    if (!a.ok() || !b.ok() || !(*a == *b)) continue;
    std::printf("%-12d %10d %12d %14llu %16llu\n", k,
                t->raw_plan->NodeCount(), t->plan->NodeCount(),
                static_cast<unsigned long long>(rs.tuples_produced),
                static_cast<unsigned long long>(os.tuples_produced));
  }
  std::printf("\n");
}

void BM_Threaded(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  emcalc::AstContext ctx;
  auto q = emcalc::ParseQuery(ctx, StackedDisjunctions(k));
  auto t = emcalc::TranslateQuery(ctx, *q);
  if (!t.ok()) {
    state.SkipWithError("translate");
    return;
  }
  emcalc::Database db = Instance(k);
  emcalc::FunctionRegistry registry = emcalc::BuiltinFunctions();
  for (auto _ : state) {
    auto r = emcalc::EvaluateAlgebra(ctx, t->plan, db, registry);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_Threaded)->Arg(1)->Arg(3)->Arg(5);

void BM_Distributed(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  emcalc::AstContext ctx;
  auto q = emcalc::ParseQuery(ctx, StackedDisjunctions(k));
  emcalc::TranslateOptions options;
  options.distribute_disjunctions = true;
  auto t = emcalc::TranslateQuery(ctx, *q, options);
  if (!t.ok()) {
    state.SkipWithError("translate");
    return;
  }
  emcalc::Database db = Instance(k);
  emcalc::FunctionRegistry registry = emcalc::BuiltinFunctions();
  for (auto _ : state) {
    auto r = emcalc::EvaluateAlgebra(ctx, t->plan, db, registry);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_Distributed)->Arg(1)->Arg(3)->Arg(5);

}  // namespace

EMCALC_BENCH_MAIN(Report)
