// Experiment E10 — plan-quality ablations.
//
// (a) Context-threading vs literal T13/T14 distribution: GT91's syntactic
//     strategy duplicates the bounding conjuncts into every disjunction
//     branch; our generator threads the context plan instead. Same answers,
//     different plan sizes and evaluation costs.
// (b) The plan simplifier: raw generated plans vs simplified plans.
// (c) History feedback: the corpus lowered against a cold (empty) history
//     store vs a warm one; warm estimates are past actuals, so the p90
//     per-op misestimation factor must improve (self-judged record in
//     BENCH_quality.json, gated by check_perf_regression.py --quality).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/algebra/eval.h"
#include "src/calculus/parser.h"
#include "src/core/compiler.h"
#include "src/core/workload.h"
#include "src/exec/feedback.h"
#include "src/obs/history.h"
#include "src/translate/pipeline.h"

namespace {

// k stacked 2-way disjunctions over a shared bounding core: the worst case
// for distribution (2^k branches).
std::string StackedDisjunctions(int k) {
  std::string body = "R(x, y, z)";
  for (int i = 0; i < k; ++i) {
    body += " and (S" + std::to_string(i) + "(x) or T" + std::to_string(i) +
            "(y))";
  }
  return "{x, y, z | " + body + "}";
}

emcalc::Database Instance(int k) {
  emcalc::Database db;
  emcalc::AddRandomTuples(db, "R", 3, 2000, 50, 3);
  for (int i = 0; i < k; ++i) {
    emcalc::AddRandomTuples(db, "S" + std::to_string(i), 1, 25, 50, 11 + i);
    emcalc::AddRandomTuples(db, "T" + std::to_string(i), 1, 25, 50, 37 + i);
  }
  return db;
}

// p-th percentile of `values` (nearest-rank on the sorted copy); 0 when
// empty.
double PercentileOfValues(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  auto rank = static_cast<size_t>((p / 100.0) *
                                  static_cast<double>(values.size() - 1));
  return values[std::min(rank, values.size() - 1)];
}

// One pass over the corpus: compile (lowering consults whatever history
// store is installed), run with a profile, and pool every operator's
// misestimation factor. Returns false on any compile/run failure.
bool RunCorpusPass(std::vector<double>& factors, size_t& corrected_ops,
                   std::vector<emcalc::Relation>& answers) {
  for (int k : {1, 2, 3, 4, 5}) {
    emcalc::Compiler compiler;
    auto q = compiler.Compile(StackedDisjunctions(k));
    if (!q.ok()) return false;
    emcalc::Database db = Instance(k);
    emcalc::ExecProfile profile;
    auto answer = q->RunWithProfile(db, &profile);
    if (!answer.ok()) return false;
    answers.push_back(std::move(answer).value());
    corrected_ops += emcalc::CountHistoryCorrectedOps(profile);
    for (const emcalc::PlanFeedbackEntry& e :
         emcalc::BuildPlanFeedback(profile).entries) {
      factors.push_back(e.factor);
    }
  }
  return true;
}

// Experiment (c): cold-store vs warm-store lowering over the corpus.
void ReportHistoryFeedback() {
  emcalc::bench::Banner(
      "E10c: history-feedback plan quality — cold vs warm store",
      "with a warm history store, lowered estimates are past actuals, so "
      "the p90 per-op misestimation factor strictly improves over the "
      "cold-store heuristics with bit-identical answers");
  char dir_template[] = "/tmp/emcalc_bench_history_XXXXXX";
  char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) {
    std::printf("history feedback: cannot create temp store, skipping\n");
    return;
  }
  auto store = emcalc::obs::HistoryStore::Open(dir);
  if (!store.ok()) {
    std::printf("history feedback: %s\n", store.status().ToString().c_str());
    return;
  }
  // The cold/warm comparison needs its own store; remember any
  // process-global one (EMCALC_HISTORY_DIR) and restore it after.
  emcalc::obs::HistoryStore* previous = emcalc::obs::GetHistoryStore();
  emcalc::obs::SetHistoryStore(store->get());

  // Cold: the store is empty, every estimate is heuristic; running
  // records actuals. Warm: recompiling consults those actuals.
  std::vector<double> cold_factors, warm_factors;
  std::vector<emcalc::Relation> cold_answers, warm_answers;
  size_t cold_corrected = 0, warm_corrected = 0;
  bool ok = RunCorpusPass(cold_factors, cold_corrected, cold_answers) &&
            RunCorpusPass(warm_factors, warm_corrected, warm_answers);
  emcalc::obs::SetHistoryStore(previous);
  if (!ok) {
    std::printf("history feedback: corpus pass failed\n");
    return;
  }

  bool identical = cold_answers.size() == warm_answers.size();
  for (size_t i = 0; identical && i < cold_answers.size(); ++i) {
    identical = cold_answers[i] == warm_answers[i];
  }
  double cold_p90 = PercentileOfValues(cold_factors, 90);
  double warm_p90 = PercentileOfValues(warm_factors, 90);
  double cold_worst =
      cold_factors.empty()
          ? 0
          : *std::max_element(cold_factors.begin(), cold_factors.end());
  double warm_worst =
      warm_factors.empty()
          ? 0
          : *std::max_element(warm_factors.begin(), warm_factors.end());
  bool pass = identical && warm_p90 < cold_p90;

  std::printf("%-18s %12s %12s\n", "", "cold store", "warm store");
  std::printf("%-18s %12.2f %12.2f\n", "p90 factor", cold_p90, warm_p90);
  std::printf("%-18s %12.2f %12.2f\n", "worst factor", cold_worst,
              warm_worst);
  std::printf("%-18s %12zu %12zu\n", "corrected ops", cold_corrected,
              warm_corrected);
  std::printf("answers bit-identical: %s\n", identical ? "yes" : "NO");
  std::printf("self-judgement: %s (warm p90 %s cold p90)\n\n",
              pass ? "pass" : "FAIL", warm_p90 < cold_p90 ? "<" : ">=");

  std::string fields = "\"bench\":\"plan_quality\"";
  fields += ",\"variant\":\"history_feedback\"";
  char num[64];
  std::snprintf(num, sizeof(num), "%.6g", cold_p90);
  fields += ",\"cold_p90_factor\":" + std::string(num);
  std::snprintf(num, sizeof(num), "%.6g", warm_p90);
  fields += ",\"warm_p90_factor\":" + std::string(num);
  std::snprintf(num, sizeof(num), "%.6g", cold_worst);
  fields += ",\"cold_worst_factor\":" + std::string(num);
  std::snprintf(num, sizeof(num), "%.6g", warm_worst);
  fields += ",\"warm_worst_factor\":" + std::string(num);
  fields += ",\"ops_sampled\":" + std::to_string(cold_factors.size());
  fields += ",\"warm_corrected_ops\":" + std::to_string(warm_corrected);
  fields += ",\"cold_corrected_ops\":" + std::to_string(cold_corrected);
  fields += ",\"results_identical\":";
  fields += identical ? "true" : "false";
  fields += ",\"pass\":";
  fields += pass ? "true" : "false";
  emcalc::bench::AppendRecordLine("BENCH_quality.json", fields);
}

void Report() {
  emcalc::bench::Banner(
      "E10: plan quality — context threading vs T13 distribution, and the "
      "plan simplifier",
      "literal distribution duplicates the context into every branch "
      "(plans grow ~2^k); context threading keeps plans linear in k with "
      "identical answers");
  emcalc::FunctionRegistry registry = emcalc::BuiltinFunctions();
  std::printf("%-12s %10s %12s %14s %16s\n", "disjunctions",
              "plan nodes", "plan (T13)", "tuples", "tuples (T13)");
  for (int k : {1, 2, 3, 4, 5}) {
    emcalc::AstContext ctx;
    auto q = emcalc::ParseQuery(ctx, StackedDisjunctions(k));
    if (!q.ok()) continue;
    auto threaded = emcalc::TranslateQuery(ctx, *q);
    emcalc::TranslateOptions dist_options;
    dist_options.distribute_disjunctions = true;
    auto distributed = emcalc::TranslateQuery(ctx, *q, dist_options);
    if (!threaded.ok() || !distributed.ok()) continue;
    emcalc::Database db = Instance(k);
    emcalc::AlgebraEvalStats ts, ds;
    auto a = emcalc::EvaluateAlgebra(ctx, threaded->plan, db, registry, &ts);
    auto b =
        emcalc::EvaluateAlgebra(ctx, distributed->plan, db, registry, &ds);
    if (!a.ok() || !b.ok()) continue;
    if (!(*a == *b)) {
      std::printf("MISMATCH at k=%d!\n", k);
      continue;
    }
    std::printf("%-12d %10d %12d %14llu %16llu\n", k,
                threaded->plan->NodeCount(), distributed->plan->NodeCount(),
                static_cast<unsigned long long>(ts.tuples_produced),
                static_cast<unsigned long long>(ds.tuples_produced));
  }

  std::printf("\nplan simplifier (raw generated vs optimized):\n");
  std::printf("%-12s %10s %12s %14s %16s\n", "disjunctions", "raw nodes",
              "opt nodes", "raw tuples", "opt tuples");
  for (int k : {1, 3, 5}) {
    emcalc::AstContext ctx;
    auto q = emcalc::ParseQuery(ctx, StackedDisjunctions(k));
    auto t = emcalc::TranslateQuery(ctx, *q);
    if (!t.ok()) continue;
    emcalc::Database db = Instance(k);
    emcalc::AlgebraEvalStats rs, os;
    auto a = emcalc::EvaluateAlgebra(ctx, t->raw_plan, db, registry, &rs);
    auto b = emcalc::EvaluateAlgebra(ctx, t->plan, db, registry, &os);
    if (!a.ok() || !b.ok() || !(*a == *b)) continue;
    std::printf("%-12d %10d %12d %14llu %16llu\n", k,
                t->raw_plan->NodeCount(), t->plan->NodeCount(),
                static_cast<unsigned long long>(rs.tuples_produced),
                static_cast<unsigned long long>(os.tuples_produced));
  }
  std::printf("\n");

  ReportHistoryFeedback();
}

void BM_Threaded(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  emcalc::AstContext ctx;
  auto q = emcalc::ParseQuery(ctx, StackedDisjunctions(k));
  auto t = emcalc::TranslateQuery(ctx, *q);
  if (!t.ok()) {
    state.SkipWithError("translate");
    return;
  }
  emcalc::Database db = Instance(k);
  emcalc::FunctionRegistry registry = emcalc::BuiltinFunctions();
  for (auto _ : state) {
    auto r = emcalc::EvaluateAlgebra(ctx, t->plan, db, registry);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_Threaded)->Arg(1)->Arg(3)->Arg(5);

void BM_Distributed(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  emcalc::AstContext ctx;
  auto q = emcalc::ParseQuery(ctx, StackedDisjunctions(k));
  emcalc::TranslateOptions options;
  options.distribute_disjunctions = true;
  auto t = emcalc::TranslateQuery(ctx, *q, options);
  if (!t.ok()) {
    state.SkipWithError("translate");
    return;
  }
  emcalc::Database db = Instance(k);
  emcalc::FunctionRegistry registry = emcalc::BuiltinFunctions();
  for (auto _ : state) {
    auto r = emcalc::EvaluateAlgebra(ctx, t->plan, db, registry);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_Distributed)->Arg(1)->Arg(3)->Arg(5);

}  // namespace

EMCALC_BENCH_MAIN(Report)
