#!/usr/bin/env bash
# Produces the canonical bench artifacts at the repo root:
#
#   BENCH_perf.json    kernel + operator-stack rows/sec (bench_flat_exec)
#   BENCH_obs.json     observability overhead guard (bench_obs_overhead)
#   BENCH_quality.json plan-quality / history-feedback verdicts
#                      (bench_plan_quality)
#
# Usage: bench/run_benches.sh [BUILD_DIR]
#
# BUILD_DIR defaults to "build" and must already contain the compiled
# bench binaries (cmake --build BUILD_DIR --target bench_flat_exec
# bench_obs_overhead bench_plan_quality). Each binary runs in table mode only
# (--benchmark_filter=NONE skips the google-benchmark timing loops) inside
# a scratch directory, so the JSON-Lines files are written fresh — no
# stale records accumulate across runs. The finished files are then moved
# to the repo root, overwriting the previous artifacts.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac

for bin in bench_flat_exec bench_obs_overhead bench_plan_quality; do
  if [[ ! -x "$build_dir/bench/$bin" ]]; then
    echo "error: $build_dir/bench/$bin not built" >&2
    echo "hint: cmake --build $build_dir --target $bin" >&2
    exit 1
  fi
done

scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT
cd "$scratch"

echo "== bench_flat_exec (BENCH_perf.json) =="
"$build_dir/bench/bench_flat_exec" --benchmark_filter=NONE
echo
echo "== bench_obs_overhead (BENCH_obs.json) =="
"$build_dir/bench/bench_obs_overhead" --benchmark_filter=NONE
echo
echo "== bench_plan_quality (BENCH_quality.json) =="
"$build_dir/bench/bench_plan_quality" --benchmark_filter=NONE

mv BENCH_perf.json "$repo_root/BENCH_perf.json"
mv BENCH_obs.json "$repo_root/BENCH_obs.json"
mv BENCH_quality.json "$repo_root/BENCH_quality.json"
echo
echo "wrote $repo_root/BENCH_perf.json, $repo_root/BENCH_obs.json, and" \
     "$repo_root/BENCH_quality.json"
