// Experiment OBS1 — observability overhead guard. The span tracer must be
// effectively free when disabled: a disabled Span is one relaxed atomic
// load, so its cost, multiplied by the number of spans a query emits, must
// stay below 2% of the query's wall time. The always-on flight recorder
// rides on the same spans (four relaxed stores plus a release store per
// event), so its marginal cost per span — recorder on minus recorder off —
// times the span count must stay below 1% of query wall time. This binary
// measures all of these on the payroll workload, prints PASS/FAIL
// verdicts, and appends the measurements to BENCH_obs.json (schema shared
// with BENCH_exec.json via bench_util.h; the recorder gate records carry
// variant "flight_recorder").
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/compiler.h"
#include "src/core/workload.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace {

constexpr const char* kQueries[] = {
    "{e, n | exists d, s (EMP(e, d, s) and n = net10(s))}",
    "{e | exists d, s (EMP(e, d, s) and not exists b (BONUS(e, b)))}",
    "{e, b | exists d, s (EMP(e, d, s) and BONUS(e, b))}",
};

emcalc::FunctionRegistry Functions() {
  emcalc::FunctionRegistry reg = emcalc::BuiltinFunctions();
  reg.Register("net10", 1, [](std::span<const emcalc::Value> a) {
    int64_t v = a[0].is_int() ? a[0].AsInt() : 0;
    return emcalc::Value::Int(v * 9 / 10);
  });
  return reg;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Cost of one tracer-disabled Span (construct + destruct with no tracer
// installed), averaged over a large loop, with the flight recorder forced
// on or off. Recorder off: ~1ns, the relaxed atomic load of the global
// tracer pointer plus the recorder's enabled check. Recorder on: a few ns
// more for the two ring events (four relaxed stores + a release store
// each).
double SpanCostNs(bool recorder_on) {
  emcalc::obs::Tracer* saved = emcalc::obs::GetTracer();
  emcalc::obs::SetTracer(nullptr);
  bool saved_rec = emcalc::obs::FlightRecorderEnabled();
  emcalc::obs::SetFlightRecorderEnabled(recorder_on);
  constexpr int kIters = 2'000'000;
  double best = 1e18;
  for (int round = 0; round < 3; ++round) {
    uint64_t start = NowNs();
    for (int i = 0; i < kIters; ++i) {
      emcalc::obs::Span span("bench.disabled_span");
      benchmark::DoNotOptimize(span.enabled());
    }
    best = std::min(best, static_cast<double>(NowNs() - start) / kIters);
  }
  emcalc::obs::SetFlightRecorderEnabled(saved_rec);
  emcalc::obs::SetTracer(saved);
  return best;
}

uint64_t MedianRunNs(emcalc::CompiledQuery& q, emcalc::Database& db,
                     int runs) {
  std::vector<uint64_t> samples;
  samples.reserve(static_cast<size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    uint64_t start = NowNs();
    auto r = q.Run(db);
    benchmark::DoNotOptimize(r.ok());
    samples.push_back(NowNs() - start);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void Report() {
  emcalc::bench::Banner(
      "OBS1: tracing overhead guard (payroll workload)",
      "a disabled span costs one relaxed atomic load; total disabled-"
      "tracing overhead stays under 2% of query wall time, and the "
      "always-on flight recorder adds under 1% on top");
  emcalc::obs::Tracer* saved = emcalc::obs::GetTracer();
  emcalc::obs::SetTracer(nullptr);

  // span_ns is the production default (recorder on) and feeds the 2%
  // tracing gate; the on/off delta feeds the 1% flight-recorder gate.
  double span_ns = SpanCostNs(true);
  double span_off_ns = SpanCostNs(false);
  double recorder_delta_ns = std::max(0.0, span_ns - span_off_ns);
  std::printf(
      "disabled span cost: %.2f ns (recorder off: %.2f ns, "
      "recorder delta: %.2f ns)\n\n",
      span_ns, span_off_ns, recorder_delta_ns);

  emcalc::Compiler compiler(Functions());
  emcalc::Database db = emcalc::MakePayrollInstance(10000, 8, 3);
  bool all_pass = true;
  for (const char* text : kQueries) {
    auto q = compiler.Compile(text);
    if (!q.ok()) {
      std::printf("compile failed: %s\n", q.status().ToString().c_str());
      all_pass = false;
      continue;
    }
    // Span count per run: execute once with a local tracer installed.
    emcalc::obs::Tracer tracer;
    emcalc::obs::SetTracer(&tracer);
    uint64_t enabled_ns = MedianRunNs(*q, db, 3);
    size_t spans_per_run = tracer.size() / 3;
    emcalc::obs::SetTracer(nullptr);

    uint64_t disabled_ns = MedianRunNs(*q, db, 9);
    double overhead_ns = span_ns * static_cast<double>(spans_per_run);
    double overhead_pct =
        100.0 * overhead_ns / static_cast<double>(disabled_ns);
    bool pass = overhead_pct < 2.0;
    all_pass = all_pass && pass;
    std::printf(
        "query: %s\n"
        "  spans/run=%-5zu wall(disabled)=%9.3fms wall(enabled)=%9.3fms\n"
        "  disabled-tracing overhead: %zu spans x %.2fns = %.1fus "
        "(%.4f%% of wall) -> %s\n",
        text, spans_per_run, static_cast<double>(disabled_ns) / 1e6,
        static_cast<double>(enabled_ns) / 1e6, spans_per_run, span_ns,
        overhead_ns / 1e3, overhead_pct, pass ? "PASS (<2%)" : "FAIL");

    std::string fields = "\"bench\":\"obs_overhead\"";
    fields += ",\"query\":\"" + emcalc::bench::JsonEscape(text) + "\"";
    fields += ",\"variant\":\"overhead_guard\"";
    fields += ",\"instance_rows\":10000";
    fields += ",\"spans_per_run\":" + std::to_string(spans_per_run);
    fields += ",\"span_cost_ns\":" + std::to_string(span_ns);
    fields += ",\"wall_disabled_ns\":" + std::to_string(disabled_ns);
    fields += ",\"wall_enabled_ns\":" + std::to_string(enabled_ns);
    fields += ",\"overhead_pct\":" + std::to_string(overhead_pct);
    fields += ",\"pass\":";
    fields += pass ? "true" : "false";
    emcalc::bench::AppendRecordLine("BENCH_obs.json", fields);

    // Flight-recorder gate: the recorder stays on in production, so its
    // marginal cost per span (two ring events) times the span count must
    // stay below 1% of the query's wall time.
    double fr_overhead_ns =
        recorder_delta_ns * static_cast<double>(spans_per_run);
    double fr_pct = 100.0 * fr_overhead_ns / static_cast<double>(disabled_ns);
    bool fr_pass = fr_pct < 1.0;
    all_pass = all_pass && fr_pass;
    std::printf(
        "  flight-recorder overhead: %zu spans x %.2fns = %.1fus "
        "(%.4f%% of wall) -> %s\n",
        spans_per_run, recorder_delta_ns, fr_overhead_ns / 1e3, fr_pct,
        fr_pass ? "PASS (<1%)" : "FAIL");
    std::string fr_fields = "\"bench\":\"obs_overhead\"";
    fr_fields += ",\"query\":\"" + emcalc::bench::JsonEscape(text) + "\"";
    fr_fields += ",\"variant\":\"flight_recorder\"";
    fr_fields += ",\"instance_rows\":10000";
    fr_fields += ",\"spans_per_run\":" + std::to_string(spans_per_run);
    fr_fields += ",\"span_cost_on_ns\":" + std::to_string(span_ns);
    fr_fields += ",\"span_cost_off_ns\":" + std::to_string(span_off_ns);
    fr_fields += ",\"wall_disabled_ns\":" + std::to_string(disabled_ns);
    fr_fields += ",\"overhead_pct\":" + std::to_string(fr_pct);
    fr_fields += ",\"pass\":";
    fr_fields += fr_pass ? "true" : "false";
    emcalc::bench::AppendRecordLine("BENCH_obs.json", fr_fields);
  }
  std::printf("\noverhead guard: %s\n\n", all_pass ? "PASS" : "FAIL");
  emcalc::obs::SetTracer(saved);
}

void BM_SpanDisabled(benchmark::State& state) {
  emcalc::obs::Tracer* saved = emcalc::obs::GetTracer();
  emcalc::obs::SetTracer(nullptr);
  for (auto _ : state) {
    emcalc::obs::Span span("bench.disabled_span");
    benchmark::DoNotOptimize(span.enabled());
  }
  emcalc::obs::SetTracer(saved);
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  emcalc::obs::Tracer* saved = emcalc::obs::GetTracer();
  emcalc::obs::Tracer tracer;
  emcalc::obs::SetTracer(&tracer);
  for (auto _ : state) {
    emcalc::obs::Span span("bench.enabled_span");
    benchmark::DoNotOptimize(span.enabled());
  }
  emcalc::obs::SetTracer(saved);
  state.counters["spans"] = static_cast<double>(tracer.size());
}
BENCHMARK(BM_SpanEnabled);

void BM_RunTracing(benchmark::State& state) {
  emcalc::Compiler compiler(Functions());
  auto q = compiler.Compile(kQueries[0]);
  if (!q.ok()) {
    state.SkipWithError("compile");
    return;
  }
  emcalc::Database db = emcalc::MakePayrollInstance(
      static_cast<size_t>(state.range(0)), 8, 3);
  emcalc::obs::Tracer* saved = emcalc::obs::GetTracer();
  emcalc::obs::Tracer tracer;
  emcalc::obs::SetTracer(state.range(1) != 0 ? &tracer : nullptr);
  for (auto _ : state) {
    auto r = q->Run(db);
    if (!r.ok()) {
      state.SkipWithError("run");
      break;
    }
    benchmark::DoNotOptimize(r->size());
    tracer.Clear();
  }
  emcalc::obs::SetTracer(saved);
  state.counters["rows"] = static_cast<double>(state.range(0));
  state.counters["traced"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_RunTracing)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

}  // namespace

EMCALC_BENCH_MAIN(Report)
