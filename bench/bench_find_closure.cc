// Experiment E4 — FinD closure computation. FinDs satisfy the axioms of
// functional dependencies, so the linear-time membership algorithm of
// [BB79] applies (the paper uses it to sort conjunctions during the
// translation). We compare the naive fixpoint closure with the
// Beeri–Bernstein counter algorithm across FinD-set sizes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "src/finds/find_set.h"

namespace {

// A random FinD set over `vars` variables with `n` dependencies arranged
// so closures have long derivation chains.
emcalc::FinDSet RandomFinDs(int n, int vars, uint64_t seed,
                            emcalc::SymbolTable& table) {
  std::mt19937_64 rng(seed);
  std::vector<emcalc::Symbol> pool;
  for (int i = 0; i < vars; ++i) {
    pool.push_back(table.Intern("v" + std::to_string(i)));
  }
  emcalc::FinDSet set;
  for (int i = 0; i < n; ++i) {
    emcalc::SymbolSet lhs, rhs;
    int nl = 1 + static_cast<int>(rng() % 3);
    for (int j = 0; j < nl; ++j) lhs.Insert(pool[rng() % pool.size()]);
    rhs.Insert(pool[rng() % pool.size()]);
    set.Add(emcalc::FinD{lhs, rhs});
  }
  // Seed a chain so closures are deep: v0 -> v1 -> ... -> v_{k}.
  for (int i = 0; i + 1 < vars; ++i) {
    set.Add(emcalc::FinD{emcalc::SymbolSet{pool[i]},
                         emcalc::SymbolSet{pool[i + 1]}});
  }
  return set;
}

void Report() {
  emcalc::bench::Banner(
      "E4: FinD closure — naive fixpoint vs Beeri–Bernstein [BB79]",
      "FinDs behave like FDs; the linear counter algorithm computes the "
      "same closures and scales linearly in the number of dependencies");
  emcalc::SymbolTable table;
  std::printf("%-8s %-8s %10s\n", "n_finds", "n_vars", "closure=|X+|");
  for (int n : {10, 100, 1000}) {
    int vars = n;
    emcalc::FinDSet set = RandomFinDs(n, vars, 7, table);
    emcalc::SymbolSet start{table.Intern("v0")};
    emcalc::SymbolSet a = set.Closure(start);
    emcalc::SymbolSet b = set.LinearClosure(start);
    std::printf("%-8d %-8d %10zu %s\n", n, vars, a.size(),
                a == b ? "(algorithms agree)" : "(MISMATCH!)");
  }
  std::printf("\n");
}

void BM_NaiveClosure(benchmark::State& state) {
  emcalc::SymbolTable table;
  int n = static_cast<int>(state.range(0));
  emcalc::FinDSet set = RandomFinDs(n, n, 7, table);
  emcalc::SymbolSet start{table.Intern("v0")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.Closure(start).size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_NaiveClosure)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_LinearClosure(benchmark::State& state) {
  emcalc::SymbolTable table;
  int n = static_cast<int>(state.range(0));
  emcalc::FinDSet set = RandomFinDs(n, n, 7, table);
  emcalc::SymbolSet start{table.Intern("v0")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.LinearClosure(start).size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LinearClosure)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_Reduce(benchmark::State& state) {
  emcalc::SymbolTable table;
  int n = static_cast<int>(state.range(0));
  emcalc::FinDSet set = RandomFinDs(n, /*vars=*/12, 11, table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.Reduce().size());
  }
}
BENCHMARK(BM_Reduce)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

EMCALC_BENCH_MAIN(Report)
