#!/usr/bin/env python3
"""Perf-regression gate over BENCH_perf.json (JSON Lines, bench_flat_exec).

Usage: check_perf_regression.py BASELINE CURRENT [--threshold 0.7]

Raw rows/sec numbers are machine-dependent, so the gate compares *ratios*:
for every gated (data, op, variant) series, speedup = variant rows_per_sec
divided by the same run's legacy_layout rows_per_sec for that (data, op).
A series regresses when current_speedup / baseline_speedup falls below the
threshold (0.7 = a >30% slowdown relative to the in-run legacy baseline).

Only the single-threaded variants are gated (flat_layout, flat_t1, and
the tuple/batch kernel pair) — multi-thread numbers on shared CI runners
are too noisy to gate on, and flat_hw depends on the core count. When a
file holds duplicate records for a series (appended re-runs), the latest
record per (bench, data, op, variant, threads) wins. The full delta
table is always printed, gated or not.

With --obs BENCH_obs.json, the observability overhead verdicts from
bench_obs_overhead are also gated: every record in that file carries a
"pass" flag computed against an in-run ratio (tracing overhead <2% of
query wall, flight-recorder overhead <1%), so any "pass": false fails
the gate regardless of machine speed.

The current file's bench:"verify_overhead" records (stage-boundary plan
verification cost, emitted by bench_flat_exec) are gated the same way:
each carries a self-judged "pass" flag (compile-phase overhead <2%), and
any "pass": false fails the gate. Baselines predating the verifier are
fine — the gate only fires on records that exist.

With --quality BENCH_quality.json, the plan-quality verdicts from
bench_plan_quality are gated too: its history-feedback record judges
itself (warm-store p90 misestimation factor strictly below the
cold-store p90, answers bit-identical), so any "pass": false — or a
file with no plan_quality records at all — fails the gate.

Exit status: 0 when no gated series regresses, 1 otherwise.
"""

import argparse
import json
import sys

GATED_VARIANTS = ("flat_layout", "flat_t1", "tuple", "batch")
BASELINE_VARIANT = "legacy_layout"


def load_series(path):
    """(data, op, variant) -> rows_per_sec for bench=flat_exec records.

    Files may hold several records per series (a binary re-run that
    appended before truncate-on-rerun landed, or deliberate repeat runs):
    the *latest* record per (bench, data, op, variant, threads) wins, so
    stale duplicates never shadow the current numbers.
    """
    latest = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("bench") != "flat_exec":
                continue
            full_key = (rec["data"], rec["op"], rec["variant"],
                        rec.get("threads"))
            latest[full_key] = float(rec["rows_per_sec"])
    series = {}
    for (data, op, variant, _threads), rps in latest.items():
        series[(data, op, variant)] = rps
    if not series:
        raise SystemExit(f"error: no flat_exec records in {path}")
    return series


def speedups(series):
    """(data, op, variant) -> rows_per_sec / same-run legacy rows_per_sec."""
    out = {}
    for (data, op, variant), rps in series.items():
        if variant == BASELINE_VARIANT:
            continue
        legacy = series.get((data, op, BASELINE_VARIANT))
        if not legacy or rps <= 0:
            continue
        out[(data, op, variant)] = rps / legacy
    return out


def check_obs(path):
    """Gate the self-judging verdicts in BENCH_obs.json.

    Every obs_overhead record carries a "pass" flag (tracing <2% of query
    wall; flight_recorder variant <1%). Returns the list of failing
    (variant, query) pairs.
    """
    failures = []
    total = 0
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("bench") != "obs_overhead":
                continue
            total += 1
            variant = rec.get("variant", "?")
            query = rec.get("query", "?")
            pct = rec.get("overhead_pct")
            verdict = "ok" if rec.get("pass") else "FAIL"
            print(f"  obs {variant:<16} {pct:>8.4f}%  {verdict}  {query}")
            if not rec.get("pass"):
                failures.append((variant, query))
    if total == 0:
        print(f"  obs: no obs_overhead records in {path}")
        failures.append(("obs_overhead", "missing records"))
    return failures


def check_verify_overhead(path):
    """Gate the self-judging verify_overhead verdicts in `path`.

    Every verify_overhead record carries a "pass" flag (stage-boundary
    verification adds <2% to the compile phase). Returns the failing
    records; files without such records (pre-verifier baselines) pass.
    """
    failures = []
    total = 0
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("bench") != "verify_overhead":
                continue
            total += 1
            pct = rec.get("overhead_pct", 0.0)
            verdict = "ok" if rec.get("pass") else "FAIL"
            print(f"  verify_overhead {pct:>8.4f}%  {verdict}  "
                  f"({rec.get('compiles', '?')} queries, "
                  f"small {rec.get('small_pct', 0.0):.2f}% / "
                  f"chain {rec.get('chain_pct', 0.0):.2f}%)")
            if not rec.get("pass"):
                failures.append(pct)
    if total == 0:
        print("  verify_overhead: no records (pre-verifier file) — skipped")
    return failures


def check_quality(path):
    """Gate the self-judging plan_quality verdicts in `path`.

    The history-feedback record carries "pass" (warm-store p90
    misestimation factor < cold-store p90, identical answers). Returns
    the failing records; a file without plan_quality records fails —
    the bench is expected to emit one whenever it runs.
    """
    failures = []
    total = 0
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("bench") != "plan_quality":
                continue
            total += 1
            variant = rec.get("variant", "?")
            verdict = "ok" if rec.get("pass") else "FAIL"
            print(f"  quality {variant:<18} "
                  f"cold p90 {rec.get('cold_p90_factor', 0.0):>8.2f}  "
                  f"warm p90 {rec.get('warm_p90_factor', 0.0):>8.2f}  "
                  f"identical={rec.get('results_identical')}  {verdict}")
            if not rec.get("pass"):
                failures.append(variant)
    if total == 0:
        print(f"  quality: no plan_quality records in {path}")
        failures.append("missing records")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.7,
                        help="fail when current/baseline speedup ratio "
                             "drops below this (default 0.7 = -30%%)")
    parser.add_argument("--obs", metavar="BENCH_OBS_JSON",
                        help="also gate observability overhead verdicts "
                             "(fail on any \"pass\": false record)")
    parser.add_argument("--quality", metavar="BENCH_QUALITY_JSON",
                        help="also gate plan-quality verdicts (fail on any "
                             "\"pass\": false or missing record)")
    args = parser.parse_args()

    base = speedups(load_series(args.baseline))
    cur = speedups(load_series(args.current))

    rows = []
    failures = []
    for key in sorted(set(base) | set(cur)):
        data, op, variant = key
        b, c = base.get(key), cur.get(key)
        gated = variant in GATED_VARIANTS
        if b is None or c is None:
            rows.append((data, op, variant, b, c, None,
                         "MISSING" if gated else "skip"))
            if gated:
                failures.append(key)
            continue
        ratio = c / b
        if not gated:
            verdict = "info"
        elif ratio < args.threshold:
            verdict = "FAIL"
            failures.append(key)
        else:
            verdict = "ok"
        rows.append((data, op, variant, b, c, ratio, verdict))

    fmt = "{:<6} {:<14} {:<14} {:>10} {:>10} {:>8}  {}"
    print(fmt.format("data", "op", "variant", "base", "current", "ratio",
                     "verdict"))
    for data, op, variant, b, c, ratio, verdict in rows:
        print(fmt.format(
            data, op, variant,
            f"{b:.2f}x" if b is not None else "-",
            f"{c:.2f}x" if c is not None else "-",
            f"{ratio:.3f}" if ratio is not None else "-",
            verdict))

    obs_failures = []
    if args.obs:
        print()
        print(f"observability overhead gate ({args.obs}):")
        obs_failures = check_obs(args.obs)

    print()
    print(f"stage-boundary verification overhead gate ({args.current}):")
    verify_failures = check_verify_overhead(args.current)

    quality_failures = []
    if args.quality:
        print()
        print(f"plan-quality gate ({args.quality}):")
        quality_failures = check_quality(args.quality)

    print()
    if failures:
        print(f"FAIL: {len(failures)} gated series regressed past "
              f"{(1 - args.threshold) * 100:.0f}% (threshold "
              f"{args.threshold}):")
        for data, op, variant in failures:
            print(f"  {data}/{op}/{variant}")
    if obs_failures:
        print(f"FAIL: {len(obs_failures)} observability overhead "
              f"verdicts failed:")
        for variant, query in obs_failures:
            print(f"  {variant}: {query}")
    if verify_failures:
        print(f"FAIL: {len(verify_failures)} verify_overhead verdicts "
              f"failed (compile-phase overhead >=2%):")
        for pct in verify_failures:
            print(f"  overhead {pct:.4f}%")
    if quality_failures:
        print(f"FAIL: {len(quality_failures)} plan-quality verdicts failed "
              f"(history feedback did not improve p90 misestimation):")
        for variant in quality_failures:
            print(f"  {variant}")
    if failures or obs_failures or verify_failures or quality_failures:
        return 1
    print(f"ok: no gated series regressed past "
          f"{(1 - args.threshold) * 100:.0f}%"
          + (" and all observability verdicts passed" if args.obs else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
