// Experiment E1 — the paper's worked examples.
//
// For every named query of the paper we print the algebra expression our
// translator produces next to the expression the paper reports, then time
// the full compilation pipeline per query.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/algebra/printer.h"
#include "src/calculus/parser.h"
#include "src/translate/pipeline.h"

namespace {

struct Example {
  const char* id;
  const char* query;
  const char* paper_plan;  // "-" when the paper gives no explicit algebra
};

const Example kExamples[] = {
    {"q1", "{y | exists x (R(x) and y = g(f(x)))}", "project([g(f(@1))], R)"},
    {"q2", "{x | R(x) and exists y (f(x) = y and not R(y))}", "-"},
    {"q4",
     "{x, y | B(x) and not (((f(x) != y and g(x) != y) or R(x, y)) and "
     "((h(x) != y and k(x) != y) or P(x, y)))}",
     "-"},
    {"q5", "{x, y | (R(x) and f(x) = y) or (S(y) and g(y) = x)}", "-"},
    {"q6", "{x, y, z | R(x, y, z) and not S(y, z)}",
     "R - project([@1,@2,@3], join({@2==@4,@3==@5}, R, S))"},
};

void Report() {
  emcalc::bench::Banner(
      "E1: worked-example translations",
      "each example translates to the paper's algebra expression (q1, q6 "
      "verbatim; q2/q4/q5 to difference/union plans with extended "
      "projections, no active-domain scan)");
  for (const Example& e : kExamples) {
    emcalc::AstContext ctx;
    auto q = emcalc::ParseQuery(ctx, e.query);
    if (!q.ok()) {
      std::printf("%s: PARSE ERROR %s\n", e.id, q.status().ToString().c_str());
      continue;
    }
    auto t = emcalc::TranslateQuery(ctx, *q);
    std::printf("%-3s calculus: %s\n", e.id, e.query);
    if (!t.ok()) {
      std::printf("    TRANSLATION FAILED: %s\n",
                  t.status().ToString().c_str());
      continue;
    }
    std::printf("    paper:    %s\n", e.paper_plan);
    std::printf("    produced: %s\n",
                emcalc::AlgExprToString(ctx, t->plan).c_str());
    std::printf("    plan nodes: %d (raw %d)\n", t->plan->NodeCount(),
                t->raw_plan->NodeCount());
  }
  std::printf("\n");
}

void BM_TranslateExample(benchmark::State& state) {
  const Example& e = kExamples[state.range(0)];
  for (auto _ : state) {
    emcalc::AstContext ctx;
    auto q = emcalc::ParseQuery(ctx, e.query);
    auto t = emcalc::TranslateQuery(ctx, *q);
    benchmark::DoNotOptimize(t.ok());
  }
  state.SetLabel(e.id);
}
BENCHMARK(BM_TranslateExample)->DenseRange(0, 4);

}  // namespace

EMCALC_BENCH_MAIN(Report)
