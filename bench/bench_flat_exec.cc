// Experiment E8 — flat tuple storage, value interning, and morsel
// parallelism (the physical-layer performance work, not a paper claim).
//
// The baseline ("legacy_layout") reconstructs the pre-flat representation
// exactly as the tree had it: Value = variant<int64_t, string> (40 bytes,
// content hashing and comparison) and one heap-allocated vector<Value> per
// tuple, with the bucket-map join EvalJoin used. Against it run the
// symmetric hand-rolled kernels over the interned flat layout
// ("flat_layout" — isolates the representation change) and the full
// physical operator stack at 1, 2, and hardware threads, plus the
// single-threaded "tuple" (batch_size=1) vs "batch" (batch_size=1024)
// pair that isolates the vectorized scalar-program kernels. Rows/sec per
// variant goes to BENCH_perf.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "bench/bench_util.h"
#include "src/algebra/ast.h"
#include "src/algebra/expr.h"
#include "src/base/thread_pool.h"
#include "src/calculus/analysis.h"
#include "src/calculus/parser.h"
#include "src/core/compiler.h"
#include "src/core/workload.h"
#include "src/translate/pipeline.h"
#include "src/exec/join_table.h"
#include "src/exec/lower.h"
#include "src/exec/physical.h"
#include "src/storage/relation.h"
#include "src/verify/verify.h"

namespace {

using emcalc::AddRandomTuples;
using emcalc::AlgCompareOp;
using emcalc::AlgExpr;
using emcalc::AlgebraFactory;
using emcalc::AstContext;
using emcalc::Database;
using emcalc::ExecOptions;
using emcalc::ExprFactory;
using emcalc::FunctionRegistry;
using emcalc::Lower;
using emcalc::Relation;
using emcalc::TupleRef;
using emcalc::Value;

constexpr size_t kRows = 200'000;
constexpr int kValuePool = 50'000;

// Two data profiles per run: all-integer rows (the layout change alone) and
// rows where a quarter of the columns hold strings (every variant pays — or
// is spared — the string-representation cost too).
struct DataProfile {
  const char* name;
  double string_share;
};
constexpr DataProfile kProfiles[] = {{"ints", 0.0}, {"mixed", 0.25}};

Database MakeInstance(size_t rows, double string_share) {
  Database db;
  AddRandomTuples(db, "R", 2, rows, kValuePool, /*seed=*/11, string_share);
  AddRandomTuples(db, "S", 2, rows, kValuePool, /*seed=*/23, string_share);
  return db;
}

// ---- The pre-flat representation, verbatim from the seed tree ----------

// Old Value: variant ordering (ints before strings) and the old mix-or-
// string-content hash.
using OldValue = std::variant<int64_t, std::string>;
using OldTuple = std::vector<OldValue>;

size_t OldHash(const OldValue& v) {
  if (const int64_t* n = std::get_if<int64_t>(&v)) {
    uint64_t x = static_cast<uint64_t>(*n);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
  return std::hash<std::string>()(std::get<std::string>(v)) ^
         0x9e3779b97f4a7c15ULL;
}

struct OldRelation {
  int arity = 0;
  std::vector<OldTuple> rows;

  // The old Relation's lazy sort + dedupe, forced.
  size_t SizeNormalized() {
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    return rows.size();
  }
};

OldRelation ToOldLayout(const Relation& rel) {
  OldRelation out;
  out.arity = rel.arity();
  out.rows.reserve(rel.size());
  for (TupleRef t : rel) {
    OldTuple row;
    row.reserve(t.size());
    for (const Value& v : t) {
      if (v.is_int()) {
        row.emplace_back(v.AsInt());
      } else {
        row.emplace_back(std::string(v.AsStr()));
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

// The pre-flat hash join: bucket map keyed on the key value's hash with a
// per-row key materialization and per-output Tuple concatenation — the
// shape EvalJoin had before JoinTable over flat storage.
size_t OldLayoutJoin(const OldRelation& left, const OldRelation& right) {
  std::unordered_map<size_t, std::vector<const OldTuple*>> buckets;
  buckets.reserve(right.rows.size());
  for (const OldTuple& t : right.rows) {
    buckets[OldHash(t[0])].push_back(&t);
  }
  OldRelation out;
  out.arity = left.arity + right.arity;
  for (const OldTuple& t : left.rows) {
    auto it = buckets.find(OldHash(t[1]));
    if (it == buckets.end()) continue;
    for (const OldTuple* r : it->second) {
      if (!((*r)[0] == t[1])) continue;
      OldTuple joined = t;
      joined.insert(joined.end(), r->begin(), r->end());
      out.rows.push_back(std::move(joined));
    }
  }
  return out.SizeNormalized();
}

// The pre-flat filter: per-row variant comparison, full-row copies out.
size_t OldLayoutFilter(const OldRelation& in) {
  OldRelation out;
  out.arity = in.arity;
  for (const OldTuple& t : in.rows) {
    if (t[0] < t[1]) out.rows.push_back(t);
  }
  return out.SizeNormalized();
}

// The scalar-heavy projection shared by every project_map variant:
//   out0 = plus(mix(succ(c0), double(succ(c0))), abs(neg(half(c0))))
//   out1 = minus(max2(succ(c0), abs(neg(half(c0)))), min2(c0, c1))
// — fifteen applications per row on the tuple path (shared subtrees
// re-evaluated), ten compiled ops per batch (succ/half/neg/abs CSE'd).
// The builtins' totality coercion maps strings to their length; the
// arithmetic below mirrors the builtin bodies exactly.
int64_t NumCoerce(const OldValue& v) {
  return std::holds_alternative<int64_t>(v)
             ? std::get<int64_t>(v)
             : static_cast<int64_t>(std::get<std::string>(v).size());
}

int64_t MixNum(int64_t a, int64_t b) {
  uint64_t x = static_cast<uint64_t>(a) * 0x9e3779b97f4a7c15ULL +
               static_cast<uint64_t>(b);
  x ^= x >> 29;
  return static_cast<int64_t>(x & 0x7fffffff);
}

int64_t ChainOut0(int64_t n) {
  int64_t s = n + 1;
  int64_t a = std::abs(-(n / 2));
  return MixNum(s, 2 * s) + a;
}

int64_t ChainOut1(int64_t n0, int64_t n1) {
  int64_t s = n0 + 1;
  int64_t a = std::abs(-(n0 / 2));
  return std::max(s, a) - std::min(n0, n1);
}

// The pre-flat scalar map: the scalar chain per row, fresh row per output.
size_t OldLayoutProject(const OldRelation& in) {
  OldRelation out;
  out.arity = in.arity;
  for (const OldTuple& t : in.rows) {
    int64_t n0 = NumCoerce(t[0]);
    out.rows.push_back(
        OldTuple{OldValue(ChainOut0(n0)),
                 OldValue(ChainOut1(n0, NumCoerce(t[1])))});
  }
  return out.SizeNormalized();
}

// The pre-flat filter-then-map chain: c0 < c1 survivors through the
// scalar chain (the FilterSelect→ProjectMap shape the batch kernels fuse).
size_t OldLayoutScalarChain(const OldRelation& in) {
  OldRelation out;
  out.arity = 1;
  for (const OldTuple& t : in.rows) {
    if (t[0] < t[1]) {
      out.rows.push_back(OldTuple{OldValue(ChainOut0(NumCoerce(t[0])))});
    }
  }
  return out.SizeNormalized();
}

// ---- Symmetric kernels over the interned flat layout -------------------
// Same algorithm class and per-row work as the Old* kernels, so this pair
// isolates the storage representation: 8-byte trivially-copyable values in
// one contiguous arity-strided array vs a heap vector of variants per row.

size_t FlatLayoutJoin(const Relation& left, const Relation& right) {
  size_t bn = right.size();
  std::vector<Value> keys(bn);
  std::vector<uint64_t> hashes(bn);
  std::vector<uint32_t> rows(bn);
  for (size_t i = 0; i < bn; ++i) {
    keys[i] = right.row(i)[0];
    hashes[i] = keys[i].Hash();
    rows[i] = static_cast<uint32_t>(i);
  }
  emcalc::JoinTable table;
  table.Build(keys.data(), hashes.data(), /*nk=*/1, rows.data(), bn);
  Relation out(left.arity() + right.arity());
  out.Reserve(left.size());
  Value row[4];
  for (TupleRef t : left) {
    Value key = t[1];
    table.ForEachMatch(key.Hash(), &key, [&](uint32_t r) {
      TupleRef b = right.row(r);
      row[0] = t[0];
      row[1] = t[1];
      row[2] = b[0];
      row[3] = b[1];
      out.AppendRow(row);
    });
  }
  return out.size();
}

size_t FlatLayoutFilter(const Relation& in) {
  Relation out(in.arity());
  for (TupleRef t : in) {
    if (t[0] < t[1]) out.AppendRow(t.data());
  }
  return out.size();
}

int64_t FlatNumCoerce(const Value& v) {
  return v.is_int() ? v.AsInt()
                    : static_cast<int64_t>(v.AsStr().size());
}

size_t FlatLayoutProject(const Relation& in) {
  Relation out(in.arity());
  Value row[2];
  for (TupleRef t : in) {
    int64_t n0 = FlatNumCoerce(t[0]);
    row[0] = Value::Int(ChainOut0(n0));
    row[1] = Value::Int(ChainOut1(n0, FlatNumCoerce(t[1])));
    out.AppendRow(row);
  }
  return out.size();
}

size_t FlatLayoutScalarChain(const Relation& in) {
  Relation out(1);
  Value row[1];
  for (TupleRef t : in) {
    if (!(t[0] < t[1])) continue;
    row[0] = Value::Int(ChainOut0(FlatNumCoerce(t[0])));
    out.AppendRow(row);
  }
  return out.size();
}

// ---- The full physical operator stack ----------------------------------

struct Plans {
  const AlgExpr* join = nullptr;
  const AlgExpr* filter = nullptr;
  const AlgExpr* project = nullptr;
  const AlgExpr* chain = nullptr;
};

Plans MakePlans(AstContext& ctx, AlgebraFactory& factory) {
  ExprFactory e(ctx);
  Plans p;
  // R(a, b) |x|_{b = c} S(c, d)
  p.join = factory.Join({{e.Col(1), AlgCompareOp::kEq, e.Col(2)}},
                        factory.Rel("R", 2), factory.Rel("S", 2));
  p.filter = factory.Select({{e.Col(0), AlgCompareOp::kLt, e.Col(1)}},
                            factory.Rel("R", 2));
  auto apply1 = [&](const char* fn, const emcalc::ScalarExpr* a) {
    const emcalc::ScalarExpr* args[] = {a};
    return e.Apply(ctx.symbols().Intern(fn), args);
  };
  auto apply2 = [&](const char* fn, const emcalc::ScalarExpr* a,
                    const emcalc::ScalarExpr* b) {
    const emcalc::ScalarExpr* args[] = {a, b};
    return e.Apply(ctx.symbols().Intern(fn), args);
  };
  // The shared subtrees (succ(c0), abs(neg(half(c0)))) are CSE'd by the
  // compiled batch program but re-evaluated by the tuple path — mirrors
  // ChainOut0/ChainOut1 in the hand kernels above.
  const emcalc::ScalarExpr* s = apply1("succ", e.Col(0));
  const emcalc::ScalarExpr* a = apply1("abs", apply1("neg", apply1("half", e.Col(0))));
  const emcalc::ScalarExpr* out0 =
      apply2("plus", apply2("mix", s, apply1("double", s)), a);
  const emcalc::ScalarExpr* out1 =
      apply2("minus", apply2("max2", s, a), apply2("min2", e.Col(0), e.Col(1)));
  p.project = factory.Project({out0, out1}, factory.Rel("R", 2));
  p.chain = factory.Project(
      {out0}, factory.Select({{e.Col(0), AlgCompareOp::kLt, e.Col(1)}},
                             factory.Rel("R", 2)));
  return p;
}

// Best-of-reps wall time of one flat execution at `threads` workers and
// `batch_size` rows per batch (1 = tuple-at-a-time, 0 = default batched).
uint64_t FlatWallNs(const AstContext& ctx, const AlgExpr* plan,
                    const Database& db, const FunctionRegistry& registry,
                    size_t threads, size_t batch_size, size_t* out_rows,
                    int reps = 3) {
  ExecOptions options;
  options.num_threads = threads;
  if (batch_size > 0) options.batch_size = batch_size;
  auto physical = Lower(ctx, plan, registry, options);
  if (!physical.ok()) return 0;
  uint64_t best = UINT64_MAX;
  for (int i = 0; i < reps; ++i) {
    uint64_t start = emcalc::obs::NowNs();
    auto r = physical->ExecuteToRelation(db);
    uint64_t wall = emcalc::obs::NowNs() - start;
    if (!r.ok()) return 0;
    *out_rows = r->size();
    if (wall < best) best = wall;
  }
  return best;
}

template <typename Fn>
uint64_t KernelWallNs(Fn&& fn, size_t* out_rows, int reps = 3) {
  uint64_t best = UINT64_MAX;
  for (int i = 0; i < reps; ++i) {
    uint64_t start = emcalc::obs::NowNs();
    *out_rows = fn();
    uint64_t wall = emcalc::obs::NowNs() - start;
    if (wall < best) best = wall;
  }
  return best;
}

void EmitRecord(const char* data, const char* op, const char* variant,
                size_t threads, size_t rows_in, size_t rows_out,
                uint64_t wall_ns) {
  double rows_per_sec =
      wall_ns > 0 ? static_cast<double>(rows_in) * 1e9 /
                        static_cast<double>(wall_ns)
                  : 0.0;
  std::string fields = "\"bench\":\"flat_exec\"";
  fields += ",\"data\":\"" + std::string(data) + "\"";
  fields += ",\"op\":\"" + std::string(op) + "\"";
  fields += ",\"variant\":\"" + std::string(variant) + "\"";
  fields += ",\"threads\":" + std::to_string(threads);
  fields += ",\"rows_in\":" + std::to_string(rows_in);
  fields += ",\"rows_out\":" + std::to_string(rows_out);
  fields += ",\"wall_ns\":" + std::to_string(wall_ns);
  fields += ",\"rows_per_sec\":" + std::to_string(rows_per_sec);
  emcalc::bench::AppendRecordLine("BENCH_perf.json", fields);
}

void ReportProfile(const DataProfile& profile) {
  FunctionRegistry registry = emcalc::BuiltinFunctions();
  Database db = MakeInstance(kRows, profile.string_share);
  const Relation& flat_r = *db.Find("R");
  const Relation& flat_s = *db.Find("S");
  OldRelation old_r = ToOldLayout(flat_r);
  OldRelation old_s = ToOldLayout(flat_s);
  size_t rows_in = old_r.rows.size() + old_s.rows.size();

  AstContext ctx;
  AlgebraFactory factory(ctx);
  Plans plans = MakePlans(ctx, factory);

  const size_t hw = emcalc::ThreadPool::HardwareThreads();
  struct Series {
    const char* op;
    const AlgExpr* plan;
    size_t (*old_kernel)(const OldRelation&, const OldRelation&);
    size_t (*flat_kernel)(const Relation&, const Relation&);
    size_t old_rows = 0;
    uint64_t old_ns = 0;
    size_t flat_rows = 0;
    uint64_t flat_ns = 0;
  };
  Series series[] = {
      {"hash_join", plans.join,
       [](const OldRelation& r, const OldRelation& s) {
         return OldLayoutJoin(r, s);
       },
       [](const Relation& r, const Relation& s) {
         return FlatLayoutJoin(r, s);
       }},
      {"filter_select", plans.filter,
       [](const OldRelation& r, const OldRelation&) {
         return OldLayoutFilter(r);
       },
       [](const Relation& r, const Relation&) {
         return FlatLayoutFilter(r);
       }},
      {"project_map", plans.project,
       [](const OldRelation& r, const OldRelation&) {
         return OldLayoutProject(r);
       },
       [](const Relation& r, const Relation&) {
         return FlatLayoutProject(r);
       }},
      {"scalar_chain", plans.chain,
       [](const OldRelation& r, const OldRelation&) {
         return OldLayoutScalarChain(r);
       },
       [](const Relation& r, const Relation&) {
         return FlatLayoutScalarChain(r);
       }},
  };
  for (Series& s : series) {
    // The Old* kernels mutate their output only; inputs stay shared.
    s.old_ns =
        KernelWallNs([&] { return s.old_kernel(old_r, old_s); }, &s.old_rows);
    s.flat_ns = KernelWallNs([&] { return s.flat_kernel(flat_r, flat_s); },
                             &s.flat_rows);
  }

  std::printf("[%s] %zu+%zu input rows, %d%% string columns, hardware=%zu\n\n",
              profile.name, old_r.rows.size(), old_s.rows.size(),
              static_cast<int>(profile.string_share * 100), hw);
  std::printf("%-14s %-14s %10s %12s %9s\n", "operator", "variant",
              "wall ms", "rows/sec", "speedup");
  for (const Series& s : series) {
    size_t op_rows_in =
        s.plan == plans.join ? rows_in : old_r.rows.size();
    EmitRecord(profile.name, s.op, "legacy_layout", 1, op_rows_in, s.old_rows, s.old_ns);
    std::printf("%-14s %-14s %10.2f %12.0f %9s\n", s.op, "legacy_layout",
                static_cast<double>(s.old_ns) / 1e6,
                static_cast<double>(op_rows_in) * 1e9 /
                    static_cast<double>(s.old_ns),
                "1.00x");
    EmitRecord(profile.name, s.op, "flat_layout", 1, op_rows_in, s.flat_rows, s.flat_ns);
    std::printf("%-14s %-14s %10.2f %12.0f %8.2fx\n", s.op, "flat_layout",
                static_cast<double>(s.flat_ns) / 1e6,
                static_cast<double>(op_rows_in) * 1e9 /
                    static_cast<double>(s.flat_ns),
                static_cast<double>(s.old_ns) /
                    static_cast<double>(s.flat_ns));
    if (s.flat_rows != s.old_rows) {
      std::printf("  !! output mismatch: flat_layout=%zu legacy=%zu\n",
                  s.flat_rows, s.old_rows);
    }
    struct Variant {
      const char* name;
      size_t threads;
      size_t batch_size;  // 0 = ExecOptions default (batched)
    };
    // flat_t1/t2/hw run the default batched kernels; "tuple" and "batch"
    // pin batch_size at one thread so their ratio isolates the vectorized
    // kernels from the layout and parallelism wins.
    const Variant variants[] = {{"flat_t1", 1, 0},
                                {"flat_t2", 2, 0},
                                {"flat_hw", hw, 0},
                                {"tuple", 1, 1},
                                {"batch", 1, 1024}};
    uint64_t t1_ns = 0;
    uint64_t tuple_ns = 0;
    for (const Variant& v : variants) {
      size_t out_rows = 0;
      uint64_t ns = FlatWallNs(ctx, s.plan, db, registry, v.threads,
                               v.batch_size, &out_rows);
      if (v.threads == 1 && v.batch_size == 0) t1_ns = ns;
      if (v.batch_size == 1) tuple_ns = ns;
      EmitRecord(profile.name, s.op, v.name, v.threads, op_rows_in, out_rows, ns);
      double speedup = ns > 0 ? static_cast<double>(s.old_ns) /
                                    static_cast<double>(ns)
                              : 0.0;
      std::printf("%-14s %-14s %10.2f %12.0f %8.2fx\n", s.op, v.name,
                  static_cast<double>(ns) / 1e6,
                  static_cast<double>(op_rows_in) * 1e9 /
                      static_cast<double>(ns),
                  speedup);
      if (out_rows != s.old_rows) {
        std::printf("  !! output mismatch: %s=%zu legacy=%zu\n", v.name,
                    out_rows, s.old_rows);
      }
      if (v.threads == 2 && t1_ns > 0 && ns > 0) {
        std::printf("%-14s %-14s %33.2fx vs flat_t1\n", "", "",
                    static_cast<double>(t1_ns) / static_cast<double>(ns));
      }
      if (v.batch_size == 1024 && tuple_ns > 0 && ns > 0) {
        std::printf("%-14s %-14s %33.2fx vs tuple\n", "", "",
                    static_cast<double>(tuple_ns) / static_cast<double>(ns));
      }
    }
    std::printf("\n");
  }
}

// ---- Stage-boundary verification overhead ------------------------------
// Measures what the five stage verifiers add to the compile phase over a
// mixed corpus: five hand-written small queries plus generated
// exists-chain queries of growing width. Compile cost grows superlinearly
// with chain width while verification stays linear in plan size, so the
// mix spans the overhead's worst case (microsecond-scale compiles) and
// its steady state (plans whose compilation dwarfs any linear pass).
//
// The verifier cost is measured directly — min-of-reps wall of the five
// stage entry points on prebuilt artifacts — and judged against the same
// run's verify-off compile wall. On/off deltas of whole compiles sit
// below the timer noise floor on shared single-core runners (repeat runs
// swing several percent either way); the direct stage measurement is
// stable run to run. Self-judging: pass = time-weighted overhead below
// 2% of compile wall with every stage report clean. Per-class
// percentages are printed and recorded so the aggregate can't hide the
// small-query worst case. The record carries bench:"verify_overhead",
// which the flat_exec ratio gate in check_perf_regression.py ignores;
// the pass flag is gated separately.
void ReportVerifyOverhead() {
  struct Entry {
    std::string text;
    bool small;
    int compile_iters;
    int verify_iters;
  };
  std::vector<Entry> corpus;
  for (const char* text : {
           "{x | exists y (R(x, y))}",
           "{x, y | R(x, y) and x < y}",
           "{x, y | R(x, y) and not S(x, y)}",
           "{x, w | exists y (R(x, y) and exists z (S(y, z) and "
           "w = succ(z)))}",
           "{x, y | R(x, y) or S(x, y)}",
       }) {
    corpus.push_back({text, /*small=*/true, /*compile_iters=*/40,
                      /*verify_iters=*/400});
  }
  for (int k : {16, 32, 48}) {
    std::string open, close;
    for (int i = 1; i <= k; ++i) {
      open += "exists x" + std::to_string(i) + " (";
      close += ")";
    }
    std::string text = "{x0, v | " + open + "R(x0, x1)";
    for (int i = 1; i < k; ++i) {
      text += " and R(x" + std::to_string(i) + ", x" +
              std::to_string(i + 1) + ")";
    }
    text += " and v = succ(x" + std::to_string(k) + ")" + close + "}";
    corpus.push_back({std::move(text), /*small=*/false,
                      /*compile_iters=*/std::max(2, 160 / k),
                      /*verify_iters=*/1600 / k});
  }

  constexpr int kReps = 5;
  auto min_reps_ns = [&](int iters, auto&& body) {
    uint64_t best = UINT64_MAX;
    for (int rep = 0; rep < kReps; ++rep) {
      uint64_t start = emcalc::obs::NowNs();
      for (int i = 0; i < iters; ++i) body();
      uint64_t wall = emcalc::obs::NowNs() - start;
      if (wall < best) best = wall;
    }
    return static_cast<double>(best) / iters;
  };

  emcalc::FunctionRegistry registry = emcalc::BuiltinFunctions();
  double off_small = 0, off_chain = 0;
  double stages_small = 0, stages_chain = 0;
  bool clean = true;
  for (const Entry& e : corpus) {
    emcalc::AstContext ctx;
    auto q = emcalc::ParseQuery(ctx, e.text);
    if (!q.ok()) {
      std::printf("  !! verify_overhead parse failed: %s\n",
                  std::string(q.status().message()).c_str());
      return;
    }
    auto t = emcalc::TranslateQuery(ctx, *q);
    if (!t.ok()) {
      std::printf("  !! verify_overhead translate failed: %s\n",
                  std::string(t.status().message()).c_str());
      return;
    }
    auto p = emcalc::Lower(ctx, t->plan, registry);
    if (!p.ok()) {
      std::printf("  !! verify_overhead lower failed: %s\n",
                  std::string(p.status().message()).c_str());
      return;
    }

    emcalc::verify::ForceEnabled(0);
    double off = min_reps_ns(e.compile_iters, [&] {
      emcalc::Compiler compiler;
      auto cq = compiler.Compile(e.text);
      if (!cq.ok()) clean = false;
      benchmark::DoNotOptimize(cq);
    });
    emcalc::verify::ForceEnabled(1);
    int arity = static_cast<int>(q->head.size());
    double stages = min_reps_ns(e.verify_iters, [&] {
      auto r1 = emcalc::verify::VerifyCalculus(ctx, *q,
                                               /*require_spans=*/true);
      auto r2 = emcalc::verify::VerifySafetyFormula(
          ctx, t->enf, emcalc::FreeVars(q->body));
      emcalc::verify::AlgebraOptions o3;
      o3.expected_arity = arity;
      auto r3 = emcalc::verify::VerifyRanfAlgebra(
          ctx, t->ranf, emcalc::SymbolSet{}, emcalc::SymbolSet{},
          t->raw_plan, o3);
      emcalc::verify::AlgebraOptions o4;
      o4.stage = emcalc::verify::Stage::kOptimizedAlgebra;
      o4.expected_arity = arity;
      auto r4 = emcalc::verify::VerifyAlgebra(ctx, t->plan, o4);
      auto r5 = emcalc::verify::VerifyPhysical(*p, t->plan);
      clean = clean && r1.ok() && r2.ok() && r3.ok() && r4.ok() && r5.ok();
    });
    emcalc::verify::ForceEnabled(-1);
    (e.small ? off_small : off_chain) += off;
    (e.small ? stages_small : stages_chain) += stages;
  }

  double off_total = off_small + off_chain;
  double stages_total = stages_small + stages_chain;
  double overhead_pct = stages_total * 100.0 / off_total;
  double small_pct = stages_small * 100.0 / off_small;
  double chain_pct = stages_chain * 100.0 / off_chain;
  bool pass = clean && overhead_pct < 2.0;
  std::printf(
      "\nverify_overhead: %zu queries, compile(off)=%.2fms stages=%.0fus\n"
      "  small (5 queries) %.2f%%  chains k=16/32/48 %.2f%%\n"
      "  time-weighted overhead=%.3f%%  %s (budget <2%%%s)\n",
      corpus.size(), off_total / 1e6, stages_total / 1e3, small_pct,
      chain_pct, overhead_pct, pass ? "ok" : "FAIL",
      clean ? "" : "; a stage reported violations on a valid query");
  std::string fields = "\"bench\":\"verify_overhead\"";
  fields += ",\"compiles\":" + std::to_string(corpus.size());
  fields += ",\"off_ns\":" + std::to_string(static_cast<uint64_t>(off_total));
  fields += ",\"stages_ns\":" +
            std::to_string(static_cast<uint64_t>(stages_total));
  fields += ",\"overhead_pct\":" + std::to_string(overhead_pct);
  fields += ",\"small_pct\":" + std::to_string(small_pct);
  fields += ",\"chain_pct\":" + std::to_string(chain_pct);
  fields += std::string(",\"pass\":") + (pass ? "true" : "false");
  emcalc::bench::AppendRecordLine("BENCH_perf.json", fields);
}

void Report() {
  emcalc::bench::Banner(
      "E8: flat tuple storage, interning, and morsel parallelism",
      "interned 8-byte values + contiguous tuple storage beat the "
      "variant<int64,string> vector<Tuple> layout well past 3x on "
      "join-heavy work single-threaded; the partitioned join scales past "
      "1.5x at 2 threads (needs >1 hardware thread to show)");
  for (const DataProfile& profile : kProfiles) {
    ReportProfile(profile);
  }
  ReportVerifyOverhead();
}

void BM_FlatJoin(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  size_t threads = static_cast<size_t>(state.range(1));
  FunctionRegistry registry = emcalc::BuiltinFunctions();
  Database db = MakeInstance(rows, /*string_share=*/0.25);
  AstContext ctx;
  AlgebraFactory factory(ctx);
  Plans plans = MakePlans(ctx, factory);
  ExecOptions options;
  options.num_threads = threads;
  auto physical = Lower(ctx, plans.join, registry, options);
  if (!physical.ok()) {
    state.SkipWithError("lower");
    return;
  }
  for (auto _ : state) {
    auto r = physical->ExecuteToRelation(db);
    if (!r.ok()) {
      state.SkipWithError("exec");
      return;
    }
    benchmark::DoNotOptimize(r->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(2 * rows) *
                          state.iterations());
}
BENCHMARK(BM_FlatJoin)
    ->Args({50'000, 1})
    ->Args({50'000, 2})
    ->Args({200'000, 1})
    ->Args({200'000, 2})
    ->Args({200'000, 0});

void BM_LegacyLayoutJoin(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Database db = MakeInstance(rows, /*string_share=*/0.25);
  OldRelation r = ToOldLayout(*db.Find("R"));
  OldRelation s = ToOldLayout(*db.Find("S"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(OldLayoutJoin(r, s));
  }
  state.SetItemsProcessed(static_cast<int64_t>(2 * rows) *
                          state.iterations());
}
BENCHMARK(BM_LegacyLayoutJoin)->Arg(50'000)->Arg(200'000);

}  // namespace

EMCALC_BENCH_MAIN(Report)
