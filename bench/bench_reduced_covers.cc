// Experiment E3 — reduced covers keep the FinD bookkeeping of the
// translation small (Section 8 of the paper: "a succinct class of
// 'reduced' covers ... improves the efficiency of the translation
// algorithm").
//
// Workload: formulas whose bd computation stresses the disjunction meet —
// k-way disjunctions of conjunctive blocks over v variables — analyzed
// with reduced covers on (rbd) and off (naive bd), plus the exact
// exponential meet for reference at small sizes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/calculus/parser.h"
#include "src/finds/bound.h"

namespace {

// Builds {(R(x0) and f(x0)=x1 and ... f(x_{v-2})=x_{v-1}) or ... } with k
// disjuncts whose binding chains start at rotated positions — every
// disjunct bounds all variables, via different FinD chains.
std::string ChainDisjunction(int k, int v) {
  std::string out;
  for (int d = 0; d < k; ++d) {
    if (d > 0) out += " or ";
    std::string block = "(R(x" + std::to_string(d % v) + ")";
    for (int i = 0; i < v - 1; ++i) {
      int from = (d + i) % v;
      int to = (d + i + 1) % v;
      block += " and f(x" + std::to_string(from) + ") = x" +
               std::to_string(to);
    }
    block += ")";
    out += block;
  }
  return out;
}

void Report() {
  emcalc::bench::Banner(
      "E3: reduced covers (rbd) vs naive bd",
      "reduced covers stay succinct as disjunctions grow; the translation's "
      "FinD bookkeeping stays linear where naive covers accumulate "
      "redundant dependencies");
  std::printf("%-10s %-6s %12s %12s\n", "disjuncts", "vars", "rbd size",
              "naive size");
  for (int k : {2, 4, 8}) {
    for (int v : {3, 5, 8}) {
      std::string text = ChainDisjunction(k, v);
      emcalc::AstContext ctx;
      auto f = emcalc::ParseFormula(ctx, text);
      if (!f.ok()) continue;
      emcalc::BoundOptions reduced;
      emcalc::BoundOptions naive;
      naive.use_reduced_covers = false;
      emcalc::FinDSet a = emcalc::BoundingFinDs(ctx, *f, reduced);
      emcalc::FinDSet b = emcalc::BoundingFinDs(ctx, *f, naive);
      if (!a.EquivalentTo(b)) {
        std::printf("COVERS DISAGREE at k=%d v=%d\n", k, v);
        continue;
      }
      std::printf("%-10d %-6d %12zu %12zu\n", k, v, a.size(), b.size());
    }
  }
  std::printf("\n");
}

void BM_Bd(benchmark::State& state, bool use_reduced) {
  int k = static_cast<int>(state.range(0));
  int v = static_cast<int>(state.range(1));
  emcalc::AstContext ctx;
  auto f = emcalc::ParseFormula(ctx, ChainDisjunction(k, v));
  if (!f.ok()) {
    state.SkipWithError("parse");
    return;
  }
  emcalc::BoundOptions options;
  options.use_reduced_covers = use_reduced;
  for (auto _ : state) {
    emcalc::FinDSet bd = emcalc::BoundingFinDs(ctx, *f, options);
    benchmark::DoNotOptimize(bd.size());
  }
}

void BM_BdReduced(benchmark::State& state) { BM_Bd(state, true); }
void BM_BdNaive(benchmark::State& state) { BM_Bd(state, false); }

BENCHMARK(BM_BdReduced)
    ->Args({2, 3})->Args({2, 8})->Args({4, 5})->Args({8, 5})->Args({8, 8});
BENCHMARK(BM_BdNaive)
    ->Args({2, 3})->Args({2, 8})->Args({4, 5})->Args({8, 5})->Args({8, 8});

// The exact exponential meet, for calibration at small variable counts.
void BM_BdExactMeet(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  int v = static_cast<int>(state.range(1));
  emcalc::AstContext ctx;
  auto f = emcalc::ParseFormula(ctx, ChainDisjunction(k, v));
  emcalc::BoundOptions options;
  options.exact_max_vars = 12;
  for (auto _ : state) {
    emcalc::FinDSet bd = emcalc::BoundingFinDs(ctx, *f, options);
    benchmark::DoNotOptimize(bd.size());
  }
}
BENCHMARK(BM_BdExactMeet)->Args({2, 3})->Args({4, 5})->Args({8, 5});

}  // namespace

EMCALC_BENCH_MAIN(Report)
