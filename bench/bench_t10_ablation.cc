// Experiment E6 — necessity of transformation T10 (Section 7).
//
// The q4 family: B(x) and not( AND over k blocks of
// ((f_i(x) != y and g_i(x) != y) or R_i(x,y)) ). The paper: these queries
// are em-allowed (and Top91-safe) but cannot be transformed into RANF or
// the algebra with the GT91 transformation set alone; T10 — pushing the
// negation through a conjunction when that exposes bounding information
// hidden in negated inequalities — makes them translatable.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/calculus/parser.h"
#include "src/safety/allowed.h"
#include "src/safety/em_allowed.h"
#include "src/translate/pipeline.h"

namespace {

// k >= 1 blocks; every block hides the bounding for y behind negated
// inequalities, guarded by a relation atom.
std::string Q4Family(int k) {
  std::string inner;
  for (int i = 0; i < k; ++i) {
    if (i > 0) inner += " and ";
    std::string fi = "f" + std::to_string(i);
    std::string gi = "g" + std::to_string(i);
    std::string ri = "REL" + std::to_string(i);
    inner += "((" + fi + "(x) != y and " + gi + "(x) != y) or " + ri +
             "(x, y))";
  }
  return "{x, y | B(x) and not (" + inner + ")}";
}

void Report() {
  emcalc::bench::Banner(
      "E6: T10 ablation on the q4 family",
      "q4-family queries are em-allowed and Top91-safe but UNTRANSLATABLE "
      "with GT91's transformations (T10 off); with T10 every instance "
      "translates");
  std::printf("%-8s %-10s %-10s %-12s %-14s %10s\n", "blocks", "em-allowed",
              "Top91safe", "GT91-only", "with-T10", "plan nodes");
  for (int k : {1, 2, 3, 4, 6, 8}) {
    std::string text = Q4Family(k);
    emcalc::AstContext ctx;
    auto q = emcalc::ParseQuery(ctx, text);
    if (!q.ok()) continue;
    bool em = emcalc::CheckEmAllowed(ctx, *q).em_allowed;
    bool safe = emcalc::IsTop91Safe(ctx, q->body);
    emcalc::TranslateOptions gt91;
    gt91.enable_t10 = false;
    bool gt_ok = emcalc::TranslateQuery(ctx, *q, gt91).ok();
    auto with = emcalc::TranslateQuery(ctx, *q);
    std::printf("%-8d %-10s %-10s %-12s %-14s %10d\n", k, em ? "yes" : "no",
                safe ? "yes" : "no", gt_ok ? "TRANSLATES" : "fails",
                with.ok() ? "translates" : "FAILS",
                with.ok() ? with->plan->NodeCount() : -1);
  }
  std::printf("\n");
}

void BM_Q4Translate(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  std::string text = Q4Family(k);
  for (auto _ : state) {
    emcalc::AstContext ctx;
    auto q = emcalc::ParseQuery(ctx, text);
    auto t = emcalc::TranslateQuery(ctx, *q);
    benchmark::DoNotOptimize(t.ok());
  }
}
BENCHMARK(BM_Q4Translate)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Q4SafetyCheckOnly(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  std::string text = Q4Family(k);
  emcalc::AstContext ctx;
  auto q = emcalc::ParseQuery(ctx, text);
  for (auto _ : state) {
    auto r = emcalc::CheckEmAllowed(ctx, *q);
    benchmark::DoNotOptimize(r.em_allowed);
  }
}
BENCHMARK(BM_Q4SafetyCheckOnly)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

EMCALC_BENCH_MAIN(Report)
