// Experiment E9 — end-to-end pipeline cost breakdown on the payroll
// workload: parse, safety check, translate, execute, at growing instance
// sizes. Demonstrates that the compile-time phases are independent of the
// data and the run-time phase scales with it.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/calculus/parser.h"
#include "src/core/compiler.h"
#include "src/core/workload.h"
#include "src/safety/em_allowed.h"
#include "src/translate/pipeline.h"

namespace {

constexpr const char* kNetPay =
    "{e, n | exists d, s (EMP(e, d, s) and n = net10(s))}";
constexpr const char* kNoBonus =
    "{e | exists d, s (EMP(e, d, s) and not exists b (BONUS(e, b)))}";

emcalc::FunctionRegistry Functions() {
  emcalc::FunctionRegistry reg = emcalc::BuiltinFunctions();
  reg.Register("net10", 1, [](std::span<const emcalc::Value> a) {
    int64_t v = a[0].is_int() ? a[0].AsInt() : 0;
    return emcalc::Value::Int(v * 9 / 10);
  });
  return reg;
}

void Report() {
  emcalc::bench::Banner(
      "E9: end-to-end pipeline breakdown (payroll workload)",
      "parsing/safety/translation are data-independent microsecond-scale "
      "phases; execution scales with the instance");
  emcalc::Compiler compiler(Functions());
  for (const char* text : {kNetPay, kNoBonus}) {
    auto q = compiler.Compile(text);
    if (!q.ok()) {
      std::printf("compile failed: %s\n", q.status().ToString().c_str());
      continue;
    }
    std::printf("query: %s\nplan:  %s\n", text, q->PlanString().c_str());
    for (size_t n : {100u, 1000u, 10000u}) {
      emcalc::Database db = emcalc::MakePayrollInstance(n, 8, 3);
      emcalc::AlgebraEvalStats stats;
      auto r = q->Run(db, &stats);
      if (!r.ok()) continue;
      std::printf("  |EMP|=%-6zu answers=%-6zu tuples_produced=%llu\n", n,
                  r->size(),
                  static_cast<unsigned long long>(stats.tuples_produced));
    }
  }
  std::printf("\n");
}

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    emcalc::AstContext ctx;
    auto q = emcalc::ParseQuery(ctx, kNetPay);
    benchmark::DoNotOptimize(q.ok());
  }
}
BENCHMARK(BM_Parse);

void BM_SafetyCheck(benchmark::State& state) {
  emcalc::AstContext ctx;
  auto q = emcalc::ParseQuery(ctx, kNetPay);
  for (auto _ : state) {
    auto r = emcalc::CheckEmAllowed(ctx, *q);
    benchmark::DoNotOptimize(r.em_allowed);
  }
}
BENCHMARK(BM_SafetyCheck);

void BM_Translate(benchmark::State& state) {
  for (auto _ : state) {
    emcalc::AstContext ctx;
    auto q = emcalc::ParseQuery(ctx, kNetPay);
    auto t = emcalc::TranslateQuery(ctx, *q);
    benchmark::DoNotOptimize(t.ok());
  }
}
BENCHMARK(BM_Translate);

void BM_Execute(benchmark::State& state) {
  emcalc::Compiler compiler(Functions());
  auto q = compiler.Compile(state.range(1) == 0 ? kNetPay : kNoBonus);
  if (!q.ok()) {
    state.SkipWithError("compile");
    return;
  }
  emcalc::Database db =
      emcalc::MakePayrollInstance(static_cast<size_t>(state.range(0)), 8, 3);
  for (auto _ : state) {
    auto r = q->Run(db);
    if (!r.ok()) {
      state.SkipWithError("run");
      return;
    }
    benchmark::DoNotOptimize(r->size());
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Execute)
    ->Args({100, 0})
    ->Args({1000, 0})
    ->Args({10000, 0})
    ->Args({100000, 0})
    ->Args({100, 1})
    ->Args({1000, 1})
    ->Args({10000, 1})
    ->Args({100000, 1});

}  // namespace

EMCALC_BENCH_MAIN(Report)
