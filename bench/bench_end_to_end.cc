// Experiment E9 — end-to-end pipeline cost breakdown on the payroll
// workload: parse, safety check, translate, execute, at growing instance
// sizes. Demonstrates that the compile-time phases are independent of the
// data and the run-time phase scales with it.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/algebra/eval.h"
#include "src/calculus/parser.h"
#include "src/core/compiler.h"
#include "src/core/workload.h"
#include "src/safety/em_allowed.h"
#include "src/translate/pipeline.h"

namespace {

constexpr const char* kNetPay =
    "{e, n | exists d, s (EMP(e, d, s) and n = net10(s))}";
constexpr const char* kNoBonus =
    "{e | exists d, s (EMP(e, d, s) and not exists b (BONUS(e, b)))}";

emcalc::FunctionRegistry Functions() {
  emcalc::FunctionRegistry reg = emcalc::BuiltinFunctions();
  reg.Register("net10", 1, [](std::span<const emcalc::Value> a) {
    int64_t v = a[0].is_int() ? a[0].AsInt() : 0;
    return emcalc::Value::Int(v * 9 / 10);
  });
  return reg;
}

void Report() {
  emcalc::bench::Banner(
      "E9: end-to-end pipeline breakdown (payroll workload)",
      "parsing/safety/translation are data-independent microsecond-scale "
      "phases; execution scales with the instance");
  emcalc::Compiler compiler(Functions());
  for (const char* text : {kNetPay, kNoBonus}) {
    auto q = compiler.Compile(text);
    if (!q.ok()) {
      std::printf("compile failed: %s\n", q.status().ToString().c_str());
      continue;
    }
    std::printf("query: %s\nplan:  %s\n", text, q->PlanString().c_str());
    for (size_t n : {100u, 1000u, 10000u}) {
      emcalc::Database db = emcalc::MakePayrollInstance(n, 8, 3);
      emcalc::ExecProfile profile;
      auto r = q->RunWithProfile(db, &profile);
      if (!r.ok()) continue;
      emcalc::ExecTotals totals = emcalc::SumProfile(profile);
      std::printf("  |EMP|=%-6zu answers=%-6zu tuples_produced=%llu\n", n,
                  r->size(),
                  static_cast<unsigned long long>(totals.rows_out));
      emcalc::bench::AppendExecRecord("end_to_end", text, "exec", n,
                                      r->size(), profile);
    }
    // Per-operator breakdown at the largest size (EXPLAIN ANALYZE style).
    emcalc::Database db = emcalc::MakePayrollInstance(10000, 8, 3);
    auto analyzed = q->ExplainAnalyze(db);
    if (analyzed.ok()) std::printf("%s", analyzed->c_str());
  }

  // Acceptance check: the physical execution layer must not be slower than
  // the legacy recursive interpreter on the payroll workload at |EMP|=1e4.
  std::printf("\nexec layer vs legacy interpreter (|EMP|=10000, best of 5):\n");
  for (const char* text : {kNetPay, kNoBonus}) {
    auto q = compiler.Compile(text);
    if (!q.ok()) continue;
    emcalc::Database db = emcalc::MakePayrollInstance(10000, 8, 3);
    auto best_ns = [](auto&& fn) {
      uint64_t best = ~0ull;
      for (int i = 0; i < 5; ++i) {
        auto start = std::chrono::steady_clock::now();
        fn();
        auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        if (static_cast<uint64_t>(ns) < best) best = static_cast<uint64_t>(ns);
      }
      return best;
    };
    uint64_t exec_ns = best_ns([&] {
      auto r = q->Run(db);
      benchmark::DoNotOptimize(r.ok());
    });
    uint64_t legacy_ns = best_ns([&] {
      auto r = emcalc::EvaluateAlgebraLegacy(compiler.ctx(), q->plan(), db,
                                             compiler.functions());
      benchmark::DoNotOptimize(r.ok());
    });
    std::printf("  %-60s exec=%8.3fms legacy=%8.3fms speedup=%.2fx\n", text,
                static_cast<double>(exec_ns) / 1e6,
                static_cast<double>(legacy_ns) / 1e6,
                static_cast<double>(legacy_ns) /
                    static_cast<double>(exec_ns));
  }
  std::printf("\n");
}

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    emcalc::AstContext ctx;
    auto q = emcalc::ParseQuery(ctx, kNetPay);
    benchmark::DoNotOptimize(q.ok());
  }
}
BENCHMARK(BM_Parse);

void BM_SafetyCheck(benchmark::State& state) {
  emcalc::AstContext ctx;
  auto q = emcalc::ParseQuery(ctx, kNetPay);
  for (auto _ : state) {
    auto r = emcalc::CheckEmAllowed(ctx, *q);
    benchmark::DoNotOptimize(r.em_allowed);
  }
}
BENCHMARK(BM_SafetyCheck);

void BM_Translate(benchmark::State& state) {
  for (auto _ : state) {
    emcalc::AstContext ctx;
    auto q = emcalc::ParseQuery(ctx, kNetPay);
    auto t = emcalc::TranslateQuery(ctx, *q);
    benchmark::DoNotOptimize(t.ok());
  }
}
BENCHMARK(BM_Translate);

void BM_Execute(benchmark::State& state) {
  emcalc::Compiler compiler(Functions());
  auto q = compiler.Compile(state.range(1) == 0 ? kNetPay : kNoBonus);
  if (!q.ok()) {
    state.SkipWithError("compile");
    return;
  }
  emcalc::Database db =
      emcalc::MakePayrollInstance(static_cast<size_t>(state.range(0)), 8, 3);
  for (auto _ : state) {
    auto r = q->Run(db);
    if (!r.ok()) {
      state.SkipWithError("run");
      return;
    }
    benchmark::DoNotOptimize(r->size());
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Execute)
    ->Args({100, 0})
    ->Args({1000, 0})
    ->Args({10000, 0})
    ->Args({100000, 0})
    ->Args({100, 1})
    ->Args({1000, 1})
    ->Args({10000, 1})
    ->Args({100000, 1});

}  // namespace

EMCALC_BENCH_MAIN(Report)
