// Experiment E5 — embedded domain independence and term^k closures
// (Section 4 / Theorem 6.6).
//
// Two series: (a) the growth of term^k(adom) with the closure level k and
// the function signature (unary vs binary), which is the price the
// *baseline* translation pays; (b) the stabilization of an em-allowed
// query's answer at level ||phi|| - 1 — deeper closures change nothing.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/calculus/parser.h"
#include "src/core/workload.h"
#include "src/eval/calculus_eval.h"
#include "src/storage/adom.h"

namespace {

emcalc::ValueSet Base(int n) {
  emcalc::ValueSet out;
  for (int i = 0; i < n; ++i) out.push_back(emcalc::Value::Int(i * 3));
  return out;
}

void Report() {
  emcalc::bench::Banner(
      "E5: term^k closure growth and Theorem 6.6 level stability",
      "term^k grows linearly per level for unary functions and "
      "quadratically for binary ones; em-allowed answers stop changing at "
      "level ||phi||-1");
  emcalc::FunctionRegistry reg = emcalc::BuiltinFunctions();

  std::printf("closure growth, |base| = 100:\n");
  std::printf("%-22s %8s %8s %8s %8s\n", "functions", "k=0", "k=1", "k=2",
              "k=3");
  struct Sig {
    const char* label;
    std::vector<std::pair<std::string, int>> fns;
  };
  const Sig sigs[] = {
      {"{succ/1}", {{"succ", 1}}},
      {"{succ/1, double/1}", {{"succ", 1}, {"double", 1}}},
      {"{plus/2}", {{"plus", 2}}},
  };
  for (const Sig& sig : sigs) {
    std::printf("%-22s", sig.label);
    for (int k = 0; k <= 3; ++k) {
      auto closed = emcalc::TermClosure(Base(100), sig.fns, reg, k,
                                        50'000'000);
      std::printf(" %8zu", closed.ok() ? (*closed).size() : 0);
    }
    std::printf("\n");
  }

  std::printf("\nanswer stability (em-allowed query, growing level k):\n");
  emcalc::AstContext ctx;
  auto q = emcalc::ParseQuery(
      ctx, "{x, y | R(x) and succ(succ(x)) = y and not S(y)}");
  if (!q.ok()) return;
  emcalc::Database db;
  for (int i = 0; i < 20; ++i) {
    (void)db.Insert("R", {emcalc::Value::Int(i)});
    (void)db.Insert("S", {emcalc::Value::Int(2 * i)});
  }
  size_t prev = SIZE_MAX;
  for (int k = 2; k <= 6; ++k) {
    emcalc::CalculusEvalOptions options;
    options.level = k;
    options.domain_budget = 1'000'000;
    auto r = emcalc::EvaluateCalculus(ctx, *q, db, reg, options);
    if (!r.ok()) break;
    std::printf("  level %d: %zu answers%s\n", k, r->size(),
                prev == r->size() ? " (stable)" : "");
    prev = r->size();
  }
  std::printf("\n");
}

void BM_TermClosure(benchmark::State& state) {
  emcalc::FunctionRegistry reg = emcalc::BuiltinFunctions();
  int base = static_cast<int>(state.range(0));
  int level = static_cast<int>(state.range(1));
  bool binary = state.range(2) != 0;
  std::vector<std::pair<std::string, int>> fns;
  if (binary) {
    fns.emplace_back("plus", 2);
  } else {
    fns.emplace_back("succ", 1);
    fns.emplace_back("double", 1);
  }
  size_t out_size = 0;
  for (auto _ : state) {
    auto closed = emcalc::TermClosure(Base(base), fns, reg, level,
                                      50'000'000);
    if (!closed.ok()) {
      state.SkipWithError("budget");
      return;
    }
    out_size = closed->size();
    benchmark::DoNotOptimize(out_size);
  }
  state.counters["values"] = static_cast<double>(out_size);
}
BENCHMARK(BM_TermClosure)
    ->Args({100, 1, 0})
    ->Args({100, 3, 0})
    ->Args({1000, 3, 0})
    ->Args({100, 1, 1})
    ->Args({100, 2, 1})
    ->Args({300, 1, 1});

// Regression series for the hash-set frontier rewrite: membership checks
// are O(fresh values) per round instead of a full re-sort of the closure,
// so deep closures over large bases stay near-linear in the output size.
// The threads dimension exercises the morsel-parallel candidate rounds.
void BM_TermClosureLargeBase(benchmark::State& state) {
  emcalc::FunctionRegistry reg = emcalc::BuiltinFunctions();
  int base = static_cast<int>(state.range(0));
  int level = static_cast<int>(state.range(1));
  size_t threads = static_cast<size_t>(state.range(2));
  std::vector<std::pair<std::string, int>> fns = {{"succ", 1},
                                                  {"double", 1}};
  size_t out_size = 0;
  for (auto _ : state) {
    auto closed = emcalc::TermClosure(Base(base), fns, reg, level,
                                      50'000'000, threads);
    if (!closed.ok()) {
      state.SkipWithError("budget");
      return;
    }
    out_size = closed->size();
    benchmark::DoNotOptimize(out_size);
  }
  state.counters["values"] = static_cast<double>(out_size);
  state.SetItemsProcessed(static_cast<int64_t>(out_size) *
                          state.iterations());
}
BENCHMARK(BM_TermClosureLargeBase)
    ->Args({20'000, 3, 1})
    ->Args({20'000, 3, 4})
    ->Args({100'000, 2, 1})
    ->Args({100'000, 2, 4});

}  // namespace

EMCALC_BENCH_MAIN(Report)
