#!/usr/bin/env python3
"""Async-signal-safety lint for the fatal-signal path.

The crash handler in src/obs/postmortem.cc runs inside SIGSEGV/SIGABRT/
SIGBUS/SIGFPE. Everything reachable from it must stick to async-signal-
safe primitives: write(2) onto stack buffers, atomics, try-locks. A
single malloc or blocking mutex acquire can deadlock or re-fault a
crashing process, and nothing in the type system stops one from creeping
in behind a helper.

This lint compiles the TUs on the fatal-signal path to assembly with the
project's flags, extracts the direct call graph, and walks it from the
handler roots:

  * DENIED symbols (allocation, stdio, blocking locks, unwinding) fail
    the build, with the full call chain printed.
  * pthread_mutex_lock is denied by exact match; pthread_mutex_trylock
    and pthread_mutex_unlock are fine (the query-log flush drains only
    when its try-lock succeeds).
  * Indirect calls (call *%reg) are reported as warnings: the target is
    unknowable statically, so they deserve eyeballs, not a hard failure.
  * Unknown external symbols are warnings too, so glibc renames do not
    brick CI; the deny list is the enforcement surface.

Usage: tools/check_signal_safety.py [--repo DIR] [--cxx g++]
Exit status: 0 clean (warnings allowed), 1 on any denied call chain.
"""

import argparse
import re
import subprocess
import sys

# TUs that contain code reachable from the crash handler.
SIGNAL_PATH_TUS = [
    "src/obs/postmortem.cc",
    "src/obs/query_log.cc",
    "src/obs/flight_recorder.cc",
]

# BFS roots: any defined function whose demangled name matches one of
# these. CrashHandler is the signal entry; the others are the helpers it
# calls across TU boundaries (listed so the walk still covers them if a
# refactor renames the handler).
ROOT_PATTERNS = [
    r"\bCrashHandler\b",
    r"\bQueryLogSignalFlush\b",
    r"\bDumpFlightRingsJson\b",
]

# Symbols that must never be reachable from a signal handler. Matched
# against both the raw symbol and its demangling.
DENY_EXACT = {
    "malloc", "calloc", "realloc", "free", "aligned_alloc",
    "pthread_mutex_lock",          # blocking; trylock/unlock are allowed
    "pthread_cond_wait", "pthread_cond_timedwait",
    "fopen", "fclose", "fprintf", "printf", "vfprintf", "fputs", "puts",
    "fwrite", "fflush", "snprintf", "vsnprintf", "sprintf",
    "exit",                        # runs atexit handlers; use _exit
    "__cxa_throw", "__cxa_rethrow", "__cxa_allocate_exception",
    "_Unwind_RaiseException",
}
DENY_DEMANGLED_SUBSTR = [
    "operator new",
    "operator delete",
    "std::__throw_",
    "std::mutex::lock",            # std::mutex::try_lock is fine
    "std::lock_guard",
    "std::unique_lock",
]

# External symbols known to be async-signal-safe (POSIX) or compiler
# plumbing with no allocation. Everything else external is a warning.
ALLOW_EXACT = {
    "write", "read", "open", "close", "openat", "unlink", "fsync",
    "raise", "kill", "abort", "_exit", "_Exit", "getpid", "gettid",
    "signal", "sigaction", "sigemptyset", "sigfillset", "sigaddset",
    "clock_gettime", "gettimeofday", "time",
    "memcpy", "memset", "memmove", "memcmp", "strlen", "strnlen",
    "strcmp", "strncmp", "strchr", "strrchr",
    "pthread_mutex_trylock", "pthread_mutex_unlock", "pthread_self",
    "__errno_location", "__stack_chk_fail", "__assert_fail",
    "__memcpy_chk", "__memset_chk",
}

CALL_RE = re.compile(r"^\s+(call|jmp)\s+([A-Za-z_.$][\w.$@]*)")
INDIRECT_RE = re.compile(r"^\s+(call|jmp)\s+\*")
TYPE_RE = re.compile(r"^\s+\.type\s+([\w.$]+),\s*@function")
LABEL_RE = re.compile(r"^([\w.$]+):")


def compile_to_asm(cxx, repo, tu):
    cmd = [cxx, "-std=c++20", "-O2", "-DNDEBUG", "-I", repo, "-S",
           "-o", "-", f"{repo}/{tu}"]
    res = subprocess.run(cmd, capture_output=True, text=True)
    if res.returncode != 0:
        sys.stderr.write(res.stderr)
        raise SystemExit(f"error: failed to compile {tu} to assembly")
    return res.stdout


def parse_asm(asm):
    """-> (defined functions, {fn: set(callee)}, {fn: indirect count})."""
    declared = set()
    for line in asm.splitlines():
        m = TYPE_RE.match(line)
        if m:
            declared.add(m.group(1))
    defined = set()
    calls = {}
    indirect = {}
    current = None
    for line in asm.splitlines():
        m = LABEL_RE.match(line)
        if m and m.group(1) in declared:
            current = m.group(1)
            defined.add(current)
            calls.setdefault(current, set())
            continue
        if current is None:
            continue
        if INDIRECT_RE.match(line):
            indirect[current] = indirect.get(current, 0) + 1
            continue
        m = CALL_RE.match(line)
        if m:
            target = m.group(2)
            if target.startswith(".L"):
                continue  # local branch label, not a symbol
            calls[current].add(target.removesuffix("@PLT"))
    return defined, calls, indirect


def demangle(symbols):
    if not symbols:
        return {}
    res = subprocess.run(["c++filt"], input="\n".join(symbols),
                         capture_output=True, text=True)
    names = res.stdout.splitlines() if res.returncode == 0 else symbols
    return dict(zip(symbols, names))


def denied(symbol, pretty):
    if symbol in DENY_EXACT or pretty in DENY_EXACT:
        return True
    return any(s in pretty for s in DENY_DEMANGLED_SUBSTR)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=".")
    parser.add_argument("--cxx", default="g++")
    args = parser.parse_args()

    defined, calls, indirect = set(), {}, {}
    for tu in SIGNAL_PATH_TUS:
        asm = compile_to_asm(args.cxx, args.repo, tu)
        d, c, i = parse_asm(asm)
        defined |= d
        for fn, targets in c.items():
            calls.setdefault(fn, set()).update(targets)
        for fn, n in i.items():
            indirect[fn] = indirect.get(fn, 0) + n

    every_symbol = set(defined)
    for targets in calls.values():
        every_symbol |= targets
    pretty = demangle(sorted(every_symbol))

    roots = [fn for fn in defined
             if any(re.search(p, pretty.get(fn, fn)) for p in ROOT_PATTERNS)]
    if not roots:
        raise SystemExit("error: no signal-path roots found — "
                         "did CrashHandler move out of the listed TUs?")

    # BFS; parent links give the call chain for reports.
    parent = {r: None for r in roots}
    queue = list(roots)
    violations = []
    warnings = []
    seen_external = set()
    while queue:
        fn = queue.pop(0)
        if indirect.get(fn, 0) > 0:
            warnings.append(
                f"indirect call(s) in {pretty.get(fn, fn)} "
                f"({indirect[fn]} site(s)) — verify targets by hand")
        for target in sorted(calls.get(fn, ())):
            p = pretty.get(target, target)
            if denied(target, p):
                chain = [p]
                node = fn
                while node is not None:
                    chain.append(pretty.get(node, node))
                    node = parent[node]
                violations.append(" <- ".join(chain))
                continue
            if target in defined:
                if target not in parent:
                    parent[target] = fn
                    queue.append(target)
            elif target not in ALLOW_EXACT and p not in ALLOW_EXACT:
                if target not in seen_external:
                    seen_external.add(target)
                    warnings.append(
                        f"unlisted external '{p}' called from "
                        f"{pretty.get(fn, fn)} — extend ALLOW_EXACT if "
                        f"async-signal-safe")

    reached = len(parent)
    print(f"signal-safety: {len(roots)} root(s), {reached} function(s) "
          f"walked across {len(SIGNAL_PATH_TUS)} TU(s)")
    for w in warnings:
        print(f"  warning: {w}")
    if violations:
        print(f"FAIL: {len(violations)} async-signal-unsafe call chain(s):")
        for v in violations:
            print(f"  {v}")
        return 1
    print("ok: no denied calls reachable from the fatal-signal path")
    return 0


if __name__ == "__main__":
    sys.exit(main())
