// emcalc-inspect: offline analyzer for emcalc query logs and postmortem
// bundles. All analysis lives in src/obs/inspect.{h,cc}; this file is the
// argv shim.
//
//   emcalc-inspect top [--k N] LOG       k slowest runs
//   emcalc-inspect aborts LOG            failures by tripped limit
//   emcalc-inspect misest [--k N] LOG    misestimates by operator
//   emcalc-inspect summary LOG           one-screen log roll-up
//   emcalc-inspect history [--k N] STORE history-store digest
//   emcalc-inspect diff [--threshold X] A B
//                                        regressions between two stores
//   emcalc-inspect bundle FILE           postmortem bundle digest
//   emcalc-inspect trace FILE -o OUT     bundle ring -> Chrome trace JSON
//
// Log commands read the rotated `LOG.1` segment too when present
// (oldest-first), so analysis spans the whole retained window.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/obs/inspect.h"

namespace {

constexpr const char kUsage[] =
    "usage: emcalc-inspect <command> [options] <file>\n"
    "  top [--k N] LOG       k slowest runs (default 10)\n"
    "  aborts LOG            failed runs by tripped resource limit\n"
    "  misest [--k N] LOG    plan misestimates by operator (default 10)\n"
    "  summary LOG           record counts, error and wall-time roll-up\n"
    "  history [--k N] STORE history-store digest: misestimated, slowest,\n"
    "                        regressed query hashes with run trends\n"
    "  diff [--threshold X] A B\n"
    "                        flag hashes whose latency or misestimation\n"
    "                        grew more than X-fold from store A to B\n"
    "                        (default 1.5)\n"
    "  bundle FILE           render a postmortem bundle\n"
    "  trace FILE -o OUT     convert a bundle's flight ring to Chrome "
    "trace JSON\n";

int Fail(const std::string& message) {
  std::fprintf(stderr, "emcalc-inspect: %s\n", message.c_str());
  return 1;
}

// Consumes `--k N` anywhere among `args`; returns false on a malformed
// value. Remaining args are positional.
bool TakeK(std::vector<std::string>& args, size_t& k) {
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] != "--k") continue;
    if (i + 1 >= args.size()) return false;
    char* end = nullptr;
    unsigned long v = std::strtoul(args[i + 1].c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v == 0) return false;
    k = static_cast<size_t>(v);
    args.erase(args.begin() + static_cast<long>(i),
               args.begin() + static_cast<long>(i) + 2);
    return true;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::fputs(kUsage, stderr);
    return 1;
  }
  std::string command = args.front();
  args.erase(args.begin());

  if (command == "top" || command == "aborts" || command == "misest" ||
      command == "summary") {
    size_t k = 10;
    if (!TakeK(args, k)) return Fail("--k needs a positive integer");
    if (args.size() != 1) return Fail("expected exactly one LOG file");
    auto scan = emcalc::obs::ReadQueryLogWithRotation(args[0]);
    if (!scan.ok()) return Fail(scan.status().ToString());
    std::string out;
    if (command == "top") {
      out = emcalc::obs::RenderTopSlowest(*scan, k);
    } else if (command == "aborts") {
      out = emcalc::obs::RenderAborts(*scan);
    } else if (command == "misest") {
      out = emcalc::obs::RenderMisestimates(*scan, k);
    } else {
      out = emcalc::obs::RenderLogSummary(*scan);
    }
    std::fputs(out.c_str(), stdout);
    if (scan->bad_lines > 0 && command != "summary") {
      std::fprintf(stderr, "emcalc-inspect: skipped %zu unparseable lines\n",
                   scan->bad_lines);
    }
    return 0;
  }

  if (command == "history") {
    size_t k = 10;
    if (!TakeK(args, k)) return Fail("--k needs a positive integer");
    if (args.size() != 1) return Fail("expected exactly one history store");
    auto scan = emcalc::obs::ReadHistoryFile(
        emcalc::obs::ResolveHistoryPath(args[0]));
    if (!scan.ok()) return Fail(scan.status().ToString());
    std::fputs(emcalc::obs::RenderHistory(*scan, k).c_str(), stdout);
    if (scan->bad_lines > 0) {
      std::fprintf(stderr, "emcalc-inspect: skipped %zu unparseable lines\n",
                   scan->bad_lines);
    }
    return 0;
  }

  if (command == "diff") {
    double threshold = 1.5;
    for (size_t i = 0; i < args.size(); ++i) {
      if (args[i] != "--threshold") continue;
      if (i + 1 >= args.size()) return Fail("--threshold needs a number");
      char* end = nullptr;
      threshold = std::strtod(args[i + 1].c_str(), &end);
      if (end == nullptr || *end != '\0' || threshold <= 0) {
        return Fail("--threshold needs a positive number");
      }
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
      break;
    }
    if (args.size() != 2) return Fail("expected two history stores: A B");
    auto a = emcalc::obs::ReadHistoryFile(
        emcalc::obs::ResolveHistoryPath(args[0]));
    if (!a.ok()) return Fail(a.status().ToString());
    auto b = emcalc::obs::ReadHistoryFile(
        emcalc::obs::ResolveHistoryPath(args[1]));
    if (!b.ok()) return Fail(b.status().ToString());
    std::fputs(emcalc::obs::RenderHistoryDiff(*a, *b, threshold).c_str(),
               stdout);
    return 0;
  }

  if (command == "bundle" || command == "trace") {
    std::string out_path;
    for (size_t i = 0; i < args.size(); ++i) {
      if (args[i] != "-o") continue;
      if (i + 1 >= args.size()) return Fail("-o needs a file name");
      out_path = args[i + 1];
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
      break;
    }
    if (args.size() != 1) return Fail("expected exactly one bundle file");
    auto bundle = emcalc::obs::ReadPostmortemBundle(args[0]);
    if (!bundle.ok()) return Fail(bundle.status().ToString());
    std::string out = command == "bundle"
                          ? emcalc::obs::RenderBundle(*bundle)
                          : emcalc::obs::BundleToChromeTrace(*bundle);
    if (out_path.empty()) {
      std::fputs(out.c_str(), stdout);
      if (command == "trace") std::fputc('\n', stdout);
      return 0;
    }
    std::ofstream f(out_path, std::ios::binary);
    if (!f) return Fail("cannot write " + out_path);
    f << out;
    if (command == "trace") f << "\n";
    return f.good() ? 0 : Fail("write failed: " + out_path);
  }

  std::fputs(kUsage, stderr);
  return Fail("unknown command: " + command);
}
