// Focused tests for the ENF pass's negation policy — the heart of the
// T10 design: push `not` over `or` always, over `and` exactly when the
// pushed form exposes bounding information, and never over relation atoms
// or existentials (those are difference-translated).
#include <gtest/gtest.h>

#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/translate/enf.h"
#include "src/translate/pipeline.h"

namespace emcalc {
namespace {

class EnfPolicyTest : public ::testing::Test {
 protected:
  std::string Enf(const char* text, bool t10 = true) {
    auto f = ParseFormula(ctx_, text);
    EXPECT_TRUE(f.ok()) << f.status().ToString();
    EnfOptions options;
    options.enable_t10 = t10;
    const Formula* enf = ToEnf(ctx_, *f, options);
    EXPECT_TRUE(IsEnf(enf)) << FormulaToString(ctx_, enf);
    return FormulaToString(ctx_, enf);
  }
  AstContext ctx_;
};

TEST_F(EnfPolicyTest, NegatedRelationAtomStays) {
  EXPECT_EQ(Enf("R(x) and not S(x)"), "R(x) and not S(x)");
}

TEST_F(EnfPolicyTest, NegatedExistentialStays) {
  EXPECT_EQ(Enf("R(x) and not exists y (S(x, y))"),
            "R(x) and not exists y (S(x, y))");
}

TEST_F(EnfPolicyTest, NegatedDisjunctionAlwaysPushes) {
  EXPECT_EQ(Enf("R(x) and not (S(x) or T(x))"),
            "R(x) and not S(x) and not T(x)");
}

TEST_F(EnfPolicyTest, NegatedConjunctionKeptWithoutBoundingGain) {
  // No bounding hides inside: keep as one unit for the difference.
  EXPECT_EQ(Enf("R(x) and not (S(x) and T(x))"),
            "R(x) and not (S(x) and T(x))");
  EXPECT_EQ(Enf("R(x, y) and not (S(x) and x != y)"),
            "R(x, y) and not (S(x) and x != y)");
}

TEST_F(EnfPolicyTest, T10PushesWhenNegatedInequalitiesHideBounding) {
  EXPECT_EQ(Enf("B(x) and not (f(x) != y and g(x) != y)"),
            "B(x) and (f(x) = y or g(x) = y)");
}

TEST_F(EnfPolicyTest, T10RespectsDisableFlag) {
  EXPECT_EQ(Enf("B(x) and not (f(x) != y and g(x) != y)", /*t10=*/false),
            "B(x) and not (f(x) != y and g(x) != y)");
}

TEST_F(EnfPolicyTest, NestedQ4BlockFullyNormalizes) {
  // The q4 shape: not over (negative-conjunction or relation-atom).
  EXPECT_EQ(Enf("B(x) and not ((f(x) != y and g(x) != y) or R(x, y))"),
            "B(x) and (f(x) = y or g(x) = y) and not R(x, y)");
}

TEST_F(EnfPolicyTest, DoubleNegationThroughQuantifier) {
  EXPECT_EQ(Enf("R(x) and not not exists y (S(x, y))"),
            "R(x) and exists y (S(x, y))");
}

TEST_F(EnfPolicyTest, ForallBecomesNegatedExistential) {
  EXPECT_EQ(Enf("R(x) and forall y (not T(x, y) or S(y))"),
            "R(x) and not exists y (T(x, y) and not S(y))");
}

TEST_F(EnfPolicyTest, ForallUnderNegationBecomesExistential) {
  EXPECT_EQ(Enf("R(x) and not forall y (not T(x, y))"),
            "R(x) and exists y (T(x, y))");
}

TEST_F(EnfPolicyTest, NoPushWhenOnlySomeDisjunctsWouldBound) {
  // Pushing not (x != y and T(x)) would give (x = y or not T(x)); the
  // second branch carries no FinDs, so the disjunction's meet is empty —
  // no bounding is gained and the negation stays for the difference
  // operator (which is cheaper than a union).
  EXPECT_EQ(Enf("R(x) and S(y) and not (x != y and T(x))"),
            "R(x) and S(y) and not (x != y and T(x))");
  // With both branches bounding, T10 fires (two inequality conjuncts).
  EXPECT_EQ(Enf("R(x) and S(y) and not (x != y and succ(x) != y)"),
            "R(x) and S(y) and (x = y or succ(x) = y)");
}

TEST_F(EnfPolicyTest, EquivalenceOfPolicyChoicesOnGT91Queries) {
  // Where T10 never fires, the flag changes nothing.
  const char* corpus[] = {
      "R(x) and not (S(x) and T(x))",
      "R(x) and not (S(x) or T(x))",
      "R(x) and not exists y (T(x, y))",
  };
  for (const char* text : corpus) {
    EXPECT_EQ(Enf(text, true), Enf(text, false)) << text;
  }
}

}  // namespace
}  // namespace emcalc
