// Unit tests for src/calculus: AST construction, builder normalization,
// parser (accept/reject/round-trip), printer, analyses, and rewrites.
#include <gtest/gtest.h>

#include <string>

#include "src/calculus/analysis.h"
#include "src/calculus/ast.h"
#include "src/calculus/builder.h"
#include "src/calculus/parser.h"
#include "src/calculus/printer.h"
#include "src/calculus/rewrite.h"

namespace emcalc {
namespace {

using builder::And;
using builder::Apply;
using builder::Exists;
using builder::IntConst;
using builder::Not;
using builder::Or;
using builder::Rel;
using builder::Var;

class CalculusTest : public ::testing::Test {
 protected:
  AstContext ctx_;
  Symbol Sym(std::string_view name) { return ctx_.symbols().Intern(name); }
};

TEST_F(CalculusTest, TermConstruction) {
  const Term* x = Var(ctx_, "x");
  EXPECT_TRUE(x->is_var());
  const Term* c = IntConst(ctx_, 7);
  EXPECT_TRUE(c->is_const());
  EXPECT_EQ(ctx_.ConstantAt(c->const_id()), Value::Int(7));
  const Term* fx = Apply(ctx_, "f", {x});
  EXPECT_TRUE(fx->is_apply());
  EXPECT_EQ(fx->args().size(), 1u);
  EXPECT_EQ(fx->args()[0], x);
}

TEST_F(CalculusTest, ConstantsAreInterned) {
  const Term* a = IntConst(ctx_, 7);
  const Term* b = IntConst(ctx_, 7);
  EXPECT_EQ(a->const_id(), b->const_id());
  const Term* c = builder::StrConst(ctx_, "7");
  EXPECT_NE(a->const_id(), c->const_id());
}

TEST_F(CalculusTest, BuilderAndNormalizes) {
  const Formula* r = Rel(ctx_, "R", {Var(ctx_, "x")});
  EXPECT_EQ(And(ctx_, {}), ctx_.True());
  EXPECT_EQ(And(ctx_, {r}), r);
  EXPECT_EQ(And(ctx_, {r, ctx_.True()}), r);
  EXPECT_EQ(And(ctx_, {r, ctx_.False()}), ctx_.False());
  const Formula* nested = And(ctx_, {r, And(ctx_, {r, r})});
  // Can't build a 1-element And; nested Ands flatten.
  ASSERT_EQ(nested->kind(), FormulaKind::kAnd);
  EXPECT_EQ(nested->children().size(), 3u);
}

TEST_F(CalculusTest, BuilderOrNormalizes) {
  const Formula* r = Rel(ctx_, "R", {Var(ctx_, "x")});
  EXPECT_EQ(Or(ctx_, {}), ctx_.False());
  EXPECT_EQ(Or(ctx_, {r, ctx_.False()}), r);
  EXPECT_EQ(Or(ctx_, {r, ctx_.True()}), ctx_.True());
}

TEST_F(CalculusTest, BuilderNotFolds) {
  const Formula* r = Rel(ctx_, "R", {Var(ctx_, "x")});
  EXPECT_EQ(Not(ctx_, ctx_.True()), ctx_.False());
  EXPECT_EQ(Not(ctx_, Not(ctx_, r)), r);
}

TEST_F(CalculusTest, BuilderExistsMerges) {
  const Formula* r =
      Rel(ctx_, "R", {Var(ctx_, "x"), Var(ctx_, "y")});
  const Formula* inner = Exists(ctx_, {Sym("y")}, r);
  const Formula* outer = Exists(ctx_, {Sym("x")}, inner);
  ASSERT_EQ(outer->kind(), FormulaKind::kExists);
  EXPECT_EQ(outer->vars().size(), 2u);
  EXPECT_EQ(outer->child()->kind(), FormulaKind::kRel);
  EXPECT_EQ(Exists(ctx_, {}, r), r);
}

TEST_F(CalculusTest, FreeVarsBasics) {
  auto q = ParseQuery(ctx_, "{x | R(x) and exists y (S(x, y))}");
  ASSERT_TRUE(q.ok());
  SymbolSet free = FreeVars(q->body);
  EXPECT_EQ(free, SymbolSet({Sym("x")}));
  SymbolSet all = AllVars(q->body);
  EXPECT_EQ(all, SymbolSet({Sym("x"), Sym("y")}));
}

TEST_F(CalculusTest, DirectVarsSkipsFunctionArguments) {
  auto f = ParseFormula(ctx_, "R(f(x), y)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(DirectVars((*f)->terms()), SymbolSet({Sym("y")}));
  EXPECT_EQ(TermVars((*f)->terms()[0]), SymbolSet({Sym("x")}));
}

TEST_F(CalculusTest, FunctionMeasures) {
  auto f = ParseFormula(ctx_, "R(x) and g(f(x)) = y and h(x) = z");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(HasFunctions(*f));
  EXPECT_EQ(CountApplications(*f), 3);
  EXPECT_EQ(MaxFunctionDepth(*f), 2);
  auto plain = ParseFormula(ctx_, "R(x) and x = y");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(HasFunctions(*plain));
  EXPECT_EQ(CountApplications(*plain), 0);
}

TEST_F(CalculusTest, SizeAndQuantifierCount) {
  auto f = ParseFormula(
      ctx_, "R(x) and (exists y (S(y)) or not exists z (T(z)))");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(QuantifierCount(*f), 2);
  EXPECT_GE(FormulaSize(*f), 7);
}

TEST_F(CalculusTest, CollectSignatures) {
  auto f = ParseFormula(ctx_, "R(x, f(y)) and S(x) and g(x, y) = x");
  ASSERT_TRUE(f.ok());
  auto rels = CollectRelations(*f);
  ASSERT_EQ(rels.size(), 2u);
  EXPECT_EQ(rels[Sym("R")], 2);
  EXPECT_EQ(rels[Sym("S")], 1);
  auto fns = CollectFunctions(*f);
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[Sym("f")], 1);
  EXPECT_EQ(fns[Sym("g")], 2);
}

TEST_F(CalculusTest, CollectConstants) {
  auto f = ParseFormula(ctx_, "R(1) and x = 'a' and y = 1");
  ASSERT_TRUE(f.ok());
  auto consts = CollectConstants(*f);
  EXPECT_EQ(consts.size(), 2u);
}

// --- parser ---

TEST_F(CalculusTest, ParseSimpleQuery) {
  auto q = ParseQuery(ctx_, "{x, y | R(x, y)}");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->head.size(), 2u);
  EXPECT_EQ(q->body->kind(), FormulaKind::kRel);
}

TEST_F(CalculusTest, ParseBareFormulaDerivesHead) {
  auto q = ParseQuery(ctx_, "R(y, x)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(SymbolSet(q->head), SymbolSet({Sym("x"), Sym("y")}));
}

TEST_F(CalculusTest, ParseBooleanQuery) {
  auto q = ParseQuery(ctx_, "{ | exists x (R(x))}");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->head.empty());
}

TEST_F(CalculusTest, ParsePrecedenceOrBindsLoosest) {
  auto f = ParseFormula(ctx_, "R(x) and S(x) or T(x)");
  ASSERT_TRUE(f.ok());
  ASSERT_EQ((*f)->kind(), FormulaKind::kOr);
  EXPECT_EQ((*f)->children()[0]->kind(), FormulaKind::kAnd);
}

TEST_F(CalculusTest, ParseNotBindsTightest) {
  auto f = ParseFormula(ctx_, "not R(x) and S(x)");
  ASSERT_TRUE(f.ok());
  ASSERT_EQ((*f)->kind(), FormulaKind::kAnd);
  EXPECT_EQ((*f)->children()[0]->kind(), FormulaKind::kNot);
}

TEST_F(CalculusTest, ParseEqualityVsRelationAtom) {
  auto rel = ParseFormula(ctx_, "f(x)");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->kind(), FormulaKind::kRel);  // formula position
  auto eq = ParseFormula(ctx_, "f(x) = y");
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ((*eq)->kind(), FormulaKind::kEq);
  EXPECT_TRUE((*eq)->lhs()->is_apply());
}

TEST_F(CalculusTest, ParseZeroAryRelation) {
  auto f = ParseFormula(ctx_, "Q()");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->kind(), FormulaKind::kRel);
  EXPECT_EQ((*f)->terms().size(), 0u);
}

TEST_F(CalculusTest, ParseLiteralsAndNegativeNumbers) {
  auto f = ParseFormula(ctx_, "x = -42 or x = 'alice'");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->kind(), FormulaKind::kOr);
}

TEST_F(CalculusTest, ParseQuantifierLists) {
  auto f = ParseFormula(ctx_, "exists x, y (forall z (R(x, y, z)))");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->kind(), FormulaKind::kExists);
  EXPECT_EQ((*f)->vars().size(), 2u);
  EXPECT_EQ((*f)->child()->kind(), FormulaKind::kForall);
}

TEST_F(CalculusTest, ParseErrors) {
  EXPECT_FALSE(ParseQuery(ctx_, "{x | R(x)").ok());        // missing brace
  EXPECT_FALSE(ParseFormula(ctx_, "R(x) and").ok());       // dangling
  EXPECT_FALSE(ParseFormula(ctx_, "x").ok());              // bare term
  EXPECT_FALSE(ParseFormula(ctx_, "x = ").ok());           // missing rhs
  EXPECT_FALSE(ParseFormula(ctx_, "exists (R(x))").ok());  // missing vars
  EXPECT_FALSE(ParseFormula(ctx_, "R(x) ! S(x)").ok());    // bad token
  EXPECT_FALSE(ParseFormula(ctx_, "x = 'unterminated").ok());
  EXPECT_FALSE(ParseFormula(ctx_, "not = x").ok());
  EXPECT_FALSE(ParseFormula(ctx_, "").ok());
}

TEST_F(CalculusTest, ParseRejectsKeywordAsName) {
  EXPECT_FALSE(ParseFormula(ctx_, "exists and (R(and))").ok());
}

// --- printer round-trips ---

class RoundTripTest : public CalculusTest,
                      public ::testing::WithParamInterface<const char*> {};

TEST_P(RoundTripTest, ParsePrintParse) {
  auto q1 = ParseQuery(ctx_, GetParam());
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  std::string printed = QueryToString(ctx_, *q1);
  auto q2 = ParseQuery(ctx_, printed);
  ASSERT_TRUE(q2.ok()) << "reparse failed for: " << printed;
  EXPECT_TRUE(FormulasEqual(q1->body, q2->body)) << printed;
  EXPECT_EQ(q1->head, q2->head);
  // Printing must be a fixpoint.
  EXPECT_EQ(printed, QueryToString(ctx_, *q2));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTripTest,
    ::testing::Values(
        "{x, y | R(x, y)}",
        "{y | exists x (R(x) and y = g(f(x)))}",
        "{x | R(x) and exists y (f(x) = y and not R(y))}",
        "{x, y | (R(x) and f(x) = y) or (S(y) and g(y) = x)}",
        "{x, y, z | R(x, y, z) and not S(y, z)}",
        "{x | x = 0 and forall u (exists v (plus(u, 1) = v))}",
        "{ | exists x (R(x))}",
        "{x | R(x) and not (S(x) or T(x))}",
        "{x | R(x) and x != 'bob'}",
        "{x | R(x) and (S(x) or T(x)) and not U(x)}",
        "{x, y | B(x) and not (((f(x) != y and g(x) != y) or R(x, y)) and "
        "((h(x) != y and k(x) != y) or P(x, y)))}"));

// --- rewrites ---

TEST_F(CalculusTest, SubstituteTermAndFormula) {
  auto f = ParseFormula(ctx_, "R(x, y) and f(x) = y");
  ASSERT_TRUE(f.ok());
  Substitution sub;
  sub.emplace(Sym("x"), IntConst(ctx_, 3));
  const Formula* g = SubstituteFormula(ctx_, *f, sub);
  EXPECT_EQ(FormulaToString(ctx_, g), "R(3, y) and f(3) = y");
}

TEST_F(CalculusTest, SubstituteRespectsShadowing) {
  auto f = ParseFormula(ctx_, "R(x) and exists y (S(y, x))");
  ASSERT_TRUE(f.ok());
  Substitution sub;
  sub.emplace(Sym("y"), IntConst(ctx_, 1));  // y is only bound; no-op
  const Formula* g = SubstituteFormula(ctx_, *f, sub);
  EXPECT_TRUE(FormulasEqual(*f, g));
}

TEST_F(CalculusTest, SubstituteAvoidsCapture) {
  // Substituting x -> y under exists y must rename the quantifier.
  auto f = ParseFormula(ctx_, "exists y (S(y, x))");
  ASSERT_TRUE(f.ok());
  Substitution sub;
  sub.emplace(Sym("x"), ctx_.MakeVar(Sym("y")));
  const Formula* g = SubstituteFormula(ctx_, *f, sub);
  ASSERT_EQ(g->kind(), FormulaKind::kExists);
  EXPECT_NE(g->vars()[0], Sym("y"));
  SymbolSet free = FreeVars(g);
  EXPECT_EQ(free, SymbolSet({Sym("y")}));
}

TEST_F(CalculusTest, RectifyMakesBoundVarsDistinct) {
  auto f = ParseFormula(
      ctx_, "exists z (R(z)) and exists z (S(z)) or exists z (T(z))");
  ASSERT_TRUE(f.ok());
  const Formula* g = Rectify(ctx_, *f);
  // Collect quantified symbols; they must be pairwise distinct.
  std::vector<Symbol> qvars;
  struct Walk {
    std::vector<Symbol>& out;
    void operator()(const Formula* h) {
      switch (h->kind()) {
        case FormulaKind::kExists:
        case FormulaKind::kForall:
          for (Symbol v : h->vars()) out.push_back(v);
          (*this)(h->child());
          break;
        case FormulaKind::kNot:
          (*this)(h->child());
          break;
        case FormulaKind::kAnd:
        case FormulaKind::kOr:
          for (const Formula* c : h->children()) (*this)(c);
          break;
        default:
          break;
      }
    }
  };
  Walk{qvars}(g);
  ASSERT_EQ(qvars.size(), 3u);
  EXPECT_NE(qvars[0], qvars[1]);
  EXPECT_NE(qvars[1], qvars[2]);
  EXPECT_NE(qvars[0], qvars[2]);
}

TEST_F(CalculusTest, RectifyLeavesCleanFormulasAlone) {
  auto f = ParseFormula(ctx_, "R(x) and exists y (S(y))");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(Rectify(ctx_, *f), *f);  // pointer-equal: no rebuild
}

// --- well-formedness ---

TEST_F(CalculusTest, WellFormedAccepts) {
  auto q = ParseQuery(ctx_, "{x | R(x) and exists y (S(x, y))}");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(CheckWellFormed(*q, ctx_.symbols()).ok());
}

TEST_F(CalculusTest, WellFormedRejectsArityConflicts) {
  auto f = ParseFormula(ctx_, "R(x) and R(x, y)");
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(CheckWellFormed(*f, ctx_.symbols()).ok());
  auto g = ParseFormula(ctx_, "f(x) = y and f(x, y) = z");
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(CheckWellFormed(*g, ctx_.symbols()).ok());
}

TEST_F(CalculusTest, WellFormedRejectsShadowing) {
  auto f = ParseFormula(ctx_, "R(x) and exists x (S(x))");
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(CheckWellFormed(*f, ctx_.symbols()).ok());
}

TEST_F(CalculusTest, WellFormedRejectsHeadMismatch) {
  auto q = ParseQuery(ctx_, "{x, y | R(x)}");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(CheckWellFormed(*q, ctx_.symbols()).ok());
}

TEST_F(CalculusTest, StructuralEquality) {
  auto f1 = ParseFormula(ctx_, "R(x) and f(x) = y");
  auto f2 = ParseFormula(ctx_, "R(x) and f(x) = y");
  auto f3 = ParseFormula(ctx_, "R(x) and f(x) = z");
  ASSERT_TRUE(f1.ok() && f2.ok() && f3.ok());
  EXPECT_TRUE(FormulasEqual(*f1, *f2));
  EXPECT_FALSE(FormulasEqual(*f1, *f3));
}

}  // namespace
}  // namespace emcalc
